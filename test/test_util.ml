open Selest_util

let check_float = Alcotest.(check (float 1e-9))

(* ---- Rng ---------------------------------------------------------------- *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let eq = ref true in
  for _ = 1 to 10 do
    if Rng.int64 a <> Rng.int64 b then eq := false
  done;
  Alcotest.(check bool) "different seeds differ" false !eq

let test_rng_split_independence () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  Alcotest.(check bool) "split differs" true (Rng.int64 a <> Rng.int64 b)

let test_rng_copy () =
  let a = Rng.create 19 in
  let b = Rng.copy a in
  Alcotest.(check int64) "copies share the future" (Rng.int64 a) (Rng.int64 b)

let test_rng_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_float_range () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let x = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_rng_categorical_frequencies () =
  let rng = Rng.create 11 in
  let weights = [| 1.0; 3.0; 6.0 |] in
  let counts = Array.make 3 0 in
  let n = 30_000 in
  for _ = 1 to n do
    let v = Rng.categorical rng weights in
    counts.(v) <- counts.(v) + 1
  done;
  Alcotest.(check bool) "ordered" true (counts.(2) > counts.(1) && counts.(1) > counts.(0));
  (* within 3 sigma of the expected 10% *)
  let p0 = float_of_int counts.(0) /. float_of_int n in
  Alcotest.(check bool) "calibrated" true (abs_float (p0 -. 0.1) < 0.01)

let test_rng_categorical_errors () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "empty" (Invalid_argument "Rng.categorical: empty weights")
    (fun () -> ignore (Rng.categorical rng [||]));
  Alcotest.check_raises "zero mass" (Invalid_argument "Rng.categorical: weights sum to zero")
    (fun () -> ignore (Rng.categorical rng [| 0.0; 0.0 |]))

let test_sample_without_replacement () =
  let rng = Rng.create 9 in
  let s = Rng.sample_without_replacement rng 10 100 in
  Alcotest.(check int) "size" 10 (Array.length s);
  for i = 1 to 9 do
    Alcotest.(check bool) "strictly increasing" true (s.(i - 1) < s.(i))
  done;
  Array.iter (fun v -> Alcotest.(check bool) "in range" true (v >= 0 && v < 100)) s;
  let all = Rng.sample_without_replacement rng 5 5 in
  Alcotest.(check (array int)) "k = n gives everything" [| 0; 1; 2; 3; 4 |] all

let test_shuffle_permutation () =
  let rng = Rng.create 13 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

(* ---- Arrayx ------------------------------------------------------------- *)

let test_sum_kahan () =
  check_float "simple" 6.0 (Arrayx.sum [| 1.0; 2.0; 3.0 |]);
  check_float "empty" 0.0 (Arrayx.sum [||]);
  let a = Array.make 10_001 1e-10 in
  a.(0) <- 1e10;
  Alcotest.(check bool) "compensated" true (Arrayx.sum a > 1e10)

let test_normalize () =
  let d = Arrayx.normalize [| 2.0; 6.0 |] in
  check_float "first" 0.25 d.(0);
  check_float "second" 0.75 d.(1);
  let u = Arrayx.normalize [| 0.0; 0.0; 0.0 |] in
  check_float "zero input goes uniform" (1.0 /. 3.0) u.(1);
  let inplace = [| 1.0; 1.0 |] in
  Arrayx.normalize_in_place inplace;
  check_float "in place" 0.5 inplace.(0)

let test_max_index () =
  Alcotest.(check int) "max" 2 (Arrayx.max_index [| 1.0; 5.0; 7.0; 7.0 |]);
  Alcotest.check_raises "empty" (Invalid_argument "Arrayx.max_index: empty") (fun () ->
      ignore (Arrayx.max_index [||]))

let test_stats () =
  check_float "mean" 2.0 (Arrayx.mean [| 1.0; 2.0; 3.0 |]);
  check_float "variance" (2.0 /. 3.0) (Arrayx.variance [| 1.0; 2.0; 3.0 |]);
  check_float "median odd" 2.0 (Arrayx.median [| 3.0; 1.0; 2.0 |]);
  check_float "median even" 2.5 (Arrayx.median [| 1.0; 2.0; 3.0; 4.0 |]);
  check_float "p100" 9.0 (Arrayx.percentile [| 9.0; 1.0; 5.0 |] 100.0);
  check_float "p0 clamps to first" 1.0 (Arrayx.percentile [| 9.0; 1.0; 5.0 |] 0.0)

let test_xlogx () =
  check_float "zero convention" 0.0 (Arrayx.xlogx 0.0);
  check_float "at 2" 2.0 (Arrayx.xlogx 2.0)

let test_float_equal () =
  Alcotest.(check bool) "close" true (Arrayx.float_equal 1.0 (1.0 +. 1e-12));
  Alcotest.(check bool) "far" false (Arrayx.float_equal 1.0 1.1);
  Alcotest.(check bool) "relative" true (Arrayx.float_equal ~eps:1e-6 1e12 (1e12 +. 1.0))

let test_fold_lefti () =
  let total = Arrayx.fold_lefti (fun acc i x -> acc + (i * x)) 0 [| 5; 6; 7 |] in
  Alcotest.(check int) "indexed fold" 20 total

let test_init_matrix () =
  let m = Arrayx.init_matrix 2 3 (fun i j -> (i * 10) + j) in
  Alcotest.(check int) "cell" 12 m.(1).(2)

(* ---- Tablefmt / Bytesize ------------------------------------------------ *)

let test_tablefmt_render () =
  let s =
    Tablefmt.render ~header:[| "name"; "value" |]
      [| [| "alpha"; "1.0" |]; [| "b"; "20.5" |] |]
  in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' s) in
  Alcotest.(check int) "line count" 4 (List.length lines);
  let widths = List.map String.length lines in
  List.iter (fun w -> Alcotest.(check int) "aligned" (List.hd widths) w) widths

let test_tablefmt_ragged () =
  let s = Tablefmt.render ~header:[| "a"; "b"; "c" |] [| [| "1" |] |] in
  Alcotest.(check bool) "pads ragged rows" true (String.length s > 0)

let test_float_cell () =
  Alcotest.(check string) "fixed" "3.14" (Tablefmt.float_cell 3.14159);
  Alcotest.(check string) "nan" "nan" (Tablefmt.float_cell Float.nan);
  Alcotest.(check string) "inf" "inf" (Tablefmt.float_cell Float.infinity)

let test_bytesize () =
  Alcotest.(check int) "params" 40 (Bytesize.params 10);
  Alcotest.(check int) "values" 12 (Bytesize.values 3);
  Alcotest.(check string) "pp bytes" "512B" (Format.asprintf "%a" Bytesize.pp 512);
  Alcotest.(check string) "pp kb" "2.0KB" (Format.asprintf "%a" Bytesize.pp 2048)

(* ---- qcheck properties -------------------------------------------------- *)

let prop_normalize_sums_to_one =
  QCheck2.Test.make ~name:"normalize sums to 1" ~count:200
    QCheck2.Gen.(array_size (int_range 1 40) (float_range 0.0 100.0))
    (fun a ->
      let d = Arrayx.normalize a in
      abs_float (Arrayx.sum d -. 1.0) < 1e-9)

let prop_sample_wor_distinct =
  QCheck2.Test.make ~name:"sample without replacement is distinct" ~count:200
    QCheck2.Gen.(pair (int_range 0 50) (int_range 50 200))
    (fun (k, n) ->
      let rng = Rng.create (k + (n * 1000)) in
      let s = Rng.sample_without_replacement rng k n in
      let tbl = Hashtbl.create (max 1 k) in
      Array.iter (fun v -> Hashtbl.replace tbl v ()) s;
      Hashtbl.length tbl = k)

let prop_median_between_bounds =
  QCheck2.Test.make ~name:"median within min/max" ~count:200
    QCheck2.Gen.(array_size (int_range 1 30) (float_range (-50.0) 50.0))
    (fun a ->
      let m = Arrayx.median a in
      let lo = Array.fold_left min a.(0) a and hi = Array.fold_left max a.(0) a in
      m >= lo && m <= hi)


(* ---- Sexp ---------------------------------------------------------------- *)

let test_sexp_roundtrip_simple () =
  let t = Sexp.(list [ atom "a"; list [ atom "b"; int 42 ]; float 3.5 ]) in
  let s = Sexp.to_string t in
  Alcotest.(check bool) "reparses" true (Sexp.of_string s = t)

let test_sexp_quoting () =
  let t = Sexp.(list [ atom "has space"; atom "par(en"; atom ""; atom "quo\"te" ]) in
  Alcotest.(check bool) "quoted atoms roundtrip" true (Sexp.of_string (Sexp.to_string t) = t)

let test_sexp_hum_roundtrip () =
  let t =
    Sexp.(
      list
        [ atom "outer";
          list (atom "inner" :: List.init 40 (fun i -> int i));
          list [ atom "pair"; float 1e-30 ] ])
  in
  Alcotest.(check bool) "indented form reparses" true
    (Sexp.of_string (Sexp.to_string_hum t) = t)

let test_sexp_errors () =
  let fails s = try ignore (Sexp.of_string s); false with Failure _ -> true in
  Alcotest.(check bool) "unterminated list" true (fails "(a b");
  Alcotest.(check bool) "stray paren" true (fails ")");
  Alcotest.(check bool) "trailing garbage" true (fails "(a) b");
  Alcotest.(check bool) "unterminated string" true (fails "\"abc")

let test_sexp_comments_and_file () =
  let t = Sexp.of_string "; a comment\n(a ; mid comment\n b)" in
  Alcotest.(check bool) "comments skipped" true (t = Sexp.(list [ atom "a"; atom "b" ]));
  let path = Filename.temp_file "sexp" ".scm" in
  Sexp.save path t;
  Alcotest.(check bool) "file roundtrip" true (Sexp.load path = t);
  Sys.remove path

let test_sexp_accessors () =
  let t = Sexp.of_string "(rec (name foo) (vals 1 2 3))" in
  Alcotest.(check string) "field atom" "foo" (Sexp.as_atom (List.hd (Sexp.field_values t "name")));
  Alcotest.(check int) "int list" 3 (List.length (Sexp.field_values t "vals"));
  Alcotest.(check bool) "missing field" true
    (try ignore (Sexp.field t "nope"); false with Failure _ -> true)

let gen_sexp =
  let open QCheck2.Gen in
  let atom_gen =
    oneof [ string_size (int_range 0 8); map string_of_int int ]
    |> map (fun s -> Sexp.Atom s)
  in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 1 then atom_gen
          else
            oneof
              [ atom_gen;
                map (fun l -> Sexp.List l) (list_size (int_range 0 4) (self (n / 2))) ])
        n)

let prop_sexp_roundtrip =
  QCheck2.Test.make ~name:"sexp print/parse roundtrip" ~count:300 gen_sexp (fun t ->
      Sexp.of_string (Sexp.to_string t) = t && Sexp.of_string (Sexp.to_string_hum t) = t)

let prop_float_atoms_roundtrip =
  QCheck2.Test.make ~name:"float atoms roundtrip exactly" ~count:300
    QCheck2.Gen.(float_range (-1e9) 1e9)
    (fun x -> Sexp.as_float (Sexp.of_string (Sexp.to_string (Sexp.float x))) = x)

(* ---- Pool ------------------------------------------------------------------ *)

let test_pool_map_order () =
  let pool = Pool.create ~size:3 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let xs = List.init 100 (fun i -> i) in
      Alcotest.(check (list int)) "results in submission order"
        (List.map (fun i -> i * i)
           xs)
        (Pool.map pool (fun i -> i * i) xs);
      Alcotest.(check (list int)) "empty batch" [] (Pool.map pool (fun i -> i) []);
      (* a second batch reuses the same workers *)
      Alcotest.(check (list int)) "second batch" [ 1; 2; 3 ]
        (Pool.map pool (fun i -> i + 1) [ 0; 1; 2 ]))

let test_pool_inline () =
  let pool = Pool.create ~size:0 () in
  Alcotest.(check int) "zero workers" 0 (Pool.size pool);
  Alcotest.(check (list int)) "inline run" [ 0; 2; 4 ]
    (Pool.map pool (fun i -> 2 * i) [ 0; 1; 2 ]);
  Pool.shutdown pool

let test_pool_exception () =
  let pool = Pool.create ~size:2 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      Alcotest.check_raises "first exception by submission order"
        (Failure "job 1") (fun () ->
          ignore
            (Pool.map pool
               (fun i -> if i >= 1 then failwith (Printf.sprintf "job %d" i) else i)
               [ 0; 1; 2; 3 ]));
      (* the pool survives a failed batch *)
      Alcotest.(check (list int)) "still serving" [ 10 ] (Pool.map pool (fun i -> i) [ 10 ]))

let test_pool_shutdown () =
  let pool = Pool.create ~size:2 () in
  Alcotest.(check bool) "positive size" true (Pool.size pool > 0);
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* idempotent *)
  Alcotest.(check bool) "run after shutdown rejected" true
    (try
       ignore (Pool.run pool [ (fun () -> 1) ]);
       false
     with Invalid_argument _ -> true)

let test_pool_parallelism () =
  (* With >1 workers, two blocking jobs must be in flight at once: each
     waits for the other to start, so inline execution would deadlock
     (guarded by the timeout of the barrier loop). *)
  let pool = Pool.create ~size:2 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let started = Atomic.make 0 in
      let job () =
        Atomic.incr started;
        let deadline = Unix.gettimeofday () +. 5.0 in
        while Atomic.get started < 2 && Unix.gettimeofday () < deadline do
          Domain.cpu_relax ()
        done;
        Atomic.get started
      in
      Alcotest.(check (list int)) "both jobs overlapped" [ 2; 2 ] (Pool.run pool [ job; job ]))

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick test_rng_split_independence;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "categorical frequencies" `Quick test_rng_categorical_frequencies;
          Alcotest.test_case "categorical errors" `Quick test_rng_categorical_errors;
          Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
        ] );
      ( "arrayx",
        [
          Alcotest.test_case "kahan sum" `Quick test_sum_kahan;
          Alcotest.test_case "normalize" `Quick test_normalize;
          Alcotest.test_case "max index" `Quick test_max_index;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "xlogx" `Quick test_xlogx;
          Alcotest.test_case "float equal" `Quick test_float_equal;
          Alcotest.test_case "fold_lefti" `Quick test_fold_lefti;
          Alcotest.test_case "init_matrix" `Quick test_init_matrix;
        ] );
      ( "fmt",
        [
          Alcotest.test_case "table render" `Quick test_tablefmt_render;
          Alcotest.test_case "ragged rows" `Quick test_tablefmt_ragged;
          Alcotest.test_case "float cell" `Quick test_float_cell;
          Alcotest.test_case "bytesize" `Quick test_bytesize;
        ] );
      ( "sexp",
        [
          Alcotest.test_case "roundtrip simple" `Quick test_sexp_roundtrip_simple;
          Alcotest.test_case "quoting" `Quick test_sexp_quoting;
          Alcotest.test_case "hum roundtrip" `Quick test_sexp_hum_roundtrip;
          Alcotest.test_case "errors" `Quick test_sexp_errors;
          Alcotest.test_case "comments and files" `Quick test_sexp_comments_and_file;
          Alcotest.test_case "accessors" `Quick test_sexp_accessors;
        ] );
      ( "sexp-properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_sexp_roundtrip; prop_float_atoms_roundtrip ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_normalize_sums_to_one; prop_sample_wor_distinct; prop_median_between_bounds ]
      );
      ( "pool",
        [
          Alcotest.test_case "map preserves order" `Quick test_pool_map_order;
          Alcotest.test_case "inline (size 0)" `Quick test_pool_inline;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
          Alcotest.test_case "shutdown" `Quick test_pool_shutdown;
          Alcotest.test_case "true parallelism" `Quick test_pool_parallelism;
        ] );
    ]
