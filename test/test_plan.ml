open Selest_db
open Selest_bn
open Selest_plan
module Model = Selest_prm.Model
module Learn = Selest_prm.Learn

let check_float = Alcotest.(check (float 1e-9))

(* Same two-table fixture as test_prm: dept <- emp with cross-table
   correlation and join skew, so closures genuinely pull in foreign
   parents and join indicators. *)
let fixture_schema =
  Schema.create
    [
      Schema.table_schema ~name:"dept"
        ~attrs:[ ("Budget", Value.ints 2); ("Floor", Value.ints 3) ]
        ();
      Schema.table_schema ~name:"emp"
        ~attrs:[ ("Rank", Value.ints 2); ("Age", Value.ints 3) ]
        ~fks:[ ("dept", "dept") ]
        ();
    ]

let fixture_db () =
  let n_dept = 40 and n_emp = 1200 in
  let rng = Selest_util.Rng.create 77 in
  let budget =
    Array.init n_dept (fun _ -> if Selest_util.Rng.float rng < 0.5 then 1 else 0)
  in
  let floor = Array.init n_dept (fun _ -> Selest_util.Rng.int rng 3) in
  let weight d = if budget.(d) = 1 then 4.0 else 1.0 in
  let fk =
    Selest_synth.Gen.assign_children rng ~parent_count:n_dept ~total:n_emp
      ~weight
  in
  let rank =
    Array.map
      (fun d ->
        if Selest_util.Rng.float rng < (if budget.(d) = 1 then 0.8 else 0.2)
        then 1
        else 0)
      fk
  in
  let age = Array.init n_emp (fun _ -> Selest_util.Rng.int rng 3) in
  let dept =
    Table.create (Schema.find_table fixture_schema "dept")
      ~cols:[| budget; floor |] ~fk_cols:[||]
  in
  let emp =
    Table.create (Schema.find_table fixture_schema "emp") ~cols:[| rank; age |]
      ~fk_cols:[| fk |]
  in
  Database.create fixture_schema [ dept; emp ]

let db = lazy (fixture_db ())
let sizes = lazy (Estimate.sizes_of_db (Lazy.force db))

(* Structure diversity: different budgets learn different parent sets, so
   the property quantifies over models as well as queries. *)
let models =
  lazy
    (List.map
       (fun budget_bytes ->
         (Learn.learn ~config:(Learn.default_config ~budget_bytes)
            (Lazy.force db))
           .Learn.model)
       [ 1200; 3000; 8000 ])

let model = lazy (List.nth (Lazy.force models) 1)

(* ---- random select–keyjoin queries over the fixture --------------------- *)

let attrs_of tv =
  match tv with
  | "d" -> [ ("d", "Budget", 2); ("d", "Floor", 3) ]
  | _ -> [ ("e", "Rank", 2); ("e", "Age", 3) ]

let gen_pred card =
  let open QCheck2.Gen in
  let value = int_bound (card - 1) in
  oneof
    [
      map (fun v -> Query.Eq v) value;
      map2
        (fun a b -> Query.Range (min a b, max a b))
        value value;
      map
        (fun vs -> Query.In_set vs)
        (list_size (int_range 1 card) value);
    ]

let gen_query =
  let open QCheck2.Gen in
  let* shape = oneofl [ `Dept; `Emp; `Join ] in
  let tvars, joins, pool =
    match shape with
    | `Dept -> ([ ("d", "dept") ], [], attrs_of "d")
    | `Emp -> ([ ("e", "emp") ], [], attrs_of "e")
    | `Join ->
      ( [ ("e", "emp"); ("d", "dept") ],
        [ Query.join ~child:"e" ~fk:"dept" ~parent:"d" ],
        attrs_of "d" @ attrs_of "e" )
  in
  (* 1..4 selects drawn with replacement: repeats on one attribute are
     deliberate (conjunctions, including contradictory ones) *)
  let* n = int_range 1 4 in
  let* picks = list_repeat n (oneofl pool) in
  let* selects =
    flatten_l
      (List.map
         (fun (tv, attr, card) ->
           map (fun pred -> { Query.sel_tv = tv; sel_attr = attr; pred })
           (gen_pred card))
         picks)
  in
  pure (Query.create ~tvars ~joins ~selects ())

let gen_model_and_queries =
  let open QCheck2.Gen in
  let* mi = int_bound 2 in
  (* several bindings; all queries of one shape index share a skeleton
     only by luck of the draw — the plan is recompiled per query below,
     while the dedicated reuse test drives one plan hard *)
  let* qs = list_size (int_range 1 4) gen_query in
  pure (mi, qs)

let oracle plan ~sizes q =
  Ve.Reference.prob_of_evidence (Plan.factors plan)
    (Plan.bind plan q @ Plan.join_evidence plan)
  *. Plan.scale plan ~sizes

let prop_plan_bit_identical_to_reference =
  QCheck2.Test.make
    ~name:"Plan.compile+execute ≡ Reference oracle (bit-identical)"
    ~count:150 gen_model_and_queries (fun (mi, qs) ->
      let prm = List.nth (Lazy.force models) mi in
      let sizes = Lazy.force sizes in
      List.for_all
        (fun q ->
          let plan = Plan.compile prm q in
          let fast = Plan.estimate plan ~sizes q in
          let slow = oracle plan ~sizes q in
          Int64.bits_of_float fast = Int64.bits_of_float slow)
        qs)

(* Rebinding one compiled plan across every instantiation of a skeleton
   must match both the oracle and a freshly compiled plan per query. *)
let prop_plan_reuse_across_bindings =
  QCheck2.Test.make ~name:"one plan, many bindings ≡ per-query compile"
    ~count:60 (QCheck2.Gen.int_bound 2) (fun mi ->
      let prm = List.nth (Lazy.force models) mi in
      let sizes = Lazy.force sizes in
      let skeleton =
        Query.create
          ~tvars:[ ("e", "emp"); ("d", "dept") ]
          ~joins:[ Query.join ~child:"e" ~fk:"dept" ~parent:"d" ]
          ~selects:[ Query.eq "e" "Rank" 0; Query.eq "d" "Budget" 0 ]
          ()
      in
      let plan = Plan.compile prm skeleton in
      let ok = ref true in
      for r = 0 to 1 do
        for b = 0 to 1 do
          let q =
            Query.with_selects skeleton
              [ Query.eq "e" "Rank" r; Query.eq "d" "Budget" b ]
          in
          let reused = Plan.estimate plan ~sizes q in
          let fresh = Plan.estimate (Plan.compile prm q) ~sizes q in
          let slow = oracle plan ~sizes q in
          if
            Int64.bits_of_float reused <> Int64.bits_of_float fresh
            || Int64.bits_of_float reused <> Int64.bits_of_float slow
          then ok := false
        done
      done;
      (* every rebinding after the compile-seeded first one hits the memo *)
      let hits, misses = Plan.schedule_stats plan in
      !ok && hits >= 3 && misses = 0)

(* ---- compiled-plan structure -------------------------------------------- *)

let test_plan_introspection () =
  let prm = Lazy.force model in
  (* a lone emp selection must pull dept in through the upward closure
     whenever the learned structure uses a foreign parent; either way the
     plan is self-describing *)
  let q =
    Query.create ~tvars:[ ("e", "emp") ]
      ~selects:[ Query.eq "e" "Rank" 1 ]
      ()
  in
  let plan = Plan.compile prm q in
  Alcotest.(check string) "skeleton" (Plan.skeleton_key q) (Plan.skeleton plan);
  Alcotest.(check string)
    "fingerprint" (Model.fingerprint prm) (Plan.fingerprint plan);
  let tables = Plan.closure_tables plan in
  Alcotest.(check string) "first closure table is the query's" "e"
    (fst (List.hd tables));
  Alcotest.(check bool) "factors non-empty" true (Plan.factors plan <> []);
  let closed = Plan.upward_closure plan q in
  Alcotest.(check int)
    "closure tvars cover plan tables"
    (List.length tables)
    (List.length closed.Query.tvars);
  (* the closure scale is the product of the closure tables' sizes *)
  let sizes = Lazy.force sizes in
  let expected =
    List.fold_left
      (fun acc (_, tbl) ->
        acc *. float_of_int sizes.(Schema.table_index fixture_schema tbl))
      1.0 tables
  in
  check_float "scale" expected (Plan.scale plan ~sizes);
  (* executing the compile query's own binding hits the seeded schedule *)
  ignore (Plan.execute plan (Plan.bind plan q));
  let hits, misses = Plan.schedule_stats plan in
  Alcotest.(check (pair int int)) "seeded schedule hit" (1, 0) (hits, misses);
  let steps = Plan.steps plan q in
  Alcotest.(check bool) "steps predicted" true
    (List.for_all (fun s -> s.Ve.Schedule.predicted_entries >= 1) steps);
  (* binding a different skeleton is rejected *)
  Alcotest.(check bool) "foreign skeleton rejected" true
    (try
       ignore
         (Plan.bind plan
            (Query.create ~tvars:[ ("e", "emp") ]
               ~selects:[ Query.eq "e" "Age" 0 ]
               ()));
       false
     with Invalid_argument _ -> true);
  (* pp renders without raising *)
  Alcotest.(check bool) "pp non-empty" true
    (String.length (Format.asprintf "%a" Plan.pp plan) > 0)

let test_skeleton_key_splits_binding () =
  let q v =
    Query.create ~tvars:[ ("e", "emp") ] ~selects:[ Query.eq "e" "Rank" v ] ()
  in
  Alcotest.(check string)
    "same skeleton across bindings"
    (Plan.skeleton_key (q 0))
    (Plan.skeleton_key (q 1));
  let q2 =
    Query.create ~tvars:[ ("e", "emp") ] ~selects:[ Query.eq "e" "Age" 0 ] ()
  in
  Alcotest.(check bool) "different attrs, different skeleton" true
    (Plan.skeleton_key (q 0) <> Plan.skeleton_key q2)

(* ---- contradictory predicates (regression) ------------------------------ *)

(* Mutually exclusive predicates on one attribute must surface as a zero
   estimate through every layer — plan execution, the one-shot wrapper,
   the suite estimator's posterior-lookup path — never as an error.  The
   posterior path used to silently let the last duplicate win. *)
let contradictory_query =
  Query.create
    ~tvars:[ ("e", "emp"); ("d", "dept") ]
    ~joins:[ Query.join ~child:"e" ~fk:"dept" ~parent:"d" ]
    ~selects:[ Query.eq "e" "Rank" 0; Query.eq "e" "Rank" 1 ]
    ()

let test_contradiction_is_zero () =
  let prm = Lazy.force model in
  let sizes = Lazy.force sizes in
  let q = contradictory_query in
  let plan = Plan.compile prm q in
  check_float "Plan.execute" 0.0 (Plan.execute plan (Plan.bind plan q));
  Alcotest.(check (list int)) "no steps for empty event" []
    (List.map (fun s -> s.Ve.Schedule.var) (Plan.steps plan q));
  check_float "Estimate.estimate" 0.0 (Estimate.estimate prm ~sizes q);
  check_float "Estimate.prob" 0.0 (Estimate.prob prm q);
  let cached = Estimate.cached_estimator prm ~sizes in
  (* warm the skeleton with a satisfiable binding first, then hit the
     posterior-table path with the contradiction *)
  let warm =
    Query.with_selects q [ Query.eq "e" "Rank" 1; Query.eq "e" "Rank" 1 ]
  in
  Alcotest.(check bool) "warm binding positive" true (cached warm > 0.0);
  check_float "cached_estimator" 0.0 (cached q);
  (* non-Eq contradictions flow through plan execution too *)
  let q_range =
    Query.with_selects q
      [ Query.eq "e" "Rank" 0; { Query.sel_tv = "e"; sel_attr = "Rank"; pred = Query.Range (1, 1) } ]
  in
  check_float "range contradiction" 0.0 (cached q_range)

let test_contradiction_through_server () =
  let db0 = Lazy.force db in
  let server = Selest_serve.Server.create ~db:db0 ~socket:"(test: unused)" () in
  ignore
    (Selest_serve.Registry.register
       (Selest_serve.Server.registry server)
       ~name:"fixture" (Lazy.force model));
  let ask line = fst (Selest_serve.Server.handle_line server line) in
  let reply = ask "EST e=emp, d=dept ; e.dept=d ; e.Rank=0, e.Rank=1" in
  Alcotest.(check bool) "EST ok, not ERR" true
    (Selest_serve.Protocol.is_ok reply);
  check_float "estimate is zero" 0.0
    (float_of_string (Selest_serve.Protocol.payload reply));
  (* EXPLAIN prices the same request and reports an empty plan *)
  let explained = ask "EXPLAIN e=emp, d=dept ; e.dept=d ; e.Rank=0, e.Rank=1" in
  Alcotest.(check bool) "EXPLAIN ok" true
    (Selest_serve.Protocol.is_ok explained)

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "plan"
    [
      ( "compile/execute",
        [
          Alcotest.test_case "introspection" `Quick test_plan_introspection;
          Alcotest.test_case "skeleton key" `Quick test_skeleton_key_splits_binding;
        ] );
      ( "oracle",
        qsuite
          [
            prop_plan_bit_identical_to_reference;
            prop_plan_reuse_across_bindings;
          ] );
      ( "contradiction",
        [
          Alcotest.test_case "zero through every layer" `Quick
            test_contradiction_is_zero;
          Alcotest.test_case "zero through server" `Quick
            test_contradiction_through_server;
        ] );
    ]
