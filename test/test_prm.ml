open Selest_db
open Selest_prm
module Estimate = Selest_plan.Estimate

let check_float = Alcotest.(check (float 1e-6))

(* Small two-table fixture: dept <- emp, with strong cross-table
   correlation (Rank tracks Budget) and join skew (big-budget departments
   have more employees). *)
let fixture_schema =
  Schema.create
    [
      Schema.table_schema ~name:"dept"
        ~attrs:[ ("Budget", Value.ints 2); ("Floor", Value.ints 3) ]
        ();
      Schema.table_schema ~name:"emp"
        ~attrs:[ ("Rank", Value.ints 2); ("Age", Value.ints 3) ]
        ~fks:[ ("dept", "dept") ]
        ();
    ]

let fixture_db () =
  let n_dept = 40 and n_emp = 1200 in
  let rng = Selest_util.Rng.create 77 in
  let budget = Array.init n_dept (fun _ -> if Selest_util.Rng.float rng < 0.5 then 1 else 0) in
  let floor = Array.init n_dept (fun _ -> Selest_util.Rng.int rng 3) in
  let weight d = if budget.(d) = 1 then 4.0 else 1.0 in
  let fk =
    Selest_synth.Gen.assign_children rng ~parent_count:n_dept ~total:n_emp ~weight
  in
  let rank =
    Array.map
      (fun d -> if Selest_util.Rng.float rng < if budget.(d) = 1 then 0.8 else 0.2 then 1 else 0)
      fk
  in
  let age = Array.init n_emp (fun _ -> Selest_util.Rng.int rng 3) in
  let dept =
    Table.create (Schema.find_table fixture_schema "dept") ~cols:[| budget; floor |]
      ~fk_cols:[||]
  in
  let emp =
    Table.create (Schema.find_table fixture_schema "emp") ~cols:[| rank; age |]
      ~fk_cols:[| fk |]
  in
  Database.create fixture_schema [ dept; emp ]

let db = lazy (fixture_db ())

(* ---- Scope ------------------------------------------------------------- *)

let test_scope_ids () =
  let s = Model.Scope.of_table fixture_schema 1 (* emp *) in
  Alcotest.(check int) "n_attrs" 2 (Model.Scope.n_attrs s);
  Alcotest.(check int) "n_ext" 4 (Model.Scope.n_ext s);
  Alcotest.(check int) "n_all" 5 (Model.Scope.n_all s);
  Alcotest.(check int) "own id" 1 (Model.Scope.local_id s (Model.Own 1));
  Alcotest.(check int) "foreign id" 3 (Model.Scope.local_id s (Model.Foreign (0, 1)));
  Alcotest.(check int) "join id" 4 (Model.Scope.join_id s 0);
  Alcotest.(check bool) "roundtrip own" true
    (Model.Scope.parent_of_local s 0 = Model.Own 0);
  Alcotest.(check bool) "roundtrip foreign" true
    (Model.Scope.parent_of_local s 2 = Model.Foreign (0, 0));
  Alcotest.(check int) "own card" 3 (Model.Scope.card s 1);
  Alcotest.(check int) "foreign card" 2 (Model.Scope.card s 2);
  Alcotest.(check int) "join card" 2 (Model.Scope.card s 4);
  Alcotest.(check string) "foreign name" "dept.Budget" (Model.Scope.name s 2);
  Alcotest.(check string) "join name" "J_dept" (Model.Scope.name s 4)

(* ---- Suffstats ----------------------------------------------------------- *)

let test_extended_data () =
  let db = Lazy.force db in
  let ext = Suffstats.extended_data db 1 in
  Alcotest.(check int) "columns" 4 (Selest_bn.Data.n_vars ext);
  Alcotest.(check string) "resolved name" "dept.Budget" ext.Selest_bn.Data.names.(2);
  (* resolved column matches manual dereference *)
  let emp = Database.table db "emp" and dept = Database.table db "dept" in
  let fk = Table.fk_col_by_name emp "dept" in
  let budget = Table.col_by_name dept "Budget" in
  let expected = Array.map (fun d -> budget.(d)) fk in
  Alcotest.(check (array int)) "resolved values" expected ext.Selest_bn.Data.cols.(2)

let test_join_stats_uniform () =
  let db = Lazy.force db in
  let js = Suffstats.fit_join db ~table:1 ~fk:0 ~parents:[||] in
  (* No parents: P(J) = 1/|dept|. *)
  let d = Selest_bn.Cpd.dist js.Suffstats.cpd [||] in
  check_float "uniform join prob" (1.0 /. 40.0) d.(1);
  Alcotest.(check int) "one param" 1 js.Suffstats.params

let test_join_stats_calibration () =
  let db = Lazy.force db in
  (* With parent dept.Budget: sum over configs of cnt_emp * cnt_dept(b) *
     p(b) must equal |emp| (every employee joins exactly one dept). *)
  let js = Suffstats.fit_join db ~table:1 ~fk:0 ~parents:[| Model.Foreign (0, 0) |] in
  let dept = Database.table db "dept" in
  let budget = Table.col_by_name dept "Budget" in
  let cnt_b = Array.make 2 0.0 in
  Array.iter (fun b -> cnt_b.(b) <- cnt_b.(b) +. 1.0) budget;
  let n_emp = float_of_int (Database.n_rows db "emp") in
  let total =
    (Selest_bn.Cpd.dist js.Suffstats.cpd [| 0 |]).(1) *. n_emp *. cnt_b.(0)
    +. (Selest_bn.Cpd.dist js.Suffstats.cpd [| 1 |]).(1) *. n_emp *. cnt_b.(1)
  in
  check_float "calibrated" n_emp total

let test_join_stats_detects_skew () =
  let db = Lazy.force db in
  let js = Suffstats.fit_join db ~table:1 ~fk:0 ~parents:[| Model.Foreign (0, 0) |] in
  let p_hi = (Selest_bn.Cpd.dist js.Suffstats.cpd [| 1 |]).(1) in
  let p_lo = (Selest_bn.Cpd.dist js.Suffstats.cpd [| 0 |]).(1) in
  Alcotest.(check bool) "big-budget depts attract more" true (p_hi > 2.0 *. p_lo)

let test_join_stats_validation () =
  let db = Lazy.force db in
  Alcotest.(check bool) "wrong fk parent rejected" true
    (try
       ignore (Suffstats.fit_join db ~table:1 ~fk:5 ~parents:[||]);
       false
     with Invalid_argument _ -> true)

(* ---- Stratify -------------------------------------------------------------- *)

let test_stratify_empty_legal () =
  let s = Stratify.empty_structure fixture_schema in
  Alcotest.(check bool) "empty is legal" true (Stratify.is_legal fixture_schema s)

let test_stratify_attr_cycle () =
  let s = Stratify.empty_structure fixture_schema in
  s.Stratify.attr_parents.(0).(0) <- [| Model.Own 1 |];
  s.Stratify.attr_parents.(0).(1) <- [| Model.Own 0 |];
  Alcotest.(check bool) "intra-table cycle illegal" false (Stratify.is_legal fixture_schema s)

let test_stratify_gating_cycle () =
  (* emp.Rank has a foreign parent through fk 0 AND feeds J_0: illegal. *)
  let s = Stratify.empty_structure fixture_schema in
  s.Stratify.attr_parents.(1).(0) <- [| Model.Foreign (0, 0) |];
  s.Stratify.join_parents.(1).(0) <- [| Model.Own 0 |];
  Alcotest.(check bool) "gating cycle illegal" false (Stratify.is_legal fixture_schema s);
  (* but J fed by an unrelated own attribute is fine *)
  s.Stratify.join_parents.(1).(0) <- [| Model.Own 1 |];
  Alcotest.(check bool) "ungated parent fine" true (Stratify.is_legal fixture_schema s)

let test_stratify_table_order () =
  let s = Stratify.empty_structure fixture_schema in
  s.Stratify.attr_parents.(1).(0) <- [| Model.Foreign (0, 0) |];
  let order = Stratify.table_order fixture_schema s in
  let pos t = Selest_util.Arrayx.fold_lefti (fun acc i x -> if x = t then i else acc) 0 order in
  Alcotest.(check bool) "dept before emp" true (pos 0 < pos 1)

let test_stratify_transitive_gating () =
  (* Rank <- dept.Budget (gated); Age <- Rank; J <- Age: transitive cycle
     through the gating edge must be caught. *)
  let s = Stratify.empty_structure fixture_schema in
  s.Stratify.attr_parents.(1).(0) <- [| Model.Foreign (0, 0) |];
  s.Stratify.attr_parents.(1).(1) <- [| Model.Own 0 |];
  s.Stratify.join_parents.(1).(0) <- [| Model.Own 1 |];
  Alcotest.(check bool) "transitive gating cycle illegal" false
    (Stratify.is_legal fixture_schema s)

(* ---- Learning + estimation --------------------------------------------------- *)

let learned = lazy (Learn.learn ~config:(Learn.default_config ~budget_bytes:3000) (Lazy.force db))

let test_learn_within_budget () =
  let r = Lazy.force learned in
  Alcotest.(check bool) "fits" true (r.Learn.bytes <= 3000);
  Alcotest.(check bool) "model size agrees" true
    (abs (Model.size_bytes r.Learn.model - r.Learn.bytes) <= 8)

let test_learn_finds_cross_structure () =
  let r = Lazy.force learned in
  (* The planted cross correlation or join skew must be picked up. *)
  Alcotest.(check bool) "relational structure found" true
    (Model.n_cross_edges r.Learn.model + Model.n_join_parents r.Learn.model > 0)

let test_estimate_single_table_query () =
  let db = Lazy.force db in
  let r = Lazy.force learned in
  let sizes = Estimate.sizes_of_db db in
  let q =
    Query.create ~tvars:[ ("e", "emp") ] ~selects:[ Query.eq "e" "Rank" 1 ] ()
  in
  let truth = Exec.query_size db q in
  let est = Estimate.estimate r.Learn.model ~sizes q in
  Alcotest.(check bool) "close" true (abs_float (est -. truth) /. truth < 0.1)

let test_estimate_join_query_beats_uniform () =
  let db = Lazy.force db in
  let sizes = Estimate.sizes_of_db db in
  let q =
    Query.create
      ~tvars:[ ("e", "emp"); ("d", "dept") ]
      ~joins:[ Query.join ~child:"e" ~fk:"dept" ~parent:"d" ]
      ~selects:[ Query.eq "d" "Budget" 1; Query.eq "e" "Rank" 1 ]
      ()
  in
  let truth = Exec.query_size db q in
  let prm = Lazy.force learned in
  let uj = Learn.learn ~config:(Learn.bn_uj_config ~budget_bytes:3000) db in
  let err m = abs_float (Estimate.estimate m ~sizes q -. truth) /. truth in
  let e_prm = err prm.Learn.model and e_uj = err uj.Learn.model in
  Alcotest.(check bool)
    (Printf.sprintf "PRM (%.3f) beats BN+UJ (%.3f)" e_prm e_uj)
    true (e_prm < e_uj);
  Alcotest.(check bool) "PRM accurate" true (e_prm < 0.15)

let test_estimate_join_no_selects () =
  (* With no selects, the estimated join size should be near |emp|. *)
  let db = Lazy.force db in
  let r = Lazy.force learned in
  let sizes = Estimate.sizes_of_db db in
  let q =
    Query.create
      ~tvars:[ ("e", "emp"); ("d", "dept") ]
      ~joins:[ Query.join ~child:"e" ~fk:"dept" ~parent:"d" ]
      ()
  in
  let est = Estimate.estimate r.Learn.model ~sizes q in
  let truth = float_of_int (Database.n_rows db "emp") in
  Alcotest.(check bool) "join size calibrated" true (abs_float (est -. truth) /. truth < 0.05)

let test_upward_closure () =
  let db = Lazy.force db in
  let r = Lazy.force learned in
  (* If the model has a cross-table parent for some emp attribute, a
     single-tv query over emp must close to include dept. *)
  let q = Query.create ~tvars:[ ("e", "emp") ] ~selects:[ Query.eq "e" "Rank" 1 ] () in
  let closed = Estimate.upward_closure r.Learn.model q in
  if Model.n_cross_edges r.Learn.model > 0 then
    Alcotest.(check bool) "closure adds dept" true (List.length closed.Query.tvars >= 2);
  (* Idempotence. *)
  let closed2 = Estimate.upward_closure r.Learn.model closed in
  Alcotest.(check int) "idempotent tvars" (List.length closed.Query.tvars)
    (List.length closed2.Query.tvars);
  Alcotest.(check int) "idempotent joins" (List.length closed.Query.joins)
    (List.length closed2.Query.joins);
  (* Closure preserves exact size (Prop. 3.4). *)
  check_float "size preserved" (Exec.query_size db q) (Exec.query_size db closed)

let test_cached_estimator_matches () =
  let db = Lazy.force db in
  let r = Lazy.force learned in
  let sizes = Estimate.sizes_of_db db in
  let cached = Estimate.cached_estimator r.Learn.model ~sizes in
  let skeleton =
    Query.create
      ~tvars:[ ("e", "emp"); ("d", "dept") ]
      ~joins:[ Query.join ~child:"e" ~fk:"dept" ~parent:"d" ]
      ()
  in
  for b = 0 to 1 do
    for rk = 0 to 1 do
      let q = Query.with_selects skeleton [ Query.eq "d" "Budget" b; Query.eq "e" "Rank" rk ] in
      check_float "cached = direct" (Estimate.estimate r.Learn.model ~sizes q) (cached q)
    done
  done;
  (* range query falls back and still matches *)
  let q = Query.with_selects skeleton [ Query.range "e" "Age" 1 2 ] in
  check_float "range fallback" (Estimate.estimate r.Learn.model ~sizes q) (cached q)

let test_estimates_sum_to_join_size () =
  (* Summing the PRM estimate over all instantiations of a suite must give
     the estimated unselected join size (the model is a distribution). *)
  let db = Lazy.force db in
  let r = Lazy.force learned in
  let sizes = Estimate.sizes_of_db db in
  let skeleton =
    Query.create
      ~tvars:[ ("e", "emp"); ("d", "dept") ]
      ~joins:[ Query.join ~child:"e" ~fk:"dept" ~parent:"d" ]
      ()
  in
  let total = ref 0.0 in
  for b = 0 to 1 do
    for rk = 0 to 1 do
      let q = Query.with_selects skeleton [ Query.eq "d" "Budget" b; Query.eq "e" "Rank" rk ] in
      total := !total +. Estimate.estimate r.Learn.model ~sizes q
    done
  done;
  check_float "sums to unselected estimate"
    (Estimate.estimate r.Learn.model ~sizes skeleton)
    !total

let test_tb_three_table_estimation () =
  let db = Selest_synth.Tb.generate ~patients:400 ~contacts:2_500 ~strains:300 ~seed:3 () in
  let r = Learn.learn ~config:(Learn.default_config ~budget_bytes:4000) db in
  let sizes = Estimate.sizes_of_db db in
  let q =
    Query.create
      ~tvars:[ ("c", "contact"); ("p", "patient"); ("s", "strain") ]
      ~joins:
        [
          Query.join ~child:"c" ~fk:"patient" ~parent:"p";
          Query.join ~child:"p" ~fk:"strain" ~parent:"s";
        ]
      ~selects:[ Query.eq "p" "USBorn" 1; Query.eq "s" "Unique" 0 ]
      ()
  in
  let truth = Exec.query_size db q in
  let est = Estimate.estimate r.Learn.model ~sizes q in
  Alcotest.(check bool)
    (Printf.sprintf "3-table estimate %.0f vs truth %.0f" est truth)
    true
    (abs_float (est -. truth) /. Float.max 1.0 truth < 0.35)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_model_pp_and_counts () =
  let r = Lazy.force learned in
  let s = Format.asprintf "%a" Model.pp r.Learn.model in
  Alcotest.(check bool) "pp mentions emp" true (contains s "emp");
  Alcotest.(check bool) "pp mentions the join indicator" true (contains s "J_dept")


(* ---- Forward sampling -------------------------------------------------------- *)

let test_sample_shapes () =
  let r = Lazy.force learned in
  let rng = Selest_util.Rng.create 99 in
  let sizes = [| 40; 1200 |] in
  let sampled = Sample.database rng r.Learn.model ~sizes in
  Alcotest.(check int) "dept rows" 40 (Database.n_rows sampled "dept");
  Alcotest.(check int) "emp rows" 1200 (Database.n_rows sampled "emp");
  Alcotest.(check bool) "integrity" true
    (Integrity.is_clean (Integrity.audit sampled))

let test_sample_reproduces_statistics () =
  (* Fit a PRM, sample a database of the same size, and check the sample
     reproduces the original's (a) marginals, (b) cross-table correlation,
     (c) join skew. *)
  let db = Lazy.force db in
  let r = Learn.learn ~config:(Learn.default_config ~budget_bytes:8000) db in
  let rng = Selest_util.Rng.create 7 in
  let sampled = Sample.database rng r.Learn.model ~sizes:(Estimate.sizes_of_db db) in
  let skel =
    Query.create
      ~tvars:[ ("e", "emp"); ("d", "dept") ]
      ~joins:[ Query.join ~child:"e" ~fk:"dept" ~parent:"d" ]
      ()
  in
  let frac dbx rank budget =
    let q = Query.with_selects skel [ Query.eq "e" "Rank" rank; Query.eq "d" "Budget" budget ] in
    Exec.query_size dbx q /. float_of_int (Database.n_rows dbx "emp")
  in
  (* joint (rank, budget) fractions within 7 points *)
  for rank = 0 to 1 do
    for budget = 0 to 1 do
      let orig = frac db rank budget and synth = frac sampled rank budget in
      Alcotest.(check bool)
        (Printf.sprintf "joint (%d,%d): %.3f vs %.3f" rank budget orig synth)
        true
        (abs_float (orig -. synth) < 0.07)
    done
  done

let test_sample_determinism () =
  let r = Lazy.force learned in
  let mk seed =
    Sample.database (Selest_util.Rng.create seed) r.Learn.model ~sizes:[| 20; 300 |]
  in
  let a = mk 5 and b = mk 5 and c = mk 6 in
  Alcotest.(check (array int)) "same seed same data"
    (Table.col (Database.table a "emp") 0)
    (Table.col (Database.table b "emp") 0);
  Alcotest.(check bool) "different seed differs" false
    (Table.col (Database.table a "emp") 0 = Table.col (Database.table c "emp") 0)

(* ---- Non-key joins (Sec. 6) --------------------------------------------------- *)

let test_nonkey_join_estimate () =
  let db = Lazy.force db in
  let r = Lazy.force learned in
  let sizes = Estimate.sizes_of_db db in
  (* join two independent copies of emp on Age (non-key). *)
  let q1 = Query.create ~tvars:[ ("x", "emp") ] ~selects:[ Query.eq "x" "Rank" 1 ] () in
  let q2 = Query.create ~tvars:[ ("y", "emp") ] () in
  let truth = Exec.nonkey_join_size db (q1, "x", "Age") (q2, "y", "Age") in
  let est = Estimate.estimate_nonkey r.Learn.model ~sizes (q1, "x", "Age") (q2, "y", "Age") in
  Alcotest.(check bool)
    (Printf.sprintf "nonkey est %.0f vs truth %.0f" est truth)
    true
    (abs_float (est -. truth) /. truth < 0.1)

let test_nonkey_join_validation () =
  let db = Lazy.force db in
  let r = Lazy.force learned in
  let sizes = Estimate.sizes_of_db db in
  let q1 = Query.create ~tvars:[ ("x", "emp") ] () in
  let q2 = Query.create ~tvars:[ ("x", "dept") ] () in
  Alcotest.(check bool) "shared tv rejected" true
    (try
       ignore (Estimate.estimate_nonkey r.Learn.model ~sizes (q1, "x", "Age") (q2, "x", "Floor"));
       false
     with Invalid_argument _ -> true);
  let q2b = Query.create ~tvars:[ ("y", "dept") ] () in
  Alcotest.(check bool) "domain mismatch rejected" true
    (try
       ignore (Exec.nonkey_join_size db (q1, "x", "Rank") (q2b, "y", "Floor"));
       false
     with Invalid_argument _ -> true)


(* ---- Incremental maintenance (Sec. 6) ---------------------------------------- *)

(* A shifted version of the fixture: the rank-budget correlation flips. *)
let shifted_db () =
  let n_dept = 40 and n_emp = 1200 in
  let rng = Selest_util.Rng.create 1234 in
  let budget = Array.init n_dept (fun _ -> if Selest_util.Rng.float rng < 0.5 then 1 else 0) in
  let floor = Array.init n_dept (fun _ -> Selest_util.Rng.int rng 3) in
  let fk =
    Selest_synth.Gen.assign_children rng ~parent_count:n_dept ~total:n_emp
      ~weight:(fun d -> if budget.(d) = 1 then 0.5 else 2.0)
  in
  let rank =
    Array.map
      (fun d -> if Selest_util.Rng.float rng < (if budget.(d) = 1 then 0.15 else 0.85) then 1 else 0)
      fk
  in
  let age = Array.init n_emp (fun _ -> Selest_util.Rng.int rng 3) in
  let dept =
    Table.create (Schema.find_table fixture_schema "dept") ~cols:[| budget; floor |]
      ~fk_cols:[||]
  in
  let emp =
    Table.create (Schema.find_table fixture_schema "emp") ~cols:[| rank; age |]
      ~fk_cols:[| fk |]
  in
  Database.create fixture_schema [ dept; emp ]

let test_update_refresh_keeps_structure () =
  let r = Lazy.force learned in
  let shifted = shifted_db () in
  let fresh = Update.refresh r.Learn.model shifted in
  (* structure identical *)
  Array.iteri
    (fun ti tm ->
      Array.iteri
        (fun a fam ->
          Alcotest.(check bool) "same attr parents" true
            (fam.Model.parents = fresh.Model.tables.(ti).Model.attr_families.(a).Model.parents))
        tm.Model.attr_families)
    r.Learn.model.Model.tables;
  (* refreshed parameters fit the new data better than stale ones *)
  let q =
    Query.create
      ~tvars:[ ("e", "emp"); ("d", "dept") ]
      ~joins:[ Query.join ~child:"e" ~fk:"dept" ~parent:"d" ]
      ~selects:[ Query.eq "d" "Budget" 1; Query.eq "e" "Rank" 1 ]
      ()
  in
  let sizes = Estimate.sizes_of_db shifted in
  let truth = Exec.query_size shifted q in
  let err m = abs_float (Estimate.estimate m ~sizes q -. truth) /. Float.max 1.0 truth in
  Alcotest.(check bool)
    (Printf.sprintf "refreshed (%.2f) beats stale (%.2f)" (err fresh) (err r.Learn.model))
    true
    (err fresh < err r.Learn.model)

let test_update_drift_detection () =
  let db0 = Lazy.force db in
  let r = Lazy.force learned in
  (* same data: negligible drift *)
  let d_same = Update.drift r.Learn.model db0 in
  Alcotest.(check bool) "no drift on same data" true (d_same.Update.gap_per_unit < 1e-6);
  (* shifted data: substantial drift *)
  let d_shift = Update.drift r.Learn.model (shifted_db ()) in
  Alcotest.(check bool)
    (Printf.sprintf "drift detected (%.3f)" d_shift.Update.gap_per_unit)
    true
    (d_shift.Update.gap_per_unit > 0.05);
  Alcotest.(check bool) "fresh >= stale" true
    (d_shift.Update.fresh_loglik >= d_shift.Update.stale_loglik)

let test_update_maintain_decision () =
  let db0 = Lazy.force db in
  let r = Lazy.force learned in
  (match Update.maintain r.Learn.model db0 with
  | `Fresh _ -> ()
  | `Restructure_advised _ -> Alcotest.fail "same data should not advise restructuring");
  match Update.maintain r.Learn.model (shifted_db ()) with
  | `Restructure_advised _ -> ()
  | `Fresh _ -> Alcotest.fail "shifted data should advise restructuring"


(* ---- Serialization ------------------------------------------------------------ *)

let test_serialize_roundtrip () =
  let db0 = Lazy.force db in
  let r = Lazy.force learned in
  let path = Filename.temp_file "selest" ".prm" in
  Serialize.save path r.Learn.model;
  let loaded = Serialize.load path ~schema:fixture_schema in
  Sys.remove path;
  (* identical estimates across a grid of queries *)
  let sizes = Estimate.sizes_of_db db0 in
  let skel =
    Query.create
      ~tvars:[ ("e", "emp"); ("d", "dept") ]
      ~joins:[ Query.join ~child:"e" ~fk:"dept" ~parent:"d" ]
      ()
  in
  for b = 0 to 1 do
    for rk = 0 to 1 do
      for fl = 0 to 2 do
        let q =
          Query.with_selects skel
            [ Query.eq "d" "Budget" b; Query.eq "e" "Rank" rk; Query.eq "d" "Floor" fl ]
        in
        check_float "same estimate"
          (Estimate.estimate r.Learn.model ~sizes q)
          (Estimate.estimate loaded ~sizes q)
      done
    done
  done;
  Alcotest.(check int) "same size accounting"
    (Model.size_bytes r.Learn.model) (Model.size_bytes loaded)

let test_serialize_tree_cpds () =
  (* force tree CPDs with a structure that certainly contains splits *)
  let db0 = Lazy.force db in
  let cfg = { (Learn.default_config ~budget_bytes:6000) with Learn.max_parents = 2 } in
  let r = Learn.learn ~config:cfg db0 in
  let path = Filename.temp_file "selest" ".prm" in
  Serialize.save path r.Learn.model;
  let loaded = Serialize.load path ~schema:fixture_schema in
  Sys.remove path;
  let sizes = Estimate.sizes_of_db db0 in
  let q = Query.create ~tvars:[ ("e", "emp") ] ~selects:[ Query.eq "e" "Rank" 1 ] () in
  check_float "tree model survives"
    (Estimate.estimate r.Learn.model ~sizes q)
    (Estimate.estimate loaded ~sizes q)

let test_serialize_schema_mismatch () =
  let r = Lazy.force learned in
  let path = Filename.temp_file "selest" ".prm" in
  Serialize.save path r.Learn.model;
  let other_schema =
    Schema.create
      [ Schema.table_schema ~name:"dept" ~attrs:[ ("Budget", Value.ints 3) ] () ]
  in
  Alcotest.(check bool) "mismatch rejected" true
    (try
       ignore (Serialize.load path ~schema:other_schema);
       false
     with Serialize.Error _ -> true);
  Sys.remove path

let test_serialize_rejects_garbage () =
  let path = Filename.temp_file "selest" ".prm" in
  let oc = open_out path in
  output_string oc "(not-a-model 42)";
  close_out oc;
  Alcotest.(check bool) "garbage rejected" true
    (try
       ignore (Serialize.load path ~schema:fixture_schema);
       false
     with Serialize.Error _ -> true);
  Sys.remove path


(* ---- GROUP BY estimation -------------------------------------------------------- *)

let test_group_counts_consistency () =
  let db0 = Lazy.force db in
  let r = Lazy.force learned in
  let sizes = Estimate.sizes_of_db db0 in
  let skel =
    Query.create
      ~tvars:[ ("e", "emp"); ("d", "dept") ]
      ~joins:[ Query.join ~child:"e" ~fk:"dept" ~parent:"d" ]
      ()
  in
  let groups = Estimate.group_counts r.Learn.model ~sizes skel ~keys:[ ("d", "Budget") ] in
  Alcotest.(check int) "one cell per budget value" 2 (List.length groups);
  (* each group estimate matches the equivalent select query *)
  List.iter
    (fun (cell, est) ->
      let q = Query.with_selects skel [ Query.eq "d" "Budget" cell.(0) ] in
      check_float "cell = select estimate" (Estimate.estimate r.Learn.model ~sizes q) est)
    groups;
  (* groups partition the ungrouped estimate *)
  let total = List.fold_left (fun acc (_, e) -> acc +. e) 0.0 groups in
  check_float "partition" (Estimate.estimate r.Learn.model ~sizes skel) total

let test_group_counts_with_selects_and_two_keys () =
  let db0 = Lazy.force db in
  let r = Lazy.force learned in
  let sizes = Estimate.sizes_of_db db0 in
  let q =
    Query.create
      ~tvars:[ ("e", "emp"); ("d", "dept") ]
      ~joins:[ Query.join ~child:"e" ~fk:"dept" ~parent:"d" ]
      ~selects:[ Query.eq "e" "Age" 1 ]
      ()
  in
  let groups =
    Estimate.group_counts r.Learn.model ~sizes q ~keys:[ ("e", "Rank"); ("d", "Budget") ]
  in
  Alcotest.(check int) "2x2 cells" 4 (List.length groups);
  List.iter
    (fun (cell, est) ->
      let qq =
        Query.with_selects q
          (Query.eq "e" "Age" 1 :: [ Query.eq "e" "Rank" cell.(0); Query.eq "d" "Budget" cell.(1) ])
      in
      check_float "cell matches" (Estimate.estimate r.Learn.model ~sizes qq) est)
    groups;
  (* group estimates track the exact group sizes reasonably *)
  let truth_err =
    List.fold_left
      (fun acc (cell, est) ->
        let qq =
          Query.with_selects q
            (Query.eq "e" "Age" 1 :: [ Query.eq "e" "Rank" cell.(0); Query.eq "d" "Budget" cell.(1) ])
        in
        let truth = Exec.query_size db0 qq in
        acc +. (abs_float (est -. truth) /. Float.max 1.0 truth))
      0.0 groups
    /. 4.0
  in
  Alcotest.(check bool) (Printf.sprintf "avg group error %.2f" truth_err) true (truth_err < 0.3)


(* ---- End-to-end properties over random fixtures -------------------------------- *)

let random_fixture seed =
  let n_dept = 10 + (seed mod 20) and n_emp = 300 + (seed mod 400) in
  let rng = Selest_util.Rng.create (seed * 7919) in
  let budget = Array.init n_dept (fun _ -> Selest_util.Rng.int rng 2) in
  let floor = Array.init n_dept (fun _ -> Selest_util.Rng.int rng 3) in
  let fk =
    Selest_synth.Gen.assign_children rng ~parent_count:n_dept ~total:n_emp
      ~weight:(fun d -> 1.0 +. (2.0 *. float_of_int budget.(d)))
  in
  let rank =
    Array.map
      (fun d ->
        if Selest_util.Rng.float rng < (if budget.(d) = 1 then 0.7 else 0.3) then 1 else 0)
      fk
  in
  let age = Array.init n_emp (fun _ -> Selest_util.Rng.int rng 3) in
  let dept =
    Table.create (Schema.find_table fixture_schema "dept") ~cols:[| budget; floor |]
      ~fk_cols:[||]
  in
  let emp =
    Table.create (Schema.find_table fixture_schema "emp") ~cols:[| rank; age |]
      ~fk_cols:[| fk |]
  in
  Database.create fixture_schema [ dept; emp ]

let skel =
  Query.create
    ~tvars:[ ("e", "emp"); ("d", "dept") ]
    ~joins:[ Query.join ~child:"e" ~fk:"dept" ~parent:"d" ]
    ()

let prop_estimates_partition =
  QCheck2.Test.make ~name:"suite estimates sum to the unselected estimate" ~count:15
    QCheck2.Gen.(int_range 1 1000)
    (fun seed ->
      let dbx = random_fixture seed in
      let r = Learn.learn ~config:(Learn.default_config ~budget_bytes:4000) dbx in
      let sizes = Estimate.sizes_of_db dbx in
      let est = Estimate.cached_estimator r.Learn.model ~sizes in
      let total = ref 0.0 in
      for rk = 0 to 1 do
        for b = 0 to 1 do
          for fl = 0 to 2 do
            total :=
              !total
              +. est
                   (Query.with_selects skel
                      [ Query.eq "e" "Rank" rk; Query.eq "d" "Budget" b;
                        Query.eq "d" "Floor" fl ])
          done
        done
      done;
      abs_float (!total -. est skel) < 1e-6 *. Float.max 1.0 (est skel))

let prop_range_is_sum_of_points =
  QCheck2.Test.make ~name:"range estimate = sum of point estimates" ~count:15
    QCheck2.Gen.(int_range 1 1000)
    (fun seed ->
      let dbx = random_fixture seed in
      let r = Learn.learn ~config:(Learn.default_config ~budget_bytes:4000) dbx in
      let sizes = Estimate.sizes_of_db dbx in
      let range_est =
        Estimate.estimate r.Learn.model ~sizes
          (Query.with_selects skel [ Query.range "e" "Age" 1 2 ])
      in
      let point_sum =
        Estimate.estimate r.Learn.model ~sizes
          (Query.with_selects skel [ Query.eq "e" "Age" 1 ])
        +. Estimate.estimate r.Learn.model ~sizes
             (Query.with_selects skel [ Query.eq "e" "Age" 2 ])
      in
      abs_float (range_est -. point_sum) < 1e-6 *. Float.max 1.0 point_sum)

let prop_closure_preserves_estimate =
  QCheck2.Test.make ~name:"closing a query does not change its estimate" ~count:15
    QCheck2.Gen.(int_range 1 1000)
    (fun seed ->
      let dbx = random_fixture seed in
      let r = Learn.learn ~config:(Learn.default_config ~budget_bytes:4000) dbx in
      let sizes = Estimate.sizes_of_db dbx in
      let q = Query.create ~tvars:[ ("e", "emp") ] ~selects:[ Query.eq "e" "Rank" 1 ] () in
      let closed = Estimate.upward_closure r.Learn.model q in
      let a = Estimate.estimate r.Learn.model ~sizes q in
      let b = Estimate.estimate r.Learn.model ~sizes closed in
      abs_float (a -. b) < 1e-6 *. Float.max 1.0 a)

let prop_sampled_db_valid =
  QCheck2.Test.make ~name:"sampled database is well-formed" ~count:10
    QCheck2.Gen.(int_range 1 1000)
    (fun seed ->
      let dbx = random_fixture seed in
      let r = Learn.learn ~config:(Learn.default_config ~budget_bytes:4000) dbx in
      let rng = Selest_util.Rng.create seed in
      let synth = Sample.database rng r.Learn.model ~sizes:[| 25; 600 |] in
      Database.n_rows synth "dept" = 25
      && Database.n_rows synth "emp" = 600
      && Integrity.is_clean (Integrity.audit synth))

let prop_serialize_stable =
  QCheck2.Test.make ~name:"serialization round-trips estimates" ~count:8
    QCheck2.Gen.(int_range 1 1000)
    (fun seed ->
      let dbx = random_fixture seed in
      let r = Learn.learn ~config:(Learn.default_config ~budget_bytes:4000) dbx in
      let loaded =
        Serialize.of_sexp ~schema:fixture_schema (Serialize.to_sexp r.Learn.model)
      in
      let sizes = Estimate.sizes_of_db dbx in
      let q = Query.with_selects skel [ Query.eq "e" "Rank" 1; Query.eq "d" "Budget" 0 ] in
      Estimate.estimate r.Learn.model ~sizes q = Estimate.estimate loaded ~sizes q)

(* ---- Incremental vs reference climber -------------------------------- *)

(* The incremental climber (delta move cache + Depgraph legality + shared
   count kernel) must retrace the naive reference climber move for move —
   same accepted sequence, same final model bytes.  Configs are drawn to
   cover both CPD kinds, both byte-aware rules, and both join-parent
   settings. *)
let random_learn_config seed =
  let rng = Selest_util.Rng.create (seed * 104729) in
  let kind =
    if Selest_util.Rng.int rng 2 = 0 then Selest_bn.Cpd.Tables else Selest_bn.Cpd.Trees
  in
  let rule =
    if Selest_util.Rng.int rng 2 = 0 then Selest_bn.Learn.Ssn else Selest_bn.Learn.Mdl
  in
  let allow_join_parents = Selest_util.Rng.int rng 2 = 0 in
  let budget_bytes = 2_500 + Selest_util.Rng.int rng 3_000 in
  {
    (Learn.default_config ~budget_bytes) with
    kind;
    rule;
    allow_join_parents;
    max_parents = 2 + Selest_util.Rng.int rng 2;
    random_restarts = 1 + Selest_util.Rng.int rng 2;
    random_walk_length = 2 + Selest_util.Rng.int rng 3;
    seed;
  }

let model_fingerprint m = Selest_util.Sexp.to_string (Serialize.to_sexp m)

let prop_incremental_matches_reference =
  QCheck2.Test.make ~name:"incremental climber is trajectory-identical to reference"
    ~count:12
    QCheck2.Gen.(int_range 1 1000)
    (fun seed ->
      let dbx = random_fixture seed in
      let cfg = random_learn_config seed in
      let fast = Learn.learn ~config:cfg dbx in
      let naive = Learn.learn_reference ~config:cfg dbx in
      fast.Learn.trajectory = naive.Learn.trajectory
      && fast.Learn.loglik = naive.Learn.loglik
      && fast.Learn.bytes = naive.Learn.bytes
      && fast.Learn.iterations = naive.Learn.iterations
      && model_fingerprint fast.Learn.model = model_fingerprint naive.Learn.model)

(* Directed regression: restarts force random-walk acceptances (which must
   invalidate the walked families' cache entries) and a best-snapshot
   restore (which must flush every entry and reload the legality oracle).
   A stale entry shows up as a diverged trajectory. *)
let test_move_cache_invalidation () =
  List.iter
    (fun rule ->
      let dbx = random_fixture 42 in
      let cfg =
        {
          (Learn.default_config ~budget_bytes:3_500) with
          rule;
          random_restarts = 3;
          random_walk_length = 4;
          seed = 7;
        }
      in
      let fast = Learn.learn ~config:cfg dbx in
      let naive = Learn.learn_reference ~config:cfg dbx in
      Alcotest.(check (list string))
        "trajectory across walks and restore" naive.Learn.trajectory
        fast.Learn.trajectory;
      Alcotest.(check string)
        "final model" (model_fingerprint naive.Learn.model)
        (model_fingerprint fast.Learn.model);
      Alcotest.(check int) "bytes" naive.Learn.bytes fast.Learn.bytes)
    [ Selest_bn.Learn.Ssn; Selest_bn.Learn.Mdl ]

let () =
  Alcotest.run "prm"
    [
      ("scope", [ Alcotest.test_case "local ids" `Quick test_scope_ids ]);
      ( "suffstats",
        [
          Alcotest.test_case "extended data" `Quick test_extended_data;
          Alcotest.test_case "uniform join" `Quick test_join_stats_uniform;
          Alcotest.test_case "calibration" `Quick test_join_stats_calibration;
          Alcotest.test_case "detects skew" `Quick test_join_stats_detects_skew;
          Alcotest.test_case "validation" `Quick test_join_stats_validation;
        ] );
      ( "stratify",
        [
          Alcotest.test_case "empty legal" `Quick test_stratify_empty_legal;
          Alcotest.test_case "attr cycle" `Quick test_stratify_attr_cycle;
          Alcotest.test_case "gating cycle" `Quick test_stratify_gating_cycle;
          Alcotest.test_case "table order" `Quick test_stratify_table_order;
          Alcotest.test_case "transitive gating" `Quick test_stratify_transitive_gating;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "shapes and integrity" `Quick test_sample_shapes;
          Alcotest.test_case "reproduces statistics" `Quick test_sample_reproduces_statistics;
          Alcotest.test_case "determinism" `Quick test_sample_determinism;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_estimates_partition;
            prop_range_is_sum_of_points;
            prop_closure_preserves_estimate;
            prop_sampled_db_valid;
            prop_serialize_stable;
          ] );
      ( "learn-incremental",
        Alcotest.test_case "cache invalidation across walks" `Quick
          test_move_cache_invalidation
        :: List.map QCheck_alcotest.to_alcotest [ prop_incremental_matches_reference ]
      );
      ( "group-by",
        [
          Alcotest.test_case "consistency" `Quick test_group_counts_consistency;
          Alcotest.test_case "two keys with selects" `Quick test_group_counts_with_selects_and_two_keys;
        ] );
      ( "serialize",
        [
          Alcotest.test_case "roundtrip" `Quick test_serialize_roundtrip;
          Alcotest.test_case "tree cpds" `Quick test_serialize_tree_cpds;
          Alcotest.test_case "schema mismatch" `Quick test_serialize_schema_mismatch;
          Alcotest.test_case "rejects garbage" `Quick test_serialize_rejects_garbage;
        ] );
      ( "maintenance",
        [
          Alcotest.test_case "refresh keeps structure" `Quick test_update_refresh_keeps_structure;
          Alcotest.test_case "drift detection" `Quick test_update_drift_detection;
          Alcotest.test_case "maintain decision" `Quick test_update_maintain_decision;
        ] );
      ( "nonkey-join",
        [
          Alcotest.test_case "estimate vs truth" `Quick test_nonkey_join_estimate;
          Alcotest.test_case "validation" `Quick test_nonkey_join_validation;
        ] );
      ( "learn-estimate",
        [
          Alcotest.test_case "within budget" `Quick test_learn_within_budget;
          Alcotest.test_case "finds cross structure" `Quick test_learn_finds_cross_structure;
          Alcotest.test_case "single-table query" `Quick test_estimate_single_table_query;
          Alcotest.test_case "join query beats uniform" `Quick test_estimate_join_query_beats_uniform;
          Alcotest.test_case "join size calibrated" `Quick test_estimate_join_no_selects;
          Alcotest.test_case "upward closure" `Quick test_upward_closure;
          Alcotest.test_case "cached estimator" `Quick test_cached_estimator_matches;
          Alcotest.test_case "estimates sum correctly" `Quick test_estimates_sum_to_join_size;
          Alcotest.test_case "three-table TB" `Quick test_tb_three_table_estimation;
          Alcotest.test_case "model printing" `Quick test_model_pp_and_counts;
        ] );
    ]
