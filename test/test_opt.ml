open Selest_db
open Selest_opt
module Estimator = Selest_est.Estimator

let check_float = Alcotest.(check (float 1e-9))

(* ---- fixtures ------------------------------------------------------------ *)

(* A deterministic four-table foreign-key chain a <- b <- c <- d with
   skewed columns, so different join orders genuinely differ in cost. *)
let chain4_db () =
  let schema =
    Schema.create
      [
        Schema.table_schema ~name:"a" ~attrs:[ ("X", Value.ints 3) ] ();
        Schema.table_schema ~name:"b" ~attrs:[ ("Y", Value.ints 2) ] ~fks:[ ("a", "a") ] ();
        Schema.table_schema ~name:"c" ~attrs:[ ("Z", Value.ints 2) ] ~fks:[ ("b", "b") ] ();
        Schema.table_schema ~name:"d" ~attrs:[ ("W", Value.ints 2) ] ~fks:[ ("c", "c") ] ();
      ]
  in
  let mk name n col fks =
    Table.create (Schema.find_table schema name)
      ~cols:[| Array.init n col |]
      ~fk_cols:(match fks with None -> [||] | Some f -> [| Array.init n f |])
  in
  let a = mk "a" 4 (fun i -> i mod 3) None in
  let b = mk "b" 7 (fun i -> i mod 2) (Some (fun i -> i mod 4)) in
  let c = mk "c" 11 (fun i -> i * i mod 2) (Some (fun i -> i * 3 mod 7)) in
  let d = mk "d" 17 (fun i -> i mod 2) (Some (fun i -> i * 5 mod 11)) in
  Database.create schema [ a; b; c; d ]

let chain4_query ?(selects = [ Query.eq "a" "X" 1; Query.eq "d" "W" 0 ]) () =
  Query.create
    ~tvars:[ ("a", "a"); ("b", "b"); ("c", "c"); ("d", "d") ]
    ~joins:
      [
        Query.join ~child:"b" ~fk:"a" ~parent:"a";
        Query.join ~child:"c" ~fk:"b" ~parent:"b";
        Query.join ~child:"d" ~fk:"c" ~parent:"c";
      ]
    ~selects ()

let oracle db = fun q -> Exec.query_size db q

(* ---- Jointree ------------------------------------------------------------ *)

let test_jointree_roundtrip () =
  let tree = Jointree.left_deep [ "a"; "b"; "c" ] in
  Alcotest.(check (option (list string)))
    "order_of inverts left_deep"
    (Some [ "a"; "b"; "c" ])
    (Jointree.order_of tree);
  Alcotest.(check (list string)) "leaves" [ "a"; "b"; "c" ] (Jointree.leaves tree);
  let bushy = Jointree.Join (tree, Jointree.Join (Jointree.Leaf "d", Jointree.Leaf "e")) in
  Alcotest.(check (option (list string))) "bushy has no order" None (Jointree.order_of bushy)

(* ---- executor vs weight propagation -------------------------------------- *)

let test_executor_matches_exec_fixture () =
  let db = chain4_db () in
  let q = chain4_query () in
  let truth = Exec.query_size db q in
  List.iter
    (fun order ->
      check_float
        (Printf.sprintf "order %s" (String.concat ">" order))
        truth
        (Hashjoin.count db q (Jointree.left_deep order)))
    (Jointree.orders q);
  (* a bushy shape: (a ⨝ b) ⨝ (c ⨝ d) *)
  let bushy =
    Jointree.Join
      ( Jointree.Join (Jointree.Leaf "a", Jointree.Leaf "b"),
        Jointree.Join (Jointree.Leaf "c", Jointree.Leaf "d") )
  in
  check_float "bushy tree" truth (Hashjoin.count db q bushy)

let test_executor_cartesian () =
  let db = chain4_db () in
  let q =
    Query.create
      ~tvars:[ ("a", "a"); ("d", "d") ]
      ~selects:[ Query.eq "d" "W" 0 ]
      ()
  in
  check_float "cartesian product"
    (Exec.query_size db q)
    (Hashjoin.count db q (Jointree.Join (Jointree.Leaf "a", Jointree.Leaf "d")))

let test_executor_accounting () =
  let db = chain4_db () in
  let q = chain4_query () in
  let result = Hashjoin.run db q (Jointree.left_deep [ "a"; "b"; "c"; "d" ]) in
  Alcotest.(check int) "ops: 4 scans + 3 joins" 7 (List.length (Hashjoin.ops result));
  let joins =
    List.filter (fun (n : Hashjoin.node) -> n.children <> []) (Hashjoin.ops result)
  in
  Alcotest.(check int) "intermediate rows = sum of join outputs"
    (List.fold_left (fun acc (n : Hashjoin.node) -> acc + n.out_rows) 0 joins)
    result.Hashjoin.intermediate_rows;
  Alcotest.(check int) "final rows = root output"
    result.Hashjoin.root.Hashjoin.out_rows result.Hashjoin.rows;
  List.iter
    (fun (n : Hashjoin.node) ->
      let width = List.length (Jointree.leaves n.subtree) in
      Alcotest.(check int) "bytes = rows * width * 8" (n.out_rows * width * 8) n.out_bytes)
    (Hashjoin.ops result)

let test_executor_rejects_wrong_tree () =
  let db = chain4_db () in
  let q = chain4_query () in
  Alcotest.check_raises "missing leaf"
    (Invalid_argument "Hashjoin.run: tree leaves do not match the query's tuple variables")
    (fun () -> ignore (Hashjoin.run db q (Jointree.left_deep [ "a"; "b"; "c" ])))

(* qcheck: random child-parent-grandparent chains, every left-deep order
   and the truth-optimal bushy tree agree bit-for-bit with query_size. *)
let gen_chain3_db =
  let open QCheck2.Gen in
  let* n_a = int_range 1 5 in
  let* n_b = int_range 1 8 in
  let* n_c = int_range 1 15 in
  let* acol = array_size (pure n_a) (int_range 0 2) in
  let* bcol = array_size (pure n_b) (int_range 0 1) in
  let* ccol = array_size (pure n_c) (int_range 0 1) in
  let* bfk = array_size (pure n_b) (int_range 0 (n_a - 1)) in
  let* cfk = array_size (pure n_c) (int_range 0 (n_b - 1)) in
  let schema =
    Schema.create
      [
        Schema.table_schema ~name:"a" ~attrs:[ ("X", Value.ints 3) ] ();
        Schema.table_schema ~name:"b" ~attrs:[ ("Y", Value.ints 2) ] ~fks:[ ("a", "a") ] ();
        Schema.table_schema ~name:"c" ~attrs:[ ("Z", Value.ints 2) ] ~fks:[ ("b", "b") ] ();
      ]
  in
  let a = Table.create (Schema.find_table schema "a") ~cols:[| acol |] ~fk_cols:[||] in
  let b = Table.create (Schema.find_table schema "b") ~cols:[| bcol |] ~fk_cols:[| bfk |] in
  let c = Table.create (Schema.find_table schema "c") ~cols:[| ccol |] ~fk_cols:[| cfk |] in
  pure (Database.create schema [ a; b; c ])

let chain3_query selects =
  Query.create
    ~tvars:[ ("a", "a"); ("b", "b"); ("c", "c") ]
    ~joins:
      [
        Query.join ~child:"b" ~fk:"a" ~parent:"a";
        Query.join ~child:"c" ~fk:"b" ~parent:"b";
      ]
    ~selects ()

let prop_executor_matches_exec =
  QCheck2.Test.make ~name:"hash-join executor = query_size (all orders)" ~count:150
    gen_chain3_db (fun db ->
      let ok = ref true in
      List.iter
        (fun selects ->
          let q = chain3_query selects in
          let truth = Exec.query_size db q in
          List.iter
            (fun order ->
              if Hashjoin.count db q (Jointree.left_deep order) <> truth then ok := false)
            (Jointree.orders q);
          let best = Optimizer.best ~bushy:true ~cost:(oracle db) q in
          if Hashjoin.count db q best.Optimizer.tree <> truth then ok := false)
        [
          [];
          [ Query.eq "a" "X" 1 ];
          [ Query.eq "a" "X" 0; Query.eq "c" "Z" 1 ];
          [ Query.eq "b" "Y" 0; Query.eq "c" "Z" 0 ];
        ];
      !ok)

(* ---- optimizer ------------------------------------------------------------ *)

let test_dp_matches_exhaustive () =
  let db = chain4_db () in
  List.iter
    (fun selects ->
      let q = chain4_query ~selects () in
      let truth = oracle db in
      let exhaustive =
        List.fold_left
          (fun acc order -> Float.min acc (Optimizer.order_cost ~cost:truth q order))
          infinity (Jointree.orders q)
      in
      let dp = Optimizer.best ~cost:truth q in
      check_float "dp cost = exhaustive min" exhaustive dp.Optimizer.cost;
      check_float "reported cost prices the reported tree"
        (Optimizer.sum_intermediates ~cost:truth q dp.Optimizer.tree)
        dp.Optimizer.cost;
      let bushy = Optimizer.best ~bushy:true ~cost:truth q in
      Alcotest.(check bool) "bushy <= left-deep" true
        (bushy.Optimizer.cost <= dp.Optimizer.cost +. 1e-9))
    [ []; [ Query.eq "a" "X" 1 ]; [ Query.eq "a" "X" 1; Query.eq "d" "W" 0 ] ]

let test_optimizer_rejects () =
  let db = chain4_db () in
  ignore db;
  let single = Query.create ~tvars:[ ("a", "a") ] () in
  Alcotest.(check bool) "single tv" true
    (try
       ignore (Optimizer.best ~cost:(fun _ -> 1.0) single);
       false
     with Invalid_argument _ -> true);
  let disconnected = Query.create ~tvars:[ ("a", "a"); ("d", "d") ] () in
  Alcotest.(check bool) "disconnected" true
    (try
       ignore (Optimizer.best ~cost:(fun _ -> 1.0) disconnected);
       false
     with Invalid_argument _ -> true)

(* Estimators that cannot price multi-join sub-queries must not abort the
   enumeration: the fallback prices them, and the chosen plan equals the
   plan the fallback oracle would pick on its own. *)
let test_unsupported_fallback () =
  let db = chain4_db () in
  let q = chain4_query () in
  let partial q' =
    if List.length q'.Query.tvars >= 2 then
      raise (Estimator.Unsupported "joins not supported")
    else oracle db q'
  in
  Alcotest.(check bool) "without a fallback, Unsupported propagates" true
    (try
       ignore (Optimizer.best ~cost:partial q);
       false
     with Estimator.Unsupported _ -> true);
  let fb = Optimizer.independence db in
  let with_fb = Optimizer.best ~fallback:fb ~cost:partial q in
  Alcotest.(check bool) "every priced subset used the fallback" true
    (with_fb.Optimizer.n_fallbacks = with_fb.Optimizer.n_subsets
    && with_fb.Optimizer.n_fallbacks > 0);
  let pure_fb = Optimizer.best ~cost:fb q in
  Alcotest.(check bool) "plan = the fallback oracle's own plan" true
    (with_fb.Optimizer.tree = pure_fb.Optimizer.tree);
  check_float "cost = the fallback oracle's own cost" pure_fb.Optimizer.cost
    with_fb.Optimizer.cost

let test_memoized_pricing () =
  let db = chain4_db () in
  let q = chain4_query () in
  let calls = ref 0 in
  let counting q' =
    incr calls;
    oracle db q'
  in
  let r = Optimizer.best ~cost:counting q in
  Alcotest.(check int) "one oracle call per connected subset" r.Optimizer.n_subsets !calls;
  (* 4-chain connected subsets of size >= 2: 3 pairs + 2 triples + 1 full *)
  Alcotest.(check int) "chain-4 connected subsets" 6 r.Optimizer.n_subsets

(* ---- regret --------------------------------------------------------------- *)

let test_regret_exact_oracle_is_one () =
  let db = chain4_db () in
  let suite =
    Selest_workload.Suite.make ~name:"opt-test"
      ~skeleton:(chain4_query ~selects:[] ())
      ~attrs:[ ("a", "X"); ("d", "W") ]
  in
  let exact =
    { Estimator.name = "exact"; bytes = 0; prepare = ignore; estimate = oracle db }
  in
  let avi = Selest_est.Avi.build db in
  match Selest_workload.Regret.run db suite [ exact; avi ] with
  | [ e; a ] ->
    Alcotest.(check int) "all cells swept" 6 e.Selest_workload.Regret.n_queries;
    Alcotest.(check int) "exact picks the optimal plan every time"
      e.Selest_workload.Regret.n_queries e.Selest_workload.Regret.n_plan_matches;
    check_float "exact runtime regret" 1.0 e.Selest_workload.Regret.runtime_regret_mean;
    check_float "exact rows regret" 1.0 e.Selest_workload.Regret.rows_regret_mean;
    check_float "exact rows regret max" 1.0 e.Selest_workload.Regret.rows_regret_max;
    Alcotest.(check bool) "avi rows regret >= 1" true
      (a.Selest_workload.Regret.rows_regret_mean >= 1.0)
  | _ -> Alcotest.fail "expected two outcomes"

(* ---- explain --------------------------------------------------------------- *)

let test_explain_render () =
  let db = chain4_db () in
  let q = chain4_query () in
  let best = Optimizer.best ~cost:(oracle db) q in
  let result = Hashjoin.run db q best.Optimizer.tree in
  let text = Explain.render ~est:(oracle db) q result in
  let has sub =
    let n = String.length text and m = String.length sub in
    let rec go i = i + m <= n && (String.sub text i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "renders estimates" true (has "est=");
  Alcotest.(check bool) "renders actuals" true (has "actual=");
  Alcotest.(check bool) "renders joins" true (has "hash_join");
  Alcotest.(check bool) "renders scans" true (has "scan a=a");
  (* an exact oracle's per-operator estimates equal the actual rows *)
  List.iter
    (fun (n : Hashjoin.node) ->
      check_float "est = actual under the exact oracle"
        (float_of_int n.out_rows)
        (oracle db (Jointree.subquery q (Jointree.leaves n.subtree))))
    (Hashjoin.ops result)

(* ---- planner shim ----------------------------------------------------------- *)

let test_planner_shim_consistent () =
  let db = chain4_db () in
  let q = chain4_query () in
  let truth = oracle db in
  let order, cost = Selest_workload.Planner.best_plan truth q in
  let opt = Optimizer.best ~cost:truth q in
  check_float "shim best cost = optimizer best cost" opt.Optimizer.cost cost;
  check_float "shim order prices to the same cost"
    (Optimizer.order_cost ~cost:truth q order)
    cost

let () =
  Alcotest.run "opt"
    [
      ( "jointree",
        [ Alcotest.test_case "roundtrip" `Quick test_jointree_roundtrip ] );
      ( "executor",
        [
          Alcotest.test_case "matches exec on fixture" `Quick
            test_executor_matches_exec_fixture;
          Alcotest.test_case "cartesian" `Quick test_executor_cartesian;
          Alcotest.test_case "per-operator accounting" `Quick test_executor_accounting;
          Alcotest.test_case "rejects wrong tree" `Quick test_executor_rejects_wrong_tree;
          QCheck_alcotest.to_alcotest prop_executor_matches_exec;
        ] );
      ( "optimizer",
        [
          Alcotest.test_case "dp = exhaustive" `Quick test_dp_matches_exhaustive;
          Alcotest.test_case "rejects degenerate queries" `Quick test_optimizer_rejects;
          Alcotest.test_case "unsupported fallback" `Quick test_unsupported_fallback;
          Alcotest.test_case "memoized pricing" `Quick test_memoized_pricing;
        ] );
      ( "regret",
        [ Alcotest.test_case "exact oracle regret = 1.0" `Quick
            test_regret_exact_oracle_is_one ] );
      ( "explain",
        [ Alcotest.test_case "render" `Quick test_explain_render ] );
      ( "planner shim",
        [ Alcotest.test_case "consistent with optimizer" `Quick
            test_planner_shim_consistent ] );
    ]
