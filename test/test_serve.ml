open Selest_db
open Selest_serve

let check_float = Alcotest.(check (float 1e-6))

(* Small TB database + learned PRM shared by the registry/server tests. *)
let db = lazy (Selest_synth.Tb.generate ~patients:300 ~contacts:2_000 ~strains:250 ~seed:33 ())
let model = lazy (Selest_prm.Learn.learn_prm ~budget_bytes:2_048 ~seed:7 (Lazy.force db))

(* ---- Canon ---------------------------------------------------------------- *)

let tb_query ?(joins = [ "c.patient=p" ]) selects =
  Qparse.parse (Lazy.force db) ~tvars:[ "c=contact"; "p=patient" ] ~joins ~selects ()

let test_canon_pred_normalization () =
  let q sels = Canon.key (tb_query sels) in
  Alcotest.(check string) "set sorted+deduped"
    (q [ "c.Contype={household,roommate}" ])
    (q [ "c.Contype={roommate,household,roommate}" ]);
  Alcotest.(check string) "singleton set = Eq" (q [ "p.USBorn=1" ]) (q [ "p.USBorn={1}" ]);
  Alcotest.(check string) "one-point range = Eq" (q [ "p.Age=2" ]) (q [ "p.Age=2..2" ]);
  Alcotest.(check bool) "distinct predicates stay distinct" false
    (q [ "p.Age=1..3" ] = q [ "p.Age=1..4" ])

let test_canon_clause_order () =
  Alcotest.(check string) "select order irrelevant"
    (Canon.key (tb_query [ "p.USBorn=1"; "c.Contype=2" ]))
    (Canon.key (tb_query [ "c.Contype=2"; "p.USBorn=1" ]));
  let forward =
    Qparse.parse (Lazy.force db) ~tvars:[ "c=contact"; "p=patient" ]
      ~joins:[ "c.patient=p" ] ~selects:[ "p.USBorn=1" ] ()
  in
  let reversed =
    Qparse.parse (Lazy.force db) ~tvars:[ "p=patient"; "c=contact" ]
      ~joins:[ "c.patient=p" ] ~selects:[ "p.USBorn=1" ] ()
  in
  Alcotest.(check string) "tvar order irrelevant" (Canon.key forward) (Canon.key reversed)

let test_canon_normalize_preserves_semantics () =
  let q = tb_query [ "p.Age={3,1,1}"; "c.Age=2..2" ] in
  let n = Canon.normalize q in
  Alcotest.(check int) "same select count"
    (List.length q.Query.selects) (List.length n.Query.selects);
  List.iter
    (fun s' ->
      let s =
        List.find
          (fun s -> s.Query.sel_tv = s'.Query.sel_tv && s.Query.sel_attr = s'.Query.sel_attr)
          q.Query.selects
      in
      for v = 0 to 10 do
        Alcotest.(check bool)
          (Printf.sprintf "pred_holds %d" v)
          (Query.pred_holds s.Query.pred v)
          (Query.pred_holds s'.Query.pred v)
      done)
    n.Query.selects

(* Property: the cache key is invariant under shuffling tuple variables,
   joins, selects and the values inside a set predicate. *)
let prop_canon_order_insensitive =
  let open QCheck2.Gen in
  let gen_pred =
    oneof
      [
        (int_range 0 5 >|= fun v -> Query.Eq v);
        (list_size (int_range 1 4) (int_range 0 5) >|= fun vs -> Query.In_set vs);
        (pair (int_range 0 5) (int_range 0 5) >|= fun (a, b) -> Query.Range (a, b));
      ]
  in
  let gen_select =
    let* tv = oneofl [ "c"; "p" ] in
    let* attr = oneofl [ "x"; "y"; "z" ] in
    let* pred = gen_pred in
    return { Query.sel_tv = tv; sel_attr = attr; pred }
  in
  let shuffle_pred = function
    | Query.In_set vs -> shuffle_l vs >|= fun vs -> Query.In_set vs
    | p -> return p
  in
  let gen_case =
    let* selects = list_size (int_range 0 6) gen_select in
    let* shuffled = shuffle_l selects in
    let* shuffled =
      flatten_l
        (List.map
           (fun s -> shuffle_pred s.Query.pred >|= fun pred -> { s with Query.pred })
           shuffled)
    in
    let* tvars = shuffle_l [ ("c", "contact"); ("p", "patient") ] in
    return (selects, shuffled, tvars)
  in
  QCheck2.Test.make ~name:"canonical key is order-insensitive" ~count:500 gen_case
    (fun (selects, shuffled, tvars) ->
      let joins = [ Query.join ~child:"c" ~fk:"patient" ~parent:"p" ] in
      let q1 =
        Query.create ~tvars:[ ("c", "contact"); ("p", "patient") ] ~joins ~selects ()
      in
      let q2 = Query.create ~tvars ~joins ~selects:shuffled () in
      Canon.key q1 = Canon.key q2)

(* ---- Lru ------------------------------------------------------------------- *)

(* A minimal entry: empty vec snapshot, 3-byte text response, no binary
   frame or model name — each costs 3 + Bytesize.per_param = 7 bytes. *)
let ent ?(text = "abc") v =
  { Lru.est = v; text; bin = ""; vec = Squery.Vec.empty; model = ""; version = 1 }

let test_lru_hit_miss_counters () =
  let c = Lru.create ~capacity_bytes:1_000 in
  Alcotest.(check bool) "empty" true
    (match Lru.find c 0 with _ -> false | exception Not_found -> true);
  Lru.add c 0 (ent 42.0);
  check_float "hit" 42.0 (Lru.find c 0).Lru.est;
  Alcotest.(check int) "hits" 1 (Lru.hits c);
  Alcotest.(check int) "misses" 1 (Lru.misses c);
  Alcotest.(check int) "no evictions" 0 (Lru.evictions c)

let test_lru_eviction_order () =
  (* capacity for exactly three 7-byte entries *)
  let c = Lru.create ~capacity_bytes:21 in
  Lru.add c 1 (ent 1.0);
  Lru.add c 2 (ent 2.0);
  Lru.add c 3 (ent 3.0);
  (* touch 1 so 2 is now the coldest *)
  ignore (Lru.find c 1);
  Lru.add c 4 (ent 4.0);
  Alcotest.(check bool) "2 evicted" false (Lru.mem c 2);
  Alcotest.(check bool) "1 kept (recently used)" true (Lru.mem c 1);
  Alcotest.(check bool) "3 kept" true (Lru.mem c 3);
  Alcotest.(check int) "one eviction" 1 (Lru.evictions c);
  Alcotest.(check (list int)) "recency order" [ 4; 1; 3 ] (Lru.hashes_hot_first c)

let test_lru_byte_budget () =
  let c = Lru.create ~capacity_bytes:21 in
  for i = 0 to 9 do
    Lru.add c i (ent (float_of_int i))
  done;
  Alcotest.(check bool) "within budget" true (Lru.bytes c <= Lru.capacity_bytes c);
  Alcotest.(check int) "three entries fit" 3 (Lru.length c);
  Alcotest.(check int) "bytes accounted" 21 (Lru.bytes c);
  Alcotest.(check int) "seven evictions" 7 (Lru.evictions c);
  (* refreshing an existing hash must not change accounting *)
  Lru.add c 9 (ent 99.0);
  Alcotest.(check int) "refresh is byte-neutral" 21 (Lru.bytes c);
  check_float "refresh updates value" 99.0 (Lru.find c 9).Lru.est

let test_lru_oversized_entry () =
  let c = Lru.create ~capacity_bytes:8 in
  Lru.add c 7 (ent ~text:"a-response-larger-than-the-whole-budget" 1.0);
  Alcotest.(check int) "immediately evicted" 0 (Lru.length c);
  Alcotest.(check int) "bytes zero" 0 (Lru.bytes c)

let test_lru_collision_recount () =
  let c = Lru.create ~capacity_bytes:1_000 in
  Lru.add c 5 (ent 1.0);
  ignore (Lru.find c 5);
  (* the server found the hash but full-key verification failed *)
  Lru.collision c;
  Alcotest.(check int) "hit recounted away" 0 (Lru.hits c);
  Alcotest.(check int) "counted as miss" 1 (Lru.misses c);
  Alcotest.(check int) "collision recorded" 1 (Lru.collisions c);
  (* the colliding query overwrites the resident entry *)
  Lru.add c 5 (ent 2.0);
  check_float "newest wins" 2.0 (Lru.find c 5).Lru.est;
  Alcotest.(check int) "still one entry" 1 (Lru.length c)

(* ---- Metrics ---------------------------------------------------------------- *)

let test_metrics_counters () =
  let m = Metrics.create () in
  Metrics.incr m "requests";
  Metrics.incr m "requests";
  Metrics.incr ~by:3 m "loads";
  Alcotest.(check int) "requests" 2 (Metrics.get m "requests");
  Alcotest.(check int) "loads" 3 (Metrics.get m "loads");
  Alcotest.(check int) "absent" 0 (Metrics.get m "nope");
  Alcotest.(check (list (pair string int))) "sorted"
    [ ("loads", 3); ("requests", 2) ]
    (Metrics.counters m)

let test_metrics_concurrent_incr () =
  (* ESTBATCH workers bump counters from several domains at once; the
     mutex must not lose increments or observations. *)
  let m = Metrics.create () in
  let n_domains = 4 and per_domain = 25_000 in
  let worker () =
    for _ = 1 to per_domain do
      Metrics.incr m "shared";
      Metrics.observe m 10e-6
    done
  in
  let domains = List.init n_domains (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  Alcotest.(check int) "no lost increments" (n_domains * per_domain)
    (Metrics.get m "shared");
  Alcotest.(check int) "no lost observations" (n_domains * per_domain)
    (Metrics.observations m)

let test_metrics_report () =
  let m = Metrics.create () in
  Metrics.incr m "requests";
  Metrics.observe m 100e-6;
  let report = Metrics.report m in
  let f k = List.assoc_opt k report in
  Alcotest.(check (option string)) "counter listed" (Some "1") (f "requests");
  Alcotest.(check (option string)) "lat_count" (Some "1") (f "lat_count");
  Alcotest.(check bool) "bucket layout exposed" true
    (f "lat_buckets" <> None && f "lat_bucket_base" <> None && f "lat_hist" <> None);
  Alcotest.(check bool) "quantization asymmetry documented" true
    (f "lat_quantization" <> None)

let test_metrics_percentiles () =
  let m = Metrics.create () in
  Alcotest.(check (float 0.0)) "empty p50" 0.0 (Metrics.percentile_us m 0.5);
  (* 50 fast requests at ~10us, 50 slow at ~1000us *)
  for _ = 1 to 50 do
    Metrics.observe m 10e-6
  done;
  for _ = 1 to 50 do
    Metrics.observe m 1000e-6
  done;
  Alcotest.(check int) "count" 100 (Metrics.observations m);
  let p50 = Metrics.percentile_us m 0.50 in
  let p99 = Metrics.percentile_us m 0.99 in
  Alcotest.(check bool) "p50 in fast band" true (p50 >= 10.0 && p50 < 20.0);
  Alcotest.(check bool) "p99 in slow band" true (p99 >= 1000.0 && p99 < 2000.0);
  Alcotest.(check bool) "mean between bands" true
    (Metrics.mean_latency_us m > 100.0 && Metrics.mean_latency_us m < 1000.0);
  Alcotest.(check bool) "monotone" true (p50 <= Metrics.percentile_us m 0.95)

(* ---- Protocol ---------------------------------------------------------------- *)

let test_protocol_parse () =
  let p = Protocol.parse_request in
  Alcotest.(check bool) "ping" true (p "ping" = Ok Protocol.Ping);
  Alcotest.(check bool) "stats" true (p "  STATS  " = Ok Protocol.Stats);
  Alcotest.(check bool) "shutdown" true (p "Shutdown" = Ok Protocol.Shutdown);
  Alcotest.(check bool) "load" true
    (p "LOAD census /tmp/m.prm" = Ok (Protocol.Load { name = "census"; path = "/tmp/m.prm" }));
  Alcotest.(check bool) "load arity" true (Result.is_error (p "LOAD census"));
  Alcotest.(check bool) "est default model" true
    (p "EST p=patient" = Ok (Protocol.Est { model = None; body = "p=patient" }));
  Alcotest.(check bool) "est named model" true
    (p "EST @census p=patient ; ; p.Age=1"
    = Ok (Protocol.Est { model = Some "census"; body = "p=patient ; ; p.Age=1" }));
  Alcotest.(check bool) "est empty" true (Result.is_error (p "EST"));
  Alcotest.(check bool) "unknown" true (Result.is_error (p "FROBNICATE 3"));
  Alcotest.(check bool) "empty" true (Result.is_error (p "   "))

let test_protocol_sections () =
  let tvars, joins, selects =
    Protocol.split_sections
      "c=contact, p=patient ; c.patient=p ; c.Contype={household,roommate}, p.Age=1..3"
  in
  Alcotest.(check (list string)) "tvars" [ "c=contact"; "p=patient" ] tvars;
  Alcotest.(check (list string)) "joins" [ "c.patient=p" ] joins;
  Alcotest.(check (list string)) "braced comma survives"
    [ "c.Contype={household,roommate}"; "p.Age=1..3" ]
    selects;
  let tvars, joins, selects = Protocol.split_sections "p=patient ;; p.Age=2" in
  Alcotest.(check int) "empty join section" 0 (List.length joins);
  Alcotest.(check int) "tvars" 1 (List.length tvars);
  Alcotest.(check int) "selects" 1 (List.length selects);
  Alcotest.(check bool) "too many sections" true
    (try
       ignore (Protocol.split_sections "a;b;c;d");
       false
     with Failure _ -> true)

let test_protocol_responses () =
  Alcotest.(check string) "ok payload" "OK 12.5" (Protocol.ok "12.5");
  Alcotest.(check string) "bare ok" "OK" (Protocol.ok "");
  Alcotest.(check string) "err one line" "ERR a b" (Protocol.err "a\nb");
  Alcotest.(check bool) "pong is ok" true (Protocol.is_ok Protocol.pong);
  Alcotest.(check bool) "err detected" true (Protocol.is_err (Protocol.err "x"));
  Alcotest.(check string) "payload" "12.5" (Protocol.payload "OK 12.5");
  Alcotest.(check (option string)) "stats field" (Some "7")
    (Protocol.stats_field "OK cache_hits=7 cache_misses=3" "cache_hits");
  Alcotest.(check (option string)) "stats field absent" None
    (Protocol.stats_field "OK cache_hits=7" "nope")

let test_protocol_estbatch_parse () =
  let p = Protocol.parse_request in
  Alcotest.(check bool) "single body" true
    (p "ESTBATCH p=patient ; ; p.Age=1"
    = Ok (Protocol.Estbatch { model = None; bodies = [ "p=patient ; ; p.Age=1" ] }));
  Alcotest.(check bool) "split on ||" true
    (p "ESTBATCH a ;; x || b ;; y || c ;; z"
    = Ok (Protocol.Estbatch { model = None; bodies = [ "a ;; x"; "b ;; y"; "c ;; z" ] }));
  Alcotest.(check bool) "named model" true
    (p "ESTBATCH @census p=patient ;; p.Age=1 || p=patient ;; p.Age=2"
    = Ok
        (Protocol.Estbatch
           {
             model = Some "census";
             bodies = [ "p=patient ;; p.Age=1"; "p=patient ;; p.Age=2" ];
           }));
  Alcotest.(check bool) "braced commas survive" true
    (p "ESTBATCH p=patient ;; p.Age={1,2} || p=patient ;; p.Age=3"
    = Ok
        (Protocol.Estbatch
           { model = None; bodies = [ "p=patient ;; p.Age={1,2}"; "p=patient ;; p.Age=3" ] }));
  Alcotest.(check bool) "no bodies" true (Result.is_error (p "ESTBATCH"));
  Alcotest.(check bool) "bare @model" true (Result.is_error (p "ESTBATCH @census"));
  Alcotest.(check bool) "empty model name" true (Result.is_error (p "ESTBATCH @ x"));
  Alcotest.(check bool) "empty body in batch" true (Result.is_error (p "ESTBATCH a || "))

let test_protocol_obs_verbs () =
  let p = Protocol.parse_request in
  Alcotest.(check bool) "explain" true
    (p "EXPLAIN p=patient ; ; p.Age=1"
    = Ok (Protocol.Explain { model = None; body = "p=patient ; ; p.Age=1" }));
  Alcotest.(check bool) "explain named model" true
    (p "explain @tb p=patient" = Ok (Protocol.Explain { model = Some "tb"; body = "p=patient" }));
  Alcotest.(check bool) "explain empty" true (Result.is_error (p "EXPLAIN"));
  Alcotest.(check bool) "truth" true
    (p "TRUTH 120 p=patient ; ; p.Age=1"
    = Ok (Protocol.Truth { model = None; truth = 120.0; body = "p=patient ; ; p.Age=1" }));
  Alcotest.(check bool) "truth named model" true
    (p "TRUTH @tb 3.5 p=patient"
    = Ok (Protocol.Truth { model = Some "tb"; truth = 3.5; body = "p=patient" }));
  Alcotest.(check bool) "truth bad number" true (Result.is_error (p "TRUTH abc p=patient"));
  Alcotest.(check bool) "truth negative" true (Result.is_error (p "TRUTH -1 p=patient"));
  Alcotest.(check bool) "truth missing body" true (Result.is_error (p "TRUTH 12"));
  Alcotest.(check bool) "metrics" true (p "METRICS" = Ok Protocol.Metrics);
  Alcotest.(check bool) "health" true (p "HEALTH" = Ok Protocol.Health);
  Alcotest.(check bool) "health case" true (p "health" = Ok Protocol.Health);
  Alcotest.(check bool) "slowlog bare" true
    (p "SLOWLOG" = Ok (Protocol.Slowlog { n = None }));
  Alcotest.(check bool) "slowlog count" true
    (p "slowlog 7" = Ok (Protocol.Slowlog { n = Some 7 }));
  Alcotest.(check bool) "slowlog bad count" true (Result.is_error (p "SLOWLOG x"));
  Alcotest.(check bool) "slowlog zero" true (Result.is_error (p "SLOWLOG 0"));
  (* multi-line framing *)
  Alcotest.(check string) "multiline header" "OK lines=2\na\nb"
    (Protocol.ok_multiline "a\nb\n");
  Alcotest.(check string) "empty multiline" "OK lines=0" (Protocol.ok_multiline "");
  Alcotest.(check int) "extra lines" 2 (Protocol.extra_lines "OK lines=2");
  Alcotest.(check int) "single-line response" 0 (Protocol.extra_lines "OK 42");
  Alcotest.(check int) "err response" 0 (Protocol.extra_lines "ERR nope")

(* ---- Registry ----------------------------------------------------------------- *)

let test_registry_versions () =
  let db0 = Lazy.force db in
  let m = Lazy.force model in
  let r = Registry.create ~schema:(Database.schema db0) in
  Alcotest.(check bool) "empty default" true (Registry.default r = None);
  let e1 = Registry.register r ~name:"tb" m in
  Alcotest.(check int) "first version" 1 e1.Registry.version;
  let e2 = Registry.register r ~name:"tb" m in
  Alcotest.(check int) "hot reload bumps version" 2 e2.Registry.version;
  let path = Filename.temp_file "selest" ".prm" in
  Selest_prm.Serialize.save path m;
  let e3 = Registry.load r ~name:"tb" ~path in
  Sys.remove path;
  Alcotest.(check int) "load bumps again" 3 e3.Registry.version;
  Alcotest.(check string) "source recorded" path e3.Registry.source;
  Alcotest.(check string) "fingerprint matches registry"
    (Registry.schema_fingerprint r) e3.Registry.fingerprint;
  (match Registry.default r with
  | Some ("tb", e) -> Alcotest.(check int) "default is latest" 3 e.Registry.version
  | _ -> Alcotest.fail "default missing");
  Alcotest.(check int) "one name" 1 (Registry.size r)

let test_registry_rejects_bad_files () =
  let db0 = Lazy.force db in
  let r = Registry.create ~schema:(Database.schema db0) in
  let rejects path =
    try
      ignore (Registry.load r ~name:"bad" ~path);
      false
    with Selest_prm.Serialize.Error _ -> true
  in
  Alcotest.(check bool) "missing file" true (rejects "/nonexistent/model.prm");
  let garbage = Filename.temp_file "selest" ".prm" in
  let oc = open_out garbage in
  output_string oc "(not-a-model 42)";
  close_out oc;
  Alcotest.(check bool) "garbage file" true (rejects garbage);
  Sys.remove garbage;
  Alcotest.(check int) "registry unchanged" 0 (Registry.size r);
  (* a model for a different schema must be rejected on register too *)
  let census = Selest_synth.Census.generate ~rows:500 ~seed:1 () in
  let census_reg = Registry.create ~schema:(Database.schema census) in
  Alcotest.(check bool) "schema mismatch on register" true
    (try
       ignore (Registry.register census_reg ~name:"tb" (Lazy.force model));
       false
     with Invalid_argument _ -> true)

(* ---- Server (transport-free) ---------------------------------------------------- *)

let fresh_server () =
  let db0 = Lazy.force db in
  let server = Server.create ~db:db0 ~socket:"(test: unused)" () in
  ignore (Registry.register (Server.registry server) ~name:"default" (Lazy.force model));
  server

let test_server_handle_line () =
  let server = fresh_server () in
  let ask line = fst (Server.handle_line server line) in
  Alcotest.(check string) "ping" "PONG" (ask "PING");
  let est = ask "EST c=contact, p=patient ; c.patient=p ; p.USBorn=1" in
  Alcotest.(check bool) "est ok" true (Protocol.is_ok est);
  let direct =
    Selest_plan.Estimate.estimate (Lazy.force model)
      ~sizes:(Selest_plan.Estimate.sizes_of_db (Lazy.force db))
      (tb_query [ "p.USBorn=1" ])
  in
  check_float "matches direct API" direct (float_of_string (Protocol.payload est));
  Alcotest.(check bool) "unknown model" true (Protocol.is_err (ask "EST @nope p=patient"));
  Alcotest.(check bool) "bad query" true (Protocol.is_err (ask "EST z=zebra"));
  Alcotest.(check bool) "bad value" true
    (Protocol.is_err (ask "EST p=patient ; ; p.USBorn=999"));
  Alcotest.(check bool) "still serving" true (ask "PING" = "PONG");
  let stats = ask "STATS" in
  Alcotest.(check (option string)) "errors counted" (Some "3")
    (Protocol.stats_field stats "est_errors")

let test_server_explainplan () =
  let server = fresh_server () in
  let ask line = fst (Server.handle_line server line) in
  let resp =
    ask "EXPLAINPLAN c=contact, p=patient ; c.patient=p ; p.USBorn=1, c.Contype=2"
  in
  Alcotest.(check bool) "ok multi-line" true (Protocol.is_ok resp);
  Alcotest.(check bool) "announces extra lines" true
    (Protocol.extra_lines (List.hd (String.split_on_char '\n' resp)) > 0);
  let has sub =
    let n = String.length resp and m = String.length sub in
    let rec go i = i + m <= n && (String.sub resp i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "renders the join" true (has "hash_join c.patient=p");
  Alcotest.(check bool) "renders estimates" true (has "est=");
  Alcotest.(check bool) "renders actuals" true (has "actual=");
  Alcotest.(check bool) "renders the C_out summary" true (has "C_out:");
  (* actual cardinality of the final join = the exact result size *)
  let truth =
    Selest_db.Exec.query_size (Lazy.force db)
      (tb_query [ "p.USBorn=1"; "c.Contype=2" ])
  in
  Alcotest.(check bool) "actual rows are exact" true
    (has (Printf.sprintf "(actual=%.0f rows" truth));
  (* single tuple variable: a plain scan plan, no optimization needed *)
  let single = ask "EXPLAINPLAN p=patient ; ; p.USBorn=1" in
  Alcotest.(check bool) "single-tv ok" true (Protocol.is_ok single);
  (* errors stay single-line ERR, the server keeps serving *)
  Alcotest.(check bool) "bad query is ERR" true
    (Protocol.is_err (ask "EXPLAINPLAN z=zebra"));
  Alcotest.(check string) "still serving" "PONG" (ask "PING")

let test_server_estbatch () =
  (* Two servers over the same db/model: one answers each query through
     sequential EST, the other with one parallel ESTBATCH on a cold cache.
     Payloads must match character for character — %.17g round-trips
     doubles exactly, so string equality is bit-identity. *)
  let bodies =
    [
      "c=contact, p=patient ; c.patient=p ; p.USBorn=1";
      "c=contact, p=patient ; c.patient=p ; c.Contype=2, p.USBorn=0";
      "p=patient ; ; p.USBorn=1";
      (* same canonical key as the previous body: exercises miss dedup *)
      "p=patient ; ; p.USBorn={1}";
    ]
  in
  let seq_server = fresh_server () in
  let seq =
    List.map
      (fun b -> Protocol.payload (fst (Server.handle_line seq_server ("EST " ^ b))))
      bodies
  in
  let batch_server =
    Server.create ~db:(Lazy.force db) ~pool_size:4 ~socket:"(test: unused)" ()
  in
  ignore (Registry.register (Server.registry batch_server) ~name:"default" (Lazy.force model));
  let line = "ESTBATCH " ^ String.concat " || " bodies in
  let reply = fst (Server.handle_line batch_server line) in
  Alcotest.(check bool) "batch ok" true (Protocol.is_ok reply);
  Alcotest.(check (list string)) "bit-identical to sequential EST" seq
    (String.split_on_char ' ' (Protocol.payload reply));
  (* the last two bodies share one canonical key: only three inferences ran *)
  Alcotest.(check int) "misses deduped" 3
    (Metrics.get (Server.metrics batch_server) "infer.default");
  (* a second identical batch is answered entirely from the cache *)
  Alcotest.(check string) "cache-served batch identical" reply
    (fst (Server.handle_line batch_server line));
  Alcotest.(check int) "no new inferences" 3
    (Metrics.get (Server.metrics batch_server) "infer.default");
  (* all-or-nothing: one bad body fails the whole batch with its index *)
  let err = fst (Server.handle_line batch_server "ESTBATCH p=patient ; ; p.USBorn=1 || z=zebra") in
  Alcotest.(check bool) "all-or-nothing" true (Protocol.is_err err);
  Alcotest.(check bool) "error names the query" true
    (String.length err >= 12 && String.sub err 0 12 = "ERR query 2:");
  Alcotest.(check bool) "unknown model" true
    (Protocol.is_err (fst (Server.handle_line batch_server "ESTBATCH @nope p=patient ;; p.USBorn=1")));
  Server.shutdown_pool batch_server;
  Server.shutdown_pool seq_server

(* ---- end-to-end over the socket --------------------------------------------------- *)

let test_socket_round_trip () =
  let db0 = Lazy.force db in
  let m = Lazy.force model in
  let model_path = Filename.temp_file "selest" ".prm" in
  Selest_prm.Serialize.save model_path m;
  let socket = Filename.temp_file "selest" ".sock" in
  Sys.remove socket;
  let server = Server.create ~db:db0 ~socket () in
  let thread = Thread.create Server.run server in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown server;
      Thread.join thread;
      Sys.remove model_path)
    (fun () ->
      Client.with_connection ~retries:100 ~socket (fun c ->
          Alcotest.(check string) "ping" "PONG" (Client.request c "PING");
          (* estimating before any model is loaded is a protocol error *)
          Alcotest.(check bool) "no model yet" true
            (Protocol.is_err (Client.request c "EST p=patient ; ; p.USBorn=1"));
          (* a bad model path is rejected without killing the server *)
          Alcotest.(check bool) "bad load rejected" true
            (Protocol.is_err (Client.request c "LOAD tb /nonexistent.prm"));
          let loaded = Client.request c (Printf.sprintf "LOAD tb %s" model_path) in
          Alcotest.(check bool) "load ok" true (Protocol.is_ok loaded);
          (* same query twice, written differently: one miss then one hit *)
          let e1 =
            Client.request c "EST c=contact, p=patient ; c.patient=p ; p.USBorn=1, c.Contype=2"
          in
          let e2 =
            Client.request c "EST p=patient, c=contact ; c.patient=p ; c.Contype={2}, p.USBorn=1"
          in
          Alcotest.(check bool) "est ok" true (Protocol.is_ok e1 && Protocol.is_ok e2);
          check_float "both answers equal"
            (float_of_string (Protocol.payload e1))
            (float_of_string (Protocol.payload e2));
          let direct =
            Selest_plan.Estimate.estimate m
              ~sizes:(Selest_plan.Estimate.sizes_of_db db0)
              (tb_query [ "p.USBorn=1"; "c.Contype=2" ])
          in
          check_float "equals the direct Est API" direct
            (float_of_string (Protocol.payload e1));
          let stats = Client.request c "STATS" in
          Alcotest.(check (option string)) "one miss" (Some "1")
            (Protocol.stats_field stats "cache_misses");
          Alcotest.(check (option string)) "one hit" (Some "1")
            (Protocol.stats_field stats "cache_hits");
          (* malformed query: ERR, connection and server both survive *)
          Alcotest.(check bool) "malformed query" true
            (Protocol.is_err (Client.request c "EST utter garbage"));
          Alcotest.(check string) "still alive" "PONG" (Client.request c "PING");
          Alcotest.(check string) "shutdown" "OK bye" (Client.request c "SHUTDOWN")));
  Alcotest.(check bool) "socket removed after join" false (Sys.file_exists socket)

(* A TRUTH whose q-error crosses the gate must land in the slow-log with
   a replayed span tree, and HEALTH must report it — all through a real
   socket, so the multi-line framing is exercised too. *)
let test_socket_slowlog_capture () =
  let contains line sub =
    let n = String.length sub in
    let rec probe i =
      i + n <= String.length line && (String.sub line i n = sub || probe (i + 1))
    in
    probe 0
  in
  let db0 = Lazy.force db in
  let m = Lazy.force model in
  let model_path = Filename.temp_file "selest" ".prm" in
  Selest_prm.Serialize.save model_path m;
  let socket = Filename.temp_file "selest" ".sock" in
  Sys.remove socket;
  let server = Server.create ~qerror_gate:50.0 ~db:db0 ~socket () in
  let thread = Thread.create Server.run server in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown server;
      Thread.join thread;
      Sys.remove model_path)
    (fun () ->
      Client.with_connection ~retries:100 ~socket (fun c ->
          Alcotest.(check bool) "load ok" true
            (Protocol.is_ok (Client.request c (Printf.sprintf "LOAD tb %s" model_path)));
          Alcotest.(check bool) "est ok" true
            (Protocol.is_ok (Client.request c "EST p=patient ; ; p.USBorn=1"));
          (* absurd ground truth: the q-error crosses the gate *)
          Alcotest.(check bool) "truth ok" true
            (Protocol.is_ok (Client.request c "TRUTH 1e12 p=patient ; ; p.USBorn=1"));
          let sl = Client.request c "SLOWLOG 5" in
          Alcotest.(check bool) "slowlog ok" true (Protocol.is_ok sl);
          let lines = String.split_on_char '\n' sl in
          Alcotest.(check bool) "qerror capture listed" true
            (List.exists
               (fun l -> contains l "reason=qerror" && contains l "verb=truth")
               lines);
          Alcotest.(check bool) "span tree replayed" true
            (List.exists (fun l -> contains l "span est.parse") lines);
          Alcotest.(check bool) "generic engine spans present" true
            (List.exists (fun l -> contains l "span ve.eliminate") lines);
          (* the backing ring agrees with the text dump *)
          (match Selest_obs.Slowlog.recent ~n:1 (Server.slowlog server) with
          | [ e ] ->
            Alcotest.(check string) "ring verb" "truth" e.Selest_obs.Slowlog.verb;
            Alcotest.(check bool) "ring qerror recorded" true
              (match e.Selest_obs.Slowlog.qerror with
              | Some q -> q > 50.0
              | None -> false)
          | _ -> Alcotest.fail "expected one slow-log entry");
          let h = Client.request c "HEALTH" in
          Alcotest.(check bool) "health ok" true (Protocol.is_ok h);
          let hlines = String.split_on_char '\n' h in
          Alcotest.(check bool) "status line" true
            (List.exists (fun l -> contains l "status=") hlines);
          Alcotest.(check bool) "per-verb p999" true
            (List.exists
               (fun l -> contains l "verb=est" && contains l "p999_us=")
               hlines);
          Alcotest.(check bool) "latency slo line" true
            (List.exists (fun l -> contains l "slo=latency") hlines);
          Alcotest.(check bool) "qerror slo line" true
            (List.exists (fun l -> contains l "slo=qerror model=tb") hlines);
          Alcotest.(check bool) "slowlog summary counts capture" true
            (List.exists (fun l -> contains l "slowlog captured=1") hlines);
          Alcotest.(check string) "shutdown" "OK bye" (Client.request c "SHUTDOWN")))

(* ---- shard-per-domain ------------------------------------------------------------- *)

let contains line sub =
  let n = String.length sub in
  let rec probe i =
    i + n <= String.length line && (String.sub line i n = sub || probe (i + 1))
  in
  probe 0

(* Epoch publication: a pinned snapshot is immutable — a concurrent (or
   later) install can only affect later pins, never a snapshot already
   in hand. *)
let test_registry_epoch_pin () =
  let db0 = Lazy.force db in
  let m = Lazy.force model in
  let r = Registry.create ~schema:(Database.schema db0) in
  let s0 = Registry.Epoch.pin r in
  Alcotest.(check int) "empty epoch" 0 (Registry.Epoch.epoch s0);
  Alcotest.(check int) "empty size" 0 (Registry.Epoch.size s0);
  let e1 = Registry.register r ~name:"tb" m in
  let s1 = Registry.Epoch.pin r in
  Alcotest.(check int) "epoch bumped" 1 (Registry.Epoch.epoch s1);
  Alcotest.(check int) "old pin unchanged" 0 (Registry.Epoch.epoch s0);
  Alcotest.(check bool) "old pin still empty" true (Registry.Epoch.find s0 "tb" = None);
  (match Registry.Epoch.find s1 "tb" with
  | Some e -> Alcotest.(check int) "pinned version" e1.Registry.version e.Registry.version
  | None -> Alcotest.fail "entry missing from pinned snapshot");
  ignore (Registry.register r ~name:"tb" m);
  ignore (Registry.register r ~name:"other" m);
  let s2 = Registry.Epoch.pin r in
  Alcotest.(check int) "epoch counts installs" 3 (Registry.Epoch.epoch s2);
  Alcotest.(check int) "current_epoch agrees" 3 (Registry.Epoch.current_epoch r);
  (* the earlier pin still reads the version it was published with *)
  (match Registry.Epoch.find s1 "tb" with
  | Some e -> Alcotest.(check int) "old pin keeps version 1" 1 e.Registry.version
  | None -> Alcotest.fail "entry vanished from old snapshot");
  (* default is MRU: the most recently installed name *)
  (match Registry.Epoch.default s2 with
  | Some ("other", _) -> ()
  | _ -> Alcotest.fail "default should be the most recent install");
  Alcotest.(check (list string)) "names, MRU first" [ "other"; "tb" ]
    (Registry.Epoch.names s2)

let test_plan_cache_sync_modes () =
  let sync = Plan_cache.create () in
  Alcotest.(check bool) "default synchronized" true (Plan_cache.synchronized sync);
  let unsync = Plan_cache.create ~synchronized:false () in
  Alcotest.(check bool) "opt-out unsynchronized" false
    (Plan_cache.synchronized unsync);
  (* both modes implement the same cache contract *)
  let m = Lazy.force model in
  let q = tb_query [ "p.USBorn=1" ] in
  List.iter
    (fun pc ->
      let compile () = Selest_plan.Plan.compile m q in
      let _, s1 = Plan_cache.find_or_compile pc ~hash:17 ~key:"k" ~compile in
      let _, s2 = Plan_cache.find_or_compile pc ~hash:17 ~key:"k" ~compile in
      Alcotest.(check bool) "miss then hit" true (s1 = `Miss && s2 = `Hit);
      let hits, misses, _ = Plan_cache.stats pc in
      Alcotest.(check (pair int int)) "stats" (1, 1) (hits, misses);
      (* same hash, different full key: detected, evicted, recompiled *)
      let _, s3 = Plan_cache.find_or_compile pc ~hash:17 ~key:"other" ~compile in
      Alcotest.(check bool) "collision is a miss" true (s3 = `Miss);
      Alcotest.(check int) "collision counted" 1 (Plan_cache.collisions pc))
    [ sync; unsync ]

(* q-error tables shard per domain and merge on read. *)
let test_qerror_shard_merge () =
  let mtr = Metrics.create () in
  Metrics.observe_qerror mtr "m" ~est:10.0 ~truth:100.0;
  Metrics.observe_qerror mtr "m" ~est:100.0 ~truth:10.0;
  (* writes from another domain land on that domain's shard *)
  let d =
    Domain.spawn (fun () -> Metrics.observe_qerror mtr "m" ~est:5.0 ~truth:50.0)
  in
  Domain.join d;
  let merged = Metrics.qerror_merged mtr "m" in
  Alcotest.(check int) "merged count sees both shards" 3
    (Selest_obs.Qerror.count merged);
  check_float "merged mean" 10.0 (Selest_obs.Qerror.mean merged);
  (* the calling domain's shard only holds its own writes *)
  Alcotest.(check int) "shard-local count" 2
    (Selest_obs.Qerror.count (Metrics.qerror_shard mtr "m"));
  Alcotest.(check bool) "shard tables are unsynchronized" false
    (Selest_obs.Qerror.synchronized (Metrics.qerror_shard mtr "m"));
  match Metrics.qerror_tables mtr with
  | [ ("m", qe) ] -> Alcotest.(check int) "tables merged" 3 (Selest_obs.Qerror.count qe)
  | _ -> Alcotest.fail "expected exactly one merged table"

let test_client_backoff_schedule () =
  check_float "attempt 0" 0.01 (Client.backoff_delay 0);
  check_float "attempt 1" 0.02 (Client.backoff_delay 1);
  check_float "attempt 3" 0.08 (Client.backoff_delay 3);
  check_float "attempt 6 hits the cap" 0.64 (Client.backoff_delay 6);
  check_float "capped thereafter" 0.64 (Client.backoff_delay 20)

(* SHARDS verb + per-shard dispatch, transport-free. *)
let test_shards_verb () =
  let db0 = Lazy.force db in
  let server = Server.create ~domains:3 ~max_inflight:7 ~backlog:33 ~db:db0
      ~socket:"(test: unused)" ()
  in
  ignore (Registry.register (Server.registry server) ~name:"default" (Lazy.force model));
  Alcotest.(check int) "n_domains" 3 (Server.n_domains server);
  let body = "c=contact, p=patient ; c.patient=p ; p.USBorn=1" in
  (* drive each shard's domain-local cache explicitly *)
  for shard = 0 to 2 do
    let r, _ = Server.handle_line_shard server ~shard ("EST " ^ body) in
    Alcotest.(check bool) "est ok on every shard" true (Protocol.is_ok r)
  done;
  let reply = fst (Server.handle_line server "SHARDS") in
  Alcotest.(check bool) "shards ok" true (Protocol.is_ok reply);
  let lines = String.split_on_char '\n' reply in
  Alcotest.(check bool) "header lists the layout" true
    (List.exists
       (fun l -> contains l "domains=3" && contains l "max_inflight=7" && contains l "backlog=33")
       lines);
  List.iter
    (fun sid ->
      (* every shard ran exactly one EST (one domain-local miss, lock-free
         plan cache); shard 0 additionally served the SHARDS request *)
      let requests = if sid = 0 then 2 else 1 in
      Alcotest.(check bool)
        (Printf.sprintf "shard %d line" sid)
        true
        (List.exists
           (fun l ->
             contains l (Printf.sprintf "shard id=%d" sid)
             && contains l (Printf.sprintf "requests=%d" requests)
             && contains l "cache_misses=1"
             && contains l "lock_free=true")
           lines))
    [ 0; 1; 2 ];
  (* multi-shard plan caches are unsynchronized; shard 0 accessors alias *)
  Alcotest.(check bool) "plan caches lock-free" false
    (Plan_cache.synchronized (Server.shard_plan_cache server 1));
  Alcotest.(check bool) "cache is shard 0's" true
    (Server.cache server == Server.shard_cache server 0);
  Alcotest.(check bool) "out of range" true
    (try
       ignore (Server.handle_line_shard server ~shard:3 "PING");
       false
     with Invalid_argument _ -> true)

(* Bit-identity across shard counts: the same query answered by a
   1-domain server and by every shard of a 3-domain server must print
   the same %.17g payload — string equality is bit equality. *)
let test_sharded_bit_identity () =
  let db0 = Lazy.force db in
  let bodies =
    [
      "c=contact, p=patient ; c.patient=p ; p.USBorn=1";
      "c=contact, p=patient ; c.patient=p ; c.Contype=2, p.USBorn=0";
      "p=patient ; ; p.Age=1..3";
    ]
  in
  let single = Server.create ~db:db0 ~socket:"(test: unused)" () in
  ignore (Registry.register (Server.registry single) ~name:"default" (Lazy.force model));
  let reference =
    List.map
      (fun b -> Protocol.payload (fst (Server.handle_line single ("EST " ^ b))))
      bodies
  in
  let sharded = Server.create ~domains:3 ~db:db0 ~socket:"(test: unused)" () in
  ignore (Registry.register (Server.registry sharded) ~name:"default" (Lazy.force model));
  for shard = 0 to 2 do
    List.iter2
      (fun b expected ->
        let r, _ = Server.handle_line_shard sharded ~shard ("EST " ^ b) in
        Alcotest.(check string)
          (Printf.sprintf "shard %d bit-identical" shard)
          expected (Protocol.payload r))
      bodies reference
  done

(* End-to-end over the socket with 2 executor domains: every connection
   is served by some shard, answers stay bit-identical to the
   transport-free reference, and SHARDS shows the round-robin spread. *)
let test_socket_multidomain_round_trip () =
  let db0 = Lazy.force db in
  let reference = Server.create ~db:db0 ~socket:"(test: unused)" () in
  ignore (Registry.register (Server.registry reference) ~name:"default" (Lazy.force model));
  let body = "c=contact, p=patient ; c.patient=p ; p.USBorn=1, c.Contype=2" in
  let expected = Protocol.payload (fst (Server.handle_line reference ("EST " ^ body))) in
  let socket = Filename.temp_file "selest" ".sock" in
  Sys.remove socket;
  let server = Server.create ~domains:2 ~db:db0 ~socket () in
  ignore (Registry.register (Server.registry server) ~name:"default" (Lazy.force model));
  let thread = Thread.create Server.run server in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown server;
      Thread.join thread)
    (fun () ->
      (* several short-lived connections: round-robin spreads them *)
      for _ = 1 to 4 do
        Client.with_connection ~retries:100 ~socket (fun c ->
            Alcotest.(check string) "bit-identical over the socket" expected
              (Protocol.payload (Client.request c ("EST " ^ body))))
      done;
      Client.with_connection ~retries:100 ~socket (fun c ->
          let sh = Client.request c "SHARDS" in
          Alcotest.(check bool) "shards ok" true (Protocol.is_ok sh);
          let lines = String.split_on_char '\n' sh in
          Alcotest.(check bool) "two shard lines" true
            (List.exists (fun l -> contains l "shard id=0") lines
            && List.exists (fun l -> contains l "shard id=1") lines);
          (* 5 connections round-robined over 2 shards: both accepted some *)
          Alcotest.(check bool) "both shards accepted connections" true
            (List.for_all
               (fun sid ->
                 List.exists
                   (fun l ->
                     contains l (Printf.sprintf "shard id=%d" sid)
                     && not (contains l "accepted=0 "))
                   lines)
               [ 0; 1 ]);
          let h = Client.request c "HEALTH" in
          Alcotest.(check bool) "health lists shards" true
            (List.exists
               (fun l -> contains l "shard id=1")
               (String.split_on_char '\n' h));
          Alcotest.(check string) "shutdown" "OK bye" (Client.request c "SHUTDOWN")));
  Alcotest.(check bool) "socket removed after join" false (Sys.file_exists socket)

(* TCP listener: same protocol, same answers, over --tcp. *)
let test_tcp_round_trip () =
  let db0 = Lazy.force db in
  let port = 20_000 + (Unix.getpid () mod 10_000) in
  let socket = Filename.temp_file "selest" ".sock" in
  Sys.remove socket;
  let server =
    Server.create ~domains:2 ~tcp:("127.0.0.1", port) ~db:db0 ~socket ()
  in
  ignore (Registry.register (Server.registry server) ~name:"default" (Lazy.force model));
  let thread = Thread.create Server.run server in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown server;
      Thread.join thread)
    (fun () ->
      let body = "c=contact, p=patient ; c.patient=p ; p.USBorn=1" in
      (* reference over the Unix socket, then the same over TCP *)
      let expected =
        Client.with_connection ~retries:100 ~socket (fun c ->
            Protocol.payload (Client.request c ("EST " ^ body)))
      in
      Client.with_tcp_connection ~retries:100 ~host:"127.0.0.1" ~port (fun c ->
          Alcotest.(check string) "ping over tcp" "PONG" (Client.request c "PING");
          Alcotest.(check string) "tcp answer bit-identical" expected
            (Protocol.payload (Client.request c ("EST " ^ body)));
          (* binary upgrade works over TCP too *)
          Client.upgrade c;
          match Client.est_bin c body with
          | Ok v ->
            Alcotest.(check int64) "tcp bin bit-identical"
              (Int64.bits_of_float (float_of_string expected))
              (Int64.bits_of_float v)
          | Error msg -> Alcotest.fail ("tcp est_bin: " ^ msg));
      Client.with_connection ~retries:100 ~socket (fun c ->
          Alcotest.(check string) "shutdown" "OK bye" (Client.request c "SHUTDOWN")))

(* Admission control: with one shard at max_inflight=1, a second live
   connection is answered BUSY and closed, and the rejection is counted. *)
let test_admission_busy () =
  let db0 = Lazy.force db in
  let socket = Filename.temp_file "selest" ".sock" in
  Sys.remove socket;
  let server = Server.create ~max_inflight:1 ~db:db0 ~socket () in
  ignore (Registry.register (Server.registry server) ~name:"default" (Lazy.force model));
  let thread = Thread.create Server.run server in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown server;
      Thread.join thread)
    (fun () ->
      Client.with_connection ~retries:100 ~socket (fun c1 ->
          (* c1 occupies the only admission slot *)
          Alcotest.(check string) "first connection serves" "PONG"
            (Client.request c1 "PING");
          let c2 = Client.connect ~socket () in
          let busy =
            Fun.protect
              ~finally:(fun () -> Client.close c2)
              (fun () -> Client.request c2 "PING")
          in
          Alcotest.(check bool) "second connection is rejected" true
            (Protocol.is_busy busy);
          Alcotest.(check bool) "reply names the budget" true
            (contains busy "max_inflight=1");
          (* the admitted connection is unaffected and sees the counter *)
          let stats = Client.request c1 "STATS" in
          Alcotest.(check (option string)) "rejection counted" (Some "1")
            (Protocol.stats_field stats "admission_rejected");
          Alcotest.(check string) "shutdown" "OK bye" (Client.request c1 "SHUTDOWN")))

(* Hot reload under fire (satellite 4): concurrent EST traffic while the
   model is repeatedly re-LOADed.  Every answer must be exactly one of
   the two versions' estimates (a torn snapshot would produce neither),
   and once the dust settles a fresh EST serves the latest version. *)
let test_hot_reload_under_fire () =
  let db0 = Lazy.force db in
  let m1 = Lazy.force model in
  let m2 = Selest_prm.Learn.learn_prm ~budget_bytes:1_024 ~seed:11 db0 in
  let body = "c=contact, p=patient ; c.patient=p ; p.USBorn=1, c.Contype=2" in
  (* reference strings per model, through the same request path *)
  let answer_of m =
    let s = Server.create ~db:db0 ~socket:"(test: unused)" () in
    ignore (Registry.register (Server.registry s) ~name:"tb" m);
    Protocol.payload (fst (Server.handle_line s ("EST " ^ body)))
  in
  let a1 = answer_of m1 and a2 = answer_of m2 in
  Alcotest.(check bool) "models disagree (test is not vacuous)" false (a1 = a2);
  let p1 = Filename.temp_file "selest" ".prm"
  and p2 = Filename.temp_file "selest" ".prm" in
  Selest_prm.Serialize.save p1 m1;
  Selest_prm.Serialize.save p2 m2;
  let socket = Filename.temp_file "selest" ".sock" in
  Sys.remove socket;
  let server = Server.create ~domains:2 ~db:db0 ~socket () in
  let thread = Thread.create Server.run server in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown server;
      Thread.join thread;
      Sys.remove p1;
      Sys.remove p2)
    (fun () ->
      Client.with_connection ~retries:100 ~socket (fun c ->
          Alcotest.(check bool) "initial load" true
            (Protocol.is_ok (Client.request c (Printf.sprintf "LOAD tb %s" p1))));
      let torn = Atomic.make 0 and served = Atomic.make 0 in
      let firing =
        List.init 3 (fun _ ->
            Thread.create
              (fun () ->
                Client.with_connection ~retries:100 ~socket (fun c ->
                    for _ = 1 to 40 do
                      let r = Client.request c ("EST " ^ body) in
                      if Protocol.is_ok r then begin
                        Atomic.incr served;
                        let p = Protocol.payload r in
                        if p <> a1 && p <> a2 then Atomic.incr torn
                      end
                      else Atomic.incr torn
                    done))
              ())
      in
      (* reload back and forth while the EST threads hammer the server *)
      Client.with_connection ~retries:100 ~socket (fun c ->
          for _ = 1 to 10 do
            Alcotest.(check bool) "reload v2" true
              (Protocol.is_ok (Client.request c (Printf.sprintf "LOAD tb %s" p2)));
            Thread.yield ();
            Alcotest.(check bool) "reload v1" true
              (Protocol.is_ok (Client.request c (Printf.sprintf "LOAD tb %s" p1)))
          done);
      List.iter Thread.join firing;
      Alcotest.(check int) "no torn or failed answers" 0 (Atomic.get torn);
      Alcotest.(check int) "all requests served" 120 (Atomic.get served);
      (* quiesced: the final LOAD wins on every shard — version-carrying
         cache keys make stale per-domain entries unreachable *)
      Client.with_connection ~retries:100 ~socket (fun c ->
          Alcotest.(check bool) "final load v2" true
            (Protocol.is_ok (Client.request c (Printf.sprintf "LOAD tb %s" p2)));
          for _ = 1 to 4 do
            Client.with_connection ~retries:100 ~socket (fun c' ->
                Alcotest.(check string) "post-reload answers are v2" a2
                  (Protocol.payload (Client.request c' ("EST " ^ body))))
          done;
          Alcotest.(check string) "shutdown" "OK bye" (Client.request c "SHUTDOWN")))

(* ---- binary frames (Protocol.Bin) ------------------------------------------------- *)

(* The decoders promise totality: any byte string comes back Ok or Error,
   never an exception.  Fuzz that promise directly. *)
let prop_bin_decode_total =
  QCheck2.Test.make ~name:"decoders never raise on garbage" ~count:500
    QCheck2.Gen.string (fun s ->
      let b = Bytes.of_string s in
      (match Protocol.Bin.decode_request b with Ok _ | Error _ -> ());
      (match Protocol.Bin.decode_response b with Ok _ | Error _ -> ());
      true)

let gen_model_name =
  QCheck2.Gen.(
    oneof
      [
        return None;
        (* Some "" is indistinguishable from None on the wire, by design *)
        (string_size (int_range 1 8) >|= fun s -> Some s);
      ])

let strip_prefix frame = Bytes.of_string (String.sub frame 4 (String.length frame - 4))

let prop_bin_request_roundtrip =
  let gen =
    QCheck2.Gen.(
      let* model = gen_model_name in
      oneof
        [
          (string >|= fun body -> Protocol.Bin.Best { model; body });
          ( list_size (int_range 0 5) string >|= fun bodies ->
            Protocol.Bin.Bestbatch { model; bodies } );
        ])
  in
  QCheck2.Test.make ~name:"request encode ∘ decode = id" ~count:300 gen (fun req ->
      Protocol.Bin.decode_request (strip_prefix (Protocol.Bin.encode_request req))
      = Ok req)

let prop_bin_response_roundtrip =
  let gen =
    QCheck2.Gen.(
      oneof
        [
          (float >|= fun v -> Protocol.Bin.Bvalue v);
          (list_size (int_range 0 5) float >|= fun vs -> Protocol.Bin.Bvalues vs);
          (string >|= fun msg -> Protocol.Bin.Berr msg);
        ])
  in
  (* compare through IEEE bits so NaN payloads round-trip too *)
  let same a b =
    match (a, b) with
    | Protocol.Bin.Bvalue x, Protocol.Bin.Bvalue y ->
      Int64.bits_of_float x = Int64.bits_of_float y
    | Protocol.Bin.Bvalues xs, Protocol.Bin.Bvalues ys ->
      List.length xs = List.length ys
      && List.for_all2 (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y) xs ys
    | Protocol.Bin.Berr x, Protocol.Bin.Berr y -> x = y
    | _ -> false
  in
  QCheck2.Test.make ~name:"response encode ∘ decode = id" ~count:300 gen (fun resp ->
      match
        Protocol.Bin.decode_response (strip_prefix (Protocol.Bin.encode_response resp))
      with
      | Ok r -> same r resp
      | Error _ -> false)

(* A batch request's payload is fully length-described, so every strict
   prefix must decode to Error — a truncated frame can never silently
   shrink into a smaller valid batch. *)
let prop_bin_batch_truncation =
  let gen =
    QCheck2.Gen.(
      let* model = gen_model_name in
      let* bodies = list_size (int_range 0 4) (string_size (int_range 0 12)) in
      return (Protocol.Bin.Bestbatch { model; bodies }))
  in
  QCheck2.Test.make ~name:"truncated batch payload ⇒ Error" ~count:200 gen
    (fun req ->
      let payload = strip_prefix (Protocol.Bin.encode_request req) in
      let n = Bytes.length payload in
      let ok = ref true in
      for k = 0 to n - 1 do
        match Protocol.Bin.decode_request (Bytes.sub payload 0 k) with
        | Ok _ -> ok := false
        | Error _ -> ()
      done;
      !ok)

let test_server_bin_frames () =
  let db0 = Lazy.force db in
  let server = Server.create ~db:db0 ~socket:"(test: unused)" () in
  ignore (Registry.register (Server.registry server) ~name:"default" (Lazy.force model));
  let body = "c=contact, p=patient ; c.patient=p ; p.USBorn=1, c.Contype=2" in
  let ask_bin req =
    let out = Server.handle_frame server (strip_prefix (Protocol.Bin.encode_request req)) in
    match Protocol.Bin.decode_response (strip_prefix out) with
    | Ok r -> r
    | Error msg -> Alcotest.fail ("undecodable response frame: " ^ msg)
  in
  (* binary EST carries the exact bits the text protocol prints *)
  let text = fst (Server.handle_line server ("EST " ^ body)) in
  Alcotest.(check bool) "text est ok" true (Protocol.is_ok text);
  let expected = float_of_string (Protocol.payload text) in
  (match ask_bin (Protocol.Bin.Best { model = None; body }) with
  | Protocol.Bin.Bvalue v ->
    Alcotest.(check int64) "bit-identical to text"
      (Int64.bits_of_float expected) (Int64.bits_of_float v)
  | _ -> Alcotest.fail "expected Bvalue");
  (* batch answers in request order *)
  (match ask_bin (Protocol.Bin.Bestbatch { model = None; bodies = [ body; body ] }) with
  | Protocol.Bin.Bvalues [ a; b ] ->
    Alcotest.(check int64) "batch[0]" (Int64.bits_of_float expected) (Int64.bits_of_float a);
    Alcotest.(check int64) "batch[1]" (Int64.bits_of_float expected) (Int64.bits_of_float b)
  | _ -> Alcotest.fail "expected two Bvalues");
  (* failures stay in-band: bad query and undecodable payload answer Berr *)
  (match ask_bin (Protocol.Bin.Best { model = None; body = "utter garbage" }) with
  | Protocol.Bin.Berr _ -> ()
  | _ -> Alcotest.fail "expected Berr for a bad query");
  let out = Server.handle_frame server (Bytes.of_string "\xff\x00\x00") in
  match Protocol.Bin.decode_response (strip_prefix out) with
  | Ok (Protocol.Bin.Berr _) -> ()
  | _ -> Alcotest.fail "expected Berr for an unknown opcode"

(* Regression for the compiled fast path: a contradictory all-equality
   request answers exactly zero without touching the program's evidence
   slots, so a warm repeat of a valid request must come back bit-identical
   (cleared LRU forces real re-execution, not a cache echo). *)
let test_server_bytecode_contradiction_regression () =
  let db0 = Lazy.force db in
  let server = Server.create ~db:db0 ~socket:"(test: unused)" () in
  ignore (Registry.register (Server.registry server) ~name:"default" (Lazy.force model));
  let ask line = fst (Server.handle_line server line) in
  let valid = "EST c=contact, p=patient ; c.patient=p ; p.USBorn=1, c.Contype=2" in
  let warm = ask valid in
  Alcotest.(check bool) "valid est ok" true (Protocol.is_ok warm);
  let expected = float_of_string (Protocol.payload warm) in
  let contra = ask "EST c=contact, p=patient ; c.patient=p ; p.USBorn=0, p.USBorn=1" in
  Alcotest.(check bool) "contradiction ok, not ERR" true (Protocol.is_ok contra);
  check_float "contradiction is zero" 0.0 (float_of_string (Protocol.payload contra));
  Lru.clear (Server.cache server);
  let again = ask valid in
  Alcotest.(check int64) "warm repeat unharmed"
    (Int64.bits_of_float expected)
    (Int64.bits_of_float (float_of_string (Protocol.payload again)))

let test_bin_socket_round_trip () =
  let db0 = Lazy.force db in
  let socket = Filename.temp_file "selest" ".sock" in
  Sys.remove socket;
  let server = Server.create ~db:db0 ~socket () in
  ignore (Registry.register (Server.registry server) ~name:"default" (Lazy.force model));
  let thread = Thread.create Server.run server in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown server;
      Thread.join thread)
    (fun () ->
      let body = "c=contact, p=patient ; c.patient=p ; p.USBorn=1, c.Contype=2" in
      (* text connection first: the reference answer *)
      let expected =
        Client.with_connection ~retries:100 ~socket (fun c ->
            float_of_string (Protocol.payload (Client.request c ("EST " ^ body))))
      in
      (* binary connection: upgrade, then frames only *)
      Client.with_connection ~retries:100 ~socket (fun c ->
          Client.upgrade c;
          (match Client.est_bin c body with
          | Ok v ->
            Alcotest.(check int64) "est_bin bit-identical"
              (Int64.bits_of_float expected) (Int64.bits_of_float v)
          | Error msg -> Alcotest.fail ("est_bin: " ^ msg));
          (match Client.estbatch_bin c [ body; body ] with
          | Ok [ a; b ] ->
            Alcotest.(check int64) "batch[0]" (Int64.bits_of_float expected)
              (Int64.bits_of_float a);
            Alcotest.(check int64) "batch[1]" (Int64.bits_of_float expected)
              (Int64.bits_of_float b)
          | Ok _ -> Alcotest.fail "estbatch_bin: wrong arity"
          | Error msg -> Alcotest.fail ("estbatch_bin: " ^ msg));
          match Client.est_bin c "utter garbage" with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "bad query must answer Berr");
      (* the server survives binary EOF; shut it down over text *)
      Client.with_connection ~retries:100 ~socket (fun c ->
          Alcotest.(check string) "shutdown" "OK bye" (Client.request c "SHUTDOWN")));
  Alcotest.(check bool) "socket removed after join" false (Sys.file_exists socket)

(* ---- zero-copy front-end -----------------------------------------------------

   The allocation-free request front-end shadows two allocating
   reference parsers and must agree with them exactly: the scratch
   parser ({!Selest_db.Squery}) with the section-split + Qparse +
   validate + normalize pipeline, and the slice recognizers
   ({!Protocol.Slice}) with [Protocol.parse_request] /
   [Protocol.Bin.decode_request].  Random request text — valid,
   out-of-schema and mutilated — drives both sides of each pair. *)

let frontend_scratch =
  lazy (Squery.create (Squery.Symtab.of_schema (Database.schema (Lazy.force db))))

let reference_parse db0 body =
  match
    let tvars, joins, selects = Protocol.split_sections body in
    let q = Qparse.parse db0 ~tvars ~joins ~selects () in
    Exec.validate db0 q;
    q
  with
  | q -> Ok (Canon.normalize q)
  | exception Failure msg -> Error msg
  | exception Invalid_argument msg -> Error msg
  | exception Not_found -> Error "Not_found"

let scratch_parse body =
  let scratch = Lazy.force frontend_scratch in
  match
    Squery.parse scratch (Bytes.of_string body) ~off:0 ~len:(String.length body)
  with
  | () ->
    Squery.canon scratch;
    Ok (Squery.to_query scratch)
  | exception Failure msg -> Error msg
  | exception Invalid_argument msg -> Error msg
  | exception Not_found -> Error "Not_found"

(* Bodies over the TB schema: mostly well-formed (with whitespace and
   label variations), salted with unknown tables/attributes/values, and
   a third of the time mutilated — truncated, a random char spliced in,
   or extra section separators appended. *)
let gen_frontend_body =
  let open QCheck2.Gen in
  let gen_attr =
    oneofl
      [ "c.Contype"; "c.Age"; "p.Age"; "p.USBorn"; "s.DrugResist"; "p.Zz"; "x.Age" ]
  in
  let gen_sel =
    let* a = gen_attr in
    oneof
      [
        (int_range 0 3 >|= fun v -> Printf.sprintf "%s=%d" a v);
        (pair (int_range 0 3) (int_range 0 4) >|= fun (lo, hi) ->
          Printf.sprintf "%s=%d..%d" a lo hi);
        (list_size (int_range 1 3) (int_range 0 3) >|= fun vs ->
          Printf.sprintf "%s={%s}" a
            (String.concat "," (List.map string_of_int vs)));
        pure (a ^ "={household,roommate}");
        pure (a ^ "=99");
      ]
  in
  let gen_tvars =
    oneofl
      [
        "c=contact, p=patient, s=strain";
        "c=contact, p=patient";
        "c = contact , p = patient";
        "p=patient";
        "patient";
        "z=zebra, p=patient";
        "c=contact, c=patient";
      ]
  in
  let gen_joins =
    oneofl
      [ "c.patient=p, p.strain=s"; "c.patient=p"; ""; "p.strain=s"; "c.nope=p";
        "c.patient=x" ]
  in
  let* tv = gen_tvars in
  let* j = gen_joins in
  let* sels = list_size (int_range 0 3) gen_sel in
  let body = tv ^ "; " ^ j ^ "; " ^ String.concat ", " sels in
  let* mutation = int_range 0 9 in
  if mutation <= 6 then return body
  else if mutation = 7 then
    let* k = int_range 0 (String.length body) in
    return (String.sub body 0 k)
  else if mutation = 8 then
    let* k = int_range 0 (String.length body) in
    let* c = oneofl [ ';'; ','; '{'; '}'; '='; '.'; '@'; 'x'; '9'; ' ' ] in
    return
      (String.sub body 0 k ^ String.make 1 c
      ^ String.sub body k (String.length body - k))
  else return (body ^ " ;;")

let prop_squery_matches_reference =
  QCheck2.Test.make ~name:"zero-copy parser ≡ Qparse+validate+normalize"
    ~count:1500 ~print:String.escaped gen_frontend_body (fun body ->
      let db0 = Lazy.force db in
      match (reference_parse db0 body, scratch_parse body) with
      | Ok qr, Ok qs -> qr = qs && Canon.key qr = Canon.key qs
      | Error _, Error _ -> true
      | Ok _, Error _ | Error _, Ok _ -> false)

let frontend_slice = Protocol.Slice.create ()

let slice_model_body buf =
  let sl = frontend_slice in
  let model =
    if sl.Protocol.Slice.model_len = 0 then None
    else
      Some
        (Bytes.sub_string buf sl.Protocol.Slice.model_off
           sl.Protocol.Slice.model_len)
  in
  (model, Bytes.sub_string buf sl.Protocol.Slice.body_off sl.Protocol.Slice.body_len)

(* Request lines assembled from independently varied fragments, so the
   recognizer sees every combination of case, separator, model prefix
   and trailing whitespace the reference parser distinguishes. *)
let gen_request_line =
  let open QCheck2.Gen in
  let* lead = oneofl [ ""; " "; "\t " ] in
  let* cmd = oneofl [ "EST"; "est"; "Est"; "ESTBATCH"; "PING"; "ES"; "" ] in
  let* sep = oneofl [ " "; "  "; "\t"; "" ] in
  let* model = oneofl [ ""; "@m "; "@"; "@ "; "@default "; "@m\tx " ] in
  let* body = oneofl [ "p=patient ; ; p.USBorn=1"; "c=contact"; ""; "{"; "a b" ] in
  let* trail = oneofl [ ""; " "; "  \t" ] in
  return (lead ^ cmd ^ sep ^ model ^ body ^ trail)

(* A [true] from the recognizer claims the request: the reference parser
   must then see an EST whose model and body equal the slices exactly.
   ([false] is always allowed — the slow path reproduces behavior.) *)
let prop_slice_est_line_agrees =
  QCheck2.Test.make ~name:"Slice.est_line ⇒ parse_request agreement"
    ~count:2000 ~print:String.escaped gen_request_line (fun line ->
      let buf = Bytes.of_string line in
      if Protocol.Slice.est_line frontend_slice buf ~off:0 ~len:(Bytes.length buf)
      then
        match Protocol.parse_request line with
        | Ok (Protocol.Est { model; body }) ->
          let smodel, sbody = slice_model_body buf in
          model = smodel && body = sbody
        | _ -> false
      else true)

(* Valid EST frames (optionally mutilated: truncated, opcode flipped, a
   length byte corrupted) against the total binary decoder. *)
let gen_bin_est_frame =
  let open QCheck2.Gen in
  let* model = oneofl [ None; Some "m"; Some "default"; Some "" ] in
  let* body = oneofl [ "p=patient ; ; p.USBorn=1"; "c=contact"; "" ] in
  let base =
    strip_prefix (Protocol.Bin.encode_request (Protocol.Bin.Best { model; body }))
  in
  let* mutation = int_range 0 5 in
  if mutation <= 2 then return base
  else if mutation = 3 then
    let* k = int_range 0 (Bytes.length base) in
    return (Bytes.sub base 0 k)
  else if mutation = 4 then (
    let b = Bytes.copy base in
    (* flip the opcode to ESTBATCH (0x02) *)
    Bytes.set_uint8 b 0 2;
    return b)
  else (
    let b = Bytes.copy base in
    let* k = int_range 0 (Bytes.length b - 1) in
    let* v = int_range 0 255 in
    Bytes.set_uint8 b k v;
    return b)

let prop_slice_bin_est_agrees =
  QCheck2.Test.make ~name:"Slice.bin_est ⇒ Bin.decode_request agreement"
    ~count:2000
    ~print:(fun b -> String.escaped (Bytes.to_string b))
    gen_bin_est_frame (fun payload ->
      if
        Protocol.Slice.bin_est frontend_slice payload ~off:0
          ~len:(Bytes.length payload)
      then
        match Protocol.Bin.decode_request payload with
        | Ok (Protocol.Bin.Best { model; body }) ->
          let smodel, sbody = slice_model_body payload in
          model = smodel && body = sbody
        | _ -> false
      else true)

(* Coverage direction: the canonical warm forms must be claimed (the
   whole fast path hinges on it), and non-EST traffic must not be. *)
let test_slice_recognizes_warm_forms () =
  let sl = frontend_slice in
  let accepts line = Protocol.Slice.est_line sl (Bytes.of_string line) ~off:0 ~len:(String.length line) in
  let buf = Bytes.of_string "EST p=patient ; ; p.USBorn=1" in
  Alcotest.(check bool) "plain EST" true
    (Protocol.Slice.est_line sl buf ~off:0 ~len:(Bytes.length buf));
  Alcotest.(check (pair (option string) string)) "plain slices"
    (None, "p=patient ; ; p.USBorn=1") (slice_model_body buf);
  let buf = Bytes.of_string "EST @m p=patient" in
  Alcotest.(check bool) "named model" true
    (Protocol.Slice.est_line sl buf ~off:0 ~len:(Bytes.length buf));
  Alcotest.(check (pair (option string) string)) "named slices"
    (Some "m", "p=patient") (slice_model_body buf);
  List.iter
    (fun line -> Alcotest.(check bool) (String.escaped line) false (accepts line))
    [ "PING"; "est p=patient"; "ESTBATCH p=patient"; "EST"; "EST "; "EST @ x";
      "EST @m"; "EST\tp=patient"; "" ];
  let frame =
    strip_prefix
      (Protocol.Bin.encode_request (Protocol.Bin.Best { model = None; body = "p=patient" }))
  in
  Alcotest.(check bool) "bin EST frame" true
    (Protocol.Slice.bin_est sl frame ~off:0 ~len:(Bytes.length frame));
  Alcotest.(check (pair (option string) string)) "bin slices"
    (None, "p=patient") (slice_model_body frame)

(* End-to-end fast path over a real socketpair: the loopback harness
   drives the exact shard message-extraction code with the server's fast
   handlers installed.  Warm and cold EST (text and binary) answer
   bit-identically to the transport-free reference path; every other
   verb falls back byte-identically. *)
let test_fast_path_loopback () =
  let server = fresh_server () in
  let client, srv = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let conn = Shard.Loopback.connect srv in
  let on_line_fast, on_frame_fast = Server.fast_handlers server ~shard:0 in
  let on_line l = Server.handle_line server l in
  let on_frame p = Server.handle_frame server p in
  let buf = Bytes.create 65536 in
  let step () =
    Shard.Loopback.step conn ~on_line_fast ~on_frame_fast ~on_line ~on_frame
  in
  let read_response () =
    let n = Unix.read client buf 0 (Bytes.length buf) in
    Bytes.sub_string buf 0 n
  in
  let ask line =
    let msg = line ^ "\n" in
    ignore (Unix.write_substring client msg 0 (String.length msg));
    step ();
    read_response ()
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close client with Unix.Unix_error _ -> ());
      if Shard.Loopback.alive conn then Unix.close srv)
    (fun () ->
      let body = "c=contact, p=patient ; c.patient=p ; p.USBorn=1, c.Contype=2" in
      (* non-EST verbs fall back to the reference path *)
      Alcotest.(check string) "fallback PING" "PONG\n" (ask "PING");
      (* cold EST commits to the fast path and serves the miss inline *)
      let cold = ask ("EST " ^ body) in
      Alcotest.(check bool) "cold est ok" true (Protocol.is_ok (String.trim cold));
      (* warm repeat: pre-rendered response, identical bytes *)
      Alcotest.(check string) "warm repeat identical" cold (ask ("EST " ^ body));
      (* the transport-free reference path sees the same cache entry *)
      let direct, _ = Server.handle_line server ("EST " ^ body) in
      Alcotest.(check string) "matches handle_line" (direct ^ "\n") cold;
      (* error paths are untouched: unknown model and bad query fall
         back to the reference handler's exact messages *)
      let bad_model = ask "EST @nope p=patient" in
      Alcotest.(check string) "unknown model via fallback"
        (fst (Server.handle_line server "EST @nope p=patient") ^ "\n")
        bad_model;
      let bad_query = ask "EST z=zebra" in
      Alcotest.(check string) "bad query via fallback"
        (fst (Server.handle_line server "EST z=zebra") ^ "\n")
        bad_query;
      (* binary upgrade, then warm frames served by the fast path *)
      Alcotest.(check string) "bin hello" (Protocol.Bin.hello_ok ^ "\n") (ask "BIN");
      let frame = Protocol.Bin.encode_request (Protocol.Bin.Best { model = None; body }) in
      ignore (Unix.write_substring client frame 0 (String.length frame));
      step ();
      let resp = read_response () in
      (match
         Protocol.Bin.decode_response
           (Bytes.of_string (String.sub resp 4 (String.length resp - 4)))
       with
      | Ok (Protocol.Bin.Bvalue v) ->
        let expected = float_of_string (Protocol.payload (String.trim cold)) in
        Alcotest.(check int64) "bin bit-identical to text"
          (Int64.bits_of_float expected) (Int64.bits_of_float v)
      | _ -> Alcotest.fail "expected Bvalue over the binary fast path");
      (* the fast path moved the front-end telemetry *)
      let m = Server.metrics server in
      Alcotest.(check bool) "frontend parse ns counted" true
        (Metrics.get m "frontend.parse_ns" > 0);
      Alcotest.(check bool) "frontend canon ns counted" true
        (Metrics.get m "frontend.canon_ns" > 0);
      Alcotest.(check bool) "frontend key ns counted" true
        (Metrics.get m "frontend.key_ns" > 0);
      Alcotest.(check int) "no collisions" 0 (Metrics.get m "frontend.collisions"))

(* ---- suite ------------------------------------------------------------------------ *)

let () =
  Alcotest.run "serve"
    [
      ( "canon",
        [
          Alcotest.test_case "pred normalization" `Quick test_canon_pred_normalization;
          Alcotest.test_case "clause order" `Quick test_canon_clause_order;
          Alcotest.test_case "normalize preserves semantics" `Quick
            test_canon_normalize_preserves_semantics;
        ] );
      ("canon-properties", List.map QCheck_alcotest.to_alcotest [ prop_canon_order_insensitive ]);
      ( "lru",
        [
          Alcotest.test_case "hit/miss counters" `Quick test_lru_hit_miss_counters;
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "byte budget" `Quick test_lru_byte_budget;
          Alcotest.test_case "oversized entry" `Quick test_lru_oversized_entry;
          Alcotest.test_case "collision recount" `Quick test_lru_collision_recount;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_metrics_counters;
          Alcotest.test_case "percentiles" `Quick test_metrics_percentiles;
          Alcotest.test_case "concurrent incr" `Quick test_metrics_concurrent_incr;
          Alcotest.test_case "report" `Quick test_metrics_report;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "parse" `Quick test_protocol_parse;
          Alcotest.test_case "sections" `Quick test_protocol_sections;
          Alcotest.test_case "responses" `Quick test_protocol_responses;
          Alcotest.test_case "estbatch parse" `Quick test_protocol_estbatch_parse;
          Alcotest.test_case "obs verbs" `Quick test_protocol_obs_verbs;
        ] );
      ( "registry",
        [
          Alcotest.test_case "versions" `Quick test_registry_versions;
          Alcotest.test_case "rejects bad files" `Quick test_registry_rejects_bad_files;
        ] );
      ( "server",
        [
          Alcotest.test_case "handle_line" `Quick test_server_handle_line;
          Alcotest.test_case "explainplan" `Quick test_server_explainplan;
          Alcotest.test_case "estbatch" `Quick test_server_estbatch;
          Alcotest.test_case "socket round trip" `Quick test_socket_round_trip;
          Alcotest.test_case "socket slow-log capture" `Quick
            test_socket_slowlog_capture;
          Alcotest.test_case "contradiction on the compiled path" `Quick
            test_server_bytecode_contradiction_regression;
        ] );
      ( "shards",
        [
          Alcotest.test_case "registry epoch pin" `Quick test_registry_epoch_pin;
          Alcotest.test_case "plan cache sync modes" `Quick test_plan_cache_sync_modes;
          Alcotest.test_case "qerror shard merge" `Quick test_qerror_shard_merge;
          Alcotest.test_case "client backoff schedule" `Quick test_client_backoff_schedule;
          Alcotest.test_case "SHARDS verb" `Quick test_shards_verb;
          Alcotest.test_case "bit identity across shard counts" `Quick
            test_sharded_bit_identity;
          Alcotest.test_case "multi-domain socket round trip" `Quick
            test_socket_multidomain_round_trip;
          Alcotest.test_case "tcp round trip" `Quick test_tcp_round_trip;
          Alcotest.test_case "admission BUSY" `Quick test_admission_busy;
          Alcotest.test_case "hot reload under fire" `Quick test_hot_reload_under_fire;
        ] );
      ( "bin-properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_bin_decode_total;
            prop_bin_request_roundtrip;
            prop_bin_response_roundtrip;
            prop_bin_batch_truncation;
          ] );
      ( "bin",
        [
          Alcotest.test_case "handle_frame" `Quick test_server_bin_frames;
          Alcotest.test_case "binary socket round trip" `Quick test_bin_socket_round_trip;
        ] );
      ( "frontend",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_squery_matches_reference;
            prop_slice_est_line_agrees;
            prop_slice_bin_est_agrees;
          ]
        @ [
            Alcotest.test_case "slice warm forms" `Quick
              test_slice_recognizes_warm_forms;
            Alcotest.test_case "fast path loopback" `Quick test_fast_path_loopback;
          ] );
    ]
