open Selest_db
open Selest_est

let check_float = Alcotest.(check (float 1e-6))

let census = lazy (Selest_synth.Census.generate ~rows:10_000 ~seed:21 ())
let tb = lazy (Selest_synth.Tb.generate ~patients:500 ~contacts:3_000 ~strains:400 ~seed:21 ())

let person_q selects =
  Query.create ~tvars:[ ("t", "person") ] ~selects ()

(* ---- error metric ---------------------------------------------------------- *)

let test_adjusted_relative_error () =
  check_float "exact" 0.0 (Estimator.adjusted_relative_error ~truth:50.0 ~estimate:50.0);
  check_float "double" 100.0 (Estimator.adjusted_relative_error ~truth:50.0 ~estimate:100.0);
  (* the max(1, truth) guard for empty results *)
  check_float "zero truth" 700.0 (Estimator.adjusted_relative_error ~truth:0.0 ~estimate:7.0)

(* ---- AVI -------------------------------------------------------------------- *)

let test_avi_exact_on_single_attribute () =
  let db = Lazy.force census in
  let avi = Avi.build db in
  (* One-attribute selects are exact for AVI (it stores the marginal). *)
  let q = person_q [ Query.eq "t" "Sex" 0 ] in
  check_float "single attr exact" (Exec.query_size db q) (avi.Estimator.estimate q)

let test_avi_range_pred () =
  let db = Lazy.force census in
  let avi = Avi.build db in
  let q = person_q [ Query.range "t" "Age" 0 17 ] in
  check_float "full range = table size" 10_000.0 (avi.Estimator.estimate q)

let test_avi_independence_error () =
  (* AVI multiplies marginals, so on correlated attributes it errs. *)
  let db = Lazy.force census in
  let avi = Avi.build db in
  let q = person_q [ Query.eq "t" "Age" 0; Query.eq "t" "MaritalStatus" 1 ] in
  (* Age bucket 0 (children) married: truth is ~0, AVI predicts plenty. *)
  let truth = Exec.query_size db q in
  let est = avi.Estimator.estimate q in
  Alcotest.(check bool) "overestimates impossible combo" true (est > truth +. 10.0)

let test_avi_join_uniformity () =
  let db = Lazy.force tb in
  let avi = Avi.build db in
  let q =
    Query.create
      ~tvars:[ ("c", "contact"); ("p", "patient") ]
      ~joins:[ Query.join ~child:"c" ~fk:"patient" ~parent:"p" ]
      ()
  in
  (* |contact| * |patient| / |patient| = |contact| *)
  check_float "uniform join" 3_000.0 (avi.Estimator.estimate q)

let test_avi_unsupported () =
  let db = Lazy.force census in
  let avi = Avi.build ~attrs:[ ("person", "Age") ] db in
  Alcotest.(check bool) "uncovered attr raises" true
    (try
       ignore (avi.Estimator.estimate (person_q [ Query.eq "t" "Sex" 0 ]));
       false
     with Estimator.Unsupported _ -> true)

(* ---- SAMPLE ------------------------------------------------------------------ *)

let test_sample_full_is_exact () =
  let db = Lazy.force census in
  let s = Sample.build ~rows:10_000 ~seed:0 db in
  let q = person_q [ Query.eq "t" "Income" 3; Query.eq "t" "Age" 5 ] in
  check_float "full sample exact" (Exec.query_size db q) (s.Estimator.estimate q)

let test_sample_accuracy_grows () =
  let db = Lazy.force census in
  let q = person_q [ Query.eq "t" "Sex" 0 ] in
  let truth = Exec.query_size db q in
  let err rows =
    let s = Sample.build ~rows ~seed:5 db in
    abs_float (s.Estimator.estimate q -. truth) /. truth
  in
  Alcotest.(check bool) "big sample decent" true (err 5_000 < 0.05)

let test_sample_join () =
  let db = Lazy.force tb in
  let s = Sample.build ~rows:3_000 ~seed:1 db in
  (* full join sample: exact on a fully-joined query *)
  let q =
    Query.create
      ~tvars:[ ("c", "contact"); ("p", "patient"); ("st", "strain") ]
      ~joins:
        [
          Query.join ~child:"c" ~fk:"patient" ~parent:"p";
          Query.join ~child:"p" ~fk:"strain" ~parent:"st";
        ]
      ~selects:[ Query.eq "p" "USBorn" 1; Query.eq "c" "Infected" 1 ]
      ()
  in
  check_float "full join sample exact" (Exec.query_size db q) (s.Estimator.estimate q)

let test_sample_unsupported_base () =
  let db = Lazy.force tb in
  let s = Sample.build ~rows:500 ~seed:1 db in
  (* patient-only query cannot be debiased from a contact-join sample *)
  let q = Query.create ~tvars:[ ("p", "patient") ] ~selects:[ Query.eq "p" "HIV" 1 ] () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (s.Estimator.estimate q);
       false
     with Estimator.Unsupported _ -> true)

let test_sample_bytes () =
  Alcotest.(check int) "storage charge" (100 * 12 * 4) (Sample.bytes_for ~rows:100 ~n_attrs:12)

(* ---- MHIST -------------------------------------------------------------------- *)

let test_mhist_exact_with_enough_buckets () =
  let db = Lazy.force census in
  (* 2 small attributes; budget large enough for one bucket per cell. *)
  let attrs = [ "Sex"; "Earner" ] in
  let m = Mhist.build ~table:"person" ~attrs ~budget_bytes:100_000 db in
  for sex = 0 to 1 do
    for e = 0 to 2 do
      let q = person_q [ Query.eq "t" "Sex" sex; Query.eq "t" "Earner" e ] in
      check_float "cell exact" (Exec.query_size db q) (m.Estimator.estimate q)
    done
  done

let test_mhist_single_bucket_is_uniform () =
  let db = Lazy.force census in
  let m = Mhist.build ~table:"person" ~attrs:[ "Age"; "Income" ] ~budget_bytes:20 db in
  (* one bucket: every cell estimated at N / cells *)
  let q = person_q [ Query.eq "t" "Age" 0; Query.eq "t" "Income" 41 ] in
  check_float "uniform spread" (10_000.0 /. float_of_int (18 * 42)) (m.Estimator.estimate q)

let test_mhist_range_query () =
  let db = Lazy.force census in
  let m = Mhist.build ~table:"person" ~attrs:[ "Age"; "Income" ] ~budget_bytes:4_000 db in
  (* a full-range query returns the table size regardless of buckets *)
  let q = person_q [ Query.range "t" "Age" 0 17 ] in
  check_float "full range" 10_000.0 (m.Estimator.estimate q);
  (* sum over all Age values = table size *)
  let total = ref 0.0 in
  for a = 0 to 17 do
    total := !total +. m.Estimator.estimate (person_q [ Query.eq "t" "Age" a ])
  done;
  check_float "partition" 10_000.0 !total

let test_mhist_beats_single_bucket () =
  let db = Lazy.force census in
  let attrs = [ "Age"; "Income" ] in
  let suite_err m =
    let acc = ref 0.0 in
    for a = 0 to 17 do
      for i = 0 to 41 do
        let q = person_q [ Query.eq "t" "Age" a; Query.eq "t" "Income" i ] in
        let truth = Exec.query_size db q in
        acc := !acc +. Estimator.adjusted_relative_error ~truth ~estimate:(m.Estimator.estimate q)
      done
    done;
    !acc /. float_of_int (18 * 42)
  in
  let coarse = Mhist.build ~table:"person" ~attrs ~budget_bytes:40 db in
  let fine = Mhist.build ~table:"person" ~attrs ~budget_bytes:2_000 db in
  Alcotest.(check bool) "more buckets help" true (suite_err fine < suite_err coarse)

let test_mhist_unsupported () =
  let db = Lazy.force census in
  let m = Mhist.build ~table:"person" ~attrs:[ "Age" ] ~budget_bytes:400 db in
  Alcotest.(check bool) "uncovered attr" true
    (try
       ignore (m.Estimator.estimate (person_q [ Query.eq "t" "Sex" 0 ]));
       false
     with Estimator.Unsupported _ -> true)

let test_mhist_bucket_arithmetic () =
  Alcotest.(check int) "buckets for budget" 10
    (Mhist.n_buckets_for ~budget_bytes:200 ~dims:2)


(* ---- WAVELET ------------------------------------------------------------------- *)

let test_haar_roundtrip () =
  let dims = [| 4; 8 |] in
  let rng = Selest_util.Rng.create 3 in
  let data = Array.init 32 (fun _ -> Selest_util.Rng.float rng *. 10.0) in
  let back = Wavelet.Haar.inverse ~dims (Wavelet.Haar.forward ~dims data) in
  Array.iteri
    (fun i x -> Alcotest.(check (float 1e-9)) "roundtrip" x back.(i))
    data

let test_haar_energy_preservation () =
  (* Orthonormal transform preserves the L2 norm (Parseval). *)
  let dims = [| 8 |] in
  let rng = Selest_util.Rng.create 5 in
  let data = Array.init 8 (fun _ -> Selest_util.Rng.float rng) in
  let coeffs = Wavelet.Haar.forward ~dims data in
  let energy a = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 a in
  Alcotest.(check (float 1e-9)) "parseval" (energy data) (energy coeffs)

let test_haar_top_k () =
  let picked = Wavelet.Haar.top_k [| 0.0; 5.0; -9.0; 1.0 |] 2 in
  (* largest magnitudes are -9 and 5, but index 0 (scaling coeff) is forced in *)
  Alcotest.(check int) "k" 2 (Array.length picked);
  Alcotest.(check bool) "keeps scaling coefficient" true
    (Array.exists (fun (i, _) -> i = 0) picked);
  Alcotest.(check bool) "keeps biggest detail" true
    (Array.exists (fun (i, c) -> i = 2 && c = -9.0) picked)

let test_wavelet_exact_with_all_coefficients () =
  let db = Lazy.force census in
  let attrs = [ "Sex"; "Earner" ] in
  (* 2 * 4 = 8 padded cells -> 8 coefficients = 64 bytes *)
  let w = Wavelet.build ~table:"person" ~attrs ~budget_bytes:1_000 db in
  for sex = 0 to 1 do
    for e = 0 to 2 do
      let q = person_q [ Query.eq "t" "Sex" sex; Query.eq "t" "Earner" e ] in
      check_float "cell exact" (Exec.query_size db q) (w.Estimator.estimate q)
    done
  done

let test_wavelet_total_mass () =
  (* Whatever the budget, the scaling coefficient is kept, so the full-range
     query returns the table size. *)
  let db = Lazy.force census in
  let w = Wavelet.build ~table:"person" ~attrs:[ "Age"; "Income" ] ~budget_bytes:32 db in
  let q = person_q [ Query.range "t" "Age" 0 17 ] in
  check_float "total mass preserved" 10_000.0 (w.Estimator.estimate q)

let test_wavelet_more_coefficients_help () =
  let db = Lazy.force census in
  let attrs = [ "Age"; "Income" ] in
  let suite_err w =
    let acc = ref 0.0 in
    for a = 0 to 17 do
      for i = 0 to 41 do
        let q = person_q [ Query.eq "t" "Age" a; Query.eq "t" "Income" i ] in
        let truth = Exec.query_size db q in
        acc := !acc +. Estimator.adjusted_relative_error ~truth ~estimate:(w.Estimator.estimate q)
      done
    done;
    !acc /. float_of_int (18 * 42)
  in
  let coarse = Wavelet.build ~table:"person" ~attrs ~budget_bytes:100 db in
  let fine = Wavelet.build ~table:"person" ~attrs ~budget_bytes:4_000 db in
  Alcotest.(check bool) "finer beats coarser" true (suite_err fine < suite_err coarse)

let test_wavelet_unsupported () =
  let db = Lazy.force census in
  let w = Wavelet.build ~table:"person" ~attrs:[ "Age" ] ~budget_bytes:200 db in
  Alcotest.(check bool) "uncovered attr" true
    (try
       ignore (w.Estimator.estimate (person_q [ Query.eq "t" "Sex" 0 ]));
       false
     with Estimator.Unsupported _ -> true)

(* ---- BN estimator --------------------------------------------------------------- *)

let test_bn_est_accuracy () =
  let db = Lazy.force census in
  let attrs = [ "Age"; "Education"; "Income" ] in
  let bn = Bn_est.build ~table:"person" ~attrs ~budget_bytes:2_000 db in
  (* aggregate over the suite: should be far better than AVI *)
  let avi = Avi.build ~attrs:(List.map (fun a -> ("person", a)) attrs) db in
  let total_err m =
    let acc = ref 0.0 and n = ref 0 in
    for a = 0 to 17 do
      for e = 0 to 16 do
        for i = 0 to 41 do
          if (a + e + i) mod 7 = 0 then begin
            (* subsample for speed *)
            let q =
              person_q
                [ Query.eq "t" "Age" a; Query.eq "t" "Education" e; Query.eq "t" "Income" i ]
            in
            let truth = Exec.query_size db q in
            acc :=
              !acc +. Estimator.adjusted_relative_error ~truth ~estimate:(m.Estimator.estimate q);
            incr n
          end
        done
      done
    done;
    !acc /. float_of_int !n
  in
  Alcotest.(check bool) "bn beats avi" true (total_err bn < total_err avi)

let test_bn_est_names () =
  Alcotest.(check string) "tree" "PRM(tree)" (Bn_est.name_for Selest_bn.Cpd.Trees);
  Alcotest.(check string) "table" "PRM(table)" (Bn_est.name_for Selest_bn.Cpd.Tables)

let test_bn_est_range_and_inset () =
  let db = Lazy.force census in
  let bn = Bn_est.build ~table:"person" ~attrs:[ "Age"; "Income" ] ~budget_bytes:1_500 db in
  let q = person_q [ Query.range "t" "Age" 0 17 ] in
  Alcotest.(check bool) "full range near N" true
    (abs_float (bn.Estimator.estimate q -. 10_000.0) < 1.0);
  (* In_set over the whole domain also returns N *)
  let q2 = person_q [ Query.in_set "t" "Age" (List.init 18 (fun i -> i)) ] in
  Alcotest.(check bool) "full set near N" true
    (abs_float (bn.Estimator.estimate q2 -. 10_000.0) < 1.0)




(* ---- SVD ------------------------------------------------------------------------- *)

let test_lowrank_exact_on_rank1 () =
  (* A = u v^T exactly: one triplet recovers it. *)
  let rows = 3 and cols = 4 in
  let u = [| 1.0; 2.0; 3.0 |] and v = [| 4.0; 3.0; 2.0; 1.0 |] in
  let a = Array.init (rows * cols) (fun idx -> u.(idx / cols) *. v.(idx mod cols)) in
  let triplets = Svd.Lowrank.truncate ~rows ~cols a ~k:1 in
  Alcotest.(check int) "one triplet" 1 (Array.length triplets);
  let approx = Svd.Lowrank.reconstruct ~rows ~cols triplets in
  Array.iteri
    (fun i x -> Alcotest.(check (float 1e-6)) "rank-1 exact" x approx.(i))
    a

let test_lowrank_full_rank_exact () =
  let rows = 4 and cols = 4 in
  let rng = Selest_util.Rng.create 9 in
  let a = Array.init 16 (fun _ -> Selest_util.Rng.float rng *. 10.0) in
  let triplets = Svd.Lowrank.truncate ~rows ~cols a ~k:4 in
  let approx = Svd.Lowrank.reconstruct ~rows ~cols triplets in
  Array.iteri
    (fun i x -> Alcotest.(check (float 1e-4)) "full rank reconstructs" x approx.(i))
    a

let test_lowrank_singular_values_ordered () =
  let rows = 5 and cols = 6 in
  let rng = Selest_util.Rng.create 10 in
  let a = Array.init 30 (fun _ -> Selest_util.Rng.float rng) in
  let triplets = Svd.Lowrank.truncate ~rows ~cols a ~k:3 in
  for i = 1 to Array.length triplets - 1 do
    let s_prev, _, _ = triplets.(i - 1) and s, _, _ = triplets.(i) in
    Alcotest.(check bool) "non-increasing" true (s <= s_prev +. 1e-9)
  done

let test_svd_estimator () =
  let db = Lazy.force census in
  let svd = Svd.build ~table:"person" ~x:"Age" ~y:"Income" ~budget_bytes:2_000 db in
  (* full-rank-ish budget reproduces marginals well *)
  let q = person_q [ Query.eq "t" "Age" 5 ] in
  let truth = Exec.query_size db q in
  Alcotest.(check bool) "marginal decent" true
    (abs_float (svd.Estimator.estimate q -. truth) /. truth < 0.2);
  (* improves with rank *)
  let suite_err m =
    let acc = ref 0.0 in
    for a = 0 to 17 do
      for i = 0 to 41 do
        let q = person_q [ Query.eq "t" "Age" a; Query.eq "t" "Income" i ] in
        let truth = Exec.query_size db q in
        acc := !acc +. Estimator.adjusted_relative_error ~truth ~estimate:(m.Estimator.estimate q)
      done
    done;
    !acc /. float_of_int (18 * 42)
  in
  let coarse = Svd.build ~table:"person" ~x:"Age" ~y:"Income" ~budget_bytes:300 db in
  Alcotest.(check bool) "rank helps" true (suite_err svd < suite_err coarse)

let test_svd_unsupported () =
  let db = Lazy.force census in
  let svd = Svd.build ~table:"person" ~x:"Age" ~y:"Income" ~budget_bytes:1_000 db in
  Alcotest.(check bool) "third attribute refused" true
    (try
       ignore (svd.Estimator.estimate (person_q [ Query.eq "t" "Sex" 0 ]));
       false
     with Estimator.Unsupported _ -> true)


let prop_haar_roundtrip_random_dims =
  QCheck2.Test.make ~name:"haar roundtrip on random power-of-2 shapes" ~count:60
    QCheck2.Gen.(triple (int_range 0 3) (int_range 0 3) (int_range 0 10_000))
    (fun (la, lb, seed) ->
      let rows = 1 lsl la and cols = 1 lsl lb in
      let dims = [| rows; cols |] in
      let rng = Selest_util.Rng.create seed in
      let data = Array.init (rows * cols) (fun _ -> Selest_util.Rng.float rng *. 100.0) in
      let back = Wavelet.Haar.inverse ~dims (Wavelet.Haar.forward ~dims data) in
      Array.for_all2 (fun a b -> abs_float (a -. b) < 1e-6) data back)

let prop_svd_rank_min_dim_exact =
  QCheck2.Test.make ~name:"rank >= min-dim reconstruction is exact" ~count:30
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = Selest_util.Rng.create seed in
      let rows = 2 + Selest_util.Rng.int rng 4 and cols = 2 + Selest_util.Rng.int rng 4 in
      let a = Array.init (rows * cols) (fun _ -> Selest_util.Rng.float rng *. 10.0) in
      let triplets = Svd.Lowrank.truncate ~rows ~cols a ~k:(min rows cols) in
      let approx = Svd.Lowrank.reconstruct ~rows ~cols triplets in
      Array.for_all2 (fun x y -> abs_float (x -. y) < 1e-3 *. Float.max 1.0 (abs_float x)) a approx)

(* ---- Join synopses ----------------------------------------------------------------- *)

let test_join_synopses_covers_all_roots () =
  let db = Lazy.force tb in
  let js = Join_synopses.build ~budget_bytes:60_000 ~seed:2 db in
  (* patient-rooted query: plain SAMPLE refuses this (its one sample is
     rooted at contact), the synopses answer it *)
  let q =
    Query.create
      ~tvars:[ ("p", "patient"); ("s", "strain") ]
      ~joins:[ Query.join ~child:"p" ~fk:"strain" ~parent:"s" ]
      ~selects:[ Query.eq "p" "USBorn" 1; Query.eq "s" "Unique" 0 ]
      ()
  in
  let truth = Exec.query_size db q in
  let est = js.Estimator.estimate q in
  Alcotest.(check bool)
    (Printf.sprintf "patient-rooted est %.0f vs truth %.0f" est truth)
    true
    (abs_float (est -. truth) /. Float.max 1.0 truth < 0.25);
  (* strain-only query also answered (its own synopsis) *)
  let q2 = Query.create ~tvars:[ ("s", "strain") ] ~selects:[ Query.eq "s" "Unique" 1 ] () in
  let t2 = Exec.query_size db q2 in
  Alcotest.(check bool) "single-table root" true
    (abs_float (js.Estimator.estimate q2 -. t2) /. Float.max 1.0 t2 < 0.25);
  (* contact-rooted 3-table query still works *)
  let q3 =
    Query.create
      ~tvars:[ ("c", "contact"); ("p", "patient") ]
      ~joins:[ Query.join ~child:"c" ~fk:"patient" ~parent:"p" ]
      ~selects:[ Query.eq "c" "Infected" 1 ]
      ()
  in
  let t3 = Exec.query_size db q3 in
  Alcotest.(check bool) "contact-rooted" true
    (abs_float (js.Estimator.estimate q3 -. t3) /. Float.max 1.0 t3 < 0.25)

let test_join_synopses_unsupported_branching () =
  let db = Lazy.force tb in
  let js = Join_synopses.build ~budget_bytes:10_000 ~seed:2 db in
  (* two contacts of one patient: branching join, no single base *)
  let q =
    Query.create
      ~tvars:[ ("c1", "contact"); ("c2", "contact"); ("p", "patient") ]
      ~joins:
        [
          Query.join ~child:"c1" ~fk:"patient" ~parent:"p";
          Query.join ~child:"c2" ~fk:"patient" ~parent:"p";
        ]
      ()
  in
  Alcotest.(check bool) "branching unsupported" true
    (try
       ignore (js.Estimator.estimate q);
       false
     with Estimator.Unsupported _ -> true)

let test_join_synopses_budget_split () =
  let db = Lazy.force tb in
  let js = Join_synopses.build ~budget_bytes:12_000 ~seed:2 db in
  Alcotest.(check bool) "within budget-ish" true (js.Estimator.bytes <= 12_000 + 256)

(* ---- Discretized estimator (Sec. 2.3) -------------------------------------------- *)

let test_discretized_bucket_level_queries () =
  let db = Lazy.force census in
  (* bucketize Income 42 -> 7; bucket-level queries (full-range predicates
     aligned on bucket boundaries are approximated well) *)
  let e =
    Discretized.build ~table:"person" ~bucketize:[ ("Income", 7) ] ~budget_bytes:2_000 db
  in
  Alcotest.(check string) "name" "PRM(bucketized)" e.Estimator.name;
  (* a query on a non-bucketized attribute is answered as usual *)
  let q = person_q [ Query.eq "t" "Sex" 0 ] in
  let truth = Exec.query_size db q in
  Alcotest.(check bool) "non-bucketized exact-ish" true
    (abs_float (e.Estimator.estimate q -. truth) /. truth < 0.05)

let test_discretized_base_level_point () =
  let db = Lazy.force census in
  let e =
    Discretized.build ~table:"person" ~bucketize:[ ("Income", 7) ] ~budget_bytes:2_000 db
  in
  (* Base-level point queries pay the uniformity-within-bucket assumption
     (Sec. 2.3); with 7 equi-depth buckets over a heavy-tailed 42-value
     domain the tail values are badly overestimated, so the aggregate error
     is substantial -- but it must still beat assuming uniformity over the
     whole domain, which is what the discretization refines. *)
  let avg_err estimate =
    let acc = ref 0.0 in
    for v = 0 to 41 do
      let q = person_q [ Query.eq "t" "Income" v ] in
      let truth = Exec.query_size db q in
      acc := !acc +. Estimator.adjusted_relative_error ~truth ~estimate:(estimate q)
    done;
    !acc /. 42.0
  in
  let disc_err = avg_err e.Estimator.estimate in
  let uniform_err = avg_err (fun _ -> 10_000.0 /. 42.0) in
  Alcotest.(check bool)
    (Printf.sprintf "bucketized %.1f%% beats whole-domain uniformity %.1f%%" disc_err
       uniform_err)
    true
    (disc_err < uniform_err)

let test_discretized_range_consistency () =
  let db = Lazy.force census in
  let e =
    Discretized.build ~table:"person" ~bucketize:[ ("Income", 7) ] ~budget_bytes:2_000 db
  in
  (* the full range returns N exactly (coverage 1 everywhere) *)
  let q = person_q [ Query.range "t" "Income" 0 41 ] in
  Alcotest.(check bool) "full range = N" true
    (abs_float (e.Estimator.estimate q -. 10_000.0) < 1.0);
  (* base-level point estimates sum to the full-range answer *)
  let total = ref 0.0 in
  for v = 0 to 41 do
    total := !total +. e.Estimator.estimate (person_q [ Query.eq "t" "Income" v ])
  done;
  Alcotest.(check bool) "partition of unity" true (abs_float (!total -. 10_000.0) < 1.0)

let test_discretized_smaller_model () =
  let db = Lazy.force census in
  let coarse =
    Discretized.build ~table:"person" ~bucketize:[ ("Income", 7); ("Age", 6) ]
      ~budget_bytes:50_000 db
  in
  let full = Bn_est.build ~table:"person" ~budget_bytes:50_000 db in
  (* with a generous budget, the bucketized model ends up smaller *)
  Alcotest.(check bool) "compression" true (coarse.Estimator.bytes < full.Estimator.bytes)

(* ---- PRM estimator (integration) -------------------------------------------------- *)

let test_prm_est_on_tb () =
  let db = Lazy.force tb in
  let prm = Prm_est.build ~budget_bytes:4_000 db in
  let uj = Prm_est.build_bn_uj ~budget_bytes:4_000 db in
  Alcotest.(check string) "names" "PRM" prm.Estimator.name;
  Alcotest.(check string) "names uj" "BN+UJ" uj.Estimator.name;
  let q =
    Query.create
      ~tvars:[ ("c", "contact"); ("p", "patient") ]
      ~joins:[ Query.join ~child:"c" ~fk:"patient" ~parent:"p" ]
      ~selects:[ Query.eq "p" "Age" 2; Query.eq "c" "Contype" 2 ]
      ()
  in
  let truth = Exec.query_size db q in
  let e_prm =
    Estimator.adjusted_relative_error ~truth ~estimate:(prm.Estimator.estimate q)
  in
  let e_uj = Estimator.adjusted_relative_error ~truth ~estimate:(uj.Estimator.estimate q) in
  Alcotest.(check bool)
    (Printf.sprintf "prm %.1f%% vs uj %.1f%%" e_prm e_uj)
    true (e_prm < 50.0 && e_prm <= e_uj +. 10.0)

let test_of_model_wrapper () =
  let db = Lazy.force tb in
  let model = Selest_prm.Learn.learn_prm ~budget_bytes:2_000 db in
  let est = Prm_est.of_model ~name:"wrapped" model ~sizes:(Selest_plan.Estimate.sizes_of_db db) in
  Alcotest.(check string) "name" "wrapped" est.Estimator.name;
  Alcotest.(check bool) "bytes positive" true (est.Estimator.bytes > 0)

let () =
  Alcotest.run "est"
    [
      ("metric", [ Alcotest.test_case "adjusted relative error" `Quick test_adjusted_relative_error ]);
      ( "avi",
        [
          Alcotest.test_case "single attribute exact" `Quick test_avi_exact_on_single_attribute;
          Alcotest.test_case "range predicate" `Quick test_avi_range_pred;
          Alcotest.test_case "independence error" `Quick test_avi_independence_error;
          Alcotest.test_case "join uniformity" `Quick test_avi_join_uniformity;
          Alcotest.test_case "unsupported" `Quick test_avi_unsupported;
        ] );
      ( "sample",
        [
          Alcotest.test_case "full sample exact" `Quick test_sample_full_is_exact;
          Alcotest.test_case "accuracy grows" `Quick test_sample_accuracy_grows;
          Alcotest.test_case "join sample" `Quick test_sample_join;
          Alcotest.test_case "unsupported base" `Quick test_sample_unsupported_base;
          Alcotest.test_case "bytes" `Quick test_sample_bytes;
        ] );
      ( "mhist",
        [
          Alcotest.test_case "exact with enough buckets" `Quick test_mhist_exact_with_enough_buckets;
          Alcotest.test_case "single bucket uniform" `Quick test_mhist_single_bucket_is_uniform;
          Alcotest.test_case "range query" `Quick test_mhist_range_query;
          Alcotest.test_case "more buckets help" `Quick test_mhist_beats_single_bucket;
          Alcotest.test_case "unsupported" `Quick test_mhist_unsupported;
          Alcotest.test_case "bucket arithmetic" `Quick test_mhist_bucket_arithmetic;
        ] );
      ( "wavelet",
        [
          Alcotest.test_case "haar roundtrip" `Quick test_haar_roundtrip;
          Alcotest.test_case "parseval" `Quick test_haar_energy_preservation;
          Alcotest.test_case "top-k" `Quick test_haar_top_k;
          Alcotest.test_case "exact with all coefficients" `Quick test_wavelet_exact_with_all_coefficients;
          Alcotest.test_case "total mass" `Quick test_wavelet_total_mass;
          Alcotest.test_case "more coefficients help" `Quick test_wavelet_more_coefficients_help;
          Alcotest.test_case "unsupported" `Quick test_wavelet_unsupported;
        ] );
      ( "bn-est",
        [
          Alcotest.test_case "beats AVI" `Quick test_bn_est_accuracy;
          Alcotest.test_case "names" `Quick test_bn_est_names;
          Alcotest.test_case "range and set predicates" `Quick test_bn_est_range_and_inset;
        ] );
      ( "synopsis-properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_haar_roundtrip_random_dims; prop_svd_rank_min_dim_exact ] );
      ( "svd",
        [
          Alcotest.test_case "rank-1 exact" `Quick test_lowrank_exact_on_rank1;
          Alcotest.test_case "full-rank exact" `Quick test_lowrank_full_rank_exact;
          Alcotest.test_case "singular values ordered" `Quick test_lowrank_singular_values_ordered;
          Alcotest.test_case "estimator" `Quick test_svd_estimator;
          Alcotest.test_case "unsupported" `Quick test_svd_unsupported;
        ] );
      ( "join-synopses",
        [
          Alcotest.test_case "covers all roots" `Quick test_join_synopses_covers_all_roots;
          Alcotest.test_case "unsupported branching" `Quick test_join_synopses_unsupported_branching;
          Alcotest.test_case "budget split" `Quick test_join_synopses_budget_split;
        ] );
      ( "discretized",
        [
          Alcotest.test_case "bucket-level queries" `Quick test_discretized_bucket_level_queries;
          Alcotest.test_case "base-level point queries" `Quick test_discretized_base_level_point;
          Alcotest.test_case "range consistency" `Quick test_discretized_range_consistency;
          Alcotest.test_case "compression" `Quick test_discretized_smaller_model;
        ] );
      ( "prm-est",
        [
          Alcotest.test_case "tb join" `Quick test_prm_est_on_tb;
          Alcotest.test_case "of_model" `Quick test_of_model_wrapper;
        ] );
    ]
