open Selest_bn
open Selest_db

let check_float = Alcotest.(check (float 1e-6))

(* ---- Dag ----------------------------------------------------------------- *)

let test_dag_basics () =
  let d = Dag.empty 4 in
  let d = Dag.add_edge d ~src:0 ~dst:1 in
  let d = Dag.add_edge d ~src:1 ~dst:2 in
  let d = Dag.add_edge d ~src:0 ~dst:2 in
  Alcotest.(check int) "edges" 3 (Dag.n_edges d);
  Alcotest.(check (array int)) "parents sorted" [| 0; 1 |] (Dag.parents d 2);
  Alcotest.(check (array int)) "children" [| 1; 2 |] (Dag.children d 0);
  Alcotest.(check bool) "has edge" true (Dag.has_edge d ~src:1 ~dst:2);
  let d2 = Dag.remove_edge d ~src:0 ~dst:2 in
  Alcotest.(check (array int)) "removed" [| 1 |] (Dag.parents d2 2)

let test_dag_cycle_rejection () =
  let d = Dag.add_edge (Dag.empty 3) ~src:0 ~dst:1 in
  let d = Dag.add_edge d ~src:1 ~dst:2 in
  Alcotest.(check bool) "detects cycle" true (Dag.creates_cycle d ~src:2 ~dst:0);
  Alcotest.check_raises "raises" (Invalid_argument "Dag.add_edge: would create a cycle")
    (fun () -> ignore (Dag.add_edge d ~src:2 ~dst:0));
  Alcotest.check_raises "self loop" (Invalid_argument "Dag.add_edge: self-loop") (fun () ->
      ignore (Dag.add_edge d ~src:1 ~dst:1))

let test_dag_topological () =
  let d = Dag.add_edge (Dag.empty 4) ~src:2 ~dst:0 in
  let d = Dag.add_edge d ~src:0 ~dst:3 in
  let order = Dag.topological_order d in
  let pos = Array.make 4 0 in
  Array.iteri (fun i v -> pos.(v) <- i) order;
  Alcotest.(check bool) "2 before 0" true (pos.(2) < pos.(0));
  Alcotest.(check bool) "0 before 3" true (pos.(0) < pos.(3))

(* ---- fixture data --------------------------------------------------------- *)

(* The Education -> Income -> HomeOwner example of Sec. 2.1. *)
let eih_data =
  (* 1000 rows sampled deterministically from the paper's Fig. 1 joint. *)
  let joint =
    [|
      (* e, i, h, weight*1000 *)
      (0, 0, 0, 270); (0, 0, 1, 30); (0, 1, 0, 105); (0, 1, 1, 45); (0, 2, 0, 5);
      (0, 2, 1, 45); (1, 0, 0, 135); (1, 0, 1, 15); (1, 1, 0, 63); (1, 1, 1, 27);
      (1, 2, 0, 6); (1, 2, 1, 54); (2, 0, 0, 18); (2, 0, 1, 2); (2, 1, 0, 42);
      (2, 1, 1, 18); (2, 2, 0, 12); (2, 2, 1, 108);
    |]
  in
  let e = ref [] and i = ref [] and h = ref [] in
  Array.iter
    (fun (ev, iv, hv, w) ->
      for _ = 1 to w do
        e := ev :: !e;
        i := iv :: !i;
        h := hv :: !h
      done)
    joint;
  Data.create ~names:[| "E"; "I"; "H" |] ~cards:[| 3; 3; 2 |]
    ~ordinal:[| false; true; false |]
    [| Array.of_list !e; Array.of_list !i; Array.of_list !h |]

let test_data_of_table () =
  let db = Selest_synth.Census.generate ~rows:100 ~seed:0 () in
  let data = Data.of_table (Database.table db "person") in
  Alcotest.(check int) "vars" 12 (Data.n_vars data);
  check_float "weight" 100.0 (Data.total_weight data)

let test_data_validation () =
  Alcotest.(check bool) "rejects out-of-range" true
    (try
       ignore (Data.create ~names:[| "A" |] ~cards:[| 2 |] [| [| 0; 5 |] |]);
       false
     with Invalid_argument _ -> true)

(* ---- Table CPDs ------------------------------------------------------------ *)

let test_table_cpd_fit () =
  let cpd = Table_cpd.fit eih_data ~child:2 ~parents:[| 1 |] in
  (* P(H=1 | I=2) = 0.9 in the paper's Fig. 1(b). *)
  let d = Table_cpd.dist cpd [| 2 |] in
  check_float "P(h|i=high)" 0.9 d.(1);
  let d0 = Table_cpd.dist cpd [| 0 |] in
  check_float "P(h|i=low)" 0.1 d0.(1);
  Alcotest.(check int) "params" 3 (Table_cpd.n_params cpd)

let test_table_cpd_marginal () =
  let cpd = Table_cpd.fit eih_data ~child:0 ~parents:[||] in
  let d = Table_cpd.dist cpd [||] in
  check_float "P(E=hs)" 0.5 d.(0);
  check_float "P(E=col)" 0.3 d.(1)

let test_table_cpd_unseen_config_uniform () =
  let data =
    Data.create ~names:[| "A"; "B" |] ~cards:[| 2; 2 |]
      [| [| 0; 0 |]; [| 0; 1 |] |]
  in
  let cpd = Table_cpd.fit data ~child:1 ~parents:[| 0 |] in
  let d = Table_cpd.dist cpd [| 1 |] in
  check_float "unseen parent config is uniform" 0.5 d.(0)

let test_table_cpd_factor () =
  let cpd = Table_cpd.fit eih_data ~child:2 ~parents:[| 1 |] in
  let f = Table_cpd.to_factor ~var_of:(fun v -> v) ~child:2 cpd in
  Alcotest.(check (array int)) "scope" [| 1; 2 |] (Selest_prob.Factor.vars f);
  check_float "entry" 0.9 (Selest_prob.Factor.get f [| 2; 1 |]);
  (* renaming that reverses the order *)
  let g = Table_cpd.to_factor ~var_of:(fun v -> 10 - v) ~child:2 cpd in
  Alcotest.(check (array int)) "renamed scope" [| 8; 9 |] (Selest_prob.Factor.vars g);
  check_float "renamed entry" 0.9 (Selest_prob.Factor.get g [| 1; 2 |])

(* ---- Tree CPDs -------------------------------------------------------------- *)

let test_tree_cpd_fit_matches_conditional () =
  let cpd = Tree_cpd.fit eih_data ~child:2 ~parents:[| 1 |] ~gain_threshold:1.0 () in
  let d = Tree_cpd.dist cpd [| 2 |] in
  check_float "tree P(h|i=high)" 0.9 d.(1);
  Alcotest.(check (array int)) "uses income" [| 1 |] (Tree_cpd.used_parents cpd)

let test_tree_cpd_ignores_useless_parent () =
  (* H is independent of E given nothing here: E column is random noise
     w.r.t. a constant-distribution H. *)
  let n = 2000 in
  let rng = Selest_util.Rng.create 2 in
  let e = Array.init n (fun _ -> Selest_util.Rng.int rng 3) in
  let h = Array.init n (fun _ -> Selest_util.Rng.int rng 2) in
  let data = Data.create ~names:[| "E"; "H" |] ~cards:[| 3; 2 |] [| e; h |] in
  let cpd = Tree_cpd.fit data ~child:1 ~parents:[| 0 |] () in
  Alcotest.(check (array int)) "no split on noise" [||] (Tree_cpd.used_parents cpd);
  Alcotest.(check int) "single leaf" 1 cpd.Tree_cpd.n_leaves

let test_tree_cpd_param_budget () =
  let cpd =
    Tree_cpd.fit eih_data ~child:2 ~parents:[| 0; 1 |] ~param_budget:1 ~gain_threshold:0.0 ()
  in
  Alcotest.(check int) "respects budget" 1 (Tree_cpd.n_params cpd);
  let big =
    Tree_cpd.fit eih_data ~child:2 ~parents:[| 0; 1 |] ~param_budget:1000
      ~gain_threshold:0.0 ()
  in
  Alcotest.(check bool) "grows when allowed" true (Tree_cpd.n_params big > 1)

let test_tree_threshold_splits () =
  (* Child flips when ordinal parent crosses 5: a single threshold split
     should capture it more cheaply than a 10-way split. *)
  let n = 1000 in
  let rng = Selest_util.Rng.create 4 in
  let p = Array.init n (fun _ -> Selest_util.Rng.int rng 10) in
  let c = Array.map (fun v -> if v < 5 then 0 else 1) p in
  let data =
    Data.create ~names:[| "P"; "C" |] ~cards:[| 10; 2 |] ~ordinal:[| true; false |]
      [| p; c |]
  in
  let cpd = Tree_cpd.fit data ~child:1 ~parents:[| 0 |] () in
  Alcotest.(check int) "two leaves" 2 cpd.Tree_cpd.n_leaves;
  check_float "lo branch" 1.0 (Tree_cpd.dist cpd [| 3 |]).(0);
  check_float "hi branch" 1.0 (Tree_cpd.dist cpd [| 7 |]).(1);
  Alcotest.(check int) "depth 1" 1 (Tree_cpd.depth cpd)

let test_tree_vs_table_loglik () =
  (* With unlimited structure, a tree can always match the table fit. *)
  let table = Table_cpd.fit eih_data ~child:2 ~parents:[| 0; 1 |] in
  let tree =
    Tree_cpd.fit eih_data ~child:2 ~parents:[| 0; 1 |] ~gain_threshold:0.0 ()
  in
  let ll_table = Table_cpd.loglik table eih_data ~child:2 in
  let ll_tree = Tree_cpd.loglik tree eih_data ~child:2 in
  Alcotest.(check bool) "tree reaches table loglik" true (ll_tree >= ll_table -. 1e-6)

let test_tree_explicit_construction () =
  let node =
    Tree_cpd.Split
      {
        pindex = 0;
        arms =
          Tree_cpd.Thresh (1, Tree_cpd.leaf [| 1.0; 0.0 |], Tree_cpd.leaf [| 0.0; 1.0 |]);
      }
  in
  let cpd = Tree_cpd.of_tree ~child_card:2 ~parents:[| 5 |] ~parent_cards:[| 3 |] node in
  check_float "lo" 1.0 (Tree_cpd.dist cpd [| 0 |]).(0);
  check_float "hi" 1.0 (Tree_cpd.dist cpd [| 2 |]).(1);
  Alcotest.(check int) "params: 2 leaves + split" 4 (Tree_cpd.n_params cpd)

(* ---- Bn + Ve ----------------------------------------------------------------- *)

let eih_bn kind =
  let dag = Dag.add_edge (Dag.empty 3) ~src:0 ~dst:1 in
  let dag = Dag.add_edge dag ~src:1 ~dst:2 in
  Bn.fit eih_data ~dag ~kind

let test_bn_joint_prob () =
  let bn = eih_bn Cpd.Tables in
  (* P(e=0,i=0,h=0) = 0.5 * 0.6 * 0.9 = 0.27 as in Fig. 1(a). *)
  check_float "chain rule" 0.27 (Bn.joint_prob bn [| 0; 0; 0 |]);
  check_float "another cell" 0.108 (Bn.joint_prob bn [| 2; 2; 1 |])

let test_bn_factored_equals_joint () =
  (* The BN with the correct structure reproduces the exact joint: the
     Fig. 1 sanity check. *)
  let bn = eih_bn Cpd.Tables in
  let joint = Data.contingency eih_data [| 0; 1; 2 |] in
  let n = Selest_prob.Contingency.total joint in
  let max_err = ref 0.0 in
  Selest_prob.Contingency.iter joint (fun values w ->
      let p = Bn.joint_prob bn values in
      max_err := Float.max !max_err (abs_float (p -. (w /. n))));
  Alcotest.(check bool) "factored = joint" true (!max_err < 1e-9)

let test_bn_prob_of_evidence () =
  let bn = eih_bn Cpd.Tables in
  (* P(i=2, h=1) = sum over e of joint. *)
  let expected = 0.045 +. 0.054 +. 0.108 in
  check_float "P(i=high, h=yes)" expected (Bn.prob_of bn [ (1, Query.Eq 2); (2, Query.Eq 1) ]);
  (* Range evidence: P(i >= 1). *)
  check_float "P(i>=med)"
    (1.0 -. 0.27 -. 0.03 -. 0.135 -. 0.015 -. 0.018 -. 0.002)
    (Bn.prob_of bn [ (1, Query.Range (1, 2)) ]);
  check_float "empty evidence" 1.0 (Bn.prob_of bn [])

let test_bn_marginal_and_sample () =
  let bn = eih_bn Cpd.Tables in
  let m = Bn.marginal bn 1 in
  check_float "marginal I" 0.47 m.(0);
  let rng = Selest_util.Rng.create 12 in
  let counts = Array.make 3 0 in
  for _ = 1 to 20_000 do
    let s = Bn.sample rng bn in
    counts.(s.(1)) <- counts.(s.(1)) + 1
  done;
  let p0 = float_of_int counts.(0) /. 20_000.0 in
  Alcotest.(check bool) "sampler calibrated" true (abs_float (p0 -. 0.47) < 0.02)

let test_bn_loglik_improves_with_structure () =
  let empty = Bn.fit eih_data ~dag:(Dag.empty 3) ~kind:Cpd.Tables in
  let chain = eih_bn Cpd.Tables in
  Alcotest.(check bool) "structure helps" true (Bn.loglik chain eih_data > Bn.loglik empty eih_data)

(* VE vs brute-force enumeration on random BNs. *)
let gen_random_bn_and_evidence =
  let open QCheck2.Gen in
  let* seed = int_range 0 10_000 in
  let rng = Selest_util.Rng.create seed in
  let n_vars = 3 + Selest_util.Rng.int rng 2 in
  let cards = Array.init n_vars (fun _ -> 2 + Selest_util.Rng.int rng 2) in
  (* random DAG respecting variable order *)
  let dag = ref (Dag.empty n_vars) in
  for child = 1 to n_vars - 1 do
    for parent = 0 to child - 1 do
      if Selest_util.Rng.float rng < 0.4 then dag := Dag.add_edge !dag ~src:parent ~dst:child
    done
  done;
  (* random data *)
  let n_rows = 200 in
  let cols = Array.map (fun c -> Array.init n_rows (fun _ -> Selest_util.Rng.int rng c)) cards in
  let data =
    Data.create
      ~names:(Array.init n_vars (fun i -> Printf.sprintf "V%d" i))
      ~cards cols
  in
  let bn = Bn.fit data ~dag:!dag ~kind:Cpd.Tables in
  (* random evidence over a subset *)
  let evidence =
    List.filter_map
      (fun v ->
        if Selest_util.Rng.float rng < 0.5 then
          Some (v, Query.Eq (Selest_util.Rng.int rng cards.(v)))
        else None)
      (List.init n_vars (fun i -> i))
  in
  pure (bn, cards, evidence)

let brute_force_prob bn cards evidence =
  let n = Array.length cards in
  let total = ref 0.0 in
  let rec go v asg =
    if v = n then begin
      if
        List.for_all (fun (var, pred) -> Query.pred_holds pred asg.(var)) evidence
      then total := !total +. Bn.joint_prob bn asg
    end
    else
      for x = 0 to cards.(v) - 1 do
        asg.(v) <- x;
        go (v + 1) asg
      done
  in
  go 0 (Array.make n 0);
  !total

let prop_ve_matches_enumeration =
  QCheck2.Test.make ~name:"VE = enumeration" ~count:100 gen_random_bn_and_evidence
    (fun (bn, cards, evidence) ->
      let ve = Bn.prob_of bn evidence in
      let bf = brute_force_prob bn cards evidence in
      abs_float (ve -. bf) < 1e-9)

let prop_ve_total_is_one =
  QCheck2.Test.make ~name:"VE total mass 1" ~count:100 gen_random_bn_and_evidence
    (fun (bn, _, _) -> abs_float (Bn.prob_of bn [] -. 1.0) < 1e-9)

let test_posterior () =
  let bn = eih_bn Cpd.Tables in
  let post = Ve.posterior (Bn.factors bn) [ (2, Query.Eq 1) ] ~keep:[| 1 |] in
  (* P(I | H = 1) by Bayes on the Fig. 1 joint. *)
  let p_h1 = 0.03 +. 0.045 +. 0.045 +. 0.015 +. 0.027 +. 0.054 +. 0.002 +. 0.018 +. 0.108 in
  let p_i2_h1 = 0.045 +. 0.054 +. 0.108 in
  check_float "posterior" (p_i2_h1 /. p_h1) (Selest_prob.Factor.get post [| 2 |])


let test_cached_prob_agrees () =
  let bn = eih_bn Cpd.Tables in
  let cached = Bn.cached_prob bn in
  for e = 0 to 2 do
    for i = 0 to 2 do
      let ev = [ (0, Query.Eq e); (1, Query.Eq i) ] in
      check_float "cached = direct" (Bn.prob_of bn ev) (cached ev)
    done
  done;
  (* range falls back and still agrees *)
  let ev = [ (1, Query.Range (1, 2)); (2, Query.Eq 1) ] in
  check_float "range fallback" (Bn.prob_of bn ev) (cached ev);
  (* duplicated variable (conjunction on one var) falls back *)
  let ev = [ (1, Query.Eq 1); (1, Query.Eq 2) ] in
  check_float "contradiction" 0.0 (cached ev)


(* ---- Optimized VE vs the Reference engine ----------------------------------- *)

let factor_bit_equal f g =
  let open Selest_prob in
  Factor.vars f = Factor.vars g
  && Factor.cards f = Factor.cards g
  && Factor.data f = Factor.data g

(* Like [gen_random_bn_and_evidence] but exercising the full predicate
   language: Eq, Range and In_set evidence, including redundant (all-true)
   and conjoined (two predicates on one variable) forms. *)
let gen_random_bn_and_rich_evidence =
  let open QCheck2.Gen in
  let* seed = int_range 0 10_000 in
  let rng = Selest_util.Rng.create seed in
  let n_vars = 3 + Selest_util.Rng.int rng 2 in
  let cards = Array.init n_vars (fun _ -> 2 + Selest_util.Rng.int rng 2) in
  let dag = ref (Dag.empty n_vars) in
  for child = 1 to n_vars - 1 do
    for parent = 0 to child - 1 do
      if Selest_util.Rng.float rng < 0.4 then dag := Dag.add_edge !dag ~src:parent ~dst:child
    done
  done;
  let n_rows = 200 in
  let cols = Array.map (fun c -> Array.init n_rows (fun _ -> Selest_util.Rng.int rng c)) cards in
  let data =
    Data.create
      ~names:(Array.init n_vars (fun i -> Printf.sprintf "V%d" i))
      ~cards cols
  in
  let bn = Bn.fit data ~dag:!dag ~kind:Cpd.Tables in
  let random_pred v =
    match Selest_util.Rng.int rng 3 with
    | 0 -> Query.Eq (Selest_util.Rng.int rng cards.(v))
    | 1 ->
      let a = Selest_util.Rng.int rng cards.(v) in
      let b = a + Selest_util.Rng.int rng (cards.(v) - a) in
      Query.Range (a, b)
    | _ ->
      let k = 1 + Selest_util.Rng.int rng cards.(v) in
      Query.In_set (List.init k (fun _ -> Selest_util.Rng.int rng cards.(v)))
  in
  let evidence =
    List.concat_map
      (fun v ->
        if Selest_util.Rng.float rng < 0.6 then
          if Selest_util.Rng.float rng < 0.25 then [ (v, random_pred v); (v, random_pred v) ]
          else [ (v, random_pred v) ]
        else [])
      (List.init n_vars (fun i -> i))
  in
  pure (bn, cards, evidence)

let prop_ve_bit_identical_to_reference =
  QCheck2.Test.make ~name:"optimized VE ≡ Reference (bit-identical)" ~count:100
    gen_random_bn_and_rich_evidence (fun (bn, _, evidence) ->
      let fs = Bn.factors bn in
      let fast = Ve.prob_of_evidence fs evidence in
      let slow = Ve.Reference.prob_of_evidence fs evidence in
      Int64.bits_of_float fast = Int64.bits_of_float slow)

let prop_posterior_bit_identical_to_reference =
  QCheck2.Test.make ~name:"optimized posterior ≡ Reference (bit-identical)" ~count:100
    gen_random_bn_and_rich_evidence (fun (bn, cards, evidence) ->
      let fs = Bn.factors bn in
      (* keep the variables NOT mentioned in the evidence (at least var 0) *)
      let mentioned = List.map fst evidence in
      let keep =
        Array.of_list
          (List.filter
             (fun v -> not (List.mem v mentioned))
             (List.init (Array.length cards) (fun i -> i)))
      in
      let keep = if Array.length keep = 0 then [| 0 |] else keep in
      match Ve.posterior fs evidence ~keep with
      | fast -> factor_bit_equal fast (Ve.Reference.posterior fs evidence ~keep)
      | exception Invalid_argument _ ->
        (* contradictory evidence: both engines must refuse identically *)
        (try
           ignore (Ve.Reference.posterior fs evidence ~keep);
           false
         with Invalid_argument _ -> true))

let test_ve_schedule () =
  let bn = eih_bn Cpd.Tables in
  let fs = Bn.factors bn in
  let ev = [ (0, Query.Eq 1); (2, Query.Eq 1) ] in
  (* the schedule is the order plus per-step predictions, consistently *)
  let sched = Ve.Schedule.plan ~keep:[||] fs in
  Alcotest.(check (list int))
    "order = step vars"
    (List.map (fun s -> s.Ve.Schedule.var) sched.Ve.Schedule.steps)
    sched.Ve.Schedule.order;
  Alcotest.(check (list int))
    "plan_order agrees" (Ve.plan_order ~keep:[||] fs) sched.Ve.Schedule.order;
  List.iter
    (fun s ->
      Alcotest.(check bool)
        "predicted entries positive" true
        (s.Ve.Schedule.predicted_entries >= 1))
    sched.Ve.Schedule.steps;
  (* running a prepared bag along its own planned schedule matches the
     one-shot path *)
  let p_direct = Ve.prob_of_evidence fs ev in
  (match Ve.prepare fs ev with
  | None -> Alcotest.fail "evidence is satisfiable"
  | Some prep ->
    Alcotest.(check (list int))
      "restricted vars" [ 0; 2 ]
      (Ve.restricted_vars prep);
    let s = Ve.Schedule.plan ~keep:[||] (Ve.prepared_factors prep) in
    check_float "run = prob_of_evidence" p_direct
      (Ve.run prep ~order:s.Ve.Schedule.order))

let test_normalize_evidence () =
  let bn = eih_bn Cpd.Tables in
  let fs = Bn.factors bn in
  (* all-true predicates are dropped entirely (cards are E=3, I=3, H=2) *)
  Alcotest.(check bool) "full range dropped" true
    (Ve.normalize_evidence fs [ (1, Query.Range (0, 2)) ] = Some []);
  Alcotest.(check bool) "full set dropped" true
    (Ve.normalize_evidence fs [ (2, Query.In_set [ 1; 0 ]) ] = Some []);
  (* conjunction on one variable narrows to the intersection *)
  Alcotest.(check bool) "conjunction intersects to Eq" true
    (Ve.normalize_evidence fs [ (1, Query.In_set [ 0; 2 ]); (1, Query.Range (1, 2)) ]
    = Some [ (1, Query.Eq 2) ]);
  (* contradictory conjunction *)
  Alcotest.(check bool) "contradiction" true
    (Ve.normalize_evidence fs [ (1, Query.Eq 0); (1, Query.Eq 1) ] = None);
  (* a dropped no-op predicate leaves the probability untouched *)
  check_float "no-op evidence mass" 1.0
    (Ve.prob_of_evidence fs [ (1, Query.Range (0, 2)) ]);
  Alcotest.(check bool) "out-of-range value rejected" true
    (try
       ignore (Ve.normalize_evidence fs [ (1, Query.Eq 99) ]);
       false
     with Invalid_argument _ -> true)

let test_plan_order_covers_non_keep () =
  let bn = eih_bn Cpd.Tables in
  let order = Ve.plan_order ~keep:[| 1 |] (Bn.factors bn) in
  Alcotest.(check (list int)) "eliminates exactly the non-keep vars"
    [ 0; 2 ]
    (List.sort compare order);
  Alcotest.(check bool) "keep var untouched" true (not (List.mem 1 order))

let test_refit_same_data_is_noop () =
  let tree = Tree_cpd.fit eih_data ~child:2 ~parents:[| 0; 1 |] ~gain_threshold:0.0 () in
  let refit = Tree_cpd.refit tree eih_data ~child:2 in
  Alcotest.(check int) "same leaves" tree.Tree_cpd.n_leaves refit.Tree_cpd.n_leaves;
  Alcotest.(check int) "same splits" tree.Tree_cpd.n_splits refit.Tree_cpd.n_splits;
  (* distributions unchanged *)
  for e = 0 to 2 do
    for i = 0 to 2 do
      let a = Tree_cpd.dist tree [| e; i |] and b = Tree_cpd.dist refit [| e; i |] in
      Array.iteri (fun k x -> check_float "same leaf dist" x b.(k)) a
    done
  done

let test_refit_updates_parameters () =
  (* New data with inverted H|I relationship: structure kept, leaves move. *)
  let inverted =
    let e = ref [] and i = ref [] and h = ref [] in
    Array.iter
      (fun (ev, iv, hv, w) ->
        for _ = 1 to w do
          e := ev :: !e;
          i := iv :: !i;
          h := (1 - hv) :: !h
        done)
      [| (0, 0, 0, 270); (0, 0, 1, 30); (0, 2, 0, 5); (0, 2, 1, 45);
         (1, 1, 0, 63); (1, 1, 1, 27); (2, 2, 0, 12); (2, 2, 1, 108) |]
    |> fun () ->
    Data.create ~names:[| "E"; "I"; "H" |] ~cards:[| 3; 3; 2 |]
      [| Array.of_list !e; Array.of_list !i; Array.of_list !h |]
  in
  let tree = Tree_cpd.fit eih_data ~child:2 ~parents:[| 1 |] ~gain_threshold:1.0 () in
  let refit = Tree_cpd.refit tree inverted ~child:2 in
  Alcotest.(check int) "structure kept" tree.Tree_cpd.n_splits refit.Tree_cpd.n_splits;
  (* P(h=1 | i=high) flipped from 0.9 to ~0.1-ish *)
  Alcotest.(check bool) "parameters moved" true
    ((Tree_cpd.dist refit [| 2 |]).(1) < 0.5)

let test_cpd_refit_dispatch () =
  let table = Cpd.fit Cpd.Tables eih_data ~child:2 ~parents:[| 1 |] () in
  let tree = Cpd.fit Cpd.Trees eih_data ~child:2 ~parents:[| 1 |] () in
  let rt = Cpd.refit table eih_data ~child:2 in
  let rr = Cpd.refit tree eih_data ~child:2 in
  check_float "table refit" (Cpd.dist table [| 2 |]).(1) (Cpd.dist rt [| 2 |]).(1);
  check_float "tree refit" (Cpd.dist tree [| 2 |]).(1) (Cpd.dist rr [| 2 |]).(1)

(* Random-fit properties for tree CPDs. *)
let prop_tree_dists_normalized =
  QCheck2.Test.make ~name:"tree CPD rows are distributions" ~count:100
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = Selest_util.Rng.create seed in
      let n = 300 in
      let cards = [| 3; 4; 2 |] in
      let cols =
        Array.map (fun c -> Array.init n (fun _ -> Selest_util.Rng.int rng c)) cards
      in
      let data =
        Data.create ~names:[| "A"; "B"; "C" |] ~cards ~ordinal:[| true; true; false |]
          cols
      in
      let cpd = Tree_cpd.fit data ~child:2 ~parents:[| 0; 1 |] ~gain_threshold:0.0 () in
      let ok = ref true in
      for a = 0 to 2 do
        for b = 0 to 3 do
          let d = Tree_cpd.dist cpd [| a; b |] in
          let total = Array.fold_left ( +. ) 0.0 d in
          if abs_float (total -. 1.0) > 1e-9 then ok := false;
          Array.iter (fun p -> if p < -1e-12 then ok := false) d
        done
      done;
      !ok)

let prop_tree_loglik_monotone_in_budget =
  QCheck2.Test.make ~name:"tree loglik non-decreasing in parameter budget" ~count:50
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = Selest_util.Rng.create seed in
      let n = 400 in
      let p = Array.init n (fun _ -> Selest_util.Rng.int rng 6) in
      let c = Array.map (fun v -> if Selest_util.Rng.int rng 4 = 0 then 1 - (v mod 2) else v mod 2) p in
      let data =
        Data.create ~names:[| "P"; "C" |] ~cards:[| 6; 2 |] ~ordinal:[| true; false |]
          [| p; c |]
      in
      let ll budget =
        let cpd = Tree_cpd.fit data ~child:1 ~parents:[| 0 |] ~param_budget:budget ~gain_threshold:0.0 () in
        Tree_cpd.loglik cpd data ~child:1
      in
      ll 20 >= ll 1 -. 1e-9)

(* ---- Learning ------------------------------------------------------------------ *)

let test_learn_recovers_strong_edges () =
  let result =
    Learn.learn ~config:{ (Learn.default_config ~budget_bytes:2000) with Learn.kind = Cpd.Tables }
      eih_data
  in
  let bn = result.Learn.bn in
  (* I and E must end up adjacent (either direction), and H adjacent to I. *)
  let adjacent a b =
    Dag.has_edge bn.Bn.dag ~src:a ~dst:b || Dag.has_edge bn.Bn.dag ~src:b ~dst:a
  in
  Alcotest.(check bool) "E-I adjacent" true (adjacent 0 1);
  Alcotest.(check bool) "I-H adjacent" true (adjacent 1 2)

let test_learn_respects_budget () =
  List.iter
    (fun budget ->
      let r = Learn.learn ~config:(Learn.default_config ~budget_bytes:budget) eih_data in
      Alcotest.(check bool)
        (Printf.sprintf "fits %dB" budget)
        true (r.Learn.bytes <= budget))
    [ 100; 300; 1000 ]

let test_learn_loglik_monotone_in_budget () =
  let ll budget =
    (Learn.learn ~config:(Learn.default_config ~budget_bytes:budget) eih_data).Learn.loglik
  in
  Alcotest.(check bool) "more space, no worse fit" true (ll 4000 >= ll 100 -. 1e-6)

let test_learn_rules_and_kinds () =
  List.iter
    (fun rule ->
      List.iter
        (fun kind ->
          let cfg =
            { (Learn.default_config ~budget_bytes:1500) with Learn.rule; kind }
          in
          let r = Learn.learn ~config:cfg eih_data in
          Alcotest.(check bool) "valid result" true (r.Learn.bytes <= 1500))
        [ Cpd.Tables; Cpd.Trees ])
    [ Learn.Naive; Learn.Ssn; Learn.Mdl ]

let test_learn_budget_too_small () =
  Alcotest.(check bool) "tiny budget rejected" true
    (try
       ignore (Learn.learn ~config:(Learn.default_config ~budget_bytes:4) eih_data);
       false
     with Invalid_argument _ -> true)

let test_score_cache_incremental () =
  let cache = Score.create_cache ~kind:Cpd.Tables eih_data in
  let f1 = Score.family cache ~child:2 ~parents:[| 1 |] in
  let f2 = Score.family cache ~child:2 ~parents:[| 1 |] in
  Alcotest.(check int) "one evaluation" 1 (Score.n_evaluations cache);
  Alcotest.(check bool) "same object" true (f1 == f2)

(* The incremental climber (per-node delta move cache + reachability
   closure) must retrace the naive reference climber move for move, with
   an identical family-fit count.  Random data, both CPD kinds, both
   byte-aware rules, restarts exercising walk/restore invalidation. *)
let prop_incremental_learn_matches_reference =
  QCheck2.Test.make ~name:"incremental climber = reference climber" ~count:15
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let rng = Selest_util.Rng.create seed in
      let n_vars = 3 + Selest_util.Rng.int rng 3 in
      let cards = Array.init n_vars (fun _ -> 2 + Selest_util.Rng.int rng 3) in
      let n_rows = 150 + Selest_util.Rng.int rng 150 in
      let cols =
        Array.map (fun c -> Array.init n_rows (fun _ -> Selest_util.Rng.int rng c)) cards
      in
      let data =
        Data.create ~names:(Array.init n_vars (fun i -> Printf.sprintf "V%d" i)) ~cards cols
      in
      let cfg =
        {
          (Learn.default_config ~budget_bytes:(800 + Selest_util.Rng.int rng 1_500)) with
          Learn.kind = (if Selest_util.Rng.int rng 2 = 0 then Cpd.Tables else Cpd.Trees);
          rule = (if Selest_util.Rng.int rng 2 = 0 then Learn.Ssn else Learn.Mdl);
          max_parents = 2 + Selest_util.Rng.int rng 2;
          random_restarts = 1 + Selest_util.Rng.int rng 2;
          random_walk_length = 2 + Selest_util.Rng.int rng 3;
          seed;
        }
      in
      let fast = Learn.learn ~config:cfg data in
      let naive = Learn.learn_reference ~config:cfg data in
      fast.Learn.trajectory = naive.Learn.trajectory
      && fast.Learn.loglik = naive.Learn.loglik
      && fast.Learn.bytes = naive.Learn.bytes
      && fast.Learn.family_evaluations = naive.Learn.family_evaluations
      && fast.Learn.bn.Bn.dag = naive.Learn.bn.Bn.dag)

let test_score_mi () =
  (* MI(E;I) > MI(E;H): conditional independence E ⊥ H | I weakens the
     E-H link relative to the direct one. *)
  let mi_ei = Score.mutual_information eih_data [| 0 |] [| 1 |] in
  let mi_eh = Score.mutual_information eih_data [| 0 |] [| 2 |] in
  Alcotest.(check bool) "direct beats mediated" true (mi_ei > mi_eh)

let () =
  Alcotest.run "bn"
    [
      ( "dag",
        [
          Alcotest.test_case "basics" `Quick test_dag_basics;
          Alcotest.test_case "cycle rejection" `Quick test_dag_cycle_rejection;
          Alcotest.test_case "topological order" `Quick test_dag_topological;
        ] );
      ( "data",
        [
          Alcotest.test_case "of_table" `Quick test_data_of_table;
          Alcotest.test_case "validation" `Quick test_data_validation;
        ] );
      ( "table-cpd",
        [
          Alcotest.test_case "fit" `Quick test_table_cpd_fit;
          Alcotest.test_case "marginal" `Quick test_table_cpd_marginal;
          Alcotest.test_case "unseen config" `Quick test_table_cpd_unseen_config_uniform;
          Alcotest.test_case "to_factor" `Quick test_table_cpd_factor;
        ] );
      ( "tree-cpd",
        [
          Alcotest.test_case "fit matches conditional" `Quick test_tree_cpd_fit_matches_conditional;
          Alcotest.test_case "ignores useless parent" `Quick test_tree_cpd_ignores_useless_parent;
          Alcotest.test_case "param budget" `Quick test_tree_cpd_param_budget;
          Alcotest.test_case "threshold splits" `Quick test_tree_threshold_splits;
          Alcotest.test_case "tree reaches table loglik" `Quick test_tree_vs_table_loglik;
          Alcotest.test_case "explicit construction" `Quick test_tree_explicit_construction;
        ] );
      ( "bn-inference",
        [
          Alcotest.test_case "joint prob" `Quick test_bn_joint_prob;
          Alcotest.test_case "factored = joint (Fig 1)" `Quick test_bn_factored_equals_joint;
          Alcotest.test_case "prob of evidence" `Quick test_bn_prob_of_evidence;
          Alcotest.test_case "marginal and sample" `Quick test_bn_marginal_and_sample;
          Alcotest.test_case "structure improves loglik" `Quick test_bn_loglik_improves_with_structure;
          Alcotest.test_case "posterior" `Quick test_posterior;
          Alcotest.test_case "cached prob agrees" `Quick test_cached_prob_agrees;
          Alcotest.test_case "schedule" `Quick test_ve_schedule;
          Alcotest.test_case "normalize evidence" `Quick test_normalize_evidence;
          Alcotest.test_case "plan order" `Quick test_plan_order_covers_non_keep;
        ] );
      ( "refit",
        [
          Alcotest.test_case "same data noop" `Quick test_refit_same_data_is_noop;
          Alcotest.test_case "updates parameters" `Quick test_refit_updates_parameters;
          Alcotest.test_case "cpd dispatch" `Quick test_cpd_refit_dispatch;
        ] );
      ( "tree-properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_tree_dists_normalized; prop_tree_loglik_monotone_in_budget ] );
      ( "ve-properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_ve_matches_enumeration;
            prop_ve_total_is_one;
            prop_ve_bit_identical_to_reference;
            prop_posterior_bit_identical_to_reference;
          ] );
      ( "learning",
        [
          Alcotest.test_case "recovers strong edges" `Quick test_learn_recovers_strong_edges;
          Alcotest.test_case "respects budget" `Quick test_learn_respects_budget;
          Alcotest.test_case "loglik monotone in budget" `Quick test_learn_loglik_monotone_in_budget;
          Alcotest.test_case "all rules and kinds" `Quick test_learn_rules_and_kinds;
          Alcotest.test_case "budget too small" `Quick test_learn_budget_too_small;
          Alcotest.test_case "score cache incremental" `Quick test_score_cache_incremental;
          Alcotest.test_case "mutual information" `Quick test_score_mi;
        ] );
      ( "learn-incremental",
        List.map QCheck_alcotest.to_alcotest [ prop_incremental_learn_matches_reference ]
      );
    ]
