open Selest_db
open Selest_workload

let check_float = Alcotest.(check (float 1e-6))

let census = lazy (Selest_synth.Census.generate ~rows:5_000 ~seed:33 ())
let tb = lazy (Selest_synth.Tb.generate ~patients:300 ~contacts:2_000 ~strains:250 ~seed:33 ())

(* ---- Suite -------------------------------------------------------------- *)

let test_suite_enumeration () =
  let db = Lazy.force census in
  let suite = Suite.single_table ~name:"s" ~table:"person" ~attrs:[ "Sex"; "Earner" ] in
  Alcotest.(check (array int)) "cards" [| 2; 3 |] (Suite.cards db suite);
  Alcotest.(check int) "count" 6 (Suite.n_queries db suite);
  let q = Suite.query_of_cell suite [| 1; 2 |] in
  Alcotest.(check int) "selects" 2 (List.length q.Query.selects)

let test_suite_ground_truth_matches_exec () =
  let db = Lazy.force census in
  let suite = Suite.single_table ~name:"s" ~table:"person" ~attrs:[ "Sex"; "Earner" ] in
  let truth = Suite.ground_truth db suite in
  for sex = 0 to 1 do
    for e = 0 to 2 do
      let q = Suite.query_of_cell suite [| sex; e |] in
      check_float "cell matches query_size"
        (Exec.query_size db q)
        (Selest_prob.Contingency.get truth [| sex; e |])
    done
  done

let test_suite_join_skeleton () =
  let db = Lazy.force tb in
  let skeleton =
    Query.create
      ~tvars:[ ("c", "contact"); ("p", "patient") ]
      ~joins:[ Query.join ~child:"c" ~fk:"patient" ~parent:"p" ]
      ()
  in
  let suite =
    Suite.make ~name:"join" ~skeleton ~attrs:[ ("c", "Contype"); ("p", "USBorn") ]
  in
  Alcotest.(check int) "count" 10 (Suite.n_queries db suite);
  let truth = Suite.ground_truth db suite in
  check_float "total = join size" 2_000.0 (Selest_prob.Contingency.total truth);
  let q = Suite.query_of_cell suite [| 0; 1 |] in
  check_float "cell" (Exec.query_size db q) (Selest_prob.Contingency.get truth [| 0; 1 |])

(* ---- Runner -------------------------------------------------------------- *)

(* A perfect estimator: exact sizes via the executor. *)
let oracle db = {
  Selest_est.Estimator.name = "oracle";
  bytes = 0;
  prepare = ignore;
  estimate = (fun q -> Exec.query_size db q);
}

(* A constant estimator. *)
let constant name value = {
  Selest_est.Estimator.name;
  bytes = 0;
  prepare = ignore;
  estimate = (fun _ -> value);
}

let test_runner_oracle_zero_error () =
  let db = Lazy.force census in
  let suite = Suite.single_table ~name:"s" ~table:"person" ~attrs:[ "Sex"; "Earner" ] in
  let o = Runner.run db suite (oracle db) () in
  check_float "avg" 0.0 o.Runner.avg_error;
  check_float "median" 0.0 o.Runner.median_error;
  Alcotest.(check int) "queries" 6 o.Runner.n_queries;
  Alcotest.(check int) "none skipped" 0 o.Runner.n_unsupported

let test_runner_constant_error () =
  let db = Lazy.force census in
  let suite = Suite.single_table ~name:"s" ~table:"person" ~attrs:[ "Sex" ] in
  (* truth values t0, t1 sum to 5000; estimator says 0 -> error = 100% each *)
  let o = Runner.run db suite (constant "zero" 0.0) () in
  check_float "all 100%" 100.0 o.Runner.avg_error

let test_runner_subsampling_deterministic () =
  let db = Lazy.force census in
  let suite = Suite.single_table ~name:"s" ~table:"person" ~attrs:[ "Age"; "Income" ] in
  let a = Runner.run db suite (oracle db) ~max_queries:100 ~seed:7 () in
  let b = Runner.run db suite (oracle db) ~max_queries:100 ~seed:7 () in
  Alcotest.(check int) "100 queries" 100 a.Runner.n_queries;
  check_float "deterministic" a.Runner.avg_error b.Runner.avg_error

let test_runner_counts_unsupported () =
  let db = Lazy.force census in
  let suite = Suite.single_table ~name:"s" ~table:"person" ~attrs:[ "Sex" ] in
  let refuser = {
    Selest_est.Estimator.name = "refuser";
    bytes = 0;
    prepare = ignore;
    estimate = (fun _ -> raise (Selest_est.Estimator.Unsupported "no"));
  } in
  let o = Runner.run db suite refuser () in
  Alcotest.(check int) "all skipped" 2 o.Runner.n_unsupported;
  Alcotest.(check int) "none answered" 0 o.Runner.n_queries

let test_per_query_pairs () =
  let db = Lazy.force census in
  let suite = Suite.single_table ~name:"s" ~table:"person" ~attrs:[ "Sex" ] in
  let pairs = Runner.per_query db suite (oracle db) () in
  Alcotest.(check int) "two cells" 2 (List.length pairs);
  List.iter (fun (t, e) -> check_float "oracle pairs equal" t e) pairs;
  check_float "totals" 5_000.0 (List.fold_left (fun acc (t, _) -> acc +. t) 0.0 pairs)

(* ---- Report --------------------------------------------------------------- *)

let test_report_tables () =
  let db = Lazy.force census in
  let suite = Suite.single_table ~name:"s" ~table:"person" ~attrs:[ "Sex" ] in
  let o = Runner.run db suite (oracle db) () in
  let s = Report.outcomes_table [ o ] in
  Alcotest.(check bool) "mentions estimator" true
    (String.length s > 0 && String.index_opt s 'o' <> None);
  let sweep = Report.sweep_table ~xlabel:"budget" ~rows:[ ("1KB", [ o ]); ("2KB", [ o ]) ] in
  Alcotest.(check bool) "sweep rendered" true (String.length sweep > 0)

let test_report_scatter_summary () =
  let a = [ (10.0, 10.0); (20.0, 40.0) ] in
  let b = [ (10.0, 20.0); (20.0, 20.0) ] in
  let s = Report.scatter_summary a b in
  Alcotest.(check bool) "summary text" true (String.length s > 0);
  Alcotest.(check bool) "mismatched lengths rejected" true
    (try
       ignore (Report.scatter_summary a [ (1.0, 1.0) ]);
       false
     with Invalid_argument _ -> true)

(* ---- End-to-end: PRM wins on a correlated suite ----------------------------- *)

let test_end_to_end_prm_beats_avi () =
  let db = Lazy.force census in
  let attrs = [ "Age"; "Income" ] in
  let suite = Suite.single_table ~name:"2attr" ~table:"person" ~attrs in
  let avi = Selest_est.Avi.build ~attrs:(List.map (fun a -> ("person", a)) attrs) db in
  let bn = Selest_est.Bn_est.build ~table:"person" ~attrs ~budget_bytes:1_000 db in
  let o_avi = Runner.run db suite avi () in
  let o_bn = Runner.run db suite bn () in
  Alcotest.(check bool)
    (Printf.sprintf "PRM %.1f%% < AVI %.1f%%" o_bn.Runner.avg_error o_avi.Runner.avg_error)
    true
    (o_bn.Runner.avg_error < o_avi.Runner.avg_error)

let test_end_to_end_join_suite () =
  let db = Lazy.force tb in
  let skeleton =
    Query.create
      ~tvars:[ ("c", "contact"); ("p", "patient") ]
      ~joins:[ Query.join ~child:"c" ~fk:"patient" ~parent:"p" ]
      ()
  in
  let suite = Suite.make ~name:"tbjoin" ~skeleton ~attrs:[ ("c", "Contype"); ("p", "Age") ] in
  let prm = Selest_est.Prm_est.build ~budget_bytes:3_000 db in
  let uj = Selest_est.Prm_est.build_bn_uj ~budget_bytes:3_000 db in
  let o_prm = Runner.run db suite prm () in
  let o_uj = Runner.run db suite uj () in
  Alcotest.(check bool)
    (Printf.sprintf "PRM %.1f%% <= BN+UJ %.1f%%" o_prm.Runner.avg_error o_uj.Runner.avg_error)
    true
    (o_prm.Runner.avg_error <= o_uj.Runner.avg_error +. 1.0)


(* ---- Planner ---------------------------------------------------------------- *)

let tb_plan_query db =
  ignore db;
  Query.create
    ~tvars:[ ("c", "contact"); ("p", "patient"); ("s", "strain") ]
    ~joins:
      [
        Query.join ~child:"c" ~fk:"patient" ~parent:"p";
        Query.join ~child:"p" ~fk:"strain" ~parent:"s";
      ]
    ~selects:[ Query.eq "p" "HIV" 1 ]
    ()

let test_planner_enumerates_connected_orders () =
  let db = Lazy.force tb in
  let q = tb_plan_query db in
  let all = Planner.plans q in
  (* chain of 3: 4 connected left-deep orders *)
  Alcotest.(check int) "4 plans" 4 (List.length all);
  List.iter
    (fun p -> Alcotest.(check int) "full length" 3 (List.length p))
    all;
  (* c and s are never adjacent in the join graph, so no plan starts c,s *)
  List.iter
    (fun p ->
      match p with
      | a :: b :: _ ->
        Alcotest.(check bool) "prefix connected" false
          ((a = "c" && b = "s") || (a = "s" && b = "c"))
      | _ -> ())
    all

let test_planner_prefix_query () =
  let db = Lazy.force tb in
  let q = tb_plan_query db in
  let sub = Planner.prefix_query q [ "c"; "p" ] in
  Alcotest.(check int) "tvars" 2 (List.length sub.Query.tvars);
  Alcotest.(check int) "joins" 1 (List.length sub.Query.joins);
  Alcotest.(check int) "selects kept" 1 (List.length sub.Query.selects);
  (* prefix query evaluates *)
  Alcotest.(check bool) "evaluates" true (Exec.query_size db sub >= 0.0)

let test_planner_cost_with_oracle () =
  let db = Lazy.force tb in
  let q = tb_plan_query db in
  let truth qq = Exec.query_size db qq in
  let plan = [ "c"; "p"; "s" ] in
  let expected =
    truth (Planner.prefix_query q [ "c"; "p" ]) +. truth q
  in
  Alcotest.(check (float 1e-6)) "cost = prefix + final" expected
    (Planner.plan_cost truth q plan);
  let best, cost = Planner.best_plan truth q in
  Alcotest.(check int) "best is a full plan" 3 (List.length best);
  List.iter
    (fun p ->
      Alcotest.(check bool) "best is minimal" true (Planner.plan_cost truth q p >= cost -. 1e-9))
    (Planner.plans q)

let test_rank_correlation () =
  Alcotest.(check (float 1e-9)) "identical" 1.0
    (Planner.rank_correlation [ 1.0; 2.0; 3.0 ] [ 10.0; 20.0; 30.0 ]);
  Alcotest.(check (float 1e-9)) "reversed" (-1.0)
    (Planner.rank_correlation [ 1.0; 2.0; 3.0 ] [ 3.0; 2.0; 1.0 ]);
  let r = Planner.rank_correlation [ 1.0; 2.0; 3.0; 4.0 ] [ 1.0; 3.0; 2.0; 4.0 ] in
  Alcotest.(check bool) "partial between" true (r > 0.0 && r < 1.0)

let () =
  Alcotest.run "workload"
    [
      ( "suite",
        [
          Alcotest.test_case "enumeration" `Quick test_suite_enumeration;
          Alcotest.test_case "ground truth" `Quick test_suite_ground_truth_matches_exec;
          Alcotest.test_case "join skeleton" `Quick test_suite_join_skeleton;
        ] );
      ( "runner",
        [
          Alcotest.test_case "oracle zero error" `Quick test_runner_oracle_zero_error;
          Alcotest.test_case "constant estimator" `Quick test_runner_constant_error;
          Alcotest.test_case "deterministic subsampling" `Quick test_runner_subsampling_deterministic;
          Alcotest.test_case "unsupported counting" `Quick test_runner_counts_unsupported;
          Alcotest.test_case "per-query pairs" `Quick test_per_query_pairs;
        ] );
      ( "report",
        [
          Alcotest.test_case "tables" `Quick test_report_tables;
          Alcotest.test_case "scatter summary" `Quick test_report_scatter_summary;
        ] );
      ( "planner",
        [
          Alcotest.test_case "connected orders" `Quick test_planner_enumerates_connected_orders;
          Alcotest.test_case "prefix query" `Quick test_planner_prefix_query;
          Alcotest.test_case "cost and best plan" `Quick test_planner_cost_with_oracle;
          Alcotest.test_case "rank correlation" `Quick test_rank_correlation;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "PRM beats AVI" `Quick test_end_to_end_prm_beats_avi;
          Alcotest.test_case "join suite" `Quick test_end_to_end_join_suite;
        ] );
    ]
