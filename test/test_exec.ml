(* Differential suite for the bytecode executor (Selest_plan.Exec): random
   factor bags × random evidence (equality, and the range/set mix that
   lowers to mask slots) against the naive Ve.Reference oracle, bit-exact.
   The generators deliberately cover the executor's edge set —
   contradictory duplicates, empty evidence, single-variable models,
   static (join-indicator style) slots, full-domain and empty masks — and
   the tests also pin the `No_match routing contract and arena/mask-reuse
   hygiene (a contradiction must not corrupt the state a later request
   reads). *)

open Selest_db
open Selest_bn
open Selest_plan
module Factor = Selest_prob.Factor

let bits = Int64.bits_of_float

(* ---- generators ------------------------------------------------------------------- *)

(* A random factor bag: n variables with cardinalities fixed per variable
   (Exec.compile rejects cardinality disagreements), a handful of factors
   over random scopes, plus a unary factor for any variable no scope
   covered (evidence on a variable outside every factor is an error by
   contract, not a case under test).  Entries are strictly positive so
   products stay meaningful; nothing requires normalization. *)
let gen_model =
  let open QCheck2.Gen in
  let* n_vars = int_range 1 4 in
  let* cards = array_size (return n_vars) (int_range 2 3) in
  let gen_scope =
    let* mask = list_size (return n_vars) bool in
    let vars =
      List.filteri (fun i _ -> List.nth mask i) (List.init n_vars Fun.id)
    in
    return (if vars = [] then [ 0 ] else vars)
  in
  let factor_of vars =
    let vs = Array.of_list vars in
    let cs = Array.map (fun v -> cards.(v)) vs in
    let size = Array.fold_left ( * ) 1 cs in
    let* data = array_size (return size) (float_range 0.05 1.0) in
    return (Factor.create ~vars:vs ~cards:cs data)
  in
  let* scopes = list_size (int_range 1 4) gen_scope in
  let covered = List.sort_uniq compare (List.concat scopes) in
  let uncovered =
    List.filter (fun v -> not (List.mem v covered)) (List.init n_vars Fun.id)
  in
  let* factors = flatten_l (List.map factor_of (scopes @ List.map (fun v -> [ v ]) uncovered)) in
  return (n_vars, cards, factors)

(* Evidence: 0–5 equality entries over the model's variables, duplicates
   allowed — consistent duplicates must collapse, conflicting ones must
   answer `Contradiction. *)
let gen_evidence n_vars cards =
  let open QCheck2.Gen in
  list_size (int_range 0 5)
    (let* v = int_range 0 (n_vars - 1) in
     let* x = int_range 0 (cards.(v) - 1) in
     return (v, Query.Eq x))

(* Mixed-predicate evidence: equality, ranges (possibly empty or
   full-domain) and sets, duplicates allowed so conjunctions of
   different predicate kinds on one variable are exercised. *)
let gen_pred card =
  let open QCheck2.Gen in
  oneof
    [
      (let* x = int_range 0 (card - 1) in
       return (Query.Eq x));
      (let* lo = int_range 0 (card - 1) in
       let* hi = int_range 0 (card - 1) in
       return (Query.Range (min lo hi, max lo hi)));
      (let* xs = list_size (int_range 1 card) (int_range 0 (card - 1)) in
       return (Query.In_set xs));
    ]

let gen_masked_evidence n_vars cards =
  let open QCheck2.Gen in
  list_size (int_range 0 5)
    (let* v = int_range 0 (n_vars - 1) in
     let* p = gen_pred cards.(v) in
     return (v, p))

let gen_case =
  let open QCheck2.Gen in
  let* n_vars, cards, factors = gen_model in
  let* binding = gen_evidence n_vars cards in
  return (factors, binding)

let gen_masked_case =
  let open QCheck2.Gen in
  let* n_vars, cards, factors = gen_model in
  let* binding = gen_masked_evidence n_vars cards in
  return (factors, binding)

let pred_str = function
  | Query.Eq x -> Printf.sprintf "=%d" x
  | Query.Range (lo, hi) -> Printf.sprintf "=%d..%d" lo hi
  | Query.In_set xs ->
    Printf.sprintf "={%s}" (String.concat "," (List.map string_of_int xs))

let print_case (factors, binding) =
  Printf.sprintf "%d factors; evidence [%s]" (List.length factors)
    (String.concat "; "
       (List.map (fun (v, p) -> Printf.sprintf "%d%s" v (pred_str p)) binding))

(* First-occurrence dedup: the consistent "shape" binding a program is
   compiled from, even when the binding under test is contradictory. *)
let dedup binding =
  List.rev
    (List.fold_left
       (fun acc (v, p) -> if List.mem_assoc v acc then acc else (v, p) :: acc)
       [] binding)

(* Compile a program for [shape]'s evidence shape (with [static] split
   out), exactly as Plan.program_for does at the PRM level: merged
   allowed-value masks classify each node as a value slot (one allowed
   value) or a mask slot (two or more). *)
let program_of factors shape static =
  match Ve.prepare factors shape with
  | None -> Alcotest.fail "exec test: shape binding cannot be contradictory"
  | Some prep ->
    let order = Ve.plan_order ~keep:[||] (Ve.prepared_factors prep) in
    let static_vars = List.map fst static in
    let eq = ref [] and masked = ref [] in
    (match Ve.merged_masks factors shape with
    | None -> Alcotest.fail "exec test: shape binding cannot be contradictory"
    | Some merged ->
      List.iter
        (fun (v, m) ->
          if not (List.mem v static_vars) then
            let n = Array.fold_left (fun n ok -> if ok then n + 1 else n) 0 m in
            if n = 1 then eq := v :: !eq else masked := v :: !masked)
        merged);
    let slots = List.sort compare !eq and masked = List.sort compare !masked in
    Exec.compile ~factors ~slots ~masked ~static ~order

(* ---- oracle properties ------------------------------------------------------------ *)

(* Load-and-run against Reference: `Ok answers must be bit-identical,
   `Contradiction must coincide with an exactly-zero oracle. *)
let prop_exec_matches_reference =
  QCheck2.Test.make ~name:"bytecode ≡ Ve.Reference (random models × evidence)"
    ~count:500 ~print:print_case gen_case (fun (factors, binding) ->
      let oracle = Ve.Reference.prob_of_evidence factors binding in
      let prog = program_of factors (dedup binding) [] in
      let st = Exec.state_for prog in
      match Exec.load prog st binding with
      | `Ok ->
        Exec.run st;
        bits (Exec.result st) = bits oracle
      | `Contradiction -> bits oracle = bits 0.0
      | `No_match -> false)

(* Static slots (the join-indicator split): baking a sub-binding into the
   program at compile time must answer exactly like passing the whole
   binding through request slots. *)
let prop_static_slots =
  QCheck2.Test.make ~name:"static slots ≡ request slots" ~count:300
    ~print:print_case gen_case (fun (factors, binding) ->
      let shape = dedup binding in
      match shape with
      | [] -> true (* nothing to split *)
      | (sv, Query.Eq sx) :: rest ->
        let oracle = Ve.Reference.prob_of_evidence factors shape in
        let prog = program_of factors shape [ (sv, sx) ] in
        let st = Exec.state_for prog in
        (match Exec.load prog st rest with
        | `Ok ->
          Exec.run st;
          bits (Exec.result st) = bits oracle
        | `Contradiction | `No_match -> false)
      | _ -> true)

(* Routing contract: a binding whose variable set is not exactly the
   program's slot set must answer `No_match (never a wrong number), and
   non-equality predicates never reach a program in the first place. *)
let prop_no_match_on_missing_slot =
  QCheck2.Test.make ~name:"missing slot ⇒ `No_match" ~count:200
    ~print:print_case gen_case (fun (factors, binding) ->
      match dedup binding with
      | [] -> true
      | _ :: rest as shape ->
        let prog = program_of factors shape [] in
        let st = Exec.state_for prog in
        (match Exec.load prog st rest with
        | `No_match -> true
        | `Ok | `Contradiction -> false))

(* Range/set predicates lower to mask slots; the Gather-time zeroing
   must answer bit-identically to the reference engine's
   observe/restrict pipeline for every predicate mix. *)
let prop_masked_matches_reference =
  QCheck2.Test.make
    ~name:"bytecode mask slots ≡ Ve.Reference (range/set evidence)" ~count:500
    ~print:print_case gen_masked_case (fun (factors, binding) ->
      let oracle = Ve.Reference.prob_of_evidence factors binding in
      match Ve.merged_masks factors binding with
      | None ->
        (* nothing to compile — Plan.execute answers 0 without a program *)
        bits oracle = bits 0.0
      | Some _ -> (
        let prog = program_of factors binding [] in
        let st = Exec.state_for prog in
        match Exec.load prog st binding with
        | `Ok ->
          Exec.run st;
          bits (Exec.result st) = bits oracle
        | `Contradiction -> bits oracle = bits 0.0
        | `No_match -> false))

(* Mask-state hygiene: one program serving two bindings of the same
   shape but different mask values must answer each bit-identically —
   the per-slot masks are fully rewritten between loads. *)
let prop_mask_reload_no_residue =
  QCheck2.Test.make ~name:"mask reload ≡ fresh state" ~count:300
    ~print:(fun (c, _) -> print_case c)
    QCheck2.Gen.(
      let* n_vars, cards, factors = gen_model in
      let* b1 = gen_masked_evidence n_vars cards in
      let* b2 = gen_masked_evidence n_vars cards in
      return ((factors, b1), b2))
    (fun ((factors, b1), b2) ->
      match Ve.merged_masks factors b1 with
      | None -> true
      | Some _ -> (
        let prog = program_of factors b1 [] in
        let st = Exec.state_for prog in
        let run_one b =
          match Exec.load prog st b with
          | `Ok ->
            Exec.run st;
            Some (bits (Exec.result st))
          | `Contradiction -> Some (bits 0.0)
          | `No_match -> None
        in
        ignore (run_one b2);
        (* b1 compiled this program, so it can never be `No_match *)
        match run_one b1 with
        | Some got -> got = bits (Ve.Reference.prob_of_evidence factors b1)
        | None -> false))

(* Arena hygiene: loading a contradictory binding (detected before any
   buffer write) and then a valid one must answer exactly what a fresh
   state answers — the contradiction leaves no residue. *)
let prop_contradiction_leaves_no_residue =
  QCheck2.Test.make ~name:"contradiction then valid request ≡ fresh state"
    ~count:300 ~print:print_case gen_case (fun (factors, binding) ->
      match dedup binding with
      | [] -> true
      | (v, Query.Eq x) :: _ as shape ->
        let prog = program_of factors shape [] in
        let st = Exec.state_for prog in
        let contradictory = (v, Query.Eq x) :: (v, Query.Eq (x + 1)) :: shape in
        (* (x+1) may exceed the card: out-of-range raises in Ve too, so
           only keep the case when it is a genuine in-range conflict *)
        (match Exec.load prog st contradictory with
        | `Contradiction | `No_match -> ()
        | `Ok -> Exec.run st
        | exception Invalid_argument _ -> ());
        (match Exec.load prog st shape with
        | `Ok ->
          Exec.run st;
          bits (Exec.result st)
          = bits (Ve.Reference.prob_of_evidence factors shape)
        | `Contradiction | `No_match -> false)
      | _ -> true)

(* ---- deterministic edges ----------------------------------------------------------- *)

let single_var_factors = [ Factor.create ~vars:[| 0 |] ~cards:[| 3 |] [| 0.2; 0.3; 0.5 |] ]

let test_single_variable_plan () =
  let prog = program_of single_var_factors [ (0, Query.Eq 2) ] [] in
  let st = Exec.state_for prog in
  (match Exec.load prog st [ (0, Query.Eq 2) ] with
  | `Ok -> Exec.run st
  | `Contradiction | `No_match -> Alcotest.fail "single-variable load");
  Alcotest.(check int64) "P(X=2) bit-exact"
    (bits (Ve.Reference.prob_of_evidence single_var_factors [ (0, Query.Eq 2) ]))
    (bits (Exec.result st))

let test_empty_evidence_is_total_mass () =
  let factors =
    [
      Factor.create ~vars:[| 0; 1 |] ~cards:[| 2; 2 |] [| 0.1; 0.2; 0.3; 0.4 |];
      Factor.create ~vars:[| 1 |] ~cards:[| 2 |] [| 0.6; 0.4 |];
    ]
  in
  let prog = program_of factors [] [] in
  let st = Exec.state_for prog in
  (match Exec.load prog st [] with
  | `Ok -> Exec.run st
  | `Contradiction | `No_match -> Alcotest.fail "empty-evidence load");
  Alcotest.(check int64) "total mass bit-exact"
    (bits (Ve.Reference.prob_of_evidence factors []))
    (bits (Exec.result st));
  (* no evidence slots ⇒ any named variable is off-program *)
  match Exec.load prog st [ (0, Query.Eq 1) ] with
  | `No_match -> ()
  | `Ok | `Contradiction -> Alcotest.fail "extra slot must be `No_match"

let test_non_eq_predicate_is_no_match () =
  let prog = program_of single_var_factors [ (0, Query.Eq 0) ] [] in
  let st = Exec.state_for prog in
  match Exec.load prog st [ (0, Query.Range (0, 1)) ] with
  | `No_match -> ()
  | `Ok | `Contradiction -> Alcotest.fail "range predicate must be `No_match"

let test_out_of_range_matches_ve_error () =
  let prog = program_of single_var_factors [ (0, Query.Eq 0) ] [] in
  let st = Exec.state_for prog in
  Alcotest.check_raises "same message as Ve"
    (Invalid_argument "Ve: evidence value out of range") (fun () ->
      ignore (Exec.load prog st [ (0, Query.Eq 7) ]))

(* Warm-path allocation: the zero-allocation contract is gated hard in the
   bench (BENCH_exec.json), but a cheap smoke assertion here catches a
   boxing regression at test time without bechamel noise. *)
let test_warm_load_run_allocates_nothing () =
  let prog = program_of single_var_factors [ (0, Query.Eq 1) ] [] in
  let st = Exec.state_for prog in
  let b = [ (0, Query.Eq 1) ] in
  (match Exec.load prog st b with
  | `Ok -> Exec.run st
  | `Contradiction | `No_match -> Alcotest.fail "warm-up load");
  let w0 = Gc.minor_words () in
  for _ = 1 to 1_000 do
    ignore (Exec.load prog st b);
    Exec.run st
  done;
  let delta = Gc.minor_words () -. w0 in
  Alcotest.(check (float 0.0)) "minor words" 0.0 delta

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "exec"
    [
      ( "oracle",
        qsuite
          [
            prop_exec_matches_reference;
            prop_static_slots;
            prop_no_match_on_missing_slot;
            prop_masked_matches_reference;
            prop_mask_reload_no_residue;
            prop_contradiction_leaves_no_residue;
          ] );
      ( "edges",
        [
          Alcotest.test_case "single-variable plan" `Quick test_single_variable_plan;
          Alcotest.test_case "empty evidence" `Quick test_empty_evidence_is_total_mass;
          Alcotest.test_case "non-Eq predicate" `Quick test_non_eq_predicate_is_no_match;
          Alcotest.test_case "out-of-range value" `Quick test_out_of_range_matches_ve_error;
          Alcotest.test_case "warm path allocates nothing" `Quick
            test_warm_load_run_allocates_nothing;
        ] );
    ]
