open Selest_prob
open Selest_util

let check_float = Alcotest.(check (float 1e-9))

(* ---- Dist --------------------------------------------------------------- *)

let test_dist_uniform () =
  let d = Dist.uniform 4 in
  check_float "prob" 0.25 (Dist.prob d 2);
  Alcotest.(check int) "arity" 4 (Dist.arity d);
  Alcotest.check_raises "empty" (Invalid_argument "Dist.uniform: domain must be non-empty")
    (fun () -> ignore (Dist.uniform 0))

let test_dist_of_weights () =
  let d = Dist.of_weights [| 1.0; 3.0 |] in
  check_float "normalized" 0.75 (Dist.prob d 1);
  let z = Dist.of_weights [| 0.0; 0.0 |] in
  check_float "zero goes uniform" 0.5 (Dist.prob z 0)

let test_dist_of_counts_smoothing () =
  let d = Dist.of_counts ~smoothing:1.0 [| 0.0; 2.0 |] in
  check_float "laplace" 0.25 (Dist.prob d 0)

let test_dist_point () =
  let d = Dist.point 3 1 in
  check_float "mass" 1.0 (Dist.prob d 1);
  check_float "rest" 0.0 (Dist.prob d 0)

let test_dist_entropy () =
  check_float "uniform 2" 1.0 (Dist.entropy (Dist.uniform 2));
  check_float "point" 0.0 (Dist.entropy (Dist.point 5 2));
  check_float "uniform 8" 3.0 (Dist.entropy (Dist.uniform 8))

let test_dist_kl () =
  let p = Dist.of_weights [| 1.0; 1.0 |] in
  check_float "self" 0.0 (Dist.kl p p);
  let q = Dist.point 2 0 in
  Alcotest.(check bool) "absolute continuity" true (Dist.kl p q = Float.infinity);
  Alcotest.(check bool) "kl nonneg" true (Dist.kl q p >= 0.0)

let test_dist_tv () =
  let p = Dist.point 2 0 and q = Dist.point 2 1 in
  check_float "max distance" 1.0 (Dist.total_variation p q);
  check_float "self" 0.0 (Dist.total_variation p p)

(* ---- Factor ------------------------------------------------------------- *)

let f_ab =
  (* P-like table over vars 1 (card 2) and 3 (card 3), row-major with var 3
     fastest. *)
  Factor.create ~vars:[| 1; 3 |] ~cards:[| 2; 3 |]
    [| 0.1; 0.2; 0.3; 0.05; 0.15; 0.2 |]

let test_factor_create_validation () =
  Alcotest.check_raises "unsorted" (Invalid_argument "Factor: vars must be strictly increasing")
    (fun () -> ignore (Factor.create ~vars:[| 3; 1 |] ~cards:[| 2; 2 |] (Array.make 4 0.0)));
  Alcotest.check_raises "size" (Invalid_argument "Factor.create: data size mismatch")
    (fun () -> ignore (Factor.create ~vars:[| 0 |] ~cards:[| 3 |] (Array.make 4 0.0)))

let test_factor_get () =
  check_float "cell (0,2)" 0.3 (Factor.get f_ab [| 0; 2 |]);
  check_float "cell (1,0)" 0.05 (Factor.get f_ab [| 1; 0 |])

let test_factor_of_fun () =
  let f = Factor.of_fun ~vars:[| 0; 2 |] ~cards:[| 2; 2 |] (fun a -> float_of_int ((10 * a.(0)) + a.(1))) in
  check_float "tabulated" 11.0 (Factor.get f [| 1; 1 |]);
  check_float "tabulated2" 1.0 (Factor.get f [| 0; 1 |])

let test_factor_sum_out () =
  let m = Factor.sum_out f_ab 3 in
  Alcotest.(check (array int)) "scope" [| 1 |] (Factor.vars m);
  check_float "sum row 0" 0.6 (Factor.get m [| 0 |]);
  check_float "sum row 1" 0.4 (Factor.get m [| 1 |]);
  let noop = Factor.sum_out f_ab 99 in
  Alcotest.(check bool) "missing var is noop" true (Factor.equal noop f_ab)

let test_factor_restrict () =
  let r = Factor.restrict f_ab 1 1 in
  Alcotest.(check (array int)) "scope" [| 3 |] (Factor.vars r);
  check_float "slice" 0.15 (Factor.get r [| 1 |])

let test_factor_observe () =
  let o = Factor.observe f_ab 3 (fun v -> v >= 1) in
  check_float "zeroed" 0.0 (Factor.get o [| 0; 0 |]);
  check_float "kept" 0.2 (Factor.get o [| 0; 1 |]);
  check_float "total" (Factor.total f_ab -. 0.1 -. 0.05) (Factor.total o)

let test_factor_product_known () =
  let a = Factor.create ~vars:[| 0 |] ~cards:[| 2 |] [| 2.0; 3.0 |] in
  let b = Factor.create ~vars:[| 1 |] ~cards:[| 2 |] [| 5.0; 7.0 |] in
  let p = Factor.product a b in
  check_float "outer" 21.0 (Factor.get p [| 1; 1 |]);
  check_float "outer2" 10.0 (Factor.get p [| 0; 0 |]);
  (* overlapping scopes *)
  let c = Factor.create ~vars:[| 0; 1 |] ~cards:[| 2; 2 |] [| 1.0; 2.0; 3.0; 4.0 |] in
  let q = Factor.product c b in
  check_float "pointwise" (4.0 *. 7.0) (Factor.get q [| 1; 1 |]);
  check_float "pointwise2" (2.0 *. 7.0) (Factor.get q [| 0; 1 |])

let test_factor_product_card_mismatch () =
  let a = Factor.create ~vars:[| 0 |] ~cards:[| 2 |] [| 1.0; 1.0 |] in
  let b = Factor.create ~vars:[| 0 |] ~cards:[| 3 |] [| 1.0; 1.0; 1.0 |] in
  Alcotest.check_raises "mismatch" (Invalid_argument "Factor.product: cardinality disagreement")
    (fun () -> ignore (Factor.product a b))

let test_factor_marginal_normalize () =
  let m = Factor.marginal f_ab [| 3 |] in
  Alcotest.(check (array int)) "kept" [| 3 |] (Factor.vars m);
  check_float "marginal total" (Factor.total f_ab) (Factor.total m);
  let n = Factor.normalize f_ab in
  check_float "normalized total" 1.0 (Factor.total n)

(* qcheck: random small factors over a universe of 4 variables. *)
let universe_cards = [| 2; 3; 2; 4 |]

let gen_factor =
  let open QCheck2.Gen in
  let* mask = int_range 1 15 in
  let vars = List.filter (fun v -> mask land (1 lsl v) <> 0) [ 0; 1; 2; 3 ] in
  let vars = Array.of_list vars in
  let cards = Array.map (fun v -> universe_cards.(v)) vars in
  let size = Array.fold_left ( * ) 1 cards in
  let* data = array_size (pure size) (float_range 0.0 10.0) in
  pure (Factor.create ~vars ~cards data)

(* Brute-force evaluation over the full universe. *)
let full_eval f assignment =
  let vars = Factor.vars f in
  let local = Array.map (fun v -> assignment.(v)) vars in
  Factor.get f local

let all_assignments () =
  let out = ref [] in
  for a = 0 to universe_cards.(0) - 1 do
    for b = 0 to universe_cards.(1) - 1 do
      for c = 0 to universe_cards.(2) - 1 do
        for d = 0 to universe_cards.(3) - 1 do
          out := [| a; b; c; d |] :: !out
        done
      done
    done
  done;
  !out

let prop_product_pointwise =
  QCheck2.Test.make ~name:"product is pointwise multiplication" ~count:100
    QCheck2.Gen.(pair gen_factor gen_factor)
    (fun (f, g) ->
      let p = Factor.product f g in
      List.for_all
        (fun asg ->
          Arrayx.float_equal ~eps:1e-6 (full_eval p asg) (full_eval f asg *. full_eval g asg))
        (all_assignments ()))

let prop_product_commutative =
  QCheck2.Test.make ~name:"product commutes" ~count:100
    QCheck2.Gen.(pair gen_factor gen_factor)
    (fun (f, g) -> Factor.equal ~eps:1e-6 (Factor.product f g) (Factor.product g f))

let prop_sum_out_order_independent =
  QCheck2.Test.make ~name:"sum_out order independent" ~count:100 gen_factor (fun f ->
      let vars = Factor.vars f in
      if Array.length vars < 2 then true
      else begin
        let a = vars.(0) and b = vars.(1) in
        let x = Factor.sum_out (Factor.sum_out f a) b in
        let y = Factor.sum_out (Factor.sum_out f b) a in
        Factor.equal ~eps:1e-6 x y
      end)

let prop_sum_out_preserves_total =
  QCheck2.Test.make ~name:"sum_out preserves total" ~count:100 gen_factor (fun f ->
      let vars = Factor.vars f in
      Array.for_all
        (fun v -> Arrayx.float_equal ~eps:1e-6 (Factor.total f) (Factor.total (Factor.sum_out f v)))
        vars)

let prop_restrict_sums_to_sum_out =
  QCheck2.Test.make ~name:"restricting over all values = sum_out" ~count:100 gen_factor
    (fun f ->
      let vars = Factor.vars f in
      if Array.length vars = 0 then true
      else begin
        let v = vars.(0) in
        let card = (Factor.cards f).(0) in
        let slices = List.init card (fun x -> Factor.restrict f v x) in
        let summed =
          List.fold_left
            (fun acc s ->
              match acc with
              | None -> Some s
              | Some t ->
                Some
                  (Factor.create ~vars:(Factor.vars t) ~cards:(Factor.cards t)
                     (Array.map2 ( +. ) (Factor.data t) (Factor.data s))))
            None slices
        in
        Factor.equal ~eps:1e-6 (Option.get summed) (Factor.sum_out f v)
      end)

(* ---- Contingency -------------------------------------------------------- *)

let test_contingency_count () =
  let cols = [| [| 0; 1; 0; 1; 1 |]; [| 2; 0; 2; 1; 0 |] |] in
  let c = Contingency.count ~cards:[| 2; 3 |] cols in
  check_float "total" 5.0 (Contingency.total c);
  check_float "cell (0,2)" 2.0 (Contingency.get c [| 0; 2 |]);
  check_float "cell (1,0)" 2.0 (Contingency.get c [| 1; 0 |]);
  check_float "empty cell" 0.0 (Contingency.get c [| 0; 0 |]);
  Alcotest.(check int) "nonzero cells" 3 (Contingency.n_nonzero c)

let test_contingency_weighted_masked () =
  let cols = [| [| 0; 1; 1 |] |] in
  let w = Contingency.count_weighted ~cards:[| 2 |] ~weights:[| 0.5; 2.0; 2.5 |] cols in
  check_float "weighted" 4.5 (Contingency.get w [| 1 |]);
  let m = Contingency.count_masked ~cards:[| 2 |] ~mask:[| true; false; true |] cols in
  check_float "masked" 1.0 (Contingency.get m [| 1 |])

let test_contingency_marginal () =
  let cols = [| [| 0; 1; 0 |]; [| 1; 1; 0 |] |] in
  let c = Contingency.count ~cards:[| 2; 2 |] cols in
  let m = Contingency.marginal c [| 0 |] in
  check_float "marginal" 2.0 (Contingency.get m [| 0 |]);
  check_float "marginal total" 3.0 (Contingency.total m)

let test_contingency_to_factor () =
  let cols = [| [| 0; 1; 1 |]; [| 2; 2; 0 |] |] in
  let c = Contingency.count ~cards:[| 2; 3 |] cols in
  let f = Contingency.to_factor ~vars:[| 4; 7 |] c in
  check_float "factor cell" 1.0 (Factor.get f [| 1; 0 |]);
  check_float "factor cell2" 1.0 (Factor.get f [| 0; 2 |]);
  check_float "factor total" 3.0 (Factor.total f)

let test_contingency_iter () =
  let cols = [| [| 0; 0; 1 |] |] in
  let c = Contingency.count ~cards:[| 2 |] cols in
  let acc = ref 0.0 in
  Contingency.iter c (fun _ w -> acc := !acc +. w);
  check_float "iter covers all" 3.0 !acc

let test_contingency_sparse () =
  (* Joint domain too large for the dense representation. *)
  let card = 1 lsl 12 in
  let cols = [| [| 0; 1; 0 |]; [| 5; 6; 5 |]; [| 7; 8; 7 |] |] in
  let c = Contingency.count ~cards:[| card; card; card |] cols in
  check_float "sparse cell" 2.0 (Contingency.get c [| 0; 5; 7 |]);
  Alcotest.(check int) "sparse nonzero" 2 (Contingency.n_nonzero c)

(* ---- Info --------------------------------------------------------------- *)

let test_entropy_of_counts () =
  check_float "uniform" 1.0 (Info.entropy_of_counts [| 5.0; 5.0 |]);
  check_float "degenerate" 0.0 (Info.entropy_of_counts [| 10.0; 0.0 |])

let test_mi_independent () =
  (* X and Y independent by construction: all four combinations equal. *)
  let cols = [| [| 0; 0; 1; 1 |]; [| 0; 1; 0; 1 |] |] in
  let c = Contingency.count ~cards:[| 2; 2 |] cols in
  check_float "zero MI" 0.0 (Info.mutual_information c [| 0 |] [| 1 |])

let test_mi_determined () =
  (* Y = X: MI equals the entropy of X (1 bit). *)
  let cols = [| [| 0; 1; 0; 1 |]; [| 0; 1; 0; 1 |] |] in
  let c = Contingency.count ~cards:[| 2; 2 |] cols in
  check_float "full MI" 1.0 (Info.mutual_information c [| 0 |] [| 1 |])

let test_mi_symmetry () =
  let cols = [| [| 0; 1; 0; 1; 1 |]; [| 0; 1; 1; 1; 0 |] |] in
  let c = Contingency.count ~cards:[| 2; 2 |] cols in
  check_float "symmetric"
    (Info.mutual_information c [| 0 |] [| 1 |])
    (Info.mutual_information c [| 1 |] [| 0 |])

let test_conditional_entropy_and_loglik () =
  (* Child fully determined by parent: H(child | parent) = 0. *)
  let cols = [| [| 0; 0; 1; 1 |]; [| 1; 1; 0; 0 |] |] in
  let c = Contingency.count ~cards:[| 2; 2 |] cols in
  check_float "determined" 0.0 (Info.conditional_entropy c ~parent_dims:[| 0 |] ~child_dim:1);
  check_float "loglik" 0.0 (Info.loglik_of_counts c ~parent_dims:[| 0 |] ~child_dim:1);
  (* No parents: loglik = -N * H(child). *)
  check_float "marginal family" (-4.0)
    (Info.loglik_of_counts c ~parent_dims:[||] ~child_dim:1)

let prop_mi_nonnegative =
  QCheck2.Test.make ~name:"MI >= 0" ~count:200
    QCheck2.Gen.(array_size (pure 40) (pair (int_range 0 2) (int_range 0 3)))
    (fun rows ->
      let cols = [| Array.map fst rows; Array.map snd rows |] in
      let c = Contingency.count ~cards:[| 3; 4 |] cols in
      Info.mutual_information c [| 0 |] [| 1 |] >= -1e-9)

let prop_entropy_chain =
  QCheck2.Test.make ~name:"H(X,Y) = H(X) + H(Y|X)" ~count:200
    QCheck2.Gen.(array_size (pure 60) (pair (int_range 0 2) (int_range 0 3)))
    (fun rows ->
      let cols = [| Array.map fst rows; Array.map snd rows |] in
      let c = Contingency.count ~cards:[| 3; 4 |] cols in
      let n = Contingency.total c in
      (* H(X,Y) from the dedicated pieces *)
      let hx =
        Info.entropy_of_counts
          (Array.init 3 (fun v -> Contingency.get (Contingency.marginal c [| 0 |]) [| v |]))
      in
      let hyx = Info.conditional_entropy c ~parent_dims:[| 0 |] ~child_dim:1 in
      let joint_ll = Info.loglik_of_counts c ~parent_dims:[||] ~child_dim:0 in
      (* -joint_ll/n = H(X); use it as a cross-check of consistency *)
      Arrayx.float_equal ~eps:1e-6 hx (-.joint_ll /. n) && hyx >= -1e-9)


(* Dense and sparse contingency representations must agree. *)
let prop_contingency_repr_agreement =
  QCheck2.Test.make ~name:"dense and sparse contingencies agree" ~count:100
    QCheck2.Gen.(array_size (pure 50) (pair (int_range 0 3) (int_range 0 4)))
    (fun rows ->
      let cols = [| Array.map fst rows; Array.map snd rows |] in
      (* force sparse by inflating one cardinality beyond the dense limit *)
      let dense = Contingency.count ~cards:[| 4; 5 |] cols in
      let sparse = Contingency.count ~cards:[| 4; 1 lsl 22 |] cols in
      let ok = ref true in
      for a = 0 to 3 do
        for b = 0 to 4 do
          if Contingency.get dense [| a; b |] <> Contingency.get sparse [| a; b |] then
            ok := false
        done
      done;
      !ok && Contingency.total dense = Contingency.total sparse)

let prop_factor_normalize_total_one =
  QCheck2.Test.make ~name:"normalize yields total 1" ~count:100 gen_factor (fun f ->
      abs_float (Factor.total (Factor.normalize f) -. 1.0) < 1e-9)

let prop_observe_conjunction =
  QCheck2.Test.make ~name:"observe twice = observe intersection" ~count:100 gen_factor
    (fun f ->
      let vars = Factor.vars f in
      if Array.length vars = 0 then true
      else begin
        let v = vars.(0) in
        let p1 x = x mod 2 = 0 and p2 x = x < 2 in
        let a = Factor.observe (Factor.observe f v p1) v p2 in
        let b = Factor.observe f v (fun x -> p1 x && p2 x) in
        Factor.equal ~eps:1e-12 a b
      end)

let prop_marginal_consistency =
  QCheck2.Test.make ~name:"marginal over all vars is identity" ~count:100 gen_factor
    (fun f -> Factor.equal ~eps:1e-12 f (Factor.marginal f (Factor.vars f)))

(* ---- stride kernels vs the Reference oracle ----------------------------- *)

(* The optimized kernels promise bit-identical tables for the operations on
   the inference path (same multiplication association, same summation
   order), so these compare exactly, not within an epsilon. *)
let bit_equal f g =
  Factor.vars f = Factor.vars g
  && Factor.cards f = Factor.cards g
  && Factor.data f = Factor.data g

let prop_sum_out_matches_reference =
  QCheck2.Test.make ~name:"stride sum_out ≡ Reference.sum_out" ~count:200 gen_factor
    (fun f ->
      Array.for_all
        (fun v -> bit_equal (Factor.sum_out f v) (Factor.Reference.sum_out f v))
        (Factor.vars f))

let prop_restrict_matches_reference =
  QCheck2.Test.make ~name:"stride restrict ≡ Reference.restrict" ~count:200 gen_factor
    (fun f ->
      let vars = Factor.vars f and cards = Factor.cards f in
      Array.for_all
        (fun i ->
          let v = vars.(i) in
          List.for_all
            (fun x -> bit_equal (Factor.restrict f v x) (Factor.Reference.restrict f v x))
            (List.init cards.(i) Fun.id))
        (Array.init (Array.length vars) Fun.id))

let prop_observe_matches_reference =
  QCheck2.Test.make ~name:"masked observe ≡ Reference.observe" ~count:200 gen_factor
    (fun f ->
      let pred x = x mod 2 = 0 in
      Array.for_all
        (fun v -> bit_equal (Factor.observe f v pred) (Factor.Reference.observe f v pred))
        (Factor.vars f))

let prop_product_matches_reference =
  QCheck2.Test.make ~name:"stride product ≡ Reference.product" ~count:200
    QCheck2.Gen.(pair gen_factor gen_factor)
    (fun (f, g) -> bit_equal (Factor.product f g) (Factor.Reference.product f g))

let prop_product_all_is_fold =
  QCheck2.Test.make ~name:"product_all ≡ left fold of products" ~count:200
    QCheck2.Gen.(triple gen_factor gen_factor gen_factor)
    (fun (f, g, h) ->
      (* product_all promises the fold's association ((f·g)·h) exactly *)
      bit_equal
        (Factor.product_all [ f; g; h ])
        (List.fold_left Factor.Reference.product f [ g; h ]))

let prop_sum_out_product_fused =
  QCheck2.Test.make ~name:"sum_out_product ≡ product then sum_out" ~count:200
    QCheck2.Gen.(triple gen_factor gen_factor gen_factor)
    (fun (f, g, h) ->
      let fs = [ f; g; h ] in
      let naive v =
        Factor.Reference.sum_out
          (List.fold_left Factor.Reference.product f [ g; h ])
          v
      in
      Array.for_all
        (fun v -> bit_equal (Factor.sum_out_product fs v) (naive v))
        (Factor.vars (Factor.product_all fs)))

let prop_sum_out_product_scratch =
  QCheck2.Test.make ~name:"scratch-pooled sum_out_product stays exact" ~count:100
    QCheck2.Gen.(pair gen_factor gen_factor)
    (fun (f, g) ->
      let fs = [ f; g ] in
      let union = Factor.vars (Factor.product_all fs) in
      let sc = Factor.scratch () in
      Array.for_all
        (fun v ->
          (* exercise buffer recycling: take, compare, release, repeat *)
          let a = Factor.sum_out_product ~scratch:sc fs v in
          let expected =
            Factor.Reference.sum_out (Factor.Reference.product f g) v
          in
          let ok = bit_equal a expected in
          Factor.release sc a;
          let b = Factor.sum_out_product ~scratch:sc fs v in
          let ok2 = bit_equal b expected in
          Factor.release sc b;
          ok && ok2)
        union)

let prop_marginalize_onto_matches_reference =
  QCheck2.Test.make ~name:"fused marginalize_onto ≈ Reference.marginal (1e-9)"
    ~count:200
    QCheck2.Gen.(pair gen_factor (int_range 0 15))
    (fun (f, mask) ->
      let keep =
        Array.of_list (List.filter (fun v -> mask land (1 lsl v) <> 0) [ 0; 1; 2; 3 ])
      in
      Factor.equal ~eps:1e-9 (Factor.marginalize_onto f keep)
        (Factor.Reference.marginal f keep))

let test_observe_mask_all_true_is_identity () =
  let f = Factor.create ~vars:[| 0; 1 |] ~cards:[| 2; 3 |] (Array.init 6 float_of_int) in
  let g = Factor.observe_mask f 1 [| true; true; true |] in
  Alcotest.(check bool) "physically unchanged" true (f == g);
  let h = Factor.observe f 1 (fun _ -> true) in
  Alcotest.(check bool) "predicate form too" true (f == h)

let test_mem_sorted () =
  let a = [| 1; 4; 9 |] in
  Alcotest.(check bool) "present" true (Factor.mem_sorted a 4);
  Alcotest.(check bool) "absent" false (Factor.mem_sorted a 5);
  Alcotest.(check bool) "empty" false (Factor.mem_sorted [||] 0)

let () =
  Alcotest.run "prob"
    [
      ( "dist",
        [
          Alcotest.test_case "uniform" `Quick test_dist_uniform;
          Alcotest.test_case "of_weights" `Quick test_dist_of_weights;
          Alcotest.test_case "smoothing" `Quick test_dist_of_counts_smoothing;
          Alcotest.test_case "point" `Quick test_dist_point;
          Alcotest.test_case "entropy" `Quick test_dist_entropy;
          Alcotest.test_case "kl" `Quick test_dist_kl;
          Alcotest.test_case "total variation" `Quick test_dist_tv;
        ] );
      ( "factor",
        [
          Alcotest.test_case "create validation" `Quick test_factor_create_validation;
          Alcotest.test_case "get" `Quick test_factor_get;
          Alcotest.test_case "of_fun" `Quick test_factor_of_fun;
          Alcotest.test_case "sum_out" `Quick test_factor_sum_out;
          Alcotest.test_case "restrict" `Quick test_factor_restrict;
          Alcotest.test_case "observe" `Quick test_factor_observe;
          Alcotest.test_case "product known" `Quick test_factor_product_known;
          Alcotest.test_case "product card mismatch" `Quick test_factor_product_card_mismatch;
          Alcotest.test_case "marginal and normalize" `Quick test_factor_marginal_normalize;
        ] );
      ( "factor-properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_product_pointwise;
            prop_product_commutative;
            prop_sum_out_order_independent;
            prop_sum_out_preserves_total;
            prop_restrict_sums_to_sum_out;
          ] );
      ( "contingency",
        [
          Alcotest.test_case "count" `Quick test_contingency_count;
          Alcotest.test_case "weighted and masked" `Quick test_contingency_weighted_masked;
          Alcotest.test_case "marginal" `Quick test_contingency_marginal;
          Alcotest.test_case "to_factor" `Quick test_contingency_to_factor;
          Alcotest.test_case "iter" `Quick test_contingency_iter;
          Alcotest.test_case "sparse representation" `Quick test_contingency_sparse;
        ] );
      ( "more-properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_contingency_repr_agreement;
            prop_factor_normalize_total_one;
            prop_observe_conjunction;
            prop_marginal_consistency;
          ] );
      ( "stride-kernels",
        Alcotest.test_case "observe_mask all-true is identity" `Quick
          test_observe_mask_all_true_is_identity
        :: Alcotest.test_case "mem_sorted" `Quick test_mem_sorted
        :: List.map QCheck_alcotest.to_alcotest
             [
               prop_sum_out_matches_reference;
               prop_restrict_matches_reference;
               prop_observe_matches_reference;
               prop_product_matches_reference;
               prop_product_all_is_fold;
               prop_sum_out_product_fused;
               prop_sum_out_product_scratch;
               prop_marginalize_onto_matches_reference;
             ] );
      ( "info",
        [
          Alcotest.test_case "entropy of counts" `Quick test_entropy_of_counts;
          Alcotest.test_case "MI independent" `Quick test_mi_independent;
          Alcotest.test_case "MI determined" `Quick test_mi_determined;
          Alcotest.test_case "MI symmetric" `Quick test_mi_symmetry;
          Alcotest.test_case "conditional entropy and loglik" `Quick
            test_conditional_entropy_and_loglik;
        ] );
      ( "info-properties",
        List.map QCheck_alcotest.to_alcotest [ prop_mi_nonnegative; prop_entropy_chain ] );
    ]
