open Selest_obs

let check_float = Alcotest.(check (float 1e-9))

(* ---- Clock ----------------------------------------------------------------- *)

let test_clock_monotone () =
  let t1 = Clock.now_ns () in
  let t2 = Clock.now_ns () in
  Alcotest.(check bool) "positive" true (t1 > 0);
  Alcotest.(check bool) "monotone" true (t2 >= t1);
  check_float "ns_to_us" 1.5 (Clock.ns_to_us 1_500)

(* ---- Span ------------------------------------------------------------------- *)

let test_span_disabled_noop () =
  Alcotest.(check bool) "disabled by default" false (Span.enabled ());
  let live = Span.with_ "dead" (fun sp -> Span.live sp) in
  Alcotest.(check bool) "null span handed out" false live;
  (* add on the null span must be a harmless no-op *)
  Span.with_ "dead" (fun sp -> Span.add sp "k" "v");
  Alcotest.(check int) "value passes through" 42 (Span.with_ "dead" (fun _ -> 42))

let test_span_collect_tree () =
  let result, records =
    Span.collect (fun () ->
        Alcotest.(check bool) "enabled inside collect" true (Span.enabled ());
        Span.with_ "a" (fun sp ->
            Alcotest.(check bool) "live span" true (Span.live sp);
            Span.add sp "k" "v";
            Span.add sp "k2" "v2";
            Span.with_ "b" (fun _ -> Span.with_ "c" ignore);
            Span.with_ "d" ignore;
            "done"))
  in
  Alcotest.(check bool) "disabled again" false (Span.enabled ());
  Alcotest.(check string) "result" "done" result;
  (* records are emitted at close: children before parents *)
  Alcotest.(check (list string)) "emission order"
    [ "c"; "b"; "d"; "a" ]
    (List.map (fun r -> r.Span.name) records);
  let find name = List.find (fun r -> r.Span.name = name) records in
  let a = find "a" and b = find "b" and c = find "c" and d = find "d" in
  Alcotest.(check int) "root parent" 0 a.parent;
  Alcotest.(check int) "b under a" a.id b.parent;
  Alcotest.(check int) "c under b" b.id c.parent;
  Alcotest.(check int) "d under a" a.id d.parent;
  Alcotest.(check (list int)) "depths" [ 0; 1; 2; 1 ]
    [ a.depth; b.depth; c.depth; d.depth ];
  Alcotest.(check (list (pair string string))) "attrs in add order"
    [ ("k", "v"); ("k2", "v2") ]
    a.attrs;
  List.iter
    (fun r ->
      Alcotest.(check bool) "interval well-formed" true (r.Span.end_ns >= r.Span.start_ns);
      Alcotest.(check bool) "duration non-negative" true (Span.duration_us r >= 0.0))
    records;
  Alcotest.(check bool) "b inside a" true
    (b.start_ns >= a.start_ns && b.end_ns <= a.end_ns);
  Alcotest.(check bool) "c inside b" true
    (c.start_ns >= b.start_ns && c.end_ns <= b.end_ns);
  Alcotest.(check bool) "siblings ordered" true (d.start_ns >= b.end_ns)

let test_span_emits_on_raise () =
  let (), records =
    Span.collect (fun () ->
        try Span.with_ "boom" (fun _ -> raise Exit) with Exit -> ())
  in
  Alcotest.(check (list string)) "record emitted despite raise" [ "boom" ]
    (List.map (fun r -> r.Span.name) records)

let test_span_global_sink () =
  let buf = ref [] in
  Span.set_global_sink (Some (fun r -> buf := r :: !buf));
  Fun.protect
    ~finally:(fun () -> Span.set_global_sink None)
    (fun () ->
      Alcotest.(check bool) "enabled via global sink" true (Span.enabled ());
      Span.with_ "g" (fun sp -> Span.add sp "x" "1");
      Alcotest.(check int) "one record" 1 (List.length !buf);
      (* the global sink sees collect's records too *)
      let (), local = Span.collect (fun () -> Span.with_ "h" ignore) in
      Alcotest.(check int) "collect captured it" 1 (List.length local);
      Alcotest.(check int) "global sink also saw it" 2 (List.length !buf));
  Alcotest.(check bool) "disabled after clearing" false (Span.enabled ())

(* Property: for any tree shape, the collected records form a consistent
   span tree — unique ids, children emitted before their parents, child
   intervals nested inside the parent's, depth = parent depth + 1. *)
type tree = Node of tree list

let prop_span_nesting =
  let open QCheck2.Gen in
  let gen_tree =
    sized
    @@ fix (fun self n ->
           if n <= 0 then return (Node [])
           else
             let* width = int_range 0 3 in
             list_repeat width (self (n / 2)) >|= fun children -> Node children)
  in
  let rec count (Node children) =
    1 + List.fold_left (fun acc t -> acc + count t) 0 children
  in
  let rec run (Node children) = Span.with_ "node" (fun _ -> List.iter run children) in
  QCheck2.Test.make ~name:"span records form a consistent tree" ~count:200
    gen_tree (fun tree ->
      let (), records = Span.collect (fun () -> run tree) in
      let n = List.length records in
      n = count tree
      && List.length (List.sort_uniq compare (List.map (fun r -> r.Span.id) records)) = n
      && List.for_all
           (fun (r : Span.record) ->
             r.end_ns >= r.start_ns
             &&
             if r.parent = 0 then r.depth = 0
             else
               match List.find_opt (fun p -> p.Span.id = r.parent) records with
               | None -> false
               | Some p ->
                 r.depth = p.depth + 1
                 && r.start_ns >= p.start_ns
                 && r.end_ns <= p.end_ns)
           records
      (* children first: every record's parent appears later in the list *)
      && List.for_all
           (fun (r : Span.record) ->
             r.parent = 0
             ||
             let rec after = function
               | [] -> false
               | x :: tl -> if x == r then List.exists (fun p -> p.Span.id = r.parent) tl else after tl
             in
             after records)
           records)

(* ---- Hotpath ----------------------------------------------------------------- *)

let test_hotpath_measure () =
  let (), d =
    Hotpath.measure (fun () ->
        Hotpath.kernel ~entries:10 ~out:100;
        Hotpath.kernel ~entries:5 ~out:50;
        Hotpath.scratch_hit ();
        Hotpath.scratch_miss ();
        Hotpath.order_hit ();
        Hotpath.order_hit ();
        Hotpath.order_miss ())
  in
  Alcotest.(check int) "factor_ops" 2 d.Hotpath.factor_ops;
  Alcotest.(check int) "entries_touched" 15 d.Hotpath.entries_touched;
  Alcotest.(check int) "max_factor_entries" 100 d.Hotpath.max_factor_entries;
  Alcotest.(check int) "scratch_hits" 1 d.Hotpath.scratch_hits;
  Alcotest.(check int) "scratch_misses" 1 d.Hotpath.scratch_misses;
  Alcotest.(check int) "order_hits" 2 d.Hotpath.order_hits;
  Alcotest.(check int) "order_misses" 1 d.Hotpath.order_misses

let test_hotpath_high_water_restore () =
  (* the delta's high-water mark reflects only work inside the callback,
     and the surrounding domain-wide mark survives the measurement *)
  Hotpath.kernel ~entries:1 ~out:5_000;
  let before = (Hotpath.get ()).Hotpath.max_factor_entries in
  let (), d = Hotpath.measure (fun () -> Hotpath.kernel ~entries:1 ~out:100) in
  Alcotest.(check int) "delta mark is callback-local" 100 d.Hotpath.max_factor_entries;
  Alcotest.(check bool) "surrounding mark restored" true
    ((Hotpath.get ()).Hotpath.max_factor_entries >= before)

let test_hotpath_to_pairs () =
  let (), d = Hotpath.measure (fun () -> Hotpath.kernel ~entries:3 ~out:7) in
  let pairs = Hotpath.to_pairs d in
  Alcotest.(check int) "nine counters" 9 (List.length pairs);
  Alcotest.(check (option int)) "factor_ops listed" (Some 1)
    (List.assoc_opt "factor_ops" pairs);
  Alcotest.(check (option int)) "entries listed" (Some 3)
    (List.assoc_opt "entries_touched" pairs)

(* ---- Qerror ------------------------------------------------------------------- *)

let test_qerror_value () =
  check_float "underestimate" 10.0 (Qerror.value ~est:10.0 ~truth:100.0);
  check_float "overestimate" 10.0 (Qerror.value ~est:100.0 ~truth:10.0);
  check_float "exact" 1.0 (Qerror.value ~est:7.0 ~truth:7.0);
  (* sub-row clamp: both sides floor at one row *)
  check_float "both below one row" 1.0 (Qerror.value ~est:0.001 ~truth:0.5);
  check_float "clamped estimate" 200.0 (Qerror.value ~est:0.5 ~truth:200.0)

let test_qerror_histogram () =
  let t = Qerror.create () in
  Alcotest.(check int) "empty count" 0 (Qerror.count t);
  Alcotest.(check bool) "empty mean is nan" true (Float.is_nan (Qerror.mean t));
  Alcotest.(check bool) "empty percentile is nan" true
    (Float.is_nan (Qerror.percentile t 0.5));
  for _ = 1 to 100 do
    Qerror.observe t ~est:50.0 ~truth:50.0
  done;
  for _ = 1 to 10 do
    Qerror.record t 100.0
  done;
  Alcotest.(check int) "count" 110 (Qerror.count t);
  check_float "exact mean" 10.0 (Qerror.mean t);
  check_float "exact max" 100.0 (Qerror.worst t);
  (* percentiles quantize to the upper bucket edge (ratio sqrt 2) *)
  check_float "p50 is first bucket's edge" Qerror.bucket_ratio (Qerror.percentile t 0.5);
  let p99 = Qerror.percentile t 0.99 in
  Alcotest.(check bool) "p99 upper-edge quantized" true (p99 >= 100.0 && p99 <= 129.0);
  let s = Qerror.summarize t in
  Alcotest.(check int) "summary n" 110 s.Qerror.n;
  check_float "summary p50" (Qerror.percentile t 0.5) s.Qerror.p50;
  check_float "summary max" 100.0 s.Qerror.max_q;
  let buckets = Qerror.buckets t in
  Alcotest.(check int) "all buckets listed" Qerror.n_buckets (Array.length buckets);
  Alcotest.(check int) "cumulative reaches count" 110
    (snd buckets.(Qerror.n_buckets - 1));
  Array.iteri
    (fun i (edge, cum) ->
      if i > 0 then begin
        Alcotest.(check bool) "edges increase" true (edge > fst buckets.(i - 1));
        Alcotest.(check bool) "counts cumulative" true (cum >= snd buckets.(i - 1))
      end)
    buckets

let test_qerror_of_pairs () =
  let t = Qerror.of_pairs [ (100.0, 10.0); (7.0, 7.0); (2.0, 8.0) ] in
  Alcotest.(check int) "count" 3 (Qerror.count t);
  check_float "worst pair dominates" 10.0 (Qerror.worst t);
  check_float "mean" 5.0 (Qerror.mean t)

(* ---- Prometheus ----------------------------------------------------------------- *)

let test_prometheus_sanitize () =
  Alcotest.(check string) "dots to underscores" "ve_factor_ops"
    (Prometheus.sanitize "ve.factor_ops");
  Alcotest.(check string) "leading digit prefixed" "_9lives"
    (Prometheus.sanitize "9lives");
  Alcotest.(check string) "legal name unchanged" "selest_qerror:v2"
    (Prometheus.sanitize "selest_qerror:v2")

let test_prometheus_round_trip () =
  let metrics =
    [
      Prometheus.Counter
        { name = "selest_requests_total"; help = "Requests served"; labels = []; value = 42.0 };
      Prometheus.Counter
        {
          name = "selest_infer_total";
          help = "Inferences";
          labels = [ ("model", "tb") ];
          value = 7.0;
        };
      Prometheus.Counter
        {
          name = "selest_infer_total";
          help = "Inferences";
          labels = [ ("model", "census") ];
          value = 3.0;
        };
      Prometheus.Gauge
        { name = "selest_cache_bytes"; help = "Cache size"; labels = []; value = 1024.0 };
      Prometheus.Histogram
        {
          name = "selest_qerror";
          help = "q-error";
          labels = [ ("model", "tb") ];
          buckets = [| (1.5, 3); (2.0, 5) |];
          sum = 8.5;
          count = 5;
        };
    ]
  in
  let text = Prometheus.render metrics in
  let types, samples = Prometheus.parse text in
  Alcotest.(check (list (pair string string))) "types in order"
    [
      ("selest_requests_total", "counter");
      ("selest_infer_total", "counter");
      ("selest_cache_bytes", "gauge");
      ("selest_qerror", "histogram");
    ]
    types;
  let find ?labels name = Prometheus.find_sample samples ~name ?labels () in
  Alcotest.(check (option (float 0.0))) "counter" (Some 42.0)
    (find "selest_requests_total");
  Alcotest.(check (option (float 0.0))) "labeled counter" (Some 7.0)
    (find ~labels:[ ("model", "tb") ] "selest_infer_total");
  Alcotest.(check (option (float 0.0))) "second label set" (Some 3.0)
    (find ~labels:[ ("model", "census") ] "selest_infer_total");
  Alcotest.(check (option (float 0.0))) "gauge" (Some 1024.0)
    (find "selest_cache_bytes");
  Alcotest.(check (option (float 0.0))) "bucket" (Some 3.0)
    (find ~labels:[ ("model", "tb"); ("le", "1.5") ] "selest_qerror_bucket");
  (* the +Inf bucket is synthesized from count when missing *)
  Alcotest.(check (option (float 0.0))) "+Inf bucket" (Some 5.0)
    (find ~labels:[ ("le", "+Inf") ] "selest_qerror_bucket");
  Alcotest.(check (option (float 0.0))) "sum" (Some 8.5) (find "selest_qerror_sum");
  Alcotest.(check (option (float 0.0))) "count" (Some 5.0) (find "selest_qerror_count");
  Alcotest.(check (option (float 0.0))) "absent sample" None (find "selest_nope")

let test_prometheus_kind_conflict () =
  Alcotest.(check bool) "adjacent kind conflict rejected" true
    (try
       ignore
         (Prometheus.render
            [
              Prometheus.Counter { name = "x"; help = ""; labels = []; value = 1.0 };
              Prometheus.Gauge { name = "x"; help = ""; labels = []; value = 2.0 };
            ]);
       false
     with Invalid_argument _ -> true)

(* ---- Trace_log -------------------------------------------------------------------- *)

let read_lines file =
  let ic = open_in file in
  let rec loop acc =
    match input_line ic with
    | line -> loop (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  loop []

let test_trace_log_jsonl () =
  let file = Filename.temp_file "selest_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Trace_log.install file;
      Alcotest.(check bool) "installed" true (Trace_log.installed ());
      Alcotest.(check bool) "spans enabled" true (Span.enabled ());
      Span.with_ "outer" (fun sp ->
          Span.add sp "q" "x=1";
          Span.with_ "inner" ignore);
      Trace_log.close ();
      Alcotest.(check bool) "deregistered" false (Trace_log.installed ());
      Alcotest.(check bool) "spans disabled again" false (Span.enabled ());
      let lines = read_lines file in
      Alcotest.(check int) "one line per span" 2 (List.length lines);
      List.iter
        (fun line ->
          Alcotest.(check bool) "JSON object shape" true
            (String.length line > 2 && line.[0] = '{' && line.[String.length line - 1] = '}'))
        lines;
      let contains line sub =
        let n = String.length sub in
        let rec probe i =
          i + n <= String.length line && (String.sub line i n = sub || probe (i + 1))
        in
        probe 0
      in
      (* children close first: inner is the first record *)
      Alcotest.(check bool) "inner first" true
        (contains (List.nth lines 0) "\"name\":\"inner\"");
      Alcotest.(check bool) "attr serialized" true
        (contains (List.nth lines 1) "\"q\":\"x=1\"");
      (* reinstalling appends rather than truncating *)
      Trace_log.install file;
      Span.with_ "again" ignore;
      Trace_log.close ();
      Alcotest.(check int) "append on reinstall" 3 (List.length (read_lines file)))

(* ---- Histogram ---------------------------------------------------------------- *)

let test_histogram_bounds () =
  let h = Histogram.create () in
  Alcotest.(check int) "empty quantile" 0 (Histogram.quantile_ns h 0.99);
  Histogram.record h (-5);
  Histogram.record h 0;
  Histogram.record h max_int;
  Alcotest.(check int) "count" 3 (Histogram.count h);
  Alcotest.(check int) "negative clamps to zero" 2 (Histogram.count_le h 0);
  Alcotest.(check int) "overflow clamps to max_ns" Histogram.max_ns
    (Histogram.max_ns_seen h);
  Alcotest.(check int) "p100 is the clamp" Histogram.max_ns
    (Histogram.quantile_ns h 1.0)

let test_histogram_exact_small () =
  (* values below [half] land in exact unit buckets: no quantization *)
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 3; 3; 7 ];
  Alcotest.(check int) "count_le" 2 (Histogram.count_le h 3);
  Alcotest.(check int) "p50 exact" 3 (Histogram.quantile_ns h 0.5);
  Alcotest.(check int) "p100 exact" 7 (Histogram.quantile_ns h 1.0);
  Alcotest.(check int) "sum exact" 13 (Histogram.sum_ns h)

let test_histogram_merge_diff () =
  let a = Histogram.create () and b = Histogram.create () in
  List.iter (Histogram.record a) [ 10; 2_000; 300_000 ];
  List.iter (Histogram.record b) [ 50; 2_000 ];
  let m = Histogram.copy a in
  Histogram.merge_into ~into:m b;
  Alcotest.(check int) "merged count" 5 (Histogram.count m);
  Alcotest.(check int) "merged sum"
    (Histogram.sum_ns a + Histogram.sum_ns b)
    (Histogram.sum_ns m);
  let d = Histogram.diff ~prev:a m in
  Alcotest.(check int) "diff count" 2 (Histogram.count d);
  Alcotest.(check int) "diff sum" (Histogram.sum_ns b) (Histogram.sum_ns d)

let prop_histogram_buckets =
  QCheck2.Test.make ~name:"bucket edges bound the value within 1/128"
    ~count:2_000
    QCheck2.Gen.(int_range 0 Histogram.max_ns)
    (fun v ->
      let i = Histogram.index_of_ns v in
      let lo = Histogram.lower_ns i and hi = Histogram.upper_ns i in
      lo <= v && v <= hi
      && (if i < Histogram.half then hi = lo
          else hi - lo <= lo / Histogram.half))

let prop_histogram_quantile_oracle =
  QCheck2.Test.make
    ~name:"quantiles match a sorted oracle within one bucket" ~count:200
    QCheck2.Gen.(list_size (int_range 1 300) (int_range 0 50_000_000))
    (fun vs ->
      let h = Histogram.create () in
      List.iter (Histogram.record h) vs;
      let sorted = Array.of_list (List.sort compare vs) in
      let n = Array.length sorted in
      List.for_all
        (fun p ->
          let rank = max 1 (int_of_float (ceil (p *. float_of_int n))) in
          let v = sorted.(rank - 1) in
          let q = Histogram.quantile_ns h p in
          (* upper-edge quantization: never understates, overstates by at
             most one bucket width *)
          v <= q && q - v <= max 1 (v / Histogram.half))
        [ 0.5; 0.9; 0.99; 0.999; 1.0 ])

(* ---- Telemetry ---------------------------------------------------------------- *)

let prop_telemetry_concurrent_merge =
  (* K writer domains hammer one instance; after join (a happens-before
     edge) the merged totals are exact and quantiles are bit-identical
     to a sequential histogram of the same samples. *)
  QCheck2.Test.make ~name:"K-domain merged totals are exact" ~count:5
    QCheck2.Gen.(pair (int_range 2 4) (int_range 200 2_000))
    (fun (k, n) ->
      let tel = Telemetry.create () in
      let sample i = i * 9_973 mod 5_000_000 in
      let domains =
        List.init k (fun _ ->
            Domain.spawn (fun () ->
                for i = 1 to n do
                  Telemetry.incr tel "ops";
                  Telemetry.record_ns tel "lat" (sample i)
                done))
      in
      List.iter Domain.join domains;
      let oracle = Histogram.create () in
      for _ = 1 to k do
        for i = 1 to n do
          Histogram.record oracle (sample i)
        done
      done;
      let snap = Telemetry.snapshot tel in
      Telemetry.Snapshot.find_counter snap "ops" = k * n
      && Telemetry.n_shards tel = k
      &&
      match Telemetry.Snapshot.find_hist snap "lat" with
      | None -> false
      | Some h ->
        Histogram.count h = k * n
        && Histogram.sum_ns h = Histogram.sum_ns oracle
        && List.for_all
             (fun p -> Histogram.quantile_ns h p = Histogram.quantile_ns oracle p)
             [ 0.5; 0.95; 0.99; 0.999 ])

let test_telemetry_delta () =
  let tel = Telemetry.create () in
  Telemetry.incr ~by:5 tel "x";
  let s1 = Telemetry.snapshot tel in
  Telemetry.incr ~by:3 tel "x";
  Telemetry.incr tel "fresh";
  Telemetry.record_ns tel "h" 10;
  let s2 = Telemetry.snapshot tel in
  Alcotest.(check bool) "epoch increases" true
    (s2.Telemetry.epoch > s1.Telemetry.epoch);
  let d = Telemetry.Snapshot.delta ~prev:s1 s2 in
  Alcotest.(check int) "window counter" 3 (Telemetry.Snapshot.find_counter d "x");
  Alcotest.(check int) "fresh slot counts from zero" 1
    (Telemetry.Snapshot.find_counter d "fresh");
  (match Telemetry.Snapshot.find_hist d "h" with
  | Some h -> Alcotest.(check int) "window hist count" 1 (Histogram.count h)
  | None -> Alcotest.fail "window histogram missing");
  Alcotest.(check int) "lifetime unchanged" 8
    (Telemetry.Snapshot.find_counter s2 "x")

(* ---- Slowlog ------------------------------------------------------------------ *)

let test_slowlog_ring () =
  let sl = Slowlog.create ~capacity:3 () in
  for i = 1 to 5 do
    ignore
      (Slowlog.add sl ~verb:"est" ~reason:Slowlog.Latency
         ~query:(Printf.sprintf "q%d" i) ~lat_ns:(i * 1_000) ~threshold_ns:500
         ~spans:[] ())
  done;
  Alcotest.(check int) "total counts evicted" 5 (Slowlog.total sl);
  Alcotest.(check int) "held bounded" 3 (Slowlog.length sl);
  Alcotest.(check (list string)) "newest first"
    [ "q5"; "q4" ]
    (List.map (fun e -> e.Slowlog.query) (Slowlog.recent ~n:2 sl));
  Alcotest.(check (list int)) "seqs never reused" [ 5; 4; 3 ]
    (List.map (fun e -> e.Slowlog.seq) (Slowlog.recent sl));
  let q =
    Slowlog.add sl ~verb:"truth" ~reason:Slowlog.Qerror ~query:"qq"
      ~lat_ns:10 ~threshold_ns:max_int ~qerror:123.0 ~spans:[] ()
  in
  Alcotest.(check int) "seq continues" 6 q;
  match Slowlog.recent ~n:1 sl with
  | [ e ] ->
    Alcotest.(check string) "reason" "qerror" (Slowlog.reason_to_string e.Slowlog.reason);
    Alcotest.(check (option (float 1e-9))) "qerror kept" (Some 123.0) e.Slowlog.qerror
  | _ -> Alcotest.fail "expected one entry"

(* ---- suite -------------------------------------------------------------------------- *)

let () =
  Alcotest.run "obs"
    [
      ("clock", [ Alcotest.test_case "monotone" `Quick test_clock_monotone ]);
      ( "span",
        [
          Alcotest.test_case "disabled no-op" `Quick test_span_disabled_noop;
          Alcotest.test_case "collect tree" `Quick test_span_collect_tree;
          Alcotest.test_case "emits on raise" `Quick test_span_emits_on_raise;
          Alcotest.test_case "global sink" `Quick test_span_global_sink;
        ] );
      ("span-properties", List.map QCheck_alcotest.to_alcotest [ prop_span_nesting ]);
      ( "hotpath",
        [
          Alcotest.test_case "measure deltas" `Quick test_hotpath_measure;
          Alcotest.test_case "high-water restore" `Quick test_hotpath_high_water_restore;
          Alcotest.test_case "to_pairs" `Quick test_hotpath_to_pairs;
        ] );
      ( "qerror",
        [
          Alcotest.test_case "value" `Quick test_qerror_value;
          Alcotest.test_case "histogram" `Quick test_qerror_histogram;
          Alcotest.test_case "of_pairs" `Quick test_qerror_of_pairs;
        ] );
      ( "prometheus",
        [
          Alcotest.test_case "sanitize" `Quick test_prometheus_sanitize;
          Alcotest.test_case "round trip" `Quick test_prometheus_round_trip;
          Alcotest.test_case "kind conflict" `Quick test_prometheus_kind_conflict;
        ] );
      ("trace-log", [ Alcotest.test_case "jsonl" `Quick test_trace_log_jsonl ]);
      ( "histogram",
        [
          Alcotest.test_case "bounds" `Quick test_histogram_bounds;
          Alcotest.test_case "exact small values" `Quick test_histogram_exact_small;
          Alcotest.test_case "merge and diff" `Quick test_histogram_merge_diff;
        ] );
      ( "histogram-properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_histogram_buckets; prop_histogram_quantile_oracle ] );
      ( "telemetry",
        Alcotest.test_case "snapshot delta" `Quick test_telemetry_delta
        :: List.map QCheck_alcotest.to_alcotest [ prop_telemetry_concurrent_merge ]
      );
      ("slowlog", [ Alcotest.test_case "ring" `Quick test_slowlog_ring ]);
    ]
