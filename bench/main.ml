(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Sec. 5), plus the ablations called out in DESIGN.md.

     dune exec bench/main.exe                 # all figures, quick scale
     dune exec bench/main.exe -- --full       # paper-scale datasets
     dune exec bench/main.exe -- --fig 4a --fig 6b
     dune exec bench/main.exe -- --list

   Quick scale uses a 40K-row census table (the paper's is 150K); TB and
   FIN run at paper scale in both modes.  Shapes, not absolute numbers,
   are the reproduction target; see EXPERIMENTS.md. *)

open Selest
open Selest_workload

(* ---- configuration -------------------------------------------------------- *)

type cfg = {
  figs : string list;  (* empty = all *)
  full : bool;
  seed : int;
  max_queries : int;
}

let known_figs =
  [
    "sanity"; "4a"; "4b"; "4c"; "5a"; "5b"; "5c"; "6a"; "6b"; "6c"; "7a"; "7b"; "7c";
    "range"; "structure"; "ablation-score"; "ablation-join"; "serve-cache"; "inference";
    "plan"; "exec"; "frontend"; "learn"; "obs"; "opt"; "telemetry"; "serve"; "bechamel";
  ]

let parse_args () =
  let figs = ref [] and full = ref false and seed = ref 1 in
  let max_queries = ref 20_000 in
  let rec go = function
    | [] -> ()
    | "--fig" :: f :: rest ->
      if not (List.mem f known_figs) then begin
        Printf.eprintf "unknown figure %S; use --list\n" f;
        exit 1
      end;
      figs := !figs @ [ f ];
      go rest
    | "--full" :: rest ->
      full := true;
      go rest
    | "--seed" :: s :: rest ->
      seed := int_of_string s;
      go rest
    | "--max-queries" :: s :: rest ->
      max_queries := int_of_string s;
      go rest
    | "--list" :: _ ->
      List.iter print_endline known_figs;
      exit 0
    | arg :: _ ->
      Printf.eprintf "unknown argument %S\n" arg;
      exit 1
  in
  go (List.tl (Array.to_list Sys.argv));
  { figs = !figs; full = !full; seed = !seed; max_queries = !max_queries }

let cfg = parse_args ()

let wants fig = cfg.figs = [] || List.mem fig cfg.figs

let section title =
  Printf.printf "\n==============================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==============================================================\n%!"

let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

(* ---- datasets --------------------------------------------------------------- *)

let census_rows = if cfg.full then Synth.Census.default_rows else 40_000

let census = lazy (Synth.Census.generate ~rows:census_rows ~seed:cfg.seed ())
let tb = lazy (Synth.Tb.generate ~seed:cfg.seed ())
let fin = lazy (Synth.Financial.generate ~seed:cfg.seed ())

(* ---- generic sweep machinery -------------------------------------------------- *)

let kb b = Printf.sprintf "%.1fK" (float_of_int b /. 1024.0)

(* One row per budget, one (err, size) column pair per method. *)
let sweep ~db ~suite ~budgets ~methods =
  let rows =
    List.map
      (fun budget ->
        let ests = List.map (fun build -> build budget) methods in
        let outcomes = Runner.run_all db suite ests ~max_queries:cfg.max_queries ~seed:cfg.seed () in
        (kb budget, outcomes))
      budgets
  in
  Report.print (Report.sweep_table ~xlabel:"budget" ~rows)

let avi_for db attrs = fun _budget -> Est.Avi.build ~attrs db

let mhist_for db ~table ~attrs = fun budget ->
  Est.Mhist.build ~table ~attrs ~budget_bytes:budget db

let wavelet_for db ~table ~attrs = fun budget ->
  Est.Wavelet.build ~table ~attrs ~budget_bytes:budget db

let sample_for db ~attrs = fun budget ->
  Est.Sample.build ~rows:(max 1 (budget / (4 * List.length attrs))) ~seed:cfg.seed ~attrs db

let bn_for db ~table ?attrs ~kind () = fun budget ->
  Est.Bn_est.build ~table ?attrs ~budget_bytes:budget ~kind ~seed:cfg.seed db

let prm_for db = fun budget -> Est.Prm_est.build ~budget_bytes:budget ~seed:cfg.seed db

let bn_uj_for db = fun budget -> Est.Prm_est.build_bn_uj ~budget_bytes:budget ~seed:cfg.seed db

(* whole-join SAMPLE for multi-table dbs: store all attributes *)
let join_sample_for db ~n_attrs = fun budget ->
  Est.Sample.build ~rows:(max 1 (budget / (4 * n_attrs))) ~seed:cfg.seed db

let join_synopses_for db = fun budget ->
  Est.Join_synopses.build ~budget_bytes:budget ~seed:cfg.seed db

(* ---- F1: Fig. 1 sanity --------------------------------------------------------- *)

let fig_sanity () =
  section "F1 (Fig. 1): factored representation reproduces the joint exactly";
  let joint =
    [|
      (0, 0, 0, 0.270); (0, 0, 1, 0.030); (0, 1, 0, 0.105); (0, 1, 1, 0.045);
      (0, 2, 0, 0.005); (0, 2, 1, 0.045); (1, 0, 0, 0.135); (1, 0, 1, 0.015);
      (1, 1, 0, 0.063); (1, 1, 1, 0.027); (1, 2, 0, 0.006); (1, 2, 1, 0.054);
      (2, 0, 0, 0.018); (2, 0, 1, 0.002); (2, 1, 0, 0.042); (2, 1, 1, 0.018);
      (2, 2, 0, 0.012); (2, 2, 1, 0.108);
    |]
  in
  let e = ref [] and i = ref [] and h = ref [] in
  Array.iter
    (fun (ev, iv, hv, p) ->
      for _ = 1 to int_of_float (p *. 1000.0 +. 0.5) do
        e := ev :: !e;
        i := iv :: !i;
        h := hv :: !h
      done)
    joint;
  let data =
    Bn.Data.create ~names:[| "E"; "I"; "H" |] ~cards:[| 3; 3; 2 |]
      [| Array.of_list !e; Array.of_list !i; Array.of_list !h |]
  in
  let dag = Bn.Dag.add_edge (Bn.Dag.empty 3) ~src:0 ~dst:1 in
  let dag = Bn.Dag.add_edge dag ~src:1 ~dst:2 in
  let model = Bn.Bn.fit data ~dag ~kind:Bn.Cpd.Tables in
  let max_err = ref 0.0 in
  Array.iter
    (fun (ev, iv, hv, p) ->
      max_err := Float.max !max_err (abs_float (Bn.Bn.joint_prob model [| ev; iv; hv |] -. p)))
    joint;
  Printf.printf "18 joint cells, 11 free parameters, max abs error %.2e\n" !max_err;
  (* the independence approximation is NOT exact: *)
  let indep = Bn.Bn.fit data ~dag:(Bn.Dag.empty 3) ~kind:Bn.Cpd.Tables in
  let max_err_indep = ref 0.0 in
  Array.iter
    (fun (ev, iv, hv, p) ->
      max_err_indep :=
        Float.max !max_err_indep (abs_float (Bn.Bn.joint_prob indep [| ev; iv; hv |] -. p)))
    joint;
  Printf.printf "attribute-value independence max abs error: %.3f\n" !max_err_indep

(* ---- F4: small-subset comparisons ----------------------------------------------- *)

let fig4 ~label ~attrs ~budgets () =
  let db = Lazy.force census in
  section
    (Printf.sprintf
       "F%s (Fig. %s): error vs storage, %d-attribute suite {%s}, census %dK rows"
       label label (List.length attrs) (String.concat ", " attrs) (census_rows / 1000));
  let suite = Suite.single_table ~name:label ~table:"person" ~attrs in
  Printf.printf "%d equality queries per point (cap %d)\n" (Suite.n_queries db suite)
    cfg.max_queries;
  let pairs = List.map (fun a -> ("person", a)) attrs in
  sweep ~db ~suite ~budgets
    ~methods:
      [
        avi_for db pairs;
        mhist_for db ~table:"person" ~attrs;
        wavelet_for db ~table:"person" ~attrs;
        sample_for db ~attrs:pairs;
        bn_for db ~table:"person" ~attrs ~kind:Bn.Cpd.Trees ();
      ]

(* 4a is two-dimensional, so the SVD technique (applicable only there, as
   the paper notes) joins the comparison. *)
let fig4a () =
  let db = Lazy.force census in
  let attrs = [ "Age"; "Income" ] in
  section
    (Printf.sprintf
       "F4a (Fig. 4a): error vs storage, 2-attribute suite {Age, Income}, census %dK rows"
       (census_rows / 1000));
  let suite = Suite.single_table ~name:"4a" ~table:"person" ~attrs in
  Printf.printf "%d equality queries per point (cap %d)\n" (Suite.n_queries db suite)
    cfg.max_queries;
  let pairs = List.map (fun a -> ("person", a)) attrs in
  sweep ~db ~suite ~budgets:[ 300; 500; 700; 900; 1100; 1300 ]
    ~methods:
      [
        avi_for db pairs;
        mhist_for db ~table:"person" ~attrs;
        wavelet_for db ~table:"person" ~attrs;
        (fun budget -> Est.Svd.build ~table:"person" ~x:"Age" ~y:"Income" ~budget_bytes:budget db);
        sample_for db ~attrs:pairs;
        bn_for db ~table:"person" ~attrs ~kind:Bn.Cpd.Trees ();
      ]

let fig4b () =
  fig4 ~label:"4b" ~attrs:[ "Age"; "Education"; "Income" ]
    ~budgets:[ 500; 1000; 1500; 2500; 3500 ] ()

let fig4c () =
  fig4 ~label:"4c"
    ~attrs:[ "Age"; "Education"; "Income"; "EmployType" ]
    ~budgets:[ 500; 1500; 2500; 3500; 4500; 5500 ] ()

(* ---- F5: whole-table models ------------------------------------------------------ *)

let fig5 ~label ~attrs ~budgets () =
  let db = Lazy.force census in
  section
    (Printf.sprintf
       "F%s (Fig. %s): whole-table (12-attr) models, queried on {%s}" label label
       (String.concat ", " attrs));
  let suite = Suite.single_table ~name:label ~table:"person" ~attrs in
  Printf.printf "%d equality queries per point (cap %d)\n" (Suite.n_queries db suite)
    cfg.max_queries;
  let all_attrs = Array.to_list Synth.Census.attr_names in
  let all_pairs = List.map (fun a -> ("person", a)) all_attrs in
  sweep ~db ~suite ~budgets
    ~methods:
      [
        sample_for db ~attrs:all_pairs;
        bn_for db ~table:"person" ~kind:Bn.Cpd.Trees ();
        bn_for db ~table:"person" ~kind:Bn.Cpd.Tables ();
      ]

let fig5a () =
  fig5 ~label:"5a"
    ~attrs:[ "WorkerClass"; "Education"; "MaritalStatus" ]
    ~budgets:[ 1500; 2500; 3500; 4500 ] ()

let fig5b () =
  fig5 ~label:"5b"
    ~attrs:[ "Income"; "Industry"; "Age"; "EmployType" ]
    ~budgets:[ 1500; 3500; 5500; 7500; 9500 ] ()

let fig5c () =
  let db = Lazy.force census in
  section "F5c (Fig. 5c): per-query comparison, SAMPLE vs PRM at ~9.3KB";
  let attrs = [ "Income"; "Industry"; "Age" ] in
  let suite = Suite.single_table ~name:"5c" ~table:"person" ~attrs in
  let all_pairs = List.map (fun a -> ("person", a)) (Array.to_list Synth.Census.attr_names) in
  let budget = 9_523 in
  let sample = sample_for db ~attrs:all_pairs budget in
  let prm = bn_for db ~table:"person" ~kind:Bn.Cpd.Trees () budget in
  let pairs_s = Runner.per_query db suite sample ~max_queries:cfg.max_queries ~seed:cfg.seed () in
  let pairs_p = Runner.per_query db suite prm ~max_queries:cfg.max_queries ~seed:cfg.seed () in
  Printf.printf "SAMPLE %dB vs PRM(tree) %dB\n" sample.Est.Estimator.bytes prm.Est.Estimator.bytes;
  print_endline (Report.scatter_summary pairs_s pairs_p);
  (* coarse joint histogram of the two error distributions *)
  let bucket e = if e <= 10.0 then 0 else if e <= 50.0 then 1 else if e <= 100.0 then 2 else 3 in
  let hist = Array.make_matrix 4 4 0 in
  List.iter2
    (fun (t, es) (_, ep) ->
      let err est = Est.Estimator.adjusted_relative_error ~truth:t ~estimate:est in
      hist.(bucket (err es)).(bucket (err ep)) <- hist.(bucket (err es)).(bucket (err ep)) + 1)
    pairs_s pairs_p;
  let labels = [| "<=10%"; "<=50%"; "<=100%"; ">100%" |] in
  print_endline "rows: SAMPLE error band; columns: PRM error band; cells: #queries";
  let header = Array.append [| "SAMPLE\\PRM" |] labels in
  let rows =
    Array.mapi
      (fun i row -> Array.append [| labels.(i) |] (Array.map string_of_int row))
      hist
  in
  Util.Tablefmt.print ~header rows

(* ---- F6: select-join suites -------------------------------------------------------- *)

let tb_skeleton3 =
  Db.Query.create
    ~tvars:[ ("c", "contact"); ("p", "patient"); ("s", "strain") ]
    ~joins:
      [
        Db.Query.join ~child:"c" ~fk:"patient" ~parent:"p";
        Db.Query.join ~child:"p" ~fk:"strain" ~parent:"s";
      ]
    ()

let fin_skeleton3 =
  Db.Query.create
    ~tvars:[ ("t", "transaction"); ("a", "account"); ("d", "district") ]
    ~joins:
      [
        Db.Query.join ~child:"t" ~fk:"account" ~parent:"a";
        Db.Query.join ~child:"a" ~fk:"district" ~parent:"d";
      ]
    ()

let fig6a () =
  let db = Lazy.force tb in
  section "F6a (Fig. 6a): error vs storage, TB 3-table select-join suite";
  let suite =
    Suite.make ~name:"6a" ~skeleton:tb_skeleton3
      ~attrs:[ ("c", "Contype"); ("p", "USBorn"); ("s", "Unique") ]
  in
  Printf.printf "%d queries per point; all queries join contact-patient-strain\n"
    (Suite.n_queries db suite);
  sweep ~db ~suite
    ~budgets:[ 600; 1300; 2300; 3300; 4300 ]
    ~methods:
      [ join_sample_for db ~n_attrs:13; join_synopses_for db; bn_uj_for db; prm_for db ]

let tb_suites =
  [
    ("Q1: c.Contype x p.Age", [ ("c", "Contype"); ("p", "Age") ]);
    ("Q2: p.USBorn x s.Unique x c.Infected",
     [ ("c", "Infected"); ("p", "USBorn"); ("s", "Unique") ]);
    ("Q3: c.Age x p.Homeless x s.DrugResist",
     [ ("c", "Age"); ("p", "Homeless"); ("s", "DrugResist") ]);
  ]

let fin_suites =
  [
    ("Q1: t.TxType x a.Balance", [ ("t", "TxType"); ("a", "Balance") ]);
    ("Q2: t.Amount x a.Frequency x d.Size",
     [ ("t", "Amount"); ("a", "Frequency"); ("d", "Size") ]);
    ("Q3: t.Operation x a.CardType x d.AvgSalary",
     [ ("t", "Operation"); ("a", "CardType"); ("d", "AvgSalary") ]);
  ]

let fig6_sets ~label ~db ~skeleton ~suites ~budget ~n_attrs () =
  section
    (Printf.sprintf "F%s (Fig. %s): three select-join query suites at %s" label label
       (kb budget));
  let ests =
    [ join_sample_for db ~n_attrs budget; bn_uj_for db budget; prm_for db budget ]
  in
  let rows =
    List.map
      (fun (name, attrs) ->
        let suite = Suite.make ~name ~skeleton ~attrs in
        let outcomes = Runner.run_all db suite ests ~max_queries:cfg.max_queries ~seed:cfg.seed () in
        (name, outcomes))
      suites
  in
  Report.print (Report.sweep_table ~xlabel:"suite" ~rows)

let fig6b () =
  fig6_sets ~label:"6b" ~db:(Lazy.force tb) ~skeleton:tb_skeleton3 ~suites:tb_suites
    ~budget:4_500 ~n_attrs:13 ()

let fig6c () =
  fig6_sets ~label:"6c" ~db:(Lazy.force fin) ~skeleton:fin_skeleton3 ~suites:fin_suites
    ~budget:2_048 ~n_attrs:12 ()

(* ---- F7: running time ---------------------------------------------------------------- *)

let learn_census ~kind ~budget ~rows =
  let db =
    if rows = census_rows then Lazy.force census
    else Synth.Census.generate ~rows ~seed:cfg.seed ()
  in
  let data = Bn.Data.of_table (Db.Database.table db "person") in
  let config = { (Bn.Learn.default_config ~budget_bytes:budget) with Bn.Learn.kind } in
  Bn.Learn.learn ~config data

let fig7a () =
  section "F7a (Fig. 7a): construction time vs model storage (census)";
  let budgets = [ 800; 1500; 2500; 3500; 4500; 6500; 8500 ] in
  let header = [| "budget"; "trees (s)"; "trees bytes"; "tables (s)"; "tables bytes" |] in
  let rows =
    List.map
      (fun b ->
        let rt, tt = time (fun () -> learn_census ~kind:Bn.Cpd.Trees ~budget:b ~rows:census_rows) in
        let rb, tb = time (fun () -> learn_census ~kind:Bn.Cpd.Tables ~budget:b ~rows:census_rows) in
        [| kb b; Printf.sprintf "%.2f" tt; string_of_int rt.Bn.Learn.bytes;
           Printf.sprintf "%.2f" tb; string_of_int rb.Bn.Learn.bytes |])
      budgets
  in
  Util.Tablefmt.print ~header (Array.of_list rows)

let fig7b () =
  section "F7b (Fig. 7b): construction time vs data size (fixed 3.5KB budget)";
  let sizes =
    if cfg.full then [ 16_000; 32_000; 48_000; 64_000; 96_000; 128_000 ]
    else [ 8_000; 16_000; 24_000; 32_000; 40_000 ]
  in
  let header = [| "rows"; "trees (s)"; "tables (s)" |] in
  let rows =
    List.map
      (fun n ->
        let _, tt = time (fun () -> learn_census ~kind:Bn.Cpd.Trees ~budget:3_584 ~rows:n) in
        let _, tb = time (fun () -> learn_census ~kind:Bn.Cpd.Tables ~budget:3_584 ~rows:n) in
        [| string_of_int n; Printf.sprintf "%.2f" tt; Printf.sprintf "%.2f" tb |])
      sizes
  in
  Util.Tablefmt.print ~header (Array.of_list rows)

(* Estimation latency: per-query inference without suite caching. *)
let estimation_latency bn q_selects =
  let t0 = Unix.gettimeofday () in
  let n = 50 in
  for _ = 1 to n do
    ignore (Bn.Bn.prob_of bn q_selects)
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int n *. 1e6

let fig7c () =
  section "F7c (Fig. 7c): estimation time vs model size (microseconds per query)";
  let data = Bn.Data.of_table (Db.Database.table (Lazy.force census) "person") in
  let budgets = [ 1_000; 3_000; 5_000; 7_000; 9_000 ] in
  let q = [ (10, Db.Query.Eq 7); (2, Db.Query.Eq 9); (0, Db.Query.Eq 5) ] in
  let header = [| "budget"; "trees us/query"; "trees bytes"; "tables us/query"; "tables bytes" |] in
  let rows =
    List.map
      (fun b ->
        let tr =
          Bn.Learn.learn
            ~config:{ (Bn.Learn.default_config ~budget_bytes:b) with Bn.Learn.kind = Bn.Cpd.Trees }
            data
        in
        let tbl =
          Bn.Learn.learn
            ~config:{ (Bn.Learn.default_config ~budget_bytes:b) with Bn.Learn.kind = Bn.Cpd.Tables }
            data
        in
        [| kb b;
           Printf.sprintf "%.1f" (estimation_latency tr.Bn.Learn.bn q);
           string_of_int tr.Bn.Learn.bytes;
           Printf.sprintf "%.1f" (estimation_latency tbl.Bn.Learn.bn q);
           string_of_int tbl.Bn.Learn.bytes |])
      budgets
  in
  Util.Tablefmt.print ~header (Array.of_list rows)

(* ---- range queries (Sec. 2.3) -------------------------------------------------------------- *)

let fig_range () =
  section "R1 (Sec. 2.3): range queries at no extra cost (census, 2KB models)";
  let db = Lazy.force census in
  let attrs = [ "Age"; "Income" ] in
  let pairs = List.map (fun a -> ("person", a)) attrs in
  let budget = 2_048 in
  let ests =
    [
      Est.Avi.build ~attrs:pairs db;
      Est.Mhist.build ~table:"person" ~attrs ~budget_bytes:budget db;
      Est.Wavelet.build ~table:"person" ~attrs ~budget_bytes:budget db;
      Est.Sample.build ~rows:(budget / 8) ~seed:cfg.seed ~attrs:pairs db;
      Est.Bn_est.build ~table:"person" ~attrs ~budget_bytes:budget ~seed:cfg.seed db;
    ]
  in
  (* Random range queries over both attributes. *)
  let rng = Util.Rng.create (cfg.seed lxor 0x7A6E) in
  let n_queries = 1_000 in
  let random_range card =
    let a = Util.Rng.int rng card and b = Util.Rng.int rng card in
    (min a b, max a b)
  in
  let queries =
    List.init n_queries (fun _ ->
        let alo, ahi = random_range 18 in
        let ilo, ihi = random_range 42 in
        Db.Query.create ~tvars:[ ("t", "person") ]
          ~selects:[ Db.Query.range "t" "Age" alo ahi; Db.Query.range "t" "Income" ilo ihi ]
          ())
  in
  let header = [| "estimator"; "avg err %"; "median %"; "storage" |] in
  let rows =
    List.map
      (fun est ->
        let errors =
          List.filter_map
            (fun q ->
              match est.Est.Estimator.estimate q with
              | e ->
                Some (Est.Estimator.adjusted_relative_error ~truth:(true_size db q) ~estimate:e)
              | exception Est.Estimator.Unsupported _ -> None)
            queries
        in
        let arr = Array.of_list errors in
        [| est.Est.Estimator.name;
           Util.Tablefmt.float_cell (Util.Arrayx.mean arr);
           Util.Tablefmt.float_cell (Util.Arrayx.median arr);
           string_of_int est.Est.Estimator.bytes |])
      ests
  in
  Util.Tablefmt.print ~header (Array.of_list rows)

(* ---- structure recovery --------------------------------------------------------------------- *)

(* The census generator's ground-truth dependencies (parent, child), by
   attribute name; see lib/synth/census.ml. *)
let census_true_edges =
  [
    ("Age", "Education"); ("Age", "MaritalStatus"); ("Age", "WorkerClass");
    ("Age", "EmployType"); ("Age", "Income"); ("Age", "Children");
    ("Education", "WorkerClass"); ("Education", "Industry"); ("Education", "Income");
    ("WorkerClass", "Industry"); ("WorkerClass", "EmployType");
    ("EmployType", "Income"); ("Income", "Earner"); ("Income", "Children");
    ("EmployType", "Earner"); ("MaritalStatus", "Children");
    ("MaritalStatus", "ChildSupport"); ("Children", "ChildSupport");
  ]

let fig_structure () =
  section "S1: skeleton recovery vs the generator's ground truth (census)";
  let data = Bn.Data.of_table (Db.Database.table (Lazy.force census) "person") in
  let name i = Synth.Census.attr_names.(i) in
  let true_adj =
    List.map (fun (a, b) -> if a < b then (a, b) else (b, a)) census_true_edges
    |> List.sort_uniq compare
  in
  let header = [| "budget"; "learned edges"; "true pos"; "precision"; "recall" |] in
  let rows =
    List.map
      (fun budget ->
        let r = Bn.Learn.learn ~config:(Bn.Learn.default_config ~budget_bytes:budget) data in
        let learned =
          List.map
            (fun (u, v) ->
              let a = name u and b = name v in
              if a < b then (a, b) else (b, a))
            (Bn.Dag.edges r.Bn.Learn.bn.Bn.Bn.dag)
          |> List.sort_uniq compare
        in
        let tp = List.length (List.filter (fun e -> List.mem e true_adj) learned) in
        [| kb budget;
           string_of_int (List.length learned);
           string_of_int tp;
           Printf.sprintf "%.2f" (float_of_int tp /. float_of_int (max 1 (List.length learned)));
           Printf.sprintf "%.2f" (float_of_int tp /. float_of_int (List.length true_adj)) |])
      [ 1_000; 2_000; 4_000; 8_000 ]
  in
  Util.Tablefmt.print ~header (Array.of_list rows);
  print_endline
    "(adjacency is compared undirected: BN equivalence classes do not fix edge directions)"

(* ---- ablations -------------------------------------------------------------------------- *)

let ablation_score () =
  section "A1 (Sec. 4.3.3): move-selection rules Naive vs SSN vs MDL (census)";
  let data = Bn.Data.of_table (Db.Database.table (Lazy.force census) "person") in
  let suite =
    Suite.single_table ~name:"a1" ~table:"person" ~attrs:[ "Age"; "Education"; "Income" ]
  in
  let db = Lazy.force census in
  let header = [| "budget"; "rule"; "loglik (bits/row)"; "bytes"; "avg err %" |] in
  let rows = ref [] in
  List.iter
    (fun budget ->
      List.iter
        (fun (rname, rule) ->
          let config =
            { (Bn.Learn.default_config ~budget_bytes:budget) with Bn.Learn.rule }
          in
          let r = Bn.Learn.learn ~config data in
          let prob = Bn.Bn.cached_prob r.Bn.Learn.bn in
          let est = {
            Est.Estimator.name = rname;
            bytes = r.Bn.Learn.bytes;
            prepare = ignore;
            estimate =
              (fun q ->
                let ev =
                  List.map
                    (fun s ->
                      let rec idx i =
                        if Synth.Census.attr_names.(i) = s.Db.Query.sel_attr then i
                        else idx (i + 1)
                      in
                      (idx 0, s.Db.Query.pred))
                    q.Db.Query.selects
                in
                float_of_int census_rows *. prob ev);
          } in
          let o = Runner.run db suite est ~max_queries:4_000 ~seed:cfg.seed () in
          rows :=
            [| kb budget; rname;
               Printf.sprintf "%.3f" (r.Bn.Learn.loglik /. float_of_int census_rows);
               string_of_int r.Bn.Learn.bytes;
               Printf.sprintf "%.1f" o.Runner.avg_error |]
            :: !rows)
        [ ("naive", Bn.Learn.Naive); ("ssn", Bn.Learn.Ssn); ("mdl", Bn.Learn.Mdl) ])
    [ 1_000; 2_000; 4_000 ];
  Util.Tablefmt.print ~header (Array.of_list (List.rev !rows))

let ablation_join () =
  section "A2: what the relational extensions buy (TB join suites)";
  let db = Lazy.force tb in
  let budget = 4_500 in
  let full = prm_for db budget in
  let no_join_parents =
    let c =
      { (Prm.Learn.default_config ~budget_bytes:budget) with
        Prm.Learn.allow_join_parents = false; seed = cfg.seed }
    in
    let r = Prm.Learn.learn ~config:c db in
    { (Est.Prm_est.of_model ~name:"PRM-noJ" r.Prm.Learn.model
         ~sizes:(Prm.Estimate.sizes_of_db db))
      with Est.Estimator.bytes = r.Prm.Learn.bytes }
  in
  let uj = bn_uj_for db budget in
  let rows =
    List.map
      (fun (name, attrs) ->
        let suite = Suite.make ~name ~skeleton:tb_skeleton3 ~attrs in
        let outcomes =
          Runner.run_all db suite [ uj; no_join_parents; full ]
            ~max_queries:cfg.max_queries ~seed:cfg.seed ()
        in
        (name, outcomes))
      tb_suites
  in
  Report.print (Report.sweep_table ~xlabel:"suite" ~rows);
  print_endline
    "BN+UJ: no cross-table parents, uniform joins. PRM-noJ: cross-table parents\n\
     but uniform joins. PRM: full model with join-indicator parents."

(* ---- serving: cached vs uncached estimates ------------------------------------------------ *)

(* Drives the estimation server's full request path (parse, canonicalize,
   cache, infer) through Server.handle_line, without sockets, so the
   numbers isolate the service overhead from transport. *)
let fig_serve_cache () =
  section "SV1: estimation service — cached vs uncached EST latency (TB 3-table joins)";
  let db = Lazy.force tb in
  let model = learn_prm ~budget_bytes:4_500 ~seed:cfg.seed db in
  let server = Serve.Server.create ~db ~socket:"(bench: transport-free)" () in
  ignore (Serve.Registry.register (Serve.Server.registry server) ~name:"default" model);
  let schema = Db.Database.schema db in
  let card t a =
    Db.Value.card (Db.Schema.attr (Db.Schema.find_table schema t) a).Db.Schema.domain
  in
  let lines =
    List.concat
      (List.init (card "contact" "Contype") (fun i ->
           List.concat
             (List.init (card "patient" "Age") (fun j ->
                  List.init (card "strain" "DrugResist") (fun k ->
                      Printf.sprintf
                        "EST c=contact, p=patient, s=strain; c.patient=p, p.strain=s; \
                         c.Contype=%d, p.Age=%d, s.DrugResist=%d"
                        i j k)))))
  in
  let run_pass () =
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun l ->
        let resp, _ = Serve.Server.handle_line server l in
        if not (Serve.Protocol.is_ok resp) then failwith resp)
      lines;
    (Unix.gettimeofday () -. t0) /. float_of_int (List.length lines) *. 1e6
  in
  let cold = run_pass () in
  let warm_reps = 5 in
  let warm =
    List.fold_left ( +. ) 0.0 (List.init warm_reps (fun _ -> run_pass ()))
    /. float_of_int warm_reps
  in
  Printf.printf "%d distinct EST queries, PRM model %dB\n" (List.length lines)
    (Prm.Model.size_bytes model);
  Printf.printf "uncached (cold cache): %8.1f us/query\n" cold;
  Printf.printf "cached   (warm cache): %8.1f us/query  (%.0fx speedup)\n" warm (cold /. warm);
  let stats, _ = Serve.Server.handle_line server "STATS" in
  let field k = Option.value ~default:"?" (Serve.Protocol.stats_field stats k) in
  Printf.printf "server stats: hits=%s misses=%s p50=%sus p99=%sus\n" (field "cache_hits")
    (field "cache_misses") (field "lat_p50_us") (field "lat_p99_us")

(* Artifacts (BENCH_*.json, the obs golden) always land at the repo root —
   the nearest ancestor directory holding dune-project — no matter what
   the working directory is, so CI finds and uploads them reliably. *)
let repo_root =
  lazy
    (let rec up dir =
       if Sys.file_exists (Filename.concat dir "dune-project") then dir
       else
         let parent = Filename.dirname dir in
         if parent = dir then Sys.getcwd () else up parent
     in
     up (Sys.getcwd ()))

let at_root file = Filename.concat (Lazy.force repo_root) file

(* Emit a flat string-to-value JSON object; numeric and boolean strings
   are written unquoted so downstream tooling can compare them. *)
let write_json file fields =
  let oc = open_out (at_root file) in
  output_string oc "{\n";
  List.iteri
    (fun i (k, v) ->
      let quoted = match float_of_string_opt v with Some _ -> v | None -> Printf.sprintf "%S" v in
      let quoted = if v = "true" || v = "false" then v else quoted in
      Printf.fprintf oc "  %S: %s%s\n" k quoted (if i = List.length fields - 1 then "" else ","))
    fields;
  output_string oc "}\n";
  close_out oc;
  Printf.printf "wrote %s\n" file

(* ---- inference core: optimized engine vs reference (BENCH_inference.json) ----------------- *)

(* Measures the three layers of the fast inference core against their
   pre-optimization baselines and emits the numbers as machine-readable
   JSON, so CI and regression tooling can diff them:

     - single-query VE (stride kernels + fused sum_out_product) vs the
       naive Reference engine;
     - ESTBATCH fan-out over the domain pool vs sequential EST on the same
       cold-cache workload;
     - parallel vs sequential candidate-move scoring in PRM search;
     - served EST latency percentiles, split into cache hits and misses. *)

let fig_inference () =
  section "I1: fast inference core — stride kernels, order cache, ESTBATCH fan-out";
  let json = ref [] in
  let jfield name v = json := (name, v) :: !json in

  (* --- layer 1+2: single-query VE, optimized vs Reference ------------------ *)
  let data = Bn.Data.of_table (Db.Database.table (Lazy.force census) "person") in
  let learn_tables budget =
    (Bn.Learn.learn
       ~config:
         { (Bn.Learn.default_config ~budget_bytes:budget) with Bn.Learn.kind = Bn.Cpd.Tables }
       data).Bn.Learn.bn
  in
  let time_ns reps f =
    ignore (f ());
    (* warm-up: fills the domain-local scratch pool *)
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (f ())
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps *. 1e9
  in
  (* Checked single-query measurement: optimized engine vs the naive
     Reference engine, bit-identity asserted first.  prob_of_evidence
     plans from scratch per call; schedule reuse is the plan IR's job and
     is measured by the "plan" figure. *)
  let ve_pair ~label ~reps ~ref_reps fs ev =
    let fast = Bn.Ve.prob_of_evidence fs ev in
    let naive = Bn.Ve.Reference.prob_of_evidence fs ev in
    if Int64.bits_of_float fast <> Int64.bits_of_float naive then
      failwith "inference bench: optimized VE diverged from Reference";
    let ve_ns = time_ns reps (fun () -> Bn.Ve.prob_of_evidence fs ev) in
    let ve_naive_ns = time_ns ref_reps (fun () -> Bn.Ve.Reference.prob_of_evidence fs ev) in
    Printf.printf "%-48s %10.0f ns   ref %10.0f ns   %.1fx\n" label ve_ns ve_naive_ns
      (ve_naive_ns /. ve_ns);
    (ve_ns, ve_naive_ns)
  in
  (* headline: a select+range query (the paper's Sec. 2.3 workload) on a
     64KB table-CPD census model — big CPTs keep the kernels busy *)
  let fs_large = Bn.Bn.factors (learn_tables 65_536) in
  let ev_range = [ (10, Db.Query.Eq 7); (0, Db.Query.Range (2, 9)) ] in
  let ve_ns, ve_naive_ns =
    ve_pair ~label:"VE eq+range query (64KB census BN)"
      ~reps:500 ~ref_reps:20 fs_large ev_range
  in
  (* secondary: an all-equality query on a paper-scale 4KB model *)
  let fs_small = Bn.Bn.factors (learn_tables 4_096) in
  let ev_eq = [ (10, Db.Query.Eq 7); (2, Db.Query.Eq 9); (0, Db.Query.Eq 5) ] in
  let ve_eq_ns, ve_eq_naive_ns =
    ve_pair ~label:"VE 3xEq query (4KB census BN)"
      ~reps:2_000 ~ref_reps:50 fs_small ev_eq
  in
  jfield "ve_single_ns" (Printf.sprintf "%.0f" ve_ns);
  jfield "ve_single_naive_ns" (Printf.sprintf "%.0f" ve_naive_ns);
  jfield "ve_speedup" (Printf.sprintf "%.2f" (ve_naive_ns /. ve_ns));
  jfield "ve_eq_small_ns" (Printf.sprintf "%.0f" ve_eq_ns);
  jfield "ve_eq_small_naive_ns" (Printf.sprintf "%.0f" ve_eq_naive_ns);
  jfield "ve_eq_small_speedup" (Printf.sprintf "%.2f" (ve_eq_naive_ns /. ve_eq_ns));

  (* --- layer 3a: ESTBATCH throughput vs sequential EST, cold caches -------- *)
  let db = Lazy.force tb in
  let model = learn_prm ~budget_bytes:4_500 ~seed:cfg.seed db in
  let schema = Db.Database.schema db in
  let card t a =
    Db.Value.card (Db.Schema.attr (Db.Schema.find_table schema t) a).Db.Schema.domain
  in
  let bodies =
    List.concat
      (List.init (card "contact" "Contype") (fun i ->
           List.concat
             (List.init (card "patient" "Age") (fun j ->
                  List.init (card "strain" "DrugResist") (fun k ->
                      Printf.sprintf
                        "c=contact, p=patient, s=strain; c.patient=p, p.strain=s; \
                         c.Contype=%d, p.Age=%d, s.DrugResist=%d"
                        i j k)))))
  in
  let n_queries = List.length bodies in
  let pool_domains = 4 in
  let throughput server lines =
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun l ->
        let resp, _ = Serve.Server.handle_line server l in
        if not (Serve.Protocol.is_ok resp) then failwith resp)
      lines;
    float_of_int n_queries /. (Unix.gettimeofday () -. t0)
  in
  let seq_server = Serve.Server.create ~db ~socket:"(bench: transport-free)" () in
  ignore (Serve.Registry.register (Serve.Server.registry seq_server) ~name:"default" model);
  let seq_qps = throughput seq_server (List.map (fun b -> "EST " ^ b) bodies) in
  let batch_server =
    Serve.Server.create ~db ~pool_size:pool_domains ~socket:"(bench: transport-free)" ()
  in
  ignore (Serve.Registry.register (Serve.Server.registry batch_server) ~name:"default" model);
  let rec chunks n = function
    | [] -> []
    | xs ->
      let rec take k = function
        | x :: rest when k > 0 ->
          let hd, tl = take (k - 1) rest in
          (x :: hd, tl)
        | rest -> ([], rest)
      in
      let hd, tl = take n xs in
      hd :: chunks n tl
  in
  let batch_lines =
    List.map (fun c -> "ESTBATCH " ^ String.concat " || " c) (chunks 32 bodies)
  in
  let batch_qps = throughput batch_server batch_lines in
  Serve.Server.shutdown_pool batch_server;
  Printf.printf "\n%d distinct TB join queries, cold caches, PRM %dB\n" n_queries
    (Prm.Model.size_bytes model);
  Printf.printf "sequential EST:             %8.0f queries/s\n" seq_qps;
  Printf.printf "ESTBATCH (pool of %d, x32): %8.0f queries/s  (%.2fx)\n" pool_domains
    batch_qps (batch_qps /. seq_qps);
  jfield "est_queries" (string_of_int n_queries);
  jfield "pool_domains" (string_of_int pool_domains);
  jfield "host_cores" (string_of_int (Domain.recommended_domain_count ()));
  jfield "est_seq_qps" (Printf.sprintf "%.1f" seq_qps);
  jfield "estbatch_qps" (Printf.sprintf "%.1f" batch_qps);
  jfield "estbatch_throughput_ratio" (Printf.sprintf "%.2f" (batch_qps /. seq_qps));

  (* --- layer 3b: parallel candidate-move scoring in PRM search ------------- *)
  let learn_time workers =
    time (fun () ->
        Prm.Learn.learn
          ~config:
            { (Prm.Learn.default_config ~budget_bytes:2_048) with
              Prm.Learn.seed = cfg.seed; workers }
          db)
  in
  let r_seq, t_seq = learn_time 1 in
  let r_par, t_par = learn_time pool_domains in
  if r_seq.Prm.Learn.loglik <> r_par.Prm.Learn.loglik then
    failwith "inference bench: parallel search diverged from sequential";
  Printf.printf "\nPRM structure search (TB, 2KB budget):\n";
  Printf.printf "sequential scoring: %6.2f s\n" t_seq;
  Printf.printf "parallel scoring:   %6.2f s  (%d workers, %.2fx, same trajectory)\n" t_par
    pool_domains (t_seq /. t_par);
  jfield "learn_seq_s" (Printf.sprintf "%.3f" t_seq);
  jfield "learn_par_s" (Printf.sprintf "%.3f" t_par);
  jfield "learn_speedup" (Printf.sprintf "%.2f" (t_seq /. t_par));
  jfield "learn_trajectory_identical" "true";

  (* Parallel-ratio gates.  Domain fan-out cannot beat sequential work on
     a single-core host — the pool only adds scheduling overhead there, so
     ratios below 1.0 are the expected physics, not a regression.  The
     ratios are recorded unconditionally (above) but only gated when the
     host has cores to parallelize over; the JSON records which mode
     applied so a diff across hosts reads honestly. *)
  let host_cores = Domain.recommended_domain_count () in
  if host_cores <= 1 then begin
    Printf.printf "\nparallel-ratio gates: skipped (single-core host)\n";
    jfield "parallel_ratio_gates" "skipped_single_core"
  end
  else begin
    jfield "parallel_ratio_gates" "enforced";
    let failures = ref [] in
    let check name ok detail =
      Printf.printf "%-46s %-4s %s\n" name (if ok then "ok" else "FAIL") detail;
      if not ok then failures := name :: !failures
    in
    (* lenient floors: a 2-core CI runner only has one spare core *)
    check "estbatch throughput vs sequential >= 0.6" (batch_qps /. seq_qps >= 0.6)
      (Printf.sprintf "%.2fx on %d cores" (batch_qps /. seq_qps) host_cores);
    check "parallel learn vs sequential >= 0.6" (t_seq /. t_par >= 0.6)
      (Printf.sprintf "%.2fx on %d cores" (t_seq /. t_par) host_cores);
    if !failures <> [] then begin
      Printf.eprintf "inference checks FAILED: %s\n"
        (String.concat ", " (List.rev !failures));
      exit 1
    end
  end;

  (* --- served latency percentiles, hits vs misses --------------------------- *)
  let lat_server = Serve.Server.create ~db ~socket:"(bench: transport-free)" () in
  ignore (Serve.Registry.register (Serve.Server.registry lat_server) ~name:"default" model);
  let pass () =
    Array.of_list
      (List.map
         (fun b ->
           let t0 = Unix.gettimeofday () in
           let resp, _ = Serve.Server.handle_line lat_server ("EST " ^ b) in
           if not (Serve.Protocol.is_ok resp) then failwith resp;
           (Unix.gettimeofday () -. t0) *. 1e6)
         bodies)
  in
  let miss_lat = pass () in
  let hit_lat = pass () in
  let p a q = Util.Arrayx.percentile a q in
  Printf.printf "\nserved EST latency: miss p50 %.0fus p99 %.0fus | hit p50 %.1fus p99 %.1fus\n"
    (p miss_lat 50.0) (p miss_lat 99.0) (p hit_lat 50.0) (p hit_lat 99.0);
  jfield "est_miss_p50_us" (Printf.sprintf "%.1f" (p miss_lat 50.0));
  jfield "est_miss_p99_us" (Printf.sprintf "%.1f" (p miss_lat 99.0));
  jfield "est_hit_p50_us" (Printf.sprintf "%.1f" (p hit_lat 50.0));
  jfield "est_hit_p99_us" (Printf.sprintf "%.1f" (p hit_lat 99.0));

  (* --- emit ----------------------------------------------------------------- *)
  write_json "BENCH_inference.json" (List.rev !json)

(* ---- plan IR: compile once, bind many (BENCH_plan.json) ----------------------------------- *)

(* Validates the compiled-plan pipeline's acceptance bars and emits
   BENCH_plan.json:

     - Plan.compile cost (closure + query-eval factors + seeded schedule)
       vs the per-binding Plan.execute cost on the TB 3-table join
       skeleton; the gate is that a warm execute (schedule-memo hit) is
       no slower than recompiling the plan on every request;
     - bit-identity of the compile-once path against the one-shot
       Estimate.estimate path over every binding of the skeleton;
     - served EST throughput with a cold vs warm plan cache — the
       estimate cache is cleared between passes so the warm pass still
       runs inference and isolates plan reuse — plus the plan-cache
       counters reported by STATS. *)

let fig_plan () =
  section "P1: plan IR — compile once, bind many, plan-cache-warm serving";
  let json = ref [] in
  let jfield name v = json := (name, v) :: !json in
  let failures = ref [] in
  let check name ok detail =
    Printf.printf "%-46s %-4s %s\n" name (if ok then "ok" else "FAIL") detail;
    if not ok then failures := name :: !failures
  in
  let db = Lazy.force tb in
  let model = learn_prm ~budget_bytes:4_500 ~seed:cfg.seed db in
  let sizes = Prm.Estimate.sizes_of_db db in
  let schema = Db.Database.schema db in
  let card t a =
    Db.Value.card (Db.Schema.attr (Db.Schema.find_table schema t) a).Db.Schema.domain
  in
  let triples =
    List.concat
      (List.init (card "contact" "Contype") (fun i ->
           List.concat
             (List.init (card "patient" "Age") (fun j ->
                  List.init (card "strain" "DrugResist") (fun k -> (i, j, k))))))
  in
  let query_of (i, j, k) =
    Db.Query.with_selects tb_skeleton3
      [ Db.Query.eq "c" "Contype" i; Db.Query.eq "p" "Age" j;
        Db.Query.eq "s" "DrugResist" k ]
  in
  let body (i, j, k) =
    Printf.sprintf
      "c=contact, p=patient, s=strain; c.patient=p, p.strain=s; \
       c.Contype=%d, p.Age=%d, s.DrugResist=%d"
      i j k
  in
  let queries = List.map query_of triples in
  let n = List.length queries in
  let q0 = List.hd queries in
  let time_us reps f =
    ignore (f ());
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (f ())
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps *. 1e6
  in

  (* --- compile once, bind many vs recompile per request -------------------- *)
  let compile_us = time_us 50 (fun () -> Plan.compile model q0) in
  let plan = Plan.compile model q0 in
  let divergent =
    List.filter
      (fun q ->
        Int64.bits_of_float (Plan.estimate plan ~sizes q)
        <> Int64.bits_of_float (Prm.Estimate.estimate model ~sizes q))
      queries
  in
  check "compile-once bit-identical to one-shot" (divergent = [])
    (Printf.sprintf "%d/%d bindings" (n - List.length divergent) n);
  let qarr = Array.of_list queries in
  let idx = ref 0 in
  let next () =
    let q = qarr.(!idx mod n) in
    incr idx;
    q
  in
  let warm_us = time_us (4 * n) (fun () -> Plan.estimate plan ~sizes (next ())) in
  let recompile_us =
    time_us n (fun () ->
        let q = next () in
        Plan.estimate (Plan.compile model q) ~sizes q)
  in
  let sched_hits, sched_misses = Plan.schedule_stats plan in
  Printf.printf "compile %.1fus | warm execute %.2fus | recompile+execute %.2fus (%.1fx)\n"
    compile_us warm_us recompile_us (recompile_us /. warm_us);
  Printf.printf "schedule memo on the shared plan: %d hits / %d misses\n" sched_hits
    sched_misses;
  check "warm execute <= per-request recompile" (warm_us <= recompile_us)
    (Printf.sprintf "%.2fus vs %.2fus" warm_us recompile_us);
  check "schedule memo reused across bindings" (sched_hits > 0 && sched_misses = 0)
    (Printf.sprintf "%d/%d" sched_hits sched_misses);
  jfield "n_bindings" (string_of_int n);
  jfield "plan_compile_us" (Printf.sprintf "%.2f" compile_us);
  jfield "execute_warm_us" (Printf.sprintf "%.3f" warm_us);
  jfield "recompile_us" (Printf.sprintf "%.3f" recompile_us);
  jfield "compile_once_speedup" (Printf.sprintf "%.2f" (recompile_us /. warm_us));
  jfield "bit_identical" (if divergent = [] then "true" else "false");
  jfield "sched_memo_hits" (string_of_int sched_hits);
  jfield "sched_memo_misses" (string_of_int sched_misses);

  (* --- served throughput: cold vs warm plan cache --------------------------- *)
  let server = Serve.Server.create ~db ~socket:"(bench: transport-free)" () in
  ignore (Serve.Registry.register (Serve.Server.registry server) ~name:"default" model);
  let lines = List.map (fun tr -> "EST " ^ body tr) triples in
  let run_pass () =
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun l ->
        let resp, _ = Serve.Server.handle_line server l in
        if not (Serve.Protocol.is_ok resp) then failwith resp)
      lines;
    float_of_int n /. (Unix.gettimeofday () -. t0)
  in
  let cold_qps = run_pass () in
  (* drop the estimates but keep the compiled plans: the second pass runs
     full inference against a warm plan cache *)
  Serve.Lru.clear (Serve.Server.cache server);
  let warm_qps = run_pass () in
  let hits, misses, _evictions = Serve.Plan_cache.stats (Serve.Server.plan_cache server) in
  let stats, _ = Serve.Server.handle_line server "STATS" in
  let field k = Option.value ~default:"?" (Serve.Protocol.stats_field stats k) in
  Printf.printf "\nserved EST over %d bindings: cold plans %8.0f q/s | warm plans %8.0f q/s\n"
    n cold_qps warm_qps;
  Printf.printf "plan cache: hits=%s misses=%s entries=%s\n" (field "plan_cache_hits")
    (field "plan_cache_misses") (field "plan_cache_entries");
  check "plan cache hit on every repeat request" (hits = (2 * n) - 1 && misses = 1)
    (Printf.sprintf "%d hits / %d misses" hits misses);
  check "STATS reports the plan cache" (field "plan_cache_hits" = string_of_int hits) "";
  jfield "serve_cold_qps" (Printf.sprintf "%.1f" cold_qps);
  jfield "serve_warmplan_qps" (Printf.sprintf "%.1f" warm_qps);
  jfield "plan_cache_hits" (string_of_int hits);
  jfield "plan_cache_misses" (string_of_int misses);
  jfield "plan_cache_entries" (string_of_int (Serve.Plan_cache.length (Serve.Server.plan_cache server)));

  write_json "BENCH_plan.json" (List.rev !json);
  if !failures <> [] then begin
    Printf.eprintf "plan checks FAILED: %s\n" (String.concat ", " (List.rev !failures));
    exit 1
  end

(* ---- bytecode executor + binary wire frames (BENCH_exec.json) ---------------------------- *)

(* Gates the zero-allocation bytecode executor (Selest_plan.Exec) and the
   binary EST wire frames:
     - bytecode warm execute bit-identical to Ve.Reference (and to the
       generic execute it replaces) over every binding of the TB skeleton;
     - >= 5x speedup over the generic stride/odometer path;
     - zero minor-heap allocation across N warm load+run pairs
       (Gc.minor_words delta = 0) — the arena-reset contract;
     - binary-frame EST throughput at least matching the text protocol on
       the same warm-cache workload, with bit-identical answers (both
       transport-free: handle_frame vs handle_line). *)

let fig_exec () =
  section "X1: bytecode executor — zero-alloc warm estimates, binary wire frames";
  let json = ref [] in
  let jfield name v = json := (name, v) :: !json in
  let failures = ref [] in
  let check name ok detail =
    Printf.printf "%-46s %-4s %s\n" name (if ok then "ok" else "FAIL") detail;
    if not ok then failures := name :: !failures
  in
  let db = Lazy.force tb in
  let model = learn_prm ~budget_bytes:4_500 ~seed:cfg.seed db in
  let schema = Db.Database.schema db in
  let card t a =
    Db.Value.card (Db.Schema.attr (Db.Schema.find_table schema t) a).Db.Schema.domain
  in
  let triples =
    List.concat
      (List.init (card "contact" "Contype") (fun i ->
           List.concat
             (List.init (card "patient" "Age") (fun j ->
                  List.init (card "strain" "DrugResist") (fun k -> (i, j, k))))))
  in
  let query_of (i, j, k) =
    Db.Query.with_selects tb_skeleton3
      [ Db.Query.eq "c" "Contype" i; Db.Query.eq "p" "Age" j;
        Db.Query.eq "s" "DrugResist" k ]
  in
  let body (i, j, k) =
    Printf.sprintf
      "c=contact, p=patient, s=strain; c.patient=p, p.strain=s; \
       c.Contype=%d, p.Age=%d, s.DrugResist=%d"
      i j k
  in
  let queries = List.map query_of triples in
  let n = List.length queries in
  let q0 = List.hd queries in
  let time_us reps f =
    ignore (f ());
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (f ())
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps *. 1e6
  in
  let plan = Plan.compile model q0 in
  let bindings = Array.of_list (List.map (Plan.bind plan) queries) in

  (* --- gate 1: bit-identity vs Ve.Reference and the generic engine ---------- *)
  let factors = Plan.factors plan in
  let jev = Plan.join_evidence plan in
  let divergent_ref = ref 0 and divergent_gen = ref 0 in
  Array.iter
    (fun b ->
      let byte = Plan.execute plan b in
      let oracle = Bn.Ve.Reference.prob_of_evidence factors (b @ jev) in
      let generic = Plan.execute_generic plan b in
      if Int64.bits_of_float byte <> Int64.bits_of_float oracle then incr divergent_ref;
      if Int64.bits_of_float byte <> Int64.bits_of_float generic then incr divergent_gen)
    bindings;
  check "bytecode bit-identical to Ve.Reference" (!divergent_ref = 0)
    (Printf.sprintf "%d/%d bindings" (n - !divergent_ref) n);
  check "bytecode bit-identical to generic execute" (!divergent_gen = 0)
    (Printf.sprintf "%d/%d bindings" (n - !divergent_gen) n);
  jfield "n_bindings" (string_of_int n);
  jfield "bit_identical_reference" (if !divergent_ref = 0 then "true" else "false");
  jfield "bit_identical_generic" (if !divergent_gen = 0 then "true" else "false");

  (* --- gate 2: warm execute speedup over the generic path ------------------- *)
  let idx = ref 0 in
  let bnext () =
    let b = bindings.(!idx mod n) in
    incr idx;
    b
  in
  let byte_us = time_us (16 * n) (fun () -> Plan.execute plan (bnext ())) in
  let generic_us = time_us (4 * n) (fun () -> Plan.execute_generic plan (bnext ())) in
  let speedup = generic_us /. byte_us in
  Printf.printf "warm execute: bytecode %.3fus | generic %.3fus (%.1fx)\n" byte_us
    generic_us speedup;
  check "bytecode >= 5x generic warm execute" (speedup >= 5.0)
    (Printf.sprintf "%.3fus vs %.3fus (%.1fx)" byte_us generic_us speedup);
  jfield "execute_bytecode_us" (Printf.sprintf "%.4f" byte_us);
  jfield "execute_generic_us" (Printf.sprintf "%.4f" generic_us);
  jfield "bytecode_speedup" (Printf.sprintf "%.2f" speedup);

  (* --- gate 3: zero minor-heap allocation per warm request ------------------ *)
  (match Plan.program_for plan bindings.(0) with
  | None -> check "compiled program available" false "program_for returned None"
  | Some prog ->
    let st = Selest_plan.Exec.state_for prog in
    (match Selest_plan.Exec.load prog st bindings.(0) with
    | `Ok -> Selest_plan.Exec.run st
    | `No_match | `Contradiction -> failwith "exec: compile-query binding did not load");
    let reps = 10_000 in
    let b0 = bindings.(0) in
    let w0 = Gc.minor_words () in
    for _ = 1 to reps do
      ignore (Selest_plan.Exec.load prog st b0);
      Selest_plan.Exec.run st
    done;
    let w1 = Gc.minor_words () in
    let delta = w1 -. w0 in
    check "zero minor-heap allocation per warm request" (delta = 0.0)
      (Printf.sprintf "%.0f words / %d requests" delta reps);
    jfield "warm_minor_words_delta" (Printf.sprintf "%.0f" delta);
    jfield "alloc_gate_requests" (string_of_int reps);
    jfield "program_steps" (string_of_int (Selest_plan.Exec.n_steps prog));
    jfield "arena_entries" (string_of_int (Selest_plan.Exec.arena_entries prog)));

  (* --- gate 4: binary frames vs text protocol, transport-free --------------- *)
  let server = Serve.Server.create ~db ~socket:"(bench: transport-free)" () in
  ignore (Serve.Registry.register (Serve.Server.registry server) ~name:"default" model);
  let lines = List.map (fun tr -> "EST " ^ body tr) triples in
  let frames =
    List.map
      (fun tr ->
        let encoded =
          Serve.Protocol.Bin.encode_request
            (Serve.Protocol.Bin.Best { model = None; body = body tr })
        in
        (* handle_frame takes the payload with the length prefix stripped *)
        Bytes.of_string (String.sub encoded 4 (String.length encoded - 4)))
      triples
  in
  (* one warm-up pass fills the estimate cache, then certify that binary
     and text answers carry bit-identical floats *)
  let mismatches = ref 0 in
  List.iter2
    (fun l fr ->
      let resp, _ = Serve.Server.handle_line server l in
      if not (Serve.Protocol.is_ok resp) then failwith resp;
      let text_v = float_of_string (Serve.Protocol.payload resp) in
      let out = Serve.Server.handle_frame server fr in
      match
        Serve.Protocol.Bin.decode_response
          (Bytes.of_string (String.sub out 4 (String.length out - 4)))
      with
      | Ok (Serve.Protocol.Bin.Bvalue v) ->
        if Int64.bits_of_float v <> Int64.bits_of_float text_v then incr mismatches
      | Ok _ | Error _ -> failwith "bin: unexpected response to EST frame")
    lines frames;
  check "binary answers bit-identical to text" (!mismatches = 0)
    (Printf.sprintf "%d/%d" (n - !mismatches) n);
  let text_pass () =
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun l ->
        let resp, _ = Serve.Server.handle_line server l in
        if not (Serve.Protocol.is_ok resp) then failwith resp)
      lines;
    float_of_int n /. (Unix.gettimeofday () -. t0)
  in
  let bin_pass () =
    let t0 = Unix.gettimeofday () in
    List.iter (fun fr -> ignore (Serve.Server.handle_frame server fr)) frames;
    float_of_int n /. (Unix.gettimeofday () -. t0)
  in
  (* best-of to damp scheduler noise, same as the obs methodology *)
  let best f =
    let m = ref 0.0 in
    for _ = 1 to 5 do
      let v = f () in
      if v > !m then m := v
    done;
    !m
  in
  let text_qps = best text_pass in
  let bin_qps = best bin_pass in
  Printf.printf "served EST (warm cache): text %8.0f q/s | binary %8.0f q/s (%.2fx)\n"
    text_qps bin_qps (bin_qps /. text_qps);
  check "binary EST QPS >= text QPS" (bin_qps >= text_qps)
    (Printf.sprintf "%.0f vs %.0f q/s" bin_qps text_qps);
  jfield "serve_text_qps" (Printf.sprintf "%.1f" text_qps);
  jfield "serve_bin_qps" (Printf.sprintf "%.1f" bin_qps);
  jfield "bin_over_text" (Printf.sprintf "%.3f" (bin_qps /. text_qps));

  write_json "BENCH_exec.json" (List.rev !json);
  if !failures <> [] then begin
    Printf.eprintf "exec checks FAILED: %s\n" (String.concat ", " (List.rev !failures));
    exit 1
  end

(* ---- allocation-free request front-end (BENCH_frontend.json) ----------------------------- *)

(* Gates the request front-end: (1) the zero-copy parse + canon + hash
   pipeline answers exactly like the reference split/Qparse/validate/
   normalize pipeline and beats it >= 2x on a warm miss; (2) range and
   set predicates lower into the bytecode executor bit-identically to
   the generic engine and Ve.Reference; (3) a warm served EST allocates
   zero minor-heap words end to end — socket read to answer write — in
   both text and binary framing, driven through the true shard
   message-extraction loop (Shard.Loopback); (4) transport-free served
   QPS holds the BENCH_exec.json baselines. *)

let read_json_field file field =
  match open_in (at_root file) with
  | exception Sys_error _ -> None
  | ic ->
    let needle = Printf.sprintf "%S:" field in
    let rec scan () =
      match input_line ic with
      | exception End_of_file ->
        close_in ic;
        None
      | line -> (
        match String.index_opt line ':' with
        | Some _ when String.length (String.trim line) > String.length needle
                      && String.sub (String.trim line) 0 (String.length needle) = needle ->
          let v = String.trim line in
          let v = String.sub v (String.length needle) (String.length v - String.length needle) in
          let v = String.trim v in
          let v =
            if String.length v > 0 && v.[String.length v - 1] = ',' then
              String.sub v 0 (String.length v - 1)
            else v
          in
          close_in ic;
          float_of_string_opt (String.trim v)
        | _ -> scan ())
    in
    scan ()

let fig_frontend () =
  section "F1: allocation-free front-end — zero-copy parse, hash keys, range/set bytecode";
  let json = ref [] in
  let jfield name v = json := (name, v) :: !json in
  let failures = ref [] in
  let check name ok detail =
    Printf.printf "%-46s %-4s %s\n" name (if ok then "ok" else "FAIL") detail;
    if not ok then failures := name :: !failures
  in
  let db = Lazy.force tb in
  let model = learn_prm ~budget_bytes:4_500 ~seed:cfg.seed db in
  let schema = Db.Database.schema db in
  let card t a =
    Db.Value.card (Db.Schema.attr (Db.Schema.find_table schema t) a).Db.Schema.domain
  in
  let triples =
    List.concat
      (List.init (card "contact" "Contype") (fun i ->
           List.concat
             (List.init (card "patient" "Age") (fun j ->
                  List.init (card "strain" "DrugResist") (fun k -> (i, j, k))))))
  in
  let body (i, j, k) =
    Printf.sprintf
      "c=contact, p=patient, s=strain; c.patient=p, p.strain=s; \
       c.Contype=%d, p.Age=%d, s.DrugResist=%d"
      i j k
  in
  let bodies = Array.of_list (List.map body triples) in
  let n = Array.length bodies in

  (* --- gate 1: zero-copy pipeline ≡ reference pipeline, >= 2x faster -------- *)
  let scratch = Db.Squery.create (Db.Squery.Symtab.of_schema schema) in
  let bufs = Array.map Bytes.of_string bodies in
  let reference_front b =
    let tvars, joins, selects = Serve.Protocol.split_sections b in
    let q = Db.Qparse.parse db ~tvars ~joins ~selects () in
    Db.Exec.validate db q;
    (* Canon.key normalizes internally — the old front-end's whole
       miss-path key derivation in one call *)
    Serve.Canon.key q
  in
  let zero_copy_front buf =
    Db.Squery.parse scratch buf ~off:0 ~len:(Bytes.length buf);
    Db.Squery.canon scratch;
    Db.Squery.hash scratch
  in
  let divergent = ref 0 in
  Array.iteri
    (fun i b ->
      let tvars, joins, selects = Serve.Protocol.split_sections b in
      let q = Db.Qparse.parse db ~tvars ~joins ~selects () in
      Db.Exec.validate db q;
      let q = Serve.Canon.normalize q in
      Db.Squery.parse scratch bufs.(i) ~off:0 ~len:(Bytes.length bufs.(i));
      Db.Squery.canon scratch;
      if Db.Squery.to_query scratch <> q then incr divergent)
    bodies;
  check "zero-copy parse ≡ reference pipeline" (!divergent = 0)
    (Printf.sprintf "%d/%d bodies" (n - !divergent) n);
  jfield "parse_agreement" (if !divergent = 0 then "true" else "false");
  let time_front reps f =
    f ();
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      f ()
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int (reps * n) *. 1e6
  in
  let ref_us =
    time_front 20 (fun () ->
        Array.iter (fun b -> ignore (Sys.opaque_identity (reference_front b))) bodies)
  in
  let zc_us =
    time_front 20 (fun () ->
        Array.iter (fun b -> ignore (Sys.opaque_identity (zero_copy_front b))) bufs)
  in
  let front_speedup = ref_us /. zc_us in
  Printf.printf "warm-miss front-end: reference %.3fus | zero-copy %.3fus (%.1fx)\n"
    ref_us zc_us front_speedup;
  check "zero-copy front-end >= 2x reference" (front_speedup >= 2.0)
    (Printf.sprintf "%.3fus vs %.3fus (%.1fx)" zc_us ref_us front_speedup);
  jfield "frontend_reference_us" (Printf.sprintf "%.4f" ref_us);
  jfield "frontend_zero_copy_us" (Printf.sprintf "%.4f" zc_us);
  jfield "frontend_speedup" (Printf.sprintf "%.2f" front_speedup);

  (* --- gate 2: range/set predicates through the bytecode executor ----------- *)
  let rng = Util.Rng.create (cfg.seed lxor 0xF0E) in
  let cc = card "contact" "Contype"
  and ca = card "patient" "Age"
  and cd = card "strain" "DrugResist" in
  let sel tv attr cardv =
    match Util.Rng.int rng 3 with
    | 0 -> Db.Query.eq tv attr (Util.Rng.int rng cardv)
    | 1 ->
      let a = Util.Rng.int rng cardv and b = Util.Rng.int rng cardv in
      Db.Query.range tv attr (min a b) (max a b)
    | _ ->
      let k = 1 + Util.Rng.int rng (min 3 cardv) in
      Db.Query.in_set tv attr (List.init k (fun _ -> Util.Rng.int rng cardv))
  in
  let n_masked = 200 in
  let masked_queries =
    List.init n_masked (fun _ ->
        Db.Query.with_selects tb_skeleton3
          [ sel "c" "Contype" cc; sel "p" "Age" ca; sel "s" "DrugResist" cd ])
  in
  let mplan = Plan.compile model (List.hd masked_queries) in
  let mfactors = Plan.factors mplan and mjev = Plan.join_evidence mplan in
  let div_gen = ref 0 and div_ref = ref 0 in
  List.iter
    (fun q ->
      let b = Plan.bind mplan q in
      let byte = Plan.execute mplan b in
      let generic = Plan.execute_generic mplan b in
      let oracle = Bn.Ve.Reference.prob_of_evidence mfactors (b @ mjev) in
      if Int64.bits_of_float byte <> Int64.bits_of_float generic then incr div_gen;
      if Int64.bits_of_float byte <> Int64.bits_of_float oracle then incr div_ref)
    masked_queries;
  check "range/set bytecode ≡ generic engine" (!div_gen = 0)
    (Printf.sprintf "%d/%d queries" (n_masked - !div_gen) n_masked);
  check "range/set bytecode ≡ Ve.Reference" (!div_ref = 0)
    (Printf.sprintf "%d/%d queries" (n_masked - !div_ref) n_masked);
  jfield "masked_queries" (string_of_int n_masked);
  jfield "masked_bit_identical_generic" (if !div_gen = 0 then "true" else "false");
  jfield "masked_bit_identical_reference" (if !div_ref = 0 then "true" else "false");

  (* --- gate 3: zero allocation end to end over a real socket ---------------- *)
  let server = Serve.Server.create ~db ~socket:"(bench: loopback)" () in
  ignore (Serve.Registry.register (Serve.Server.registry server) ~name:"default" model);
  let on_line_fast, on_frame_fast = Serve.Server.fast_handlers server ~shard:0 in
  let on_line l = Serve.Server.handle_line server l in
  let on_frame p = Serve.Server.handle_frame server p in
  let client, srv = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let conn = Serve.Shard.Loopback.connect srv in
  let step () =
    Serve.Shard.Loopback.step conn ~on_line_fast ~on_frame_fast ~on_line ~on_frame
  in
  let rbuf = Bytes.create 65536 in
  let drain () = ignore (Unix.read client rbuf 0 (Bytes.length rbuf)) in
  let requests = Array.map (fun b -> "EST " ^ b ^ "\n") bodies in
  let round () =
    for i = 0 to n - 1 do
      let r = Array.unsafe_get requests i in
      ignore (Unix.write_substring client r 0 (String.length r));
      step ();
      drain ()
    done
  in
  (* first pass fills the cache through the fast path's miss handling *)
  round ();
  let alloc_reps = 4 in
  let w0 = Gc.minor_words () in
  for _ = 1 to alloc_reps do
    round ()
  done;
  let w1 = Gc.minor_words () in
  let text_delta = w1 -. w0 in
  check "warm text EST round trip allocates zero words" (text_delta = 0.0)
    (Printf.sprintf "%.0f words / %d round trips" text_delta (alloc_reps * n));
  jfield "text_warm_minor_words_delta" (Printf.sprintf "%.0f" text_delta);
  let best f =
    let m = ref 0.0 in
    for _ = 1 to 5 do
      let v = f () in
      if v > !m then m := v
    done;
    !m
  in
  let loop_text_qps =
    best (fun () ->
        let t0 = Unix.gettimeofday () in
        round ();
        float_of_int n /. (Unix.gettimeofday () -. t0))
  in
  (* binary framing over the same connection *)
  ignore (Unix.write_substring client "BIN\n" 0 4);
  step ();
  drain ();
  let frames =
    Array.map
      (fun b ->
        Serve.Protocol.Bin.encode_request
          (Serve.Protocol.Bin.Best { model = None; body = b }))
      bodies
  in
  let bround () =
    for i = 0 to n - 1 do
      let f = Array.unsafe_get frames i in
      ignore (Unix.write_substring client f 0 (String.length f));
      step ();
      drain ()
    done
  in
  bround ();
  let w0 = Gc.minor_words () in
  for _ = 1 to alloc_reps do
    bround ()
  done;
  let w1 = Gc.minor_words () in
  let bin_delta = w1 -. w0 in
  check "warm binary EST round trip allocates zero words" (bin_delta = 0.0)
    (Printf.sprintf "%.0f words / %d round trips" bin_delta (alloc_reps * n));
  jfield "bin_warm_minor_words_delta" (Printf.sprintf "%.0f" bin_delta);
  jfield "alloc_gate_round_trips" (string_of_int (alloc_reps * n));
  let loop_bin_qps =
    best (fun () ->
        let t0 = Unix.gettimeofday () in
        bround ();
        float_of_int n /. (Unix.gettimeofday () -. t0))
  in
  Printf.printf "loopback EST (warm): text %8.0f q/s | binary %8.0f q/s\n"
    loop_text_qps loop_bin_qps;
  jfield "loopback_text_qps" (Printf.sprintf "%.1f" loop_text_qps);
  jfield "loopback_bin_qps" (Printf.sprintf "%.1f" loop_bin_qps);
  Unix.close client;
  (try Unix.close srv with Unix.Unix_error _ -> ());

  (* --- gate 4: transport-free QPS holds the exec-figure baselines ----------- *)
  let lines = Array.map (fun b -> "EST " ^ b) bodies in
  let payloads =
    Array.map
      (fun f -> Bytes.of_string (String.sub f 4 (String.length f - 4)))
      frames
  in
  Array.iter (fun l -> ignore (Serve.Server.handle_line server l)) lines;
  let text_qps =
    best (fun () ->
        let t0 = Unix.gettimeofday () in
        Array.iter (fun l -> ignore (Serve.Server.handle_line server l)) lines;
        float_of_int n /. (Unix.gettimeofday () -. t0))
  in
  let bin_qps =
    best (fun () ->
        let t0 = Unix.gettimeofday () in
        Array.iter (fun p -> ignore (Serve.Server.handle_frame server p)) payloads;
        float_of_int n /. (Unix.gettimeofday () -. t0))
  in
  Printf.printf "transport-free EST (warm): text %8.0f q/s | binary %8.0f q/s\n"
    text_qps bin_qps;
  jfield "serve_text_qps" (Printf.sprintf "%.1f" text_qps);
  jfield "serve_bin_qps" (Printf.sprintf "%.1f" bin_qps);
  (* 10% tolerance absorbs scheduler noise between the two figures' runs *)
  (match read_json_field "BENCH_exec.json" "serve_text_qps" with
  | None -> Printf.printf "BENCH_exec.json absent — QPS baseline check skipped\n"
  | Some base_text ->
    check "text QPS holds the exec baseline" (text_qps >= 0.9 *. base_text)
      (Printf.sprintf "%.0f vs baseline %.0f q/s" text_qps base_text);
    jfield "baseline_text_qps" (Printf.sprintf "%.1f" base_text));
  (match read_json_field "BENCH_exec.json" "serve_bin_qps" with
  | None -> ()
  | Some base_bin ->
    check "binary QPS holds the exec baseline" (bin_qps >= 0.9 *. base_bin)
      (Printf.sprintf "%.0f vs baseline %.0f q/s" bin_qps base_bin);
    jfield "baseline_bin_qps" (Printf.sprintf "%.1f" base_bin));

  write_json "BENCH_frontend.json" (List.rev !json);
  if !failures <> [] then begin
    Printf.eprintf "frontend checks FAILED: %s\n"
      (String.concat ", " (List.rev !failures));
    exit 1
  end

(* ---- incremental structure learning (BENCH_learn.json) ----------------------------------- *)

(* Measures the incremental hill-climber (delta move cache + Depgraph
   legality oracle + count-once sufficient statistics) against the
   retained naive reference climber on the TB database, and certifies the
   two bit-identical: same accepted-move trajectory, same serialized
   model.  Gates: trajectory_identical must hold and the incremental
   climber must be no slower than the reference. *)

let fig_learn () =
  section "L1: incremental structure learning — delta move cache, count-once suffstats";
  let json = ref [] in
  let jfield name v = json := (name, v) :: !json in
  let failures = ref [] in
  let check name ok detail =
    Printf.printf "%-46s %-4s %s\n" name (if ok then "ok" else "FAIL") detail;
    if not ok then failures := name :: !failures
  in
  let db = Lazy.force tb in
  let budget = 4_500 in
  let config =
    {
      (Prm.Learn.default_config ~budget_bytes:budget) with
      Prm.Learn.seed = cfg.seed;
      random_restarts = 4;
      random_walk_length = 6;
    }
  in
  Prob.Counts.reset_total_scans ();
  let r_base, t_base = time (fun () -> Prm.Learn.learn_reference ~config db) in
  let scans_base = Prob.Counts.total_scans () in
  Prob.Counts.reset_total_scans ();
  let r_fast, t_fast = time (fun () -> Prm.Learn.learn ~config db) in
  let scans_fast = Prob.Counts.total_scans () in
  let fingerprint r =
    Util.Sexp.to_string (Prm.Serialize.to_sexp r.Prm.Learn.model)
  in
  let identical =
    r_base.Prm.Learn.trajectory = r_fast.Prm.Learn.trajectory
    && fingerprint r_base = fingerprint r_fast
    && r_base.Prm.Learn.bytes = r_fast.Prm.Learn.bytes
    && r_base.Prm.Learn.loglik = r_fast.Prm.Learn.loglik
  in
  let speedup = t_base /. t_fast in
  Printf.printf "PRM structure search (TB, %dB budget, %d accepted moves):\n" budget
    r_fast.Prm.Learn.iterations;
  Printf.printf "reference climber:   %6.2f s  (%d suffstat scans)\n" t_base scans_base;
  Printf.printf "incremental climber: %6.2f s  (%d suffstat scans, %.1fx)\n" t_fast
    scans_fast speedup;
  check "trajectory identical" identical
    (Printf.sprintf "%d moves" (List.length r_fast.Prm.Learn.trajectory));
  check "incremental no slower than reference" (speedup >= 1.0)
    (Printf.sprintf "%.2fx" speedup);
  jfield "learn_budget_bytes" (string_of_int budget);
  jfield "learn_moves" (string_of_int r_fast.Prm.Learn.iterations);
  jfield "learn_base_s" (Printf.sprintf "%.3f" t_base);
  jfield "learn_fast_s" (Printf.sprintf "%.3f" t_fast);
  jfield "learn_speedup" (Printf.sprintf "%.2f" speedup);
  jfield "trajectory_identical" (if identical then "true" else "false");
  jfield "suffstat_scans_base" (string_of_int scans_base);
  jfield "suffstat_scans_fast" (string_of_int scans_fast);
  write_json "BENCH_learn.json" (List.rev !json);
  if !failures <> [] then begin
    Printf.eprintf "learn checks FAILED: %s\n" (String.concat ", " (List.rev !failures));
    exit 1
  end

(* ---- observability: trace overhead, EXPLAIN fidelity, METRICS, q-error ------------------- *)

(* Validates the lib/obs acceptance bars and emits BENCH_obs.json plus a
   normalized golden text (BENCH_obs_golden.txt) that bench-smoke diffs
   against test/golden/obs_golden.txt:

     - EST throughput with the default no-op sink vs with a global span
       sink installed, cold caches: tracing overhead must stay < 8% of
       the (PR 10-accelerated) request and < 150ns per span;
     - EXPLAIN stage times must sum to within 10% of the request's own
       end-to-end wall time (the "est" container span);
     - METRICS must parse as Prometheus text exposition and agree with
       the request counters;
     - TRUTH must feed the per-model rolling q-error histogram. *)

let fig_obs () =
  section "O1: observability — trace overhead, EXPLAIN fidelity, METRICS, q-error";
  let json = ref [] in
  let jfield name v = json := (name, v) :: !json in
  let failures = ref [] in
  let check name ok detail =
    Printf.printf "%-46s %-4s %s\n" name (if ok then "ok" else "FAIL") detail;
    if not ok then failures := name :: !failures
  in
  let db = Lazy.force tb in
  let model = learn_prm ~budget_bytes:4_500 ~seed:cfg.seed db in
  let schema = Db.Database.schema db in
  let card t a =
    Db.Value.card (Db.Schema.attr (Db.Schema.find_table schema t) a).Db.Schema.domain
  in
  let triples =
    List.concat
      (List.init (card "contact" "Contype") (fun i ->
           List.concat
             (List.init (card "patient" "Age") (fun j ->
                  List.init (card "strain" "DrugResist") (fun k -> (i, j, k))))))
  in
  let body (i, j, k) =
    Printf.sprintf
      "c=contact, p=patient, s=strain; c.patient=p, p.strain=s; \
       c.Contype=%d, p.Age=%d, s.DrugResist=%d"
      i j k
  in
  let fresh_server () =
    let s = Serve.Server.create ~db ~socket:"(bench: transport-free)" () in
    ignore (Serve.Registry.register (Serve.Server.registry s) ~name:"default" model);
    s
  in
  let ask server line =
    let resp, _ = Serve.Server.handle_line server line in
    if Serve.Protocol.is_err resp then failwith (line ^ " -> " ^ resp);
    resp
  in
  let median l =
    let a = Array.of_list l in
    Array.sort compare a;
    a.(Array.length a / 2)
  in

  (* --- tracing overhead: cold-cache EST passes, no sink vs a live sink ---- *)
  let est_lines = List.map (fun tr -> "EST " ^ body tr) triples in
  (* Shared CI machines preempt us for whole scheduler quanta, so any
     statistic over multi-millisecond samples sees tens of percent of
     noise — far above the single-digit effect under test.  Preemption
     only ever *adds* time, so instead time every request individually
     (one ~45ns monotonic read per side against ~60us requests), take the
     per-query minimum across interleaved cold passes, and compare the
     sums of minima.  A preemption must land inside the same ~60us window
     on every one of the passes to bias a query's minimum, which makes
     the summed statistic stable where pass-level medians and peaks are
     not. *)
  let n_passes = 15 in
  let n_queries = List.length est_lines in
  let est_arr = Array.of_list est_lines in
  let pass min_us =
    let server = fresh_server () in
    Array.iteri
      (fun i l ->
        let t0 = Obs.Clock.now_ns () in
        ignore (ask server l);
        let dt = Obs.Clock.ns_to_us (Obs.Clock.now_ns () - t0) in
        if dt < min_us.(i) then min_us.(i) <- dt)
      est_arr
  in
  let discard = Array.make n_queries infinity in
  pass discard;
  pass discard;
  (* warm-up: order cache, scratch pools, code *)
  let sink_records = ref 0 in
  let noop_min = Array.make n_queries infinity in
  let traced_min = Array.make n_queries infinity in
  for _ = 1 to n_passes do
    Obs.Span.set_global_sink None;
    pass noop_min;
    Obs.Span.set_global_sink (Some (fun _ -> incr sink_records));
    pass traced_min
  done;
  Obs.Span.set_global_sink None;
  if Sys.getenv_opt "SELEST_BENCH_DEBUG" <> None then
    Array.iteri
      (fun i noop ->
        Printf.printf "  query %2d noop %6.1fus traced %6.1fus\n" i noop traced_min.(i))
      noop_min;
  let sum a = Array.fold_left ( +. ) 0.0 a in
  let noop = float_of_int n_queries /. sum noop_min *. 1e6 in
  let traced = float_of_int n_queries /. sum traced_min *. 1e6 in
  let overhead_pct = (noop -. traced) /. noop *. 100.0 in
  Printf.printf "%d distinct TB join queries per pass, cold caches, PRM %dB\n"
    n_queries (Prm.Model.size_bytes model);
  Printf.printf "EST no-op sink:  %8.0f queries/s (sum of per-query minima over %d passes)\n"
    noop n_passes;
  Printf.printf "EST traced:      %8.0f queries/s (%d span records)\n" traced !sink_records;
  (* The original <5% gate was set against a ~12us cold EST; PR 10's
     front-end cut the request to ~8us while the absolute span cost
     (~0.5us/request, ~6 spans) is unchanged, so the same tracing work
     is a larger share of a faster request.  Gate the ratio with the
     new denominator (8%) and the absolute per-span cost (<150ns). *)
  let traced_ns_per_span =
    (1e9 /. traced -. 1e9 /. noop)
    /. (float_of_int !sink_records /. float_of_int (n_passes * n_queries))
  in
  check "tracing overhead < 8%" (overhead_pct < 8.0)
    (Printf.sprintf "%.2f%%" overhead_pct);
  check "tracing cost < 150ns per span" (traced_ns_per_span < 150.0)
    (Printf.sprintf "%.0fns" traced_ns_per_span);
  check "traced pass emitted spans" (!sink_records > 0)
    (string_of_int !sink_records);
  jfield "est_queries" (string_of_int (List.length est_lines));
  jfield "est_qps_noop" (Printf.sprintf "%.1f" noop);
  jfield "est_qps_traced" (Printf.sprintf "%.1f" traced);
  jfield "trace_overhead_pct" (Printf.sprintf "%.2f" overhead_pct);
  jfield "traced_ns_per_span" (Printf.sprintf "%.1f" traced_ns_per_span);

  (* Disabled-sink cost relative to the pre-instrumentation baseline can't
     be measured against code this binary no longer contains, so calibrate
     it: time the disabled [Span.with_] fast path directly and scale by the
     spans-per-request count observed above.  This is the "within 2% of the
     pre-PR baseline" acceptance number. *)
  let spans_per_query =
    float_of_int !sink_records /. float_of_int (n_passes * n_queries)
  in
  let calib_n = 1_000_000 in
  let tick = ref 0 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to calib_n do
    Obs.Span.with_ "calib" (fun _ -> incr tick)
  done;
  let ns_per_disabled_span = (Unix.gettimeofday () -. t0) /. float_of_int calib_n *. 1e9 in
  let query_us = 1e6 /. noop in
  let noop_overhead_pct =
    ns_per_disabled_span *. spans_per_query /. 1e3 /. query_us *. 100.0
  in
  Printf.printf
    "disabled span: %.0fns x %.1f spans/query = %.2f%% of a %.0fus request\n"
    ns_per_disabled_span spans_per_query noop_overhead_pct query_us;
  check "no-op sink overhead < 2% of baseline" (noop_overhead_pct < 2.0)
    (Printf.sprintf "%.2f%%" noop_overhead_pct);
  jfield "spans_per_query" (Printf.sprintf "%.1f" spans_per_query);
  jfield "ns_per_disabled_span" (Printf.sprintf "%.1f" ns_per_disabled_span);
  jfield "noop_overhead_pct" (Printf.sprintf "%.2f" noop_overhead_pct);

  (* --- EXPLAIN fidelity: stage sum vs the request's own wall time --------- *)
  let server = fresh_server () in
  let field resp k =
    match Serve.Protocol.stats_field resp k with
    | Some v -> v
    | None -> failwith (Printf.sprintf "missing field %s in %S" k resp)
  in
  let ratios = ref [] and totals = ref [] in
  let explain_triples = List.filteri (fun i _ -> i < 31) triples in
  List.iter
    (fun tr ->
      let resp = ask server ("EXPLAIN " ^ body tr) in
      let total = float_of_string (field resp "total_us") in
      let stage_sum = float_of_string (field resp "stage_sum_us") in
      ratios := (stage_sum /. total) :: !ratios;
      totals := total :: !totals)
    explain_triples;
  let ratio = median !ratios and total_med = median !totals in
  Printf.printf "\nEXPLAIN over %d queries: median total %.1fus, median stage cover %.1f%%\n"
    (List.length explain_triples) total_med (ratio *. 100.0);
  check "EXPLAIN stage sum within 10% of wall time"
    (ratio >= 0.9 && ratio <= 1.1)
    (Printf.sprintf "cover %.3f" ratio);
  (* EXPLAIN fills the cache; EST must echo the identical estimate *)
  let tr0 = List.hd explain_triples in
  let exp_resp = ask server ("EXPLAIN " ^ body tr0) in
  let est_resp = ask server ("EST " ^ body tr0) in
  let est_val = List.nth (String.split_on_char ' ' est_resp) 1 in
  check "EXPLAIN estimate matches EST" (field exp_resp "estimate" = est_val)
    est_val;
  check "EXPLAIN reports warm cache" (field exp_resp "cache" = "hit") "";
  jfield "explain_queries" (string_of_int (List.length explain_triples));
  jfield "explain_total_us_median" (Printf.sprintf "%.1f" total_med);
  jfield "explain_stage_cover" (Printf.sprintf "%.3f" ratio);

  (* --- TRUTH: feed the rolling q-error histogram with exact counts -------- *)
  let truth_triples = List.filteri (fun i _ -> i mod 3 = 0) triples in
  List.iter
    (fun (i, j, k) ->
      let q =
        Db.Query.with_selects tb_skeleton3
          [ Db.Query.eq "c" "Contype" i; Db.Query.eq "p" "Age" j;
            Db.Query.eq "s" "DrugResist" k ]
      in
      let tv = true_size db q in
      ignore (ask server (Printf.sprintf "TRUTH %.17g %s" tv (body (i, j, k)))))
    truth_triples;
  let qsum = Obs.Qerror.summarize (Serve.Server.qerror_table server "default") in
  Printf.printf "\nTRUTH over %d queries: q-error mean %.2f p50 %.2f p90 %.2f max %.2f\n"
    qsum.Obs.Qerror.n qsum.Obs.Qerror.mean qsum.Obs.Qerror.p50 qsum.Obs.Qerror.p90
    qsum.Obs.Qerror.max_q;
  check "TRUTH observations recorded"
    (qsum.Obs.Qerror.n = List.length truth_triples)
    (string_of_int qsum.Obs.Qerror.n);
  check "q-errors are >= 1" (qsum.Obs.Qerror.p50 >= 1.0)
    (Printf.sprintf "p50 %.2f" qsum.Obs.Qerror.p50);
  jfield "qerror_queries" (string_of_int qsum.Obs.Qerror.n);
  jfield "qerror_mean" (Printf.sprintf "%.3f" qsum.Obs.Qerror.mean);
  jfield "qerror_p50" (Printf.sprintf "%.3f" qsum.Obs.Qerror.p50);
  jfield "qerror_p90" (Printf.sprintf "%.3f" qsum.Obs.Qerror.p90);
  jfield "qerror_max" (Printf.sprintf "%.3f" qsum.Obs.Qerror.max_q);

  (* --- fast path: loopback EST round trips through the zero-copy front-end
     so the selest_frontend_* counters — elided from snapshots while zero —
     carry values into the METRICS exposition below ------------------------- *)
  let fp_on_line_fast, fp_on_frame_fast =
    Serve.Server.fast_handlers server ~shard:0
  in
  let fp_client, fp_srv = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let fp_conn = Serve.Shard.Loopback.connect fp_srv in
  let fp_buf = Bytes.create 65536 in
  List.iter
    (fun tr ->
      let r = "EST " ^ body tr ^ "\n" in
      ignore (Unix.write_substring fp_client r 0 (String.length r));
      Serve.Shard.Loopback.step fp_conn ~on_line_fast:fp_on_line_fast
        ~on_frame_fast:fp_on_frame_fast
        ~on_line:(Serve.Server.handle_line server)
        ~on_frame:(Serve.Server.handle_frame server);
      ignore (Unix.read fp_client fp_buf 0 (Bytes.length fp_buf)))
    explain_triples;
  Unix.close fp_client;
  (try Unix.close fp_srv with Unix.Unix_error _ -> ());

  (* --- METRICS: must parse as Prometheus and agree with the counters ------ *)
  ignore (ask server "PING");
  ignore
    (ask server
       ("ESTBATCH " ^ String.concat " || " (List.map body explain_triples)));
  let mresp = ask server "METRICS" in
  let nl = String.index mresp '\n' in
  let text = String.sub mresp (nl + 1) (String.length mresp - nl - 1) in
  let types, samples = Obs.Prometheus.parse text in
  let sample name = Obs.Prometheus.find_sample samples ~name () in
  (* snapshot the live counter before issuing any further request *)
  let live_requests = Serve.Metrics.get (Serve.Server.metrics server) "requests" in
  check "METRICS parses as Prometheus"
    (types <> [] && samples <> [])
    (Printf.sprintf "%d families, %d samples" (List.length types)
       (List.length samples));
  check "selest_requests_total agrees"
    (sample "selest_requests_total" = Some (float_of_int live_requests))
    (string_of_int live_requests);
  check "latency histogram count present"
    (match sample "selest_request_latency_us_count" with
     | Some c -> c > 0.0
     | None -> false)
    "";
  check "qerror histogram count agrees"
    (Obs.Prometheus.find_sample samples ~name:"selest_qerror_count"
       ~labels:[ ("model", "default") ] ()
    = Some (float_of_int qsum.Obs.Qerror.n))
    "";
  check "frontend stage counters exported"
    (sample "selest_frontend_parse_ns_total" <> None
    && sample "selest_frontend_canon_ns_total" <> None
    && sample "selest_frontend_key_ns_total" <> None)
    "";
  jfield "metrics_families" (string_of_int (List.length types));
  jfield "metrics_samples" (string_of_int (List.length samples));

  (* --- trace log: JSONL records reach the file ----------------------------- *)
  let tmp = Filename.temp_file "selest_obs" ".jsonl" in
  Obs.Trace_log.install tmp;
  ignore (ask server ("EST " ^ body tr0));
  Obs.Trace_log.close ();
  let ic = open_in tmp in
  let trace_lines = ref 0 in
  (try
     while true do
       ignore (input_line ic);
       incr trace_lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove tmp;
  check "trace log wrote one JSONL record per span" (!trace_lines >= 4)
    (Printf.sprintf "%d lines" !trace_lines);
  jfield "trace_log_lines" (string_of_int !trace_lines);
  Serve.Server.shutdown_pool server;

  (* --- golden text: shape only, numbers stripped --------------------------- *)
  let golden = Buffer.create 512 in
  Buffer.add_string golden "EXPLAIN fields:\n";
  List.iter
    (fun tok ->
      match String.index_opt tok '=' with
      | Some i -> Buffer.add_string golden ("  " ^ String.sub tok 0 i ^ "\n")
      | None -> ())
    (List.tl (String.split_on_char ' ' exp_resp));
  Buffer.add_string golden "METRICS types:\n";
  List.iter
    (fun (n, ty) -> Buffer.add_string golden ("  " ^ n ^ " " ^ ty ^ "\n"))
    types;
  let oc = open_out (at_root "BENCH_obs_golden.txt") in
  Buffer.output_buffer oc golden;
  close_out oc;
  Printf.printf "wrote BENCH_obs_golden.txt\n";

  write_json "BENCH_obs.json" (List.rev !json);
  if !failures <> [] then begin
    Printf.eprintf "observability checks FAILED: %s\n"
      (String.concat ", " (List.rev !failures));
    exit 1
  end

(* ---- telemetry core: sharded metrics, overhead, contention (BENCH_telemetry.json) --------- *)

(* PR 8's tentpole, measured.  Four parts:

   (a) per-request bookkeeping overhead — the PR 7 baseline (one
       mutex-guarded observe) is code this binary no longer contains, so
       the new telemetry sequence (counter bumps, aggregate + per-verb
       histogram records, the tail-sampler's atomics) is timed directly
       and expressed as a fraction of a measured cold EST request, the
       same calibration pattern fig_obs uses for the no-op span sink;
       gated < 5%.

   (b) merge exactness — K writer domains hammer one Telemetry instance;
       after join the merged snapshot must be *bit-exact* against a
       sequential oracle fed the same samples (counters, counts, sums,
       and every raw bucket).

   (c) contention — 4 writer domains recording into one mutex-guarded
       histogram vs the sharded core; the sharded side must keep scaling
       where the mutex serializes (>= 2x on hosts with >= 4 cores;
       recorded but not gated on smaller hosts, skipped entirely on
       single-core ones — the BENCH_inference pattern).

   (d) HEALTH / SLOWLOG end to end through the dispatcher: a q-error
       capture with a replayed span tree must surface in SLOWLOG and in
       HEALTH's burn report, and the response *shape* (field names and
       span names, numbers stripped) is pinned in
       BENCH_telemetry_golden.txt. *)

let fig_telemetry () =
  section "T1: telemetry core — overhead, merge exactness, contention, HEALTH/SLOWLOG";
  let json = ref [] in
  let jfield name v = json := (name, v) :: !json in
  let failures = ref [] in
  let check name ok detail =
    Printf.printf "%-46s %-4s %s\n" name (if ok then "ok" else "FAIL") detail;
    if not ok then failures := name :: !failures
  in
  let db = Lazy.force tb in
  let model = learn_prm ~budget_bytes:4_500 ~seed:cfg.seed db in
  let schema = Db.Database.schema db in
  let card t a =
    Db.Value.card (Db.Schema.attr (Db.Schema.find_table schema t) a).Db.Schema.domain
  in
  let triples =
    List.concat
      (List.init (card "contact" "Contype") (fun i ->
           List.concat
             (List.init (card "patient" "Age") (fun j ->
                  List.init (card "strain" "DrugResist") (fun k -> (i, j, k))))))
  in
  let body (i, j, k) =
    Printf.sprintf
      "c=contact, p=patient, s=strain; c.patient=p, p.strain=s; \
       c.Contype=%d, p.Age=%d, s.DrugResist=%d"
      i j k
  in
  let fresh_server ?qerror_gate () =
    let s = Serve.Server.create ?qerror_gate ~db ~socket:"(bench: transport-free)" () in
    ignore (Serve.Registry.register (Serve.Server.registry s) ~name:"default" model);
    s
  in
  let ask server line =
    let resp, _ = Serve.Server.handle_line server line in
    if Serve.Protocol.is_err resp then failwith (line ^ " -> " ^ resp);
    resp
  in

  (* --- (a) throughput + calibrated per-request telemetry cost ------------- *)
  let est_arr = Array.of_list (List.map (fun tr -> "EST " ^ body tr) triples) in
  let n_queries = Array.length est_arr in
  let pass min_us =
    let server = fresh_server () in
    Array.iteri
      (fun i l ->
        let t0 = Obs.Clock.now_ns () in
        ignore (ask server l);
        let dt = Obs.Clock.ns_to_us (Obs.Clock.now_ns () - t0) in
        if dt < min_us.(i) then min_us.(i) <- dt)
      est_arr
  in
  let discard = Array.make n_queries infinity in
  pass discard;
  pass discard;
  let n_passes = 11 in
  let min_us = Array.make n_queries infinity in
  for _ = 1 to n_passes do
    pass min_us
  done;
  let sum_us = Array.fold_left ( +. ) 0.0 min_us in
  let qps = float_of_int n_queries /. sum_us *. 1e6 in
  let query_us = sum_us /. float_of_int n_queries in
  Printf.printf "%d cold EST queries per pass: %8.0f queries/s (sum of minima, %d passes)\n"
    n_queries qps n_passes;
  jfield "est_queries" (string_of_int n_queries);
  jfield "est_qps" (Printf.sprintf "%.1f" qps);
  jfield "est_query_us" (Printf.sprintf "%.2f" query_us);
  (* The whole per-request telemetry sequence the dispatcher now runs:
     two counter bumps, the aggregate + per-verb histogram records, the
     response counter fetch-and-add and the threshold comparison. *)
  let m = Serve.Metrics.create () in
  let resp_ctr = Atomic.make 0 and thr = Atomic.make max_int in
  let calib_n = 1_000_000 in
  let sink = ref 0 in
  let t0 = Unix.gettimeofday () in
  for i = 1 to calib_n do
    Serve.Metrics.incr m "requests";
    Serve.Metrics.incr m "est_requests";
    Serve.Metrics.observe_verb_ns m ~verb:"est" (i land 0xFFFF);
    let seen = Atomic.fetch_and_add resp_ctr 1 in
    if seen land 511 = 511 then incr sink;
    if i land 0xFFFF >= Atomic.get thr then incr sink
  done;
  let ns_per_request =
    (Unix.gettimeofday () -. t0) /. float_of_int calib_n *. 1e9
  in
  let overhead_pct = ns_per_request /. 1e3 /. query_us *. 100.0 in
  Printf.printf
    "telemetry bookkeeping: %.0fns/request = %.2f%% of a %.1fus cold request\n"
    ns_per_request overhead_pct query_us;
  check "telemetry overhead < 5% of a request" (overhead_pct < 5.0)
    (Printf.sprintf "%.2f%%" overhead_pct);
  jfield "telemetry_ns_per_request" (Printf.sprintf "%.1f" ns_per_request);
  jfield "telemetry_overhead_pct" (Printf.sprintf "%.2f" overhead_pct);

  (* --- (b) merged shard totals are bit-exact ------------------------------- *)
  let writers = 4 and per_writer = 200_000 in
  let sample i = i * 9_973 mod 40_000_000 in
  let tel = Obs.Telemetry.create () in
  let domains =
    List.init writers (fun _ ->
        Domain.spawn (fun () ->
            for i = 1 to per_writer do
              Obs.Telemetry.incr tel "ops";
              Obs.Telemetry.record_ns tel "lat" (sample i)
            done))
  in
  List.iter Domain.join domains;
  let oracle = Obs.Histogram.create () in
  for _ = 1 to writers do
    for i = 1 to per_writer do
      Obs.Histogram.record oracle (sample i)
    done
  done;
  let merged = Obs.Telemetry.hist_merged tel "lat" in
  let exact =
    Obs.Telemetry.get tel "ops" = writers * per_writer
    && Obs.Histogram.count merged = Obs.Histogram.count oracle
    && Obs.Histogram.sum_ns merged = Obs.Histogram.sum_ns oracle
    && Obs.Histogram.nonzero merged = Obs.Histogram.nonzero oracle
  in
  check "merged totals bit-exact vs sequential oracle" exact
    (Printf.sprintf "%d domains x %d records, %d shards" writers per_writer
       (Obs.Telemetry.n_shards tel));
  jfield "merge_writers" (string_of_int writers);
  jfield "merge_records_per_writer" (string_of_int per_writer);
  jfield "merge_exact" (if exact then "true" else "false");

  (* --- (c) contention: sharded vs mutex-guarded recording ------------------ *)
  let contend_ops = 200_000 in
  let run_writers f =
    let t0 = Unix.gettimeofday () in
    let ds = List.init writers (fun _ -> Domain.spawn f) in
    List.iter Domain.join ds;
    float_of_int (writers * contend_ops) /. (Unix.gettimeofday () -. t0)
  in
  let mu = Mutex.create () in
  let mh = Obs.Histogram.create () in
  let mc = ref 0 in
  let mutex_ops_s =
    run_writers (fun () ->
        for i = 1 to contend_ops do
          Mutex.lock mu;
          incr mc;
          Obs.Histogram.record mh (sample i);
          Mutex.unlock mu
        done)
  in
  let tel2 = Obs.Telemetry.create () in
  let sharded_ops_s =
    run_writers (fun () ->
        for i = 1 to contend_ops do
          Obs.Telemetry.incr tel2 "ops";
          Obs.Telemetry.record_ns tel2 "lat" (sample i)
        done)
  in
  let ratio = sharded_ops_s /. mutex_ops_s in
  let host_cores = Domain.recommended_domain_count () in
  Printf.printf
    "contention (%d writers x %d ops): mutex %8.0f ops/s | sharded %8.0f ops/s (%.2fx, %d cores)\n"
    writers contend_ops mutex_ops_s sharded_ops_s ratio host_cores;
  jfield "contention_writers" (string_of_int writers);
  jfield "contention_mutex_ops_s" (Printf.sprintf "%.0f" mutex_ops_s);
  jfield "contention_sharded_ops_s" (Printf.sprintf "%.0f" sharded_ops_s);
  jfield "contention_ratio" (Printf.sprintf "%.2f" ratio);
  jfield "host_cores" (string_of_int host_cores);
  (* Domain fan-out cannot beat a mutex on a single-core host — both
     serialize there, so the ratio is physics, not a regression.  The
     full 2x bar needs cores for all four writers. *)
  if host_cores <= 1 then begin
    Printf.printf "contention gate: skipped (single-core host)\n";
    jfield "contention_gate" "skipped_single_core"
  end
  else begin
    let floor = if host_cores >= 4 then 2.0 else 1.2 in
    jfield "contention_gate" (Printf.sprintf "enforced_%.1fx" floor);
    check
      (Printf.sprintf "sharded >= %.1fx mutex throughput" floor)
      (ratio >= floor)
      (Printf.sprintf "%.2fx on %d cores" ratio host_cores)
  end;

  (* --- (d) HEALTH / SLOWLOG end to end ------------------------------------- *)
  let server = fresh_server ~qerror_gate:50.0 () in
  let d_triples = List.filteri (fun i _ -> i < 30) triples in
  List.iter (fun tr -> ignore (ask server ("EST " ^ body tr))) d_triples;
  (* absurd ground truth: crosses the q-error gate, forcing a capture *)
  ignore (ask server (Printf.sprintf "TRUTH 1e12 %s" (body (List.hd d_triples))));
  let health = ask server "HEALTH" in
  let slowlog = ask server "SLOWLOG 5" in
  let payload_lines resp =
    match String.split_on_char '\n' resp with _ :: rest -> rest | [] -> []
  in
  let contains line sub =
    let n = String.length sub in
    let rec probe i =
      i + n <= String.length line && (String.sub line i n = sub || probe (i + 1))
    in
    probe 0
  in
  let hlines = payload_lines health and slines = payload_lines slowlog in
  check "HEALTH reports per-verb p999"
    (List.exists (fun l -> contains l "verb=est" && contains l "p999_us=") hlines)
    "";
  check "HEALTH reports SLO burn"
    (List.exists (fun l -> contains l "slo=latency" && contains l "burn=") hlines)
    "";
  check "HEALTH counts the capture"
    (List.exists (fun l -> contains l "slowlog captured=1") hlines)
    "";
  check "SLOWLOG lists the q-error capture"
    (List.exists (fun l -> contains l "reason=qerror") slines)
    "";
  check "SLOWLOG carries a replayed span tree"
    (List.exists (fun l -> contains l "span ve.eliminate") slines)
    "";
  let stats = ask server "STATS" in
  check "STATS exports program-memo counters"
    (Serve.Protocol.stats_field stats "plan.program_hits" <> None
    && Serve.Protocol.stats_field stats "plan.program_misses" <> None)
    "";
  let mresp = ask server "METRICS" in
  let _, samples =
    let nl = String.index mresp '\n' in
    Obs.Prometheus.parse (String.sub mresp (nl + 1) (String.length mresp - nl - 1))
  in
  let sample name = Obs.Prometheus.find_sample samples ~name () in
  check "Prometheus exports selest_program_memo_hits"
    (sample "selest_program_memo_hits" <> None) "";
  check "Prometheus exports per-verb latency"
    (Obs.Prometheus.find_sample samples ~name:"selest_verb_latency_us_count"
       ~labels:[ ("verb", "est") ] ()
    <> None)
    "";
  check "Prometheus exports SLO burn gauge"
    (sample "selest_slo_latency_burn" <> None) "";
  jfield "health_lines" (string_of_int (List.length hlines));
  jfield "slowlog_lines" (string_of_int (List.length slines));
  Serve.Server.shutdown_pool server;

  (* --- golden text: response shape, numbers stripped ----------------------- *)
  let keys_of line =
    String.concat " "
      (List.filter_map
         (fun tok ->
           match String.index_opt tok '=' with
           | Some i when i > 0 -> Some (String.sub tok 0 i)
           | _ -> None)
         (String.split_on_char ' ' (String.trim line)))
  in
  let golden = Buffer.create 512 in
  Buffer.add_string golden "HEALTH fields:\n";
  List.iter (fun l -> Buffer.add_string golden ("  " ^ keys_of l ^ "\n")) hlines;
  Buffer.add_string golden "SLOWLOG shape:\n";
  List.iter
    (fun l ->
      let t = String.trim l in
      if String.length t > 5 && String.sub t 0 5 = "span " then
        (* keep the span name, drop timings and attrs *)
        Buffer.add_string golden
          ("  span " ^ List.nth (String.split_on_char ' ' t) 1 ^ "\n")
      else Buffer.add_string golden ("  " ^ keys_of l ^ "\n"))
    slines;
  let oc = open_out (at_root "BENCH_telemetry_golden.txt") in
  Buffer.output_buffer oc golden;
  close_out oc;
  Printf.printf "wrote BENCH_telemetry_golden.txt\n";

  write_json "BENCH_telemetry.json" (List.rev !json);
  if !failures <> [] then begin
    Printf.eprintf "telemetry checks FAILED: %s\n"
      (String.concat ", " (List.rev !failures));
    exit 1
  end

(* ---- shard-per-domain server: scaling, bit-identity, admission (BENCH_serve.json) -------- *)

(* The serving layer's contract, measured end to end over real sockets:

   (a) QPS at 1 / 2 / 4 executor domains with a matching client fleet.
       The 2→4 scaling gate (>= 1.7x) only means something with >= 4
       hardware threads; on smaller hosts it is recorded as skipped —
       honestly, with the host's core count in the JSON — rather than
       pretending a 1-core container can exhibit domain scaling.

   (b) Bit-identity: every answer served by every sharded configuration
       must equal, as a %.17g string, the transport-free single-domain
       reference for the same query.  Sharding is a throughput feature;
       it must not perturb a single bit of the estimates.

   (c) Admission control: with max_inflight=1 and one connection holding
       the slot, a second connection is answered BUSY and counted.

   (d) TCP transport: text and binary-frame answers over the TCP
       listener match the reference bit for bit.

   (e) Structure: multi-shard servers run unsynchronized plan caches and
       lock-free q-error shards (the "zero request-path mutexes" claim
       as an assertable property), and hot-reload bumps the registry
       epoch. *)

let fig_serve () =
  section "SV: shard-per-domain server — QPS, bit-identity, admission, TCP";
  let json = ref [] in
  let jfield name v = json := (name, v) :: !json in
  let failures = ref [] in
  let check name ok detail =
    Printf.printf "%-46s %-4s %s\n" name (if ok then "ok" else "FAIL") detail;
    if not ok then failures := name :: !failures
  in
  let db = Lazy.force tb in
  let model = learn_prm ~budget_bytes:4_500 ~seed:cfg.seed db in
  let schema = Db.Database.schema db in
  let card t a =
    Db.Value.card (Db.Schema.attr (Db.Schema.find_table schema t) a).Db.Schema.domain
  in
  let bodies =
    Array.of_list
      (List.concat
         (List.init (card "contact" "Contype") (fun i ->
              List.init (card "patient" "Age") (fun j ->
                  Printf.sprintf
                    "c=contact, p=patient; c.patient=p; c.Contype=%d, p.Age=%d" i j))))
  in
  let est_lines = Array.map (fun b -> "EST " ^ b) bodies in
  let nq = Array.length est_lines in
  let host_cores = Domain.recommended_domain_count () in
  jfield "host_cores" (string_of_int host_cores);
  jfield "queries" (string_of_int nq);

  (* (b) reference answers: the transport-free single-domain path *)
  let ref_answers =
    let s = Serve.Server.create ~db ~socket:"(bench: transport-free)" () in
    ignore (Serve.Registry.register (Serve.Server.registry s) ~name:"default" model);
    Array.map
      (fun l ->
        let resp, _ = Serve.Server.handle_line s l in
        if Serve.Protocol.is_err resp then failwith (l ^ " -> " ^ resp);
        Serve.Protocol.payload resp)
      est_lines
  in

  (* (a) QPS per domain count, over the Unix socket, with 2 clients per
     shard; every response is also checked against the reference. *)
  let mismatches = Atomic.make 0 in
  let run_config ~domains ~rounds =
    let clients = 2 * domains in
    let socket = Filename.temp_file "selest_bench" ".sock" in
    Sys.remove socket;
    let server = Serve.Server.create ~domains ~db ~socket () in
    ignore (Serve.Registry.register (Serve.Server.registry server) ~name:"default" model);
    let thread = Thread.create Serve.Server.run server in
    Fun.protect
      ~finally:(fun () ->
        Serve.Server.shutdown server;
        Thread.join thread)
      (fun () ->
        let worker () =
          let c = Serve.Client.connect ~retries:100 ~socket () in
          Fun.protect
            ~finally:(fun () -> Serve.Client.close c)
            (fun () ->
              for _ = 1 to rounds do
                Array.iteri
                  (fun i l ->
                    let resp = Serve.Client.request c l in
                    if Serve.Protocol.payload resp <> ref_answers.(i) then
                      Atomic.incr mismatches)
                  est_lines
              done)
        in
        let t0 = Unix.gettimeofday () in
        let ts = List.init clients (fun _ -> Thread.create worker ()) in
        List.iter Thread.join ts;
        let dt = Unix.gettimeofday () -. t0 in
        float_of_int (clients * rounds * nq) /. dt)
  in
  let rounds = if cfg.full then 8 else 2 in
  let qps1 = run_config ~domains:1 ~rounds in
  let qps2 = run_config ~domains:2 ~rounds in
  let qps4 = run_config ~domains:4 ~rounds in
  Printf.printf "QPS over Unix socket: 1 domain %.0f | 2 domains %.0f | 4 domains %.0f\n"
    qps1 qps2 qps4;
  jfield "qps_domains_1" (Printf.sprintf "%.1f" qps1);
  jfield "qps_domains_2" (Printf.sprintf "%.1f" qps2);
  jfield "qps_domains_4" (Printf.sprintf "%.1f" qps4);
  jfield "scaling_2_to_4" (Printf.sprintf "%.3f" (qps4 /. qps2));
  if host_cores >= 4 then begin
    jfield "scaling_gate" "evaluated";
    check "2→4 domain scaling >= 1.7x" (qps4 /. qps2 >= 1.7)
      (Printf.sprintf "%.2fx on %d cores" (qps4 /. qps2) host_cores)
  end
  else begin
    jfield "scaling_gate" "skipped_insufficient_cores";
    Printf.printf "scaling gate skipped: host has %d core%s (need >= 4)\n" host_cores
      (if host_cores = 1 then "" else "s")
  end;
  check "sharded answers bit-identical to reference" (Atomic.get mismatches = 0)
    (Printf.sprintf "%d mismatches over %d answers" (Atomic.get mismatches)
       ((2 + 4 + 8) * rounds * nq));
  jfield "bit_identity_mismatches" (string_of_int (Atomic.get mismatches));

  (* (c) admission control: budget of one, second connection bounced *)
  (let socket = Filename.temp_file "selest_bench" ".sock" in
   Sys.remove socket;
   let server = Serve.Server.create ~max_inflight:1 ~db ~socket () in
   ignore (Serve.Registry.register (Serve.Server.registry server) ~name:"default" model);
   let thread = Thread.create Serve.Server.run server in
   Fun.protect
     ~finally:(fun () ->
       Serve.Server.shutdown server;
       Thread.join thread)
     (fun () ->
       let c1 = Serve.Client.connect ~retries:100 ~socket () in
       Fun.protect
         ~finally:(fun () -> Serve.Client.close c1)
         (fun () ->
           let pong = Serve.Client.request c1 "PING" in
           let c2 = Serve.Client.connect ~socket () in
           let busy =
             Fun.protect
               ~finally:(fun () -> Serve.Client.close c2)
               (fun () -> Serve.Client.request c2 "PING")
           in
           let stats = Serve.Client.request c1 "STATS" in
           check "admission: slot holder served" (pong = "PONG") pong;
           check "admission: overflow answered BUSY" (Serve.Protocol.is_busy busy) busy;
           check "admission: rejection counted"
             (Serve.Protocol.stats_field stats "admission_rejected" = Some "1")
             (Option.value ~default:"-"
                (Serve.Protocol.stats_field stats "admission_rejected"));
           jfield "admission_busy" (if Serve.Protocol.is_busy busy then "ok" else "fail"))));

  (* (d) TCP transport smoke: text and binary answers vs the reference *)
  (let socket = Filename.temp_file "selest_bench" ".sock" in
   Sys.remove socket;
   let port = 21_000 + (Unix.getpid () mod 9_000) in
   let server = Serve.Server.create ~tcp:("127.0.0.1", port) ~db ~socket () in
   ignore (Serve.Registry.register (Serve.Server.registry server) ~name:"default" model);
   let thread = Thread.create Serve.Server.run server in
   Fun.protect
     ~finally:(fun () ->
       Serve.Server.shutdown server;
       Thread.join thread)
     (fun () ->
       Serve.Client.with_tcp_connection ~retries:100 ~host:"127.0.0.1" ~port (fun c ->
           let resp = Serve.Client.request c est_lines.(0) in
           check "tcp text answer bit-identical"
             (Serve.Protocol.payload resp = ref_answers.(0))
             (Serve.Protocol.payload resp));
       Serve.Client.with_tcp_connection ~retries:100 ~host:"127.0.0.1" ~port (fun c ->
           Serve.Client.upgrade c;
           match Serve.Client.est_bin c bodies.(0) with
           | Ok v ->
             check "tcp binary answer bit-identical"
               (Printf.sprintf "%.17g" v = ref_answers.(0))
               (Printf.sprintf "%.17g" v)
           | Error msg -> check "tcp binary answer bit-identical" false msg);
       jfield "tcp_smoke" "ok"));

  (* (e) structural lock-freedom + epoch publication *)
  (let s2 = Serve.Server.create ~domains:2 ~db ~socket:"(bench: structural)" () in
   let s1 = Serve.Server.create ~db ~socket:"(bench: structural)" () in
   check "multi-shard plan caches unsynchronized"
     (not (Serve.Plan_cache.synchronized (Serve.Server.shard_plan_cache s2 0)))
     "no mutex on the sharded plan-cache path";
   check "single-shard plan cache synchronized"
     (Serve.Plan_cache.synchronized (Serve.Server.plan_cache s1))
     "pool fan-out shares one cache";
   check "q-error shards lock-free"
     (not (Obs.Qerror.synchronized (Serve.Server.qerror_table s2 "default")))
     "domain-local tables, merged on read";
   let e0 = Serve.Registry.Epoch.current_epoch (Serve.Server.registry s2) in
   ignore (Serve.Registry.register (Serve.Server.registry s2) ~name:"default" model);
   let e1 = Serve.Registry.Epoch.current_epoch (Serve.Server.registry s2) in
   check "registry install bumps the epoch" (e1 > e0)
     (Printf.sprintf "epoch %d -> %d" e0 e1);
   jfield "lock_free_multishard"
     (string_of_bool (not (Serve.Plan_cache.synchronized (Serve.Server.shard_plan_cache s2 0)))));

  write_json "BENCH_serve.json" (List.rev !json);
  if !failures <> [] then begin
    Printf.eprintf "serve checks FAILED: %s\n" (String.concat ", " (List.rev !failures));
    exit 1
  end

(* ---- plan regret: estimates driving a cost-based optimizer (BENCH_opt.json) -------------- *)

(* The paper's Sec. 1 motivation made measurable: for each estimator,
   optimize every suite query's join order under its estimates
   (Opt.Optimizer, C_out cost, AVI fallback on Unsupported), execute the
   chosen tree and the true-cardinality-optimal tree with the
   materializing hash-join executor (Opt.Hashjoin), and report regret —
   chosen/best ratios of wall time and of materialized intermediate
   rows.  Gates: the exact-cardinality oracle must have regret exactly
   1.0 (the pipeline is self-consistent), and the PRM must regret no
   more rows than AVI on the TB keyjoin suite (estimation quality must
   pay off end to end).  Also round-trips one EXPLAINPLAN through the
   transport-free server to pin the verb's rendering. *)

let fig_opt () =
  section "O1: plan regret — cardinality estimates driving a cost-based optimizer";
  let json = ref [] in
  let jfield name v = json := (name, v) :: !json in
  let failures = ref [] in
  let check name ok detail =
    Printf.printf "%-46s %-4s %s\n" name (if ok then "ok" else "FAIL") detail;
    if not ok then failures := name :: !failures
  in
  let budget = 4_500 in
  let max_queries = min cfg.max_queries 100 in
  let exact_for db =
    { Est.Estimator.name = "exact"; bytes = 0; prepare = ignore;
      estimate = (fun q -> true_size db q) }
  in
  let slug name =
    String.map (function '+' -> '_' | c -> Char.lowercase_ascii c) name
  in
  let run_suite ~label ~db ~skeleton ~attrs =
    let suite = Suite.make ~name:label ~skeleton ~attrs in
    let ests =
      [ exact_for db;
        Est.Prm_est.build ~budget_bytes:budget ~seed:cfg.seed db;
        Est.Prm_est.build_bn_uj ~budget_bytes:budget ~seed:cfg.seed db;
        Est.Avi.build db ]
    in
    let outcomes = Regret.run ~max_queries ~seed:cfg.seed db suite ests in
    Printf.printf "\n%s suite (%d queries):\n" label
      (match outcomes with o :: _ -> o.Regret.n_queries | [] -> 0);
    Printf.printf
      "estimator | plan matches | runtime regret mean/max | rows regret mean/max | fallbacks\n";
    List.iter
      (fun o ->
        Printf.printf "%-9s | %6d/%-5d | %11.3f/%-11.3f | %8.3f/%-11.3f | %d\n"
          o.Regret.estimator o.Regret.n_plan_matches o.Regret.n_queries
          o.Regret.runtime_regret_mean o.Regret.runtime_regret_max
          o.Regret.rows_regret_mean o.Regret.rows_regret_max o.Regret.n_fallbacks;
        let pre = Printf.sprintf "%s_%s" label (slug o.Regret.estimator) in
        jfield (pre ^ "_plan_matches") (string_of_int o.Regret.n_plan_matches);
        jfield (pre ^ "_n_queries") (string_of_int o.Regret.n_queries);
        jfield (pre ^ "_runtime_regret_mean")
          (Printf.sprintf "%.4f" o.Regret.runtime_regret_mean);
        jfield (pre ^ "_runtime_regret_max")
          (Printf.sprintf "%.4f" o.Regret.runtime_regret_max);
        jfield (pre ^ "_rows_regret_mean")
          (Printf.sprintf "%.4f" o.Regret.rows_regret_mean);
        jfield (pre ^ "_rows_regret_max")
          (Printf.sprintf "%.4f" o.Regret.rows_regret_max);
        jfield (pre ^ "_fallbacks") (string_of_int o.Regret.n_fallbacks))
      outcomes;
    outcomes
  in
  (* TB keyjoin suite: the attribute family where AVI's independence
     assumption demonstrably flips plan rankings (examples/optimizer.ml). *)
  let tb_outcomes =
    run_suite ~label:"tb" ~db:(Lazy.force tb) ~skeleton:tb_skeleton3
      ~attrs:[ ("c", "Contype"); ("p", "Age"); ("s", "Unique") ]
  in
  ignore
    (run_suite ~label:"fin" ~db:(Lazy.force fin) ~skeleton:fin_skeleton3
       ~attrs:[ ("t", "Amount"); ("a", "Frequency"); ("d", "Size") ]);
  let find name =
    List.find (fun o -> o.Regret.estimator = name) tb_outcomes
  in
  let exact = find "exact" and prm = find "PRM" and avi = find "AVI" in
  check "exact oracle: runtime regret = 1.0"
    (exact.Regret.runtime_regret_mean = 1.0 && exact.Regret.runtime_regret_max = 1.0)
    (Printf.sprintf "mean %.4f max %.4f" exact.Regret.runtime_regret_mean
       exact.Regret.runtime_regret_max);
  check "exact oracle: rows regret = 1.0"
    (exact.Regret.rows_regret_mean = 1.0 && exact.Regret.rows_regret_max = 1.0)
    (Printf.sprintf "mean %.4f max %.4f" exact.Regret.rows_regret_mean
       exact.Regret.rows_regret_max);
  check "exact oracle: picks the optimal tree every time"
    (exact.Regret.n_plan_matches = exact.Regret.n_queries)
    (Printf.sprintf "%d/%d" exact.Regret.n_plan_matches exact.Regret.n_queries);
  check "PRM rows regret <= AVI rows regret (tb keyjoin suite)"
    (prm.Regret.rows_regret_mean <= avi.Regret.rows_regret_mean)
    (Printf.sprintf "%.4f vs %.4f" prm.Regret.rows_regret_mean
       avi.Regret.rows_regret_mean);
  (* EXPLAINPLAN through the transport-free server: the rendering the
     CLI and socket clients see, pinned here so the verb stays wired. *)
  let db = Lazy.force tb in
  let server = Serve.Server.create ~db ~socket:"(bench: transport-free)" () in
  ignore
    (Serve.Registry.register (Serve.Server.registry server) ~name:"default"
       (learn_prm ~budget_bytes:budget ~seed:cfg.seed db));
  let resp, _ =
    Serve.Server.handle_line server
      "EXPLAINPLAN c=contact, p=patient, s=strain; c.patient=p, p.strain=s; \
       c.Contype=1, p.Age={4,5}, s.Unique=0"
  in
  let has s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  check "EXPLAINPLAN renders est vs. actual per operator"
    (Serve.Protocol.is_ok resp && has resp "est=" && has resp "actual="
     && has resp "hash_join")
    (List.hd (String.split_on_char '\n' resp));
  jfield "explainplan_ok" (if Serve.Protocol.is_ok resp then "true" else "false");
  write_json "BENCH_opt.json" (List.rev !json);
  if !failures <> [] then begin
    Printf.eprintf "opt checks FAILED: %s\n" (String.concat ", " (List.rev !failures));
    exit 1
  end

(* ---- bechamel micro-benchmarks ------------------------------------------------------------ *)

let bechamel_suite () =
  section "Bechamel micro-benchmarks (inference and counting kernels)";
  let open Bechamel in
  let data = Bn.Data.of_table (Db.Database.table (Lazy.force census) "person") in
  let tree_bn =
    (Bn.Learn.learn ~config:(Bn.Learn.default_config ~budget_bytes:4_096) data).Bn.Learn.bn
  in
  let table_bn =
    (Bn.Learn.learn
       ~config:
         { (Bn.Learn.default_config ~budget_bytes:4_096) with Bn.Learn.kind = Bn.Cpd.Tables }
       data).Bn.Learn.bn
  in
  let q = [ (10, Db.Query.Eq 7); (2, Db.Query.Eq 9) ] in
  let prm_model = lazy (learn_prm ~budget_bytes:4_096 ~seed:cfg.seed (Lazy.force tb)) in
  let tb_db = Lazy.force tb in
  let sizes = Prm.Estimate.sizes_of_db tb_db in
  let join_q =
    Db.Query.with_selects tb_skeleton3
      [ Db.Query.eq "p" "USBorn" 1; Db.Query.eq "c" "Contype" 0 ]
  in
  let tests =
    [
      Test.make ~name:"bn-ve-tree-cpds (select query)" (Staged.stage (fun () ->
          ignore (Bn.Bn.prob_of tree_bn q)));
      Test.make ~name:"bn-ve-table-cpds (select query)" (Staged.stage (fun () ->
          ignore (Bn.Bn.prob_of table_bn q)));
      Test.make ~name:"prm-estimate (3-table join query)" (Staged.stage (fun () ->
          ignore (Prm.Estimate.estimate (Lazy.force prm_model) ~sizes join_q)));
      Test.make ~name:"contingency-count (40K rows x 2 attrs)" (Staged.stage (fun () ->
          ignore (Bn.Data.contingency data [| 0; 10 |])));
    ]
  in
  let benchmark test =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg_b =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
    in
    let raw = Benchmark.all cfg_b [ instance ] test in
    let results =
      Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
        instance raw
    in
    results
  in
  List.iter
    (fun test ->
      let results = benchmark (Test.make_grouped ~name:"g" [ test ]) in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-45s %12.1f ns/run\n" name est
          | _ -> Printf.printf "%-45s (no estimate)\n" name)
        results)
    tests;
  flush stdout

(* ---- main ---------------------------------------------------------------------------------- *)

let () =
  Printf.printf "selest bench | %s scale | seed %d | census rows %d\n"
    (if cfg.full then "paper (--full)" else "quick")
    cfg.seed census_rows;
  let total_t0 = Unix.gettimeofday () in
  if wants "sanity" then fig_sanity ();
  if wants "4a" then fig4a ();
  if wants "4b" then fig4b ();
  if wants "4c" then fig4c ();
  if wants "5a" then fig5a ();
  if wants "5b" then fig5b ();
  if wants "5c" then fig5c ();
  if wants "6a" then fig6a ();
  if wants "6b" then fig6b ();
  if wants "6c" then fig6c ();
  if wants "7a" then fig7a ();
  if wants "7b" then fig7b ();
  if wants "7c" then fig7c ();
  if wants "range" then fig_range ();
  if wants "structure" then fig_structure ();
  if wants "ablation-score" then ablation_score ();
  if wants "ablation-join" then ablation_join ();
  if wants "serve-cache" then fig_serve_cache ();
  if wants "inference" then fig_inference ();
  if wants "plan" then fig_plan ();
  if wants "learn" then fig_learn ();
  if wants "obs" then fig_obs ();
  if wants "opt" then fig_opt ();
  if wants "exec" then fig_exec ();
  if wants "frontend" then fig_frontend ();
  if wants "telemetry" then fig_telemetry ();
  if wants "serve" then fig_serve ();
  if wants "bechamel" then bechamel_suite ();
  Printf.printf "\ntotal bench time: %.1fs\n" (Unix.gettimeofday () -. total_t0)
