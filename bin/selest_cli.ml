(* selest: command-line interface to the selectivity-estimation library.

   Subcommands: gen, inspect, learn, estimate, compare, plan, optimize,
   sample, serve, ask.  Run `selest <cmd> --help` for details. *)

open Cmdliner
open Selest

(* ---- shared options ------------------------------------------------------ *)

let dataset_conv = Arg.enum [ ("census", `Census); ("tb", `Tb); ("fin", `Fin) ]

let dataset_arg =
  Arg.(
    value
    & opt dataset_conv `Census
    & info [ "d"; "dataset" ] ~docv:"NAME" ~doc:"Dataset: census, tb or fin.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Generator seed.")

let scale_arg =
  Arg.(
    value
    & opt float 1.0
    & info [ "scale" ] ~docv:"X"
        ~doc:"Scale factor on the dataset's paper-default row counts.")

let from_dir_arg =
  Arg.(
    value
    & opt (some dir) None
    & info [ "from-dir" ] ~docv:"DIR"
        ~doc:"Load the dataset's tables from CSVs in $(docv) instead of generating.")

let budget_arg =
  Arg.(
    value
    & opt int 4096
    & info [ "b"; "budget" ] ~docv:"BYTES" ~doc:"Model storage budget in bytes.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-log" ] ~docv:"FILE"
        ~doc:
          "Append structured JSONL trace records to $(docv): one JSON object \
           per closed span (name, parent, depth, start/end ns, duration, \
           attributes), covering the request path, PRM inference and \
           variable elimination.")

let setup_trace trace = Option.iter Obs.Trace_log.install trace

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log learner progress to stderr.")

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let scaled x f = max 1 (int_of_float (float_of_int x *. f))

let make_db dataset ~scale ~seed ~from_dir =
  let schema =
    match dataset with
    | `Census -> Synth.Census.schema
    | `Tb -> Synth.Tb.schema
    | `Fin -> Synth.Financial.schema
  in
  match from_dir with
  | Some dir -> Db.Csv.load_database schema ~dir
  | None -> (
    match dataset with
    | `Census ->
      Synth.Census.generate ~rows:(scaled Synth.Census.default_rows scale) ~seed ()
    | `Tb ->
      Synth.Tb.generate
        ~patients:(scaled Synth.Tb.default_patients scale)
        ~contacts:(scaled Synth.Tb.default_contacts scale)
        ~strains:(scaled Synth.Tb.default_strains scale)
        ~seed ()
    | `Fin ->
      Synth.Financial.generate
        ~districts:(scaled Synth.Financial.default_districts scale)
        ~accounts:(scaled Synth.Financial.default_accounts scale)
        ~transactions:(scaled Synth.Financial.default_transactions scale)
        ~seed ())

(* ---- gen ------------------------------------------------------------------ *)

let gen_cmd =
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"DIR" ~doc:"Output directory for the CSV files.")
  in
  let run dataset seed scale out =
    let db = make_db dataset ~scale ~seed ~from_dir:None in
    Db.Csv.save_database db ~dir:out;
    Format.printf "%a" Db.Database.pp_summary db;
    Printf.printf "written to %s\n" out
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a synthetic dataset and write it as CSV files.")
    Term.(const run $ dataset_arg $ seed_arg $ scale_arg $ out)

(* ---- inspect ---------------------------------------------------------------- *)

let inspect_cmd =
  let run dataset seed scale from_dir =
    let db = make_db dataset ~scale ~seed ~from_dir in
    Format.printf "%a" Db.Database.pp_summary db;
    Format.printf "%a" Db.Schema.pp (Db.Database.schema db);
    Format.printf "%a" Db.Integrity.pp_report (Db.Integrity.audit db)
  in
  Cmd.v
    (Cmd.info "inspect" ~doc:"Print schema, sizes, integrity and join-fanout statistics.")
    Term.(const run $ dataset_arg $ seed_arg $ scale_arg $ from_dir_arg)

(* ---- learn ------------------------------------------------------------------- *)

let kind_arg =
  Arg.(
    value
    & opt (enum [ ("tree", Bn.Cpd.Trees); ("table", Bn.Cpd.Tables) ]) Bn.Cpd.Trees
    & info [ "cpd" ] ~docv:"KIND" ~doc:"CPD representation: tree or table.")

let rule_arg =
  Arg.(
    value
    & opt
        (enum [ ("ssn", Bn.Learn.Ssn); ("mdl", Bn.Learn.Mdl); ("naive", Bn.Learn.Naive) ])
        Bn.Learn.Ssn
    & info [ "rule" ] ~docv:"RULE" ~doc:"Move-selection rule: ssn, mdl or naive.")

let bn_uj_arg =
  Arg.(
    value & flag
    & info [ "bn-uj" ]
        ~doc:"Restrict to per-table BNs + uniform join (the BN+UJ baseline).")

let save_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "save" ] ~docv:"FILE" ~doc:"Write the learned model to $(docv).")

let learn_cmd =
  let run dataset seed scale from_dir budget kind rule bn_uj save verbose =
    setup_logs verbose;
    let db = make_db dataset ~scale ~seed ~from_dir in
    let base =
      if bn_uj then Prm.Learn.bn_uj_config ~budget_bytes:budget
      else Prm.Learn.default_config ~budget_bytes:budget
    in
    let cfg = { base with Prm.Learn.kind; rule; seed } in
    let t0 = Unix.gettimeofday () in
    let r = Prm.Learn.learn ~config:cfg db in
    Printf.printf "learned in %.2fs: %d bytes, %d accepted moves\n\n"
      (Unix.gettimeofday () -. t0)
      r.Prm.Learn.bytes r.Prm.Learn.iterations;
    Format.printf "%a" Prm.Model.pp r.Prm.Learn.model;
    match save with
    | Some path ->
      Prm.Serialize.save path r.Prm.Learn.model;
      Printf.printf "saved to %s\n" path
    | None -> ()
  in
  Cmd.v
    (Cmd.info "learn"
       ~doc:"Learn a PRM from a dataset under a storage budget and print it.")
    Term.(
      const run $ dataset_arg $ seed_arg $ scale_arg $ from_dir_arg $ budget_arg
      $ kind_arg $ rule_arg $ bn_uj_arg $ save_arg $ verbose_arg)

(* ---- estimate ------------------------------------------------------------------ *)

let estimate_cmd =
  let tv_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "t"; "tv" ] ~docv:"TV=TABLE"
          ~doc:"Tuple variable binding, e.g. p=patient (repeatable).")
  in
  let join_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "j"; "join" ] ~docv:"C.FK=P"
          ~doc:"Keyjoin clause, e.g. c.patient=p (repeatable).")
  in
  let select_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "s"; "select" ] ~docv:"TV.ATTR=V"
          ~doc:
            "Selection, e.g. p.USBorn=yes, p.Age=1..3 or c.Contype={household,roommate} \
             (repeatable).")
  in
  let truth_arg =
    Arg.(value & flag & info [ "truth" ] ~doc:"Also compute the exact size (scans the data).")
  in
  let explain_arg =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:
            "Print the compiled plan: upward closure, query-evaluation factors, \
             evidence slots and elimination schedules.")
  in
  let model_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "model" ] ~docv:"FILE"
          ~doc:"Load a previously saved model instead of learning one.")
  in
  let sql_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "sql" ] ~docv:"QUERY"
          ~doc:
            "A SELECT COUNT(*) query, e.g. \"SELECT COUNT(*) FROM contact c JOIN \
             patient p ON c.patient = p.id WHERE p.USBorn = 'yes'\".  Replaces \
             --tv/--join/--select.")
  in
  let run dataset seed scale from_dir budget tvs joins selects truth explain model_file sql
      trace =
    setup_trace trace;
    let db = make_db dataset ~scale ~seed ~from_dir in
    let q =
      match sql with
      | Some text -> Db.Sql.parse db text
      | None ->
        if tvs = [] then failwith "estimate: need --sql or at least one --tv";
        Db.Qparse.parse db ~tvars:tvs ~joins ~selects ()
    in
    Format.printf "query: %a@." Db.Query.pp q;
    let model =
      match model_file with
      | Some path -> Prm.Serialize.load path ~schema:(Db.Database.schema db)
      | None -> learn_prm ~budget_bytes:budget ~seed db
    in
    if explain then begin
      let plan = Plan.compile model q in
      Format.printf "closure: %a@." Db.Query.pp (Plan.upward_closure plan q);
      Format.printf "%a" Plan.pp plan
    end;
    Printf.printf "estimate: %.1f\n" (estimate model db q);
    if truth then Printf.printf "truth:    %.0f\n" (true_size db q);
    Obs.Trace_log.close ()
  in
  Cmd.v
    (Cmd.info "estimate"
       ~doc:"Learn a PRM and estimate the result size of one query.")
    Term.(
      const run $ dataset_arg $ seed_arg $ scale_arg $ from_dir_arg $ budget_arg
      $ tv_arg $ join_arg $ select_arg $ truth_arg $ explain_arg $ model_arg $ sql_arg
      $ trace_arg)

(* ---- compare -------------------------------------------------------------------- *)

let compare_cmd =
  let attrs_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "attrs" ] ~docv:"A,B,..."
          ~doc:"Comma-separated attributes of the (single-table) suite.")
  in
  let table_arg =
    Arg.(
      value
      & opt string "person"
      & info [ "table" ] ~docv:"TABLE" ~doc:"Table the suite selects from.")
  in
  let max_q_arg =
    Arg.(
      value
      & opt int 20_000
      & info [ "max-queries" ] ~docv:"N" ~doc:"Subsample cap on suite instantiations.")
  in
  let run dataset seed scale from_dir budget attrs table max_queries =
    let db = make_db dataset ~scale ~seed ~from_dir in
    let attrs = String.split_on_char ',' attrs |> List.map String.trim in
    let suite =
      Workload.Suite.single_table ~name:(String.concat "," attrs) ~table ~attrs
    in
    let pairs = List.map (fun a -> (table, a)) attrs in
    let estimators =
      [
        Est.Avi.build ~attrs:pairs db;
        Est.Mhist.build ~table ~attrs ~budget_bytes:budget db;
        Est.Wavelet.build ~table ~attrs ~budget_bytes:budget db;
        Est.Sample.build
          ~rows:(max 1 (budget / (4 * List.length attrs)))
          ~seed ~attrs:pairs db;
        Est.Bn_est.build ~table ~attrs ~budget_bytes:budget ~seed db;
      ]
    in
    let outcomes = Workload.Runner.run_all db suite estimators ~max_queries ~seed () in
    Workload.Report.print (Workload.Report.outcomes_table outcomes)
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Compare AVI, MHIST, SAMPLE and the BN estimator at equal storage on an \
          all-instantiations equality-query suite.")
    Term.(
      const run $ dataset_arg $ seed_arg $ scale_arg $ from_dir_arg $ budget_arg
      $ attrs_arg $ table_arg $ max_q_arg)

(* ---- plan ----------------------------------------------------------------------- *)

let plan_cmd =
  let tv_arg =
    Arg.(
      value & opt_all string []
      & info [ "t"; "tv" ] ~docv:"TV=TABLE" ~doc:"Tuple variable binding (repeatable).")
  in
  let join_arg =
    Arg.(
      value & opt_all string []
      & info [ "j"; "join" ] ~docv:"C.FK=P" ~doc:"Keyjoin clause (repeatable).")
  in
  let select_arg =
    Arg.(
      value & opt_all string []
      & info [ "s"; "select" ] ~docv:"TV.ATTR=V" ~doc:"Selection (repeatable).")
  in
  let sql_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "sql" ] ~docv:"QUERY" ~doc:"A SELECT COUNT(*) query (replaces --tv/--join/--select).")
  in
  let run dataset seed scale from_dir budget tvs joins selects sql =
    let db = make_db dataset ~scale ~seed ~from_dir in
    let q =
      match sql with
      | Some text -> Db.Sql.parse db text
      | None -> Db.Qparse.parse db ~tvars:tvs ~joins ~selects ()
    in
    let model = learn_prm ~budget_bytes:budget ~seed db in
    let prm_oracle =
      Prm.Estimate.cached_estimator model ~sizes:(Prm.Estimate.sizes_of_db db)
    in
    let truth qq = true_size db qq in
    Format.printf "query: %a@.@." Db.Query.pp q;
    print_endline "plan (left-deep order)            |    PRM cost |   true cost";
    List.iter
      (fun plan ->
        Printf.printf "%-34s| %11.0f | %11.0f\n" (String.concat " > " plan)
          (Workload.Planner.plan_cost prm_oracle q plan)
          (Workload.Planner.plan_cost truth q plan))
      (Workload.Planner.plans q);
    let best, cost = Workload.Planner.best_plan prm_oracle q in
    Printf.printf "\nchosen: %s (estimated cost %.0f)\n" (String.concat " > " best) cost
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:"Rank left-deep join orders of a query by PRM-estimated cost.")
    Term.(
      const run $ dataset_arg $ seed_arg $ scale_arg $ from_dir_arg $ budget_arg
      $ tv_arg $ join_arg $ select_arg $ sql_arg)

(* ---- optimize ------------------------------------------------------------------- *)

let optimize_cmd =
  let tv_arg =
    Arg.(
      value & opt_all string []
      & info [ "t"; "tv" ] ~docv:"TV=TABLE" ~doc:"Tuple variable binding (repeatable).")
  in
  let join_arg =
    Arg.(
      value & opt_all string []
      & info [ "j"; "join" ] ~docv:"C.FK=P" ~doc:"Keyjoin clause (repeatable).")
  in
  let select_arg =
    Arg.(
      value & opt_all string []
      & info [ "s"; "select" ] ~docv:"TV.ATTR=V" ~doc:"Selection (repeatable).")
  in
  let sql_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "sql" ] ~docv:"QUERY" ~doc:"A SELECT COUNT(*) query (replaces --tv/--join/--select).")
  in
  let bushy_arg =
    Arg.(
      value & flag
      & info [ "bushy" ] ~doc:"Search bushy join trees, not just left-deep orders.")
  in
  let explain_arg =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:
            "Also print every left-deep order's PRM-estimated vs. true C_out \
             and their rank correlation.")
  in
  let model_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "model" ] ~docv:"FILE"
          ~doc:"Load a previously saved model instead of learning one.")
  in
  let run dataset seed scale from_dir budget tvs joins selects sql bushy explain
      model_file =
    let db = make_db dataset ~scale ~seed ~from_dir in
    let q =
      match sql with
      | Some text -> Db.Sql.parse db text
      | None -> Db.Qparse.parse db ~tvars:tvs ~joins ~selects ()
    in
    let model =
      match model_file with
      | Some path -> Prm.Serialize.load path ~schema:(Db.Database.schema db)
      | None -> learn_prm ~budget_bytes:budget ~seed db
    in
    let prm_oracle =
      Prm.Estimate.cached_estimator model ~sizes:(Prm.Estimate.sizes_of_db db)
    in
    let fallback = Opt.Optimizer.independence db in
    let price sub =
      try prm_oracle sub with Est.Estimator.Unsupported _ -> fallback sub
    in
    Format.printf "query: %a@.@." Db.Query.pp q;
    let chosen = Opt.Optimizer.best ~bushy ~fallback ~cost:prm_oracle q in
    Format.printf "chosen tree: %a  (estimated C_out %.0f%s)@.@." Opt.Jointree.pp
      chosen.Opt.Optimizer.tree chosen.Opt.Optimizer.cost
      (if chosen.Opt.Optimizer.n_fallbacks > 0 then
         Printf.sprintf ", %d sub-queries priced by the AVI fallback"
           chosen.Opt.Optimizer.n_fallbacks
       else "");
    let result = Opt.Hashjoin.run db q chosen.Opt.Optimizer.tree in
    print_string (Opt.Explain.render ~est:price q result);
    print_endline
      (Opt.Explain.summary_line ~cost_est:chosen.Opt.Optimizer.cost result);
    if explain then begin
      let orders = Opt.Jointree.orders q in
      let est_costs = List.map (fun o -> Opt.Optimizer.order_cost ~cost:price q o) orders in
      let true_costs =
        List.map (fun o -> Opt.Optimizer.order_cost ~cost:(true_size db) q o) orders
      in
      print_newline ();
      print_endline "left-deep order                   |    est cost |   true cost";
      List.iter2
        (fun o (ec, tc) ->
          Printf.printf "%-34s| %11.0f | %11.0f\n" (String.concat " > " o) ec tc)
        orders
        (List.combine est_costs true_costs);
      Printf.printf "\nrank correlation (est vs. true): %.3f\n"
        (Opt.Optimizer.rank_correlation true_costs est_costs)
    end
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:
         "Pick the C_out-minimal join tree under PRM estimates, execute it with \
          the materializing hash-join executor, and render estimated vs. actual \
          rows per operator.")
    Term.(
      const run $ dataset_arg $ seed_arg $ scale_arg $ from_dir_arg $ budget_arg
      $ tv_arg $ join_arg $ select_arg $ sql_arg $ bushy_arg $ explain_arg
      $ model_arg)

(* ---- sample --------------------------------------------------------------------- *)

let sample_cmd =
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"DIR" ~doc:"Output directory for the synthetic CSVs.")
  in
  let run dataset seed scale from_dir budget out =
    let db = make_db dataset ~scale ~seed ~from_dir in
    let model = learn_prm ~budget_bytes:budget ~seed db in
    let rng = Util.Rng.create (seed lxor 0x5A) in
    let synthetic =
      Prm.Sample.database rng model ~sizes:(Prm.Estimate.sizes_of_db db)
    in
    Db.Csv.save_database synthetic ~dir:out;
    Format.printf "%a" Db.Database.pp_summary synthetic;
    Printf.printf
      "synthetic database (sampled from a %dB model, not from the data) written to %s\n"
      (Prm.Model.size_bytes model) out
  in
  Cmd.v
    (Cmd.info "sample"
       ~doc:
         "Learn a PRM and emit a synthetic database sampled from it (model-based \
          synthetic data).")
    Term.(const run $ dataset_arg $ seed_arg $ scale_arg $ from_dir_arg $ budget_arg $ out)

(* ---- serve ---------------------------------------------------------------------- *)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

(* HOST:PORT pairs for the TCP listener/client. *)
let tcp_conv =
  let parse s =
    match String.rindex_opt s ':' with
    | None -> Error (`Msg "expected HOST:PORT")
    | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 && host <> "" -> Ok (host, p)
      | _ -> Error (`Msg "expected HOST:PORT with PORT in 1..65535"))
  in
  Arg.conv (parse, fun ppf (h, p) -> Format.fprintf ppf "%s:%d" h p)

let serve_cmd =
  let cache_arg =
    Arg.(
      value
      & opt int (1 lsl 20)
      & info [ "cache-bytes" ] ~docv:"BYTES" ~doc:"Estimate-cache capacity in bytes.")
  in
  let model_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "model" ] ~docv:"FILE"
          ~doc:"Load $(docv) into the registry as \"default\" before serving.")
  in
  let learn_arg =
    Arg.(
      value & flag
      & info [ "learn" ]
          ~doc:"Learn a PRM from the dataset at start-up and register it as \"default\".")
  in
  let pool_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "pool-size" ] ~docv:"N"
          ~doc:
            "Worker domains for ESTBATCH inference (default: number of cores minus \
             one; 0 answers batches inline on the dispatcher).")
  in
  let slow_quantile_arg =
    Arg.(
      value & opt float 0.99
      & info [ "slow-quantile" ] ~docv:"Q"
          ~doc:
            "Latency quantile that sets the slow-log capture threshold: requests \
             slower than this quantile of the live latency histogram are captured \
             with their span tree.")
  in
  let qerror_gate_arg =
    Arg.(
      value & opt float 100.0
      & info [ "qerror-gate" ] ~docv:"Q"
          ~doc:"Capture any TRUTH whose q-error reaches $(docv) into the slow-log.")
  in
  let slo_p99_arg =
    Arg.(
      value & opt float 10_000.0
      & info [ "slo-p99-us" ] ~docv:"US"
          ~doc:"Declared p99 latency SLO target in microseconds (HEALTH burn rate).")
  in
  let domains_arg =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Executor shards: one domain per shard, each owning a disjoint set of \
             connections with its own estimate and plan caches (lock-free request \
             path when $(docv) > 1).")
  in
  let tcp_arg =
    Arg.(
      value
      & opt (some tcp_conv) None
      & info [ "tcp" ] ~docv:"HOST:PORT"
          ~doc:"Also listen on a TCP endpoint (the Unix socket stays bound).")
  in
  let max_inflight_arg =
    Arg.(
      value & opt int 1024
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:
            "Admission budget: live connections per shard.  When every shard is \
             full, new connections are answered BUSY and closed.")
  in
  let backlog_arg =
    Arg.(
      value & opt int 128
      & info [ "backlog" ] ~docv:"N"
          ~doc:"listen(2) backlog for both the Unix-socket and TCP listeners.")
  in
  let run dataset seed scale from_dir budget socket cache_bytes pool_size model_file
      learn slow_quantile qerror_gate slo_p99_us domains tcp max_inflight backlog
      verbose trace =
    setup_logs verbose;
    setup_trace trace;
    Logs.set_level (Some (if verbose then Logs.Debug else Logs.Info));
    let db = make_db dataset ~scale ~seed ~from_dir in
    let server =
      Serve.Server.create ~cache_bytes ?pool_size ~slow_quantile ~qerror_gate
        ~slo_p99_us ~domains ?tcp ~max_inflight ~backlog ~db ~socket ()
    in
    (match model_file with
    | Some path ->
      let e = Serve.Registry.load (Serve.Server.registry server) ~name:"default" ~path in
      Printf.printf "loaded default model version %d from %s\n%!" e.Serve.Registry.version path
    | None -> ());
    if learn then begin
      let model = learn_prm ~budget_bytes:budget ~seed db in
      ignore (Serve.Registry.register (Serve.Server.registry server) ~name:"default" model);
      Printf.printf "learned default model (%d bytes)\n%!" (Prm.Model.size_bytes model)
    end;
    Printf.printf "serving on %s%s (schema %s, %d domain%s)\n%!" socket
      (match tcp with
      | None -> ""
      | Some (h, p) -> Printf.sprintf " and tcp %s:%d" h p)
      (Serve.Registry.schema_fingerprint (Serve.Server.registry server))
      domains
      (if domains = 1 then "" else "s");
    Serve.Server.run server
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the long-lived estimation service on a Unix-domain socket (and \
          optionally TCP via --tcp).  Speaks a line protocol: PING, LOAD <name> \
          <path>, EST [@model] <query>, ESTBATCH [@model] <query> || <query> || \
          ..., EXPLAIN [@model] <query>, TRUTH [@model] <n> <query>, METRICS, \
          STATS, HEALTH, SHARDS, SLOWLOG [<count>], SHUTDOWN.  With --domains N \
          the server runs N executor shards, each with domain-local caches; when \
          every shard is at --max-inflight connections, new connections get one \
          BUSY line.")
    Term.(
      const run $ dataset_arg $ seed_arg $ scale_arg $ from_dir_arg $ budget_arg
      $ socket_arg $ cache_arg $ pool_arg $ model_arg $ learn_arg
      $ slow_quantile_arg $ qerror_gate_arg $ slo_p99_arg $ domains_arg $ tcp_arg
      $ max_inflight_arg $ backlog_arg $ verbose_arg $ trace_arg)

(* ---- ask ------------------------------------------------------------------------- *)

(* Client commands reach the server over either transport: --socket PATH
   (Unix domain) or --tcp HOST:PORT. *)

let client_socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path of the server.")

let client_tcp_arg =
  Arg.(
    value
    & opt (some tcp_conv) None
    & info [ "tcp" ] ~docv:"HOST:PORT"
        ~doc:"TCP endpoint of the server (alternative to --socket).")

let endpoint_name socket tcp =
  match (socket, tcp) with
  | Some s, _ -> s
  | None, Some (h, p) -> Printf.sprintf "%s:%d" h p
  | None, None -> "<no endpoint>"

let with_client ~cmd ~socket ~tcp ~retries f =
  match (socket, tcp) with
  | Some s, _ -> Serve.Client.with_connection ~retries ~socket:s f
  | None, Some (host, port) ->
    Serve.Client.with_tcp_connection ~retries ~host ~port f
  | None, None ->
    Printf.eprintf "%s: need --socket PATH or --tcp HOST:PORT\n" cmd;
    exit 1

let ask_cmd =
  let words_arg =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"WORDS"
          ~doc:
            "The request, e.g. PING, STATS, or EST \"c=contact,p=patient; \
             c.patient=p; p.USBorn=yes\".")
  in
  let retries_arg =
    Arg.(
      value & opt int 40
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Connection attempts (exponential backoff, 10ms doubling capped at \
             640ms) while the server starts up.")
  in
  let bin_arg =
    Arg.(
      value & flag
      & info [ "bin" ]
          ~doc:
            "Speak the length-prefixed binary frame protocol instead of text: \
             upgrade the connection with the BIN hello, send the request as one \
             binary frame, print the decoded reply.  EST and ESTBATCH only.")
  in
  (* Binary mode reuses the text parser for the command line itself, then
     ships the query bodies as one binary frame; replies are printed in
     the text protocol's OK/ERR shape so scripts can treat both modes
     alike. *)
  let run_bin c line =
    match Serve.Protocol.parse_request line with
    | Ok (Serve.Protocol.Est { model; body }) -> (
      Serve.Client.upgrade c;
      match Serve.Client.est_bin c ?model body with
      | Ok v ->
        print_endline (Serve.Protocol.ok (Printf.sprintf "%.17g" v));
        `Ok
      | Error msg ->
        print_endline (Serve.Protocol.err msg);
        `Err)
    | Ok (Serve.Protocol.Estbatch { model; bodies }) -> (
      Serve.Client.upgrade c;
      match Serve.Client.estbatch_bin c ?model bodies with
      | Ok vs ->
        print_endline
          (Serve.Protocol.ok
             (String.concat " " (List.map (Printf.sprintf "%.17g") vs)));
        `Ok
      | Error msg ->
        print_endline (Serve.Protocol.err msg);
        `Err)
    | Ok _ ->
      print_endline (Serve.Protocol.err "--bin supports EST and ESTBATCH only");
      `Err
    | Error msg ->
      print_endline (Serve.Protocol.err msg);
      `Err
  in
  let run socket tcp retries bin words =
    let line = String.concat " " words in
    if bin then (
      match with_client ~cmd:"ask" ~socket ~tcp ~retries (fun c -> run_bin c line) with
      | `Ok -> ()
      | `Err -> exit 1
      | exception Unix.Unix_error (e, _, _) ->
        Printf.eprintf "ask: cannot reach server at %s: %s\n"
          (endpoint_name socket tcp) (Unix.error_message e);
        exit 1)
    else
      match
        with_client ~cmd:"ask" ~socket ~tcp ~retries (fun c ->
            Serve.Client.request c line)
      with
      | response ->
          print_endline response;
          if Serve.Protocol.is_err response then exit 1
      | exception Unix.Unix_error (e, _, _) ->
          Printf.eprintf "ask: cannot reach server at %s: %s\n"
            (endpoint_name socket tcp) (Unix.error_message e);
          exit 1
  in
  Cmd.v
    (Cmd.info "ask"
       ~doc:"Send one request line to a running estimation service and print the reply.")
    Term.(const run $ client_socket_arg $ client_tcp_arg $ retries_arg $ bin_arg $ words_arg)

(* ---- health / slowlog ------------------------------------------------------------ *)

(* Thin verbs over the text protocol — `ask` can send the same lines,
   but these give the two operator surfaces first-class commands. *)

let client_retries_arg =
  Arg.(
    value & opt int 40
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Connection attempts (exponential backoff, 10ms doubling capped at \
           640ms) while the server starts up.")

let send_and_print ~cmd ~socket ~tcp ~retries line =
  match
    with_client ~cmd ~socket ~tcp ~retries (fun c -> Serve.Client.request c line)
  with
  | response ->
    print_endline response;
    if Serve.Protocol.is_err response then exit 1
  | exception Unix.Unix_error (e, _, _) ->
    Printf.eprintf "%s: cannot reach server at %s: %s\n" cmd
      (endpoint_name socket tcp) (Unix.error_message e);
    exit 1

let health_cmd =
  let run socket tcp retries =
    send_and_print ~cmd:"health" ~socket ~tcp ~retries "HEALTH"
  in
  Cmd.v
    (Cmd.info "health"
       ~doc:
         "Print a running service's SLO report: per-verb latency quantiles \
          (p50/p95/p99/p999), error-budget burn against the declared latency and \
          q-error SLOs, cache hit rates, per-shard state, per-model accuracy and \
          slow-log state.")
    Term.(const run $ client_socket_arg $ client_tcp_arg $ client_retries_arg)

let slowlog_cmd =
  let n_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "n" ] ~docv:"COUNT" ~doc:"Newest $(docv) entries (default 10).")
  in
  let run socket tcp retries n =
    let line =
      match n with Some n -> Printf.sprintf "SLOWLOG %d" n | None -> "SLOWLOG"
    in
    send_and_print ~cmd:"slowlog" ~socket ~tcp ~retries line
  in
  Cmd.v
    (Cmd.info "slowlog"
       ~doc:
         "Dump a running service's tail-sampled slow-log: requests over the \
          latency threshold or TRUTHs over the q-error gate, each with its \
          canonical query and captured span tree.")
    Term.(const run $ client_socket_arg $ client_tcp_arg $ client_retries_arg $ n_arg)

(* ---- main ------------------------------------------------------------------------ *)

let () =
  let doc = "selectivity estimation with probabilistic models (SIGMOD 2001)" in
  let info = Cmd.info "selest" ~doc ~version:"1.0.0" in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            gen_cmd; inspect_cmd; learn_cmd; estimate_cmd; compare_cmd; plan_cmd;
            optimize_cmd; sample_cmd; serve_cmd; ask_cmd; health_cmd; slowlog_cmd;
          ]))
