SOCKET ?= /tmp/selest-demo.sock
CLI = dune exec --no-build bin/selest_cli.exe --

.PHONY: build test bench bench-smoke serve-demo clean

build:
	dune build

test: build
	dune runtest

bench: build
	dune exec bench/main.exe

# Quick inference-core benchmark: asserts the optimized VE/batch paths are
# bit-identical to their reference engines and emits BENCH_inference.json.
# The plan figure asserts the compiled-plan pipeline (compile once, bind
# many) is bit-identical to the one-shot path and that a warm execute is
# no slower than recompiling per request, emitting BENCH_plan.json.
# The obs figure then runs a traced estimate (asserting tracing overhead
# < 8% / < 150ns per span and EXPLAIN stage-sum fidelity), emits BENCH_obs.json, and its
# normalized EXPLAIN/METRICS shape is diffed against the checked-in
# golden so response-format regressions fail CI.
# The opt figure runs the plan-regret harness (exact-oracle regret must
# be exactly 1.0 and PRM must regret no more rows than AVI on the TB
# keyjoin suite) and emits BENCH_opt.json.
# The learn figure races the incremental structure climber against the
# naive reference on the TB database, asserts the two are bit-identical
# (same trajectory, same serialized model) and that the incremental one
# is no slower, and emits BENCH_learn.json.
# The exec figure gates the bytecode executor: bit-identity against
# Ve.Reference, >= 5x over the generic warm execute, a hard
# zero-allocation gate (Gc.minor_words delta must be exactly 0 across
# 10k warm load+run pairs) and binary-frame EST throughput >= text, and
# emits BENCH_exec.json.
# The frontend figure gates the allocation-free request front-end: the
# zero-copy parser must agree with the reference pipeline on every TB
# body and run >= 2x faster, compiled range/set predicates must be
# bit-identical to the generic engine and Ve.Reference, a warm served
# EST round trip (socket read -> answer write, text and binary framing)
# must allocate exactly zero minor words, and transport-free QPS must
# hold the BENCH_exec.json baselines (so it runs after the exec
# figure); emits BENCH_frontend.json.
# The telemetry figure gates the sharded telemetry core: per-request
# bookkeeping < 5% of a cold EST, merged snapshots bit-exact against a
# sequential oracle, multi-domain contention scaling (skipped on
# single-core hosts), HEALTH/SLOWLOG end to end, and its response shape
# diffed against test/golden/telemetry_golden.txt; emits
# BENCH_telemetry.json.
# The serve figure gates the shard-per-domain server over real sockets:
# QPS at 1/2/4 executor domains (the >= 1.7x 2→4 scaling gate is
# recorded as skipped on hosts with < 4 cores), bit-identity of every
# sharded answer against the transport-free single-domain reference,
# admission-control BUSY rejection, TCP text + binary transport, and
# structural lock-freedom of the sharded request path; emits
# BENCH_serve.json.
bench-smoke: build
	dune exec bench/main.exe -- --fig inference
	@python3 -m json.tool BENCH_inference.json > /dev/null 2>&1 \
	  && echo "BENCH_inference.json: valid" \
	  || { echo "BENCH_inference.json: INVALID JSON"; exit 1; }
	dune exec bench/main.exe -- --fig learn
	@python3 -m json.tool BENCH_learn.json > /dev/null 2>&1 \
	  && echo "BENCH_learn.json: valid" \
	  || { echo "BENCH_learn.json: INVALID JSON"; exit 1; }
	dune exec bench/main.exe -- --fig plan
	@python3 -m json.tool BENCH_plan.json > /dev/null 2>&1 \
	  && echo "BENCH_plan.json: valid" \
	  || { echo "BENCH_plan.json: INVALID JSON"; exit 1; }
	dune exec bench/main.exe -- --fig obs
	@python3 -m json.tool BENCH_obs.json > /dev/null 2>&1 \
	  && echo "BENCH_obs.json: valid" \
	  || { echo "BENCH_obs.json: INVALID JSON"; exit 1; }
	@diff -u test/golden/obs_golden.txt BENCH_obs_golden.txt \
	  && echo "obs golden: match" \
	  || { echo "obs golden: EXPLAIN/METRICS shape changed (update test/golden/obs_golden.txt if intended)"; exit 1; }
	dune exec bench/main.exe -- --fig opt
	@python3 -m json.tool BENCH_opt.json > /dev/null 2>&1 \
	  && echo "BENCH_opt.json: valid" \
	  || { echo "BENCH_opt.json: INVALID JSON"; exit 1; }
	dune exec bench/main.exe -- --fig exec
	@python3 -m json.tool BENCH_exec.json > /dev/null 2>&1 \
	  && echo "BENCH_exec.json: valid" \
	  || { echo "BENCH_exec.json: INVALID JSON"; exit 1; }
	dune exec bench/main.exe -- --fig frontend
	@python3 -m json.tool BENCH_frontend.json > /dev/null 2>&1 \
	  && echo "BENCH_frontend.json: valid" \
	  || { echo "BENCH_frontend.json: INVALID JSON"; exit 1; }
	dune exec bench/main.exe -- --fig telemetry
	@python3 -m json.tool BENCH_telemetry.json > /dev/null 2>&1 \
	  && echo "BENCH_telemetry.json: valid" \
	  || { echo "BENCH_telemetry.json: INVALID JSON"; exit 1; }
	@diff -u test/golden/telemetry_golden.txt BENCH_telemetry_golden.txt \
	  && echo "telemetry golden: match" \
	  || { echo "telemetry golden: HEALTH/SLOWLOG shape changed (update test/golden/telemetry_golden.txt if intended)"; exit 1; }
	dune exec bench/main.exe -- --fig serve
	@python3 -m json.tool BENCH_serve.json > /dev/null 2>&1 \
	  && echo "BENCH_serve.json: valid" \
	  || { echo "BENCH_serve.json: INVALID JSON"; exit 1; }

# Smoke-test the estimation service end to end: start a server that learns
# a PRM over the TB dataset, exercise the whole protocol, shut it down.
serve-demo: build
	@rm -f $(SOCKET)
	@$(CLI) serve -d tb --learn -b 4096 --socket $(SOCKET) & \
	trap 'kill %1 2>/dev/null' EXIT; \
	$(CLI) ask --socket $(SOCKET) PING && \
	$(CLI) ask --socket $(SOCKET) "EST c=contact, p=patient ; c.patient=p ; p.USBorn=yes" && \
	$(CLI) ask --socket $(SOCKET) "EST p=patient, c=contact ; c.patient=p ; p.USBorn={yes}" && \
	$(CLI) ask --socket $(SOCKET) STATS && \
	$(CLI) ask --socket $(SOCKET) SHUTDOWN && \
	wait

clean:
	dune clean
