open Selest_db
open Selest_bn

(* Validate that the generators deliver the phenomena the experiments rely
   on: correct shapes, determinism, planted correlations, and join skew. *)

let census_small = lazy (Selest_synth.Census.generate ~rows:8_000 ~seed:5 ())
let tb_small =
  lazy (Selest_synth.Tb.generate ~patients:600 ~contacts:4_000 ~strains:500 ~seed:5 ())
let fin_small =
  lazy
    (Selest_synth.Financial.generate ~districts:40 ~accounts:900 ~transactions:9_000
       ~seed:5 ())

let mi db table x y =
  let data = Data.of_table (Database.table db table) in
  let idx n =
    let rec go i = if data.Data.names.(i) = n then i else go (i + 1) in
    go 0
  in
  Score.mutual_information data [| idx x |] [| idx y |]

(* ---- shapes -------------------------------------------------------------- *)

let test_census_shape () =
  let db = Lazy.force census_small in
  let tbl = Database.table db "person" in
  Alcotest.(check int) "rows" 8_000 (Table.size tbl);
  Alcotest.(check int) "attrs" 12 (Array.length (Table.schema tbl).Schema.attrs);
  Alcotest.(check (array int)) "paper domain sizes"
    [| 18; 9; 17; 7; 24; 5; 2; 3; 3; 3; 42; 4 |]
    (Table.cards tbl)

let test_tb_shape () =
  let db = Lazy.force tb_small in
  Alcotest.(check int) "patients" 600 (Database.n_rows db "patient");
  Alcotest.(check int) "contacts" 4_000 (Database.n_rows db "contact");
  Alcotest.(check int) "strains" 500 (Database.n_rows db "strain");
  Alcotest.(check bool) "integrity" true (Integrity.is_clean (Integrity.audit db))

let test_fin_shape () =
  let db = Lazy.force fin_small in
  Alcotest.(check int) "districts" 40 (Database.n_rows db "district");
  Alcotest.(check int) "accounts" 900 (Database.n_rows db "account");
  Alcotest.(check int) "transactions" 9_000 (Database.n_rows db "transaction");
  Alcotest.(check bool) "integrity" true (Integrity.is_clean (Integrity.audit db))

let test_default_sizes_match_paper () =
  Alcotest.(check int) "census" 150_000 Selest_synth.Census.default_rows;
  Alcotest.(check int) "patients" 2_500 Selest_synth.Tb.default_patients;
  Alcotest.(check int) "contacts" 19_000 Selest_synth.Tb.default_contacts;
  Alcotest.(check int) "strains" 2_000 Selest_synth.Tb.default_strains;
  Alcotest.(check int) "districts" 77 Selest_synth.Financial.default_districts;
  Alcotest.(check int) "accounts" 4_500 Selest_synth.Financial.default_accounts;
  Alcotest.(check int) "transactions" 106_000 Selest_synth.Financial.default_transactions

(* ---- determinism --------------------------------------------------------- *)

let test_determinism () =
  let a = Selest_synth.Census.generate ~rows:500 ~seed:9 () in
  let b = Selest_synth.Census.generate ~rows:500 ~seed:9 () in
  let ta = Database.table a "person" and tb = Database.table b "person" in
  for i = 0 to 11 do
    Alcotest.(check (array int)) "same data" (Table.col ta i) (Table.col tb i)
  done;
  let c = Selest_synth.Census.generate ~rows:500 ~seed:10 () in
  let tc = Database.table c "person" in
  Alcotest.(check bool) "different seed differs" false (Table.col ta 0 = Table.col tc 0)

(* ---- planted structure: census ------------------------------------------- *)

let test_census_correlations () =
  let db = Lazy.force census_small in
  let strong = mi db "person" "Income" "Education" in
  let weak = mi db "person" "Income" "Race" in
  Alcotest.(check bool) "income-education strong vs income-race weak" true
    (strong > 4.0 *. weak);
  Alcotest.(check bool) "age-marital correlated" true (mi db "person" "Age" "MaritalStatus" > 0.2)

let test_census_conditional_independence () =
  (* ChildSupport depends on Children/Marital, only weakly directly on
     Age given those — a proxy: MI(ChildSupport; Marital) should dominate
     MI(ChildSupport; Sex). *)
  let db = Lazy.force census_small in
  Alcotest.(check bool) "mediated structure" true
    (mi db "person" "ChildSupport" "MaritalStatus" > 10.0 *. mi db "person" "ChildSupport" "Sex")

(* ---- planted structure: TB ------------------------------------------------ *)

let test_tb_join_skew () =
  let db = Lazy.force tb_small in
  (* Join skew: P(non-unique strain | US-born) >> P(non-unique | foreign). *)
  let patient = Database.table db "patient" in
  let strain = Database.table db "strain" in
  let usborn = Table.col_by_name patient "USBorn" in
  let unique = Table.col_by_name strain "Unique" in
  let fk = Table.fk_col_by_name patient "strain" in
  let us_nonunique = ref 0 and us = ref 0 and fb_nonunique = ref 0 and fb = ref 0 in
  Array.iteri
    (fun p u ->
      if u = 1 then begin
        incr us;
        if unique.(fk.(p)) = 0 then incr us_nonunique
      end
      else begin
        incr fb;
        if unique.(fk.(p)) = 0 then incr fb_nonunique
      end)
    usborn;
  let r_us = float_of_int !us_nonunique /. float_of_int !us in
  let r_fb = float_of_int !fb_nonunique /. float_of_int !fb in
  Alcotest.(check bool) "US-born cluster more" true (r_us > 1.8 *. r_fb)

let test_tb_fanout_skew () =
  let db = Lazy.force tb_small in
  let contact = Database.table db "contact" in
  let patient = Database.table db "patient" in
  let idx =
    Index.build ~fk_col:(Table.fk_col_by_name contact "patient")
      ~target_size:(Table.size patient)
  in
  let age = Table.col_by_name patient "Age" in
  let sum_mid = ref 0 and n_mid = ref 0 and sum_old = ref 0 and n_old = ref 0 in
  for p = 0 to Table.size patient - 1 do
    if age.(p) = 2 then begin
      sum_mid := !sum_mid + Index.fanout idx p;
      incr n_mid
    end
    else if age.(p) >= 4 then begin
      sum_old := !sum_old + Index.fanout idx p;
      incr n_old
    end
  done;
  let mid = float_of_int !sum_mid /. float_of_int (max 1 !n_mid) in
  let old = float_of_int !sum_old /. float_of_int (max 1 !n_old) in
  Alcotest.(check bool) "middle-aged have more contacts" true (mid > 1.5 *. old)

let test_tb_cross_correlation () =
  let db = Lazy.force tb_small in
  (* Contype vs the patient's age, through the join. *)
  let q =
    Query.create
      ~tvars:[ ("c", "contact"); ("p", "patient") ]
      ~joins:[ Query.join ~child:"c" ~fk:"patient" ~parent:"p" ]
      ()
  in
  let joint = Exec.joint_counts db q ~keys:[ ("c", "Contype"); ("p", "Age") ] in
  let mi = Selest_prob.Info.mutual_information joint [| 0 |] [| 1 |] in
  Alcotest.(check bool) "contype depends on patient age" true (mi > 0.05)

(* ---- planted structure: FIN ----------------------------------------------- *)

let test_fin_cross_correlation () =
  let db = Lazy.force fin_small in
  let q =
    Query.create
      ~tvars:[ ("t", "transaction"); ("a", "account") ]
      ~joins:[ Query.join ~child:"t" ~fk:"account" ~parent:"a" ]
      ()
  in
  let joint = Exec.joint_counts db q ~keys:[ ("t", "Amount"); ("a", "Balance") ] in
  let mi = Selest_prob.Info.mutual_information joint [| 0 |] [| 1 |] in
  Alcotest.(check bool) "amount tracks balance" true (mi > 0.3)

let test_fin_join_skew () =
  let db = Lazy.force fin_small in
  let account = Database.table db "account" in
  let transaction = Database.table db "transaction" in
  let idx =
    Index.build ~fk_col:(Table.fk_col_by_name transaction "account")
      ~target_size:(Table.size account)
  in
  let balance = Table.col_by_name account "Balance" in
  let hi = ref 0.0 and n_hi = ref 0 and lo = ref 0.0 and n_lo = ref 0 in
  for a = 0 to Table.size account - 1 do
    if balance.(a) >= 4 then begin
      hi := !hi +. float_of_int (Index.fanout idx a);
      incr n_hi
    end
    else if balance.(a) <= 1 then begin
      lo := !lo +. float_of_int (Index.fanout idx a);
      incr n_lo
    end
  done;
  Alcotest.(check bool) "rich accounts transact more" true
    (!hi /. float_of_int (max 1 !n_hi) > 2.0 *. (!lo /. float_of_int (max 1 !n_lo)))

(* ---- Gen combinators ------------------------------------------------------ *)

let test_gen_normal_bucket () =
  let rng = Selest_util.Rng.create 3 in
  for _ = 1 to 500 do
    let v = Selest_synth.Gen.normal_bucket rng ~mean:5.0 ~sd:2.0 ~card:10 in
    Alcotest.(check bool) "clamped" true (v >= 0 && v < 10)
  done;
  (* concentrates around the mean *)
  let near = ref 0 in
  for _ = 1 to 1000 do
    let v = Selest_synth.Gen.normal_bucket rng ~mean:5.0 ~sd:1.0 ~card:10 in
    if abs (v - 5) <= 2 then incr near
  done;
  Alcotest.(check bool) "concentrated" true (!near > 900)

let test_gen_weights_zipf () =
  let w = Selest_synth.Gen.weights [ (0, 2.0); (3, 1.0); (0, 1.0) ] ~card:4 in
  Alcotest.(check (array (float 1e-9))) "sparse literal" [| 3.0; 0.0; 0.0; 1.0 |] w;
  let z = Selest_synth.Gen.zipf 3 1.0 in
  Alcotest.(check (float 1e-9)) "zipf decays" (1.0 /. 3.0) z.(2)

let test_gen_assign_children () =
  let rng = Selest_util.Rng.create 8 in
  let fk =
    Selest_synth.Gen.assign_children rng ~parent_count:3 ~total:3_000
      ~weight:(fun p -> if p = 0 then 8.0 else 1.0)
  in
  let counts = Array.make 3 0 in
  Array.iter (fun p -> counts.(p) <- counts.(p) + 1) fk;
  Alcotest.(check int) "total" 3_000 (Array.fold_left ( + ) 0 counts);
  Alcotest.(check bool) "skew realized" true
    (counts.(0) > 4 * counts.(1) && counts.(0) > 4 * counts.(2))

let () =
  Alcotest.run "synth"
    [
      ( "shapes",
        [
          Alcotest.test_case "census" `Quick test_census_shape;
          Alcotest.test_case "tb" `Quick test_tb_shape;
          Alcotest.test_case "fin" `Quick test_fin_shape;
          Alcotest.test_case "paper defaults" `Quick test_default_sizes_match_paper;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "census-structure",
        [
          Alcotest.test_case "correlations" `Quick test_census_correlations;
          Alcotest.test_case "mediated dependence" `Quick test_census_conditional_independence;
        ] );
      ( "tb-structure",
        [
          Alcotest.test_case "join skew" `Quick test_tb_join_skew;
          Alcotest.test_case "fanout skew" `Quick test_tb_fanout_skew;
          Alcotest.test_case "cross-fk correlation" `Quick test_tb_cross_correlation;
        ] );
      ( "fin-structure",
        [
          Alcotest.test_case "cross-fk correlation" `Quick test_fin_cross_correlation;
          Alcotest.test_case "join skew" `Quick test_fin_join_skew;
        ] );
      ( "combinators",
        [
          Alcotest.test_case "normal bucket" `Quick test_gen_normal_bucket;
          Alcotest.test_case "weights and zipf" `Quick test_gen_weights_zipf;
          Alcotest.test_case "assign children" `Quick test_gen_assign_children;
        ] );
    ]
