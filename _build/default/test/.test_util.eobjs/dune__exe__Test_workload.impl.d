test/test_workload.ml: Alcotest Exec Lazy List Planner Printf Query Report Runner Selest_db Selest_est Selest_prob Selest_synth Selest_workload String Suite
