test/test_bn.ml: Alcotest Array Bn Cpd Dag Data Database Float Learn List Printf QCheck2 QCheck_alcotest Query Score Selest_bn Selest_db Selest_prob Selest_synth Selest_util Table_cpd Tree_cpd Ve
