test/test_util.ml: Alcotest Array Arrayx Bytesize Filename Float Format Hashtbl List QCheck2 QCheck_alcotest Rng Selest_util Sexp String Sys Tablefmt
