test/test_core.ml: Alcotest Float Lazy Printf Selest
