test/test_bn.mli:
