test/test_prm.mli:
