test/test_synth.ml: Alcotest Array Data Database Exec Index Integrity Lazy Query Schema Score Selest_bn Selest_db Selest_prob Selest_synth Selest_util Table
