test/test_prob.ml: Alcotest Array Arrayx Contingency Dist Factor Float Info List Option QCheck2 QCheck_alcotest Selest_prob Selest_util
