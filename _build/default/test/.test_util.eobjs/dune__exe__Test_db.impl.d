test/test_db.ml: Alcotest Array Csv Database Discretize Exec Filename Index Integrity Lazy List QCheck2 QCheck_alcotest Qparse Query Schema Selest_db Selest_prob Selest_synth Sql Sys Table Value
