test/test_est.mli:
