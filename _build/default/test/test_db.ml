open Selest_db

let check_float = Alcotest.(check (float 1e-6))

(* A tiny fixed database: dept(2 attrs) <- emp(2 attrs, fk dept). *)
let tiny_schema =
  Schema.create
    [
      Schema.table_schema ~name:"dept"
        ~attrs:[ ("Floor", Value.ints 3); ("Budget", Value.ints 2) ]
        ();
      Schema.table_schema ~name:"emp"
        ~attrs:[ ("Rank", Value.ints 2); ("Age", Value.ints 3) ]
        ~fks:[ ("dept", "dept") ]
        ();
    ]

let tiny_db () =
  let dept =
    Table.create (Schema.find_table tiny_schema "dept")
      ~cols:[| [| 0; 1; 2 |]; [| 0; 1; 1 |] |]
      ~fk_cols:[||]
  in
  let emp =
    Table.create (Schema.find_table tiny_schema "emp")
      ~cols:[| [| 0; 0; 1; 1; 0 |]; [| 0; 1; 2; 0; 1 |] |]
      ~fk_cols:[| [| 0; 0; 1; 2; 2 |] |]
  in
  Database.create tiny_schema [ emp; dept ]

(* ---- Value -------------------------------------------------------------- *)

let test_value_domains () =
  let d = Value.labeled ~ordinal:true [| "lo"; "mid"; "hi" |] in
  Alcotest.(check int) "card" 3 (Value.card d);
  Alcotest.(check string) "label" "mid" (Value.label d 1);
  Alcotest.(check int) "code" 2 (Value.code d "hi");
  Alcotest.(check bool) "ordinal" true (Value.is_ordinal d);
  Alcotest.check_raises "duplicate" (Invalid_argument "Value.labeled: duplicate label x")
    (fun () -> ignore (Value.labeled [| "x"; "x" |]));
  let r = Value.range 5 8 in
  Alcotest.(check int) "range card" 4 (Value.card r);
  Alcotest.(check string) "range label" "7" (Value.label r 2)

(* ---- Schema / Table / Database ----------------------------------------- *)

let test_schema_validation () =
  Alcotest.check_raises "dup column"
    (Invalid_argument "Schema: duplicate column A in table t") (fun () ->
      ignore
        (Schema.table_schema ~name:"t"
           ~attrs:[ ("A", Value.ints 2); ("A", Value.ints 2) ]
           ()));
  Alcotest.check_raises "unknown fk target"
    (Invalid_argument "Schema.create: fk t.f references unknown table nowhere") (fun () ->
      ignore
        (Schema.create
           [ Schema.table_schema ~name:"t" ~attrs:[ ("A", Value.ints 2) ]
               ~fks:[ ("f", "nowhere") ] () ]))

let test_table_validation () =
  let ts = Schema.table_schema ~name:"t" ~attrs:[ ("A", Value.ints 2) ] () in
  Alcotest.(check bool) "create ok" true
    (Table.size (Table.create ts ~cols:[| [| 0; 1 |] |] ~fk_cols:[||]) = 2);
  Alcotest.check_raises "out of domain"
    (Invalid_argument "Table.create: t.A value 5 out of domain [0,2)") (fun () ->
      ignore (Table.create ts ~cols:[| [| 0; 5 |] |] ~fk_cols:[||]))

let test_database_integrity () =
  let db = tiny_db () in
  Alcotest.(check int) "emp rows" 5 (Database.n_rows db "emp");
  Alcotest.(check int) "total" 8 (Database.total_rows db);
  let report = Integrity.audit db in
  Alcotest.(check bool) "clean" true (Integrity.is_clean report);
  Alcotest.(check int) "fanout entries" 1 (List.length report.Integrity.fanouts);
  let bad_emp =
    Table.create (Schema.find_table tiny_schema "emp")
      ~cols:[| [| 0 |]; [| 0 |] |]
      ~fk_cols:[| [| 9 |] |]
  in
  Alcotest.(check bool) "dangling rejected" true
    (try
       ignore (Database.create tiny_schema [ bad_emp; Database.table db "dept" ]);
       false
     with Invalid_argument _ -> true)

let test_index () =
  let db = tiny_db () in
  let emp = Database.table db "emp" in
  let idx = Index.build ~fk_col:(Table.fk_col emp 0) ~target_size:3 in
  Alcotest.(check (array int)) "children of dept0" [| 0; 1 |] (Index.children idx 0);
  Alcotest.(check (array int)) "children of dept2" [| 3; 4 |] (Index.children idx 2);
  Alcotest.(check int) "fanout" 1 (Index.fanout idx 1);
  Alcotest.(check int) "max fanout" 2 (Index.max_fanout idx);
  check_float "mean fanout" (5.0 /. 3.0) (Index.mean_fanout idx)

(* ---- Query -------------------------------------------------------------- *)

let test_query_validation () =
  Alcotest.(check bool) "dup tv rejected" true
    (try
       ignore (Query.create ~tvars:[ ("t", "a"); ("t", "b") ] ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "undeclared select rejected" true
    (try
       ignore (Query.create ~tvars:[ ("t", "a") ] ~selects:[ Query.eq "u" "X" 0 ] ());
       false
     with Invalid_argument _ -> true)

let test_pred_holds () =
  Alcotest.(check bool) "eq" true (Query.pred_holds (Query.Eq 3) 3);
  Alcotest.(check bool) "in" true (Query.pred_holds (Query.In_set [ 1; 4 ]) 4);
  Alcotest.(check bool) "range" false (Query.pred_holds (Query.Range (2, 5)) 6)

(* ---- Exec: fixed cases -------------------------------------------------- *)

let test_exec_single_table () =
  let db = tiny_db () in
  let q =
    Query.create ~tvars:[ ("e", "emp") ] ~selects:[ Query.eq "e" "Rank" 0 ] ()
  in
  check_float "rank=0" 3.0 (Exec.query_size db q);
  let q2 =
    Query.create ~tvars:[ ("e", "emp") ]
      ~selects:[ Query.eq "e" "Rank" 0; Query.range "e" "Age" 1 2 ]
      ()
  in
  check_float "conjunction" 2.0 (Exec.query_size db q2)

let test_exec_join () =
  let db = tiny_db () in
  let q =
    Query.create
      ~tvars:[ ("e", "emp"); ("d", "dept") ]
      ~joins:[ Query.join ~child:"e" ~fk:"dept" ~parent:"d" ]
      ~selects:[ Query.eq "d" "Budget" 1 ]
      ()
  in
  check_float "join select" 3.0 (Exec.query_size db q);
  let q2 =
    Query.create
      ~tvars:[ ("e", "emp"); ("d", "dept") ]
      ~joins:[ Query.join ~child:"e" ~fk:"dept" ~parent:"d" ]
      ~selects:[ Query.eq "d" "Budget" 1; Query.eq "e" "Rank" 1 ]
      ()
  in
  check_float "both sides" 2.0 (Exec.query_size db q2)

let test_exec_cartesian () =
  let db = tiny_db () in
  let q = Query.create ~tvars:[ ("e", "emp"); ("d", "dept") ] () in
  check_float "cartesian" 15.0 (Exec.query_size db q)

let test_exec_branching_join () =
  (* Two employee tuple variables joined to the same department: counts
     pairs of employees in the same department. *)
  let db = tiny_db () in
  let q =
    Query.create
      ~tvars:[ ("e1", "emp"); ("e2", "emp"); ("d", "dept") ]
      ~joins:
        [
          Query.join ~child:"e1" ~fk:"dept" ~parent:"d";
          Query.join ~child:"e2" ~fk:"dept" ~parent:"d";
        ]
      ()
  in
  (* dept fanouts are 2,1,2 -> pairs 4 + 1 + 4 = 9 *)
  check_float "self-join pairs" 9.0 (Exec.query_size db q);
  Alcotest.(check bool) "no single base" true (Exec.single_base db q = None)

let test_exec_validate_errors () =
  let db = tiny_db () in
  let q =
    Query.create ~tvars:[ ("e", "emp") ] ~selects:[ Query.eq "e" "Nope" 0 ] ()
  in
  Alcotest.(check bool) "bad attr" true
    (try
       Exec.validate db q;
       false
     with Invalid_argument _ -> true);
  let q2 =
    Query.create ~tvars:[ ("e", "emp") ] ~selects:[ Query.eq "e" "Rank" 9 ] ()
  in
  Alcotest.(check bool) "bad value" true
    (try
       Exec.validate db q2;
       false
     with Invalid_argument _ -> true)

let test_exec_resolve_and_counts () =
  let db = tiny_db () in
  let q =
    Query.create
      ~tvars:[ ("e", "emp"); ("d", "dept") ]
      ~joins:[ Query.join ~child:"e" ~fk:"dept" ~parent:"d" ]
      ()
  in
  Alcotest.(check (option string)) "base" (Some "e") (Exec.single_base db q);
  let floors = Exec.resolve_column db q ~base:"e" ~tv:"d" ~attr:"Floor" in
  Alcotest.(check (array int)) "resolved floors" [| 0; 0; 1; 2; 2 |] floors;
  let counts = Exec.joint_counts db q ~keys:[ ("e", "Rank"); ("d", "Budget") ] in
  check_float "joint cell" 2.0 (Selest_prob.Contingency.get counts [| 0; 0 |]);
  check_float "joint cell 2" 2.0 (Selest_prob.Contingency.get counts [| 1; 1 |]);
  check_float "joint total" 5.0 (Selest_prob.Contingency.total counts)

(* ---- Exec vs brute force on random databases (qcheck) ------------------- *)

let gen_random_db =
  let open QCheck2.Gen in
  let* n_parent = int_range 1 6 in
  let* n_child = int_range 1 20 in
  let* parent_col = array_size (pure n_parent) (int_range 0 2) in
  let* child_col = array_size (pure n_child) (int_range 0 1) in
  let* fk = array_size (pure n_child) (int_range 0 (n_parent - 1)) in
  let schema =
    Schema.create
      [
        Schema.table_schema ~name:"p" ~attrs:[ ("X", Value.ints 3) ] ();
        Schema.table_schema ~name:"c" ~attrs:[ ("Y", Value.ints 2) ]
          ~fks:[ ("p", "p") ] ();
      ]
  in
  let p = Table.create (Schema.find_table schema "p") ~cols:[| parent_col |] ~fk_cols:[||] in
  let c = Table.create (Schema.find_table schema "c") ~cols:[| child_col |] ~fk_cols:[| fk |] in
  pure (Database.create schema [ p; c ])

let brute_force_join_size db ~x ~y =
  let p = Database.table db "p" and c = Database.table db "c" in
  let px = Table.col p 0 and cy = Table.col c 0 and fk = Table.fk_col c 0 in
  let count = ref 0 in
  for i = 0 to Table.size c - 1 do
    if cy.(i) = y && px.(fk.(i)) = x then incr count
  done;
  float_of_int !count

let prop_exec_matches_brute_force =
  QCheck2.Test.make ~name:"exec join = brute force" ~count:200 gen_random_db (fun db ->
      let ok = ref true in
      for x = 0 to 2 do
        for y = 0 to 1 do
          let q =
            Query.create
              ~tvars:[ ("c", "c"); ("p", "p") ]
              ~joins:[ Query.join ~child:"c" ~fk:"p" ~parent:"p" ]
              ~selects:[ Query.eq "p" "X" x; Query.eq "c" "Y" y ]
              ()
          in
          if Exec.query_size db q <> brute_force_join_size db ~x ~y then ok := false
        done
      done;
      !ok)

let prop_joint_counts_match_query_size =
  QCheck2.Test.make ~name:"joint_counts cells = per-query sizes" ~count:100 gen_random_db
    (fun db ->
      let skeleton =
        Query.create
          ~tvars:[ ("c", "c"); ("p", "p") ]
          ~joins:[ Query.join ~child:"c" ~fk:"p" ~parent:"p" ]
          ()
      in
      let counts = Exec.joint_counts db skeleton ~keys:[ ("c", "Y"); ("p", "X") ] in
      let ok = ref true in
      for y = 0 to 1 do
        for x = 0 to 2 do
          let q =
            Query.with_selects skeleton [ Query.eq "c" "Y" y; Query.eq "p" "X" x ]
          in
          if
            abs_float
              (Selest_prob.Contingency.get counts [| y; x |] -. Exec.query_size db q)
            > 1e-9
          then ok := false
        done
      done;
      !ok)

(* ---- Csv ----------------------------------------------------------------- *)

let test_csv_roundtrip () =
  let db = tiny_db () in
  let dir = Filename.temp_file "selest" "" in
  Sys.remove dir;
  Csv.save_database db ~dir;
  let db2 = Csv.load_database tiny_schema ~dir in
  Array.iter
    (fun tbl ->
      let tbl2 = Database.table db2 (Table.name tbl) in
      Alcotest.(check int) "size" (Table.size tbl) (Table.size tbl2);
      Array.iteri
        (fun ai _ ->
          Alcotest.(check (array int)) "column" (Table.col tbl ai) (Table.col tbl2 ai))
        (Table.schema tbl).Schema.attrs)
    (Database.tables db)

let test_csv_bad_label () =
  let db = tiny_db () in
  let dir = Filename.temp_file "selest" "" in
  Sys.remove dir;
  Csv.save_database db ~dir;
  let path = Filename.concat dir "dept.csv" in
  let oc = open_out path in
  output_string oc "Floor,Budget\n0,0\nbogus,1\n";
  close_out oc;
  Alcotest.(check bool) "unknown label fails" true
    (try
       ignore (Csv.load_database tiny_schema ~dir);
       false
     with Failure _ -> true)

(* ---- Discretize ---------------------------------------------------------- *)

let test_discretize_equi_width () =
  let d = Discretize.equi_width ~card:10 ~bins:3 in
  Alcotest.(check int) "bins" 3 d.Discretize.n_bins;
  Alcotest.(check int) "covers all" 10 (Array.length d.Discretize.bin_of);
  Alcotest.(check int) "width total" 10 (Array.fold_left ( + ) 0 d.Discretize.width);
  Alcotest.(check bool) "in range" true
    (Array.for_all (fun i -> i >= 0 && i < 3) d.Discretize.bin_of)

let test_discretize_equi_depth () =
  (* Heavily skewed column: equi-depth should isolate the heavy value. *)
  let column = Array.append (Array.make 90 0) (Array.init 10 (fun i -> 1 + (i mod 9))) in
  let d = Discretize.equi_depth ~column ~card:10 ~bins:2 in
  Alcotest.(check int) "bins" 2 d.Discretize.n_bins;
  Alcotest.(check int) "heavy value alone" 0 d.Discretize.bin_of.(0);
  Alcotest.(check int) "rest together" 1 d.Discretize.bin_of.(5)

let test_discretize_apply_and_base () =
  let d = Discretize.equi_width ~card:6 ~bins:2 in
  let mapped = Discretize.apply d [| 0; 5; 3 |] in
  Alcotest.(check (array int)) "mapped" [| 0; 1; 1 |] mapped;
  check_float "base estimate" (30.0 /. 3.0)
    (Discretize.base_estimate d ~bucket_estimate:30.0 ~bin:0);
  let dom = Discretize.domain d (Value.ints 6) in
  Alcotest.(check int) "bucket domain" 2 (Value.card dom)


(* ---- Qparse ---------------------------------------------------------------- *)

let test_qparse_basic () =
  let db = tiny_db () in
  let q =
    Qparse.parse db ~tvars:[ "e=emp"; "d=dept" ] ~joins:[ "e.dept=d" ]
      ~selects:[ "e.Rank=1"; "d.Budget=0" ] ()
  in
  check_float "parsed query evaluates" (Exec.query_size db q) 0.0;
  let q2 = Qparse.parse db ~tvars:[ "e=emp" ] ~selects:[ "e.Age=0..1" ] () in
  check_float "range" 4.0 (Exec.query_size db q2);
  let q3 = Qparse.parse db ~tvars:[ "e=emp" ] ~selects:[ "e.Age={0,2}" ] () in
  check_float "set" 3.0 (Exec.query_size db q3)

let test_qparse_bare_table () =
  let db = tiny_db () in
  (* bare table name binds a tuple variable of the same name *)
  let q = Qparse.parse db ~tvars:[ "emp" ] ~selects:[ "emp.Rank=0" ] () in
  check_float "bare binding" 3.0 (Exec.query_size db q)

let test_qparse_errors () =
  let db = tiny_db () in
  let fails f = try f (); false with Failure _ -> true in
  Alcotest.(check bool) "bad join syntax" true
    (fails (fun () -> ignore (Qparse.parse db ~tvars:[ "e=emp" ] ~joins:[ "nonsense" ] ())));
  Alcotest.(check bool) "unknown tv" true
    (fails (fun () -> ignore (Qparse.parse db ~tvars:[ "e=emp" ] ~selects:[ "z.Rank=0" ] ())));
  Alcotest.(check bool) "unknown value" true
    (fails (fun () -> ignore (Qparse.parse db ~tvars:[ "e=emp" ] ~selects:[ "e.Rank=zillion" ] ())));
  Alcotest.(check bool) "out of range code" true
    (fails (fun () -> ignore (Qparse.parse db ~tvars:[ "e=emp" ] ~selects:[ "e.Rank=7" ] ())))

(* ---- non-key join exact sizes ------------------------------------------------ *)

let test_nonkey_join_size () =
  let db = tiny_db () in
  (* emp x emp joined on equal Age. Age column: 0,1,2,0,1 ->
     counts 2,2,1 -> pairs 4+4+1 = 9. *)
  let q1 = Query.create ~tvars:[ ("x", "emp") ] () in
  let q2 = Query.create ~tvars:[ ("y", "emp") ] () in
  check_float "self nonkey join" 9.0 (Exec.nonkey_join_size db (q1, "x", "Age") (q2, "y", "Age"));
  (* with a select on one side: rank=0 has ages 0,1,1 -> sum over v of
     cnt1(v)*cnt2(v) = 1*2 + 2*2 + 0*1 = 6 *)
  let q1s = Query.create ~tvars:[ ("x", "emp") ] ~selects:[ Query.eq "x" "Rank" 0 ] () in
  check_float "selected side" 6.0 (Exec.nonkey_join_size db (q1s, "x", "Age") (q2, "y", "Age"))


(* ---- SQL parser ---------------------------------------------------------------- *)

let tb_db = lazy (Selest_synth.Tb.generate ~patients:300 ~contacts:2_000 ~strains:250 ~seed:44 ())

let test_sql_single_table () =
  let db = tiny_db () in
  let q = Sql.parse db "SELECT COUNT(*) FROM emp e WHERE e.Rank = 0" in
  check_float "parses and evaluates" 3.0 (Exec.query_size db q);
  (* case-insensitive keywords, bare table as tuple variable *)
  let q2 = Sql.parse db "select count(*) from emp where emp.Rank = 1" in
  check_float "bare alias" 2.0 (Exec.query_size db q2)

let test_sql_join_forms () =
  let db = tiny_db () in
  let expect = 3.0 in
  (* explicit JOIN ... ON with .id *)
  let q1 =
    Sql.parse db
      "SELECT COUNT(*) FROM emp e JOIN dept d ON e.dept = d.id WHERE d.Budget = 1"
  in
  check_float "join on id" expect (Exec.query_size db q1);
  (* comma-form with WHERE join, bare parent *)
  let q2 =
    Sql.parse db "SELECT COUNT(*) FROM emp e, dept d WHERE e.dept = d AND d.Budget = 1"
  in
  check_float "comma form" expect (Exec.query_size db q2)

let test_sql_predicates () =
  let db = Lazy.force tb_db in
  let q =
    Sql.parse db
      "SELECT COUNT(*) FROM contact c JOIN patient p ON c.patient = p.id \
       WHERE p.Age BETWEEN '35-49' AND '65-79' AND c.Contype IN ('household', 'roommate')"
  in
  let manual =
    Query.create
      ~tvars:[ ("c", "contact"); ("p", "patient") ]
      ~joins:[ Query.join ~child:"c" ~fk:"patient" ~parent:"p" ]
      ~selects:[ Query.range "p" "Age" 2 4; Query.in_set "c" "Contype" [ 0; 1 ] ]
      ()
  in
  check_float "matches manual query" (Exec.query_size db manual) (Exec.query_size db q)

let test_sql_three_table () =
  let db = Lazy.force tb_db in
  let q =
    Sql.parse db
      "SELECT COUNT(*) FROM contact c JOIN patient p ON c.patient = p.id \
       JOIN strain s ON p.strain = s.id WHERE s.Unique = yes"
  in
  Alcotest.(check int) "three tvars" 3 (List.length q.Query.tvars);
  Alcotest.(check int) "two joins" 2 (List.length q.Query.joins);
  Alcotest.(check bool) "evaluates" true (Exec.query_size db q >= 0.0)

let test_sql_integer_codes () =
  let db = tiny_db () in
  let q = Sql.parse db "SELECT COUNT(*) FROM emp e WHERE e.Age = 2" in
  check_float "integer code" 1.0 (Exec.query_size db q)

let test_sql_errors () =
  let db = tiny_db () in
  let fails s = try ignore (Sql.parse db s); false with Failure _ -> true in
  Alcotest.(check bool) "not a count" true (fails "SELECT * FROM emp");
  Alcotest.(check bool) "unknown table" true (fails "SELECT COUNT(*) FROM nowhere");
  Alcotest.(check bool) "unknown attr" true
    (fails "SELECT COUNT(*) FROM emp e WHERE e.Nope = 1");
  Alcotest.(check bool) "unknown label" true
    (fails "SELECT COUNT(*) FROM emp e WHERE e.Rank = \'boss\'");
  Alcotest.(check bool) "trailing garbage" true
    (fails "SELECT COUNT(*) FROM emp e WHERE e.Rank = 1 ORDER BY x");
  Alcotest.(check bool) "unterminated string" true
    (fails "SELECT COUNT(*) FROM emp e WHERE e.Rank = \'ooops");
  Alcotest.(check bool) "non-keyjoin" true
    (fails "SELECT COUNT(*) FROM emp e JOIN dept d ON e.dept = d.Budget")

let () =
  Alcotest.run "db"
    [
      ("value", [ Alcotest.test_case "domains" `Quick test_value_domains ]);
      ( "schema-table",
        [
          Alcotest.test_case "schema validation" `Quick test_schema_validation;
          Alcotest.test_case "table validation" `Quick test_table_validation;
          Alcotest.test_case "database integrity" `Quick test_database_integrity;
          Alcotest.test_case "index" `Quick test_index;
        ] );
      ( "query",
        [
          Alcotest.test_case "validation" `Quick test_query_validation;
          Alcotest.test_case "pred_holds" `Quick test_pred_holds;
        ] );
      ( "exec",
        [
          Alcotest.test_case "single table" `Quick test_exec_single_table;
          Alcotest.test_case "join" `Quick test_exec_join;
          Alcotest.test_case "cartesian" `Quick test_exec_cartesian;
          Alcotest.test_case "branching join" `Quick test_exec_branching_join;
          Alcotest.test_case "validate errors" `Quick test_exec_validate_errors;
          Alcotest.test_case "resolve and counts" `Quick test_exec_resolve_and_counts;
        ] );
      ( "exec-properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_exec_matches_brute_force; prop_joint_counts_match_query_size ] );
      ( "qparse",
        [
          Alcotest.test_case "basic" `Quick test_qparse_basic;
          Alcotest.test_case "bare table" `Quick test_qparse_bare_table;
          Alcotest.test_case "errors" `Quick test_qparse_errors;
        ] );
      ( "sql",
        [
          Alcotest.test_case "single table" `Quick test_sql_single_table;
          Alcotest.test_case "join forms" `Quick test_sql_join_forms;
          Alcotest.test_case "predicates" `Quick test_sql_predicates;
          Alcotest.test_case "three tables" `Quick test_sql_three_table;
          Alcotest.test_case "integer codes" `Quick test_sql_integer_codes;
          Alcotest.test_case "errors" `Quick test_sql_errors;
        ] );
      ( "nonkey",
        [ Alcotest.test_case "exact sizes" `Quick test_nonkey_join_size ] );
      ( "csv",
        [
          Alcotest.test_case "roundtrip" `Quick test_csv_roundtrip;
          Alcotest.test_case "bad label" `Quick test_csv_bad_label;
        ] );
      ( "discretize",
        [
          Alcotest.test_case "equi-width" `Quick test_discretize_equi_width;
          Alcotest.test_case "equi-depth" `Quick test_discretize_equi_depth;
          Alcotest.test_case "apply and base estimate" `Quick test_discretize_apply_and_base;
        ] );
    ]
