(* The Selest facade: the one-call pipelines the README advertises. *)

let check_float = Alcotest.(check (float 1e-6))

let db = lazy (Selest.Synth.Tb.generate ~patients:300 ~contacts:2_000 ~strains:250 ~seed:3 ())

let test_learn_bn_facade () =
  let db = Lazy.force db in
  let bn = Selest.learn_bn ~budget_bytes:2_000 (Selest.Db.Database.table db "patient") in
  Alcotest.(check int) "six variables" 6 (Selest.Bn.Bn.n_vars bn);
  check_float "normalized" 1.0 (Selest.Bn.Bn.prob_of bn [])

let test_learn_prm_and_estimate_facade () =
  let db = Lazy.force db in
  let model = Selest.learn_prm ~budget_bytes:3_000 db in
  let q =
    Selest.Db.Query.create
      ~tvars:[ ("c", "contact"); ("p", "patient") ]
      ~joins:[ Selest.Db.Query.join ~child:"c" ~fk:"patient" ~parent:"p" ]
      ~selects:[ Selest.Db.Query.eq "p" "HIV" 1 ]
      ()
  in
  let truth = Selest.true_size db q in
  let est = Selest.estimate model db q in
  Alcotest.(check bool)
    (Printf.sprintf "facade estimate %.0f vs truth %.0f" est truth)
    true
    (abs_float (est -. truth) /. Float.max 1.0 truth < 0.3)

let test_prm_estimator_facade () =
  let db = Lazy.force db in
  let est = Selest.prm_estimator ~budget_bytes:3_000 db in
  Alcotest.(check string) "name" "PRM" est.Selest.Est.Estimator.name;
  Alcotest.(check bool) "within budget" true (est.Selest.Est.Estimator.bytes <= 3_000);
  let q =
    Selest.Db.Query.create ~tvars:[ ("p", "patient") ]
      ~selects:[ Selest.Db.Query.eq "p" "USBorn" 1 ]
      ()
  in
  Alcotest.(check bool) "answers" true (est.Selest.Est.Estimator.estimate q > 0.0)

let test_facade_sql_to_estimate () =
  let db = Lazy.force db in
  let model = Selest.learn_prm ~budget_bytes:3_000 db in
  let q =
    Selest.Db.Sql.parse db
      "SELECT COUNT(*) FROM contact c JOIN patient p ON c.patient = p.id WHERE \
       c.Infected = 'yes'"
  in
  let est = Selest.estimate model db q in
  let truth = Selest.true_size db q in
  Alcotest.(check bool) "sql-to-estimate pipeline" true
    (abs_float (est -. truth) /. Float.max 1.0 truth < 0.3)

let () =
  Alcotest.run "core"
    [
      ( "facade",
        [
          Alcotest.test_case "learn_bn" `Quick test_learn_bn_facade;
          Alcotest.test_case "learn_prm + estimate" `Quick test_learn_prm_and_estimate_facade;
          Alcotest.test_case "prm_estimator" `Quick test_prm_estimator_facade;
          Alcotest.test_case "sql pipeline" `Quick test_facade_sql_to_estimate;
        ] );
    ]
