(* Quickstart: learn a Bayesian network over a single table and use it to
   estimate select-query result sizes (Sec. 2 of the paper).

   Run with: dune exec examples/quickstart.exe *)

open Selest

let () =
  (* 1. Get a database.  Here: the synthetic census dataset (one table,
     12 attributes, strong correlations like Education -> Income). *)
  let db = Synth.Census.generate ~rows:30_000 ~seed:1 () in
  let person = Db.Database.table db "person" in
  Printf.printf "database: %d rows, %d attributes\n\n" (Db.Table.size person)
    (Array.length (Db.Table.cards person));

  (* 2. Offline phase: learn the model under a 4KB storage budget. *)
  let bn = learn_bn ~budget_bytes:4096 person in
  Format.printf "learned model:@.%a@." Bn.Bn.pp bn;

  (* 3. Online phase: estimate query sizes.  A query selects values for
     some attributes; the model answers any such query. *)
  let queries =
    [
      ("Income=10 & Education=12",
       [ Db.Query.eq "t" "Income" 10; Db.Query.eq "t" "Education" 12 ]);
      ("Age=6 & MaritalStatus=1",
       [ Db.Query.eq "t" "Age" 6; Db.Query.eq "t" "MaritalStatus" 1 ]);
      ("Income in [20..41] (range)", [ Db.Query.range "t" "Income" 20 41 ]);
      ("children with high income (impossible)",
       [ Db.Query.eq "t" "Age" 0; Db.Query.eq "t" "Income" 30 ]);
    ]
  in
  let est =
    Est.Bn_est.build ~table:"person" ~budget_bytes:4096 db
  in
  print_endline "query                                   |  estimate |     truth";
  print_endline "----------------------------------------+-----------+----------";
  List.iter
    (fun (name, selects) ->
      let q = Db.Query.create ~tvars:[ ("t", "person") ] ~selects () in
      let truth = true_size db q in
      let e = est.Est.Estimator.estimate q in
      Printf.printf "%-40s| %9.1f | %9.0f\n" name e truth)
    queries;

  (* 4. The Fig. 1 sanity check: with the right structure, the factored
     representation reproduces the exact joint distribution. *)
  print_newline ();
  let joint =
    [|
      (0, 0, 0, 0.270); (0, 0, 1, 0.030); (0, 1, 0, 0.105); (0, 1, 1, 0.045);
      (0, 2, 0, 0.005); (0, 2, 1, 0.045); (1, 0, 0, 0.135); (1, 0, 1, 0.015);
      (1, 1, 0, 0.063); (1, 1, 1, 0.027); (1, 2, 0, 0.006); (1, 2, 1, 0.054);
      (2, 0, 0, 0.018); (2, 0, 1, 0.002); (2, 1, 0, 0.042); (2, 1, 1, 0.018);
      (2, 2, 0, 0.012); (2, 2, 1, 0.108);
    |]
  in
  (* build the E -> I -> H data of Sec. 2.1 (1000 weighted rows) *)
  let e = ref [] and i = ref [] and h = ref [] in
  Array.iter
    (fun (ev, iv, hv, p) ->
      for _ = 1 to int_of_float (p *. 1000.0 +. 0.5) do
        e := ev :: !e;
        i := iv :: !i;
        h := hv :: !h
      done)
    joint;
  let data =
    Bn.Data.create ~names:[| "Education"; "Income"; "HomeOwner" |] ~cards:[| 3; 3; 2 |]
      [| Array.of_list !e; Array.of_list !i; Array.of_list !h |]
  in
  let dag = Bn.Dag.add_edge (Bn.Dag.empty 3) ~src:0 ~dst:1 in
  let dag = Bn.Dag.add_edge dag ~src:1 ~dst:2 in
  let model = Bn.Bn.fit data ~dag ~kind:Bn.Cpd.Tables in
  let max_err = ref 0.0 in
  Array.iter
    (fun (ev, iv, hv, p) ->
      max_err := Float.max !max_err (abs_float (Bn.Bn.joint_prob model [| ev; iv; hv |] -. p)))
    joint;
  Printf.printf
    "Fig. 1 check: max |factored - joint| over all 18 cells = %.2e (18 numbers -> 11 parameters)\n"
    !max_err
