(* Cost-based join ordering — the paper's motivating application (Sec. 1):
   an optimizer is only as good as its cardinality estimates.  This example
   ranks every left-deep join order of a 3-table query by its estimated
   cost (sum of intermediate result sizes) under three oracles:

     truth  — the exact executor,
     PRM    — this library's learned model,
     AVI    — per-attribute independence + uniform joins (System-R style).

   Run with: dune exec examples/optimizer.exe *)

open Selest
open Selest_workload

let () =
  let db = Synth.Tb.generate ~seed:11 () in
  let model = learn_prm ~budget_bytes:6_000 db in
  let prm_oracle = Prm.Estimate.cached_estimator model ~sizes:(Prm.Estimate.sizes_of_db db) in
  let avi = Est.Avi.build db in
  let truth q = true_size db q in

  (* Roommate contacts of elderly patients with non-unique strains.  The
     elderly–roommate pair is negatively correlated (AVI overestimates the
     contact-patient intermediate ~20x), while the non-unique-strain side
     is inflated by join skew (AVI underestimates it).  Under independence
     the plan ranking flips. *)
  let q =
    Db.Query.create
      ~tvars:[ ("c", "contact"); ("p", "patient"); ("s", "strain") ]
      ~joins:
        [
          Db.Query.join ~child:"c" ~fk:"patient" ~parent:"p";
          Db.Query.join ~child:"p" ~fk:"strain" ~parent:"s";
        ]
      ~selects:
        [
          Db.Query.eq "c" "Contype" 1;
          Db.Query.range "p" "Age" 4 5;
          Db.Query.eq "s" "Unique" 0;
        ]
      ()
  in
  Format.printf "query: %a@.@." Db.Query.pp q;

  let all = Planner.plans q in
  let costs oracle = List.map (fun p -> Planner.plan_cost oracle q p) all in
  let true_costs = costs truth in
  let prm_costs = costs prm_oracle in
  let avi_costs = costs (fun q -> avi.Est.Estimator.estimate q) in

  print_endline "plan (left-deep order)     |   true cost |    PRM cost |    AVI cost";
  print_endline "---------------------------+-------------+-------------+------------";
  List.iteri
    (fun i plan ->
      Printf.printf "%-27s| %11.0f | %11.0f | %11.0f\n"
        (String.concat " > " plan)
        (List.nth true_costs i) (List.nth prm_costs i) (List.nth avi_costs i))
    all;
  print_newline ();

  let pick oracle_costs =
    let best = ref 0 in
    List.iteri (fun i c -> if c < List.nth oracle_costs !best then best := i) oracle_costs;
    !best
  in
  let report name oracle_costs =
    let chosen = pick oracle_costs in
    let chosen_true = List.nth true_costs chosen in
    let optimal = List.fold_left min (List.hd true_costs) true_costs in
    Printf.printf
      "%-5s picks %-27s -> true cost %8.0f (%.2fx optimal) | rank corr %.2f\n" name
      (String.concat " > " (List.nth all chosen))
      chosen_true
      (chosen_true /. Float.max 1.0 optimal)
      (Planner.rank_correlation true_costs oracle_costs)
  in
  report "truth" true_costs;
  report "PRM" prm_costs;
  report "AVI" avi_costs
