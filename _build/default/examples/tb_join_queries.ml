(* Select-join estimation with a PRM (the setting of the paper's Sec. 3
   and Fig. 6): three tables joined by foreign keys, with join skew and
   cross-table correlations that break the textbook uniformity assumptions.

   Run with: dune exec examples/tb_join_queries.exe *)

open Selest

let () =
  let db = Synth.Tb.generate ~seed:4 () in
  Format.printf "%a@." Db.Database.pp_summary db;

  (* Join skew in the raw data: mean contacts per patient by age. *)
  let patient = Db.Database.table db "patient" in
  let contact = Db.Database.table db "contact" in
  let idx =
    Db.Index.build
      ~fk_col:(Db.Table.fk_col_by_name contact "patient")
      ~target_size:(Db.Table.size patient)
  in
  let age = Db.Table.col_by_name patient "Age" in
  let sums = Array.make 6 0 and counts = Array.make 6 0 in
  for p = 0 to Db.Table.size patient - 1 do
    sums.(age.(p)) <- sums.(age.(p)) + Db.Index.fanout idx p;
    counts.(age.(p)) <- counts.(age.(p)) + 1
  done;
  print_endline "contacts per patient by age bucket (the join-uniformity violation):";
  Array.iteri
    (fun a s ->
      Printf.printf "  age %d: %.1f\n" a (float_of_int s /. float_of_int (max 1 counts.(a))))
    sums;
  print_newline ();

  (* Learn the PRM and inspect its structure: join indicators with
     parents capture exactly this skew. *)
  let model = learn_prm ~budget_bytes:4_500 db in
  Format.printf "%a@." Prm.Model.pp model;

  (* Estimate a spectrum of select-join queries and compare to truth and
     to the BN+UJ (uniform-join) baseline. *)
  let uj = Est.Prm_est.build_bn_uj ~budget_bytes:4_500 db in
  let skeleton3 =
    Db.Query.create
      ~tvars:[ ("c", "contact"); ("p", "patient"); ("s", "strain") ]
      ~joins:
        [
          Db.Query.join ~child:"c" ~fk:"patient" ~parent:"p";
          Db.Query.join ~child:"p" ~fk:"strain" ~parent:"s";
        ]
      ()
  in
  let queries =
    [
      ("US-born, non-unique strain, household contact",
       Db.Query.with_selects skeleton3
         [ Db.Query.eq "p" "USBorn" 1; Db.Query.eq "s" "Unique" 0;
           Db.Query.eq "c" "Contype" 0 ]);
      ("elderly patient with roommate contact (rare)",
       Db.Query.with_selects skeleton3
         [ Db.Query.range "p" "Age" 4 5; Db.Query.eq "c" "Contype" 1 ]);
      ("HIV+ patient, infected contact",
       Db.Query.with_selects skeleton3
         [ Db.Query.eq "p" "HIV" 1; Db.Query.eq "c" "Infected" 1 ]);
      ("unique strains (join only)",
       Db.Query.with_selects skeleton3 [ Db.Query.eq "s" "Unique" 1 ]);
    ]
  in
  print_endline "query                                          |      PRM |    BN+UJ |    truth";
  print_endline "-----------------------------------------------+----------+----------+---------";
  List.iter
    (fun (name, q) ->
      let truth = true_size db q in
      let prm_est = estimate model db q in
      let uj_est = uj.Est.Estimator.estimate q in
      Printf.printf "%-47s| %8.1f | %8.1f | %8.0f\n" name prm_est uj_est truth)
    queries;
  print_newline ();

  (* Upward closure at work (Def. 3.3): ask about contacts only; the PRM
     pulls in the patient (and strain) ancestors it needs. *)
  let q =
    Db.Query.create ~tvars:[ ("c", "contact") ]
      ~selects:[ Db.Query.eq "c" "Contype" 1; Db.Query.eq "c" "Infected" 1 ]
      ()
  in
  let closed = Prm.Estimate.upward_closure model q in
  Format.printf "closure of a contact-only query: %a@." Db.Query.pp closed;
  Printf.printf "estimate %.1f vs truth %.0f\n" (estimate model db q) (true_size db q)
