(* Approximate query answering (the Sec. 1/6 application): selectivity
   estimates double as approximate answers to COUNT and GROUP-BY COUNT
   aggregation queries, without touching the data at query time.

   Run with: dune exec examples/approx_count.exe *)

open Selest

let () =
  let db = Synth.Financial.generate ~seed:8 () in
  Format.printf "%a@." Db.Database.pp_summary db;
  let model = learn_prm ~budget_bytes:5_000 db in
  Printf.printf "model: %dB (vs %d stored values in the database)\n\n"
    (Prm.Model.size_bytes model)
    (Db.Database.total_rows db * 4);

  (* GROUP-BY COUNT over a join: transactions per (account balance band),
     answered from the model alone. *)
  let skeleton =
    Db.Query.create
      ~tvars:[ ("t", "transaction"); ("a", "account") ]
      ~joins:[ Db.Query.join ~child:"t" ~fk:"account" ~parent:"a" ]
      ()
  in
  let balance_card = 6 in
  print_endline "SELECT a.Balance, COUNT(*) FROM transaction t JOIN account a GROUP BY a.Balance:";
  print_endline "balance | approx count | exact count | error";
  print_endline "--------+--------------+-------------+------";
  for b = 0 to balance_card - 1 do
    let q = Db.Query.with_selects skeleton [ Db.Query.eq "a" "Balance" b ] in
    let approx = estimate model db q in
    let exact = true_size db q in
    Printf.printf "   b%d   | %12.0f | %11.0f | %4.1f%%\n" b approx exact
      (100.0 *. abs_float (approx -. exact) /. Float.max 1.0 exact)
  done;
  print_newline ();

  (* A two-dimensional aggregate with a filter: withdrawals by amount band
     in high-salary districts (a 3-table query). *)
  let skeleton3 =
    Db.Query.create
      ~tvars:[ ("t", "transaction"); ("a", "account"); ("d", "district") ]
      ~joins:
        [
          Db.Query.join ~child:"t" ~fk:"account" ~parent:"a";
          Db.Query.join ~child:"a" ~fk:"district" ~parent:"d";
        ]
      ()
  in
  print_endline
    "withdrawals by amount band, high-salary districts (3-table join + filter):";
  print_endline "amount | approx | exact";
  print_endline "-------+--------+------";
  for amount = 0 to 7 do
    let q =
      Db.Query.with_selects skeleton3
        [
          Db.Query.eq "t" "TxType" 1;
          Db.Query.eq "t" "Amount" amount;
          Db.Query.range "d" "AvgSalary" 3 4;
        ]
    in
    Printf.printf "  a%d   | %6.0f | %5.0f\n" amount (estimate model db q) (true_size db q)
  done;
  print_newline ();

  (* Total COUNT of a filtered join, as a plain number. *)
  let q =
    Db.Query.with_selects skeleton
      [ Db.Query.eq "a" "Frequency" 2; Db.Query.in_set "t" "TxType" [ 0; 2 ] ]
  in
  Printf.printf
    "COUNT(after-tx-statement accounts, credit/transfer txs): approx %.0f, exact %.0f\n"
    (estimate model db q) (true_size db q)
