(* Single-table workload study (the setting of the paper's Fig. 4/5):
   compare AVI, MHIST, SAMPLE and the BN-based estimator at equal storage
   on suites of multi-attribute equality queries over the census table.

   Run with: dune exec examples/census_queries.exe *)

open Selest
open Selest_workload

let budget = 1_500

let () =
  let db = Synth.Census.generate ~rows:40_000 ~seed:2 () in
  Printf.printf "census: %d rows; all estimators get ~%dB of storage\n\n"
    (Db.Database.n_rows db "person") budget;
  let run_suite attrs =
    let suite =
      Suite.single_table ~name:(String.concat "," attrs) ~table:"person" ~attrs
    in
    let pairs = List.map (fun a -> ("person", a)) attrs in
    let estimators =
      [
        Est.Avi.build ~attrs:pairs db;
        Est.Mhist.build ~table:"person" ~attrs ~budget_bytes:budget db;
        Est.Sample.build ~rows:(budget / (4 * List.length attrs)) ~seed:9 ~attrs:pairs db;
        Est.Bn_est.build ~table:"person" ~attrs ~budget_bytes:budget db;
      ]
    in
    Printf.printf "suite over {%s}: %d equality queries\n" (String.concat ", " attrs)
      (Suite.n_queries db suite);
    let outcomes = Runner.run_all db suite estimators () in
    Report.print (Report.outcomes_table outcomes);
    print_newline ()
  in
  run_suite [ "Age"; "Income" ];
  run_suite [ "Age"; "Education"; "Income" ];
  run_suite [ "Income"; "EmployType"; "Earner" ];

  (* The headline property (Sec. 1): one BN over the WHOLE table answers
     any select query; histograms must pick their attributes in advance. *)
  print_endline "one whole-table model, three different query suites:";
  let whole = Est.Bn_est.build ~table:"person" ~budget_bytes:4_000 db in
  List.iter
    (fun attrs ->
      let suite =
        Suite.single_table ~name:(String.concat "," attrs) ~table:"person" ~attrs
      in
      let o = Runner.run db suite whole ~max_queries:3_000 () in
      Printf.printf "  {%s}: avg error %.1f%% over %d queries\n"
        (String.concat ", " attrs) o.Runner.avg_error o.Runner.n_queries)
    [ [ "WorkerClass"; "Education" ]; [ "Age"; "Children" ]; [ "Income"; "Industry"; "Sex" ] ]
