examples/census_queries.ml: Db Est List Printf Report Runner Selest Selest_workload String Suite Synth
