examples/quickstart.mli:
