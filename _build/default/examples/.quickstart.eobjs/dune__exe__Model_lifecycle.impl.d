examples/model_lifecycle.ml: Db Filename Format Printf Prm Selest Synth Sys Util
