examples/tb_join_queries.mli:
