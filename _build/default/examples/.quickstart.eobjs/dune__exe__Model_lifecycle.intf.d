examples/model_lifecycle.mli:
