examples/optimizer.ml: Db Est Float Format List Planner Printf Prm Selest Selest_workload String Synth
