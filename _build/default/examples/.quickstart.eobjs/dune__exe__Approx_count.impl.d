examples/approx_count.ml: Db Float Format Printf Prm Selest Synth
