examples/approx_count.mli:
