examples/quickstart.ml: Array Bn Db Est Float Format List Printf Selest Synth
