examples/optimizer.mli:
