examples/census_queries.mli:
