examples/tb_join_queries.ml: Array Db Est Format List Printf Prm Selest Synth
