(* The lifecycle of a deployed model: learn offline, persist, load at query
   time, detect drift as the database changes, refresh parameters, and
   sample synthetic data from the model (Sec. 1's offline/online split and
   Sec. 6's maintenance discussion).

   Run with: dune exec examples/model_lifecycle.exe *)

open Selest

let q_infected =
  Db.Query.create
    ~tvars:[ ("c", "contact"); ("p", "patient") ]
    ~joins:[ Db.Query.join ~child:"c" ~fk:"patient" ~parent:"p" ]
    ~selects:[ Db.Query.eq "c" "Infected" 1; Db.Query.eq "p" "HIV" 1 ]
    ()

let report label model db =
  Printf.printf "%-28s estimate %8.1f | truth %6.0f\n" label
    (estimate model db q_infected) (true_size db q_infected)

let () =
  (* Day 0: learn and persist. *)
  let db0 = Synth.Tb.generate ~seed:20 () in
  let model = learn_prm ~budget_bytes:4_000 db0 in
  let path = Filename.temp_file "tb_model" ".prm" in
  Prm.Serialize.save path model;
  Printf.printf "saved %dB model to %s\n\n" (Prm.Model.size_bytes model) path;

  (* Query time: load, estimate. *)
  let loaded = Prm.Serialize.load path ~schema:Synth.Tb.schema in
  report "day 0 (loaded model)" loaded db0;

  (* Day 30: the database has drifted — a new outbreak wave with different
     infection dynamics (simulated by regenerating with another seed and
     more contacts). *)
  let db30 = Synth.Tb.generate ~contacts:24_000 ~seed:77 () in
  report "day 30 (stale parameters)" loaded db30;
  let d = Prm.Update.drift loaded db30 in
  Printf.printf "drift: stale %.0f vs fresh %.0f bits; worst family gap %.4f bits/unit\n"
    d.Prm.Update.stale_loglik d.Prm.Update.fresh_loglik d.Prm.Update.gap_per_unit;
  (match Prm.Update.maintain loaded db30 with
  | `Fresh refreshed ->
    print_endline "maintenance: parameter refresh sufficed";
    report "day 30 (refreshed)" refreshed db30
  | `Restructure_advised refreshed ->
    print_endline "maintenance: drift is structural - relearning advised";
    report "day 30 (refreshed anyway)" refreshed db30;
    let relearned = learn_prm ~budget_bytes:4_000 db30 in
    report "day 30 (relearned)" relearned db30);
  print_newline ();

  (* Synthetic data: sample a database from the model alone — the 4KB model
     stands in for the 100K-value database (e.g. for sharing or testing). *)
  let rng = Util.Rng.create 5 in
  let synthetic =
    Prm.Sample.database rng loaded ~sizes:(Prm.Estimate.sizes_of_db db0)
  in
  Printf.printf "synthetic database sampled from the model:\n";
  Format.printf "%a" Db.Database.pp_summary synthetic;
  (* The synthetic data reproduces the modelled statistics... *)
  Printf.printf "P(Infected) real %.3f vs synthetic %.3f\n"
    (true_size db0
       (Db.Query.create ~tvars:[ ("c", "contact") ]
          ~selects:[ Db.Query.eq "c" "Infected" 1 ] ())
    /. 19_000.0)
    (true_size synthetic
       (Db.Query.create ~tvars:[ ("c", "contact") ]
          ~selects:[ Db.Query.eq "c" "Infected" 1 ] ())
    /. 19_000.0);
  Printf.printf "join-skew check, contacts of middle-aged patients: real %.0f vs synthetic %.0f\n"
    (true_size db0
       (Db.Query.create
          ~tvars:[ ("c", "contact"); ("p", "patient") ]
          ~joins:[ Db.Query.join ~child:"c" ~fk:"patient" ~parent:"p" ]
          ~selects:[ Db.Query.eq "p" "Age" 2 ] ()))
    (true_size synthetic
       (Db.Query.create
          ~tvars:[ ("c", "contact"); ("p", "patient") ]
          ~joins:[ Db.Query.join ~child:"c" ~fk:"patient" ~parent:"p" ]
          ~selects:[ Db.Query.eq "p" "Age" 2 ] ()));
  Sys.remove path
