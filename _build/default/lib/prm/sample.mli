(** Forward sampling: generate a relational database from a PRM.

    The inverse of learning — useful for model validation (fit a PRM, sample
    a database, check the sample reproduces the original's statistics), for
    privacy-preserving synthetic data, and for testing that structure
    learning recovers planted models.

    Within a table, value attributes and foreign-key assignments are sampled
    in the dependency order the legality check guarantees exists: attributes
    feeding a join indicator come before the foreign key is assigned, and
    attributes gated on it (those with cross-table parents) after.  A child
    row picks its parent row in two stages — first a parent {e configuration}
    with probability proportional to
    [count(config) * P(J | child side, config)], then uniformly within the
    configuration — which is exact and avoids per-row scans of the parent
    table. *)

val database :
  Selest_util.Rng.t -> Model.t -> sizes:int array -> Selest_db.Database.t
(** [database rng model ~sizes]: one table per schema table with the given
    row counts (schema order).  Raises [Invalid_argument] if the model's
    structure is not legal or a referenced table is given size 0 while a
    child table is non-empty. *)
