open Selest_util
open Selest_db
open Selest_bn

(* Order tables so every foreign key's target is sampled before its child
   (the child needs the target's rows for fk assignment, and possibly its
   attribute values for J-parents and cross-table parents). *)
let fk_table_order schema =
  let tables = Schema.tables schema in
  let n = Array.length tables in
  let in_deg = Array.make n 0 in
  let children = Array.make n [] in
  Array.iteri
    (fun ci ts ->
      Array.iter
        (fun f ->
          let ti = Schema.table_index schema f.Schema.target in
          if ti <> ci then begin
            in_deg.(ci) <- in_deg.(ci) + 1;
            children.(ti) <- ci :: children.(ti)
          end)
        ts.Schema.fks)
    tables;
  let queue = Queue.create () in
  Array.iteri (fun t d -> if d = 0 then Queue.add t queue) in_deg;
  let out = ref [] in
  while not (Queue.is_empty queue) do
    let t = Queue.pop queue in
    out := t :: !out;
    List.iter
      (fun c ->
        in_deg.(c) <- in_deg.(c) - 1;
        if in_deg.(c) = 0 then Queue.add c queue)
      children.(t)
  done;
  if List.length !out <> n then
    invalid_arg "Prm.Sample: cyclic foreign-key graph between tables";
  Array.of_list (List.rev !out)

(* Per-table event order: attribute and fk-assignment steps respecting the
   model's intra-table dependencies (guaranteed acyclic by legality). *)
type event = E_attr of int | E_fk of int

let event_order (tm : Model.table_model) ~n_attrs ~n_fks =
  let n_events = n_attrs + n_fks in
  let id = function E_attr a -> a | E_fk f -> n_attrs + f in
  let in_deg = Array.make n_events 0 in
  let children = Array.make n_events [] in
  let edge src dst =
    in_deg.(id dst) <- in_deg.(id dst) + 1;
    children.(id src) <- dst :: children.(id src)
  in
  Array.iteri
    (fun a fam ->
      Array.iter
        (function
          | Model.Own b -> edge (E_attr b) (E_attr a)
          | Model.Foreign (f, _) -> edge (E_fk f) (E_attr a))
        fam.Model.parents)
    tm.Model.attr_families;
  Array.iteri
    (fun f fam ->
      Array.iter
        (function
          | Model.Own a -> edge (E_attr a) (E_fk f)
          | Model.Foreign (_, _) -> () (* target side: already sampled *))
        fam.Model.parents)
    tm.Model.join_families;
  let queue = Queue.create () in
  for e = 0 to n_events - 1 do
    if in_deg.(e) = 0 then Queue.add e queue
  done;
  let out = ref [] in
  while not (Queue.is_empty queue) do
    let e = Queue.pop queue in
    out := (if e < n_attrs then E_attr e else E_fk (e - n_attrs)) :: !out;
    List.iter
      (fun dst ->
        in_deg.(id dst) <- in_deg.(id dst) - 1;
        if in_deg.(id dst) = 0 then Queue.add (id dst) queue)
      children.(e)
  done;
  if List.length !out <> n_events then
    invalid_arg "Prm.Sample: model structure has a dependency cycle";
  List.rev !out

let database rng (model : Model.t) ~sizes =
  let schema = model.Model.schema in
  (match Stratify.check schema (Stratify.of_model model) with
  | Ok () -> ()
  | Error e -> invalid_arg ("Prm.Sample: " ^ e));
  let tables = Schema.tables schema in
  if Array.length sizes <> Array.length tables then
    invalid_arg "Prm.Sample: sizes arity mismatch";
  let sampled_cols : int array array array = Array.make (Array.length tables) [||] in
  let sampled_fks : int array array array = Array.make (Array.length tables) [||] in
  Array.iter
    (fun ti ->
      let ts = tables.(ti) in
      let tm = model.Model.tables.(ti) in
      let n = sizes.(ti) in
      let n_attrs = Array.length ts.Schema.attrs in
      let n_fks = Array.length ts.Schema.fks in
      let cols =
        Array.map (fun a -> ignore a; Array.make n 0) ts.Schema.attrs
      in
      let fk_cols = Array.map (fun f -> ignore f; Array.make n 0) ts.Schema.fks in
      let target_ti = Array.map (fun f -> Schema.table_index schema f.Schema.target) ts.Schema.fks in
      Array.iter
        (fun f ->
          let t = Schema.table_index schema f.Schema.target in
          if sizes.(t) = 0 && n > 0 then
            invalid_arg "Prm.Sample: non-empty child of an empty target table")
        ts.Schema.fks;
      let parent_value ~row = function
        | Model.Own b -> cols.(b).(row)
        | Model.Foreign (f, b) ->
          sampled_cols.(target_ti.(f)).(b).(fk_cols.(f).(row))
      in
      List.iter
        (function
          | E_attr a ->
            let fam = tm.Model.attr_families.(a) in
            let pvals = Array.make (Array.length fam.Model.parents) 0 in
            for row = 0 to n - 1 do
              Array.iteri (fun i p -> pvals.(i) <- parent_value ~row p) fam.Model.parents;
              cols.(a).(row) <- Rng.categorical rng (Array.copy (Cpd.dist fam.Model.cpd pvals))
            done
          | E_fk f ->
            let fam = tm.Model.join_families.(f) in
            let target = target_ti.(f) in
            let target_size = sizes.(target) in
            (* Split the indicator's parents into child-side and
               target-side; both are sorted by local id, so the child-side
               block precedes the target-side block in CPD parent order. *)
            let own_ps, target_ps =
              Array.to_list fam.Model.parents
              |> List.partition (function Model.Own _ -> true | Model.Foreign _ -> false)
            in
            let own_ps = Array.of_list own_ps and target_ps = Array.of_list target_ps in
            (* Target configuration of each target row. *)
            let target_attr = Array.map (function
                | Model.Foreign (_, b) -> b
                | Model.Own _ -> assert false) target_ps in
            let target_cards =
              Array.map (fun b ->
                  Value.card tables.(target).Schema.attrs.(b).Schema.domain)
                target_attr
            in
            let n_cfgs = Array.fold_left ( * ) 1 target_cards in
            let cfg_of_target_row r =
              let cfg = ref 0 in
              Array.iteri
                (fun i b ->
                  cfg := (!cfg * target_cards.(i)) + sampled_cols.(target).(b).(r))
                target_attr;
              !cfg
            in
            let groups = Array.make n_cfgs [] in
            for r = target_size - 1 downto 0 do
              let c = cfg_of_target_row r in
              groups.(c) <- r :: groups.(c)
            done;
            let groups = Array.map Array.of_list groups in
            (* Decode a target cfg back into attribute values. *)
            let decode_cfg cfg =
              let out = Array.make (Array.length target_attr) 0 in
              let rem = ref cfg in
              for i = Array.length target_attr - 1 downto 0 do
                out.(i) <- !rem mod target_cards.(i);
                rem := !rem / target_cards.(i)
              done;
              out
            in
            (* Weights per (own config): count(cfg) * P(J=1 | own, cfg);
               memoized because own configurations repeat across rows. *)
            let weight_cache : (int list, float array) Hashtbl.t = Hashtbl.create 16 in
            let weights_for own_vals =
              let key = Array.to_list own_vals in
              match Hashtbl.find_opt weight_cache key with
              | Some w -> w
              | None ->
                let w =
                  Array.init n_cfgs (fun cfg ->
                      let cnt = float_of_int (Array.length groups.(cfg)) in
                      if cnt = 0.0 then 0.0
                      else begin
                        let pvals = Array.append own_vals (decode_cfg cfg) in
                        cnt *. (Cpd.dist fam.Model.cpd pvals).(1)
                      end)
                in
                Hashtbl.add weight_cache key w;
                w
            in
            for row = 0 to n - 1 do
              let own_vals = Array.map (fun p -> parent_value ~row p) own_ps in
              let w = weights_for own_vals in
              let total = Arrayx.sum w in
              if total > 0.0 then begin
                let cfg = Rng.categorical rng w in
                let group = groups.(cfg) in
                fk_cols.(f).(row) <- group.(Rng.int rng (Array.length group))
              end
              else
                (* Degenerate indicator (e.g. unseen own config): uniform. *)
                fk_cols.(f).(row) <- Rng.int rng target_size
            done)
        (event_order tm ~n_attrs ~n_fks);
      sampled_cols.(ti) <- cols;
      sampled_fks.(ti) <- fk_cols)
    (fk_table_order schema);
  let table_list =
    Array.to_list
      (Array.mapi
         (fun ti ts -> Table.create ts ~cols:sampled_cols.(ti) ~fk_cols:sampled_fks.(ti))
         tables)
  in
  Database.create schema table_list
