lib/prm/sample.mli: Model Selest_db Selest_util
