lib/prm/suffstats.mli: Model Selest_bn Selest_db
