lib/prm/serialize.mli: Model Selest_db Selest_util
