lib/prm/stratify.ml: Array Hashtbl List Model Queue Schema Selest_db
