lib/prm/estimate.ml: Array Cpd Database Hashtbl List Model Printf Query Queue Schema Selest_bn Selest_db Selest_prob String Table Ve
