lib/prm/model.mli: Format Selest_bn Selest_db
