lib/prm/model.ml: Array Bytesize Cpd Format Schema Selest_bn Selest_db Selest_util String Value
