lib/prm/learn.ml: Array Arrayx Bytesize Cpd Data Database Float Hashtbl List Logs Model Printf Rng Schema Score Selest_bn Selest_db Selest_util Stratify Suffstats
