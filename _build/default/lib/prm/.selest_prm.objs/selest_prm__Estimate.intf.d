lib/prm/estimate.mli: Model Selest_db Selest_prob
