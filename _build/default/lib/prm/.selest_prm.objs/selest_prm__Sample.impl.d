lib/prm/sample.ml: Array Arrayx Cpd Database Hashtbl List Model Queue Rng Schema Selest_bn Selest_db Selest_util Stratify Table Value
