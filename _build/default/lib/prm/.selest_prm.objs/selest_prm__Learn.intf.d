lib/prm/learn.mli: Model Selest_bn Selest_db
