lib/prm/update.ml: Array Cpd Data Database Float Model Schema Selest_bn Selest_db Suffstats Table
