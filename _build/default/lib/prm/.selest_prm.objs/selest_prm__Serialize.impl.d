lib/prm/serialize.ml: Array Cpd List Model Printf Schema Selest_bn Selest_db Selest_util Sexp Table_cpd Tree_cpd Value
