lib/prm/update.mli: Model Selest_db
