lib/prm/suffstats.ml: Array Arrayx Bytesize Cpd Data Database Float List Model Schema Selest_bn Selest_db Selest_util Table Table_cpd Value
