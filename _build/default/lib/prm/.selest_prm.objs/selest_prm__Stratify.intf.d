lib/prm/stratify.mli: Model Selest_db
