open Selest_db

type structure = {
  attr_parents : Model.parent array array array;
  join_parents : Model.parent array array array;
}

let empty_structure schema =
  let tables = Schema.tables schema in
  {
    attr_parents =
      Array.map (fun ts -> Array.map (fun _ -> [||]) ts.Schema.attrs) tables;
    join_parents = Array.map (fun ts -> Array.map (fun _ -> [||]) ts.Schema.fks) tables;
  }

let of_model (m : Model.t) =
  {
    attr_parents =
      Array.map (fun tm -> Array.map (fun f -> f.Model.parents) tm.Model.attr_families) m.Model.tables;
    join_parents =
      Array.map (fun tm -> Array.map (fun f -> f.Model.parents) tm.Model.join_families) m.Model.tables;
  }

(* Global ids for value attributes across tables. *)
let attr_offsets schema =
  let tables = Schema.tables schema in
  let offsets = Array.make (Array.length tables) 0 in
  let total = ref 0 in
  Array.iteri
    (fun ti ts ->
      offsets.(ti) <- !total;
      total := !total + Array.length ts.Schema.attrs)
    tables;
  (offsets, !total)

let resolve_parent schema ti p =
  (* Global (table, attr) a parent refers to. *)
  match p with
  | Model.Own a -> (ti, a)
  | Model.Foreign (f, b) ->
    let ts = (Schema.tables schema).(ti) in
    let target = ts.Schema.fks.(f).Schema.target in
    (Schema.table_index schema target, b)

let check schema s =
  let tables = Schema.tables schema in
  let n_tables = Array.length tables in
  let offsets, n_attrs_total = attr_offsets schema in
  (* Attribute-level graph: adjacency child <- parents. *)
  let parents_of = Array.make n_attrs_total [] in
  let table_edges = Hashtbl.create 16 in
  (try
     Array.iteri
       (fun ti per_attr ->
         Array.iteri
           (fun a ps ->
             Array.iter
               (fun p ->
                 let pt, pa = resolve_parent schema ti p in
                 parents_of.(offsets.(ti) + a) <- (offsets.(pt) + pa) :: parents_of.(offsets.(ti) + a);
                 if pt <> ti then Hashtbl.replace table_edges (pt, ti) ())
               ps)
           per_attr)
       s.attr_parents
   with Invalid_argument msg -> invalid_arg ("Stratify.check: " ^ msg));
  (* Join-indicator parents must belong to the child table or to the fk's
     own target; they impose no ordering constraints (indicators are
     sinks), but must be well-formed. *)
  let join_ok = ref (Ok ()) in
  Array.iteri
    (fun ti per_fk ->
      Array.iteri
        (fun f ps ->
          Array.iter
            (fun p ->
              match p with
              | Model.Own a ->
                if a < 0 || a >= Array.length tables.(ti).Schema.attrs then
                  join_ok := Error "join-indicator parent attr out of range"
              | Model.Foreign (f', _) ->
                if f' <> f then
                  join_ok :=
                    Error "join-indicator parent reaches through a different foreign key")
            ps)
        per_fk)
    s.join_parents;
  match !join_ok with
  | Error _ as e -> e
  | Ok () ->
    (* Cycle check over attributes AND join indicators.  A join indicator
       J_F gates every attribute with a cross-table parent through F (the
       CPD is the J = true fork), so J_F -> R.A edges are real dependency
       edges; combined with X -> J_F parent edges they forbid an attribute
       from both feeding J_F and (transitively) depending on it — the
       double-counting cycle of Sec. 3.2's semantics. *)
    let join_base = n_attrs_total in
    let join_id = Hashtbl.create 16 in
    let n_joins = ref 0 in
    Array.iteri
      (fun ti per_fk ->
        Array.iteri
          (fun f _ ->
            Hashtbl.add join_id (ti, f) (join_base + !n_joins);
            incr n_joins)
          per_fk)
      s.join_parents;
    let n_nodes = n_attrs_total + !n_joins in
    let parents_of_all = Array.make n_nodes [] in
    Array.iteri (fun v ps -> parents_of_all.(v) <- ps) parents_of;
    (* Gating edges: J_F -> R.A for every cross-table parent of R.A. *)
    Array.iteri
      (fun ti per_attr ->
        Array.iteri
          (fun a ps ->
            Array.iter
              (function
                | Model.Foreign (f, _) ->
                  let j = Hashtbl.find join_id (ti, f) in
                  let v = offsets.(ti) + a in
                  if not (List.mem j parents_of_all.(v)) then
                    parents_of_all.(v) <- j :: parents_of_all.(v)
                | Model.Own _ -> ())
              ps)
          per_attr)
      s.attr_parents;
    (* Parent edges into join indicators. *)
    Array.iteri
      (fun ti per_fk ->
        Array.iteri
          (fun f ps ->
            let j = Hashtbl.find join_id (ti, f) in
            Array.iter
              (fun p ->
                let pt, pa = resolve_parent schema ti p in
                parents_of_all.(j) <- (offsets.(pt) + pa) :: parents_of_all.(j))
              ps)
          per_fk)
      s.join_parents;
    let in_deg = Array.map List.length parents_of_all in
    let children = Array.make n_nodes [] in
    Array.iteri
      (fun v ps -> List.iter (fun p -> children.(p) <- v :: children.(p)) ps)
      parents_of_all;
    let queue = Queue.create () in
    Array.iteri (fun v d -> if d = 0 then Queue.add v queue) in_deg;
    let seen = ref 0 in
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      incr seen;
      List.iter
        (fun c ->
          in_deg.(c) <- in_deg.(c) - 1;
          if in_deg.(c) = 0 then Queue.add c queue)
        children.(v)
    done;
    if !seen <> n_nodes then Error "dependency graph has a cycle (possibly through a join indicator)"
    else begin
      (* Table stratification: the cross-table edge set must be acyclic. *)
      let t_in = Array.make n_tables 0 in
      let t_children = Array.make n_tables [] in
      Hashtbl.iter
        (fun (src, dst) () ->
          t_in.(dst) <- t_in.(dst) + 1;
          t_children.(src) <- dst :: t_children.(src))
        table_edges;
      let queue = Queue.create () in
      Array.iteri (fun t d -> if d = 0 then Queue.add t queue) t_in;
      let seen = ref 0 in
      while not (Queue.is_empty queue) do
        let t = Queue.pop queue in
        incr seen;
        List.iter
          (fun c ->
            t_in.(c) <- t_in.(c) - 1;
            if t_in.(c) = 0 then Queue.add c queue)
          t_children.(t)
      done;
      if !seen <> n_tables then Error "structure is not table-stratified" else Ok ()
    end

let is_legal schema s = match check schema s with Ok () -> true | Error _ -> false

let table_order schema s =
  (match check schema s with
  | Ok () -> ()
  | Error e -> invalid_arg ("Stratify.table_order: " ^ e));
  let tables = Schema.tables schema in
  let n_tables = Array.length tables in
  let table_edges = Hashtbl.create 16 in
  Array.iteri
    (fun ti per_attr ->
      Array.iter
        (fun ps ->
          Array.iter
            (fun p ->
              let pt, _ = resolve_parent schema ti p in
              if pt <> ti then Hashtbl.replace table_edges (pt, ti) ())
            ps)
        per_attr)
    s.attr_parents;
  let t_in = Array.make n_tables 0 in
  let t_children = Array.make n_tables [] in
  Hashtbl.iter
    (fun (src, dst) () ->
      t_in.(dst) <- t_in.(dst) + 1;
      t_children.(src) <- dst :: t_children.(src))
    table_edges;
  let queue = Queue.create () in
  Array.iteri (fun t d -> if d = 0 then Queue.add t queue) t_in;
  let out = ref [] in
  while not (Queue.is_empty queue) do
    let t = Queue.pop queue in
    out := t :: !out;
    List.iter
      (fun c ->
        t_in.(c) <- t_in.(c) - 1;
        if t_in.(c) = 0 then Queue.add c queue)
      t_children.(t)
  done;
  Array.of_list (List.rev !out)

let topological_attrs schema s =
  (match check schema s with
  | Ok () -> ()
  | Error e -> invalid_arg ("Stratify.topological_attrs: " ^ e));
  let offsets, n_attrs_total = attr_offsets schema in
  let tables = Schema.tables schema in
  let of_global g =
    (* invert offsets *)
    let ti = ref (Array.length offsets - 1) in
    while offsets.(!ti) > g do decr ti done;
    (!ti, g - offsets.(!ti))
  in
  let parents_of = Array.make n_attrs_total [] in
  Array.iteri
    (fun ti per_attr ->
      Array.iteri
        (fun a ps ->
          Array.iter
            (fun p ->
              let pt, pa = resolve_parent schema ti p in
              parents_of.(offsets.(ti) + a) <- (offsets.(pt) + pa) :: parents_of.(offsets.(ti) + a))
            ps)
        per_attr)
    s.attr_parents;
  ignore tables;
  let in_deg = Array.map List.length parents_of in
  let children = Array.make n_attrs_total [] in
  Array.iteri
    (fun v ps -> List.iter (fun p -> children.(p) <- v :: children.(p)) ps)
    parents_of;
  let queue = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v queue) in_deg;
  let out = ref [] in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    out := of_global v :: !out;
    List.iter
      (fun c ->
        in_deg.(c) <- in_deg.(c) - 1;
        if in_deg.(c) = 0 then Queue.add c queue)
      children.(v)
  done;
  Array.of_list (List.rev !out)
