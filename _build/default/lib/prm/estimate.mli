(** Selectivity estimation with a PRM (Sec. 3.3).

    Given a select–keyjoin query, the estimator (1) computes the query's
    {e upward closure} (Def. 3.3): the minimal extension whose tuple
    variables cover every cross-table parent the queried attributes and
    join indicators depend on; (2) instantiates the {e query-evaluation
    Bayesian network} (Def. 3.5) over the queried attributes and their
    ancestors only; (3) computes, by variable elimination, the probability
    of the selects conjoined with {e every} closure join indicator being
    true; and (4) scales by the product of the closure tables' sizes:

    {[ size(q) ≈ Π |T_i| · P(selects, all J = true) ]} *)

val upward_closure : Model.t -> Selest_db.Query.t -> Selest_db.Query.t
(** The closed query: same selects, possibly more tuple variables and
    joins.  Idempotent; a no-op when the query already mentions every
    needed tuple variable (fresh variables are named
    ["<tv>__<fk-name>"]). *)

val prob : Model.t -> Selest_db.Query.t -> float
(** P(selects ∧ all closure joins) under the PRM — the query's selectivity
    relative to the Cartesian product of the closure tables. *)

val estimate : Model.t -> sizes:int array -> Selest_db.Query.t -> float
(** Estimated result size; [sizes] holds each table's row count in schema
    order (see {!sizes_of_db}). *)

val sizes_of_db : Selest_db.Database.t -> int array

val cached_estimator :
  Model.t -> sizes:int array -> (Selest_db.Query.t -> float)
(** An estimation function that memoizes per query {e skeleton}: for
    all-equality queries it computes the joint posterior of the selected
    attributes given the join evidence once, then answers every
    instantiation of the same skeleton by table lookup.  Equivalent to
    {!estimate} (same model, same numbers) but amortized over a suite.
    Non-equality queries fall through to {!estimate}. *)

val query_eval_network :
  Model.t -> Selest_db.Query.t ->
  (string * Selest_prob.Factor.t list * (int * Selest_db.Query.pred) list)
(** Diagnostic view of step (2): a description of the network, its factors
    and the evidence that would be evaluated (exposed for tests and the
    CLI's explain mode). *)

val estimate_nonkey :
  Model.t -> sizes:int array ->
  Selest_db.Query.t * string * string -> Selest_db.Query.t * string * string -> float
(** [estimate_nonkey m ~sizes (q1, tv1, a1) (q2, tv2, a2)]: estimated size
    of joining [q1] and [q2] on the non-key equality [tv1.a1 = tv2.a2]
    (the Sec. 6 extension), by summing the product of the two sub-queries'
    estimates over the joined attribute's values.  The sub-queries must
    bind disjoint tuple variables. *)

val group_counts :
  Model.t -> sizes:int array -> Selest_db.Query.t ->
  keys:(string * string) list -> (int array * float) list
(** Approximate [GROUP BY COUNT] (the Sec. 6 application): estimated result
    sizes of {e every} instantiation of the [keys] attributes under the
    query's joins and selects, computed from one inference pass.  Cells are
    returned in row-major order of the key domains (last key fastest); the
    estimates of all cells sum to the estimate of the un-grouped query. *)
