(** Structural legality of PRM dependency structures (Def. 3.2, Sec. 4.3.2).

    A structure is legal when:
    {ul
    {- the dependency graph over value attributes {e and} join indicators
       is acyclic, where a join indicator [J_F] has an implicit gating edge
       to every attribute with a cross-table parent through [F] (its CPD is
       the [J = true] fork, per Sec. 3.2) and explicit edges from its own
       parents — this forbids an attribute from both feeding [J_F] and
       transitively depending on it;}
    {- the table-level graph, with an edge S → R whenever some attribute of
       R has a parent in S, admits a partial order (is acyclic) — the
       paper's table stratification (Def. 3.2).}} *)

type structure = {
  attr_parents : Model.parent array array array;
      (** [attr_parents.(table).(attr)] *)
  join_parents : Model.parent array array array;
      (** [join_parents.(table).(fk)] *)
}

val empty_structure : Selest_db.Schema.t -> structure
val of_model : Model.t -> structure

val is_legal : Selest_db.Schema.t -> structure -> bool
val check : Selest_db.Schema.t -> structure -> (unit, string) result
(** [Error reason] when illegal. *)

val table_order : Selest_db.Schema.t -> structure -> int array
(** A table ordering consistent with the stratification (raises
    [Invalid_argument] if the structure is not stratified). *)

val topological_attrs : Selest_db.Schema.t -> structure -> (int * int) array
(** All (table, attr) pairs in an order where parents precede children —
    used by the PRM sampler. *)
