(** Incremental model maintenance (Sec. 6).

    As the database changes, "it is straightforward to adapt the parameters
    of the PRM over time, keeping the structure fixed ... we can also keep
    track of the model score, relearning the structure if the score
    decreases drastically."  This module implements both halves:

    {ul
    {- {!refresh} refits every CPD's parameters on the current database
       without touching the dependency structure (tree CPDs keep their
       splits);}
    {- {!drift} quantifies how stale the current parameters are — the
       per-unit log-likelihood gap between the old parameters and freshly
       refitted ones on today's data — and {!maintain} turns that into a
       refresh-or-relearn decision.}} *)

val refresh : Model.t -> Selest_db.Database.t -> Model.t
(** Parameter-only update.  The database must have the model's schema. *)

type drift = {
  stale_loglik : float;  (** old parameters scored on the new data (bits) *)
  fresh_loglik : float;  (** refitted parameters on the same data *)
  gap_per_unit : float;
      (** (fresh - stale) / total sample weight: average bits lost per
          data unit by keeping stale parameters.  >= 0 up to rounding. *)
}

val drift : Model.t -> Selest_db.Database.t -> drift

val maintain :
  ?gap_threshold:float -> Model.t -> Selest_db.Database.t ->
  [ `Fresh of Model.t | `Restructure_advised of Model.t ]
(** Refresh parameters; if even the refreshed parameters leave a per-unit
    gap above [gap_threshold] (default 0.05 bits) {e between the old and
    new fit}, advise relearning the structure.  Either way the returned
    model has fresh parameters. *)
