(** Saving and loading learned PRMs.

    The offline/online split of Sec. 1 implies models outlive the process
    that fitted them: a DBMS learns the PRM during maintenance windows and
    the optimizer loads it at query time.  Models are stored as
    S-expressions ({!Selest_util.Sexp}) together with a schema fingerprint;
    loading validates the fingerprint against the caller's schema so a
    model is never silently applied to a different database layout.

    Bayesian networks over a single table are PRMs over a one-table schema,
    so this covers them too. *)

val to_sexp : Model.t -> Selest_util.Sexp.t
val of_sexp : schema:Selest_db.Schema.t -> Selest_util.Sexp.t -> Model.t
(** Raises [Failure] on malformed input or a schema mismatch. *)

val save : string -> Model.t -> unit
val load : string -> schema:Selest_db.Schema.t -> Model.t
