open Selest_db
open Selest_bn

let refresh (model : Model.t) db =
  let schema = model.Model.schema in
  if Schema.tables schema <> Schema.tables (Database.schema db) then
    invalid_arg "Update.refresh: database schema differs from the model's";
  let tables =
    Array.mapi
      (fun ti tm ->
        let ext = Suffstats.extended_data db ti in
        let attr_families =
          Array.mapi
            (fun a fam -> { fam with Model.cpd = Cpd.refit fam.Model.cpd ext ~child:a })
            tm.Model.attr_families
        in
        let join_families =
          Array.mapi
            (fun fk fam ->
              let js = Suffstats.fit_join db ~table:ti ~fk ~parents:fam.Model.parents in
              { fam with Model.cpd = js.Suffstats.cpd })
            tm.Model.join_families
        in
        { Model.attr_families; join_families })
      model.Model.tables
  in
  Model.create schema tables

type drift = { stale_loglik : float; fresh_loglik : float; gap_per_unit : float }

(* The gap is reported as the worst per-family normalized staleness:
   one badly outdated family is a relearning signal even when large,
   well-fitting families dominate the raw totals. *)
let drift (model : Model.t) db =
  let fresh = refresh model db in
  let stale_total = ref 0.0 and fresh_total = ref 0.0 in
  let worst = ref 0.0 in
  Array.iteri
    (fun ti tm ->
      let ext = Suffstats.extended_data db ti in
      let weight = Float.max 1.0 (Data.total_weight ext) in
      Array.iteri
        (fun a fam ->
          let stale = Cpd.loglik fam.Model.cpd ext ~child:a in
          let fresh_f =
            Cpd.loglik fresh.Model.tables.(ti).Model.attr_families.(a).Model.cpd ext
              ~child:a
          in
          stale_total := !stale_total +. stale;
          fresh_total := !fresh_total +. fresh_f;
          worst := Float.max !worst ((fresh_f -. stale) /. weight))
        tm.Model.attr_families;
      let pair_weight =
        let tbl = Database.table_at db ti in
        let ts = Table.schema tbl in
        Array.map
          (fun f ->
            float_of_int (Table.size tbl)
            *. float_of_int (Table.size (Database.table db f.Schema.target)))
          ts.Schema.fks
      in
      Array.iteri
        (fun fk fam ->
          let stale = Suffstats.join_loglik_under db ~table:ti ~fk fam.Model.cpd in
          let fresh_f =
            (Suffstats.fit_join db ~table:ti ~fk ~parents:fam.Model.parents).Suffstats.loglik
          in
          stale_total := !stale_total +. stale;
          fresh_total := !fresh_total +. fresh_f;
          worst := Float.max !worst ((fresh_f -. stale) /. Float.max 1.0 pair_weight.(fk)))
        tm.Model.join_families)
    model.Model.tables;
  { stale_loglik = !stale_total; fresh_loglik = !fresh_total; gap_per_unit = !worst }

let maintain ?(gap_threshold = 0.05) model db =
  let d = drift model db in
  let fresh = refresh model db in
  if d.gap_per_unit > gap_threshold then `Restructure_advised fresh else `Fresh fresh
