open Selest_db

type plan = string list

let connected_to joins tv others =
  List.exists
    (fun j ->
      (j.Query.child_tv = tv && List.mem j.Query.parent_tv others)
      || (j.Query.parent_tv = tv && List.mem j.Query.child_tv others))
    joins

let plans q =
  let tvs = List.map fst q.Query.tvars in
  if List.length tvs < 2 then invalid_arg "Planner.plans: need at least two tuple variables";
  let rec extend prefix remaining =
    if remaining = [] then [ List.rev prefix ]
    else
      List.concat_map
        (fun tv ->
          if connected_to q.Query.joins tv prefix then
            extend (tv :: prefix) (List.filter (fun x -> x <> tv) remaining)
          else [])
        remaining
  in
  let all =
    List.concat_map
      (fun first -> extend [ first ] (List.filter (fun x -> x <> first) tvs))
      tvs
  in
  if all = [] then invalid_arg "Planner.plans: disconnected join graph";
  all

let prefix_query q prefix =
  let tvars = List.filter (fun (tv, _) -> List.mem tv prefix) q.Query.tvars in
  let joins =
    List.filter
      (fun j -> List.mem j.Query.child_tv prefix && List.mem j.Query.parent_tv prefix)
      q.Query.joins
  in
  let selects = List.filter (fun s -> List.mem s.Query.sel_tv prefix) q.Query.selects in
  Query.create ~tvars ~joins ~selects ()

let plan_cost estimate q plan =
  let rec go acc prefix = function
    | [] -> acc
    | tv :: rest ->
      let prefix = tv :: prefix in
      let acc =
        if List.length prefix >= 2 then acc +. estimate (prefix_query q prefix) else acc
      in
      go acc prefix rest
  in
  go 0.0 [] plan

let best_plan estimate q =
  let all = plans q in
  List.fold_left
    (fun (bp, bc) p ->
      let c = plan_cost estimate q p in
      if c < bc then (p, c) else (bp, bc))
    ( List.hd all, plan_cost estimate q (List.hd all) )
    (List.tl all)

let rank_correlation xs ys =
  if List.length xs <> List.length ys then invalid_arg "Planner.rank_correlation";
  let ranks l =
    let arr = Array.of_list l in
    let idx = Array.init (Array.length arr) (fun i -> i) in
    Array.sort (fun a b -> compare arr.(a) arr.(b)) idx;
    let r = Array.make (Array.length arr) 0.0 in
    (* average ranks for ties *)
    let i = ref 0 in
    while !i < Array.length idx do
      let j = ref !i in
      while !j + 1 < Array.length idx && arr.(idx.(!j + 1)) = arr.(idx.(!i)) do
        incr j
      done;
      let avg = float_of_int (!i + !j) /. 2.0 in
      for k = !i to !j do
        r.(idx.(k)) <- avg
      done;
      i := !j + 1
    done;
    r
  in
  let rx = ranks xs and ry = ranks ys in
  let n = Array.length rx in
  if n < 2 then 1.0
  else begin
    let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int n in
    let mx = mean rx and my = mean ry in
    let num = ref 0.0 and dx = ref 0.0 and dy = ref 0.0 in
    for i = 0 to n - 1 do
      num := !num +. ((rx.(i) -. mx) *. (ry.(i) -. my));
      dx := !dx +. ((rx.(i) -. mx) ** 2.0);
      dy := !dy +. ((ry.(i) -. my) ** 2.0)
    done;
    if !dx = 0.0 || !dy = 0.0 then 1.0 else !num /. sqrt (!dx *. !dy)
  end
