(** Query suites: the paper's experimental unit (Sec. 5).

    A suite fixes a join skeleton (tuple variables and keyjoins) and a set
    of attributes, then ranges over {e all} equality instantiations of
    those attributes — "for each query suite, we averaged the error over
    all possible instantiations of the selected variables". *)

type t = {
  suite_name : string;
  skeleton : Selest_db.Query.t;  (** tuple variables + joins, selects ignored *)
  attrs : (string * string) list;  (** (tuple variable, attribute) to instantiate *)
}

val single_table : name:string -> table:string -> attrs:string list -> t
(** Suite over one tuple variable ["t"]. *)

val make : name:string -> skeleton:Selest_db.Query.t -> attrs:(string * string) list -> t

val cards : Selest_db.Database.t -> t -> int array
(** Domain size of each swept attribute. *)

val n_queries : Selest_db.Database.t -> t -> int
(** Product of the attribute cardinalities. *)

val query_of_cell : t -> int array -> Selest_db.Query.t
(** The equality query selecting the given value combination. *)

val ground_truth : Selest_db.Database.t -> t -> Selest_prob.Contingency.t
(** Exact result sizes of every instantiation, from one pass
    ({!Selest_db.Exec.joint_counts} over the skeleton). *)
