open Selest_db

type t = {
  suite_name : string;
  skeleton : Query.t;
  attrs : (string * string) list;
}

let single_table ~name ~table ~attrs =
  {
    suite_name = name;
    skeleton = Query.create ~tvars:[ ("t", table) ] ();
    attrs = List.map (fun a -> ("t", a)) attrs;
  }

let make ~name ~skeleton ~attrs = { suite_name = name; skeleton; attrs }

let attr_card db q tv aname =
  let tbl = Database.table db (Query.table_of q tv) in
  Value.card (Schema.attr (Table.schema tbl) aname).Schema.domain

let cards db t =
  Array.of_list (List.map (fun (tv, a) -> attr_card db t.skeleton tv a) t.attrs)

let n_queries db t = Array.fold_left ( * ) 1 (cards db t)

let query_of_cell t values =
  if Array.length values <> List.length t.attrs then
    invalid_arg "Suite.query_of_cell: arity mismatch";
  let selects = List.mapi (fun i (tv, a) -> Query.eq tv a values.(i)) t.attrs in
  Query.with_selects t.skeleton selects

let ground_truth db t = Exec.joint_counts db t.skeleton ~keys:t.attrs
