(** Text reports for experiment results: the tables the benches print and
    EXPERIMENTS.md records. *)

val outcomes_table : Runner.outcome list -> string
(** One row per estimator: storage, average / median / p90 error, counts. *)

val sweep_table :
  xlabel:string -> rows:(string * Runner.outcome list) list -> string
(** Accuracy-versus-storage sweeps: one row per x value (budget label),
    one "name err (bytes)" column pair per estimator. *)

val scatter_summary : (float * float) list -> (float * float) list -> string
(** Compare two estimators' per-query errors (as in Fig. 5(c)): the
    fraction of queries where each wins, plus mean errors.  Both lists must
    come from the same query sequence. *)

val print : string -> unit
(** [print_string] + flush (symmetry with {!Selest_util.Tablefmt.print}). *)
