lib/workload/suite.ml: Array Database Exec List Query Schema Selest_db Table Value
