lib/workload/runner.mli: Selest_db Selest_est Suite
