lib/workload/suite.mli: Selest_db Selest_prob
