lib/workload/planner.ml: Array List Query Selest_db
