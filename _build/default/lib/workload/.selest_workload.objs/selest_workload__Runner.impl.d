lib/workload/runner.ml: Array Arrayx Contingency List Rng Selest_est Selest_prob Selest_util Suite
