lib/workload/report.ml: Array Arrayx Bytesize Format List Printf Runner Selest_est Selest_util Tablefmt
