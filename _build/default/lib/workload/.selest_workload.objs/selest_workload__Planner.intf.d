lib/workload/planner.mli: Selest_db
