lib/prob/info.mli: Contingency
