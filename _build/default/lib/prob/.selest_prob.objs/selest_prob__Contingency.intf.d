lib/prob/contingency.mli: Factor
