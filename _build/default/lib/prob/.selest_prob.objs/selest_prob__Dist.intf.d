lib/prob/dist.mli: Format Selest_util
