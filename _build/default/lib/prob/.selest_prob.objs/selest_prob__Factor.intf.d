lib/prob/factor.mli: Format
