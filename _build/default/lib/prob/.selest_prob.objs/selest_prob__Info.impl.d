lib/prob/info.ml: Array Arrayx Contingency Float List Selest_util
