lib/prob/contingency.ml: Array Arrayx Factor Hashtbl Selest_util
