lib/prob/factor.ml: Array Arrayx Format List Selest_util String
