lib/prob/dist.ml: Array Arrayx Float Format Printf Rng Selest_util String
