(** Multi-dimensional potentials over discrete variables.

    A factor maps joint assignments of a set of variables (identified by
    integer ids, each with a fixed cardinality) to non-negative reals.
    Factors are the workhorse of Bayesian-network inference: CPDs are
    converted to factors, and variable elimination repeatedly multiplies
    factors and sums variables out. *)

type t

val create : vars:int array -> cards:int array -> float array -> t
(** [create ~vars ~cards data]: [vars] must be strictly increasing;
    [cards.(i)] is the cardinality of [vars.(i)]; [data] is laid out
    row-major with the {e last} variable fastest and must have length
    [prod cards].  Raises [Invalid_argument] on any violation. *)

val of_fun : vars:int array -> cards:int array -> (int array -> float) -> t
(** Tabulate a function of the joint assignment (assignment array is in
    [vars] order and reused across calls — copy it if you keep it). *)

val constant : float -> t
(** Scalar factor over no variables. *)

val vars : t -> int array
val cards : t -> int array
val size : t -> int
(** Number of entries. *)

val data : t -> float array
(** The underlying table (a copy). *)

val get : t -> int array -> float
(** [get f asg]: value at the assignment given in [vars f] order. *)

val product : t -> t -> t
(** Pointwise product over the union of scopes. *)

val sum_out : t -> int -> t
(** [sum_out f v] marginalizes variable [v] away.  If [v] is not in the
    scope, [f] is returned unchanged. *)

val restrict : t -> int -> int -> t
(** [restrict f v x] slices the table at [v = x], removing [v] from the
    scope.  No-op if [v] is not in scope. *)

val observe : t -> int -> (int -> bool) -> t
(** [observe f v allowed] zeroes entries whose [v]-value fails [allowed],
    keeping [v] in scope.  Used for range/set predicates: restricting to a
    set and later summing [v] out computes P(v ∈ S, ...).  No-op if [v] is
    not in scope. *)

val total : t -> float
(** Sum of all entries. *)

val normalize : t -> t

val marginal : t -> int array -> t
(** [marginal f keep] sums out every variable not in [keep]. *)

val equal : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
