open Selest_util

type t = { vars : int array; cards : int array; data : float array }

let check_sorted vars =
  for i = 1 to Array.length vars - 1 do
    if vars.(i - 1) >= vars.(i) then
      invalid_arg "Factor: vars must be strictly increasing"
  done

let table_size cards = Array.fold_left ( * ) 1 cards

let create ~vars ~cards data =
  if Array.length vars <> Array.length cards then
    invalid_arg "Factor.create: vars/cards length mismatch";
  check_sorted vars;
  Array.iter (fun c -> if c <= 0 then invalid_arg "Factor.create: card <= 0") cards;
  if Array.length data <> table_size cards then
    invalid_arg "Factor.create: data size mismatch";
  { vars; cards; data }

(* Strides for row-major layout, last variable fastest. *)
let strides cards =
  let n = Array.length cards in
  let s = Array.make n 1 in
  for i = n - 2 downto 0 do
    s.(i) <- s.(i + 1) * cards.(i + 1)
  done;
  s

let of_fun ~vars ~cards f =
  check_sorted vars;
  let n = Array.length vars in
  let size = table_size cards in
  let asg = Array.make n 0 in
  let data = Array.make size 0.0 in
  for idx = 0 to size - 1 do
    (* decode idx into asg *)
    let rem = ref idx in
    for i = n - 1 downto 0 do
      asg.(i) <- !rem mod cards.(i);
      rem := !rem / cards.(i)
    done;
    data.(idx) <- f asg
  done;
  { vars; cards; data }

let constant c = { vars = [||]; cards = [||]; data = [| c |] }
let vars t = Array.copy t.vars
let cards t = Array.copy t.cards
let size t = Array.length t.data
let data t = Array.copy t.data

let index_of t asg =
  let s = strides t.cards in
  let idx = ref 0 in
  for i = 0 to Array.length t.vars - 1 do
    let v = asg.(i) in
    if v < 0 || v >= t.cards.(i) then invalid_arg "Factor.get: value out of range";
    idx := !idx + (v * s.(i))
  done;
  !idx

let get t asg =
  if Array.length asg <> Array.length t.vars then
    invalid_arg "Factor.get: assignment arity mismatch";
  t.data.(index_of t asg)

let position t v =
  let rec loop i =
    if i >= Array.length t.vars then None
    else if t.vars.(i) = v then Some i
    else if t.vars.(i) > v then None
    else loop (i + 1)
  in
  loop 0

let union_vars a b =
  let out = ref [] in
  let i = ref 0 and j = ref 0 in
  let na = Array.length a.vars and nb = Array.length b.vars in
  while !i < na || !j < nb do
    if !i >= na then begin
      out := (b.vars.(!j), b.cards.(!j)) :: !out;
      incr j
    end
    else if !j >= nb then begin
      out := (a.vars.(!i), a.cards.(!i)) :: !out;
      incr i
    end
    else if a.vars.(!i) < b.vars.(!j) then begin
      out := (a.vars.(!i), a.cards.(!i)) :: !out;
      incr i
    end
    else if a.vars.(!i) > b.vars.(!j) then begin
      out := (b.vars.(!j), b.cards.(!j)) :: !out;
      incr j
    end
    else begin
      if a.cards.(!i) <> b.cards.(!j) then
        invalid_arg "Factor.product: cardinality disagreement";
      out := (a.vars.(!i), a.cards.(!i)) :: !out;
      incr i;
      incr j
    end
  done;
  let pairs = Array.of_list (List.rev !out) in
  (Array.map fst pairs, Array.map snd pairs)

let product a b =
  let uvars, ucards = union_vars a b in
  let n = Array.length uvars in
  let usize = table_size ucards in
  (* Precompute, for each union variable, its stride in a and in b (0 when
     absent), so operand indices follow the odometer incrementally. *)
  let sa = strides a.cards and sb = strides b.cards in
  let stride_a = Array.make n 0 and stride_b = Array.make n 0 in
  for i = 0 to n - 1 do
    (match position a uvars.(i) with Some p -> stride_a.(i) <- sa.(p) | None -> ());
    match position b uvars.(i) with Some p -> stride_b.(i) <- sb.(p) | None -> ()
  done;
  let digits = Array.make n 0 in
  let data = Array.make usize 0.0 in
  let ia = ref 0 and ib = ref 0 in
  for idx = 0 to usize - 1 do
    data.(idx) <- a.data.(!ia) *. b.data.(!ib);
    (* advance odometer from the last (fastest) digit *)
    let k = ref (n - 1) in
    let carry = ref (idx < usize - 1) in
    while !carry && !k >= 0 do
      let d = digits.(!k) + 1 in
      if d = ucards.(!k) then begin
        digits.(!k) <- 0;
        ia := !ia - ((ucards.(!k) - 1) * stride_a.(!k));
        ib := !ib - ((ucards.(!k) - 1) * stride_b.(!k));
        decr k
      end
      else begin
        digits.(!k) <- d;
        ia := !ia + stride_a.(!k);
        ib := !ib + stride_b.(!k);
        carry := false
      end
    done
  done;
  { vars = uvars; cards = ucards; data }

let remove_at arr i =
  Array.init (Array.length arr - 1) (fun j -> if j < i then arr.(j) else arr.(j + 1))

let sum_out t v =
  match position t v with
  | None -> t
  | Some p ->
    let n = Array.length t.vars in
    let card_v = t.cards.(p) in
    let s = strides t.cards in
    let new_vars = remove_at t.vars p and new_cards = remove_at t.cards p in
    let new_size = table_size new_cards in
    let data = Array.make new_size 0.0 in
    (* Iterate original table; map each index to the reduced index. *)
    let digits = Array.make n 0 in
    let old_size = Array.length t.data in
    for idx = 0 to old_size - 1 do
      let rem = ref idx in
      for i = n - 1 downto 0 do
        digits.(i) <- !rem mod t.cards.(i);
        rem := !rem / t.cards.(i)
      done;
      let reduced = (idx - (digits.(p) * s.(p))) in
      (* reduced is the index with digit p set to zero; compress out the gap *)
      let hi = reduced / (s.(p) * card_v) and lo = reduced mod s.(p) in
      data.((hi * s.(p)) + lo) <- data.((hi * s.(p)) + lo) +. t.data.(idx)
    done;
    { vars = new_vars; cards = new_cards; data }

let restrict t v x =
  match position t v with
  | None -> t
  | Some p ->
    if x < 0 || x >= t.cards.(p) then invalid_arg "Factor.restrict: value out of range";
    let s = strides t.cards in
    let card_v = t.cards.(p) in
    let new_vars = remove_at t.vars p and new_cards = remove_at t.cards p in
    let new_size = table_size new_cards in
    let data = Array.make new_size 0.0 in
    for j = 0 to new_size - 1 do
      let hi = j / s.(p) and lo = j mod s.(p) in
      data.(j) <- t.data.((hi * s.(p) * card_v) + (x * s.(p)) + lo)
    done;
    { vars = new_vars; cards = new_cards; data }

let observe t v allowed =
  match position t v with
  | None -> t
  | Some p ->
    let n = Array.length t.vars in
    let data = Array.copy t.data in
    let digits = Array.make n 0 in
    for idx = 0 to Array.length data - 1 do
      let rem = ref idx in
      for i = n - 1 downto 0 do
        digits.(i) <- !rem mod t.cards.(i);
        rem := !rem / t.cards.(i)
      done;
      if not (allowed digits.(p)) then data.(idx) <- 0.0
    done;
    { t with data }

let total t = Arrayx.sum t.data

let normalize t =
  let z = total t in
  if z > 0.0 then { t with data = Array.map (fun x -> x /. z) t.data }
  else { t with data = Array.make (Array.length t.data) (1.0 /. float_of_int (Array.length t.data)) }

let marginal t keep =
  let keep_set = Array.to_list keep in
  Array.fold_left
    (fun acc v -> if List.mem v keep_set then acc else sum_out acc v)
    t t.vars

let equal ?(eps = 1e-9) a b =
  a.vars = b.vars && a.cards = b.cards
  && Array.for_all2 (fun x y -> Arrayx.float_equal ~eps x y) a.data b.data

let pp ppf t =
  Format.fprintf ppf "factor over [%s] (%d entries)"
    (String.concat "," (Array.to_list (Array.map string_of_int t.vars)))
    (Array.length t.data)
