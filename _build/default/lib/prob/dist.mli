(** Discrete probability distributions over a finite domain [0..k-1]. *)

type t = private float array
(** Normalized, non-negative.  The representation is exposed read-only so
    hot paths can index without a function call. *)

val uniform : int -> t
(** [uniform k] over a domain of size [k].  Raises on [k <= 0]. *)

val of_weights : float array -> t
(** Normalize a non-negative weight vector.  An all-zero vector yields the
    uniform distribution (the convention for empty data partitions). *)

val of_counts : ?smoothing:float -> float array -> t
(** [of_counts ~smoothing c] is the maximum-likelihood distribution from
    counts [c], with optional additive (Laplace) smoothing.  Smoothing
    defaults to [0.]: the paper fits exact relative frequencies because the
    model summarizes, rather than generalizes from, the data (Sec. 4.1). *)

val point : int -> int -> t
(** [point k v] puts all mass on value [v] of a [k]-sized domain. *)

val arity : t -> int
val prob : t -> int -> float
val to_array : t -> float array

val entropy : t -> float
(** Shannon entropy in bits. *)

val kl : t -> t -> float
(** [kl p q]: Kullback–Leibler divergence D(p || q) in bits; [infinity] when
    absolutely-continuity fails. *)

val total_variation : t -> t -> float

val sample : Selest_util.Rng.t -> t -> int

val equal : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
