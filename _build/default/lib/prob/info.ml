open Selest_util

let entropy_of_counts counts =
  let n = Arrayx.sum counts in
  if n <= 0.0 then 0.0
  else
    let acc = ref 0.0 in
    Array.iter
      (fun c -> if c > 0.0 then acc := !acc +. (c /. n *. Arrayx.log2 (c /. n)))
      counts;
    -. !acc

(* Accumulate Σ c log c over the cells of a projection of [joint] onto the
   column positions [dims]; with H(D) = log N - (Σ c log c)/N this is the
   only statistic entropy computations need. *)
let sum_clogc joint dims =
  let m = Contingency.marginal joint dims in
  let acc = ref 0.0 in
  Contingency.iter m (fun _ c -> acc := !acc +. Arrayx.xlogx c);
  !acc

let entropy_of_projection joint dims =
  let n = Contingency.total joint in
  if n <= 0.0 then 0.0 else Arrayx.log2 n -. (sum_clogc joint dims /. n)

let sorted_union a b =
  let l = Array.to_list a @ Array.to_list b in
  let l = List.sort_uniq compare l in
  Array.of_list l

let mutual_information joint xs ys =
  (* I(X;Y) = H(X) + H(Y) - H(X,Y), all from one contingency pass. *)
  let hx = entropy_of_projection joint xs in
  let hy = entropy_of_projection joint ys in
  let hxy = entropy_of_projection joint (sorted_union xs ys) in
  Float.max 0.0 (hx +. hy -. hxy)

let conditional_entropy joint ~parent_dims ~child_dim =
  let all = sorted_union parent_dims [| child_dim |] in
  entropy_of_projection joint all -. entropy_of_projection joint parent_dims

let loglik_of_counts joint ~parent_dims ~child_dim =
  let n = Contingency.total joint in
  -.n *. conditional_entropy joint ~parent_dims ~child_dim
