(** Information-theoretic quantities on count data (Sec. 4.1, 4.3.1).

    All logarithms are base 2 (bits), matching the description-length view
    of the paper's scoring function. *)

val entropy_of_counts : float array -> float
(** Entropy of the empirical distribution of a count vector. *)

val mutual_information : Contingency.t -> int array -> int array -> float
(** [mutual_information joint xs ys]: empirical mutual information
    I(X; Y) between the column groups at positions [xs] and [ys] of the
    contingency table (positions strictly increasing within each group,
    disjoint).  Always >= 0 up to rounding. *)

val loglik_of_counts : Contingency.t -> parent_dims:int array -> child_dim:int -> float
(** [loglik_of_counts joint ~parent_dims ~child_dim]: the maximized data
    log-likelihood (in bits) of the conditional family
    P(child | parents) when parameters are the empirical conditional
    frequencies — i.e. [-N * H(child | parents)].  This is the local score
    of Eq. (5) up to the constant. *)

val conditional_entropy : Contingency.t -> parent_dims:int array -> child_dim:int -> float
(** Empirical H(child | parents) in bits. *)
