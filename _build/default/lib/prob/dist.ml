open Selest_util

type t = float array

let uniform k =
  if k <= 0 then invalid_arg "Dist.uniform: domain must be non-empty";
  Array.make k (1.0 /. float_of_int k)

let of_weights w =
  if Array.length w = 0 then invalid_arg "Dist.of_weights: empty";
  Array.iter (fun x -> if x < 0.0 || Float.is_nan x then invalid_arg "Dist.of_weights: negative weight") w;
  Arrayx.normalize w

let of_counts ?(smoothing = 0.0) c =
  of_weights (Array.map (fun x -> x +. smoothing) c)

let point k v =
  if v < 0 || v >= k then invalid_arg "Dist.point";
  let a = Array.make k 0.0 in
  a.(v) <- 1.0;
  a

let arity = Array.length
let prob t v = t.(v)
let to_array = Array.copy

let entropy t = -.Array.fold_left (fun acc p -> acc +. Arrayx.xlogx p) 0.0 t

let kl p q =
  if Array.length p <> Array.length q then invalid_arg "Dist.kl: arity mismatch";
  let acc = ref 0.0 in
  Array.iteri
    (fun i pi ->
      if pi > 0.0 then
        if q.(i) > 0.0 then acc := !acc +. (pi *. Arrayx.log2 (pi /. q.(i)))
        else acc := Float.infinity)
    p;
  !acc

let total_variation p q =
  if Array.length p <> Array.length q then invalid_arg "Dist.total_variation";
  let acc = ref 0.0 in
  Array.iteri (fun i pi -> acc := !acc +. abs_float (pi -. q.(i))) p;
  0.5 *. !acc

let sample rng t = Rng.categorical rng t

let equal ?(eps = 1e-9) p q =
  Array.length p = Array.length q
  && Array.for_all2 (fun a b -> Arrayx.float_equal ~eps a b) p q

let pp ppf t =
  Format.fprintf ppf "[%s]"
    (String.concat "; " (Array.to_list (Array.map (Printf.sprintf "%.4f") t)))
