(** Single-table Bayesian-network estimator (the paper's PRM restricted to
    one table — the "PRM" series of Fig. 4 and 5).

    Learns a BN over a table's attributes (optionally a subset, for the
    equal-storage comparisons of Fig. 4) under a byte budget and answers
    select queries over that table via exact inference. *)

val build :
  table:string -> ?attrs:string list -> budget_bytes:int ->
  ?kind:Selest_bn.Cpd.kind -> ?rule:Selest_bn.Learn.rule -> ?seed:int ->
  Selest_db.Database.t -> Estimator.t
(** Queries must have a single tuple variable over [table] and select only
    modelled attributes; otherwise {!Estimator.Unsupported}. *)

val name_for : Selest_bn.Cpd.kind -> string
(** "PRM(tree)" / "PRM(table)" — the labels used in reports. *)
