(** AVI: the attribute-value-independence baseline (Sec. 5).

    One one-dimensional histogram (exact, one bucket per value — domains
    are small) per attribute per table; selects multiply marginal
    probabilities, joins use the uniform-join assumption [P(J) = 1/|S|].
    This is the System-R-style estimator commercial optimizers implement,
    and the paper's whipping boy. *)

val build : ?tables:string list -> ?attrs:(string * string) list -> Selest_db.Database.t -> Estimator.t
(** [build db] covers every attribute of every table.  [tables] restricts
    coverage; [attrs] (pairs of table, attribute) restricts further — used
    when comparing at equal storage over a query subset.  Queries touching
    uncovered attributes raise {!Estimator.Unsupported}. *)
