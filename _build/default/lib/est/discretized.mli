(** Large-domain attributes via discretization (Sec. 2.3).

    The paper's models assume moderate domain sizes and handle larger ones
    by bucketizing: learn the BN over bucket-level domains, answer a
    base-level query by estimating the bucket-level query and assuming
    uniformity within each bucket.  This estimator packages that pipeline:
    selected attributes are equi-depth bucketized, a BN is learned over the
    transformed table, and base-level predicates are answered as

    {[ N · Σ_cells P(bucket cells) · Π_attr coverage(cell) ]}

    where coverage is the fraction of a bucket's base values satisfying the
    predicate (1 or 0 for non-bucketized attributes).  Exact bucket-level
    queries lose nothing; base-level point queries pay only the
    within-bucket uniformity assumption. *)

val build :
  table:string -> bucketize:(string * int) list -> budget_bytes:int ->
  ?kind:Selest_bn.Cpd.kind -> ?seed:int -> Selest_db.Database.t -> Estimator.t
(** [bucketize] maps attribute names to bucket counts; unlisted attributes
    keep their domains.  Storage = the BN plus one boundary value per
    bucket.  Queries must be single-table selects on [table]. *)
