(** Full PRM estimator, plus the BN+UJ ablation (Sec. 5, select–join
    experiments).

    [build] learns an unrestricted PRM: per-table models, cross-foreign-key
    parents and join-indicator parents, all under one byte budget.
    [build_bn_uj] restricts the move set to intra-table edges and leaves
    every join indicator parentless — per-table Bayesian networks under
    the uniform-join assumption, the paper's BN+UJ baseline. *)

val build :
  budget_bytes:int -> ?kind:Selest_bn.Cpd.kind -> ?rule:Selest_bn.Learn.rule ->
  ?seed:int -> Selest_db.Database.t -> Estimator.t

val build_bn_uj :
  budget_bytes:int -> ?kind:Selest_bn.Cpd.kind -> ?rule:Selest_bn.Learn.rule ->
  ?seed:int -> Selest_db.Database.t -> Estimator.t

val of_model : name:string -> Selest_prm.Model.t -> sizes:int array -> Estimator.t
(** Wrap an already-learned PRM (used by the CLI after loading a model). *)
