(** Wavelet-based histograms (Matias–Vitter–Wang [21], the other
    joint-distribution approximation family the paper cites).

    The joint frequency array of the chosen attributes (zero-padded to
    power-of-two extents) is transformed with the orthonormal
    multi-dimensional Haar wavelet (standard decomposition); the [B]
    largest-magnitude coefficients are retained — the L2-optimal choice —
    and every query is answered from the distribution they reconstruct.
    Storage is charged at two values (position + coefficient) per retained
    coefficient.

    Like MHIST this is a single-table, fixed-attribute-set synopsis: the
    contrast with the PRM's one-model-for-all-queries property is the
    point of including it. *)

val build :
  table:string -> attrs:string list -> budget_bytes:int -> Selest_db.Database.t ->
  Estimator.t

val n_coefficients_for : budget_bytes:int -> int
(** Retained coefficients affordable under the budget. *)

(** The transform itself, exposed for direct testing. *)
module Haar : sig
  val forward : dims:int array -> float array -> float array
  (** Orthonormal multi-dimensional Haar transform; [dims] must be powers
      of two and their product the array length. *)

  val inverse : dims:int array -> float array -> float array
  (** Exact inverse of {!forward}. *)

  val top_k : float array -> int -> (int * float) array
  (** Indices and values of the [k] largest-magnitude entries (ties broken
      by lower index), always including index 0 (the total-mass scaling
      coefficient) when [k >= 1]. *)
end
