(** SAMPLE: estimation from a uniform random sample (Sec. 5).

    For a single-table database, a uniform sample of rows.  For a multi-
    table database, a uniform sample of the {e full foreign-key join}: base
    rows are drawn from the table that reaches every other table through
    foreign keys, and each sampled row carries the attributes of all the
    rows it joins with (under referential integrity the full join has
    exactly one row per base row, so this is a uniform join sample — the
    construction the paper compares against for select–join queries).

    A query is answered by the matching fraction of the sample scaled by
    the join's (known) unselected size; queries whose tuple-variable set
    does not include the base table cannot be debiased from a join sample
    and raise {!Estimator.Unsupported}. *)

val build :
  rows:int -> seed:int -> ?attrs:(string * string) list -> ?base:string ->
  Selest_db.Database.t -> Estimator.t
(** [build ~rows ~seed db]: sample [rows] base rows without replacement
    ([rows] is clamped to the base table's size).  [attrs] restricts the
    stored columns (and thus the storage charge) when comparing at equal
    storage over a known query subset.  [base] forces the root table
    (default: the table reaching the most others through foreign keys) —
    used by join synopses, which keep one sample per root. *)

val bytes_for : rows:int -> n_attrs:int -> int
(** Storage charged for a sample: one value per stored attribute per row. *)
