(** MHIST: multidimensional histograms, V-Optimal(V,A) flavour
    (Poosala & Ioannidis [25], the paper's Sec. 5 comparison point).

    The joint frequency space of the chosen attributes is partitioned into
    hyper-rectangular buckets by the MHIST-2 greedy strategy: repeatedly
    split, along one dimension, the bucket whose marginal frequency vector
    has the largest variance ("area" in V-Optimal(V,A) terms), at the cut
    that maximally reduces within-bucket variance.  Each bucket stores its
    bounds and total count; frequencies inside a bucket are assumed
    uniform over its cells.

    Single-table only; the attribute set is fixed at build time (the
    standard deployment of multidimensional histograms the paper contrasts
    with its one-model-for-all-queries property). *)

val build :
  table:string -> attrs:string list -> budget_bytes:int -> Selest_db.Database.t ->
  Estimator.t
(** Build over the given attributes of [table].  The bucket count is the
    largest that fits [budget_bytes], at [2d + 1] stored values per bucket
    ([d] bounds pairs plus the count).  Queries must select only covered
    attributes of a single tuple variable over [table]; anything else
    raises {!Estimator.Unsupported}. *)

val n_buckets_for : budget_bytes:int -> dims:int -> int
