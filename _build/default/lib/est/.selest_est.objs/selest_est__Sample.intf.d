lib/est/sample.mli: Estimator Selest_db
