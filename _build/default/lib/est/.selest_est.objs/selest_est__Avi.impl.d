lib/est/avi.ml: Array Arrayx Bytesize Database Estimator Exec Hashtbl List Printf Query Schema Selest_db Selest_util Table Value
