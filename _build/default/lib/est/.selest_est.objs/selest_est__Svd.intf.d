lib/est/svd.mli: Estimator Selest_db
