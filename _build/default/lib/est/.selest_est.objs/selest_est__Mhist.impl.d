lib/est/mhist.ml: Array Bytesize Contingency Database Estimator Exec List Query Schema Selest_db Selest_prob Selest_util Table Value
