lib/est/prm_est.ml: Estimate Estimator Learn Model Selest_bn Selest_prm
