lib/est/estimator.ml: Float Selest_db
