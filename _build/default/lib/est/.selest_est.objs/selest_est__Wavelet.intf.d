lib/est/wavelet.mli: Estimator Selest_db
