lib/est/sample.ml: Array Bytesize Database Estimator Exec Hashtbl List Printf Query Rng Schema Selest_db Selest_util Table
