lib/est/bn_est.mli: Estimator Selest_bn Selest_db
