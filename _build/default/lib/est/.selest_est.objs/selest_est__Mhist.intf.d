lib/est/mhist.mli: Estimator Selest_db
