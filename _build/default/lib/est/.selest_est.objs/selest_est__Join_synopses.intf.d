lib/est/join_synopses.mli: Estimator Selest_db
