lib/est/avi.mli: Estimator Selest_db
