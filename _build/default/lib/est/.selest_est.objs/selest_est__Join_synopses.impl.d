lib/est/join_synopses.ml: Array Database Estimator Exec Hashtbl List Query Sample Schema Selest_db Selest_util Table
