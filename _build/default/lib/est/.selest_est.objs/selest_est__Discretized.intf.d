lib/est/discretized.mli: Estimator Selest_bn Selest_db
