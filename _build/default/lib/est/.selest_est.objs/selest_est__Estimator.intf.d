lib/est/estimator.mli: Selest_db
