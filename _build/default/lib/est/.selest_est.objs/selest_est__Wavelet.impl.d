lib/est/wavelet.ml: Array Bytesize Contingency Database Estimator Exec Float List Query Schema Selest_db Selest_prob Selest_util Table Value
