lib/est/discretized.ml: Array Bn Bytesize Cpd Data Database Discretize Estimator Exec Factor Hashtbl Learn List Query Schema Selest_bn Selest_db Selest_prob Selest_util Table Value Ve
