lib/est/prm_est.mli: Estimator Selest_bn Selest_db Selest_prm
