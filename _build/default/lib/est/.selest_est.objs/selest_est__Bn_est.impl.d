lib/est/bn_est.ml: Array Bn Cpd Data Database Estimator Exec Learn List Query Schema Selest_bn Selest_db Table
