(** Join synopses (Acharya, Gibbons, Poosala & Ramaswamy [1], the paper's
    related work on join sampling).

    One uniform sample of each {e distinguished join} — the maximal
    foreign-key closure rooted at each table — so that, unlike a single
    join sample, every select–keyjoin query rooted anywhere in the schema
    has an unbiased synopsis to read from.  The storage budget is split
    evenly across the per-root synopses. *)

val build : budget_bytes:int -> seed:int -> Selest_db.Database.t -> Estimator.t
(** A query is dispatched to the synopsis rooted at its base tuple
    variable's table ({!Selest_db.Exec.single_base}); queries with no
    single base raise {!Estimator.Unsupported}. *)
