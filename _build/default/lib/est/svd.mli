(** Truncated-SVD histogram (the two-dimensional technique of Poosala &
    Ioannidis [25] the paper mentions alongside MHIST).

    The joint frequency matrix of two attributes is approximated by its
    rank-k truncation A ≈ Σᵢ σᵢ·uᵢ·vᵢᵀ, computed by orthogonal (block
    power) iteration — no external linear algebra.  Storage is k singular
    triplets: k·(rows + cols + 1) values.  By Eckart–Young this is the
    L2-optimal rank-k summary, so it complements MHIST (piecewise-uniform)
    and WAVELET (hierarchical) as a third classical family. *)

val build :
  table:string -> x:string -> y:string -> budget_bytes:int ->
  Selest_db.Database.t -> Estimator.t
(** Exactly two attributes, single table.  The rank is the largest that
    fits the budget (at least 1). *)

val rank_for : budget_bytes:int -> rows:int -> cols:int -> int

(** The numerical kernel, exposed for direct testing. *)
module Lowrank : sig
  val truncate : rows:int -> cols:int -> float array -> k:int -> (float * float array * float array) array
  (** [truncate ~rows ~cols a ~k]: the top-[k] singular triplets
      [(sigma, u, v)] of the row-major matrix [a], by power iteration with
      deflation; singular values in non-increasing order. *)

  val reconstruct : rows:int -> cols:int -> (float * float array * float array) array -> float array
end
