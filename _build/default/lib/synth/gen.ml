open Selest_util

let normal_bucket rng ~mean ~sd ~card =
  (* Box–Muller; one draw per call is fine for generator workloads. *)
  let u1 = Float.max 1e-12 (Rng.float rng) in
  let u2 = Rng.float rng in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  let x = mean +. (sd *. z) in
  let v = int_of_float (Float.round x) in
  if v < 0 then 0 else if v >= card then card - 1 else v

let weights pairs ~card =
  let a = Array.make card 0.0 in
  List.iter
    (fun (i, w) ->
      if i < 0 || i >= card then invalid_arg "Gen.weights: index out of range";
      a.(i) <- a.(i) +. w)
    pairs;
  a

let bump a i w =
  let b = Array.copy a in
  b.(i) <- b.(i) +. w;
  b

let mixture rng components =
  let comp_weights = Array.of_list (List.map fst components) in
  let k = Rng.categorical rng comp_weights in
  Rng.categorical rng (snd (List.nth components k))

let zipf n s = Array.init n (fun k -> 1.0 /. Float.pow (float_of_int (k + 1)) s)

let categorical = Rng.categorical

let column n f = Array.init n f

let assign_children rng ~parent_count ~total ~weight =
  let w = Array.init parent_count weight in
  Array.init total (fun _ -> Rng.categorical rng w)
