open Selest_util
open Selest_db

let default_districts = 77
let default_accounts = 4_500
let default_transactions = 106_000

let schema =
  Schema.create
    [ Schema.table_schema ~name:"district"
        ~attrs:
          [ ("Region", Value.ints 8);
            ("Size", Value.labeled ~ordinal:true [| "rural"; "town"; "city" |]);
            ("AvgSalary", Value.labeled ~ordinal:true
               [| "verylow"; "low"; "mid"; "high"; "veryhigh" |]);
            ("Unemployment", Value.labeled ~ordinal:true [| "low"; "mid"; "high" |]) ]
        ();
      Schema.table_schema ~name:"account"
        ~attrs:
          [ ("Frequency", Value.labeled [| "monthly"; "weekly"; "after-tx" |]);
            ("OpenEra", Value.labeled ~ordinal:true [| "93"; "94"; "95"; "96"; "97" |]);
            ("Balance", Value.labeled ~ordinal:true
               [| "b0"; "b1"; "b2"; "b3"; "b4"; "b5" |]);
            ("CardType", Value.labeled [| "none"; "junior"; "classic"; "gold" |]) ]
        ~fks:[ ("district", "district") ] ();
      Schema.table_schema ~name:"transaction"
        ~attrs:
          [ ("TxType", Value.labeled [| "credit"; "withdrawal"; "transfer" |]);
            ("Operation", Value.labeled
               [| "cash"; "card"; "bank-remittance"; "standing-order"; "interest" |]);
            ("Amount", Value.labeled ~ordinal:true
               [| "a0"; "a1"; "a2"; "a3"; "a4"; "a5"; "a6"; "a7" |]);
            ("Channel", Value.labeled [| "branch"; "atm"; "electronic" |]) ]
        ~fks:[ ("account", "account") ] () ]

let generate ?(districts = default_districts) ?(accounts = default_accounts)
    ?(transactions = default_transactions) ~seed () =
  let rng = Rng.create (seed lxor 0xF1A) in
  (* --- districts ------------------------------------------------------ *)
  let d_region = Array.make districts 0 in
  let d_size = Array.make districts 0 in
  let d_salary = Array.make districts 0 in
  let d_unemp = Array.make districts 0 in
  for d = 0 to districts - 1 do
    let region = Rng.categorical rng (Array.make 8 1.0) in
    (* Region 0 is the capital region: urban and rich. *)
    let size =
      if region = 0 then Rng.categorical rng [| 5.0; 20.0; 75.0 |]
      else Rng.categorical rng [| 40.0; 42.0; 18.0 |]
    in
    let salary =
      match size with
      | 2 -> Rng.categorical rng [| 2.0; 8.0; 30.0; 40.0; 20.0 |]
      | 1 -> Rng.categorical rng [| 10.0; 30.0; 40.0; 16.0; 4.0 |]
      | _ -> Rng.categorical rng [| 30.0; 40.0; 24.0; 5.0; 1.0 |]
    in
    let unemp =
      if salary >= 3 then Rng.categorical rng [| 70.0; 24.0; 6.0 |]
      else if salary = 2 then Rng.categorical rng [| 40.0; 42.0; 18.0 |]
      else Rng.categorical rng [| 15.0; 40.0; 45.0 |]
    in
    d_region.(d) <- region;
    d_size.(d) <- size;
    d_salary.(d) <- salary;
    d_unemp.(d) <- unemp
  done;
  (* --- accounts ------------------------------------------------------- *)
  (* Urban districts host disproportionately many accounts. *)
  let district_weight d =
    match d_size.(d) with 2 -> 6.0 | 1 -> 2.5 | _ -> 1.0
  in
  let a_district =
    Gen.assign_children rng ~parent_count:districts ~total:accounts ~weight:district_weight
  in
  let a_freq = Array.make accounts 0 in
  let a_era = Array.make accounts 0 in
  let a_balance = Array.make accounts 0 in
  let a_card = Array.make accounts 0 in
  for a = 0 to accounts - 1 do
    let d = a_district.(a) in
    (* Balance follows district salary: the cross-FK correlation. *)
    let balance =
      Gen.normal_bucket rng ~mean:(0.6 +. (0.85 *. float_of_int d_salary.(d))) ~sd:1.0
        ~card:6
    in
    let freq =
      if balance >= 4 then Rng.categorical rng [| 55.0; 15.0; 30.0 |]
      else Rng.categorical rng [| 78.0; 16.0; 6.0 |]
    in
    let card =
      if balance >= 4 then Rng.categorical rng [| 35.0; 2.0; 38.0; 25.0 |]
      else if balance >= 2 then Rng.categorical rng [| 60.0; 6.0; 30.0; 4.0 |]
      else Rng.categorical rng [| 85.0; 8.0; 6.5; 0.5 |]
    in
    a_freq.(a) <- freq;
    a_era.(a) <- Rng.categorical rng [| 12.0; 16.0; 22.0; 26.0; 24.0 |];
    a_balance.(a) <- balance;
    a_card.(a) <- card
  done;
  (* --- transactions --------------------------------------------------- *)
  (* Join skew: high-balance / after-tx-statement accounts transact far
     more, the purchases-by-high-income-individuals effect of Sec. 1. *)
  let account_weight a =
    let b = float_of_int a_balance.(a) in
    (1.0 +. (b *. b *. 0.9)) *. (if a_freq.(a) = 2 then 2.2 else 1.0)
  in
  let t_account =
    Gen.assign_children rng ~parent_count:accounts ~total:transactions
      ~weight:account_weight
  in
  let t_type = Array.make transactions 0 in
  let t_op = Array.make transactions 0 in
  let t_amount = Array.make transactions 0 in
  let t_channel = Array.make transactions 0 in
  for t = 0 to transactions - 1 do
    let a = t_account.(t) in
    let balance = a_balance.(a) in
    let txtype =
      if balance >= 4 then Rng.categorical rng [| 40.0; 34.0; 26.0 |]
      else Rng.categorical rng [| 30.0; 55.0; 15.0 |]
    in
    let op =
      match txtype with
      | 0 -> Rng.categorical rng [| 30.0; 4.0; 40.0; 6.0; 20.0 |]
      | 1 -> Rng.categorical rng [| 55.0; 30.0; 5.0; 10.0; 0.0 |]
      | _ -> Rng.categorical rng [| 5.0; 5.0; 55.0; 35.0; 0.0 |]
    in
    (* Amount tracks account balance: the attribute pair the paper's FIN
       select–join queries hit. *)
    let amount =
      Gen.normal_bucket rng ~mean:(0.8 +. (1.05 *. float_of_int balance)) ~sd:1.1 ~card:8
    in
    let channel =
      if a_card.(a) >= 2 && op <= 1 then Rng.categorical rng [| 15.0; 55.0; 30.0 |]
      else if op >= 2 then Rng.categorical rng [| 25.0; 5.0; 70.0 |]
      else Rng.categorical rng [| 60.0; 30.0; 10.0 |]
    in
    t_type.(t) <- txtype;
    t_op.(t) <- op;
    t_amount.(t) <- amount;
    t_channel.(t) <- channel
  done;
  let district_table =
    Table.create (Schema.find_table schema "district")
      ~cols:[| d_region; d_size; d_salary; d_unemp |] ~fk_cols:[||]
  in
  let account_table =
    Table.create (Schema.find_table schema "account")
      ~cols:[| a_freq; a_era; a_balance; a_card |] ~fk_cols:[| a_district |]
  in
  let transaction_table =
    Table.create (Schema.find_table schema "transaction")
      ~cols:[| t_type; t_op; t_amount; t_channel |] ~fk_cols:[| t_account |]
  in
  Database.create schema [ district_table; account_table; transaction_table ]
