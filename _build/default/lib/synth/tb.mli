(** Tuberculosis-contact dataset (substitute for the SF TB database).

    Three tables joined by foreign keys:
    {ul
    {- [strain] (2K rows): Unique, DrugResist, Lineage;}
    {- [patient] (2.5K rows): Age, Gender, HIV, USBorn, Homeless, Site, and
       a foreign key [strain];}
    {- [contact] (19K rows): Contype, Age, Infected, Gender, and a foreign
       key [patient].}}

    Planted phenomena, copied from the paper's Sec. 3 narrative:
    {ul
    {- join skew patient→strain: US-born patients cluster on non-unique
       strains (≈3× the foreign-born rate); unique strains join a single
       patient;}
    {- join skew contact→patient: middle-aged patients have many more
       contacts than elderly ones;}
    {- cross-FK correlation: contact type depends on the patient's age
       (elderly patients with roommates are rare) and contact infection
       depends on contact type and the patient's HIV status.}} *)

val schema : Selest_db.Schema.t

val default_patients : int
val default_contacts : int
val default_strains : int

val generate :
  ?patients:int -> ?contacts:int -> ?strains:int -> seed:int -> unit ->
  Selest_db.Database.t
