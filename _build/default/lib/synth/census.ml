open Selest_util
open Selest_db

let table_name = "person"

let attr_names =
  [| "Age"; "WorkerClass"; "Education"; "MaritalStatus"; "Industry"; "Race"; "Sex";
     "ChildSupport"; "Earner"; "Children"; "Income"; "EmployType" |]

(* Domain sizes follow the paper (Sec. 2.2): 18, 9, 17, 7, 24, 5, 2, 3, 3,
   3, 42, 4.  Age is in 5-year buckets, Income in 42 bands. *)
let cards = [| 18; 9; 17; 7; 24; 5; 2; 3; 3; 3; 42; 4 |]

let schema =
  Schema.create
    [ Schema.table_schema ~name:table_name
        ~attrs:
          (Array.to_list
             (Array.mapi (fun i name -> (name, Value.ints cards.(i))) attr_names))
        () ]

let default_rows = 150_000

(* Attribute positions, for readability below. *)
let i_age = 0
and i_workerclass = 1
and i_education = 2
and i_marital = 3
and i_industry = 4
and i_race = 5
and i_sex = 6
and i_childsupport = 7
and i_earner = 8
and i_children = 9
and i_income = 10
and i_employtype = 11

(* Marital codes. *)
let m_never = 0
and m_married = 1
and m_divorced = 2
and m_separated = 3
and _m_widowed = 4

(* Children codes: 0 = N/A (not a householder), 1 = yes, 2 = no. *)

let age_marginal =
  (* Mild baby-boom hump around buckets 5-9 (ages 25-49). *)
  [| 7.0; 7.0; 7.0; 7.2; 7.6; 8.2; 8.4; 8.2; 7.8; 7.2; 6.2; 5.2; 4.2; 3.6; 3.0; 2.4;
     1.6; 1.2 |]

let sample_age rng = Rng.categorical rng age_marginal
let sample_sex rng = Rng.categorical rng [| 0.51; 0.49 |]
let sample_race rng = Rng.categorical rng [| 0.72; 0.12; 0.08; 0.05; 0.03 |]

let sample_education rng ~age =
  if age <= 2 then min 16 (age * 4)
  else if age = 3 then Gen.normal_bucket rng ~mean:10.0 ~sd:1.5 ~card:17
  else
    (* Older cohorts have slightly lower educational attainment. *)
    let mean = 11.5 -. (0.15 *. float_of_int (max 0 (age - 6))) in
    Gen.normal_bucket rng ~mean ~sd:2.8 ~card:17

let sample_marital rng ~age =
  let w =
    if age < 4 then [| 100.0; 0.5; 0.1; 0.1; 0.0; 0.3; 0.1 |]
    else if age < 6 then [| 45.0; 40.0; 5.0; 2.0; 0.3; 7.0; 0.7 |]
    else if age < 10 then [| 16.0; 58.0; 13.0; 4.0; 1.0; 7.0; 1.0 |]
    else if age < 13 then [| 7.0; 62.0; 15.0; 3.0; 6.0; 6.0; 1.0 |]
    else [| 4.0; 48.0; 10.0; 2.0; 32.0; 3.0; 1.0 |]
  in
  Rng.categorical rng w

let sample_workerclass rng ~age ~education =
  (* 0 private, 1 self-emp-inc, 2 self-emp-uninc, 3 federal, 4 state,
     5 local, 6 unpaid, 7 never-worked, 8 n/a (children / retired). *)
  if age < 3 then 8
  else if age >= 14 then Rng.categorical rng [| 12.0; 2.0; 3.0; 1.0; 1.0; 1.0; 1.0; 4.0; 75.0 |]
  else
    let e = float_of_int education in
    Rng.categorical rng
      [| 55.0 +. e; 1.0 +. (0.4 *. e); 4.0; 1.0 +. (0.3 *. e); 2.0 +. (0.3 *. e);
         3.0 +. (0.2 *. e); 1.5; 6.0 -. (0.3 *. e); 12.0 -. (0.5 *. e) |]

let sample_industry rng ~workerclass ~education =
  (* 24 industries; government classes concentrate on public administration
     (21-23); the educated concentrate on professional industries (14-20). *)
  let base = Array.make 24 1.0 in
  (match workerclass with
  | 3 | 4 | 5 ->
    base.(21) <- 20.0;
    base.(22) <- 14.0;
    base.(23) <- 10.0
  | 1 | 2 ->
    base.(4) <- 8.0;
    base.(10) <- 8.0;
    base.(13) <- 6.0
  | 7 | 8 -> Array.fill base 0 24 0.0; base.(0) <- 1.0
  | _ ->
    if education >= 12 then
      for i = 14 to 20 do base.(i) <- 7.0 done
    else
      for i = 1 to 9 do base.(i) <- 5.0 done);
  Rng.categorical rng base

let sample_employtype rng ~age ~workerclass =
  (* 0 full-time, 1 part-time, 2 unemployed, 3 not-in-labor-force. *)
  if age < 3 then 3
  else
    match workerclass with
    | 7 | 8 -> if Rng.float rng < 0.92 then 3 else 2
    | _ ->
      if age >= 13 then Rng.categorical rng [| 12.0; 10.0; 2.0; 76.0 |]
      else if age = 3 then Rng.categorical rng [| 35.0; 45.0; 8.0; 12.0 |]
      else Rng.categorical rng [| 70.0; 15.0; 6.0; 9.0 |]

let sample_income rng ~age ~education ~employtype =
  (* 42 income bands.  Education dominates, with an age-experience hump and
     a strong employment-status effect: the signature correlated triple the
     attribute-value-independence assumption gets wrong. *)
  match employtype with
  | 3 -> if Rng.float rng < 0.75 then 0 else Gen.normal_bucket rng ~mean:3.0 ~sd:2.5 ~card:42
  | 2 -> Gen.normal_bucket rng ~mean:2.5 ~sd:2.0 ~card:42
  | _ ->
    let experience = float_of_int (min age 10) in
    let e = float_of_int education in
    let mean =
      1.0 +. (1.55 *. Float.max 0.0 (e -. 4.0)) +. (1.3 *. experience)
      +. (if employtype = 1 then -6.0 else 0.0)
    in
    Gen.normal_bucket rng ~mean ~sd:4.0 ~card:42

let sample_earner rng ~income ~employtype =
  (* 0 non-earner, 1 secondary earner, 2 primary earner. *)
  if employtype = 3 && income = 0 then
    Rng.categorical rng [| 92.0; 6.0; 2.0 |]
  else if income < 5 then Rng.categorical rng [| 55.0; 30.0; 15.0 |]
  else if income < 15 then Rng.categorical rng [| 8.0; 42.0; 50.0 |]
  else Rng.categorical rng [| 2.0; 18.0; 80.0 |]

let sample_children rng ~income ~age ~marital =
  (* Mirrors the CPD tree of Fig. 2(b): children in the household are
     determined by income, age and marital status; education matters only
     through income. *)
  if age < 4 then if Rng.float rng < 0.97 then 0 else 2
  else if age >= 11 then Rng.categorical rng [| 5.0; 7.0; 88.0 |]
  else if marital = m_married then
    if income >= 7 then Rng.categorical rng [| 3.0; 72.0; 25.0 |]
    else Rng.categorical rng [| 6.0; 55.0; 39.0 |]
  else if marital = m_never then
    if income >= 7 then Rng.categorical rng [| 22.0; 13.0; 65.0 |]
    else Rng.categorical rng [| 30.0; 22.0; 48.0 |]
  else Rng.categorical rng [| 10.0; 38.0; 52.0 |]

let sample_childsupport rng ~marital ~children =
  (* 0 none, 1 receives, 2 pays. *)
  if (marital = m_divorced || marital = m_separated) && children = 1 then
    Rng.categorical rng [| 45.0; 40.0; 15.0 |]
  else if marital = m_divorced || marital = m_separated then
    Rng.categorical rng [| 70.0; 8.0; 22.0 |]
  else if children = 1 then Rng.categorical rng [| 93.0; 4.0; 3.0 |]
  else Rng.categorical rng [| 98.5; 0.5; 1.0 |]

let generate ?(rows = default_rows) ~seed () =
  let rng = Rng.create (seed lxor 0x5EC5) in
  let cols = Array.map (fun c -> ignore c; Array.make rows 0) cards in
  for r = 0 to rows - 1 do
    let age = sample_age rng in
    let sex = sample_sex rng in
    let race = sample_race rng in
    let education = sample_education rng ~age in
    let marital = sample_marital rng ~age in
    let workerclass = sample_workerclass rng ~age ~education in
    let industry = sample_industry rng ~workerclass ~education in
    let employtype = sample_employtype rng ~age ~workerclass in
    let income = sample_income rng ~age ~education ~employtype in
    let earner = sample_earner rng ~income ~employtype in
    let children = sample_children rng ~income ~age ~marital in
    let childsupport = sample_childsupport rng ~marital ~children in
    cols.(i_age).(r) <- age;
    cols.(i_workerclass).(r) <- workerclass;
    cols.(i_education).(r) <- education;
    cols.(i_marital).(r) <- marital;
    cols.(i_industry).(r) <- industry;
    cols.(i_race).(r) <- race;
    cols.(i_sex).(r) <- sex;
    cols.(i_childsupport).(r) <- childsupport;
    cols.(i_earner).(r) <- earner;
    cols.(i_children).(r) <- children;
    cols.(i_income).(r) <- income;
    cols.(i_employtype).(r) <- employtype
  done;
  let ts = Schema.find_table schema table_name in
  Database.create schema [ Table.create ts ~cols ~fk_cols:[||] ]
