(** Financial dataset (substitute for the PKDD'99 discovery-challenge db).

    Three tables joined by foreign keys, at the paper's cardinalities:
    {ul
    {- [district] (77 rows): Region, Size, AvgSalary, Unemployment;}
    {- [account] (4.5K rows): Frequency, OpenEra, Balance, CardType, and a
       foreign key [district];}
    {- [transaction] (106K rows): TxType, Operation, Amount, Channel, and a
       foreign key [account].}}

    Planted phenomena: account balance correlates with district salary
    (cross-FK correlation); transaction volume per account grows with
    balance and statement frequency (join skew); transaction amount
    correlates with account balance (cross-FK correlation used by the
    paper's select–join suites). *)

val schema : Selest_db.Schema.t

val default_districts : int
val default_accounts : int
val default_transactions : int

val generate :
  ?districts:int -> ?accounts:int -> ?transactions:int -> seed:int -> unit ->
  Selest_db.Database.t
