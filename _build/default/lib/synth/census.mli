(** Census-like single-table dataset (substitute for the 1993 CPS extract).

    One table ["person"] with the paper's 12 attributes and domain sizes.
    Rows are sampled from a hand-specified generative model with the
    dependency structure described in the paper's running examples:
    income is driven by education, age and employment; home/children status
    is mediated by income, age and marital status; education and child
    status are correlated {e only} through those mediators, planting
    the conditional independencies a Bayesian network should discover. *)

val table_name : string
val attr_names : string array
(** Age, WorkerClass, Education, MaritalStatus, Industry, Race, Sex,
    ChildSupport, Earner, Children, Income, EmployType. *)

val schema : Selest_db.Schema.t
val default_rows : int
(** 150_000, the paper's dataset size. *)

val generate : ?rows:int -> seed:int -> unit -> Selest_db.Database.t
(** Deterministic in [(rows, seed)]. *)
