open Selest_util
open Selest_db

let default_patients = 2_500
let default_contacts = 19_000
let default_strains = 2_000

(* Contact types. *)
let ct_household = 0
and _ct_roommate = 1
and ct_coworker = 2
and _ct_friend = 3
and ct_healthcare = 4

let schema =
  Schema.create
    [ Schema.table_schema ~name:"strain"
        ~attrs:
          [ ("Unique", Value.labeled [| "no"; "yes" |]);
            ("DrugResist", Value.labeled ~ordinal:true [| "none"; "mono"; "multi" |]);
            ("Lineage", Value.ints 6) ]
        ();
      Schema.table_schema ~name:"patient"
        ~attrs:
          [ ("Age", Value.labeled ~ordinal:true
               [| "0-19"; "20-34"; "35-49"; "50-64"; "65-79"; "80+" |]);
            ("Gender", Value.labeled [| "m"; "f" |]);
            ("HIV", Value.labeled [| "neg"; "pos" |]);
            ("USBorn", Value.labeled [| "no"; "yes" |]);
            ("Homeless", Value.labeled [| "no"; "yes" |]);
            ("Site", Value.labeled [| "pulmonary"; "extrapulmonary"; "both"; "unknown" |]) ]
        ~fks:[ ("strain", "strain") ] ();
      Schema.table_schema ~name:"contact"
        ~attrs:
          [ ("Contype", Value.labeled
               [| "household"; "roommate"; "coworker"; "friend"; "healthcare" |]);
            ("Age", Value.labeled ~ordinal:true
               [| "0-19"; "20-34"; "35-49"; "50-64"; "65-79"; "80+" |]);
            ("Infected", Value.labeled [| "no"; "yes" |]);
            ("Gender", Value.labeled [| "m"; "f" |]) ]
        ~fks:[ ("patient", "patient") ] () ]

let sample_patient_age rng = Rng.categorical rng [| 8.0; 22.0; 28.0; 20.0; 14.0; 8.0 |]

let sample_contype rng ~patient_age =
  (* Elderly patients with roommates are rare (the paper's Sec. 3.1
     example); the young mix across social contact types. *)
  let w =
    if patient_age >= 4 then [| 46.0; 2.0; 3.0; 14.0; 35.0 |]
    else if patient_age <= 1 then [| 22.0; 24.0; 22.0; 26.0; 6.0 |]
    else [| 30.0; 12.0; 28.0; 22.0; 8.0 |]
  in
  Rng.categorical rng w

let sample_contact_age rng ~contype ~patient_age =
  if contype = ct_household then
    (* Household members cluster around (and below) the patient's age. *)
    Gen.normal_bucket rng ~mean:(float_of_int patient_age -. 0.8) ~sd:1.3 ~card:6
  else if contype = ct_coworker then Gen.normal_bucket rng ~mean:2.2 ~sd:1.0 ~card:6
  else if contype = ct_healthcare then Gen.normal_bucket rng ~mean:2.0 ~sd:0.9 ~card:6
  else Gen.normal_bucket rng ~mean:(float_of_int patient_age) ~sd:1.2 ~card:6

let infection_prob ~contype ~patient_hiv =
  let base =
    match contype with
    | 0 -> 0.34 (* household *)
    | 1 -> 0.40 (* roommate *)
    | 2 -> 0.10 (* coworker *)
    | 3 -> 0.18 (* friend *)
    | _ -> 0.06 (* healthcare *)
  in
  if patient_hiv = 1 && contype <= 1 then Float.min 0.9 (base +. 0.15) else base

let generate ?(patients = default_patients) ?(contacts = default_contacts)
    ?(strains = default_strains) ~seed () =
  let rng = Rng.create (seed lxor 0x7B) in
  (* --- strains: lineage/resistance; Unique is derived after assignment. *)
  let n_cluster = max 1 (strains / 4) in
  let s_lineage = Array.make strains 0 in
  let s_resist = Array.make strains 0 in
  for s = 0 to strains - 1 do
    if s < n_cluster then begin
      (* Locally circulating strains: two dominant lineages, some MDR. *)
      s_lineage.(s) <- Rng.categorical rng [| 48.0; 32.0; 8.0; 6.0; 4.0; 2.0 |];
      s_resist.(s) <- Rng.categorical rng [| 80.0; 14.0; 6.0 |]
    end
    else begin
      (* Indigenous strains brought by foreign-born patients. *)
      s_lineage.(s) <- Rng.categorical rng [| 4.0; 6.0; 22.0; 26.0; 24.0; 18.0 |];
      s_resist.(s) <- Rng.categorical rng [| 70.0; 18.0; 12.0 |]
    end
  done;
  (* --- patients ------------------------------------------------------- *)
  let p_age = Array.make patients 0 in
  let p_gender = Array.make patients 0 in
  let p_hiv = Array.make patients 0 in
  let p_usborn = Array.make patients 0 in
  let p_homeless = Array.make patients 0 in
  let p_site = Array.make patients 0 in
  let p_strain = Array.make patients 0 in
  let cluster_weights = Gen.zipf n_cluster 1.05 in
  let next_unique = ref n_cluster in
  for p = 0 to patients - 1 do
    let age = sample_patient_age rng in
    let usborn = if Rng.float rng < 0.48 then 1 else 0 in
    let homeless =
      if usborn = 1 && age >= 1 && age <= 3 then (if Rng.float rng < 0.18 then 1 else 0)
      else if Rng.float rng < 0.05 then 1
      else 0
    in
    let hiv =
      let base = if homeless = 1 then 0.22 else if age >= 1 && age <= 2 then 0.12 else 0.04 in
      if Rng.float rng < base then 1 else 0
    in
    let site =
      if hiv = 1 then Rng.categorical rng [| 38.0; 30.0; 26.0; 6.0 |]
      else Rng.categorical rng [| 68.0; 18.0; 8.0; 6.0 |]
    in
    (* Join skew (Sec. 3.2): US-born patients catch locally circulating,
       non-unique strains about 3x as often as foreign-born patients, who
       typically arrive with their own unique strain. *)
    let clustered =
      if usborn = 1 then Rng.float rng < 0.78 else Rng.float rng < 0.30
    in
    let strain =
      if clustered || !next_unique >= strains then
        Rng.categorical rng cluster_weights
      else begin
        let s = !next_unique in
        incr next_unique;
        s
      end
    in
    p_age.(p) <- age;
    p_gender.(p) <- (if Rng.float rng < 0.62 then 0 else 1);
    p_hiv.(p) <- hiv;
    p_usborn.(p) <- usborn;
    p_homeless.(p) <- homeless;
    p_site.(p) <- site;
    p_strain.(p) <- strain
  done;
  (* Unique = strain observed in at most one patient. *)
  let strain_count = Array.make strains 0 in
  Array.iter (fun s -> strain_count.(s) <- strain_count.(s) + 1) p_strain;
  let s_unique = Array.map (fun c -> if c <= 1 then 1 else 0) strain_count in
  (* --- contacts ------------------------------------------------------- *)
  (* Join skew contact→patient: middle-aged and homeless patients name many
     more contacts than the elderly. *)
  let contact_weight p =
    let base =
      match p_age.(p) with
      | 0 -> 6.0
      | 1 -> 10.0
      | 2 -> 12.0
      | 3 -> 7.0
      | 4 -> 3.0
      | _ -> 1.5
    in
    base *. (if p_homeless.(p) = 1 then 1.8 else 1.0)
  in
  let c_patient =
    Gen.assign_children rng ~parent_count:patients ~total:contacts ~weight:contact_weight
  in
  let c_type = Array.make contacts 0 in
  let c_age = Array.make contacts 0 in
  let c_infected = Array.make contacts 0 in
  let c_gender = Array.make contacts 0 in
  for c = 0 to contacts - 1 do
    let p = c_patient.(c) in
    let contype = sample_contype rng ~patient_age:p_age.(p) in
    c_type.(c) <- contype;
    c_age.(c) <- sample_contact_age rng ~contype ~patient_age:p_age.(p);
    c_infected.(c) <-
      (if Rng.float rng < infection_prob ~contype ~patient_hiv:p_hiv.(p) then 1 else 0);
    c_gender.(c) <- (if Rng.float rng < 0.5 then 0 else 1)
  done;
  let strain_table =
    Table.create (Schema.find_table schema "strain")
      ~cols:[| s_unique; s_resist; s_lineage |] ~fk_cols:[||]
  in
  let patient_table =
    Table.create (Schema.find_table schema "patient")
      ~cols:[| p_age; p_gender; p_hiv; p_usborn; p_homeless; p_site |]
      ~fk_cols:[| p_strain |]
  in
  let contact_table =
    Table.create (Schema.find_table schema "contact")
      ~cols:[| c_type; c_age; c_infected; c_gender |]
      ~fk_cols:[| c_patient |]
  in
  Database.create schema [ strain_table; patient_table; contact_table ]
