lib/synth/financial.mli: Selest_db
