lib/synth/gen.ml: Array Float List Rng Selest_util
