lib/synth/census.ml: Array Database Float Gen Rng Schema Selest_db Selest_util Table Value
