lib/synth/census.mli: Selest_db
