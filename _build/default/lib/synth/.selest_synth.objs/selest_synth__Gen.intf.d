lib/synth/gen.mli: Rng Selest_util
