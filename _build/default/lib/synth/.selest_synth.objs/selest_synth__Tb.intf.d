lib/synth/tb.mli: Selest_db
