lib/synth/financial.ml: Array Database Gen Rng Schema Selest_db Selest_util Table Value
