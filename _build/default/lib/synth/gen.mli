(** Sampling combinators for the synthetic data generators.

    The paper's datasets (Census, PKDD'99 Financial, SF Tuberculosis) are
    not redistributable, so each is replaced by a generator that plants the
    statistical phenomena the experiments measure: strong attribute
    correlations, conditional independencies, cross-foreign-key
    correlations, and join skew.  See DESIGN.md, "Substitutions". *)

open Selest_util

val normal_bucket : Rng.t -> mean:float -> sd:float -> card:int -> int
(** Sample a discretized Gaussian, clamped to [0..card-1].  Produces the
    smooth ordinal correlations (income vs. education, amount vs. balance)
    real data exhibits. *)

val weights : (int * float) list -> card:int -> float array
(** Sparse weight-vector literal: unlisted codes get weight 0. *)

val bump : float array -> int -> float -> float array
(** Functional update: add mass to one code. *)

val mixture : Rng.t -> (float * float array) list -> int
(** Draw a component by its weight, then a value from that component. *)

val zipf : int -> float -> float array
(** [zipf n s]: unnormalized Zipf weights [1/(k+1)^s], k in [0..n-1]. *)

val categorical : Rng.t -> float array -> int
(** Re-export of {!Rng.categorical} for generator readability. *)

val column : int -> (int -> int) -> int array
(** [column n f]: materialize a column by row index. *)

val assign_children :
  Rng.t -> parent_count:int -> total:int -> weight:(int -> float) -> int array
(** Foreign-key assignment with skew: produce a [total]-length fk column
    where parent [p] attracts children proportionally to [weight p].  The
    realized counts are multinomial, so fanout varies realistically around
    the intended skew. *)
