(** Variable elimination (the standard exact BN inference of [19]).

    Works on bags of factors, so the same engine serves single-table BNs
    and the query-evaluation networks PRMs build (Def. 3.5).  Elimination
    order is chosen greedily by minimum intermediate-factor size, which is
    effective on the sparse structures learned in practice (Sec. 2.3). *)

type evidence = (int * Selest_db.Query.pred) list
(** Variable id paired with the predicate it must satisfy.  [Eq] evidence
    slices factors; set/range evidence zeroes disallowed values and lets
    elimination sum the allowed ones — range queries cost nothing extra. *)

val apply_evidence : Selest_prob.Factor.t -> evidence -> Selest_prob.Factor.t

val eliminate_all : Selest_prob.Factor.t list -> float
(** Multiply all factors and sum out every variable: the total mass. *)

val prob_of_evidence : Selest_prob.Factor.t list -> evidence -> float
(** P(evidence) under the normalized distribution the factors define.
    When the factors are a BN's CPDs the distribution is already
    normalized and this is simply the evidence mass. *)

val posterior :
  Selest_prob.Factor.t list -> evidence -> keep:int array -> Selest_prob.Factor.t
(** Normalized joint marginal of the [keep] variables given the evidence. *)
