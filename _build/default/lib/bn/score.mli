(** Decomposable structure scores and the family-score cache (Sec. 4.1,
    4.3.1).

    The log-likelihood of a structure decomposes into per-family terms
    (Eq. 5): for tables the term is [-N * H(child | parents)] (equivalently
    [N * MI(child; parents)] plus a structure-independent constant); for
    trees it is the fitted tree's data log-likelihood.  Because a
    hill-climbing move changes one family only, terms are cached and reused
    across search iterations — the incremental-evaluation trick the paper
    highlights at the end of Sec. 4.3.3. *)

type family = {
  loglik : float;  (** maximized family log-likelihood, bits *)
  params : int;  (** free parameters of the fitted CPD *)
  bytes : int;  (** storage cost under {!Selest_util.Bytesize} accounting *)
  cpd : Cpd.t;
}

type cache

val create_cache : kind:Cpd.kind -> Data.t -> cache

val family : ?max_params:int -> cache -> child:int -> parents:int array -> family
(** Fit (or recall) the family's CPD and score.  [max_params] caps the
    fitted tree's size (so a tight budget can still consider a smaller
    tree); it never shrinks a table CPD, whose size is structural.  The
    unconstrained fit is cached first and reused whenever it already fits
    the cap. *)

val structure_loglik : cache -> Dag.t -> float
(** Σ family log-likelihoods: the [Score(S | D)] of Sec. 4.3.1. *)

val structure_bytes : cache -> Dag.t -> int
(** Model storage: CPD bytes plus per-node overhead. *)

val mutual_information : Data.t -> int array -> int array -> float
(** Empirical MI between two variable groups, in bits — exposed for tests
    and for reporting learned-structure quality. *)

val mdl_penalty_per_param : Data.t -> float
(** [log2 N / 2]: the per-parameter description-length charge used by the
    MDL move-selection rule. *)

val n_evaluations : cache -> int
(** Families actually fitted (cache misses) — used to verify incremental
    evaluation. *)
