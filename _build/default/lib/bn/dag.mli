(** Directed acyclic graph structure over variables [0..n-1].

    The dependency structure S of a Bayesian network (Sec. 2.2): node [v]'s
    parents are the variables its CPD conditions on. *)

type t

val empty : int -> t
val n_nodes : t -> int
val parents : t -> int -> int array
(** Sorted ascending. *)

val children : t -> int -> int array
val has_edge : t -> src:int -> dst:int -> bool
val n_edges : t -> int

val add_edge : t -> src:int -> dst:int -> t
(** Raises [Invalid_argument] if the edge exists, is a self-loop, or would
    create a cycle. *)

val remove_edge : t -> src:int -> dst:int -> t
(** Raises [Invalid_argument] if absent. *)

val creates_cycle : t -> src:int -> dst:int -> bool
(** Would adding [src -> dst] close a directed cycle? *)

val topological_order : t -> int array
(** Parents before children. *)

val edges : t -> (int * int) list
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
