open Selest_util

type t = Table of Table_cpd.t | Tree of Tree_cpd.t
type kind = Tables | Trees

let fit kind data ~child ~parents ?param_budget () =
  match kind with
  | Tables ->
    let cpd = Table_cpd.fit data ~child ~parents in
    (match param_budget with
    | Some b when Table_cpd.n_params cpd > b ->
      invalid_arg "Cpd.fit: table CPD exceeds parameter budget"
    | _ -> ());
    Table cpd
  | Trees -> Tree (Tree_cpd.fit data ~child ~parents ?param_budget ())

let parents = function
  | Table c -> c.Table_cpd.parents
  | Tree c -> c.Tree_cpd.parents

let child_card = function
  | Table c -> c.Table_cpd.child_card
  | Tree c -> c.Tree_cpd.child_card

let dist t pvals =
  match t with Table c -> Table_cpd.dist c pvals | Tree c -> Tree_cpd.dist c pvals

let n_params = function
  | Table c -> Table_cpd.n_params c
  | Tree c -> Tree_cpd.n_params c

let size_bytes t =
  (* Parameters plus one slot per conditioning parent (structure record). *)
  Bytesize.params (n_params t) + Bytesize.values (Array.length (parents t))

let loglik t data ~child =
  match t with
  | Table c -> Table_cpd.loglik c data ~child
  | Tree c -> Tree_cpd.loglik c data ~child

let to_factor ~var_of ~child = function
  | Table c -> Table_cpd.to_factor ~var_of ~child c
  | Tree c -> Tree_cpd.to_factor ~var_of ~child c

let kind_of = function Table _ -> Tables | Tree _ -> Trees

let refit t data ~child =
  match t with
  | Table c -> Table (Table_cpd.fit data ~child ~parents:c.Table_cpd.parents)
  | Tree c -> Tree (Tree_cpd.refit c data ~child)
