open Selest_prob
open Selest_db

type evidence = (int * Query.pred) list

let apply_evidence f ev =
  List.fold_left
    (fun f (v, pred) ->
      match pred with
      | Query.Eq x -> Factor.restrict f v x
      | Query.In_set xs -> Factor.observe f v (fun u -> List.mem u xs)
      | Query.Range (lo, hi) -> Factor.observe f v (fun u -> lo <= u && u <= hi))
    f ev

let var_card factors v =
  let rec scan = function
    | [] -> raise Not_found
    | f :: rest ->
      let vars = Factor.vars f and cards = Factor.cards f in
      let rec look i =
        if i >= Array.length vars then scan rest
        else if vars.(i) = v then cards.(i)
        else look (i + 1)
      in
      look 0
  in
  scan factors

let all_vars factors =
  List.sort_uniq compare
    (List.concat_map (fun f -> Array.to_list (Factor.vars f)) factors)

let mentions f v = Array.exists (fun u -> u = v) (Factor.vars f)

(* Cost of eliminating v: size of the factor produced by multiplying all
   factors that mention v (product of the cards of their scope union). *)
let elimination_cost factors v =
  let scope = Hashtbl.create 8 in
  List.iter
    (fun f ->
      if mentions f v then begin
        let vars = Factor.vars f and cards = Factor.cards f in
        Array.iteri (fun i u -> Hashtbl.replace scope u cards.(i)) vars
      end)
    factors;
  Hashtbl.fold (fun _ c acc -> acc *. float_of_int c) scope 1.0

let eliminate_var factors v =
  let touching, rest = List.partition (fun f -> mentions f v) factors in
  match touching with
  | [] -> factors
  | f :: fs ->
    let prod = List.fold_left Factor.product f fs in
    Factor.sum_out prod v :: rest

let eliminate_all factors =
  let rec loop factors =
    match all_vars factors with
    | [] ->
      List.fold_left (fun acc f -> acc *. Factor.total f) 1.0 factors
    | vars ->
      let v =
        List.fold_left
          (fun best v ->
            match best with
            | None -> Some (v, elimination_cost factors v)
            | Some (_, c0) ->
              let c = elimination_cost factors v in
              if c < c0 then Some (v, c) else best)
          None vars
        |> Option.get |> fst
      in
      loop (eliminate_var factors v)
  in
  loop factors

(* Merge multiple predicates on one variable into a single allowed-value
   set (their conjunction).  Restricting a factor twice on the same
   variable would silently ignore the second predicate, so this
   normalization is required for correctness, not just tidiness. *)
let normalize_evidence factors ev =
  let allowed : (int, bool array) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (v, pred) ->
      let card =
        try var_card factors v
        with Not_found -> invalid_arg "Ve: evidence variable not in any factor"
      in
      let check x =
        if x < 0 || x >= card then invalid_arg "Ve: evidence value out of range"
      in
      (match pred with
      | Query.Eq x -> check x
      | Query.In_set xs -> List.iter check xs
      | Query.Range (lo, hi) ->
        check lo;
        check hi);
      let mask =
        match Hashtbl.find_opt allowed v with
        | Some m -> m
        | None ->
          let m = Array.make card true in
          Hashtbl.add allowed v m;
          order := v :: !order;
          m
      in
      for x = 0 to card - 1 do
        if not (Query.pred_holds pred x) then mask.(x) <- false
      done)
    ev;
  let merged =
    List.rev_map
      (fun v ->
        let mask = Hashtbl.find allowed v in
        let values = ref [] in
        Array.iteri (fun x ok -> if ok then values := x :: !values) mask;
        (v, match !values with [ x ] -> Query.Eq x | xs -> Query.In_set xs))
      !order
  in
  if List.exists (fun (_, p) -> p = Query.In_set []) merged then None else Some merged

let prob_of_evidence factors ev =
  match normalize_evidence factors ev with
  | None -> 0.0 (* contradictory evidence: empty event *)
  | Some merged ->
    let restricted = List.map (fun f -> apply_evidence f merged) factors in
    eliminate_all restricted

let posterior factors ev ~keep =
  let merged =
    match normalize_evidence factors ev with
    | Some m -> m
    | None -> invalid_arg "Ve.posterior: contradictory evidence"
  in
  let restricted = List.map (fun f -> apply_evidence f merged) factors in
  let keep_list = Array.to_list keep in
  let rec loop factors =
    let vars = List.filter (fun v -> not (List.mem v keep_list)) (all_vars factors) in
    match vars with
    | [] -> (
      match factors with
      | [] -> Factor.constant 1.0
      | f :: fs -> Factor.normalize (List.fold_left Factor.product f fs))
    | vars ->
      let v =
        List.fold_left
          (fun best v ->
            match best with
            | None -> Some (v, elimination_cost factors v)
            | Some (_, c0) ->
              let c = elimination_cost factors v in
              if c < c0 then Some (v, c) else best)
          None vars
        |> Option.get |> fst
      in
      loop (eliminate_var factors v)
  in
  loop restricted
