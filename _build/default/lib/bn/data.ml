open Selest_db
open Selest_prob

type t = {
  names : string array;
  cards : int array;
  ordinal : bool array;
  cols : int array array;
  weights : float array option;
  n : int;
}

let create ~names ~cards ?ordinal ?weights cols =
  let k = Array.length names in
  if Array.length cards <> k || Array.length cols <> k then
    invalid_arg "Data.create: names/cards/cols length mismatch";
  let ordinal = match ordinal with Some o -> o | None -> Array.make k false in
  if Array.length ordinal <> k then invalid_arg "Data.create: ordinal length mismatch";
  let n = if k = 0 then 0 else Array.length cols.(0) in
  Array.iter (fun c -> if Array.length c <> n then invalid_arg "Data.create: ragged columns") cols;
  (match weights with
  | Some w when Array.length w <> n -> invalid_arg "Data.create: weights length mismatch"
  | _ -> ());
  Array.iteri
    (fun i col ->
      Array.iter
        (fun v ->
          if v < 0 || v >= cards.(i) then
            invalid_arg (Printf.sprintf "Data.create: %s value %d out of range" names.(i) v))
        col)
    cols;
  { names; cards; ordinal; cols; weights; n }

let of_table tbl =
  let ts = Table.schema tbl in
  let names = Array.map (fun a -> a.Schema.aname) ts.Schema.attrs in
  let cards = Table.cards tbl in
  let ordinal = Array.map (fun a -> Value.is_ordinal a.Schema.domain) ts.Schema.attrs in
  let cols = Array.init (Array.length names) (fun i -> Table.col tbl i) in
  { names; cards; ordinal; cols; weights = None; n = Table.size tbl }

let n_vars t = Array.length t.names

let total_weight t =
  match t.weights with
  | None -> float_of_int t.n
  | Some w -> Selest_util.Arrayx.sum w

let weight t r = match t.weights with None -> 1.0 | Some w -> w.(r)

let contingency t vars =
  let cards = Array.map (fun v -> t.cards.(v)) vars in
  let cols = Array.map (fun v -> t.cols.(v)) vars in
  match t.weights with
  | None -> Contingency.count ~cards cols
  | Some weights -> Contingency.count_weighted ~cards ~weights cols

let restrict_rows t rows =
  let cols = Array.map (fun col -> Array.map (fun r -> col.(r)) rows) t.cols in
  let weights = Option.map (fun w -> Array.map (fun r -> w.(r)) rows) t.weights in
  { t with cols; weights; n = Array.length rows }
