(** Bayesian networks over the value attributes of one table (Sec. 2.2).

    A DAG plus one CPD per variable; the joint distribution is the chain-
    rule product of the CPDs.  A fitted network approximates the normalized
    joint frequency distribution P_R of Sec. 2, so any select query's
    probability — and hence its size, via Eq. (1) — can be read off it. *)

type t = private {
  names : string array;
  cards : int array;
  dag : Dag.t;
  cpds : Cpd.t array;
  mutable factor_memo : Selest_prob.Factor.t list option;
      (** internal: memoized {!factors} *)
}

val fit : Data.t -> dag:Dag.t -> kind:Cpd.kind -> t
(** Maximum-likelihood CPDs for the given structure. *)

val of_cpds : names:string array -> cards:int array -> dag:Dag.t -> Cpd.t array -> t
(** Assemble from explicit CPDs; validates that each CPD's parents match
    the DAG. *)

val n_vars : t -> int

val joint_prob : t -> int array -> float
(** Chain-rule probability of one full assignment. *)

val loglik : t -> Data.t -> float
(** Total data log-likelihood in bits (Eq. 3). *)

val size_bytes : t -> int
(** Model storage under the library-wide accounting: CPD parameters plus
    structure. *)

val factors : t -> Selest_prob.Factor.t list
(** One factor per CPD over variable ids [0..n-1], for inference. *)

val prob_of : t -> (int * Selest_db.Query.pred) list -> float
(** [prob_of bn evidence]: the probability that each listed variable
    satisfies its predicate, computed by variable elimination — the P(E_q)
    of Sec. 2.3, including range and set predicates. *)

val cached_prob : t -> ((int * Selest_db.Query.pred) list -> float)
(** A query function that amortizes over suites: for all-equality evidence
    it computes the joint posterior of each queried variable set once and
    answers later instantiations by table lookup.  Agrees with {!prob_of}
    exactly; other predicates fall through to it. *)

val sample : Selest_util.Rng.t -> t -> int array
(** Draw one joint assignment (used by generator-validation tests). *)

val marginal : t -> int -> float array
(** Single-variable marginal distribution. *)

val pp : Format.formatter -> t -> unit
