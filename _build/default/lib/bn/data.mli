(** Column-oriented training data for Bayesian-network learning.

    A thin view of discrete columns, decoupled from {!Selest_db.Table} so
    that the same learner fits single-table models, joined (cross-table)
    families for PRMs, and synthetic matrices in tests.  Rows may carry
    weights, which lets sufficient statistics over implicit join results be
    counted without materializing them. *)

type t = private {
  names : string array;
  cards : int array;
  ordinal : bool array;  (** whether threshold splits make sense per var *)
  cols : int array array;
  weights : float array option;  (** row weights; [None] means all 1 *)
  n : int;
}

val create :
  names:string array -> cards:int array -> ?ordinal:bool array ->
  ?weights:float array -> int array array -> t
(** Validates shapes and value ranges.  [ordinal] defaults to all-false. *)

val of_table : Selest_db.Table.t -> t
(** View a database table's value attributes (shares the column arrays). *)

val n_vars : t -> int
val total_weight : t -> float
val weight : t -> int -> float

val contingency : t -> int array -> Selest_prob.Contingency.t
(** Joint counts over the listed variables (strictly increasing ids),
    respecting row weights. *)

val restrict_rows : t -> int array -> t
(** Sub-dataset of the listed row indices (copies columns). *)
