open Selest_util
open Selest_prob

type t = {
  names : string array;
  cards : int array;
  dag : Dag.t;
  cpds : Cpd.t array;
  mutable factor_memo : Factor.t list option;
      (* Converting tree CPDs to dense factors is linear in the factor
         size, so the conversion is done once per network, not per query. *)
}

let fit data ~dag ~kind =
  if Dag.n_nodes dag <> Data.n_vars data then
    invalid_arg "Bn.fit: dag/data variable count mismatch";
  let cpds =
    Array.init (Data.n_vars data) (fun v ->
        Cpd.fit kind data ~child:v ~parents:(Dag.parents dag v) ())
  in
  { names = data.Data.names; cards = data.Data.cards; dag; cpds; factor_memo = None }

let of_cpds ~names ~cards ~dag cpds =
  let n = Array.length names in
  if Dag.n_nodes dag <> n || Array.length cpds <> n || Array.length cards <> n then
    invalid_arg "Bn.of_cpds: size mismatch";
  Array.iteri
    (fun v cpd ->
      if Cpd.parents cpd <> Dag.parents dag v then
        invalid_arg "Bn.of_cpds: CPD parents disagree with DAG";
      if Cpd.child_card cpd <> cards.(v) then
        invalid_arg "Bn.of_cpds: CPD arity disagrees with cards")
    cpds;
  { names; cards; dag; cpds; factor_memo = None }

let n_vars t = Array.length t.names

let joint_prob t assignment =
  if Array.length assignment <> n_vars t then invalid_arg "Bn.joint_prob: arity";
  let acc = ref 1.0 in
  Array.iteri
    (fun v cpd ->
      let parents = Cpd.parents cpd in
      let pvals = Array.map (fun p -> assignment.(p)) parents in
      acc := !acc *. (Cpd.dist cpd pvals).(assignment.(v)))
    t.cpds;
  !acc

let loglik t data =
  Arrayx.fold_lefti (fun acc v cpd -> acc +. Cpd.loglik cpd data ~child:v) 0.0 t.cpds

let size_bytes t =
  Array.fold_left (fun acc cpd -> acc + Cpd.size_bytes cpd) 0 t.cpds
  + Bytesize.values (n_vars t)

let factors t =
  match t.factor_memo with
  | Some fs -> fs
  | None ->
    let fs =
      Array.to_list
        (Array.mapi (fun v cpd -> Cpd.to_factor ~var_of:(fun x -> x) ~child:v cpd) t.cpds)
    in
    t.factor_memo <- Some fs;
    fs

let prob_of t evidence = Ve.prob_of_evidence (factors t) evidence

let cached_prob t =
  (* Suite amortization: for all-equality evidence over a variable set, the
     joint posterior over that set answers every instantiation by lookup. *)
  let posterior_cache : (int list, Factor.t) Hashtbl.t = Hashtbl.create 8 in
  fun evidence ->
    let all_eq =
      List.for_all
        (fun (_, p) -> match p with Selest_db.Query.Eq _ -> true | _ -> false)
        evidence
    in
    let vars = List.sort_uniq compare (List.map fst evidence) in
    if all_eq && List.length vars = List.length evidence then begin
      let posterior =
        match Hashtbl.find_opt posterior_cache vars with
        | Some f -> f
        | None ->
          let f = Ve.posterior (factors t) [] ~keep:(Array.of_list vars) in
          Hashtbl.add posterior_cache vars f;
          f
      in
      let vars_arr = Array.of_list vars in
      let values = Array.make (Array.length vars_arr) 0 in
      List.iter
        (fun (v, p) ->
          let pos = ref 0 in
          while vars_arr.(!pos) <> v do incr pos done;
          match p with Selest_db.Query.Eq x -> values.(!pos) <- x | _ -> assert false)
        evidence;
      Factor.get posterior values
    end
    else prob_of t evidence

let sample rng t =
  let order = Dag.topological_order t.dag in
  let out = Array.make (n_vars t) (-1) in
  Array.iter
    (fun v ->
      let cpd = t.cpds.(v) in
      let pvals = Array.map (fun p -> out.(p)) (Cpd.parents cpd) in
      out.(v) <- Rng.categorical rng (Array.copy (Cpd.dist cpd pvals)))
    order;
  out

let marginal t v =
  let f = Ve.posterior (factors t) [] ~keep:[| v |] in
  Factor.data f

let pp ppf t =
  Format.fprintf ppf "BN over %d variables, %d edges, %d bytes@." (n_vars t)
    (Dag.n_edges t.dag) (size_bytes t);
  Array.iteri
    (fun v cpd ->
      let parents = Cpd.parents cpd in
      if Array.length parents > 0 then
        Format.fprintf ppf "  %s <- %s (%d params, %s)@." t.names.(v)
          (String.concat ", "
             (Array.to_list (Array.map (fun p -> t.names.(p)) parents)))
          (Cpd.n_params cpd)
          (match Cpd.kind_of cpd with Cpd.Tables -> "table" | Cpd.Trees -> "tree")
      else Format.fprintf ppf "  %s (marginal, %d params)@." t.names.(v) (Cpd.n_params cpd))
    t.cpds
