lib/bn/dag.mli: Format
