lib/bn/learn.ml: Array Bn Bytesize Cpd Dag Data Float List Logs Printf Rng Score Selest_util
