lib/bn/score.ml: Array Arrayx Bytesize Cpd Dag Data Float Hashtbl Info List Selest_prob Selest_util Table_cpd Tree_cpd
