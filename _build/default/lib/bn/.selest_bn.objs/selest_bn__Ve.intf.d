lib/bn/ve.mli: Selest_db Selest_prob
