lib/bn/bn.ml: Array Arrayx Bytesize Cpd Dag Data Factor Format Hashtbl List Rng Selest_db Selest_prob Selest_util String Ve
