lib/bn/dag.ml: Array Format List Queue String
