lib/bn/ve.ml: Array Factor Hashtbl List Option Query Selest_db Selest_prob
