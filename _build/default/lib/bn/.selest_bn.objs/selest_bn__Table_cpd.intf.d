lib/bn/table_cpd.mli: Data Selest_prob
