lib/bn/data.mli: Selest_db Selest_prob
