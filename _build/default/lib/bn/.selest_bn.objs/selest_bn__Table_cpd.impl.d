lib/bn/table_cpd.ml: Array Arrayx Data Factor Float Selest_prob Selest_util
