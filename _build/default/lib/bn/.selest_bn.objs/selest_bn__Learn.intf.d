lib/bn/learn.mli: Bn Cpd Data
