lib/bn/tree_cpd.ml: Array Arrayx Data Dist Factor Float Format List Selest_prob Selest_util
