lib/bn/cpd.mli: Data Selest_prob Table_cpd Tree_cpd
