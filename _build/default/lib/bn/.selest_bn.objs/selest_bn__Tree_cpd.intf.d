lib/bn/tree_cpd.mli: Data Format Selest_prob
