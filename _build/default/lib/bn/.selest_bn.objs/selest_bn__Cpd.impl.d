lib/bn/cpd.ml: Array Bytesize Selest_util Table_cpd Tree_cpd
