lib/bn/bn.mli: Cpd Dag Data Format Selest_db Selest_prob Selest_util
