lib/bn/score.mli: Cpd Dag Data
