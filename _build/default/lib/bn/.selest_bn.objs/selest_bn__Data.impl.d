lib/bn/data.ml: Array Contingency Option Printf Schema Selest_db Selest_prob Selest_util Table Value
