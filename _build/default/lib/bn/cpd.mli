(** Conditional probability distributions: table or tree representation
    behind one interface. *)

type t = Table of Table_cpd.t | Tree of Tree_cpd.t

type kind = Tables | Trees

val fit :
  kind -> Data.t -> child:int -> parents:int array -> ?param_budget:int -> unit -> t
(** Maximum-likelihood fit with the requested representation.  For tables
    the parameter budget is checked, not optimized: a table that would
    exceed it raises [Invalid_argument] (the structure search treats that
    as an infeasible move). *)

val parents : t -> int array
val child_card : t -> int
val dist : t -> int array -> float array
(** Child distribution given parent values (in {!parents} order). *)

val n_params : t -> int
val size_bytes : t -> int
(** {!n_params} plus per-parent structure overhead, in {!Selest_util.Bytesize}
    units — the quantity the learner's storage budget constrains. *)

val loglik : t -> Data.t -> child:int -> float
val to_factor : var_of:(int -> int) -> child:int -> t -> Selest_prob.Factor.t
val kind_of : t -> kind

val refit : t -> Data.t -> child:int -> t
(** Refresh parameters on new data without changing structure: a table CPD
    is refitted over the same parents; a tree CPD keeps its splits and
    refreshes leaf distributions. *)
