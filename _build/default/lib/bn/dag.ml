(* Persistent representation: parent lists as sorted arrays.  Graphs here
   are tiny (tens of nodes), so immutability costs nothing and makes the
   hill-climbing search trivially able to evaluate candidate moves. *)

type t = { parents : int array array }

let empty n =
  if n < 0 then invalid_arg "Dag.empty";
  { parents = Array.make n [||] }

let n_nodes t = Array.length t.parents
let parents t v = t.parents.(v)

let has_edge t ~src ~dst = Array.exists (fun p -> p = src) t.parents.(dst)

let children t v =
  let out = ref [] in
  for c = n_nodes t - 1 downto 0 do
    if has_edge t ~src:v ~dst:c then out := c :: !out
  done;
  Array.of_list !out

let n_edges t = Array.fold_left (fun acc ps -> acc + Array.length ps) 0 t.parents

let reaches t ~src ~dst =
  (* DFS along child edges from src. *)
  let n = n_nodes t in
  let visited = Array.make n false in
  let rec go v =
    if v = dst then true
    else if visited.(v) then false
    else begin
      visited.(v) <- true;
      let found = ref false in
      for c = 0 to n - 1 do
        if (not !found) && has_edge t ~src:v ~dst:c then found := go c
      done;
      !found
    end
  in
  go src

let creates_cycle t ~src ~dst = src = dst || reaches t ~src:dst ~dst:src

let add_edge t ~src ~dst =
  if src = dst then invalid_arg "Dag.add_edge: self-loop";
  if has_edge t ~src ~dst then invalid_arg "Dag.add_edge: edge exists";
  if creates_cycle t ~src ~dst then invalid_arg "Dag.add_edge: would create a cycle";
  let ps = t.parents.(dst) in
  let ps' = Array.append ps [| src |] in
  Array.sort compare ps';
  let parents = Array.copy t.parents in
  parents.(dst) <- ps';
  { parents }

let remove_edge t ~src ~dst =
  if not (has_edge t ~src ~dst) then invalid_arg "Dag.remove_edge: no such edge";
  let ps' = Array.of_list (List.filter (fun p -> p <> src) (Array.to_list t.parents.(dst))) in
  let parents = Array.copy t.parents in
  parents.(dst) <- ps';
  { parents }

let topological_order t =
  let n = n_nodes t in
  let in_deg = Array.map Array.length t.parents in
  let queue = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v queue) in_deg;
  let out = Array.make n 0 in
  let k = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    out.(!k) <- v;
    incr k;
    Array.iter
      (fun c ->
        in_deg.(c) <- in_deg.(c) - 1;
        if in_deg.(c) = 0 then Queue.add c queue)
      (children t v)
  done;
  if !k <> n then invalid_arg "Dag.topological_order: graph has a cycle";
  out

let edges t =
  let out = ref [] in
  Array.iteri
    (fun dst ps -> Array.iter (fun src -> out := (src, dst) :: !out) ps)
    t.parents;
  List.rev !out

let equal a b = a.parents = b.parents

let pp ppf t =
  Array.iteri
    (fun v ps ->
      if Array.length ps > 0 then
        Format.fprintf ppf "%d <- {%s}@." v
          (String.concat "," (Array.to_list (Array.map string_of_int ps))))
    t.parents
