type align = Left | Right

let looks_numeric s =
  s <> ""
  &&
  match float_of_string_opt s with
  | Some _ -> true
  | None -> false

let render ?aligns ~header rows =
  let ncols =
    Array.fold_left (fun acc r -> max acc (Array.length r)) (Array.length header) rows
  in
  let cell row i = if i < Array.length row then row.(i) else "" in
  let width i =
    Array.fold_left
      (fun acc r -> max acc (String.length (cell r i)))
      (String.length (cell header i))
      rows
  in
  let widths = Array.init ncols width in
  let align_of i =
    match aligns with
    | Some a when i < Array.length a -> a.(i)
    | _ ->
      let numeric =
        Array.for_all (fun r -> cell r i = "" || looks_numeric (cell r i)) rows
        && Array.length rows > 0
      in
      if numeric then Right else Left
  in
  let pad i s =
    let w = widths.(i) in
    let n = w - String.length s in
    if n <= 0 then s
    else
      match align_of i with
      | Left -> s ^ String.make n ' '
      | Right -> String.make n ' ' ^ s
  in
  let line row = String.concat " | " (List.init ncols (fun i -> pad i (cell row i))) in
  let rule =
    String.concat "-+-" (List.init ncols (fun i -> String.make widths.(i) '-'))
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  Array.iter
    (fun r ->
      Buffer.add_string buf (line r);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print ?aligns ~header rows =
  print_string (render ?aligns ~header rows);
  flush stdout

let float_cell ?(decimals = 2) x =
  if Float.is_nan x then "nan"
  else if Float.is_integer x && abs_float x < 1e15 && decimals = 0 then
    Printf.sprintf "%.0f" x
  else if x = Float.infinity then "inf"
  else if x = Float.neg_infinity then "-inf"
  else Printf.sprintf "%.*f" decimals x
