(** Deterministic, splittable pseudo-random number generator.

    Every stochastic component of the library (data generators, samplers,
    learners with random restarts) threads one of these states so that a
    single root seed reproduces an entire experiment.  The implementation is
    splitmix64, which has good statistical quality for this purpose and a
    trivially splittable state. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds give equal
    streams. *)

val split : t -> t
(** [split t] derives an independent generator and advances [t].  Used to
    hand child components their own streams without coupling their
    consumption patterns. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future stream). *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  Raises [Invalid_argument]
    if [bound <= 0]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val categorical : t -> float array -> int
(** [categorical t weights] draws an index proportionally to the
    (non-negative, not necessarily normalized) [weights].  Raises
    [Invalid_argument] on an empty or all-zero array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] returns [k] distinct indices drawn
    uniformly from [\[0, n)], in increasing order.  Raises
    [Invalid_argument] if [k > n] or [k < 0]. *)
