lib/util/bytesize.ml: Format
