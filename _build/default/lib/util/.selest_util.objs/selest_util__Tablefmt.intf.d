lib/util/tablefmt.mli:
