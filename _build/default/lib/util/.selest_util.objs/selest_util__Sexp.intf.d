lib/util/sexp.mli:
