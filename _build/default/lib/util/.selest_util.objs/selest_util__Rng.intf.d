lib/util/rng.mli:
