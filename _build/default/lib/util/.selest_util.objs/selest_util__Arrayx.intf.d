lib/util/arrayx.mli:
