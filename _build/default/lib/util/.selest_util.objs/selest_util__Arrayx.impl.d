lib/util/arrayx.ml: Array Float
