lib/util/sexp.ml: Buffer Fun In_channel List Printf String
