let per_param = 4
let per_value = 4
let params k = k * per_param
let values k = k * per_value

let pp ppf bytes =
  if bytes < 1024 then Format.fprintf ppf "%dB" bytes
  else if bytes < 1024 * 1024 then Format.fprintf ppf "%.1fKB" (float_of_int bytes /. 1024.0)
  else Format.fprintf ppf "%.2fMB" (float_of_int bytes /. (1024.0 *. 1024.0))
