type t = Atom of string | List of t list

let needs_quoting s =
  s = ""
  || String.exists
       (fun c -> c <= ' ' || c = '(' || c = ')' || c = '"' || c = ';' || c = '\x7f')
       s

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      if c = '"' || c = '\\' then Buffer.add_char buf '\\';
      Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let atom_to_string s = if needs_quoting s then escape s else s

let rec to_string = function
  | Atom s -> atom_to_string s
  | List items -> "(" ^ String.concat " " (List.map to_string items) ^ ")"

let to_string_hum t =
  let buf = Buffer.create 1024 in
  let rec go indent t =
    match t with
    | Atom s -> Buffer.add_string buf (atom_to_string s)
    | List items ->
      let flat = to_string t in
      if String.length flat + indent <= 100 then Buffer.add_string buf flat
      else begin
        Buffer.add_char buf '(';
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char buf '\n';
              Buffer.add_string buf (String.make (indent + 1) ' ')
            end;
            go (indent + 1) item)
          items;
        Buffer.add_char buf ')'
      end
  in
  go 0 t;
  Buffer.contents buf

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let rec skip_ws () =
    if !pos < n then
      match s.[!pos] with
      | ' ' | '\n' | '\t' | '\r' ->
        incr pos;
        skip_ws ()
      | ';' ->
        (* comment to end of line *)
        while !pos < n && s.[!pos] <> '\n' do
          incr pos
        done;
        skip_ws ()
      | _ -> ()
  in
  let parse_quoted () =
    incr pos;
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          if !pos + 1 >= n then fail "dangling escape";
          Buffer.add_char buf s.[!pos + 1];
          pos := !pos + 2;
          go ()
        | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
    in
    go ();
    Atom (Buffer.contents buf)
  in
  let parse_bare () =
    let start = !pos in
    while
      !pos < n
      &&
      match s.[!pos] with
      | ' ' | '\n' | '\t' | '\r' | '(' | ')' | '"' -> false
      | _ -> true
    do
      incr pos
    done;
    Atom (String.sub s start (!pos - start))
  in
  let rec parse_one () =
    skip_ws ();
    if !pos >= n then fail "unexpected end of input"
    else
      match s.[!pos] with
      | '(' ->
        incr pos;
        let items = ref [] in
        let rec loop () =
          skip_ws ();
          if !pos >= n then fail "unterminated list"
          else if s.[!pos] = ')' then incr pos
          else begin
            items := parse_one () :: !items;
            loop ()
          end
        in
        loop ();
        List (List.rev !items)
      | ')' -> fail "unexpected )"
      | '"' -> parse_quoted ()
      | _ -> parse_bare ()
  in
  match parse_one () with
  | t ->
    skip_ws ();
    if !pos <> n then failwith (Printf.sprintf "Sexp: trailing input at %d" !pos);
    t
  | exception Parse_error (p, msg) -> failwith (Printf.sprintf "Sexp: %s at %d" msg p)

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string_hum t);
      output_char oc '\n')

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (In_channel.input_all ic))

let atom s = Atom s
let int i = Atom (string_of_int i)

let float x =
  (* %h round-trips doubles exactly and stays compact *)
  Atom (Printf.sprintf "%h" x)

let list items = List items

let as_atom = function
  | Atom s -> s
  | List _ -> failwith "Sexp.as_atom: got a list"

let as_int t =
  match int_of_string_opt (as_atom t) with
  | Some i -> i
  | None -> failwith ("Sexp.as_int: " ^ as_atom t)

let as_float t =
  match float_of_string_opt (as_atom t) with
  | Some x -> x
  | None -> failwith ("Sexp.as_float: " ^ as_atom t)

let as_list = function
  | List items -> items
  | Atom a -> failwith ("Sexp.as_list: got atom " ^ a)

let field t name =
  match t with
  | List items -> (
    match
      List.find_opt
        (function List (Atom tag :: _) -> tag = name | _ -> false)
        items
    with
    | Some f -> f
    | None -> failwith ("Sexp.field: missing " ^ name))
  | Atom _ -> failwith "Sexp.field: not a list"

let field_values t name =
  match field t name with
  | List (_ :: rest) -> rest
  | _ -> failwith ("Sexp.field_values: malformed " ^ name)
