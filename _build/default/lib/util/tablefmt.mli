(** Plain-text table rendering for experiment reports.

    Every benchmark figure is printed as an aligned ASCII table so the
    output of [bench/main.exe] can be diffed against {b EXPERIMENTS.md}. *)

type align = Left | Right

val render : ?aligns:align array -> header:string array -> string array array -> string
(** [render ~header rows] lays out [rows] under [header] with column
    separators and a rule under the header.  Ragged rows are padded with
    empty cells.  Default alignment is [Right] for cells that parse as
    numbers and [Left] otherwise, overridable per column via [aligns]. *)

val print : ?aligns:align array -> header:string array -> string array array -> unit
(** [render] followed by [print_string] and a flush. *)

val float_cell : ?decimals:int -> float -> string
(** Fixed-point formatting used consistently across reports
    (default 2 decimals); infinities and NaN are rendered symbolically. *)
