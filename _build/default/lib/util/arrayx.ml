let sum a =
  (* Kahan summation: count vectors can mix very large and very small
     magnitudes when weighted by |R|*|S| pair counts. *)
  let s = ref 0.0 and c = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let y = a.(i) -. !c in
    let t = !s +. y in
    c := t -. !s -. y;
    s := t
  done;
  !s

let sum_int a = Array.fold_left ( + ) 0 a

let normalize a =
  let t = sum a in
  if t > 0.0 then Array.map (fun x -> x /. t) a
  else Array.make (Array.length a) (1.0 /. float_of_int (Array.length a))

let normalize_in_place a =
  let t = sum a in
  if t > 0.0 then
    for i = 0 to Array.length a - 1 do
      a.(i) <- a.(i) /. t
    done
  else begin
    let u = 1.0 /. float_of_int (Array.length a) in
    Array.fill a 0 (Array.length a) u
  end

let max_index a =
  if Array.length a = 0 then invalid_arg "Arrayx.max_index: empty";
  let best = ref 0 in
  for i = 1 to Array.length a - 1 do
    if a.(i) > a.(!best) then best := i
  done;
  !best

let init_matrix rows cols f = Array.init rows (fun i -> Array.init cols (f i))

let fold_lefti f acc a =
  let acc = ref acc in
  Array.iteri (fun i x -> acc := f !acc i x) a;
  !acc

let mean a =
  let n = Array.length a in
  if n = 0 then 0.0 else sum a /. float_of_int n

let variance a =
  let n = Array.length a in
  if n < 2 then 0.0
  else begin
    let m = mean a in
    let acc = ref 0.0 in
    Array.iter (fun x -> acc := !acc +. ((x -. m) *. (x -. m))) a;
    !acc /. float_of_int n
  end

let median a =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let b = Array.copy a in
    Array.sort compare b;
    if n mod 2 = 1 then b.(n / 2) else (b.((n / 2) - 1) +. b.(n / 2)) /. 2.0
  end

let percentile a p =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let b = Array.copy a in
    Array.sort compare b;
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    let rank = max 1 (min n rank) in
    b.(rank - 1)
  end

let log2 x = log x /. log 2.0

let xlogx x = if x <= 0.0 then 0.0 else x *. log2 x

let float_equal ?(eps = 1e-9) a b =
  let d = abs_float (a -. b) in
  d <= eps || d <= eps *. Float.max (abs_float a) (abs_float b)
