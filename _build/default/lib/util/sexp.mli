(** Minimal S-expressions: the on-disk syntax for saved models.

    Atoms are bare tokens or double-quoted strings (with ["\\"] escapes for
    quote and backslash); lists are parenthesized.  The printer and parser
    round-trip exactly. *)

type t = Atom of string | List of t list

val to_string : t -> string
(** Compact one-line rendering. *)

val to_string_hum : t -> string
(** Indented rendering for readability of saved files. *)

val of_string : string -> t
(** Parse one expression (surrounding whitespace allowed).  Raises
    [Failure] with a position message on malformed input, including
    trailing garbage. *)

val save : string -> t -> unit
val load : string -> t

(** Construction and destruction helpers used by serializers. *)

val atom : string -> t
val int : int -> t
val float : float -> t
val list : t list -> t

val as_atom : t -> string
(** Raises [Failure] on a list. *)

val as_int : t -> int
val as_float : t -> float
val as_list : t -> t list

val field : t -> string -> t
(** [field (List [...; List [Atom name; v; ...]; ...]) name]: the tagged
    sub-list whose head atom is [name] (the whole sub-list, so multi-value
    fields work).  Raises [Failure] when absent. *)

val field_values : t -> string -> t list
(** The tagged sub-list's values (everything after the tag). *)
