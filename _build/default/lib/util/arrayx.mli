(** Array and numeric helpers shared across the library. *)

val sum : float array -> float
(** Sum using Kahan compensation, stable for long count vectors. *)

val sum_int : int array -> int

val normalize : float array -> float array
(** Fresh array scaled to sum to 1.  If the input sums to zero the result is
    uniform. *)

val normalize_in_place : float array -> unit

val max_index : float array -> int
(** Index of the maximum element (first on ties).  Raises on empty input. *)

val init_matrix : int -> int -> (int -> int -> 'a) -> 'a array array

val fold_lefti : ('acc -> int -> 'a -> 'acc) -> 'acc -> 'a array -> 'acc

val mean : float array -> float
(** Arithmetic mean; 0 on empty input. *)

val variance : float array -> float
(** Population variance; 0 on inputs of length < 2. *)

val median : float array -> float
(** Median (average of middle two for even length); 0 on empty input. *)

val percentile : float array -> float -> float
(** [percentile a p] for [p] in [\[0,100\]], nearest-rank on a sorted copy. *)

val log2 : float -> float

val xlogx : float -> float
(** [x *. log2 x] with the convention [xlogx 0. = 0.]. *)

val float_equal : ?eps:float -> float -> float -> bool
(** Approximate comparison with absolute-or-relative tolerance
    (default [eps = 1e-9]). *)
