(** Uniform storage accounting for estimator models.

    The paper sweeps model accuracy against an allocated storage budget in
    bytes.  To keep the comparison apples-to-apples every estimator in this
    library charges the same cost per stored quantity, defined here. *)

val per_param : int
(** Bytes charged per stored real-valued parameter (CPD entry, histogram
    bucket count, marginal frequency): 4, matching the single-precision
    counts used in the paper's experiments. *)

val per_value : int
(** Bytes charged per stored categorical value (e.g. one attribute of one
    sampled tuple, or a bucket boundary): 4. *)

val params : int -> int
(** [params k] = [k * per_param]. *)

val values : int -> int
(** [values k] = [k * per_value]. *)

val pp : Format.formatter -> int -> unit
(** Human-readable size ("1.2KB"). *)
