type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = int64 t }

let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the top 62 bits to avoid modulo bias. *)
  let mask = 0x3FFFFFFFFFFFFFFFL in
  let rec draw () =
    let r = Int64.to_int (Int64.logand (int64 t) mask) in
    let limit = max_int - (max_int mod bound) in
    if r >= limit then draw () else r mod bound
  in
  draw ()

let float t =
  (* 53 random bits mapped to [0, 1). *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. 0x1p-53

let bool t = Int64.logand (int64 t) 1L = 1L

let categorical t weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Rng.categorical: empty weights";
  let total = Array.fold_left ( +. ) 0.0 weights in
  if not (total > 0.0) then invalid_arg "Rng.categorical: weights sum to zero";
  let u = float t *. total in
  let rec scan i acc =
    if i >= n - 1 then n - 1
    else
      let acc = acc +. weights.(i) in
      if u < acc then i else scan (i + 1) acc
  in
  scan 0 0.0

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  (* Floyd's algorithm: O(k) expected draws, result sorted at the end. *)
  let chosen = Hashtbl.create (2 * k) in
  for j = n - k to n - 1 do
    let r = int t (j + 1) in
    if Hashtbl.mem chosen r then Hashtbl.replace chosen j ()
    else Hashtbl.replace chosen r ()
  done;
  let out = Array.make k 0 in
  let i = ref 0 in
  for v = 0 to n - 1 do
    if Hashtbl.mem chosen v then begin
      out.(!i) <- v;
      incr i
    end
  done;
  out
