(** A database: a schema plus one table instance per schema table. *)

type t

val create : Schema.t -> Table.t list -> t
(** Tables must match the schema's tables one-to-one (by name, any order).
    Referential integrity is checked ({!Integrity.check}); raises
    [Invalid_argument] on violations. *)

val schema : t -> Schema.t
val table : t -> string -> Table.t
(** Raises [Not_found]. *)

val table_at : t -> int -> Table.t
val tables : t -> Table.t array
val n_rows : t -> string -> int
val total_rows : t -> int
val pp_summary : Format.formatter -> t -> unit
