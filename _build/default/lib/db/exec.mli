(** Exact evaluation of select–keyjoin queries.

    The experiment harness needs the true result size of every query (the
    paper evaluates thousands per suite), so exactness and batch efficiency
    matter.  Join graphs must be acyclic (a forest over the tuple
    variables), which is the shape foreign-key join queries take in the
    paper; sizes are computed by a single weight-propagation pass over the
    forest — no join is ever materialized. *)

val validate : Database.t -> Query.t -> unit
(** Check the query against the database schema: tables, attributes and
    foreign keys exist, join targets match, predicate values are in domain,
    the join graph is a forest.  Raises [Invalid_argument] otherwise. *)

val select_mask : Database.t -> Query.t -> string -> bool array
(** [select_mask db q tv]: per-row truth of the conjunction of [q]'s
    selects on tuple variable [tv]. *)

val query_size : Database.t -> Query.t -> float
(** Exact result size.  Tuple variables not linked by any join contribute a
    Cartesian factor, as in relational semantics. *)

val single_base : Database.t -> Query.t -> string option
(** A tuple variable from which every other tuple variable is reachable by
    following foreign keys upward, if one exists.  Such a query's join
    result has exactly one row per selected base row (referential
    integrity), enabling column resolution. *)

val resolve_rows : Database.t -> Query.t -> base:string -> tv:string -> int array
(** [resolve_rows db q ~base ~tv]: for each row of [base]'s table, the row
    of [tv]'s table it joins with (following [q]'s join path).  Identity
    when [tv = base].  Raises if [tv] is not reachable from [base]. *)

val resolve_column : Database.t -> Query.t -> base:string -> tv:string -> attr:string -> int array
(** The [tv.attr] value each base row joins with — a materialized joined
    column, the workhorse for cross-table sufficient statistics. *)

val joint_counts :
  Database.t -> Query.t -> keys:(string * string) list -> Selest_prob.Contingency.t
(** [joint_counts db q ~keys]: the contingency table of the query's join
    result over the listed [(tuple variable, attribute)] pairs, with [q]'s
    selects applied as a filter.  Requires {!single_base} to succeed.  The
    ground truth for {e every} equality query over [keys] in one pass. *)

val count_by : Database.t -> Query.t -> keys:(string * string) list -> (int array * float) list
(** Non-zero cells of {!joint_counts} as an association list (keys in
    [keys] order). *)

val nonkey_join_size :
  Database.t -> Query.t * string * string -> Query.t * string * string -> float
(** [nonkey_join_size db (q1, tv1, a1) (q2, tv2, a2)]: exact size of the
    query joining [q1] and [q2] on the non-key equality
    [tv1.a1 = tv2.a2] (Sec. 6's extension): the two sub-queries must bind
    disjoint tuple variables, and the attributes must share a domain
    cardinality.  Computed as Σ_v |q1 ∧ a1=v| · |q2 ∧ a2=v|. *)
