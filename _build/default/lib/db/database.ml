type t = { schema : Schema.t; tables : Table.t array }

(* Referential-integrity check (Sec. 1's standing assumption): every
   foreign-key value must be a valid row index of the target table. *)
let check_integrity schema tables =
  let size_of name =
    let i = Schema.table_index schema name in
    Table.size tables.(i)
  in
  Array.iter
    (fun tbl ->
      let ts = Table.schema tbl in
      Array.iteri
        (fun fi f ->
          let target_size = size_of f.Schema.target in
          Array.iter
            (fun v ->
              if v < 0 || v >= target_size then
                invalid_arg
                  (Printf.sprintf
                     "Database.create: %s.%s = %d violates referential integrity (|%s| = %d)"
                     ts.Schema.tname f.Schema.fkname v f.Schema.target target_size))
            (Table.fk_col tbl fi))
        ts.Schema.fks)
    tables

let create schema table_list =
  let schema_tables = Schema.tables schema in
  let n = Array.length schema_tables in
  if List.length table_list <> n then
    invalid_arg "Database.create: table count does not match schema";
  let tables =
    Array.map
      (fun ts ->
        match
          List.find_opt (fun tbl -> Table.name tbl = ts.Schema.tname) table_list
        with
        | Some tbl -> tbl
        | None -> invalid_arg ("Database.create: missing table " ^ ts.Schema.tname))
      schema_tables
  in
  check_integrity schema tables;
  { schema; tables }

let schema t = t.schema
let table t name = t.tables.(Schema.table_index t.schema name)
let table_at t i = t.tables.(i)
let tables t = Array.copy t.tables
let n_rows t name = Table.size (table t name)
let total_rows t = Array.fold_left (fun acc tbl -> acc + Table.size tbl) 0 t.tables

let pp_summary ppf t =
  Array.iter
    (fun tbl ->
      Format.fprintf ppf "%s: %d rows, %d attrs, %d fks@."
        (Table.name tbl) (Table.size tbl)
        (Array.length (Table.schema tbl).Schema.attrs)
        (Array.length (Table.schema tbl).Schema.fks))
    t.tables
