type attr = { aname : string; domain : Value.domain }
type fk = { fkname : string; target : string }
type table_schema = { tname : string; attrs : attr array; fks : fk array }
type t = { tables : table_schema array }

let table_schema ~name ~attrs ?(fks = []) () =
  let attrs = Array.of_list (List.map (fun (aname, domain) -> { aname; domain }) attrs) in
  let fks = Array.of_list (List.map (fun (fkname, target) -> { fkname; target }) fks) in
  let names = Hashtbl.create 16 in
  let check n =
    if Hashtbl.mem names n then
      invalid_arg (Printf.sprintf "Schema: duplicate column %s in table %s" n name);
    Hashtbl.add names n ()
  in
  Array.iter (fun a -> check a.aname) attrs;
  Array.iter (fun f -> check f.fkname) fks;
  { tname = name; attrs; fks }

let create table_list =
  let tables = Array.of_list table_list in
  let names = Hashtbl.create 16 in
  Array.iter
    (fun ts ->
      if Hashtbl.mem names ts.tname then
        invalid_arg ("Schema.create: duplicate table " ^ ts.tname);
      Hashtbl.add names ts.tname ())
    tables;
  Array.iter
    (fun ts ->
      Array.iter
        (fun f ->
          if not (Hashtbl.mem names f.target) then
            invalid_arg
              (Printf.sprintf "Schema.create: fk %s.%s references unknown table %s"
                 ts.tname f.fkname f.target))
        ts.fks)
    tables;
  { tables }

let tables t = Array.copy t.tables

let table_index t name =
  let rec loop i =
    if i >= Array.length t.tables then raise Not_found
    else if t.tables.(i).tname = name then i
    else loop (i + 1)
  in
  loop 0

let find_table t name = t.tables.(table_index t name)

let attr_index ts name =
  let rec loop i =
    if i >= Array.length ts.attrs then raise Not_found
    else if ts.attrs.(i).aname = name then i
    else loop (i + 1)
  in
  loop 0

let fk_index ts name =
  let rec loop i =
    if i >= Array.length ts.fks then raise Not_found
    else if ts.fks.(i).fkname = name then i
    else loop (i + 1)
  in
  loop 0

let attr ts name = ts.attrs.(attr_index ts name)
let fk ts name = ts.fks.(fk_index ts name)
let n_tables t = Array.length t.tables

let pp ppf t =
  Array.iter
    (fun ts ->
      Format.fprintf ppf "table %s(" ts.tname;
      Array.iteri
        (fun i a ->
          if i > 0 then Format.fprintf ppf ", ";
          Format.fprintf ppf "%s:%d" a.aname (Value.card a.domain))
        ts.attrs;
      Array.iter (fun f -> Format.fprintf ppf ", %s->%s" f.fkname f.target) ts.fks;
      Format.fprintf ppf ")@.")
    t.tables
