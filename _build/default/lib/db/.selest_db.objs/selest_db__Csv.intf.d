lib/db/csv.mli: Database Schema Table
