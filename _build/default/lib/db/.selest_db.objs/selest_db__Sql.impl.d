lib/db/sql.ml: Buffer Database Exec List Option Printf Query Schema String Table Value
