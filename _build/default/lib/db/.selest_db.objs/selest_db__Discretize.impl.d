lib/db/discretize.ml: Array List Value
