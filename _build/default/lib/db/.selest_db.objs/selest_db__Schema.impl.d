lib/db/schema.ml: Array Format Hashtbl List Printf Value
