lib/db/database.mli: Format Schema Table
