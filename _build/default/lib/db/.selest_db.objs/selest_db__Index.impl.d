lib/db/index.ml: Array
