lib/db/integrity.mli: Database Format
