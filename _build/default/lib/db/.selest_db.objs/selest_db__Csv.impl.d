lib/db/csv.ml: Array Database Filename Fun In_channel List Printf Schema String Sys Table Value
