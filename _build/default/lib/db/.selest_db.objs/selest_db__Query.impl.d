lib/db/query.ml: Format List String
