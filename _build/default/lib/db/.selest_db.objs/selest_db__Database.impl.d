lib/db/database.ml: Array Format List Printf Schema Table
