lib/db/value.ml: Array Format Hashtbl String
