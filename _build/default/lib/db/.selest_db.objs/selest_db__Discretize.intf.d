lib/db/discretize.mli: Value
