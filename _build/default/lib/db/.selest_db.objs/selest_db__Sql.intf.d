lib/db/sql.mli: Database Query
