lib/db/table.mli: Format Schema
