lib/db/exec.ml: Array Contingency Database Hashtbl List Option Printf Query Queue Schema Selest_prob Selest_util Table Value
