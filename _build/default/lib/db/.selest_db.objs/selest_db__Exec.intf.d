lib/db/exec.mli: Database Query Selest_prob
