lib/db/integrity.ml: Array Database Format Index List Schema Table Value
