lib/db/query.mli: Format
