lib/db/qparse.mli: Database Query
