lib/db/qparse.ml: Database Exec List Printf Query Schema String Table Value
