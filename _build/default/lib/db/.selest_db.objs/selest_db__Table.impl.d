lib/db/table.ml: Array Format Printf Schema Value
