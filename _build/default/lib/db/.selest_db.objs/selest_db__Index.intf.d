lib/db/index.mli:
