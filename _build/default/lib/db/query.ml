type pred = Eq of int | In_set of int list | Range of int * int
type select = { sel_tv : string; sel_attr : string; pred : pred }
type join = { child_tv : string; fk : string; parent_tv : string }

type t = {
  tvars : (string * string) list;
  joins : join list;
  selects : select list;
}

let create ~tvars ?(joins = []) ?(selects = []) () =
  let names = List.map fst tvars in
  let rec dup = function
    | [] -> None
    | x :: rest -> if List.mem x rest then Some x else dup rest
  in
  (match dup names with
  | Some x -> invalid_arg ("Query.create: duplicate tuple variable " ^ x)
  | None -> ());
  let declared tv = List.mem_assoc tv tvars in
  List.iter
    (fun j ->
      if not (declared j.child_tv) then
        invalid_arg ("Query.create: join references undeclared tuple variable " ^ j.child_tv);
      if not (declared j.parent_tv) then
        invalid_arg ("Query.create: join references undeclared tuple variable " ^ j.parent_tv);
      if j.child_tv = j.parent_tv then
        invalid_arg "Query.create: self-join through a foreign key is not a keyjoin")
    joins;
  List.iter
    (fun s ->
      if not (declared s.sel_tv) then
        invalid_arg ("Query.create: select references undeclared tuple variable " ^ s.sel_tv))
    selects;
  { tvars; joins; selects }

let table_of t tv = List.assoc tv t.tvars
let select_on t tv = List.filter (fun s -> s.sel_tv = tv) t.selects
let eq tv attr v = { sel_tv = tv; sel_attr = attr; pred = Eq v }
let in_set tv attr vs = { sel_tv = tv; sel_attr = attr; pred = In_set vs }
let range tv attr lo hi = { sel_tv = tv; sel_attr = attr; pred = Range (lo, hi) }
let join ~child ~fk ~parent = { child_tv = child; fk; parent_tv = parent }
let with_selects t selects = { t with selects }

let pred_holds p v =
  match p with
  | Eq x -> v = x
  | In_set xs -> List.mem v xs
  | Range (lo, hi) -> lo <= v && v <= hi

let pp_pred ppf = function
  | Eq v -> Format.fprintf ppf "= %d" v
  | In_set vs ->
    Format.fprintf ppf "in {%s}" (String.concat "," (List.map string_of_int vs))
  | Range (lo, hi) -> Format.fprintf ppf "in [%d..%d]" lo hi

let pp ppf t =
  Format.fprintf ppf "Q(";
  List.iteri
    (fun i (tv, tbl) ->
      if i > 0 then Format.fprintf ppf ", ";
      Format.fprintf ppf "%s:%s" tv tbl)
    t.tvars;
  Format.fprintf ppf ")";
  List.iter
    (fun j -> Format.fprintf ppf " %s.%s=%s" j.child_tv j.fk j.parent_tv)
    t.joins;
  List.iter
    (fun s -> Format.fprintf ppf " %s.%s %a" s.sel_tv s.sel_attr pp_pred s.pred)
    t.selects
