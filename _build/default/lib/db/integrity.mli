(** Database invariant checks.

    {!Database.create} already rejects referential-integrity violations;
    this module provides a non-raising audit used by the CLI and tests to
    report all problems at once, plus fanout statistics that characterize
    join skew. *)

type violation =
  | Dangling_fk of { table : string; fk : string; row : int; value : int }
  | Value_out_of_domain of { table : string; attr : string; row : int; value : int }

type report = {
  violations : violation list;
  fanouts : (string * string * float * int) list;
      (** (child table, fk, mean fanout, max fanout) per foreign key *)
}

val audit : Database.t -> report
val is_clean : report -> bool
val pp_report : Format.formatter -> report -> unit
