type violation =
  | Dangling_fk of { table : string; fk : string; row : int; value : int }
  | Value_out_of_domain of { table : string; attr : string; row : int; value : int }

type report = {
  violations : violation list;
  fanouts : (string * string * float * int) list;
}

let audit db =
  let violations = ref [] in
  let fanouts = ref [] in
  Array.iter
    (fun tbl ->
      let ts = Table.schema tbl in
      Array.iteri
        (fun ai a ->
          let card = Value.card a.Schema.domain in
          Array.iteri
            (fun row v ->
              if v < 0 || v >= card then
                violations :=
                  Value_out_of_domain
                    { table = ts.Schema.tname; attr = a.Schema.aname; row; value = v }
                  :: !violations)
            (Table.col tbl ai))
        ts.Schema.attrs;
      Array.iteri
        (fun fi f ->
          let target = Database.table db f.Schema.target in
          let tsize = Table.size target in
          let col = Table.fk_col tbl fi in
          Array.iteri
            (fun row v ->
              if v < 0 || v >= tsize then
                violations :=
                  Dangling_fk
                    { table = ts.Schema.tname; fk = f.Schema.fkname; row; value = v }
                  :: !violations)
            col;
          if tsize > 0 then begin
            let index = Index.build ~fk_col:col ~target_size:tsize in
            fanouts :=
              (ts.Schema.tname, f.Schema.fkname, Index.mean_fanout index,
               Index.max_fanout index)
              :: !fanouts
          end)
        ts.Schema.fks)
    (Database.tables db);
  { violations = List.rev !violations; fanouts = List.rev !fanouts }

let is_clean r = r.violations = []

let pp_violation ppf = function
  | Dangling_fk { table; fk; row; value } ->
    Format.fprintf ppf "dangling fk %s.%s at row %d: %d" table fk row value
  | Value_out_of_domain { table; attr; row; value } ->
    Format.fprintf ppf "out-of-domain %s.%s at row %d: %d" table attr row value

let pp_report ppf r =
  if is_clean r then Format.fprintf ppf "integrity: clean@."
  else
    List.iter (fun v -> Format.fprintf ppf "%a@." pp_violation v) r.violations;
  List.iter
    (fun (tbl, fk, mean, mx) ->
      Format.fprintf ppf "fanout %s.%s: mean %.2f, max %d@." tbl fk mean mx)
    r.fanouts
