(** Attribute domains.

    Following Sec. 2 of the paper, every value attribute ranges over a small
    finite domain; values are stored as integer codes [0..card-1] and the
    domain carries the human-readable label of each code.  Ordinal domains
    (ages, amounts, bucketized continuous values) additionally support range
    predicates. *)

type domain = private {
  labels : string array;  (** label of each code, in code order *)
  ordinal : bool;  (** whether codes carry a meaningful total order *)
}

val labeled : ?ordinal:bool -> string array -> domain
(** Domain with explicit labels (default [ordinal = false]).  Raises on an
    empty array or duplicate labels. *)

val ints : int -> domain
(** [ints k]: ordinal domain of [k] codes labeled "0".."k-1". *)

val range : int -> int -> domain
(** [range lo hi]: ordinal domain with labels [lo..hi] inclusive. *)

val card : domain -> int
val label : domain -> int -> string

val code : domain -> string -> int
(** Code of a label.  Raises [Not_found]. *)

val is_ordinal : domain -> bool
val pp : Format.formatter -> domain -> unit
