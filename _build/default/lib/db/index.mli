(** Reverse foreign-key index (CSR layout).

    For a foreign key [child.fk -> parent], the index answers "which child
    rows reference parent row [p]?" in O(1 + fanout).  Equivalent to the
    hash index Sec. 4.2 assumes when arguing the sufficient-statistics joins
    are linear-time. *)

type t

val build : fk_col:int array -> target_size:int -> t

val children : t -> int -> int array
(** Child rows referencing the given parent row (a fresh array). *)

val fanout : t -> int -> int
val iter_children : t -> int -> (int -> unit) -> unit
val max_fanout : t -> int
val mean_fanout : t -> float
