type t = {
  schema : Schema.table_schema;
  n : int;
  cols : int array array;
  fk_cols : int array array;
}

let create schema ~cols ~fk_cols =
  let n_attrs = Array.length schema.Schema.attrs in
  let n_fks = Array.length schema.Schema.fks in
  if Array.length cols <> n_attrs then invalid_arg "Table.create: wrong number of attribute columns";
  if Array.length fk_cols <> n_fks then invalid_arg "Table.create: wrong number of fk columns";
  let n =
    if n_attrs > 0 then Array.length cols.(0)
    else if n_fks > 0 then Array.length fk_cols.(0)
    else 0
  in
  Array.iter (fun c -> if Array.length c <> n then invalid_arg "Table.create: ragged columns") cols;
  Array.iter (fun c -> if Array.length c <> n then invalid_arg "Table.create: ragged fk columns") fk_cols;
  Array.iteri
    (fun i c ->
      let card = Value.card schema.Schema.attrs.(i).Schema.domain in
      Array.iter
        (fun v ->
          if v < 0 || v >= card then
            invalid_arg
              (Printf.sprintf "Table.create: %s.%s value %d out of domain [0,%d)"
                 schema.Schema.tname schema.Schema.attrs.(i).Schema.aname v card))
        c)
    cols;
  { schema; n; cols; fk_cols }

let schema t = t.schema
let size t = t.n
let name t = t.schema.Schema.tname
let col t i = t.cols.(i)
let col_by_name t name = t.cols.(Schema.attr_index t.schema name)
let fk_col t i = t.fk_cols.(i)
let fk_col_by_name t name = t.fk_cols.(Schema.fk_index t.schema name)
let get t ~row ~attr = t.cols.(attr).(row)
let attr_card t i = Value.card t.schema.Schema.attrs.(i).Schema.domain
let cards t = Array.map (fun a -> Value.card a.Schema.domain) t.schema.Schema.attrs
let project t idxs = Array.map (fun i -> t.cols.(i)) idxs

let pp_row ppf t row =
  Format.fprintf ppf "%s[%d](" (name t) row;
  Array.iteri
    (fun i a ->
      if i > 0 then Format.fprintf ppf ", ";
      Format.fprintf ppf "%s=%s" a.Schema.aname (Value.label a.Schema.domain t.cols.(i).(row)))
    t.schema.Schema.attrs;
  Array.iteri
    (fun i f ->
      Format.fprintf ppf ", %s=%d" f.Schema.fkname t.fk_cols.(i).(row))
    t.schema.Schema.fks;
  Format.fprintf ppf ")"
