(** Discretization of large ordinal domains (Sec. 2.3).

    The paper's models assume moderately sized domains and handle larger
    ones by bucketizing; a base-level equality query is then answered by
    estimating the bucket query and assuming uniformity within the result.
    This module produces the bucket mapping and the per-bucket widths needed
    for that final division. *)

type t = {
  n_bins : int;
  bin_of : int array;  (** original code -> bin *)
  width : int array;  (** number of original codes per bin *)
}

val equi_width : card:int -> bins:int -> t
(** Partition [0..card-1] into [bins] contiguous ranges of (nearly) equal
    width.  [bins] is clamped to [card]. *)

val equi_depth : column:int array -> card:int -> bins:int -> t
(** Contiguous ranges chosen so each holds (nearly) the same number of rows
    of [column] — the classic equi-depth histogram boundary rule. *)

val apply : t -> int array -> int array
(** Map a column to bin codes. *)

val domain : t -> Value.domain -> Value.domain
(** Bucketized domain with labels "lo..hi" derived from the original. *)

val base_estimate : t -> bucket_estimate:float -> bin:int -> float
(** Uniformity-within-bucket correction: the estimate for one base-level
    value inside [bin] given the bucket-level estimate. *)
