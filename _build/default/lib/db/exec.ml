open Selest_prob

let table_for db q tv = Database.table db (Query.table_of q tv)

let validate db q =
  let schema = Database.schema db in
  List.iter
    (fun (tv, tbl) ->
      match Schema.table_index schema tbl with
      | _ -> ()
      | exception Not_found ->
        invalid_arg (Printf.sprintf "Exec.validate: unknown table %s for %s" tbl tv))
    q.Query.tvars;
  List.iter
    (fun s ->
      let tbl = table_for db q s.Query.sel_tv in
      let ts = Table.schema tbl in
      let attr =
        try Schema.attr ts s.Query.sel_attr
        with Not_found ->
          invalid_arg
            (Printf.sprintf "Exec.validate: no attribute %s in %s" s.Query.sel_attr
               (Table.name tbl))
      in
      let card = Value.card attr.Schema.domain in
      let check v =
        if v < 0 || v >= card then
          invalid_arg
            (Printf.sprintf "Exec.validate: predicate value %d out of domain of %s.%s" v
               (Table.name tbl) s.Query.sel_attr)
      in
      match s.Query.pred with
      | Query.Eq v -> check v
      | Query.In_set vs -> List.iter check vs
      | Query.Range (lo, hi) ->
        check lo;
        check hi;
        if hi < lo then invalid_arg "Exec.validate: empty range";
        if not (Value.is_ordinal attr.Schema.domain) then
          invalid_arg
            (Printf.sprintf "Exec.validate: range predicate on non-ordinal %s.%s"
               (Table.name tbl) s.Query.sel_attr))
    q.Query.selects;
  List.iter
    (fun j ->
      let child = table_for db q j.Query.child_tv in
      let ts = Table.schema child in
      let fk =
        try Schema.fk ts j.Query.fk
        with Not_found ->
          invalid_arg
            (Printf.sprintf "Exec.validate: no foreign key %s in %s" j.Query.fk
               (Table.name child))
      in
      let parent_table = Query.table_of q j.Query.parent_tv in
      if fk.Schema.target <> parent_table then
        invalid_arg
          (Printf.sprintf "Exec.validate: %s.%s targets %s, not %s" (Table.name child)
             j.Query.fk fk.Schema.target parent_table))
    q.Query.joins;
  (* The join graph must be a forest over tuple variables. *)
  let tvs = List.map fst q.Query.tvars in
  let idx tv =
    let rec loop i = function
      | [] -> raise Not_found
      | x :: rest -> if x = tv then i else loop (i + 1) rest
    in
    loop 0 tvs
  in
  let n = List.length tvs in
  let uf = Array.init n (fun i -> i) in
  let rec find i = if uf.(i) = i then i else find uf.(i) in
  List.iter
    (fun j ->
      let a = find (idx j.Query.child_tv) and b = find (idx j.Query.parent_tv) in
      if a = b then invalid_arg "Exec.validate: cyclic join graph (not a keyjoin forest)";
      uf.(a) <- b)
    q.Query.joins;
  (* No tuple variable may bind the same foreign key twice. *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun j ->
      let key = (j.Query.child_tv, j.Query.fk) in
      if Hashtbl.mem seen key then
        invalid_arg "Exec.validate: foreign key joined twice from the same tuple variable";
      Hashtbl.add seen key ())
    q.Query.joins

let select_mask db q tv =
  let tbl = table_for db q tv in
  let n = Table.size tbl in
  let mask = Array.make n true in
  List.iter
    (fun s ->
      let col = Table.col_by_name tbl s.Query.sel_attr in
      for r = 0 to n - 1 do
        if mask.(r) && not (Query.pred_holds s.Query.pred col.(r)) then mask.(r) <- false
      done)
    (Query.select_on q tv);
  mask

(* --- Weight propagation over the join forest --------------------------- *)

let query_size db q =
  validate db q;
  let tvs = Array.of_list (List.map fst q.Query.tvars) in
  let n = Array.length tvs in
  let idx tv =
    let rec loop i = if tvs.(i) = tv then i else loop (i + 1) in
    loop 0
  in
  (* Initial weights: the select masks. *)
  let weights =
    Array.map
      (fun tv -> Array.map (fun b -> if b then 1.0 else 0.0) (select_mask db q tv))
      tvs
  in
  (* Undirected adjacency; each edge remembers the join it came from. *)
  let adj = Array.make n [] in
  List.iter
    (fun j ->
      let c = idx j.Query.child_tv and p = idx j.Query.parent_tv in
      adj.(c) <- (p, j) :: adj.(c);
      adj.(p) <- (c, j) :: adj.(p))
    q.Query.joins;
  let visited = Array.make n false in
  let total = ref 1.0 in
  for root = 0 to n - 1 do
    if not visited.(root) then begin
      (* BFS to get a processing order (root first). *)
      let order = ref [] in
      let tree_parent = Array.make n (-1) in
      let tree_join = Array.make n None in
      let queue = Queue.create () in
      Queue.add root queue;
      visited.(root) <- true;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        order := u :: !order;
        List.iter
          (fun (v, j) ->
            if not visited.(v) then begin
              visited.(v) <- true;
              tree_parent.(v) <- u;
              tree_join.(v) <- Some j;
              Queue.add v queue
            end)
          adj.(u)
      done;
      (* !order is reverse BFS: leaves first.  Each node folds its weight
         into its tree parent through the joining foreign key. *)
      List.iter
        (fun u ->
          if u <> root then begin
            let p = tree_parent.(u) in
            let j = Option.get tree_join.(u) in
            let child_i = idx j.Query.child_tv in
            let child_tbl = table_for db q j.Query.child_tv in
            let fk = Table.fk_col_by_name child_tbl j.Query.fk in
            if child_i = u then begin
              (* u is the fk holder: scatter-add u's weights onto p's rows. *)
              let acc = Array.make (Array.length weights.(p)) 0.0 in
              Array.iteri (fun r w -> acc.(fk.(r)) <- acc.(fk.(r)) +. w) weights.(u);
              Array.iteri (fun r a -> weights.(p).(r) <- weights.(p).(r) *. a) acc
            end
            else begin
              (* p holds the fk into u: gather u's weight along the fk. *)
              let wp = weights.(p) and wu = weights.(u) in
              Array.iteri (fun r target -> wp.(r) <- wp.(r) *. wu.(target)) fk
            end
          end)
        !order;
      total := !total *. Selest_util.Arrayx.sum weights.(root)
    end
  done;
  if n = 0 then 0.0 else !total

(* --- Column resolution for single-base queries ------------------------- *)

let directed_reach db q base =
  (* Map each tuple variable to its per-base-row row ids, following joins
     away from [base] in the child -> parent direction only. *)
  let result : (string, int array) Hashtbl.t = Hashtbl.create 8 in
  let base_tbl = table_for db q base in
  Hashtbl.add result base (Array.init (Table.size base_tbl) (fun i -> i));
  let progress = ref true in
  while !progress do
    progress := false;
    List.iter
      (fun j ->
        if
          Hashtbl.mem result j.Query.child_tv
          && not (Hashtbl.mem result j.Query.parent_tv)
        then begin
          let child_rows = Hashtbl.find result j.Query.child_tv in
          let child_tbl = table_for db q j.Query.child_tv in
          let fk = Table.fk_col_by_name child_tbl j.Query.fk in
          Hashtbl.add result j.Query.parent_tv (Array.map (fun r -> fk.(r)) child_rows);
          progress := true
        end)
      q.Query.joins
  done;
  result

let single_base db q =
  validate db q;
  let tvs = List.map fst q.Query.tvars in
  let covers base =
    let reach = directed_reach db q base in
    List.for_all (Hashtbl.mem reach) tvs
  in
  List.find_opt covers tvs

let resolve_rows db q ~base ~tv =
  let reach = directed_reach db q base in
  match Hashtbl.find_opt reach tv with
  | Some rows -> rows
  | None ->
    invalid_arg
      (Printf.sprintf "Exec.resolve_rows: %s is not reachable from %s via foreign keys" tv
         base)

let resolve_column db q ~base ~tv ~attr =
  let rows = resolve_rows db q ~base ~tv in
  let col = Table.col_by_name (table_for db q tv) attr in
  Array.map (fun r -> col.(r)) rows

let joint_counts db q ~keys =
  match single_base db q with
  | None ->
    invalid_arg
      "Exec.joint_counts: query has no single base tuple variable (branching join)"
  | Some base ->
    let base_tbl = table_for db q base in
    let n = Table.size base_tbl in
    (* Mask: all selects of all tuple variables, resolved onto base rows. *)
    let mask = Array.make n true in
    List.iter
      (fun (tv, _) ->
        let tv_mask = select_mask db q tv in
        let rows = resolve_rows db q ~base ~tv in
        for r = 0 to n - 1 do
          if mask.(r) && not (tv_mask.(rows.(r))) then mask.(r) <- false
        done)
      q.Query.tvars;
    let cols =
      Array.of_list
        (List.map (fun (tv, attr) -> resolve_column db q ~base ~tv ~attr) keys)
    in
    let cards =
      Array.of_list
        (List.map
           (fun (tv, attr) ->
             let ts = Table.schema (table_for db q tv) in
             Value.card (Schema.attr ts attr).Schema.domain)
           keys)
    in
    Contingency.count_masked ~cards ~mask cols

let count_by db q ~keys =
  let c = joint_counts db q ~keys in
  let out = ref [] in
  Contingency.iter c (fun values w -> out := (Array.copy values, w) :: !out);
  List.rev !out

let nonkey_join_size db (q1, tv1, a1) (q2, tv2, a2) =
  validate db q1;
  validate db q2;
  List.iter
    (fun (tv, _) ->
      if List.mem_assoc tv q2.Query.tvars then
        invalid_arg "Exec.nonkey_join_size: sub-queries share a tuple variable")
    q1.Query.tvars;
  let card_of q tv attr =
    let ts = Table.schema (table_for db q tv) in
    Value.card (Schema.attr ts attr).Schema.domain
  in
  let c1 = card_of q1 tv1 a1 and c2 = card_of q2 tv2 a2 in
  if c1 <> c2 then invalid_arg "Exec.nonkey_join_size: joined attributes disagree on domain";
  let acc = ref 0.0 in
  for v = 0 to c1 - 1 do
    let q1v = Query.with_selects q1 (Query.eq tv1 a1 v :: q1.Query.selects) in
    let q2v = Query.with_selects q2 (Query.eq tv2 a2 v :: q2.Query.selects) in
    acc := !acc +. (query_size db q1v *. query_size db q2v)
  done;
  !acc
