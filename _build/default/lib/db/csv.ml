(* Minimal CSV: no quoting; labels never contain commas (enforced below). *)

let split_line line = String.split_on_char ',' line

let check_label l =
  if String.contains l ',' || String.contains l '\n' then
    invalid_arg ("Csv: label contains a separator: " ^ l)

let save_table tbl path =
  let ts = Table.schema tbl in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let headers =
        Array.to_list (Array.map (fun a -> a.Schema.aname) ts.Schema.attrs)
        @ Array.to_list (Array.map (fun f -> f.Schema.fkname) ts.Schema.fks)
      in
      List.iter check_label headers;
      output_string oc (String.concat "," headers);
      output_char oc '\n';
      for row = 0 to Table.size tbl - 1 do
        let cells =
          Array.to_list
            (Array.mapi
               (fun ai a ->
                 let l = Value.label a.Schema.domain (Table.col tbl ai).(row) in
                 check_label l;
                 l)
               ts.Schema.attrs)
          @ Array.to_list
              (Array.mapi (fun fi _ -> string_of_int (Table.fk_col tbl fi).(row)) ts.Schema.fks)
        in
        output_string oc (String.concat "," cells);
        output_char oc '\n'
      done)

let load_table ts path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let header =
        match In_channel.input_line ic with
        | Some l -> Array.of_list (split_line l)
        | None -> failwith (path ^ ": empty file")
      in
      let col_pos name =
        let rec loop i =
          if i >= Array.length header then
            failwith (Printf.sprintf "%s: missing column %s" path name)
          else if header.(i) = name then i
          else loop (i + 1)
        in
        loop 0
      in
      let attr_pos = Array.map (fun a -> col_pos a.Schema.aname) ts.Schema.attrs in
      let fk_pos = Array.map (fun f -> col_pos f.Schema.fkname) ts.Schema.fks in
      let rows = ref [] in
      let lineno = ref 1 in
      (try
         while true do
           match In_channel.input_line ic with
           | None -> raise Exit
           | Some l ->
             incr lineno;
             if String.trim l <> "" then rows := Array.of_list (split_line l) :: !rows
         done
       with Exit -> ());
      let rows = Array.of_list (List.rev !rows) in
      let n = Array.length rows in
      let get row j =
        if j >= Array.length rows.(row) then
          failwith (Printf.sprintf "%s: short row at line %d" path (row + 2))
        else rows.(row).(j)
      in
      let cols =
        Array.mapi
          (fun ai a ->
            Array.init n (fun row ->
                let cell = get row attr_pos.(ai) in
                try Value.code a.Schema.domain cell
                with Not_found ->
                  failwith
                    (Printf.sprintf "%s: unknown label %S for %s at line %d" path cell
                       a.Schema.aname (row + 2))))
          ts.Schema.attrs
      in
      let fk_cols =
        Array.mapi
          (fun fi f ->
            Array.init n (fun row ->
                let cell = get row fk_pos.(fi) in
                match int_of_string_opt cell with
                | Some v -> v
                | None ->
                  failwith
                    (Printf.sprintf "%s: non-integer fk %S for %s at line %d" path cell
                       f.Schema.fkname (row + 2))))
          ts.Schema.fks
      in
      Table.create ts ~cols ~fk_cols)

let save_database db ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  Array.iter
    (fun tbl -> save_table tbl (Filename.concat dir (Table.name tbl ^ ".csv")))
    (Database.tables db)

let load_database schema ~dir =
  let tables =
    Array.to_list
      (Array.map
         (fun ts -> load_table ts (Filename.concat dir (ts.Schema.tname ^ ".csv")))
         (Schema.tables schema))
  in
  Database.create schema tables
