type t = { offsets : int array; rows : int array }

let build ~fk_col ~target_size =
  let counts = Array.make (target_size + 1) 0 in
  Array.iter
    (fun p ->
      if p < 0 || p >= target_size then invalid_arg "Index.build: fk out of range";
      counts.(p + 1) <- counts.(p + 1) + 1)
    fk_col;
  for p = 1 to target_size do
    counts.(p) <- counts.(p) + counts.(p - 1)
  done;
  let offsets = counts in
  let rows = Array.make (Array.length fk_col) 0 in
  let cursor = Array.copy offsets in
  Array.iteri
    (fun child p ->
      rows.(cursor.(p)) <- child;
      cursor.(p) <- cursor.(p) + 1)
    fk_col;
  { offsets; rows }

let fanout t p = t.offsets.(p + 1) - t.offsets.(p)

let children t p = Array.sub t.rows t.offsets.(p) (fanout t p)

let iter_children t p f =
  for i = t.offsets.(p) to t.offsets.(p + 1) - 1 do
    f t.rows.(i)
  done

let max_fanout t =
  let best = ref 0 in
  for p = 0 to Array.length t.offsets - 2 do
    if fanout t p > !best then best := fanout t p
  done;
  !best

let mean_fanout t =
  let parents = Array.length t.offsets - 1 in
  if parents = 0 then 0.0 else float_of_int (Array.length t.rows) /. float_of_int parents
