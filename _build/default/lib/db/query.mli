(** Select–keyjoin queries (the paper's query class, Sec. 2–3).

    A query binds named tuple variables to tables, joins them pairwise with
    foreign-key equality clauses ([child.fk = parent.key]), and applies
    selection predicates to individual attributes.  Equality selects are the
    paper's primary case; [In_set] and [Range] cover the Sec. 2.3
    extensions. *)

type pred =
  | Eq of int  (** attribute = coded value *)
  | In_set of int list  (** attribute ∈ set *)
  | Range of int * int  (** lo <= attribute <= hi, inclusive; ordinal only *)

type select = { sel_tv : string; sel_attr : string; pred : pred }

type join = {
  child_tv : string;  (** tuple variable holding the foreign key *)
  fk : string;  (** foreign-key column name in the child's table *)
  parent_tv : string;  (** tuple variable over the referenced table *)
}

type t = private {
  tvars : (string * string) list;  (** tuple variable -> table name *)
  joins : join list;
  selects : select list;
}

val create :
  tvars:(string * string) list -> ?joins:join list -> ?selects:select list -> unit -> t
(** Structural validation only (distinct tuple variables; joins and selects
    refer to declared tuple variables).  Schema-level validation happens in
    {!Exec} where the database is available. *)

val table_of : t -> string -> string
(** Table bound to a tuple variable.  Raises [Not_found]. *)

val select_on : t -> string -> select list
(** Selects applying to one tuple variable. *)

val eq : string -> string -> int -> select
val in_set : string -> string -> int list -> select
val range : string -> string -> int -> int -> select
val join : child:string -> fk:string -> parent:string -> join

val with_selects : t -> select list -> t
(** Same tuple variables and joins, different selects — the common pattern
    when sweeping a query suite over all value instantiations. *)

val pred_holds : pred -> int -> bool
val pp : Format.formatter -> t -> unit
