(** A SQL subset covering exactly the paper's query class: counting
    select–foreign-key-join queries.

    {v
    SELECT COUNT( * )
    FROM contact c JOIN patient p ON c.patient = p.id
                   JOIN strain  s ON p.strain  = s.id
    WHERE p.USBorn = 'yes'
      AND p.Age BETWEEN '35-49' AND '65-79'
      AND c.Contype IN ('household', 'roommate')
    v}

    Grammar notes:
    {ul
    {- [FROM] items are [table [AS] alias] (alias optional — the table name
       then doubles as the tuple variable); comma-separated items plus
       explicit [JOIN ... ON] clauses are both accepted;}
    {- join conditions have the form [child.fk = parent.id] (or just
       [child.fk = parent]) — equality of a foreign key with the referenced
       table's primary key, the paper's keyjoin;}
    {- [WHERE] is a conjunction of [tv.attr = value], [tv.attr IN (...)]
       and [tv.attr BETWEEN lo AND hi]; values are domain labels (quoted or
       bare) or integer codes;}
    {- keywords are case-insensitive; [SELECT COUNT( * )] is required — this
       is a selectivity estimator, not a query engine.}} *)

val parse : Database.t -> string -> Query.t
(** Raises [Failure] with a position-annotated message on syntax errors,
    unknown tables/attributes/labels, or non-keyjoin join conditions. *)
