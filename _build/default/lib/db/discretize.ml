type t = { n_bins : int; bin_of : int array; width : int array }

let of_boundaries ~card boundaries =
  (* [boundaries] are the exclusive upper codes of each bin, increasing,
     ending at [card]. *)
  let n_bins = Array.length boundaries in
  let bin_of = Array.make card 0 in
  let width = Array.make n_bins 0 in
  let b = ref 0 in
  for v = 0 to card - 1 do
    while v >= boundaries.(!b) do incr b done;
    bin_of.(v) <- !b;
    width.(!b) <- width.(!b) + 1
  done;
  { n_bins; bin_of; width }

let equi_width ~card ~bins =
  if card <= 0 then invalid_arg "Discretize.equi_width: card <= 0";
  let bins = max 1 (min bins card) in
  let boundaries =
    Array.init bins (fun i -> (i + 1) * card / bins)
  in
  of_boundaries ~card boundaries

let equi_depth ~column ~card ~bins =
  if card <= 0 then invalid_arg "Discretize.equi_depth: card <= 0";
  let bins = max 1 (min bins card) in
  let counts = Array.make card 0 in
  Array.iter
    (fun v ->
      if v < 0 || v >= card then invalid_arg "Discretize.equi_depth: value out of range";
      counts.(v) <- counts.(v) + 1)
    column;
  let total = Array.fold_left ( + ) 0 counts in
  let per_bin = float_of_int total /. float_of_int bins in
  let boundaries = ref [] in
  let acc = ref 0 and filled = ref 0 in
  for v = 0 to card - 1 do
    acc := !acc + counts.(v);
    (* Close the current bin when its share is reached, but never create
       more bins than remaining codes allow. *)
    let target = per_bin *. float_of_int (!filled + 1) in
    if
      float_of_int !acc >= target
      && !filled < bins - 1
      && card - v - 1 >= bins - !filled - 1
    then begin
      boundaries := (v + 1) :: !boundaries;
      incr filled
    end
  done;
  boundaries := card :: !boundaries;
  of_boundaries ~card (Array.of_list (List.rev !boundaries))

let apply t column = Array.map (fun v -> t.bin_of.(v)) column

let domain t original =
  let lo = Array.make t.n_bins max_int and hi = Array.make t.n_bins (-1) in
  Array.iteri
    (fun v b ->
      if v < lo.(b) then lo.(b) <- v;
      if v > hi.(b) then hi.(b) <- v)
    t.bin_of;
  let labels =
    Array.init t.n_bins (fun b ->
        if lo.(b) = hi.(b) then Value.label original lo.(b)
        else Value.label original lo.(b) ^ ".." ^ Value.label original hi.(b))
  in
  Value.labeled ~ordinal:true labels

let base_estimate t ~bucket_estimate ~bin =
  if bin < 0 || bin >= t.n_bins then invalid_arg "Discretize.base_estimate";
  bucket_estimate /. float_of_int t.width.(bin)
