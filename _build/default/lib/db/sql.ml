(* Hand-written lexer + recursive-descent parser for the COUNT( * ) subset. *)

type token =
  | T_ident of string
  | T_string of string
  | T_int of int
  | T_punct of char  (* ( ) , . * =  *)
  | T_eof

type lexer = { input : string; mutable pos : int; mutable tok : token; mutable tok_pos : int }

let fail lx msg = failwith (Printf.sprintf "SQL: %s (at offset %d)" msg lx.tok_pos)

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
  || c = '-' || c = '+'

let lex_next lx =
  let n = String.length lx.input in
  while lx.pos < n && (lx.input.[lx.pos] = ' ' || lx.input.[lx.pos] = '\n' || lx.input.[lx.pos] = '\t' || lx.input.[lx.pos] = '\r') do
    lx.pos <- lx.pos + 1
  done;
  lx.tok_pos <- lx.pos;
  if lx.pos >= n then lx.tok <- T_eof
  else
    match lx.input.[lx.pos] with
    | '(' | ')' | ',' | '.' | '*' | '=' ->
      lx.tok <- T_punct lx.input.[lx.pos];
      lx.pos <- lx.pos + 1
    | '\'' | '"' ->
      let quote = lx.input.[lx.pos] in
      let buf = Buffer.create 8 in
      lx.pos <- lx.pos + 1;
      let rec go () =
        if lx.pos >= n then fail lx "unterminated string literal"
        else if lx.input.[lx.pos] = quote then lx.pos <- lx.pos + 1
        else begin
          Buffer.add_char buf lx.input.[lx.pos];
          lx.pos <- lx.pos + 1;
          go ()
        end
      in
      go ();
      lx.tok <- T_string (Buffer.contents buf)
    | c when is_ident_char c ->
      let start = lx.pos in
      while lx.pos < n && is_ident_char lx.input.[lx.pos] do
        lx.pos <- lx.pos + 1
      done;
      let word = String.sub lx.input start (lx.pos - start) in
      lx.tok <-
        (match int_of_string_opt word with Some i -> T_int i | None -> T_ident word)
    | c -> fail lx (Printf.sprintf "unexpected character %C" c)

let make_lexer input =
  let lx = { input; pos = 0; tok = T_eof; tok_pos = 0 } in
  lex_next lx;
  lx

let advance = lex_next

let keyword_is lx kw =
  match lx.tok with
  | T_ident w -> String.lowercase_ascii w = kw
  | _ -> false

let expect_keyword lx kw =
  if keyword_is lx kw then advance lx
  else fail lx (Printf.sprintf "expected %s" (String.uppercase_ascii kw))

let expect_punct lx c =
  match lx.tok with
  | T_punct p when p = c -> advance lx
  | _ -> fail lx (Printf.sprintf "expected %C" c)

let ident lx =
  match lx.tok with
  | T_ident w ->
    advance lx;
    w
  | _ -> fail lx "expected an identifier"

let reserved =
  [ "select"; "count"; "from"; "join"; "on"; "where"; "and"; "in"; "between"; "as" ]

(* ---- parser ---------------------------------------------------------------- *)

type raw_cond =
  | C_join of (string * string) * string  (* (tv, column) = tv[.id] *)
  | C_eq of (string * string) * [ `Label of string | `Code of int ]
  | C_in of (string * string) * [ `Label of string | `Code of int ] list
  | C_between of (string * string) * [ `Label of string | `Code of int ] * [ `Label of string | `Code of int ]

let parse_from_item lx =
  let table = ident lx in
  let alias =
    match lx.tok with
    | T_ident w
      when not (List.mem (String.lowercase_ascii w) reserved) ->
      advance lx;
      Some w
    | T_ident w when String.lowercase_ascii w = "as" ->
      advance lx;
      Some (ident lx)
    | _ -> None
  in
  (Option.value alias ~default:table, table)

let parse_value lx =
  match lx.tok with
  | T_string s ->
    advance lx;
    `Label s
  | T_int i ->
    advance lx;
    `Code i
  | T_ident w when not (List.mem (String.lowercase_ascii w) reserved) ->
    advance lx;
    `Label w
  | _ -> fail lx "expected a value (label or integer code)"

let parse_ref lx =
  let tv = ident lx in
  expect_punct lx '.';
  let col = ident lx in
  (tv, col)

let parse_condition lx =
  let lhs = parse_ref lx in
  if keyword_is lx "in" then begin
    advance lx;
    expect_punct lx '(';
    let values = ref [ parse_value lx ] in
    while lx.tok = T_punct ',' do
      advance lx;
      values := parse_value lx :: !values
    done;
    expect_punct lx ')';
    C_in (lhs, List.rev !values)
  end
  else if keyword_is lx "between" then begin
    advance lx;
    let lo = parse_value lx in
    expect_keyword lx "and";
    let hi = parse_value lx in
    C_between (lhs, lo, hi)
  end
  else begin
    expect_punct lx '=';
    match lx.tok with
    | T_ident w when not (List.mem (String.lowercase_ascii w) reserved) -> (
      (* could be tv-reference (join) or a bare label; decide by the dot *)
      advance lx;
      match lx.tok with
      | T_punct '.' ->
        advance lx;
        let col = ident lx in
        if String.lowercase_ascii col = "id" || String.lowercase_ascii col = "key" then
          C_join (lhs, w)
        else fail lx "join conditions must equate a foreign key with a primary key (use parent.id)"
      | _ -> C_eq (lhs, `Label w))
    | T_string s ->
      advance lx;
      C_eq (lhs, `Label s)
    | T_int i ->
      advance lx;
      C_eq (lhs, `Code i)
    | _ -> fail lx "expected a value or parent reference after ="
  end

let parse_raw lx =
  expect_keyword lx "select";
  expect_keyword lx "count";
  expect_punct lx '(';
  expect_punct lx '*';
  expect_punct lx ')';
  expect_keyword lx "from";
  let items = ref [ parse_from_item lx ] in
  let conds = ref [] in
  let rec from_tail () =
    if lx.tok = T_punct ',' then begin
      advance lx;
      items := parse_from_item lx :: !items;
      from_tail ()
    end
    else if keyword_is lx "join" then begin
      advance lx;
      items := parse_from_item lx :: !items;
      expect_keyword lx "on";
      conds := parse_condition lx :: !conds;
      (* allow AND-chained on-conditions *)
      while keyword_is lx "and" do
        advance lx;
        conds := parse_condition lx :: !conds
      done;
      from_tail ()
    end
  in
  from_tail ();
  if keyword_is lx "where" then begin
    advance lx;
    conds := parse_condition lx :: !conds;
    while keyword_is lx "and" do
      advance lx;
      conds := parse_condition lx :: !conds
    done
  end;
  (match lx.tok with T_eof -> () | _ -> fail lx "trailing input after query");
  (List.rev !items, List.rev !conds)

(* ---- resolution against the database ----------------------------------------- *)

let parse db input =
  let lx = make_lexer input in
  let items, conds = parse_raw lx in
  let schema = Database.schema db in
  List.iter
    (fun (_, table) ->
      match Schema.table_index schema table with
      | _ -> ()
      | exception Not_found -> failwith (Printf.sprintf "SQL: unknown table %s" table))
    items;
  let table_of tv =
    match List.assoc_opt tv items with
    | Some t -> t
    | None -> failwith (Printf.sprintf "SQL: unknown tuple variable %s" tv)
  in
  let domain_of tv col =
    let ts = Table.schema (Database.table db (table_of tv)) in
    match Schema.attr ts col with
    | a -> a.Schema.domain
    | exception Not_found ->
      failwith (Printf.sprintf "SQL: no attribute %s in %s" col (table_of tv))
  in
  let code tv col v =
    let domain = domain_of tv col in
    match v with
    | `Code i ->
      if i < 0 || i >= Value.card domain then
        failwith (Printf.sprintf "SQL: code %d out of domain of %s.%s" i tv col);
      i
    | `Label l -> (
      match Value.code domain l with
      | c -> c
      | exception Not_found ->
        failwith (Printf.sprintf "SQL: unknown value %S for %s.%s" l tv col))
  in
  (* A bare [child.fk = parent] (no .id) lexes as an equality with a label;
     reinterpret it as a keyjoin when [col] is a foreign key of the child's
     table and the "label" names a tuple variable. *)
  let is_fk tv col =
    let ts = Table.schema (Database.table db (table_of tv)) in
    match Schema.fk_index ts col with _ -> true | exception Not_found -> false
  in
  let joins, selects =
    List.fold_left
      (fun (joins, selects) cond ->
        match cond with
        | C_join ((child, fk), parent) ->
          ignore (table_of parent);
          (Query.join ~child ~fk ~parent :: joins, selects)
        | C_eq ((tv, col), `Label l) when is_fk tv col && List.mem_assoc l items ->
          (Query.join ~child:tv ~fk:col ~parent:l :: joins, selects)
        | C_eq ((tv, col), v) -> (joins, Query.eq tv col (code tv col v) :: selects)
        | C_in ((tv, col), vs) ->
          (joins, Query.in_set tv col (List.map (code tv col) vs) :: selects)
        | C_between ((tv, col), lo, hi) ->
          (joins, Query.range tv col (code tv col lo) (code tv col hi) :: selects))
      ([], []) conds
  in
  let q =
    try Query.create ~tvars:items ~joins:(List.rev joins) ~selects:(List.rev selects) ()
    with Invalid_argument m -> failwith ("SQL: " ^ m)
  in
  (try Exec.validate db q with Invalid_argument m -> failwith ("SQL: " ^ m));
  q
