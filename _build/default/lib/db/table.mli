(** Columnar table storage.

    Rows are identified by their index [0..size-1], which doubles as the
    primary key.  Value attributes and foreign keys are stored as separate
    [int array] columns for cache-friendly scans — parameter estimation and
    exact query evaluation are all column scans. *)

type t

val create : Schema.table_schema -> cols:int array array -> fk_cols:int array array -> t
(** [create schema ~cols ~fk_cols]: one column per schema attribute and per
    foreign key, all of equal length.  Values are validated against domain
    cardinalities; foreign-key ranges are validated by
    {!Integrity.check}. *)

val schema : t -> Schema.table_schema
val size : t -> int
val name : t -> string

val col : t -> int -> int array
(** Column of the [i]-th value attribute (the live array — do not
    mutate). *)

val col_by_name : t -> string -> int array
val fk_col : t -> int -> int array
val fk_col_by_name : t -> string -> int array

val get : t -> row:int -> attr:int -> int
val attr_card : t -> int -> int
val cards : t -> int array
(** Cardinalities of all value attributes, in schema order. *)

val project : t -> int array -> int array array
(** Columns of the given attribute indices. *)

val pp_row : Format.formatter -> t -> int -> unit
(** Render one row with labels, for debugging and the CLI. *)
