(** Relational schemas.

    Every table has an implicit primary key — its row index — plus named
    value attributes and named foreign keys.  A foreign-key column stores
    the row index of the referenced table, which bakes in the paper's two
    standing assumptions: joins are equality joins on (foreign key = primary
    key), and referential integrity holds by construction once foreign-key
    values are range-checked (see {!Integrity}). *)

type attr = { aname : string; domain : Value.domain }

type fk = {
  fkname : string;  (** column name, unique among the table's columns *)
  target : string;  (** referenced table *)
}

type table_schema = {
  tname : string;
  attrs : attr array;  (** value (non-key) attributes, [T.*] in the paper *)
  fks : fk array;
}

type t

val table_schema :
  name:string -> attrs:(string * Value.domain) list -> ?fks:(string * string) list -> unit -> table_schema
(** [table_schema ~name ~attrs ~fks ()]; [fks] maps column name to target
    table name.  Raises on duplicate column names. *)

val create : table_schema list -> t
(** Raises on duplicate table names or foreign keys referencing unknown
    tables. *)

val tables : t -> table_schema array
val find_table : t -> string -> table_schema
(** Raises [Not_found]. *)

val table_index : t -> string -> int
val attr_index : table_schema -> string -> int
val fk_index : table_schema -> string -> int
val attr : table_schema -> string -> attr
val fk : table_schema -> string -> fk
val n_tables : t -> int
val pp : Format.formatter -> t -> unit
