let fail fmt = Printf.ksprintf failwith fmt

let split_once ~on s =
  match String.index_opt s on with
  | None -> None
  | Some i ->
    Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let parse_tvar spec =
  match split_once ~on:'=' (String.trim spec) with
  | Some (tv, table) -> (String.trim tv, String.trim table)
  | None ->
    let t = String.trim spec in
    (t, t)

let parse_join spec =
  (* "c.patient=p" *)
  match split_once ~on:'=' (String.trim spec) with
  | Some (lhs, parent) -> (
    match split_once ~on:'.' (String.trim lhs) with
    | Some (child, fk) ->
      Query.join ~child:(String.trim child) ~fk:(String.trim fk)
        ~parent:(String.trim parent)
    | None -> fail "join %S: expected child.fk=parent" spec)
  | None -> fail "join %S: expected child.fk=parent" spec

let value_code domain s =
  let s = String.trim s in
  match Value.code domain s with
  | v -> v
  | exception Not_found -> (
    match int_of_string_opt s with
    | Some v when v >= 0 && v < Value.card domain -> v
    | Some v -> fail "value %d out of domain [0,%d)" v (Value.card domain)
    | None -> fail "unknown value %S" s)

let parse_select_with db tvars spec =
  let spec = String.trim spec in
  match split_once ~on:'=' spec with
  | None -> fail "select %S: expected tv.attr=value" spec
  | Some (lhs, rhs) -> (
    match split_once ~on:'.' (String.trim lhs) with
    | None -> fail "select %S: expected tv.attr=value" spec
    | Some (tv, attr) ->
      let tv = String.trim tv and attr = String.trim attr in
      let table =
        match List.assoc_opt tv tvars with
        | Some t -> t
        | None -> fail "select %S: unknown tuple variable %s" spec tv
      in
      let ts = Table.schema (Database.table db table) in
      let domain =
        match Schema.attr ts attr with
        | a -> a.Schema.domain
        | exception Not_found -> fail "select %S: no attribute %s in %s" spec attr table
      in
      let rhs = String.trim rhs in
      let pred =
        if String.length rhs >= 2 && rhs.[0] = '{' && rhs.[String.length rhs - 1] = '}' then begin
          let inner = String.sub rhs 1 (String.length rhs - 2) in
          let values =
            List.map (value_code domain) (String.split_on_char ',' inner)
          in
          Query.In_set values
        end
        else
          match
            (* "lo..hi" range *)
            let rec find_dots i =
              if i + 1 >= String.length rhs then None
              else if rhs.[i] = '.' && rhs.[i + 1] = '.' then Some i
              else find_dots (i + 1)
            in
            find_dots 0
          with
          | Some i ->
            let lo = String.sub rhs 0 i in
            let hi = String.sub rhs (i + 2) (String.length rhs - i - 2) in
            Query.Range (value_code domain lo, value_code domain hi)
          | None -> Query.Eq (value_code domain rhs)
      in
      { Query.sel_tv = tv; sel_attr = attr; pred })

let parse db ~tvars ?(joins = []) ?(selects = []) () =
  let tvars = List.map parse_tvar tvars in
  let joins = List.map parse_join joins in
  let selects = List.map (parse_select_with db tvars) selects in
  let q = Query.create ~tvars ~joins ~selects () in
  (try Exec.validate db q with Invalid_argument m -> failwith m);
  q

let parse_select db q spec = parse_select_with db q.Query.tvars spec
