(** CSV import/export of tables.

    The CLI uses this to let a user inspect generated datasets and to load
    external categorical data.  The format is deliberately plain: one header
    row with column names, attribute values written as their domain labels,
    foreign keys written as integer row ids. *)

val save_table : Table.t -> string -> unit
(** Write a table to a file.  Raises [Sys_error] on I/O failure. *)

val load_table : Schema.table_schema -> string -> Table.t
(** Read a table whose header matches the schema's attribute and foreign-key
    columns (in any order).  Unknown labels, missing columns or short rows
    raise [Failure] with a line number. *)

val save_database : Database.t -> dir:string -> unit
(** One [<table>.csv] per table inside [dir] (created if missing). *)

val load_database : Schema.t -> dir:string -> Database.t
