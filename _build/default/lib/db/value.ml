type domain = { labels : string array; ordinal : bool }

let labeled ?(ordinal = false) labels =
  if Array.length labels = 0 then invalid_arg "Value.labeled: empty domain";
  let seen = Hashtbl.create (Array.length labels) in
  Array.iter
    (fun l ->
      if Hashtbl.mem seen l then invalid_arg ("Value.labeled: duplicate label " ^ l);
      Hashtbl.add seen l ())
    labels;
  { labels; ordinal }

let ints k =
  if k <= 0 then invalid_arg "Value.ints: k <= 0";
  { labels = Array.init k string_of_int; ordinal = true }

let range lo hi =
  if hi < lo then invalid_arg "Value.range: hi < lo";
  { labels = Array.init (hi - lo + 1) (fun i -> string_of_int (lo + i)); ordinal = true }

let card d = Array.length d.labels

let label d v =
  if v < 0 || v >= card d then invalid_arg "Value.label: code out of range";
  d.labels.(v)

let code d l =
  let rec loop i =
    if i >= Array.length d.labels then raise Not_found
    else if d.labels.(i) = l then i
    else loop (i + 1)
  in
  loop 0

let is_ordinal d = d.ordinal

let pp ppf d =
  Format.fprintf ppf "{%s%s}"
    (String.concat "," (Array.to_list d.labels))
    (if d.ordinal then " (ordinal)" else "")
