(** Textual query syntax for the CLI and quick experimentation.

    {ul
    {- tuple variables: ["c=contact"] (or just ["contact"], binding the
       variable ["contact"]);}
    {- joins: ["c.patient=p"] — the foreign key [patient] of [c]'s table
       equals [p]'s primary key;}
    {- selects: ["p.USBorn=yes"] (label or integer code),
       ["p.Age=1..3"] (inclusive range), ["c.Contype={household,roommate}"]
       (set).}} *)

val parse :
  Database.t -> tvars:string list -> ?joins:string list -> ?selects:string list ->
  unit -> Query.t
(** Raises [Failure] with a descriptive message on syntax or schema
    errors. *)

val parse_select : Database.t -> Query.t -> string -> Query.select
(** Parse one select clause against an existing query's tuple variables. *)
