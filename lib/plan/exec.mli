(** Flat "bytecode" executor for compiled plans.

    {!Plan.execute}'s generic path rebuilds restricted [Factor.t] values
    and allocates fresh intermediate tables on every request.  This
    module lowers one {e restricted-variable shape} of a plan — its
    factors, the set of evidence slots, and the memoized elimination
    order — into a linear program of two step kinds executed over
    arena-allocated float buffers sized at compile time:

    - {b Gather}: copy the slice [factor | bound values] into an arena
      buffer with precomputed strides, writing exact [0.0] for entries a
      mask slot disallows (the compiled form of the per-request
      {!Selest_prob.Factor.restrict} chain composed with
      {!Selest_prob.Factor.observe_mask} — pure data movement, bitwise
      identical by construction);
    - {b Contract}: one variable-elimination step, the fused
      multiply-then-sum odometer kernel of
      {!Selest_prob.Factor.sum_out_product} with the union scope,
      operand stride tables and output offsets all precomputed.

    The read-out replays [Ve.run]'s [total_of] (Kahan sum per surviving
    buffer, left-fold product), so results are {e bit-identical} to the
    generic engine — [Ve.Reference] remains the oracle for both.

    A warm {!load} + {!run} pair performs {e zero} GC allocation (gate:
    [Gc.minor_words] delta over N requests = 0) and no closure dispatch:
    arenas, odometer digit arrays and operand index arrays live in a
    per-domain {!state} and are reset in place.  Contractions bump
    {!Selest_obs.Hotpath.kernel} exactly like the generic kernels, so
    [max_factor_entries] and per-model metrics keep working. *)

type program
(** An immutable compiled program.  Shareable across domains; all
    mutation happens in per-domain {!state} values. *)

type state
(** Per-domain execution state: evidence slots, arena buffers, odometer
    scratch, and the 1-cell result.  Never share one across domains. *)

val compile :
  factors:Selest_prob.Factor.t list ->
  slots:int list ->
  masked:int list ->
  static:(int * int) list ->
  order:int list ->
  program
(** [compile ~factors ~slots ~masked ~static ~order] lowers the
    elimination of [order]'s variables from [factors] under evidence on
    [slots @ List.map fst static @ masked].  [slots] are per-request
    value variables (bound to one value each by {!load}); [masked] are
    per-request {e mask} variables (range/set predicates — {!load}
    merges their allowed-value bitsets and Gather zeroes the disallowed
    entries); [static] fixes variables to compile-time values (the
    plan's join indicators).  Buffers alias the factors' live tables
    where possible ({!Selest_prob.Factor.unsafe_data}), so the factors
    must outlive the program.  Raises [Invalid_argument] if a slot
    variable appears in no factor, is duplicated, or a static value is
    out of range. *)

val state_for : program -> state
(** The calling domain's state for this program, created on first use
    and cached in domain-local storage.  Warm calls allocate nothing. *)

val load :
  program ->
  state ->
  (int * Selest_db.Query.pred) list ->
  [ `Ok | `No_match | `Contradiction ]
(** Write the binding's evidence into the state's slots.  All-[Eq]
    bindings against mask-free programs take an O(1)-per-predicate fast
    path; anything else merges the predicates into per-slot
    allowed-value masks ([Ve.merged_masks] semantics) and classifies
    each slot by its allowed count (1 = value, >=2 = mask).  [`Ok]:
    every slot bound, ready to {!run}.  [`No_match]: the binding does
    not fit this program's shape (an unknown node, an unbound slot, or
    a value/mask kind disagreement) — the caller should fall back to
    another program or compile this shape.  [`Contradiction]: a slot
    with no allowed value; the event is empty and the estimate is [0.0]
    {e without} touching any buffer.  Values are range-checked in
    binding order with the same [Invalid_argument] as [Ve.prepare], and
    — like the generic engine — the contradiction verdict is only
    delivered after the whole binding has been validated.  Warm calls
    allocate nothing. *)

val run : state -> unit
(** Execute the loaded program: gathers, contractions, read-out.  The
    scalar lands in {!result}.  Must follow a [`Ok] {!load} on the same
    state.  Allocates nothing. *)

val result : state -> float
(** The scalar produced by the last {!run}. *)

(** {2 Introspection} *)

val n_steps : program -> int
(** Step count (gathers + contractions). *)

val arena_entries : program -> int
(** Total float entries across the program's arena buffers (the arena
    footprint of one state, excluding aliased factor tables). *)
