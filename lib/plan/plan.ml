(* Bind the library-internal bytecode executor before [open Selest_db]
   shadows the name with the database executor. *)
module Bytecode = Exec

open Selest_db
open Selest_bn
module Model = Selest_prm.Model

(* ---- upward closure (Def. 3.3) ------------------------------------------

   Tuple variables with their tables, joins as (child_tv, fk index,
   parent_tv), and the needed (tv, attr) set — the skeleton-shaped part
   of the online phase, computed once per compiled plan. *)

type closure = {
  c_tvars : (string * int) list;  (* tv -> table index, in insertion order *)
  c_joins : (string * int * string) list;
  c_needed : (string * int) list;  (* needed attribute nodes *)
}

let compute_closure (prm : Model.t) q =
  let schema = prm.Model.schema in
  let tables = Schema.tables schema in
  let tvars =
    ref
      (List.map
         (fun (tv, tbl) -> (tv, Schema.table_index schema tbl))
         q.Query.tvars)
  in
  let joins =
    ref
      (List.map
         (fun j ->
           let ti = List.assoc j.Query.child_tv !tvars in
           let fk = Schema.fk_index tables.(ti) j.Query.fk in
           (j.Query.child_tv, fk, j.Query.parent_tv))
         q.Query.joins)
  in
  let needed = Hashtbl.create 32 in
  let needed_order = ref [] in
  let worklist = Queue.create () in
  let need tv attr =
    if not (Hashtbl.mem needed (tv, attr)) then begin
      Hashtbl.add needed (tv, attr) ();
      needed_order := (tv, attr) :: !needed_order;
      Queue.add (tv, attr) worklist
    end
  in
  let processed_joins = Hashtbl.create 8 in
  (* Ensure a join (tv, fk) exists, creating a fresh parent tuple variable
     when the query does not already contain one; returns the parent tv and
     registers the join indicator's own parent requirements. *)
  let rec ensure_join tv fk =
    let ti = List.assoc tv !tvars in
    match List.find_opt (fun (ctv, f, _) -> ctv = tv && f = fk) !joins with
    | Some (_, _, ptv) ->
      require_join_parents tv ti fk ptv;
      ptv
    | None ->
      let fk_schema = tables.(ti).Schema.fks.(fk) in
      let target_ti = Schema.table_index schema fk_schema.Schema.target in
      let fresh = tv ^ "__" ^ fk_schema.Schema.fkname in
      tvars := !tvars @ [ (fresh, target_ti) ];
      joins := !joins @ [ (tv, fk, fresh) ];
      require_join_parents tv ti fk fresh;
      fresh

  and require_join_parents ctv ti fk ptv =
    if not (Hashtbl.mem processed_joins (ctv, fk)) then begin
      Hashtbl.add processed_joins (ctv, fk) ();
      let jfam = prm.Model.tables.(ti).Model.join_families.(fk) in
      Array.iter
        (fun p ->
          match p with
          | Model.Own a -> need ctv a
          | Model.Foreign (_, b) -> need ptv b)
        jfam.Model.parents
    end
  in
  (* Seeds: selected attributes, plus the indicators of the query's own
     joins (a join with no selects still constrains the result size). *)
  List.iter
    (fun s ->
      let ti = List.assoc s.Query.sel_tv !tvars in
      need s.Query.sel_tv (Schema.attr_index tables.(ti) s.Query.sel_attr))
    q.Query.selects;
  List.iter
    (fun (ctv, fk, ptv) ->
      let ti = List.assoc ctv !tvars in
      require_join_parents ctv ti fk ptv)
    !joins;
  (* Fixpoint: pull in ancestors, materializing joins for cross-table
     parents. *)
  while not (Queue.is_empty worklist) do
    let tv, attr = Queue.pop worklist in
    let ti = List.assoc tv !tvars in
    let fam = prm.Model.tables.(ti).Model.attr_families.(attr) in
    Array.iter
      (fun p ->
        match p with
        | Model.Own b -> need tv b
        | Model.Foreign (f, b) ->
          let ptv = ensure_join tv f in
          need ptv b)
      fam.Model.parents
  done;
  { c_tvars = !tvars; c_joins = !joins; c_needed = List.rev !needed_order }

(* ---- skeleton keys -------------------------------------------------------- *)

let skeleton_key q =
  let tvars = List.map (fun (tv, tbl) -> tv ^ ":" ^ tbl) q.Query.tvars in
  let joins =
    List.map
      (fun j -> j.Query.child_tv ^ "." ^ j.Query.fk ^ "=" ^ j.Query.parent_tv)
      q.Query.joins
  in
  let sels =
    List.sort_uniq compare
      (List.map (fun s -> s.Query.sel_tv ^ "." ^ s.Query.sel_attr) q.Query.selects)
  in
  String.concat ";" tvars ^ "|" ^ String.concat ";" joins ^ "|"
  ^ String.concat ";" sels

(* ---- the compiled plan ----------------------------------------------------- *)

type binding = (int * Query.pred) list

(* Schedules are memoized per restricted-variable set: a binding's [Eq]
   (or singleton-mask) predicates slice those variables out of the
   factors, and the restricted shapes are all the planner sees.  The
   rendered order rides along so a traced memo hit never rebuilds the
   string. *)
type sched_entry = { sched : Ve.Schedule.t; order_str : string }

type t = {
  fingerprint : string;
  skeleton : string;
  schema : Schema.t;
  closure : closure;
  factors : Selest_prob.Factor.t list;  (* network construction order *)
  node_of_attr : (string * int, int) Hashtbl.t;  (* (tv, attr idx) -> node *)
  node_names : string array;  (* node id -> "tv.Attr" / "tv.fk=ptv" *)
  join_evidence : binding;  (* every closure join indicator = true *)
  schedules : (string, sched_entry) Hashtbl.t;
  (* Compiled bytecode programs, one per restricted-variable set (same
     key space as [schedules]).  The immutable assoc list is scanned
     lock-free on the hot path — [Bytecode.load] itself is the key test —
     and replaced under [mutex] on a miss. *)
  mutable programs : (string * Bytecode.program) list;
  mutex : Mutex.t;
  mutable hits : int;
  mutable misses : int;
}

let skeleton t = t.skeleton
let fingerprint t = t.fingerprint
let factors t = t.factors
let join_evidence t = t.join_evidence

let closure_tables t =
  let tables = Schema.tables t.schema in
  List.map (fun (tv, ti) -> (tv, tables.(ti).Schema.tname)) t.closure.c_tvars

let upward_closure t q =
  let tables = Schema.tables t.schema in
  let tvars =
    List.map (fun (tv, ti) -> (tv, tables.(ti).Schema.tname)) t.closure.c_tvars
  in
  let joins =
    List.map
      (fun (ctv, fk, ptv) ->
        let ti = List.assoc ctv t.closure.c_tvars in
        Query.join ~child:ctv ~fk:tables.(ti).Schema.fks.(fk).Schema.fkname
          ~parent:ptv)
      t.closure.c_joins
  in
  Query.create ~tvars ~joins ~selects:q.Query.selects ()

let scale t ~sizes =
  List.fold_left
    (fun acc (_, ti) -> acc *. float_of_int sizes.(ti))
    1.0 t.closure.c_tvars

let bind t q =
  List.map
    (fun s ->
      let ti =
        match List.assoc_opt s.Query.sel_tv t.closure.c_tvars with
        | Some ti -> ti
        | None ->
          invalid_arg
            (Printf.sprintf "Plan.bind: no slot for tuple variable %S"
               s.Query.sel_tv)
      in
      let attr = Schema.attr_index (Schema.tables t.schema).(ti) s.Query.sel_attr in
      match Hashtbl.find_opt t.node_of_attr (s.Query.sel_tv, attr) with
      | Some node -> (node, s.Query.pred)
      | None ->
        invalid_arg
          (Printf.sprintf "Plan.bind: no slot for %s.%s (different skeleton)"
             s.Query.sel_tv s.Query.sel_attr))
    q.Query.selects

(* ---- schedule memo --------------------------------------------------------- *)

let sched_key restricted = String.concat "," (List.map string_of_int restricted)

let sched_find t key =
  Mutex.lock t.mutex;
  let r = Hashtbl.find_opt t.schedules key in
  Mutex.unlock t.mutex;
  r

let sched_add t key entry =
  Mutex.lock t.mutex;
  if not (Hashtbl.mem t.schedules key) then Hashtbl.add t.schedules key entry;
  Mutex.unlock t.mutex

(* [count] separates the hot path (execute: bumps the domain-local
   schedule-memo counters and the plan's own hit/miss totals) from
   introspection ({!steps}), which must not skew them. *)
let schedule_of t ~count prep =
  let key = sched_key (Ve.restricted_vars prep) in
  Selest_obs.Span.with_ "ve.plan" (fun sp ->
      let note cached entry =
        if Selest_obs.Span.live sp then begin
          Selest_obs.Span.add sp "cached" cached;
          Selest_obs.Span.add sp "order" entry.order_str
        end
      in
      match sched_find t key with
      | Some entry ->
        if count then begin
          Selest_obs.Hotpath.order_hit ();
          Mutex.lock t.mutex;
          t.hits <- t.hits + 1;
          Mutex.unlock t.mutex
        end;
        note "hit" entry;
        entry.sched
      | None ->
        if count then begin
          Selest_obs.Hotpath.order_miss ();
          Mutex.lock t.mutex;
          t.misses <- t.misses + 1;
          Mutex.unlock t.mutex
        end;
        let sched = Ve.Schedule.plan ~keep:[||] (Ve.prepared_factors prep) in
        let entry =
          {
            sched;
            order_str =
              String.concat "," (List.map string_of_int sched.Ve.Schedule.order);
          }
        in
        sched_add t key entry;
        note "miss" entry;
        sched)

let schedule_stats t =
  Mutex.lock t.mutex;
  let r = (t.hits, t.misses) in
  Mutex.unlock t.mutex;
  r

(* ---- compiled bytecode programs --------------------------------------------- *)

(* A binding that names a join indicator explicitly would collide with
   the program's static slots; leave that (unusual) shape to the generic
   engine.  Top-level recursion (not a closure) so a warm execute
   allocates nothing while routing. *)
let rec no_join_nodes join_ev = function
  | [] -> true
  | (v, _) :: rest -> (not (List.mem_assoc v join_ev)) && no_join_nodes join_ev rest

let count_allowed mask =
  Array.fold_left (fun n ok -> if ok then n + 1 else n) 0 mask

let program_add t key prog =
  Mutex.lock t.mutex;
  let r =
    match List.assoc_opt key t.programs with
    | Some existing -> existing
    | None ->
      t.programs <- (key, prog) :: t.programs;
      prog
  in
  Mutex.unlock t.mutex;
  r

let program_for t binding =
  if not (no_join_nodes t.join_evidence binding) then None
  else
    (* Classify the binding's evidence shape by its merged allowed-value
       masks: one allowed value restricts (a value slot), two or more —
       including a full-domain mask — carry a mask slot.  The program key
       is the (value nodes, mask nodes) partition, so every range/set
       shape of a skeleton compiles exactly once. *)
    match Ve.merged_masks t.factors (binding @ t.join_evidence) with
    | None -> None (* contradictory binding: execute answers 0 without one *)
    | Some merged ->
      let eq = ref [] and mask = ref [] in
      List.iter
        (fun (v, m) ->
          if not (List.mem_assoc v t.join_evidence) then
            if count_allowed m = 1 then eq := v :: !eq else mask := v :: !mask)
        merged;
      let slots = List.sort compare !eq in
      let masked = List.sort compare !mask in
      let key =
        sched_key
          (List.sort_uniq compare (slots @ List.map fst t.join_evidence))
        ^ "/" ^ sched_key masked
      in
      Mutex.lock t.mutex;
      let existing = List.assoc_opt key t.programs in
      Mutex.unlock t.mutex;
      (match existing with
      | Some prog -> Some prog
      | None -> (
        (* Compile the program for this binding's shape against the
           memoized schedule (keyed by the restricted set alone: masked
           dimensions keep their factor shapes). *)
        match Ve.prepare t.factors (binding @ t.join_evidence) with
        | None -> None
        | Some prep ->
          let sched = schedule_of t ~count:false prep in
          let static =
            List.map
              (fun (node, pred) ->
                match pred with Query.Eq x -> (node, x) | _ -> assert false)
              t.join_evidence
          in
          let prog =
            Bytecode.compile ~factors:t.factors ~slots ~masked ~static
              ~order:sched.Ve.Schedule.order
          in
          Some (program_add t key prog)))

(* ---- compile / bind / execute ---------------------------------------------- *)

let execute_generic t binding =
  match Ve.prepare t.factors (binding @ t.join_evidence) with
  | None -> 0.0 (* contradictory binding: the event is empty *)
  | Some prep ->
    let sched = schedule_of t ~count:true prep in
    Ve.run prep ~order:sched.Ve.Schedule.order

let count_hit t =
  Selest_obs.Hotpath.order_hit ();
  Selest_obs.Hotpath.program_hit ();
  Mutex.lock t.mutex;
  t.hits <- t.hits + 1;
  Mutex.unlock t.mutex

let count_miss t =
  Selest_obs.Hotpath.order_miss ();
  Selest_obs.Hotpath.program_miss ();
  Mutex.lock t.mutex;
  t.misses <- t.misses + 1;
  Mutex.unlock t.mutex

(* No program matched the binding: compile one for its restricted set
   (counted as a memo miss, like a fresh schedule), then run it. *)
let execute_slow t binding =
  match program_for t binding with
  | None -> 0.0 (* contradictory binding: the event is empty *)
  | Some prog -> (
    count_miss t;
    let st = Bytecode.state_for prog in
    match Bytecode.load prog st binding with
    | `Ok ->
      Bytecode.run st;
      Bytecode.result st
    | `Contradiction -> 0.0
    | `No_match -> execute_generic t binding (* unreachable safety net *))

let rec execute_scan t binding progs =
  match progs with
  | [] -> execute_slow t binding
  | (_, prog) :: rest -> (
    let st = Bytecode.state_for prog in
    match Bytecode.load prog st binding with
    | `Ok ->
      count_hit t;
      Bytecode.run st;
      Bytecode.result st
    | `Contradiction -> 0.0 (* empty event; no buffer was touched *)
    | `No_match -> execute_scan t binding rest)

let execute t binding =
  if
    (* a per-request collect (EXPLAIN) needs the ve.* stage spans only
       the generic engine emits; a global trace log keeps the fast path *)
    Selest_obs.Span.collecting ()
    || not (no_join_nodes t.join_evidence binding)
  then execute_generic t binding
  else execute_scan t binding t.programs

let estimate t ~sizes q = execute t (bind t q) *. scale t ~sizes

let steps t q =
  match Ve.prepare t.factors (bind t q @ t.join_evidence) with
  | None -> []
  | Some prep -> (schedule_of t ~count:false prep).Ve.Schedule.steps

let compile prm q =
  Selest_obs.Span.with_ "plan.compile" (fun _ ->
      let schema = prm.Model.schema in
      let tables = Schema.tables schema in
      let c = compute_closure prm q in
      (* Node ids: needed attributes first, then join indicators. *)
      let node_ids = Hashtbl.create 32 in
      let next = ref 0 in
      List.iter
        (fun (tv, attr) ->
          Hashtbl.add node_ids (`Attr (tv, attr)) !next;
          incr next)
        c.c_needed;
      List.iter
        (fun (ctv, fk, _) ->
          Hashtbl.add node_ids (`Join (ctv, fk)) !next;
          incr next)
        c.c_joins;
      let attr_node tv attr =
        match Hashtbl.find_opt node_ids (`Attr (tv, attr)) with
        | Some id -> id
        | None ->
          invalid_arg "Plan: closure missed a parent node (internal error)"
      in
      (* Factors, in the order the network construction has always used
         (each family's factor is consed on, so the list ends up
         reversed) — preserved exactly for bit-identity with the
         pre-plan pipeline. *)
      let factors = ref [] in
      List.iter
        (fun (tv, attr) ->
          let ti = List.assoc tv c.c_tvars in
          let scope = Model.Scope.of_table schema ti in
          let fam = prm.Model.tables.(ti).Model.attr_families.(attr) in
          let parent_of_local = Hashtbl.create 8 in
          Array.iter
            (fun p ->
              let local = Model.Scope.local_id scope p in
              let node =
                match p with
                | Model.Own b -> attr_node tv b
                | Model.Foreign (f, b) ->
                  let _, _, ptv =
                    List.find (fun (ctv, f', _) -> ctv = tv && f' = f) c.c_joins
                  in
                  attr_node ptv b
              in
              Hashtbl.add parent_of_local local node)
            fam.Model.parents;
          let var_of local =
            if local = attr then attr_node tv attr
            else Hashtbl.find parent_of_local local
          in
          factors := Cpd.to_factor ~var_of ~child:attr fam.Model.cpd :: !factors)
        c.c_needed;
      List.iter
        (fun (ctv, fk, ptv) ->
          let ti = List.assoc ctv c.c_tvars in
          let scope = Model.Scope.of_table schema ti in
          let jfam = prm.Model.tables.(ti).Model.join_families.(fk) in
          let jid = Model.Scope.join_id scope fk in
          let parent_of_local = Hashtbl.create 8 in
          Array.iter
            (fun p ->
              let local = Model.Scope.local_id scope p in
              let node =
                match p with
                | Model.Own a -> attr_node ctv a
                | Model.Foreign (_, b) -> attr_node ptv b
              in
              Hashtbl.add parent_of_local local node)
            jfam.Model.parents;
          let var_of local =
            if local = jid then Hashtbl.find node_ids (`Join (ctv, fk))
            else Hashtbl.find parent_of_local local
          in
          factors := Cpd.to_factor ~var_of ~child:jid jfam.Model.cpd :: !factors)
        c.c_joins;
      (* Binding slots and human names for every node. *)
      let n_nodes = !next in
      let node_of_attr = Hashtbl.create 32 in
      let node_names = Array.make n_nodes "?" in
      List.iter
        (fun (tv, attr) ->
          let node = attr_node tv attr in
          let ti = List.assoc tv c.c_tvars in
          Hashtbl.replace node_of_attr (tv, attr) node;
          node_names.(node) <-
            tv ^ "." ^ tables.(ti).Schema.attrs.(attr).Schema.aname)
        c.c_needed;
      List.iter
        (fun (ctv, fk, ptv) ->
          let node = Hashtbl.find node_ids (`Join (ctv, fk)) in
          let ti = List.assoc ctv c.c_tvars in
          node_names.(node) <-
            ctv ^ "." ^ tables.(ti).Schema.fks.(fk).Schema.fkname ^ "=" ^ ptv)
        c.c_joins;
      let join_evidence =
        List.map
          (fun (ctv, fk, _) ->
            (Hashtbl.find node_ids (`Join (ctv, fk)), Query.Eq 1))
          c.c_joins
      in
      let t =
        {
          fingerprint = Model.fingerprint prm;
          skeleton = skeleton_key q;
          schema;
          closure = c;
          factors = !factors;
          node_of_attr;
          node_names;
          join_evidence;
          schedules = Hashtbl.create 4;
          programs = [];
          mutex = Mutex.create ();
          hits = 0;
          misses = 0;
        }
      in
      (* Seed the schedule memo — and the compiled bytecode program —
         with the compile query's own binding shape, so the first
         execute of the skeleton's common form is already a memo hit on
         the zero-allocation fast path.  A contradictory compile query
         has nothing to schedule (execute answers 0 without
         eliminating). *)
      let b0 = bind t q in
      (match Ve.prepare t.factors (b0 @ t.join_evidence) with
      | Some prep -> ignore (schedule_of t ~count:false prep)
      | None -> ());
      ignore (program_for t b0);
      t)

(* ---- pretty-printing -------------------------------------------------------- *)

let pp fmt t =
  let tables = Schema.tables t.schema in
  Format.fprintf fmt "plan %s@." t.skeleton;
  Format.fprintf fmt "  model fingerprint: %s@." t.fingerprint;
  Format.fprintf fmt "  closure tables:";
  List.iter
    (fun (tv, ti) -> Format.fprintf fmt " %s:%s" tv tables.(ti).Schema.tname)
    t.closure.c_tvars;
  Format.pp_print_newline fmt ();
  if t.closure.c_joins <> [] then begin
    Format.fprintf fmt "  joins:";
    List.iter
      (fun (ctv, fk, ptv) ->
        let ti = List.assoc ctv t.closure.c_tvars in
        Format.fprintf fmt " %s.%s=%s" ctv
          tables.(ti).Schema.fks.(fk).Schema.fkname ptv)
      t.closure.c_joins;
    Format.pp_print_newline fmt ()
  end;
  Format.fprintf fmt "  factors (%d):" (List.length t.factors);
  List.iter
    (fun f ->
      let cards = Selest_prob.Factor.cards f in
      Format.fprintf fmt " %s"
        (String.concat "x"
           (Array.to_list (Array.map string_of_int cards))))
    t.factors;
  Format.pp_print_newline fmt ();
  Format.fprintf fmt "  binding slots:";
  List.iter
    (fun (tv, attr) ->
      let node = Hashtbl.find t.node_of_attr (tv, attr) in
      Format.fprintf fmt " %s->%d" t.node_names.(node) node)
    t.closure.c_needed;
  Format.pp_print_newline fmt ();
  Format.fprintf fmt "  join evidence:";
  List.iter
    (fun (node, _) -> Format.fprintf fmt " %s" t.node_names.(node))
    t.join_evidence;
  Format.pp_print_newline fmt ();
  Mutex.lock t.mutex;
  let scheds =
    Hashtbl.fold (fun key e acc -> (key, e.sched) :: acc) t.schedules []
  in
  Mutex.unlock t.mutex;
  List.iter
    (fun (key, sched) ->
      Format.fprintf fmt "  schedule [restrict %s]: %a (var:entries)@."
        (if key = "" then "-" else key)
        Ve.Schedule.pp sched)
    (List.sort compare scheds)
