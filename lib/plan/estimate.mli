(** Selectivity estimation with a PRM (Sec. 3.3) — thin wrappers over the
    plan IR.

    Given a select–keyjoin query, the estimator (1) compiles a {!Plan.t}
    for the query's skeleton — upward closure (Def. 3.3), query-evaluation
    Bayesian network (Def. 3.5), binding slots, schedule memo; (2) binds
    the query's predicates; (3) executes the plan, computing the
    probability of the selects conjoined with {e every} closure join
    indicator being true; and (4) scales by the product of the closure
    tables' sizes:

    {[ size(q) ≈ Π |T_i| · P(selects, all J = true) ]}

    Every entry point here compiles (or reuses) a plan and executes it —
    callers with a long-lived skeleton should hold the {!Plan.t}
    themselves (the serve layer's plan cache does). *)

val upward_closure : Selest_prm.Model.t -> Selest_db.Query.t -> Selest_db.Query.t
(** The closed query: same selects, possibly more tuple variables and
    joins.  Idempotent; a no-op when the query already mentions every
    needed tuple variable (fresh variables are named
    ["<tv>__<fk-name>"]). *)

val prob : Selest_prm.Model.t -> Selest_db.Query.t -> float
(** P(selects ∧ all closure joins) under the PRM — the query's selectivity
    relative to the Cartesian product of the closure tables.  Contradictory
    predicates on one attribute describe an empty event: the result is
    [0.0], never an error. *)

val estimate : Selest_prm.Model.t -> sizes:int array -> Selest_db.Query.t -> float
(** Estimated result size; [sizes] holds each table's row count in schema
    order (see {!sizes_of_db}).  Compiles a fresh plan per call — the
    one-shot path. *)

val sizes_of_db : Selest_db.Database.t -> int array

val cached_estimator :
  Selest_prm.Model.t -> sizes:int array -> (Selest_db.Query.t -> float)
(** An estimation function that memoizes a compiled {!Plan.t} per query
    {e skeleton}: for all-equality queries it additionally computes the
    joint posterior of the selected attributes given the join evidence
    once, then answers every instantiation of the same skeleton by table
    lookup.  Equivalent to {!estimate} (same model, same numbers) but
    amortized over a suite.  Non-equality queries execute the cached plan
    directly.  Contradictory instantiations return [0.0]. *)

val prepared_estimator :
  Selest_prm.Model.t -> sizes:int array ->
  (Selest_db.Query.t -> unit) * (Selest_db.Query.t -> float)
(** [(prepare, estimate)] sharing one skeleton cache: [prepare q] compiles
    (and caches) the plan for [q]'s skeleton without estimating, so a
    workload runner can pay compilation before its timed region;
    [estimate] behaves exactly like {!cached_estimator}. *)

val estimate_nonkey :
  Selest_prm.Model.t -> sizes:int array ->
  Selest_db.Query.t * string * string -> Selest_db.Query.t * string * string -> float
(** [estimate_nonkey m ~sizes (q1, tv1, a1) (q2, tv2, a2)]: estimated size
    of joining [q1] and [q2] on the non-key equality [tv1.a1 = tv2.a2]
    (the Sec. 6 extension), by summing the product of the two sub-queries'
    estimates over the joined attribute's values.  The sub-queries must
    bind disjoint tuple variables. *)

val group_counts :
  Selest_prm.Model.t -> sizes:int array -> Selest_db.Query.t ->
  keys:(string * string) list -> (int array * float) list
(** Approximate [GROUP BY COUNT] (the Sec. 6 application): estimated result
    sizes of {e every} instantiation of the [keys] attributes under the
    query's joins and selects, computed from one inference pass.  Cells are
    returned in row-major order of the key domains (last key fastest); the
    estimates of all cells sum to the estimate of the un-grouped query. *)
