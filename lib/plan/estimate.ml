open Selest_db
open Selest_bn
module Model = Selest_prm.Model

let upward_closure prm q = Plan.upward_closure (Plan.compile prm q) q

let prob prm q =
  let plan = Plan.compile prm q in
  Plan.execute plan (Plan.bind plan q)

let sizes_of_db db = Array.map Table.size (Database.tables db)

let estimate prm ~sizes q =
  Selest_obs.Span.with_ "prm.estimate" (fun sp ->
      let plan = Plan.compile prm q in
      if Selest_obs.Span.live sp then begin
        Selest_obs.Span.add sp "factors"
          (string_of_int (List.length (Plan.factors plan)));
        Selest_obs.Span.add sp "tvars"
          (String.concat ";" (List.map fst (Plan.closure_tables plan)))
      end;
      Plan.estimate plan ~sizes q)

(* ---- suite-oriented cached estimator ----------------------------------- *)

(* A query suite asks thousands of equality instantiations over one
   skeleton.  The compiled plan is cached per skeleton; for all-equality
   suites the joint posterior of the selected attributes given the join
   evidence additionally answers every instantiation by table lookup. *)

type cache_entry = {
  plan : Plan.t;
  keep : int array;  (* select node ids, sorted *)
  node_of_sel : (string * string, int) Hashtbl.t;  (* (tv, attr) -> node id *)
  posterior : Selest_prob.Factor.t Lazy.t;  (* P(keep | joins) *)
  p_joins : float Lazy.t;
  scale : float;
}

let make_cached prm ~sizes =
  let cache : (string, cache_entry) Hashtbl.t = Hashtbl.create 16 in
  let entry_for q =
    let key = Plan.skeleton_key q in
    match Hashtbl.find_opt cache key with
    | Some e -> e
    | None ->
      let plan = Plan.compile prm q in
      let binding = Plan.bind plan q in
      let node_of_sel = Hashtbl.create 8 in
      List.iter2
        (fun s (node, _) ->
          Hashtbl.replace node_of_sel (s.Query.sel_tv, s.Query.sel_attr) node)
        q.Query.selects binding;
      let keep =
        Array.of_list (List.sort_uniq compare (List.map fst binding))
      in
      let factors = Plan.factors plan in
      let join_ev = Plan.join_evidence plan in
      let e =
        {
          plan;
          keep;
          node_of_sel;
          posterior = lazy (Ve.posterior factors join_ev ~keep);
          p_joins = lazy (Ve.prob_of_evidence factors join_ev);
          scale = Plan.scale plan ~sizes;
        }
      in
      Hashtbl.add cache key e;
      e
  in
  let est q =
    let entry = entry_for q in
    let all_eq =
      List.for_all
        (fun s -> match s.Query.pred with Query.Eq _ -> true | _ -> false)
        q.Query.selects
    in
    if not all_eq then Plan.estimate entry.plan ~sizes q
    else begin
      (* Look up the instantiation in the cached posterior.  Duplicate
         selects on one attribute must agree — disagreeing equalities
         describe an empty event, so the estimate is 0 (not last-wins). *)
      let values = Array.make (Array.length entry.keep) (-1) in
      let contradictory = ref false in
      List.iter
        (fun s ->
          let node =
            Hashtbl.find entry.node_of_sel (s.Query.sel_tv, s.Query.sel_attr)
          in
          let pos = ref 0 in
          while entry.keep.(!pos) <> node do incr pos done;
          match s.Query.pred with
          | Query.Eq v ->
            if values.(!pos) >= 0 && values.(!pos) <> v then
              contradictory := true
            else values.(!pos) <- v
          | _ -> assert false)
        q.Query.selects;
      if !contradictory then 0.0
      else
        let p_sel = Selest_prob.Factor.get (Lazy.force entry.posterior) values in
        Lazy.force entry.p_joins *. p_sel *. entry.scale
    end
  in
  (entry_for, est)

let cached_estimator prm ~sizes = snd (make_cached prm ~sizes)

let prepared_estimator prm ~sizes =
  let entry_for, est = make_cached prm ~sizes in
  ((fun q -> ignore (entry_for q)), est)

(* ---- non-key equality joins (Sec. 6) ----------------------------------- *)

let estimate_nonkey prm ~sizes (q1, tv1, a1) (q2, tv2, a2) =
  let schema = prm.Model.schema in
  List.iter
    (fun (tv, _) ->
      if List.mem_assoc tv q2.Query.tvars then
        invalid_arg "Estimate.estimate_nonkey: sub-queries share a tuple variable")
    q1.Query.tvars;
  let card_of q tv attr =
    let ts = Schema.find_table schema (Query.table_of q tv) in
    Selest_db.Value.card (Schema.attr ts attr).Schema.domain
  in
  let c1 = card_of q1 tv1 a1 and c2 = card_of q2 tv2 a2 in
  if c1 <> c2 then
    invalid_arg "Estimate.estimate_nonkey: joined attributes disagree on domain";
  let e1 = cached_estimator prm ~sizes and e2 = cached_estimator prm ~sizes in
  let acc = ref 0.0 in
  for v = 0 to c1 - 1 do
    let q1v = Query.with_selects q1 (Query.eq tv1 a1 v :: q1.Query.selects) in
    let q2v = Query.with_selects q2 (Query.eq tv2 a2 v :: q2.Query.selects) in
    acc := !acc +. (e1 q1v *. e2 q2v)
  done;
  !acc

let group_counts prm ~sizes q ~keys =
  let schema = prm.Model.schema in
  (* Seed the plan with one dummy equality per key so the closure pulls
     the key attributes (and their ancestors) in; evaluate with only the
     query's own selects plus the join evidence. *)
  let dummy_selects = List.map (fun (tv, attr) -> Query.eq tv attr 0) keys in
  let q_with_keys = Query.with_selects q (q.Query.selects @ dummy_selects) in
  let plan = Plan.compile prm q_with_keys in
  let binding = Plan.bind plan q_with_keys in
  let factors = Plan.factors plan in
  let join_ev = Plan.join_evidence plan in
  let n_own = List.length q.Query.selects in
  let own_ev = List.filteri (fun i _ -> i < n_own) binding in
  let key_nodes = List.filteri (fun i _ -> i >= n_own) binding |> List.map fst in
  let keep = Array.of_list (List.sort_uniq compare key_nodes) in
  if Array.length keep <> List.length keys then
    invalid_arg "Estimate.group_counts: duplicate key attributes";
  let evidence = own_ev @ join_ev in
  let posterior = Ve.posterior factors evidence ~keep in
  let p_evidence = Ve.prob_of_evidence factors evidence in
  let scale = Plan.scale plan ~sizes *. p_evidence in
  (* Map each key to its position in the (sorted) keep array. *)
  let positions =
    List.map
      (fun node ->
        let rec go i = if keep.(i) = node then i else go (i + 1) in
        go 0)
      key_nodes
  in
  let cards =
    List.map
      (fun (tv, attr) ->
        let ti = Schema.table_index schema (Query.table_of q_with_keys tv) in
        let ts = (Schema.tables schema).(ti) in
        Selest_db.Value.card (Schema.attr ts attr).Schema.domain)
      keys
  in
  let d = List.length keys in
  let cards_arr = Array.of_list cards in
  let positions_arr = Array.of_list positions in
  let out = ref [] in
  let cell = Array.make d 0 in
  let keep_cell = Array.make (Array.length keep) 0 in
  let rec go i =
    if i = d then begin
      Array.iteri (fun j pos -> keep_cell.(pos) <- cell.(j)) positions_arr;
      out :=
        (Array.copy cell, Selest_prob.Factor.get posterior keep_cell *. scale)
        :: !out
    end
    else
      for v = 0 to cards_arr.(i) - 1 do
        cell.(i) <- v;
        go (i + 1)
      done
  in
  go 0;
  List.rev !out
