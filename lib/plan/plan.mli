(** The compiled query plan IR: compile once, bind many.

    The paper's online phase is two-staged — build the query-evaluation
    Bayesian network from the upward-closed query (Defs. 3.3/3.5), then
    run inference — and everything that depends only on the {e query
    skeleton} (tuple variables, joins, the set of selected attributes) is
    identical across all bindings of that skeleton.  {!compile} performs
    that skeleton-shaped work once: upward closure, factor construction,
    binding-slot layout, join-evidence templating and elimination-order
    scheduling.  {!execute} then does only the per-request part: slice /
    mask the factors by the bound predicates and run the fused
    elimination kernels.

    A plan is an introspectable value — closure tables, factor shapes,
    binding slots, the elimination steps with their predicted
    intermediate sizes — rendered by {!pp} (the CLI explain mode) and
    the server's [EXPLAIN] verb.

    Plans are immutable apart from an internal schedule memo (the
    restricted-variable set of a binding determines the factor shapes,
    hence the schedule), which is mutex-guarded: one plan may be executed
    concurrently from many domains.  Schedule-memo hits and misses are
    counted in {!Selest_obs.Hotpath} ([order_hits] / [order_misses]);
    the bytecode path additionally counts its program-memo reuse there
    ([program_hits] / [program_misses]), which the server surfaces in
    [STATS] and as [selest_program_memo_{hits,misses}] in [METRICS]. *)

type t

type binding = (int * Selest_db.Query.pred) list
(** Per-request constants: the plan's select slots (node ids) paired with
    the bound predicates, in query-select order.  Obtain one with
    {!bind}. *)

val compile : Selest_prm.Model.t -> Selest_db.Query.t -> t
(** Build the plan for the query's skeleton: compute the upward closure,
    instantiate the query-evaluation network's factors, lay out binding
    slots for every selected attribute, template the join-indicator
    evidence, and seed the schedule memo with the compile query's own
    binding shape.  Any query with the same {!skeleton_key} can be bound
    against the result.  Wrapped in a ["plan.compile"] span. *)

val bind : t -> Selest_db.Query.t -> binding
(** Map the query's selects onto the plan's binding slots.  Raises
    [Invalid_argument] if the query selects an attribute the plan has no
    slot for (i.e. a different skeleton). *)

val execute : t -> binding -> float
(** P(selects ∧ all closure joins) under the model.  Bindings run on the
    plan's compiled bytecode program ({!Exec}): evidence-slot writes —
    one value per [Eq]-shaped slot, an allowed-value mask per range/set
    slot — then strided contractions over preallocated arenas and a
    scalar read-out, with zero GC allocation and no closure dispatch
    once the program for the binding's (value nodes, mask nodes) shape
    exists (the compile query's shape is pre-compiled).  Results are
    bit-identical to the generic engine.  Requests under a per-domain
    span collect ({!Selest_obs.Span.collecting}) take
    {!execute_generic}, so [EXPLAIN] keeps its staged spans; a
    process-wide trace log stays on the bytecode path, as do bindings
    that name a join indicator explicitly — those fall back to the
    generic engine.  Contradictory bindings — mutually exclusive
    predicates on one attribute — describe an empty event and return
    [0.0], never an error, and on the bytecode path they are detected in
    the evidence slots {e before} any buffer is touched. *)

val execute_generic : t -> binding -> float
(** The pre-bytecode engine: slice/mask fresh [Factor.t] values by the
    bound predicates and run the fused elimination kernels
    ([Ve.prepare] / [Ve.run]).  Same result, bit for bit — kept callable
    as the comparison baseline and as the path for traced requests. *)

val program_for : t -> binding -> Exec.program option
(** The compiled bytecode program for the binding's evidence shape —
    the (value nodes, mask nodes) partition of its merged predicates —
    compiling and memoizing it on first use.  [None] when the binding
    is not bytecode-eligible (an explicit join-indicator binding) or is
    contradictory (there is no schedule to lower).  Uncounted —
    introspection and benchmarks. *)

val estimate : t -> sizes:int array -> Selest_db.Query.t -> float
(** [execute] on [bind], scaled by the closure tables' sizes:
    size(q) ≈ Π |T_i| · P(selects, all J = true).  [sizes] holds each
    table's row count in schema order. *)

val skeleton_key : Selest_db.Query.t -> string
(** Deterministic rendering of the query's skeleton: tuple variables,
    joins, and the {e set} of selected attributes (predicate values
    excluded — they are binding, not skeleton).  Two queries with equal
    keys can share one compiled plan. *)

(** {2 Introspection} *)

val skeleton : t -> string
(** The {!skeleton_key} of the compile query. *)

val fingerprint : t -> string
(** The structure fingerprint of the model the plan was compiled for. *)

val closure_tables : t -> (string * string) list
(** The upward closure's tuple variables with their table names, in
    closure order — the Π|T_i| of the scaling factor. *)

val upward_closure : t -> Selest_db.Query.t -> Selest_db.Query.t
(** The closed query (Def. 3.3) for a query of this plan's skeleton:
    same selects, possibly more tuple variables and joins. *)

val factors : t -> Selest_prob.Factor.t list
(** The query-evaluation network's factors, in construction order. *)

val join_evidence : t -> binding
(** The [(join indicator, Eq 1)] template appended to every binding. *)

val scale : t -> sizes:int array -> float
(** Π |T_i| over the closure tables. *)

val steps : t -> Selest_db.Query.t -> Selest_bn.Ve.Schedule.step list
(** The elimination steps {!execute} uses for this query's binding, with
    the planner's predicted intermediate sizes (compare against the
    actual [max_factor_entries] of {!Selest_obs.Hotpath}).  Empty for a
    contradictory binding (nothing is eliminated — the estimate is 0). *)

val schedule_stats : t -> int * int
(** (hits, misses) of this plan's schedule memo. *)

val pp : Format.formatter -> t -> unit
(** Multi-line human rendering: closure, factor shapes, binding slots and
    the seeded schedule.  The per-step format is shared with the server's
    [EXPLAIN] verb ({!Selest_bn.Ve.Schedule.pp}). *)
