open Selest_db
module Factor = Selest_prob.Factor

(* The zero-allocation bytecode executor.

   [compile] lowers one restricted-variable shape of a plan — the
   factors, the evidence slots, and the memoized elimination order —
   into a flat array of steps over integer-indexed float buffers:

     Gather    copy the slice [factor | slot values] into an arena
               buffer (the compiled form of the evidence restricts);
               pure data movement, bit-identical to composing
               {!Factor.restrict} over the bound variables.
     Contract  one variable-elimination step: the fused
               multiply-then-sum odometer kernel of
               {!Factor.sum_out_product}, with the union scope, operand
               stride tables and output offsets all precomputed.

   Execution then reads the surviving buffers back with the same Kahan
   summation and left-fold product as [Ve.run]'s [total_of], so results
   are bit-identical to the generic engine.  All buffers are sized at
   compile time; a warm [load]+[run] performs no GC allocation and no
   closure dispatch. *)

(* ---- programs (symbolic, shareable across domains) ---------------------- *)

type buf =
  | Alias of float array  (* untouched factor: read the live table in place *)
  | Arena of int  (* intermediate buffer of this many entries *)

type gather = {
  g_src : float array;  (* live source table *)
  g_dst : int;  (* arena buffer id *)
  g_n_out : int;  (* entries copied = size of dst *)
  g_slots : int array;  (* arg slot per restricted dimension *)
  g_slot_strides : int array;  (* source stride per restricted dimension *)
  g_out_cards : int array;  (* cards of the kept dimensions *)
  g_out_strides : int array;  (* source stride per kept dimension *)
  (* Mask evidence (range/set predicates): kept dimensions whose values
     are filtered per request.  Disallowed entries are written as exact
     0.0 during the copy — the compiled form of
     {!Factor.observe_mask}, bit-identical because no arithmetic
     happens. *)
  g_mask_pos : int array;  (* positions within the kept dims *)
  g_mask_slots : int array;  (* mask slot id per masked dim *)
}

type contract = {
  c_dst : int;
  c_out_size : int;
  c_usize : int;  (* union-scope table size *)
  c_ucards : int array;  (* union-scope cards, last digit fastest *)
  c_ops : int array;  (* operand buffer ids, touching-list order *)
  c_op_strides : int array array;  (* per operand, per union digit (0 if absent) *)
  c_out_stride : int array;  (* per union digit; 0 at the eliminated var *)
}

type step = Gather of gather | Contract of contract

type program = {
  uid : int;  (* key of the per-domain state table *)
  bufs : buf array;
  steps : step array;
  finals : int array;  (* surviving buffer ids, factor-list order *)
  slot_of_node : int array;  (* node id -> arg slot, -1 if unrestricted *)
  slot_card : int array;
  static_slot : bool array;  (* prefilled at state creation, never reset *)
  static_val : int array;  (* value of each static slot, -1 otherwise *)
  mask_slot : bool array;  (* slot carries a per-request bool mask, not a value *)
  has_masks : bool;
  n_slots : int;
  max_dims : int;  (* widest odometer across all steps *)
  max_ops : int;  (* widest operand list across all contractions *)
}

let next_uid = Atomic.make 0

(* Local replicas of the factor-layout helpers ({!Factor.strides_of}
   semantics on symbolic card arrays). *)
let strides cards =
  let n = Array.length cards in
  let s = Array.make n 1 in
  for i = n - 2 downto 0 do
    s.(i) <- s.(i + 1) * cards.(i + 1)
  done;
  s

let remove_at arr i =
  Array.init (Array.length arr - 1) (fun j -> if j < i then arr.(j) else arr.(j + 1))

let mem_sorted = Factor.mem_sorted

(* Sorted merge of two (vars, cards) scopes — the symbolic twin of the
   union the fused kernel computes, same cardinality check. *)
let union_pair (avars, acards) (bvars, bcards) =
  let out = ref [] in
  let i = ref 0 and j = ref 0 in
  let na = Array.length avars and nb = Array.length bvars in
  while !i < na || !j < nb do
    if !i >= na then begin
      out := (bvars.(!j), bcards.(!j)) :: !out;
      incr j
    end
    else if !j >= nb then begin
      out := (avars.(!i), acards.(!i)) :: !out;
      incr i
    end
    else if avars.(!i) < bvars.(!j) then begin
      out := (avars.(!i), acards.(!i)) :: !out;
      incr i
    end
    else if avars.(!i) > bvars.(!j) then begin
      out := (bvars.(!j), bcards.(!j)) :: !out;
      incr j
    end
    else begin
      if acards.(!i) <> bcards.(!j) then
        invalid_arg "Exec: cardinality disagreement";
      out := (avars.(!i), acards.(!i)) :: !out;
      incr i;
      incr j
    end
  done;
  let pairs = Array.of_list (List.rev !out) in
  (Array.map fst pairs, Array.map snd pairs)

let position vars v =
  let n = Array.length vars in
  let rec find i = if i >= n then -1 else if vars.(i) = v then i else find (i + 1) in
  find 0

let compile ~factors ~slots ~masked ~static ~order =
  (* Cardinality of every node the factors mention (first mention wins;
     network construction guarantees agreement). *)
  let card_tbl = Hashtbl.create 32 in
  List.iter
    (fun f ->
      let fvars = Factor.vars f and fcards = Factor.cards f in
      Array.iteri
        (fun i v ->
          if not (Hashtbl.mem card_tbl v) then Hashtbl.add card_tbl v fcards.(i))
        fvars)
    factors;
  let card_of v =
    match Hashtbl.find_opt card_tbl v with
    | Some c -> c
    | None -> invalid_arg "Exec: evidence variable not in any factor"
  in
  List.iter
    (fun (v, x) ->
      if x < 0 || x >= card_of v then
        invalid_arg "Exec: static evidence value out of range")
    static;
  (* Arg-slot layout: request value slots first (caller order), then
     statics, then mask slots. *)
  let slot_nodes = slots @ List.map fst static @ masked in
  let n_slots = List.length slot_nodes in
  let max_node = List.fold_left max (-1) slot_nodes in
  let slot_of_node = Array.make (max_node + 1) (-1) in
  List.iteri
    (fun s v ->
      if v < 0 then invalid_arg "Exec: negative slot variable";
      if slot_of_node.(v) >= 0 then invalid_arg "Exec: duplicate slot variable";
      slot_of_node.(v) <- s)
    slot_nodes;
  let slot_card = Array.of_list (List.map card_of slot_nodes) in
  let n_request = List.length slots in
  let n_static = List.length static in
  let static_slot =
    Array.init n_slots (fun s -> s >= n_request && s < n_request + n_static)
  in
  let static_val = Array.make n_slots (-1) in
  List.iteri (fun i (_, x) -> static_val.(n_request + i) <- x) static;
  let mask_slot = Array.init n_slots (fun s -> s >= n_request + n_static) in
  let is_restricted v =
    v <= max_node && v >= 0 && slot_of_node.(v) >= 0
    && not mask_slot.(slot_of_node.(v))
  in
  let is_masked v =
    v <= max_node && v >= 0 && slot_of_node.(v) >= 0
    && mask_slot.(slot_of_node.(v))
  in
  (* Evidence application: one Gather per factor that mentions a
     restricted or masked variable (composed multi-dimensional slice
     with per-request zeroing of masked-out entries), a plain alias of
     the live table otherwise. *)
  let bufs = ref [] and n_bufs = ref 0 in
  let new_buf spec =
    let id = !n_bufs in
    incr n_bufs;
    bufs := spec :: !bufs;
    id
  in
  let steps = ref [] in
  let sym =
    ref
      (List.rev
         (List.fold_left
            (fun acc f ->
              let fvars = Factor.vars f and fcards = Factor.cards f in
              let fstrides = Factor.strides_of f in
              let fdata = Factor.unsafe_data f in
              let restricted = ref [] and kept = ref [] in
              Array.iteri
                (fun i v ->
                  if is_restricted v then restricted := i :: !restricted
                  else kept := i :: !kept)
                fvars;
              let restricted = Array.of_list (List.rev !restricted) in
              let kept = Array.of_list (List.rev !kept) in
              let has_mask_dim = Array.exists (fun i -> is_masked fvars.(i)) kept in
              if Array.length restricted = 0 && not has_mask_dim then
                (fvars, fcards, new_buf (Alias fdata)) :: acc
              else begin
                let out_vars = Array.map (fun i -> fvars.(i)) kept in
                let out_cards = Array.map (fun i -> fcards.(i)) kept in
                let n_out = Array.fold_left ( * ) 1 out_cards in
                let id = new_buf (Arena n_out) in
                let mask_pos = ref [] in
                Array.iteri
                  (fun k i -> if is_masked fvars.(i) then mask_pos := k :: !mask_pos)
                  kept;
                let mask_pos = Array.of_list (List.rev !mask_pos) in
                steps :=
                  Gather
                    {
                      g_src = fdata;
                      g_dst = id;
                      g_n_out = n_out;
                      g_slots = Array.map (fun i -> slot_of_node.(fvars.(i))) restricted;
                      g_slot_strides = Array.map (fun i -> fstrides.(i)) restricted;
                      g_out_cards = out_cards;
                      g_out_strides = Array.map (fun i -> fstrides.(i)) kept;
                      g_mask_pos = mask_pos;
                      g_mask_slots =
                        Array.map (fun k -> slot_of_node.(out_vars.(k))) mask_pos;
                    }
                  :: !steps;
                (out_vars, out_cards, id) :: acc
              end)
            [] factors))
  in
  (* Symbolic replay of [Ve.eliminate_step] over the memoized order,
     emitting one Contract per eliminated variable. *)
  List.iter
    (fun v ->
      let touching, rest =
        List.partition (fun (fvars, _, _) -> mem_sorted fvars v) !sym
      in
      match touching with
      | [] -> ()
      | (v0, c0, _) :: tl ->
        let uvars, ucards =
          List.fold_left
            (fun acc (fvars, fcards, _) -> union_pair acc (fvars, fcards))
            (v0, c0) tl
        in
        let n = Array.length uvars in
        let usize = Array.fold_left ( * ) 1 ucards in
        let p = position uvars v in
        if p < 0 then invalid_arg "Exec: eliminated variable lost (internal error)";
        let out_cards = remove_at ucards p in
        let out_vars = remove_at uvars p in
        let out_size = Array.fold_left ( * ) 1 out_cards in
        let out_strides_reduced = strides out_cards in
        let out_stride =
          Array.init n (fun i ->
              if i = p then 0
              else if i < p then out_strides_reduced.(i)
              else out_strides_reduced.(i - 1))
        in
        let ops = Array.of_list (List.map (fun (_, _, id) -> id) touching) in
        let op_strides =
          Array.of_list
            (List.map
               (fun (fvars, fcards, _) ->
                 let s = strides fcards in
                 Array.map
                   (fun uv ->
                     let q = position fvars uv in
                     if q < 0 then 0 else s.(q))
                   uvars)
               touching)
        in
        let dst = new_buf (Arena out_size) in
        steps :=
          Contract
            {
              c_dst = dst;
              c_out_size = out_size;
              c_usize = usize;
              c_ucards = ucards;
              c_ops = ops;
              c_op_strides = op_strides;
              c_out_stride = out_stride;
            }
          :: !steps;
        sym := (out_vars, out_cards, dst) :: rest)
    order;
  let steps = Array.of_list (List.rev !steps) in
  let max_dims = ref 0 and max_ops = ref 0 in
  Array.iter
    (function
      | Gather g ->
        if Array.length g.g_out_cards > !max_dims then
          max_dims := Array.length g.g_out_cards
      | Contract c ->
        if Array.length c.c_ucards > !max_dims then
          max_dims := Array.length c.c_ucards;
        if Array.length c.c_ops > !max_ops then max_ops := Array.length c.c_ops)
    steps;
  {
    uid = Atomic.fetch_and_add next_uid 1;
    bufs = Array.of_list (List.rev !bufs);
    steps;
    finals = Array.of_list (List.map (fun (_, _, id) -> id) !sym);
    slot_of_node;
    slot_card;
    static_slot;
    static_val;
    mask_slot;
    has_masks = masked <> [];
    n_slots;
    max_dims = !max_dims;
    max_ops = !max_ops;
  }

let n_steps prog = Array.length prog.steps

let arena_entries prog =
  Array.fold_left
    (fun acc -> function Alias _ -> acc | Arena n -> acc + n)
    0 prog.bufs

(* ---- per-domain execution state ----------------------------------------- *)

(* Steps specialized against a state's concrete buffers, so the hot loop
   never indirects through buffer ids. *)
type sstep =
  | SGather of {
      src : float array;
      dst : float array;
      n_out : int;
      slots : int array;
      slot_strides : int array;
      out_cards : int array;
      out_strides : int array;
      mask_pos : int array;  (* kept-dim positions filtered per request *)
      gmasks : bool array array;  (* the state's mask per masked dim *)
    }
  | SContract of {
      out : float array;
      out_size : int;
      usize : int;
      ucards : int array;
      datas : float array array;
      op_strides : int array array;
      out_stride : int array;
    }

type state = {
  args : int array;  (* one value per arg slot, -1 = unset *)
  masks : bool array array;  (* per-slot allowed-value mask (mask slots) *)
  seen : bool array;  (* slot mentioned by the current binding *)
  ssteps : sstep array;
  sfinals : float array array;
  digits : int array;  (* shared odometer digits, max_dims wide *)
  idxs : int array;  (* shared operand indices, max_ops wide *)
  result : float array;  (* 1-cell read-out *)
}

let build_state prog =
  let bufs =
    Array.map (function Alias a -> a | Arena n -> Array.make n 0.0) prog.bufs
  in
  let args = Array.make prog.n_slots (-1) in
  for s = 0 to prog.n_slots - 1 do
    if prog.static_slot.(s) then args.(s) <- prog.static_val.(s)
  done;
  let masks =
    Array.init prog.n_slots (fun s ->
        if prog.static_slot.(s) then [||] else Array.make prog.slot_card.(s) true)
  in
  let ssteps =
    Array.map
      (function
        | Gather g ->
          SGather
            {
              src = g.g_src;
              dst = bufs.(g.g_dst);
              n_out = g.g_n_out;
              slots = g.g_slots;
              slot_strides = g.g_slot_strides;
              out_cards = g.g_out_cards;
              out_strides = g.g_out_strides;
              mask_pos = g.g_mask_pos;
              gmasks = Array.map (fun s -> masks.(s)) g.g_mask_slots;
            }
        | Contract c ->
          SContract
            {
              out = bufs.(c.c_dst);
              out_size = c.c_out_size;
              usize = c.c_usize;
              ucards = c.c_ucards;
              datas = Array.map (fun id -> bufs.(id)) c.c_ops;
              op_strides = c.c_op_strides;
              out_stride = c.c_out_stride;
            })
      prog.steps
  in
  {
    args;
    masks;
    seen = Array.make prog.n_slots false;
    ssteps;
    sfinals = Array.map (fun id -> bufs.(id)) prog.finals;
    digits = Array.make prog.max_dims 0;
    idxs = Array.make prog.max_ops 0;
    result = [| 0.0 |];
  }

(* One state per (domain, program): arenas are written in place, so a
   state must never be shared across domains — mirrored on the existing
   one-active-inference-per-domain contract of the scratch pool. *)
let dls_states : (int, state) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let state_for prog =
  let tbl = Domain.DLS.get dls_states in
  match Hashtbl.find tbl prog.uid with
  | st -> st
  | exception Not_found ->
    let st = build_state prog in
    Hashtbl.add tbl prog.uid st;
    st

(* ---- load ---------------------------------------------------------------- *)

(* Top-level recursion (not a local closure) so a warm load allocates
   nothing.  Validation mirrors [Ve.merged_masks]: every value is
   range-checked in binding order (even past a contradiction), and the
   contradiction verdict is only delivered after the whole binding has
   been walked. *)
let rec load_binding prog args contradicted binding =
  match binding with
  | [] -> if contradicted then `Contradiction else check_filled prog args 0
  | (node, Query.Eq x) :: rest ->
    if node < 0 || node >= Array.length prog.slot_of_node then `No_match
    else begin
      let s = prog.slot_of_node.(node) in
      if s < 0 then `No_match
      else if x < 0 || x >= prog.slot_card.(s) then
        invalid_arg "Ve: evidence value out of range"
      else begin
        let cur = args.(s) in
        if cur < 0 then begin
          args.(s) <- x;
          load_binding prog args contradicted rest
        end
        else if cur = x then load_binding prog args contradicted rest
        else load_binding prog args true rest
      end
    end
  | _ :: _ -> `No_match

and check_filled prog args s =
  if s >= prog.n_slots then `Ok
  else if args.(s) < 0 then `No_match
  else check_filled prog args (s + 1)

(* General path: bindings with range/set predicates (or programs with
   mask slots).  Predicates merge into per-slot allowed-value masks —
   the executor's twin of [Ve.merged_masks] — and the final sweep
   classifies each slot by its allowed count: 1 = value slot, >=2 =
   mask slot.  Any disagreement with the program's own slot kinds is a
   shape mismatch ([`No_match]); the caller falls back to compiling the
   binding's exact shape. *)

let rec binding_all_eq = function
  | [] -> true
  | (_, Query.Eq _) :: rest -> binding_all_eq rest
  | _ :: _ -> false

let rec check_values card = function
  | [] -> ()
  | x :: rest ->
    if x < 0 || x >= card then invalid_arg "Ve: evidence value out of range"
    else check_values card rest

let check_pred card pred =
  match pred with
  | Query.Eq x ->
    if x < 0 || x >= card then invalid_arg "Ve: evidence value out of range"
  | Query.In_set xs -> check_values card xs
  | Query.Range (lo, hi) ->
    if lo < 0 || lo >= card || hi < 0 || hi >= card then
      invalid_arg "Ve: evidence value out of range"

let rec load_masked prog st binding =
  match binding with
  | [] -> sweep_slots prog st false 0
  | (node, pred) :: rest ->
    if node < 0 || node >= Array.length prog.slot_of_node then `No_match
    else begin
      let s = prog.slot_of_node.(node) in
      if s < 0 || prog.static_slot.(s) then `No_match
      else begin
        let card = prog.slot_card.(s) in
        check_pred card pred;
        let m = st.masks.(s) in
        if st.seen.(s) then
          for x = 0 to card - 1 do
            if m.(x) && not (Query.pred_holds pred x) then m.(x) <- false
          done
        else begin
          st.seen.(s) <- true;
          for x = 0 to card - 1 do
            m.(x) <- Query.pred_holds pred x
          done
        end;
        load_masked prog st rest
      end
    end

(* Classify every slot once the whole binding is merged.  Contradiction
   is only delivered after all slots check out shape-wise; either
   verdict ends at 0.0, so the precedence is immaterial — this order
   keeps the fallback path exercised consistently. *)
and sweep_slots prog st contradicted s =
  if s >= prog.n_slots then
    if contradicted then `Contradiction else `Ok
  else if prog.static_slot.(s) then sweep_slots prog st contradicted (s + 1)
  else if not st.seen.(s) then `No_match
  else begin
    let m = st.masks.(s) in
    let count = ref 0 and first = ref (-1) in
    for x = 0 to Array.length m - 1 do
      if m.(x) then begin
        incr count;
        if !first < 0 then first := x
      end
    done;
    if !count = 0 then sweep_slots prog st true (s + 1)
    else if !count = 1 then
      if prog.mask_slot.(s) then `No_match
      else begin
        st.args.(s) <- !first;
        sweep_slots prog st contradicted (s + 1)
      end
    else if prog.mask_slot.(s) then sweep_slots prog st contradicted (s + 1)
    else `No_match
  end

let load prog st binding =
  let args = st.args in
  for s = 0 to prog.n_slots - 1 do
    if not prog.static_slot.(s) then args.(s) <- -1
  done;
  if (not prog.has_masks) && binding_all_eq binding then
    load_binding prog args false binding
  else begin
    Array.fill st.seen 0 prog.n_slots false;
    load_masked prog st binding
  end

(* ---- run ----------------------------------------------------------------- *)

let run st =
  let ssteps = st.ssteps in
  let digits = st.digits and idxs = st.idxs and args = st.args in
  for si = 0 to Array.length ssteps - 1 do
    match ssteps.(si) with
    | SGather g ->
      let src = g.src and dst = g.dst in
      let slots = g.slots and slot_strides = g.slot_strides in
      let out_cards = g.out_cards and out_strides = g.out_strides in
      let base = ref 0 in
      for k = 0 to Array.length slots - 1 do
        base := !base + (args.(slots.(k)) * slot_strides.(k))
      done;
      let nd = Array.length out_cards in
      Array.fill digits 0 nd 0;
      let isrc = ref !base in
      let n_out = g.n_out in
      let mask_pos = g.mask_pos and gmasks = g.gmasks in
      let nmask = Array.length mask_pos in
      if nmask = 0 then
        for j = 0 to n_out - 1 do
          dst.(j) <- src.(!isrc);
          if j < n_out - 1 then begin
            let c = ref (nd - 1) in
            let carry = ref true in
            while !carry do
              let d = digits.(!c) + 1 in
              if d = out_cards.(!c) then begin
                digits.(!c) <- 0;
                isrc := !isrc - ((out_cards.(!c) - 1) * out_strides.(!c));
                decr c
              end
              else begin
                digits.(!c) <- d;
                isrc := !isrc + out_strides.(!c);
                carry := false
              end
            done
          end
        done
      else
        (* Masked-out entries are written as exact 0.0 — the compiled
           form of {!Factor.observe_mask}; no arithmetic happens, so the
           copy is bit-identical to the generic engine's zeroed
           factor. *)
        for j = 0 to n_out - 1 do
          let allowed = ref true in
          for k = 0 to nmask - 1 do
            if not gmasks.(k).(digits.(mask_pos.(k))) then allowed := false
          done;
          dst.(j) <- (if !allowed then src.(!isrc) else 0.0);
          if j < n_out - 1 then begin
            let c = ref (nd - 1) in
            let carry = ref true in
            while !carry do
              let d = digits.(!c) + 1 in
              if d = out_cards.(!c) then begin
                digits.(!c) <- 0;
                isrc := !isrc - ((out_cards.(!c) - 1) * out_strides.(!c));
                decr c
              end
              else begin
                digits.(!c) <- d;
                isrc := !isrc + out_strides.(!c);
                carry := false
              end
            done
          end
        done
    | SContract cn ->
      Selest_obs.Hotpath.kernel ~entries:cn.usize ~out:cn.out_size;
      let out = cn.out and datas = cn.datas in
      let ucards = cn.ucards and op_strides = cn.op_strides in
      let out_stride = cn.out_stride in
      let usize = cn.usize in
      let k = Array.length datas in
      let n = Array.length ucards in
      Array.fill out 0 cn.out_size 0.0;
      Array.fill digits 0 n 0;
      Array.fill idxs 0 k 0;
      let iout = ref 0 in
      for u = 0 to usize - 1 do
        let prod = ref datas.(0).(idxs.(0)) in
        for j = 1 to k - 1 do
          prod := !prod *. datas.(j).(idxs.(j))
        done;
        out.(!iout) <- out.(!iout) +. !prod;
        if u < usize - 1 then begin
          let c = ref (n - 1) in
          let carry = ref true in
          while !carry do
            let d = digits.(!c) + 1 in
            if d = ucards.(!c) then begin
              digits.(!c) <- 0;
              let back = ucards.(!c) - 1 in
              for j = 0 to k - 1 do
                idxs.(j) <- idxs.(j) - (back * op_strides.(j).(!c))
              done;
              iout := !iout - (back * out_stride.(!c));
              decr c
            end
            else begin
              digits.(!c) <- d;
              for j = 0 to k - 1 do
                idxs.(j) <- idxs.(j) + op_strides.(j).(!c)
              done;
              iout := !iout + out_stride.(!c);
              carry := false
            end
          done
        end
      done
  done;
  (* Read-out: Kahan total per surviving buffer ({!Selest_util.Arrayx.sum}
     inlined), product folded left from 1.0 — the [total_of] of [Ve.run]. *)
  let finals = st.sfinals in
  let acc = ref 1.0 in
  for fi = 0 to Array.length finals - 1 do
    let a = finals.(fi) in
    let s = ref 0.0 and c = ref 0.0 in
    for i = 0 to Array.length a - 1 do
      let y = a.(i) -. !c in
      let t = !s +. y in
      c := t -. !s -. y;
      s := t
    done;
    acc := !acc *. !s
  done;
  st.result.(0) <- !acc

let result st = st.result.(0)
