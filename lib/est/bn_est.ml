open Selest_db
open Selest_bn

let name_for = function Cpd.Trees -> "PRM(tree)" | Cpd.Tables -> "PRM(table)"

let build ~table ?attrs ~budget_bytes ?(kind = Cpd.Trees) ?(rule = Learn.Ssn) ?(seed = 0) db =
  let tbl = Database.table db table in
  let ts = Table.schema tbl in
  let attr_names =
    match attrs with
    | Some l -> l
    | None -> Array.to_list (Array.map (fun a -> a.Schema.aname) ts.Schema.attrs)
  in
  let attr_idx = List.map (Schema.attr_index ts) attr_names in
  let data_all = Data.of_table tbl in
  let data =
    (* Restrict to the modelled attribute subset. *)
    let sel = Array.of_list attr_idx in
    Data.create
      ~names:(Array.map (fun i -> data_all.Data.names.(i)) sel)
      ~cards:(Array.map (fun i -> data_all.Data.cards.(i)) sel)
      ~ordinal:(Array.map (fun i -> data_all.Data.ordinal.(i)) sel)
      (Array.map (fun i -> data_all.Data.cols.(i)) sel)
  in
  let cfg = { (Learn.default_config ~budget_bytes) with Learn.kind; rule; seed } in
  let result = Learn.learn ~config:cfg data in
  let bn = result.Learn.bn in
  let var_of_attr = List.mapi (fun i aname -> (aname, i)) attr_names in
  let n = float_of_int (Table.size tbl) in
  let prob = Bn.cached_prob bn in
  let estimate q =
    Exec.validate db q;
    (match (q.Query.tvars, q.Query.joins) with
    | [ (_, t) ], [] when t = table -> ()
    | _ ->
      raise (Estimator.Unsupported "single-table BN estimator: single table, no joins"));
    let evidence =
      List.map
        (fun s ->
          match List.assoc_opt s.Query.sel_attr var_of_attr with
          | Some v -> (v, s.Query.pred)
          | None ->
            raise
              (Estimator.Unsupported
                 ("BN estimator does not model attribute " ^ s.Query.sel_attr)))
        q.Query.selects
    in
    n *. prob evidence
  in
  { Estimator.name = name_for kind; bytes = result.Learn.bytes; prepare = ignore; estimate }
