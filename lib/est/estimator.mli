(** The common interface every selectivity estimator implements.

    An estimator is built offline from a database under a storage budget
    (the paper's two-phase architecture, Sec. 1); online it maps a
    select–keyjoin query to an estimated result size.  The [bytes] field is
    the model's storage under the library-wide accounting
    ({!Selest_util.Bytesize}), the x-axis of every accuracy-vs-storage
    figure. *)

type t = {
  name : string;
  bytes : int;
  prepare : Selest_db.Query.t -> unit;
      (** Pay any per-skeleton work (plan compilation, posterior
          materialization) for the given query's shape up front, so a
          suite runner keeps it out of the per-query path.  A no-op for
          estimators with no compiled state; always optional — [estimate]
          must work without it. *)
  estimate : Selest_db.Query.t -> float;
}

exception Unsupported of string
(** Raised by [estimate] when a query is outside the estimator's supported
    class (e.g. a join query against a single-table histogram, or a sample
    of a join asked about a table it cannot debias).  The experiment
    harness treats this as an error, never as a zero estimate. *)

val adjusted_relative_error : truth:float -> estimate:float -> float
(** The paper's error metric: [|truth - estimate| / max 1 truth], as a
    percentage. *)
