open Selest_util
open Selest_db

let bytes_for ~rows ~n_attrs = Bytesize.values (rows * n_attrs)

(* Tables reachable from [base] through foreign keys, with the composed
   row-resolution map per base row. *)
let reach_maps db base_ti =
  let schema = Database.schema db in
  let base_tbl = Database.table_at db base_ti in
  let maps : (int, int array) Hashtbl.t = Hashtbl.create 8 in
  Hashtbl.add maps base_ti (Array.init (Table.size base_tbl) (fun i -> i));
  let progress = ref true in
  while !progress do
    progress := false;
    Array.iteri
      (fun ti tbl ->
        match Hashtbl.find_opt maps ti with
        | None -> ()
        | Some rows ->
          let ts = Table.schema tbl in
          Array.iteri
            (fun fi f ->
              let target_ti = Schema.table_index schema f.Schema.target in
              if not (Hashtbl.mem maps target_ti) then begin
                let fk = Table.fk_col tbl fi in
                Hashtbl.add maps target_ti (Array.map (fun r -> fk.(r)) rows);
                progress := true
              end)
            ts.Schema.fks)
      (Database.tables db)
  done;
  maps

let pick_base db =
  let n = Schema.n_tables (Database.schema db) in
  let best = ref (0, 0) in
  for ti = 0 to n - 1 do
    let cover = Hashtbl.length (reach_maps db ti) in
    let _, c0 = !best in
    if cover > c0 then best := (ti, cover)
  done;
  fst !best

let build ~rows ~seed ?attrs ?base db =
  let base_ti =
    match base with
    | None -> pick_base db
    | Some name -> Schema.table_index (Database.schema db) name
  in
  let base_tbl = Database.table_at db base_ti in
  let base_name = Table.name base_tbl in
  let maps = reach_maps db base_ti in
  let k = max 1 (min rows (Table.size base_tbl)) in
  let rng = Rng.create (seed lxor 0x5A17) in
  let picked = Rng.sample_without_replacement rng k (Table.size base_tbl) in
  let covered_attr tname aname =
    match attrs with None -> true | Some l -> List.mem (tname, aname) l
  in
  (* Stored sample: per covered (table, attr), the k resolved values. *)
  let stored : (string * string, int array) Hashtbl.t = Hashtbl.create 32 in
  let n_stored = ref 0 in
  Hashtbl.iter
    (fun ti rowmap ->
      let tbl = Database.table_at db ti in
      let ts = Table.schema tbl in
      Array.iteri
        (fun ai a ->
          if covered_attr ts.Schema.tname a.Schema.aname then begin
            let col = Table.col tbl ai in
            let values = Array.map (fun b -> col.(rowmap.(b))) picked in
            Hashtbl.add stored (ts.Schema.tname, a.Schema.aname) values;
            incr n_stored
          end)
        ts.Schema.attrs)
    maps;
  let bytes = bytes_for ~rows:k ~n_attrs:!n_stored in
  let estimate q =
    Exec.validate db q;
    (match Exec.single_base db q with
    | Some tv when Query.table_of q tv = base_name -> ()
    | _ ->
      raise
        (Estimator.Unsupported
           (Printf.sprintf "SAMPLE: query is not rooted at the sampled base table %s"
              base_name)));
    let sel_columns =
      List.map
        (fun s ->
          let tname = Query.table_of q s.Query.sel_tv in
          match Hashtbl.find_opt stored (tname, s.Query.sel_attr) with
          | Some col -> (col, s.Query.pred)
          | None ->
            raise
              (Estimator.Unsupported
                 (Printf.sprintf "SAMPLE does not store %s.%s" tname s.Query.sel_attr)))
        q.Query.selects
    in
    let hits = ref 0 in
    for i = 0 to k - 1 do
      if List.for_all (fun (col, pred) -> Query.pred_holds pred col.(i)) sel_columns then
        incr hits
    done;
    float_of_int !hits /. float_of_int k *. float_of_int (Table.size base_tbl)
  in
  { Estimator.name = "SAMPLE"; bytes; prepare = ignore; estimate }
