open Selest_prm
module Estimate = Selest_plan.Estimate

let of_model ~name model ~sizes =
  let prepare, estimate = Estimate.prepared_estimator model ~sizes in
  { Estimator.name; bytes = Model.size_bytes model; prepare; estimate }

let build_with ~name cfg db =
  let result = Learn.learn ~config:cfg db in
  let sizes = Estimate.sizes_of_db db in
  let prepare, estimate = Estimate.prepared_estimator result.Learn.model ~sizes in
  { Estimator.name; bytes = result.Learn.bytes; prepare; estimate }

let build ~budget_bytes ?(kind = Selest_bn.Cpd.Trees) ?(rule = Selest_bn.Learn.Ssn)
    ?(seed = 0) db =
  let cfg = { (Learn.default_config ~budget_bytes) with Learn.kind; rule; seed } in
  build_with ~name:"PRM" cfg db

let build_bn_uj ~budget_bytes ?(kind = Selest_bn.Cpd.Trees) ?(rule = Selest_bn.Learn.Ssn)
    ?(seed = 0) db =
  let cfg = { (Learn.bn_uj_config ~budget_bytes) with Learn.kind; rule; seed } in
  build_with ~name:"BN+UJ" cfg db
