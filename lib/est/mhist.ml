open Selest_util
open Selest_db
open Selest_prob

type bucket = {
  lo : int array;  (* inclusive, per dim *)
  hi : int array;  (* inclusive, per dim *)
  count : float;
}

let n_buckets_for ~budget_bytes ~dims =
  max 1 (budget_bytes / Bytesize.values ((2 * dims) + 1))

let cells_in b =
  Array.fold_left ( * ) 1 (Array.mapi (fun i hi -> hi - b.lo.(i) + 1) b.hi)

(* Marginal frequency vector of [joint] inside bucket [b] along [dim]. *)
let marginal_in joint cards b dim =
  let d = Array.length cards in
  let extent = b.hi.(dim) - b.lo.(dim) + 1 in
  let m = Array.make extent 0.0 in
  (* Iterate the bucket's cells with an odometer over the box. *)
  let pos = Array.copy b.lo in
  let values = Array.make d 0 in
  let continue = ref true in
  while !continue do
    Array.blit pos 0 values 0 d;
    m.(pos.(dim) - b.lo.(dim)) <-
      m.(pos.(dim) - b.lo.(dim)) +. Contingency.get joint values;
    (* advance *)
    let k = ref (d - 1) in
    let carry = ref true in
    while !carry && !k >= 0 do
      if pos.(!k) < b.hi.(!k) then begin
        pos.(!k) <- pos.(!k) + 1;
        carry := false
      end
      else begin
        pos.(!k) <- b.lo.(!k);
        decr k
      end
    done;
    if !carry then continue := false
  done;
  m

let sse m lo hi =
  (* Sum of squared deviations from the mean over m.(lo..hi). *)
  let n = hi - lo + 1 in
  if n <= 0 then 0.0
  else begin
    let sum = ref 0.0 in
    for i = lo to hi do
      sum := !sum +. m.(i)
    done;
    let mean = !sum /. float_of_int n in
    let acc = ref 0.0 in
    for i = lo to hi do
      acc := !acc +. ((m.(i) -. mean) *. (m.(i) -. mean))
    done;
    !acc
  end

(* Best binary cut of the marginal vector: returns (cut_after_index,
   variance_reduction); the cut is in bucket-local coordinates. *)
let best_cut m =
  let n = Array.length m in
  if n < 2 then None
  else begin
    let whole = sse m 0 (n - 1) in
    let best = ref None in
    for cut = 0 to n - 2 do
      let red = whole -. (sse m 0 cut +. sse m (cut + 1) (n - 1)) in
      match !best with
      | Some (_, r0) when r0 >= red -> ()
      | _ -> best := Some (cut, red)
    done;
    !best
  end

let count_in joint cards b =
  ignore cards;
  let d = Array.length b.lo in
  let pos = Array.copy b.lo in
  let values = Array.make d 0 in
  let acc = ref 0.0 in
  let continue = ref true in
  while !continue do
    Array.blit pos 0 values 0 d;
    acc := !acc +. Contingency.get joint values;
    let k = ref (d - 1) in
    let carry = ref true in
    while !carry && !k >= 0 do
      if pos.(!k) < b.hi.(!k) then begin
        pos.(!k) <- pos.(!k) + 1;
        carry := false
      end
      else begin
        pos.(!k) <- b.lo.(!k);
        decr k
      end
    done;
    if !carry then continue := false
  done;
  !acc

let build ~table ~attrs ~budget_bytes db =
  let tbl = Database.table db table in
  let ts = Table.schema tbl in
  let attr_idx = List.map (Schema.attr_index ts) attrs in
  let cards =
    Array.of_list (List.map (fun ai -> Value.card ts.Schema.attrs.(ai).Schema.domain) attr_idx)
  in
  let cols = Array.of_list (List.map (fun ai -> Table.col tbl ai) attr_idx) in
  let joint = Contingency.count ~cards cols in
  let d = Array.length cards in
  let max_buckets = n_buckets_for ~budget_bytes ~dims:d in
  let root =
    {
      lo = Array.make d 0;
      hi = Array.map (fun c -> c - 1) cards;
      count = Contingency.total joint;
    }
  in
  (* Each bucket carries its precomputed best split so unchanged buckets
     are never rescanned. *)
  let best_split_of b =
    if cells_in b <= 1 then None
    else begin
      let best = ref None in
      for dim = 0 to d - 1 do
        if b.hi.(dim) > b.lo.(dim) then begin
          let m = marginal_in joint cards b dim in
          match best_cut m with
          | Some (cut, red) when red > 0.0 -> (
            match !best with
            | Some (_, _, r0) when r0 >= red -> ()
            | _ -> best := Some (dim, cut, red))
          | _ -> ()
        end
      done;
      !best
    end
  in
  let buckets = ref [ (root, best_split_of root) ] in
  let continue = ref true in
  while !continue && List.length !buckets < max_buckets do
    (* MHIST-2: the (bucket, dim, cut) with the largest variance
       reduction of the dimension's marginal. *)
    let best = ref None in
    List.iter
      (fun (b, split) ->
        match split with
        | Some (dim, cut, red) -> (
          match !best with
          | Some (_, _, _, r0) when r0 >= red -> ()
          | _ -> best := Some (b, dim, cut, red))
        | None -> ())
      !buckets;
    match !best with
    | None -> continue := false
    | Some (b, dim, cut, _) ->
      let mid = b.lo.(dim) + cut in
      let left_hi = Array.copy b.hi in
      left_hi.(dim) <- mid;
      let right_lo = Array.copy b.lo in
      right_lo.(dim) <- mid + 1;
      let left = { lo = Array.copy b.lo; hi = left_hi; count = 0.0 } in
      let right = { lo = right_lo; hi = Array.copy b.hi; count = 0.0 } in
      let left = { left with count = count_in joint cards left } in
      let right = { right with count = count_in joint cards right } in
      buckets :=
        (left, best_split_of left) :: (right, best_split_of right)
        :: List.filter (fun (x, _) -> x != b) !buckets
  done;
  let buckets = Array.of_list (List.map fst !buckets) in
  let bytes = Bytesize.values (Array.length buckets * ((2 * d) + 1)) in
  let attr_dim =
    List.mapi (fun i aname -> (aname, i)) attrs
  in
  let estimate q =
    Exec.validate db q;
    (match (q.Query.tvars, q.Query.joins) with
    | [ (_, t) ], [] when t = table -> ()
    | _ ->
      raise (Estimator.Unsupported "MHIST covers a single table and no joins"));
    (* Per-dimension allowed ranges; a select may contribute several
       disjoint ranges (In_set), whose estimates add up. *)
    let ranges_per_dim = Array.init d (fun i -> [ (0, cards.(i) - 1) ]) in
    List.iter
      (fun s ->
        match List.assoc_opt s.Query.sel_attr attr_dim with
        | None ->
          raise
            (Estimator.Unsupported ("MHIST does not cover attribute " ^ s.Query.sel_attr))
        | Some dim ->
          let rs =
            match s.Query.pred with
            | Query.Eq v -> [ (v, v) ]
            | Query.Range (lo, hi) -> [ (lo, hi) ]
            | Query.In_set vs -> List.map (fun v -> (v, v)) vs
          in
          (* Intersect with existing ranges (multiple selects on one
             attribute conjoin). *)
          ranges_per_dim.(dim) <-
            List.concat_map
              (fun (alo, ahi) ->
                List.filter_map
                  (fun (blo, bhi) ->
                    let lo = max alo blo and hi = min ahi bhi in
                    if lo <= hi then Some (lo, hi) else None)
                  rs)
              ranges_per_dim.(dim))
      q.Query.selects;
    (* Sum the uniform-spread overlap over all buckets and range choices. *)
    let estimate_box box =
      Array.fold_left
        (fun acc b ->
          let frac = ref 1.0 in
          (try
             Array.iteri
               (fun i (qlo, qhi) ->
                 let lo = max qlo b.lo.(i) and hi = min qhi b.hi.(i) in
                 if lo > hi then raise Exit;
                 frac := !frac *. float_of_int (hi - lo + 1) /. float_of_int (b.hi.(i) - b.lo.(i) + 1))
               box
           with Exit -> frac := 0.0);
          acc +. (b.count *. !frac))
        0.0 buckets
    in
    let rec expand i box =
      if i = d then estimate_box (Array.of_list (List.rev box))
      else
        List.fold_left
          (fun acc r -> acc +. expand (i + 1) (r :: box))
          0.0 ranges_per_dim.(i)
    in
    expand 0 []
  in
  { Estimator.name = "MHIST"; bytes; prepare = ignore; estimate }
