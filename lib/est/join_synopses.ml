open Selest_db

(* Attribute count of the fk-closure rooted at [ti] (what one synopsis row
   stores). *)
let closure_attrs db ti =
  let schema = Database.schema db in
  let seen = Hashtbl.create 8 in
  let rec go ti =
    if not (Hashtbl.mem seen ti) then begin
      Hashtbl.add seen ti ();
      let ts = Table.schema (Database.table_at db ti) in
      Array.iter
        (fun f -> go (Schema.table_index schema f.Schema.target))
        ts.Schema.fks
    end
  in
  go ti;
  Hashtbl.fold
    (fun t () acc ->
      acc + Array.length (Table.schema (Database.table_at db t)).Schema.attrs)
    seen 0

let build ~budget_bytes ~seed db =
  let schema = Database.schema db in
  let n_tables = Schema.n_tables schema in
  let per_root = budget_bytes / max 1 n_tables in
  let synopses =
    Array.init n_tables (fun ti ->
        let name = (Schema.tables schema).(ti).Schema.tname in
        let n_attrs = max 1 (closure_attrs db ti) in
        let rows = max 1 (per_root / Selest_util.Bytesize.values n_attrs) in
        (name, Sample.build ~rows ~seed:(seed + ti) ~base:name db))
  in
  let bytes =
    Array.fold_left (fun acc (_, s) -> acc + s.Estimator.bytes) 0 synopses
  in
  let estimate q =
    Exec.validate db q;
    match Exec.single_base db q with
    | None ->
      raise (Estimator.Unsupported "join synopses: query has no single base tuple variable")
    | Some tv ->
      let table = Query.table_of q tv in
      let _, synopsis =
        Array.to_list synopses
        |> List.find (fun (name, _) -> name = table)
      in
      synopsis.Estimator.estimate q
  in
  { Estimator.name = "JOIN-SYN"; bytes; prepare = ignore; estimate }
