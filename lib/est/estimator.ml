type t = {
  name : string;
  bytes : int;
  prepare : Selest_db.Query.t -> unit;
  estimate : Selest_db.Query.t -> float;
}

exception Unsupported of string

let adjusted_relative_error ~truth ~estimate =
  100.0 *. abs_float (truth -. estimate) /. Float.max 1.0 truth
