open Selest_util
open Selest_db
open Selest_prob

module Haar = struct
  let is_pow2 n = n > 0 && n land (n - 1) = 0

  let check_dims ~dims data =
    Array.iter (fun d -> if not (is_pow2 d) then invalid_arg "Haar: dims must be powers of 2") dims;
    if Array.fold_left ( * ) 1 dims <> Array.length data then
      invalid_arg "Haar: dims/data size mismatch"

  (* Strides, last dimension fastest (matching Contingency/Factor). *)
  let strides dims =
    let n = Array.length dims in
    let s = Array.make n 1 in
    for i = n - 2 downto 0 do
      s.(i) <- s.(i + 1) * dims.(i + 1)
    done;
    s

  let sqrt2 = sqrt 2.0

  (* Full 1-D orthonormal Haar along dimension [dim], applied in place to
     every line of the array along that dimension. *)
  let transform_dim ~dims ~dim ~inverse data =
    let n = Array.length data in
    let len = dims.(dim) in
    let stride = (strides dims).(dim) in
    let line = Array.make len 0.0 in
    let tmp = Array.make len 0.0 in
    (* Iterate over all lines: indices where the [dim] digit is 0. *)
    let block = stride * len in
    let base = ref 0 in
    while !base < n do
      for off = 0 to stride - 1 do
        let start = !base + off in
        for i = 0 to len - 1 do
          line.(i) <- data.(start + (i * stride))
        done;
        if not inverse then begin
          (* forward: repeatedly split [0, half) into averages/details *)
          let half = ref len in
          while !half > 1 do
            let h = !half / 2 in
            for i = 0 to h - 1 do
              tmp.(i) <- (line.(2 * i) +. line.((2 * i) + 1)) /. sqrt2;
              tmp.(h + i) <- (line.(2 * i) -. line.((2 * i) + 1)) /. sqrt2
            done;
            Array.blit tmp 0 line 0 !half;
            half := h
          done
        end
        else begin
          (* inverse: rebuild from the coarsest level out *)
          let half = ref 1 in
          while !half < len do
            let h = !half in
            for i = 0 to h - 1 do
              tmp.(2 * i) <- (line.(i) +. line.(h + i)) /. sqrt2;
              tmp.((2 * i) + 1) <- (line.(i) -. line.(h + i)) /. sqrt2
            done;
            Array.blit tmp 0 line 0 (2 * h);
            half := 2 * h
          done
        end;
        for i = 0 to len - 1 do
          data.(start + (i * stride)) <- line.(i)
        done
      done;
      base := !base + block
    done

  let forward ~dims data =
    check_dims ~dims data;
    let out = Array.copy data in
    Array.iteri (fun dim _ -> transform_dim ~dims ~dim ~inverse:false out) dims;
    out

  let inverse ~dims data =
    check_dims ~dims data;
    let out = Array.copy data in
    (* standard decomposition is separable: inverse each dimension *)
    Array.iteri (fun dim _ -> transform_dim ~dims ~dim ~inverse:true out) dims;
    out

  let top_k coeffs k =
    let n = Array.length coeffs in
    let k = max 0 (min k n) in
    if k = 0 then [||]
    else begin
      let idx = Array.init n (fun i -> i) in
      (* magnitude descending; stable on index for determinism *)
      Array.sort
        (fun a b ->
          let c = compare (abs_float coeffs.(b)) (abs_float coeffs.(a)) in
          if c <> 0 then c else compare a b)
        idx;
      let chosen = Array.sub idx 0 k in
      if not (Array.exists (fun i -> i = 0) chosen) then chosen.(k - 1) <- 0;
      Array.sort compare chosen;
      Array.map (fun i -> (i, coeffs.(i))) chosen
    end
end

let next_pow2 n =
  let rec go p = if p >= n then p else go (2 * p) in
  go 1

let n_coefficients_for ~budget_bytes = max 1 (budget_bytes / Bytesize.values 2)

let build ~table ~attrs ~budget_bytes db =
  let tbl = Database.table db table in
  let ts = Table.schema tbl in
  let attr_idx = List.map (Schema.attr_index ts) attrs in
  let cards =
    Array.of_list
      (List.map (fun ai -> Value.card ts.Schema.attrs.(ai).Schema.domain) attr_idx)
  in
  let dims = Array.map next_pow2 cards in
  let cols = Array.of_list (List.map (fun ai -> Table.col tbl ai) attr_idx) in
  let joint = Contingency.count ~cards cols in
  let d = Array.length cards in
  let size = Array.fold_left ( * ) 1 dims in
  let padded = Array.make size 0.0 in
  let pad_strides = Haar.strides dims in
  Contingency.iter joint (fun values w ->
      let idx = ref 0 in
      Array.iteri (fun i v -> idx := !idx + (v * pad_strides.(i))) values;
      padded.(!idx) <- w);
  let coeffs = Haar.forward ~dims padded in
  let k = min size (n_coefficients_for ~budget_bytes) in
  let kept = Haar.top_k coeffs k in
  (* Reconstruct once; queries read the (possibly negative) approximation.
     Only the retained coefficients are charged as storage. *)
  let sparse = Array.make size 0.0 in
  Array.iter (fun (i, c) -> sparse.(i) <- c) kept;
  let approx = Haar.inverse ~dims sparse in
  (* With few coefficients, zero-padding to power-of-two extents leaks mass
     into the padding cells; rescale so the real region carries the table's
     total mass again (one extra stored value: the total). *)
  let real_sum = ref 0.0 in
  let values = Array.make d 0 in
  let rec visit dim =
    if dim = d then begin
      let idx = ref 0 in
      Array.iteri (fun i v -> idx := !idx + (v * pad_strides.(i))) values;
      real_sum := !real_sum +. approx.(!idx)
    end
    else
      for v = 0 to cards.(dim) - 1 do
        values.(dim) <- v;
        visit (dim + 1)
      done
  in
  visit 0;
  let total = Contingency.total joint in
  if !real_sum > 0.0 then begin
    let scale = total /. !real_sum in
    Array.iteri (fun i x -> approx.(i) <- x *. scale) approx
  end;
  let bytes = Bytesize.values ((2 * Array.length kept) + 1) in
  let attr_dim = List.mapi (fun i aname -> (aname, i)) attrs in
  let estimate q =
    Exec.validate db q;
    (match (q.Query.tvars, q.Query.joins) with
    | [ (_, t) ], [] when t = table -> ()
    | _ -> raise (Estimator.Unsupported "wavelet histogram covers a single table, no joins"));
    let allowed = Array.init d (fun i -> Array.make cards.(i) true) in
    List.iter
      (fun s ->
        match List.assoc_opt s.Query.sel_attr attr_dim with
        | None ->
          raise
            (Estimator.Unsupported
               ("wavelet histogram does not cover attribute " ^ s.Query.sel_attr))
        | Some dim ->
          for v = 0 to cards.(dim) - 1 do
            if not (Query.pred_holds s.Query.pred v) then allowed.(dim).(v) <- false
          done)
      q.Query.selects;
    (* Sum the reconstruction over the allowed box (negative values are a
       known wavelet artifact; clamp the final answer, not the cells). *)
    let acc = ref 0.0 in
    let values = Array.make d 0 in
    let rec sum dim =
      if dim = d then begin
        let idx = ref 0 in
        Array.iteri (fun i v -> idx := !idx + (v * pad_strides.(i))) values;
        acc := !acc +. approx.(!idx)
      end
      else
        for v = 0 to cards.(dim) - 1 do
          if allowed.(dim).(v) then begin
            values.(dim) <- v;
            sum (dim + 1)
          end
        done
    in
    sum 0;
    Float.max 0.0 !acc
  in
  { Estimator.name = "WAVELET"; bytes; prepare = ignore; estimate }
