open Selest_util
open Selest_db
open Selest_prob

module Lowrank = struct
  (* Power iteration with deflation on A (row-major rows x cols).  Each
     triplet is found on the residual A - Σ found σ·u·vᵀ, which avoids
     forming AᵀA and keeps everything O(k · iters · rows · cols). *)

  let matvec ~rows ~cols a v out =
    for i = 0 to rows - 1 do
      let acc = ref 0.0 in
      let base = i * cols in
      for j = 0 to cols - 1 do
        acc := !acc +. (a.(base + j) *. v.(j))
      done;
      out.(i) <- !acc
    done

  let matvec_t ~rows ~cols a u out =
    Array.fill out 0 cols 0.0;
    for i = 0 to rows - 1 do
      let base = i * cols in
      let ui = u.(i) in
      if ui <> 0.0 then
        for j = 0 to cols - 1 do
          out.(j) <- out.(j) +. (a.(base + j) *. ui)
        done
    done

  let norm v = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 v)

  let normalize v =
    let n = norm v in
    if n > 0.0 then
      for i = 0 to Array.length v - 1 do
        v.(i) <- v.(i) /. n
      done;
    n

  let truncate ~rows ~cols a ~k =
    if Array.length a <> rows * cols then invalid_arg "Lowrank.truncate: shape mismatch";
    let residual = Array.copy a in
    let k = max 1 (min k (min rows cols)) in
    let out = ref [] in
    (try
       for _ = 1 to k do
         (* deterministic non-degenerate start vector *)
         let v = Array.init cols (fun j -> 1.0 +. (0.01 *. float_of_int (j mod 7))) in
         ignore (normalize v);
         let u = Array.make rows 0.0 in
         let sigma = ref 0.0 in
         let continue = ref true in
         let iters = ref 0 in
         while !continue && !iters < 200 do
           incr iters;
           matvec ~rows ~cols residual v u;
           let su = normalize u in
           matvec_t ~rows ~cols residual u v;
           let sv = normalize v in
           let s = Float.max su sv in
           if abs_float (s -. !sigma) <= 1e-10 *. Float.max 1.0 s then continue := false;
           sigma := s
         done;
         if !sigma <= 1e-12 then raise Exit;
         out := (!sigma, Array.copy u, Array.copy v) :: !out;
         (* deflate *)
         for i = 0 to rows - 1 do
           let base = i * cols in
           for j = 0 to cols - 1 do
             residual.(base + j) <- residual.(base + j) -. (!sigma *. u.(i) *. v.(j))
           done
         done
       done
     with Exit -> ());
    Array.of_list (List.rev !out)

  let reconstruct ~rows ~cols triplets =
    let a = Array.make (rows * cols) 0.0 in
    Array.iter
      (fun (sigma, u, v) ->
        for i = 0 to rows - 1 do
          let base = i * cols in
          for j = 0 to cols - 1 do
            a.(base + j) <- a.(base + j) +. (sigma *. u.(i) *. v.(j))
          done
        done)
      triplets;
    a
end

let rank_for ~budget_bytes ~rows ~cols =
  max 1 (budget_bytes / Bytesize.values (rows + cols + 1))

let build ~table ~x ~y ~budget_bytes db =
  let tbl = Database.table db table in
  let ts = Table.schema tbl in
  let xi = Schema.attr_index ts x and yi = Schema.attr_index ts y in
  let rows = Value.card ts.Schema.attrs.(xi).Schema.domain in
  let cols = Value.card ts.Schema.attrs.(yi).Schema.domain in
  let joint =
    Contingency.count ~cards:[| rows; cols |] [| Table.col tbl xi; Table.col tbl yi |]
  in
  let a = Array.make (rows * cols) 0.0 in
  Contingency.iter joint (fun values w -> a.((values.(0) * cols) + values.(1)) <- w);
  let k = rank_for ~budget_bytes ~rows ~cols in
  let triplets = Lowrank.truncate ~rows ~cols a ~k in
  let approx = Lowrank.reconstruct ~rows ~cols triplets in
  let bytes = Bytesize.values (Array.length triplets * (rows + cols + 1)) in
  let estimate q =
    Exec.validate db q;
    (match (q.Query.tvars, q.Query.joins) with
    | [ (_, t) ], [] when t = table -> ()
    | _ -> raise (Estimator.Unsupported "SVD histogram covers a single table, no joins"));
    let allowed_x = Array.make rows true and allowed_y = Array.make cols true in
    List.iter
      (fun s ->
        let apply allowed card =
          for v = 0 to card - 1 do
            if not (Query.pred_holds s.Query.pred v) then allowed.(v) <- false
          done
        in
        if s.Query.sel_attr = x then apply allowed_x rows
        else if s.Query.sel_attr = y then apply allowed_y cols
        else
          raise
            (Estimator.Unsupported ("SVD histogram does not cover attribute " ^ s.Query.sel_attr)))
      q.Query.selects;
    let acc = ref 0.0 in
    for i = 0 to rows - 1 do
      if allowed_x.(i) then
        for j = 0 to cols - 1 do
          if allowed_y.(j) then acc := !acc +. approx.((i * cols) + j)
        done
    done;
    Float.max 0.0 !acc
  in
  { Estimator.name = "SVD"; bytes; prepare = ignore; estimate }
