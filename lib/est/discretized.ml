open Selest_util
open Selest_db
open Selest_bn
open Selest_prob

let build ~table ~bucketize ~budget_bytes ?(kind = Cpd.Trees) ?(seed = 0) db =
  let tbl = Database.table db table in
  let ts = Table.schema tbl in
  let n_attrs = Array.length ts.Schema.attrs in
  (* Per attribute: optional discretization. *)
  let disc =
    Array.init n_attrs (fun ai ->
        let a = ts.Schema.attrs.(ai) in
        match List.assoc_opt a.Schema.aname bucketize with
        | None -> None
        | Some bins ->
          Some
            (Discretize.equi_depth ~column:(Table.col tbl ai)
               ~card:(Value.card a.Schema.domain) ~bins))
  in
  let cards =
    Array.init n_attrs (fun ai ->
        match disc.(ai) with
        | Some d -> d.Discretize.n_bins
        | None -> Value.card ts.Schema.attrs.(ai).Schema.domain)
  in
  let cols =
    Array.init n_attrs (fun ai ->
        match disc.(ai) with
        | Some d -> Discretize.apply d (Table.col tbl ai)
        | None -> Table.col tbl ai)
  in
  let names = Array.map (fun a -> a.Schema.aname) ts.Schema.attrs in
  let ordinal = Array.map (fun a -> Value.is_ordinal a.Schema.domain) ts.Schema.attrs in
  let data = Data.create ~names ~cards ~ordinal cols in
  let cfg = { (Learn.default_config ~budget_bytes) with Learn.kind; seed } in
  let result = Learn.learn ~config:cfg data in
  let bn = result.Learn.bn in
  let boundary_bytes =
    Array.fold_left
      (fun acc d -> match d with Some d -> acc + Bytesize.values d.Discretize.n_bins | None -> acc)
      0 disc
  in
  let n = float_of_int (Table.size tbl) in
  let attr_index name =
    let rec go i =
      if i >= n_attrs then raise Not_found
      else if names.(i) = name then i
      else go (i + 1)
    in
    go 0
  in
  (* Coverage of a predicate at bucket level: fraction of each bucket's
     base-level values that satisfy it. *)
  let coverage ai pred =
    match disc.(ai) with
    | None ->
      Array.init cards.(ai) (fun v -> if Query.pred_holds pred v then 1.0 else 0.0)
    | Some d ->
      let cov = Array.make d.Discretize.n_bins 0.0 in
      Array.iteri
        (fun base_value bin ->
          if Query.pred_holds pred base_value then cov.(bin) <- cov.(bin) +. 1.0)
        d.Discretize.bin_of;
      Array.mapi (fun b c -> c /. float_of_int d.Discretize.width.(b)) cov
  in
  let posterior_cache : (int list, Factor.t) Hashtbl.t = Hashtbl.create 8 in
  let estimate q =
    Exec.validate db q;
    (match (q.Query.tvars, q.Query.joins) with
    | [ (_, t) ], [] when t = table -> ()
    | _ -> raise (Estimator.Unsupported "discretized estimator: single table, no joins"));
    (* Combine (multiply) coverages per attribute across the selects. *)
    let cov_of : (int, float array) Hashtbl.t = Hashtbl.create 4 in
    List.iter
      (fun s ->
        let ai =
          try attr_index s.Query.sel_attr
          with Not_found ->
            raise (Estimator.Unsupported ("unknown attribute " ^ s.Query.sel_attr))
        in
        let c = coverage ai s.Query.pred in
        match Hashtbl.find_opt cov_of ai with
        | None -> Hashtbl.add cov_of ai c
        | Some prev -> Hashtbl.replace cov_of ai (Array.map2 (fun a b -> a *. b) prev c))
      q.Query.selects;
    let vars = List.sort compare (Hashtbl.fold (fun v _ acc -> v :: acc) cov_of []) in
    if vars = [] then n
    else begin
      let posterior =
        match Hashtbl.find_opt posterior_cache vars with
        | Some f -> f
        | None ->
          let f = Ve.posterior (Bn.factors bn) [] ~keep:(Array.of_list vars) in
          Hashtbl.add posterior_cache vars f;
          f
      in
      (* Σ over bucket cells of P(cell) × Π coverage. *)
      let vars_arr = Array.of_list vars in
      let d = Array.length vars_arr in
      let cell = Array.make d 0 in
      let acc = ref 0.0 in
      let rec go i =
        if i = d then begin
          let w = ref (Factor.get posterior cell) in
          Array.iteri
            (fun j var -> w := !w *. (Hashtbl.find cov_of var).(cell.(j)))
            vars_arr;
          acc := !acc +. !w
        end
        else
          for v = 0 to cards.(vars_arr.(i)) - 1 do
            cell.(i) <- v;
            go (i + 1)
          done
      in
      go 0;
      n *. !acc
    end
  in
  {
    Estimator.name = "PRM(bucketized)";
    bytes = result.Learn.bytes + boundary_bytes;
    prepare = ignore;
    estimate;
  }
