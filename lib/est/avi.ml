open Selest_util
open Selest_db

let build ?tables ?attrs db =
  let covered_table tname =
    match tables with None -> true | Some ts -> List.mem tname ts
  in
  let covered_attr tname aname =
    covered_table tname
    && match attrs with None -> true | Some l -> List.mem (tname, aname) l
  in
  (* Marginal frequency histograms, one per covered attribute. *)
  let hist : (string * string, float array) Hashtbl.t = Hashtbl.create 32 in
  let bytes = ref 0 in
  Array.iter
    (fun tbl ->
      let ts = Table.schema tbl in
      Array.iteri
        (fun ai a ->
          if covered_attr ts.Schema.tname a.Schema.aname then begin
            let card = Value.card a.Schema.domain in
            let counts = Array.make card 0.0 in
            Array.iter (fun v -> counts.(v) <- counts.(v) +. 1.0) (Table.col tbl ai);
            Hashtbl.add hist (ts.Schema.tname, a.Schema.aname) (Arrayx.normalize counts);
            bytes := !bytes + Bytesize.params card
          end)
        ts.Schema.attrs)
    (Database.tables db);
  let prob_of_pred dist pred =
    match pred with
    | Query.Eq v -> dist.(v)
    | Query.In_set vs -> List.fold_left (fun acc v -> acc +. dist.(v)) 0.0 vs
    | Query.Range (lo, hi) ->
      let acc = ref 0.0 in
      for v = lo to hi do
        acc := !acc +. dist.(v)
      done;
      !acc
  in
  let estimate q =
    Exec.validate db q;
    (* Cartesian baseline ... *)
    let size =
      List.fold_left
        (fun acc (_, tname) ->
          if not (covered_table tname) then
            raise (Estimator.Unsupported ("AVI does not cover table " ^ tname));
          acc *. float_of_int (Table.size (Database.table db tname)))
        1.0 q.Query.tvars
    in
    (* ... cut down by uniform-join selectivity per join clause ... *)
    let size =
      List.fold_left
        (fun acc j ->
          let parent_table = Query.table_of q j.Query.parent_tv in
          acc /. float_of_int (Table.size (Database.table db parent_table)))
        size q.Query.joins
    in
    (* ... and by independent per-attribute select probabilities. *)
    List.fold_left
      (fun acc s ->
        let tname = Query.table_of q s.Query.sel_tv in
        match Hashtbl.find_opt hist (tname, s.Query.sel_attr) with
        | Some dist -> acc *. prob_of_pred dist s.Query.pred
        | None ->
          raise
            (Estimator.Unsupported
               (Printf.sprintf "AVI does not cover %s.%s" tname s.Query.sel_attr)))
      size q.Query.selects
  in
  { Estimator.name = "AVI"; bytes = !bytes; prepare = ignore; estimate }
