(** Blocking client for the estimation service.

    One request line in, one response line out ({!Protocol}).  This is
    what the CLI's [ask] subcommand and the end-to-end tests use; an
    optimizer embedding would talk to the socket the same way. *)

type t

val connect : ?retries:int -> socket:string -> unit -> t
(** Connect to a server's Unix-domain socket.  [retries] (default 0)
    re-attempts with a 50ms pause when the socket does not exist yet or
    refuses connections — the startup race of a freshly spawned server.
    Raises [Unix.Unix_error] once the attempts are exhausted. *)

val request : t -> string -> string
(** Send one request line, wait for the response.  Single-line responses
    come back as-is; an [OK lines=<k>] header ({!Protocol.extra_lines},
    e.g. from [METRICS]) makes the client read the [k] payload lines too
    and return the whole newline-joined text.  Raises [End_of_file] if
    the server hangs up first. *)

val upgrade : t -> unit
(** Switch the connection to the binary frame protocol: send the [BIN]
    hello, expect [OK bin].  After a successful upgrade only {!est_bin}
    and {!estbatch_bin} may be used on this connection.  Raises
    [Failure] if the server answers anything else. *)

val est_bin : t -> ?model:string -> string -> (float, string) result
(** One [EST] over binary frames (after {!upgrade}): the query body in a
    request frame, the estimate back as IEEE-754 bits — no text
    formatting on either side. *)

val estbatch_bin : t -> ?model:string -> string list -> (float list, string) result
(** One [ESTBATCH] over binary frames: estimates in request order, or
    the server's first error. *)

val close : t -> unit

val with_connection : ?retries:int -> socket:string -> (t -> 'a) -> 'a
(** Connect, run, close (also on exceptions). *)
