(** Blocking client for the estimation service.

    One request line in, one response line out ({!Protocol}).  This is
    what the CLI's [ask] subcommand and the end-to-end tests use; an
    optimizer embedding would talk to the socket the same way.  Both
    transports are supported: the Unix-domain socket ({!connect}) and
    the TCP listener ({!connect_tcp}). *)

type t

val backoff_delay : int -> float
(** [backoff_delay n] is the pause before retry attempt [n] (0-based):
    10ms doubling per attempt, capped at 640ms.  Exposed so tests can
    pin the schedule. *)

val connect : ?retries:int -> socket:string -> unit -> t
(** Connect to a server's Unix-domain socket.  [retries] (default 0)
    re-attempts on [ENOENT]/[ECONNREFUSED]/[EAGAIN] — the startup race
    of a freshly spawned server — with bounded exponential backoff
    ({!backoff_delay}).  Raises [Unix.Unix_error] once the attempts are
    exhausted. *)

val connect_tcp : ?retries:int -> host:string -> port:int -> unit -> t
(** Connect to a server's TCP listener ([serve --tcp HOST:PORT]).  Same
    retry/backoff contract as {!connect}. *)

val request : t -> string -> string
(** Send one request line, wait for the response.  Single-line responses
    come back as-is; an [OK lines=<k>] header ({!Protocol.extra_lines},
    e.g. from [METRICS]) makes the client read the [k] payload lines too
    and return the whole newline-joined text.  If the server hangs up
    while the request is being written (an admission [BUSY] rejection
    races the request line), the already-queued parting reply is still
    read and returned.  Raises [End_of_file] if the server hung up
    without replying at all. *)

val upgrade : t -> unit
(** Switch the connection to the binary frame protocol: send the [BIN]
    hello, expect [OK bin].  After a successful upgrade only {!est_bin}
    and {!estbatch_bin} may be used on this connection.  Raises
    [Failure] if the server answers anything else. *)

val est_bin : t -> ?model:string -> string -> (float, string) result
(** One [EST] over binary frames (after {!upgrade}): the query body in a
    request frame, the estimate back as IEEE-754 bits — no text
    formatting on either side. *)

val estbatch_bin : t -> ?model:string -> string list -> (float list, string) result
(** One [ESTBATCH] over binary frames: estimates in request order, or
    the server's first error. *)

val close : t -> unit

val with_connection : ?retries:int -> socket:string -> (t -> 'a) -> 'a
(** Connect, run, close (also on exceptions). *)

val with_tcp_connection :
  ?retries:int -> host:string -> port:int -> (t -> 'a) -> 'a
(** {!connect_tcp}, run, close (also on exceptions). *)
