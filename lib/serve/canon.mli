(** Canonical cache keys for select–keyjoin queries.

    An optimizer probes the estimation service many times with queries that
    are written differently but mean the same thing: predicates in a
    different order, a set predicate listing its values differently, a
    degenerate range [a..a] instead of an equality.  The estimate cache
    ({!Lru}) keys on the {e canonical form} so all of them hit the same
    entry.

    Canonicalization is purely syntactic over the already-coded query: it
    sorts the tuple-variable bindings, joins and selects, and normalizes
    each predicate ([In_set] values sorted and deduplicated, singleton sets
    and one-point ranges collapsed to [Eq]).  It never renames tuple
    variables, so [p=patient] and [q=patient] remain distinct keys — that
    is deliberate: the query text reaching the service already fixes the
    variable names, and alpha-equivalence detection would cost more than
    the duplicate inference it saves. *)

val normalize : Selest_db.Query.t -> Selest_db.Query.t
(** Same query with sorted clause lists and normalized predicates.
    Idempotent; the result is semantically equivalent to the input (same
    {!Selest_db.Query.pred_holds} behaviour on every clause). *)

val key : Selest_db.Query.t -> string
(** Deterministic rendering of {!normalize}: equal for any two queries that
    canonicalize identically.  The key does not identify the model; the
    server prefixes it with the model name and version. *)

val skeleton_key : Selest_db.Query.t -> string
(** The {!Selest_plan.Plan.skeleton_key} of the {e normalized} query — the
    binding-independent half of the key split: queries differing only in
    predicate values share this key (and hence one cached plan), while
    {!key} still distinguishes them for the estimate cache. *)

(** The plan-cache key, built in a single buffer pass with its FNV-1a
    hash: [name#version|tvars|joins|select-attrs].  {!Plan_cache}
    indexes on the hash; the rendered key is stored beside the entry
    and compared only to disambiguate a hash collision. *)
module Skel : sig
  type t = { hash : int;  (** 63-bit non-negative FNV-1a of [key] *)
             key : string }

  val make : name:string -> version:int -> Selest_db.Query.t -> t
  (** [q] must already be canonical ({!normalize}): its select order is
      what collapses duplicate attributes in one pass. *)
end
