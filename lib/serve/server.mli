(** The long-lived estimation server.

    Holds together the pieces the online phase needs: the database context
    (schema, value codings and table sizes used to parse queries and scale
    probabilities), a model {!Registry}, an {!Lru} estimate cache and
    {!Metrics}.  {!run} listens on a Unix-domain socket and speaks
    {!Protocol}; {!handle_line} is the transport-free request dispatcher,
    exposed so tests and benchmarks can exercise the full request path —
    parse, canonicalize, cache, infer — without sockets.

    An [EST] request is answered as follows: parse the body against the
    database ({!Selest_db.Qparse}); canonicalize ({!Canon}); look up
    [name#version|key] in the estimate cache; on a miss fetch the
    skeleton's compiled plan from the {!Plan_cache} (compiling it with
    {!Selest_plan.Plan.compile} on a cold skeleton), bind the query and
    execute, then fill the estimate cache.  Because the model version is
    part of both keys, a hot-reloaded model never serves another
    version's cached answers or plans.

    The dispatcher is single-threaded and handles connections
    sequentially, but an [ESTBATCH] request fans its cache misses across a
    {!Selest_util.Pool} of worker domains: probes and cache fills stay on
    the dispatcher (the {!Lru} is not shared across domains), inference —
    the expensive, side-effect-free part — runs in parallel.  The plan
    cache and each plan's schedule memo are mutex-guarded, so workers
    share compiled plans.  Estimates are bit-identical to sequential
    [EST] answers: the same plan executes per query either way, and
    results are re-ordered deterministically.

    {2 Observability}

    The request path is instrumented with {!Selest_obs.Span} (spans
    [est] → [est.parse], [est.canon], [est.cache], [plan.fetch],
    [plan.compile], [ve.evidence], [ve.plan], [ve.eliminate],
    [est.respond]) and every inference's {!Selest_obs.Hotpath} kernel
    counters are rolled into the service metrics ([ve.factor_ops],
    [ve.entries_touched], [ve.scratch_hits]/[misses],
    [ve.order_hits]/[misses] — the last pair counts plan schedule-memo
    hits and misses).

    [EXPLAIN <query>] re-runs inference with span collection on and
    answers one line of [key=value] fields: [estimate], [total_us], the
    per-stage times ([parse_us], [canon_us], [cache_us], [fetch_us],
    [compile_us], [evidence_us], [sched_us], [ve_us], [respond_us],
    [other_us] — {e self} times, so they partition [total_us]), their
    [stage_sum_us], the estimate-cache ([cache]), plan-cache
    ([plan_cache]) and schedule-memo ([sched]) outcomes, the executed
    [plan] (per-step eliminated variable and predicted intermediate
    entries, to set against the measured [max_factor_entries]), the
    plan's [factors] count, and the per-query hot-path counters.  The
    estimate cache is probed (and reported) but never short-circuits the
    run, so the breakdown always prices real inference; the cache is
    filled afterwards, making EXPLAIN a valid warm-up.

    [EXPLAINPLAN <query>] answers the optimizer's view: the C_out-minimal
    join tree under the model's sub-query estimates (priced through the
    same plan cache, AVI fallback for sub-queries the model cannot
    price), executed with {!Selest_opt.Hashjoin} and rendered
    postgres-style with estimated vs. actual rows per operator.

    [TRUTH <true-size> <query>] records accuracy: the estimate is
    computed through the normal cache-then-infer path and the q-error
    against the supplied truth lands in a per-model rolling histogram
    ({!Selest_obs.Qerror}), summarized in [STATS] ([qerr.<model>.*]
    fields) and exported by [METRICS].

    [METRICS] answers the whole picture as Prometheus text exposition
    ({!Selest_obs.Prometheus}): counters ([selest_*_total], with
    per-model [selest_infer_total{model="..."}] and the compiled plans'
    program-memo pair [selest_program_memo_hits]/[_misses]), the
    request-latency histogram ([selest_request_latency_us]) plus
    per-verb [selest_verb_latency_us{verb="..."}], estimate-cache and
    registry gauges, plan-cache counters and gauge
    ([selest_plan_cache_*]), per-model [selest_qerror] histograms,
    slow-log counters and the SLO burn gauges
    ([selest_slo_latency_burn], [selest_slo_qerror_burn{model="..."}]).

    All counters and latency histograms live in a sharded, lock-free
    {!Selest_obs.Telemetry} core (one shard per domain, merged on read),
    so STATS / METRICS / HEALTH never block the request path.

    [HEALTH] answers a multi-line SLO report: per-verb latency quantiles
    (p50/p95/p99/p999, computed over the window since the previous
    HEALTH via snapshot deltas), error-budget burn against the declared
    latency and q-error SLOs, cache hit rates, per-model accuracy and
    the slow-log state.  [SLOWLOG \[n\]] dumps the newest tail-sampled
    captures — requests over the quantile-derived latency threshold or
    TRUTHs over the q-error gate — each with its canonical query and a
    replayed span tree. *)

type t

val create :
  ?cache_bytes:int ->
  ?pool_size:int ->
  ?slowlog_capacity:int ->
  ?slow_quantile:float ->
  ?qerror_gate:float ->
  ?slo_p99_us:float ->
  ?slo_qerror:float ->
  db:Selest_db.Database.t ->
  socket:string ->
  unit ->
  t
(** [cache_bytes] defaults to 1 MiB.  [pool_size] is the number of worker
    domains for [ESTBATCH] (default [Domain.recommended_domain_count - 1];
    [0] forces inline sequential batching); the pool is spawned lazily on
    the first batch request.  No socket is bound until {!run}.

    Telemetry knobs: [slowlog_capacity] (default 128) bounds the
    slow-log ring; [slow_quantile] (default 0.99) sets the latency
    capture threshold — a request slower than this quantile of the
    merged latency histogram is captured (threshold refreshed every 512
    responses after 64 observations, rate-limited to one capture per 256
    responses); [qerror_gate] (default 100) captures any [TRUTH] whose
    q-error reaches it; [slo_p99_us] (default 10000) and [slo_qerror]
    (default 100) declare the p99 latency and q-error SLO targets
    [HEALTH] burns the error budget against. *)

val registry : t -> Registry.t
val metrics : t -> Metrics.t
val cache : t -> Lru.t

val plan_cache : t -> Plan_cache.t
(** The compiled-plan cache, keyed by (model name, version, query
    skeleton).  Exposed so tests and benchmarks can inspect or clear it;
    normal clients only see its hit/miss/eviction counters in [STATS] and
    [METRICS]. *)

val socket_path : t -> string

val slowlog : t -> Selest_obs.Slowlog.t
(** The tail-sampled slow-log ring — [SLOWLOG]'s backing store, exposed
    so tests can assert on captures without re-parsing the text dump. *)

val qerror_table : t -> string -> Selest_obs.Qerror.t
(** The rolling q-error histogram for a model name, created on first
    use.  [TRUTH] records into it; exposed so a workload replay can feed
    ground truth directly. *)

val handle_line : t -> string -> string * [ `Continue | `Stop ]
(** Dispatch one request line to one response.  Never raises: every
    failure (parse error, unknown model, bad model file, inference error)
    becomes an [ERR] response and [`Continue]; only [SHUTDOWN] returns
    [`Stop].  Every response is a single line except [METRICS],
    [EXPLAINPLAN], [HEALTH] and [SLOWLOG], which return the
    [OK lines=<k>] multi-line frame ({!Protocol.extra_lines}). *)

val handle_frame : t -> bytes -> string
(** Dispatch one binary request payload ({!Protocol.Bin}, length prefix
    already stripped) to one encoded response frame.  The binary twin of
    {!handle_line} for [EST]/[ESTBATCH], sharing its request, latency and
    error accounting — exposed transport-free for the same reason.  A
    connection enters binary mode by sending the text line [BIN], which
    {!run}'s connection loop answers with [OK bin] before switching to
    length-prefixed frames until EOF. *)

val shutdown_pool : t -> unit
(** Stop and join the worker domains (if any were spawned).  {!run} calls
    this on exit; transport-free users ({!handle_line}) that issued
    [ESTBATCH] requests should call it when done. *)

val run : t -> unit
(** Bind the socket (unlinking a stale file first), accept connections
    sequentially, serve each until EOF, and return once a [SHUTDOWN]
    request has been answered.  The socket file is removed on exit, the
    domain pool is shut down and the final metrics are logged at info
    level. *)
