(** The long-lived estimation server — shard-per-domain since PR 9.

    Holds together the pieces the online phase needs: the database context
    (schema, value codings and table sizes used to parse queries and scale
    probabilities), a model {!Registry} published as epoch-pinned
    immutable snapshots, per-shard {!Lru} estimate caches and
    {!Plan_cache}s, and {!Metrics}.  {!run} listens on a Unix-domain
    socket (and optionally TCP) and speaks {!Protocol}; {!handle_line} is
    the transport-free request dispatcher, exposed so tests and
    benchmarks can exercise the full request path — parse, canonicalize,
    cache, infer — without sockets.

    {2 Shard-per-domain architecture}

    [create ~domains:n] builds [n] executor shards.  {!run} spawns one
    domain per shard; each domain owns a disjoint set of connections and
    multiplexes them over a [select] loop ({!Shard}).  The listener
    thread only accepts: each accepted fd is handed to a shard mailbox
    round-robin (one mutex touch per {e connection}, never per request)
    with a linear probe past shards at their admission budget.  When
    every shard is at [max_inflight] live connections the listener
    answers [BUSY ...], closes the connection and bumps the
    [admission_rejected] counter ([selest_admission_rejected_total]).

    On the [EST] hot path a shard acquires {e zero} mutexes: the
    registry read is one atomic snapshot pin, the estimate cache and
    plan cache are domain-local (the plan cache is created
    unsynchronized whenever [domains > 1]), and telemetry writes land on
    the domain's own lock-free shard.  Estimates are bit-identical
    across shard counts — every shard executes the same compiled plan
    for the same query.

    A concurrent [LOAD] publishes a whole new registry snapshot with an
    atomic pointer flip: in-flight requests keep the snapshot they
    pinned (never a torn version/fingerprint), later requests see the
    new one, and because every cache key carries the model version, each
    shard's cached estimates and plans for the old version simply stop
    being reachable.  Old snapshots are reclaimed by the GC.

    An [EST] request is answered as follows: pin the registry snapshot;
    lex the body straight out of the request buffer into the shard's
    reusable scratch query ({!Selest_db.Squery} — interned symbols, no
    intermediate strings); canonicalize in place; derive the 63-bit
    estimate-cache hash (scratch hash mixed with model name and
    version) and probe the shard's estimate cache, verifying a hash hit
    against the entry's canonical snapshot; on a miss fetch the
    skeleton's compiled plan from the shard's {!Plan_cache} (compiling
    it with {!Selest_plan.Plan.compile} on a cold skeleton), bind the
    query and execute, then fill the estimate cache with pre-rendered
    text and binary responses.  On the wire ({!run}) a warm EST is
    recognized and served entirely from buffer slices
    ({!fast_handlers}): the whole round trip from socket read to answer
    write allocates nothing.  Requests the fast path cannot own —
    errors, other verbs, span-collected traces — take the reference
    path ({!Protocol.parse_request} + [handle_line]) with identical
    observable behavior.

    An [ESTBATCH] request on a {e single-shard} server fans its cache
    misses across a {!Selest_util.Pool} of worker domains (probes and
    cache fills stay on the dispatcher; the single-shard plan cache is
    mutex-guarded so workers share compiled plans).  A sharded server
    batches inline — its shards already are the parallelism, and its
    plan caches are unsynchronized and must stay domain-private.
    Estimates are bit-identical to sequential [EST] answers either way.

    {2 Observability}

    The request path is instrumented with {!Selest_obs.Span} (spans
    [est] → [est.parse], [est.canon], [est.cache], [plan.fetch],
    [plan.compile], [ve.evidence], [ve.plan], [ve.eliminate],
    [est.respond]) and every inference's {!Selest_obs.Hotpath} kernel
    counters are rolled into the service metrics ([ve.factor_ops],
    [ve.entries_touched], [ve.scratch_hits]/[misses],
    [ve.order_hits]/[misses] — the last pair counts plan schedule-memo
    hits and misses).

    [EXPLAIN <query>] re-runs inference with span collection on and
    answers one line of [key=value] fields: [estimate], [total_us], the
    per-stage times ([parse_us], [canon_us], [cache_us], [fetch_us],
    [compile_us], [evidence_us], [sched_us], [ve_us], [respond_us],
    [other_us] — {e self} times, so they partition [total_us]), their
    [stage_sum_us], the estimate-cache ([cache]), plan-cache
    ([plan_cache]) and schedule-memo ([sched]) outcomes, the executed
    [plan] (per-step eliminated variable and predicted intermediate
    entries, to set against the measured [max_factor_entries]), the
    plan's [factors] count, and the per-query hot-path counters.  The
    estimate cache is probed (and reported) but never short-circuits the
    run, so the breakdown always prices real inference; the cache is
    filled afterwards, making EXPLAIN a valid warm-up.

    [EXPLAINPLAN <query>] answers the optimizer's view: the C_out-minimal
    join tree under the model's sub-query estimates (priced through the
    same plan cache, AVI fallback for sub-queries the model cannot
    price), executed with {!Selest_opt.Hashjoin} and rendered
    postgres-style with estimated vs. actual rows per operator.

    [TRUTH <true-size> <query>] records accuracy: the estimate is
    computed through the normal cache-then-infer path and the q-error
    against the supplied truth lands in the calling domain's shard of a
    per-model rolling histogram ({!Selest_obs.Qerror} via
    {!Metrics.observe_qerror} — lock-free, merged on read), summarized
    in [STATS] ([qerr.<model>.*] fields) and exported by [METRICS].

    [SHARDS] answers the shard layout: one header line ([domains],
    [max_inflight], [backlog], endpoints, registry [epoch]) then one
    line per shard with its live admission state ([inflight],
    [accepted]), request count and domain-local cache counters.

    [METRICS] answers the whole picture as Prometheus text exposition
    ({!Selest_obs.Prometheus}): counters ([selest_*_total], with
    per-model [selest_infer_total{model="..."}] and the compiled plans'
    program-memo pair [selest_program_memo_hits]/[_misses]), the
    request-latency histogram ([selest_request_latency_us]) plus
    per-verb [selest_verb_latency_us{verb="..."}], estimate-cache and
    registry gauges (including [selest_registry_epoch]), plan-cache
    counters and gauge ([selest_plan_cache_*]), shard gauges
    ([selest_domains], [selest_shard_inflight{shard="..."}],
    [selest_shard_accepted_total{shard="..."}]), per-model
    [selest_qerror] histograms, slow-log counters and the SLO burn
    gauges ([selest_slo_latency_burn],
    [selest_slo_qerror_burn{model="..."}]).

    All counters and latency histograms live in a sharded, lock-free
    {!Selest_obs.Telemetry} core (one shard per domain, merged on read),
    so STATS / METRICS / HEALTH never block the request path.

    [HEALTH] answers a multi-line SLO report: per-verb latency quantiles
    (p50/p95/p99/p999, computed over the window since the previous
    HEALTH via snapshot deltas), error-budget burn against the declared
    latency and q-error SLOs, cache hit rates, per-shard identity lines
    ([shard id=... inflight=... accepted=... requests=...]), per-model
    accuracy and the slow-log state.  [SLOWLOG \[n\]] dumps the newest
    tail-sampled captures — requests over the quantile-derived latency
    threshold or TRUTHs over the q-error gate — each with its canonical
    query and a replayed span tree. *)

type t

val create :
  ?cache_bytes:int ->
  ?pool_size:int ->
  ?slowlog_capacity:int ->
  ?slow_quantile:float ->
  ?qerror_gate:float ->
  ?slo_p99_us:float ->
  ?slo_qerror:float ->
  ?domains:int ->
  ?tcp:string * int ->
  ?max_inflight:int ->
  ?backlog:int ->
  db:Selest_db.Database.t ->
  socket:string ->
  unit ->
  t
(** [cache_bytes] defaults to 1 MiB {e per shard}.  [pool_size] is the
    number of worker domains for single-shard [ESTBATCH] (default
    [Domain.recommended_domain_count - 1]; [0] forces inline sequential
    batching); the pool is spawned lazily on the first batch request.
    No socket is bound until {!run}.

    Sharding knobs: [domains] (default 1) is the number of executor
    shards {!run} spawns; [tcp] is an optional [(host, port)] endpoint
    to listen on in addition to the Unix socket; [max_inflight]
    (default 1024) is the per-shard admission budget in live
    connections — when every shard is full new connections are answered
    [BUSY] and closed; [backlog] (default 128) is the [listen(2)]
    backlog used for both listeners.  Raises [Invalid_argument] when
    [domains], [max_inflight] or [backlog] is below 1.

    Telemetry knobs: [slowlog_capacity] (default 128) bounds the
    slow-log ring; [slow_quantile] (default 0.99) sets the latency
    capture threshold — a request slower than this quantile of the
    merged latency histogram is captured (threshold refreshed every 512
    responses after 64 observations, rate-limited to one capture per 256
    responses); [qerror_gate] (default 100) captures any [TRUTH] whose
    q-error reaches it; [slo_p99_us] (default 10000) and [slo_qerror]
    (default 100) declare the p99 latency and q-error SLO targets
    [HEALTH] burns the error budget against. *)

val registry : t -> Registry.t
val metrics : t -> Metrics.t

val n_domains : t -> int
(** Number of executor shards (the [?domains] argument). *)

val max_inflight : t -> int
val backlog : t -> int

val tcp_endpoint : t -> (string * int) option
(** The optional TCP listen endpoint ([?tcp] argument). *)

val cache : t -> Lru.t
(** Shard 0's estimate cache — "the" cache for embedded single-shard
    use and the transport-free {!handle_line} entry point (which always
    dispatches on shard 0). *)

val plan_cache : t -> Plan_cache.t
(** Shard 0's compiled-plan cache, keyed by (model name, version, query
    skeleton).  Exposed so tests and benchmarks can inspect or clear it;
    normal clients only see its hit/miss/eviction counters in [STATS] and
    [METRICS]. *)

val shard_cache : t -> int -> Lru.t
(** A specific shard's estimate cache (tests/benchmarks). *)

val shard_plan_cache : t -> int -> Plan_cache.t
(** A specific shard's plan cache.  On a sharded server
    [Plan_cache.synchronized] is [false] for every shard — the lock-free
    hot-path property tests assert on. *)

val socket_path : t -> string

val slowlog : t -> Selest_obs.Slowlog.t
(** The tail-sampled slow-log ring — [SLOWLOG]'s backing store, exposed
    so tests can assert on captures without re-parsing the text dump. *)

val qerror_table : t -> string -> Selest_obs.Qerror.t
(** The calling domain's shard-local rolling q-error histogram for a
    model name, created on first use.  [TRUTH] records into it; exposed
    so a workload replay can feed ground truth directly.  Merged across
    domains by {!qerror_tables} and the STATS/HEALTH/METRICS surfaces. *)

val qerror_tables : t -> (string * Selest_obs.Qerror.t) list
(** Every model with q-error observations — fresh merged copies, sorted
    by model name. *)

val handle_line : t -> string -> string * [ `Continue | `Stop ]
(** Dispatch one request line to one response, on shard 0.  Never
    raises: every failure (parse error, unknown model, bad model file,
    inference error) becomes an [ERR] response and [`Continue]; only
    [SHUTDOWN] returns [`Stop].  Every response is a single line except
    [METRICS], [EXPLAINPLAN], [HEALTH], [SHARDS] and [SLOWLOG], which
    return the [OK lines=<k>] multi-line frame
    ({!Protocol.extra_lines}). *)

val handle_line_shard : t -> shard:int -> string -> string * [ `Continue | `Stop ]
(** {!handle_line} against an explicit shard's domain-local state, so
    transport-free callers (tests, benches) can drive per-shard caches
    the way the listener's dispatch would.  Raises [Invalid_argument]
    when [shard] is out of range. *)

val fast_handlers :
  t ->
  shard:int ->
  (Unix.file_descr -> Bytes.t -> off:int -> len:int -> bool)
  * (Unix.file_descr -> Bytes.t -> off:int -> len:int -> bool)
(** The shard's allocation-free fast-path handlers [(on_line_fast,
    on_frame_fast)], exactly as {!run} wires them into the connection
    loop ({!Shard.run}).  Each recognizes a warm [EST] request as a
    slice of the connection buffer, answers it end to end (zero-copy
    parse into the shard scratch, hash probe, pre-rendered response
    write — no heap allocation on a verified hit) and returns [true];
    anything else returns [false] with no observable effect so the
    reference handlers take over.  Exposed so the front-end benchmark
    can drive the true socket path through {!Shard.Loopback}.  Raises
    [Invalid_argument] when [shard] is out of range. *)

val handle_frame : t -> bytes -> string
(** Dispatch one binary request payload ({!Protocol.Bin}, length prefix
    already stripped) to one encoded response frame, on shard 0.  The
    binary twin of {!handle_line} for [EST]/[ESTBATCH], sharing its
    request, latency and error accounting — exposed transport-free for
    the same reason.  A connection enters binary mode by sending the
    text line [BIN], which the shard connection loop answers with
    [OK bin] before switching to length-prefixed frames until EOF. *)

val shutdown_pool : t -> unit
(** Stop and join the worker domains (if any were spawned).  {!run} calls
    this on exit; transport-free users ({!handle_line}) that issued
    [ESTBATCH] requests should call it when done. *)

val run : t -> unit
(** Bind the Unix socket (unlinking a stale file first) and the optional
    TCP endpoint with the configured [backlog], spawn one executor
    domain per shard, and accept connections, handing each to a shard
    mailbox round-robin under the [max_inflight] admission budget
    (rejected connections get one [BUSY] line).  Returns once a
    [SHUTDOWN] request has been answered: the shard domains are joined,
    the socket file is removed, the domain pool is shut down and the
    final metrics are logged at info level. *)

val shutdown : t -> unit
(** Ask a running {!run} to stop, from any thread — the programmatic
    equivalent of the [SHUTDOWN] verb.  Idempotent; safe before [run]
    starts (it will exit before accepting) and after it returns.  Use it
    in cleanup paths so a harness never blocks joining a server whose
    [SHUTDOWN] request was lost to an earlier failure. *)
