type entry = {
  model : Selest_prm.Model.t;
  source : string;
  version : int;
  fingerprint : string;
}

(* An immutable registry generation: the association list is MRU-first
   (most recently (re)loaded name at the head), and nothing in it is
   ever mutated after publication.  Readers that pin a snapshot see one
   consistent world — every (name, version, fingerprint, model) tuple
   in it was published together, so torn version/model pairs are
   impossible by construction. *)
type snapshot = {
  epoch : int;
  entries : (string * entry) list; (* MRU-first, no duplicate names *)
}

type t = {
  schema : Selest_db.Schema.t;
  fingerprint : string;
  current : snapshot Atomic.t;
  write_lock : Mutex.t; (* serializes writers only; never on the read path *)
}

let empty_snapshot = { epoch = 0; entries = [] }

let create ~schema =
  {
    schema;
    fingerprint = Selest_prm.Serialize.schema_fingerprint schema;
    current = Atomic.make empty_snapshot;
    write_lock = Mutex.create ();
  }

let schema_fingerprint t = t.fingerprint

module Epoch = struct
  type nonrec snapshot = snapshot

  let pin t = Atomic.get t.current
  let epoch (s : snapshot) = s.epoch
  let current_epoch t = (Atomic.get t.current).epoch
  let find (s : snapshot) name = List.assoc_opt name s.entries

  let default (s : snapshot) =
    match s.entries with [] -> None | (name, e) :: _ -> Some (name, e)

  let names (s : snapshot) = List.map fst s.entries
  let size (s : snapshot) = List.length s.entries
  let entries (s : snapshot) = s.entries
end

(* Writers build the successor snapshot under [write_lock] and publish
   it with a single [Atomic.set] — readers holding the old snapshot keep
   a fully consistent view and the old generation is reclaimed by the GC
   once the last pinned reference drops (the grace period is implicit:
   a snapshot lives exactly as long as some request still points at
   it). *)
let install t ~name ~source model =
  Mutex.lock t.write_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.write_lock)
    (fun () ->
      let prev = Atomic.get t.current in
      let version =
        match List.assoc_opt name prev.entries with
        | Some e -> e.version + 1
        | None -> 1
      in
      let entry = { model; source; version; fingerprint = t.fingerprint } in
      let rest = List.filter (fun (n, _) -> n <> name) prev.entries in
      let next = { epoch = prev.epoch + 1; entries = (name, entry) :: rest } in
      Atomic.set t.current next;
      entry)

let load t ~name ~path =
  let model = Selest_prm.Serialize.load path ~schema:t.schema in
  install t ~name ~source:path model

let register t ~name model =
  if Selest_prm.Serialize.schema_fingerprint model.Selest_prm.Model.schema <> t.fingerprint
  then invalid_arg "Registry.register: model schema does not match this registry";
  install t ~name ~source:"<memory>" model

(* Conveniences that pin internally — each is one Atomic.get, no lock. *)
let find t name = Epoch.find (Epoch.pin t) name
let default t = Epoch.default (Epoch.pin t)
let names t = Epoch.names (Epoch.pin t)
let size t = Epoch.size (Epoch.pin t)
