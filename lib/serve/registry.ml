type entry = {
  model : Selest_prm.Model.t;
  source : string;
  version : int;
  fingerprint : string;
}

type t = {
  schema : Selest_db.Schema.t;
  fingerprint : string;
  entries : (string, entry) Hashtbl.t;
  mutable order : string list;  (* most recently (re)loaded first *)
}

let create ~schema =
  {
    schema;
    fingerprint = Selest_prm.Serialize.schema_fingerprint schema;
    entries = Hashtbl.create 8;
    order = [];
  }

let schema_fingerprint t = t.fingerprint

let install t ~name ~source model =
  let version =
    match Hashtbl.find_opt t.entries name with
    | Some e -> e.version + 1
    | None -> 1
  in
  let entry = { model; source; version; fingerprint = t.fingerprint } in
  Hashtbl.replace t.entries name entry;
  t.order <- name :: List.filter (fun n -> n <> name) t.order;
  entry

let load t ~name ~path =
  let model = Selest_prm.Serialize.load path ~schema:t.schema in
  install t ~name ~source:path model

let register t ~name model =
  if Selest_prm.Serialize.schema_fingerprint model.Selest_prm.Model.schema <> t.fingerprint
  then invalid_arg "Registry.register: model schema does not match this registry";
  install t ~name ~source:"<memory>" model

let find t name = Hashtbl.find_opt t.entries name

let default t =
  match t.order with
  | [] -> None
  | name :: _ -> Some (name, Hashtbl.find t.entries name)

let names t = t.order
let size t = Hashtbl.length t.entries
