type request =
  | Ping
  | Load of { name : string; path : string }
  | Est of { model : string option; body : string }
  | Estbatch of { model : string option; bodies : string list }
  | Explain of { model : string option; body : string }
  | Explainplan of { model : string option; body : string }
  | Truth of { model : string option; truth : float; body : string }
  | Stats
  | Metrics
  | Health
  | Shards
  | Slowlog of { n : int option }
  | Shutdown

let split_first_word s =
  let s = String.trim s in
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i ->
    (String.sub s 0 i, String.trim (String.sub s (i + 1) (String.length s - i - 1)))

(* Split a batch body on "||" separators (no escaping: neither the query
   syntax nor canonical keys contain a pipe). *)
let split_batch s =
  let n = String.length s in
  let items = ref [] and start = ref 0 and i = ref 0 in
  while !i < n - 1 do
    if s.[!i] = '|' && s.[!i + 1] = '|' then begin
      items := String.sub s !start (!i - !start) :: !items;
      i := !i + 2;
      start := !i
    end
    else incr i
  done;
  items := String.sub s !start (n - !start) :: !items;
  List.rev_map String.trim !items

(* Shared [@model] prefix + body parsing for EST-shaped commands. *)
let parse_model_body ~cmd rest k =
  if rest = "" then Error (cmd ^ " expects a query body")
  else if rest.[0] = '@' then (
    let model, body = split_first_word rest in
    let model = String.sub model 1 (String.length model - 1) in
    if model = "" then Error (cmd ^ ": empty model name after @")
    else if body = "" then Error (cmd ^ " expects a query body after @model")
    else k (Some model) body)
  else k None rest

let parse_request line =
  let cmd, rest = split_first_word line in
  match String.uppercase_ascii cmd with
  | "" -> Error "empty request"
  | "PING" -> Ok Ping
  | "STATS" -> Ok Stats
  | "METRICS" -> Ok Metrics
  | "HEALTH" -> Ok Health
  | "SHARDS" -> Ok Shards
  | "SLOWLOG" ->
    if rest = "" then Ok (Slowlog { n = None })
    else (
      match int_of_string_opt rest with
      | Some n when n > 0 -> Ok (Slowlog { n = Some n })
      | _ -> Error "SLOWLOG expects: SLOWLOG [<count>]")
  | "SHUTDOWN" -> Ok Shutdown
  | "LOAD" -> (
    match String.split_on_char ' ' rest |> List.filter (fun s -> s <> "") with
    | [ name; path ] -> Ok (Load { name; path })
    | _ -> Error "LOAD expects: LOAD <name> <path>")
  | "EST" ->
    parse_model_body ~cmd:"EST" rest (fun model body ->
        Ok (Est { model; body }))
  | "EXPLAIN" ->
    parse_model_body ~cmd:"EXPLAIN" rest (fun model body ->
        Ok (Explain { model; body }))
  | "EXPLAINPLAN" ->
    parse_model_body ~cmd:"EXPLAINPLAN" rest (fun model body ->
        Ok (Explainplan { model; body }))
  | "TRUTH" ->
    parse_model_body ~cmd:"TRUTH" rest (fun model rest ->
        let truth_word, body = split_first_word rest in
        match float_of_string_opt truth_word with
        | None ->
          Error "TRUTH expects: TRUTH [@model] <true-size> <query body>"
        | Some truth ->
          if truth < 0.0 || Float.is_nan truth then
            Error "TRUTH: true size must be a non-negative number"
          else if body = "" then Error "TRUTH expects a query body"
          else Ok (Truth { model; truth; body }))
  | "ESTBATCH" ->
    if rest = "" then Error "ESTBATCH expects one or more query bodies"
    else
      let model, batch =
        if rest.[0] = '@' then (
          let model, batch = split_first_word rest in
          (Some (String.sub model 1 (String.length model - 1)), batch))
        else (None, rest)
      in
      if model = Some "" then Error "ESTBATCH: empty model name after @"
      else if batch = "" then Error "ESTBATCH expects query bodies after @model"
      else
        let bodies = split_batch batch in
        if List.exists (fun b -> b = "") bodies then
          Error "ESTBATCH: empty query body in batch"
        else Ok (Estbatch { model; bodies })
  | other -> Error (Printf.sprintf "unknown command %S" other)

(* Split on commas at brace depth 0, so set predicates survive. *)
let split_top_commas s =
  let items = ref [] and buf = Buffer.create 16 and depth = ref 0 in
  let flush () =
    let item = String.trim (Buffer.contents buf) in
    Buffer.clear buf;
    if item <> "" then items := item :: !items
  in
  String.iter
    (fun c ->
      match c with
      | '{' ->
        incr depth;
        Buffer.add_char buf c
      | '}' ->
        decr depth;
        Buffer.add_char buf c
      | ',' when !depth = 0 -> flush ()
      | c -> Buffer.add_char buf c)
    s;
  flush ();
  List.rev !items

let split_sections body =
  let sections = String.split_on_char ';' body |> List.map split_top_commas in
  let tvars, joins, selects =
    match sections with
    | [ tvars ] -> (tvars, [], [])
    | [ tvars; joins ] -> (tvars, joins, [])
    | [ tvars; joins; selects ] -> (tvars, joins, selects)
    | _ -> failwith "EST: too many ';'-sections (expected tvars ; joins ; selects)"
  in
  if tvars = [] then failwith "EST: empty tuple-variable section";
  (tvars, joins, selects)

let one_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

let ok payload = if payload = "" then "OK" else "OK " ^ one_line payload
let err msg = "ERR " ^ one_line msg

(* 503-style admission rejection: sent by an overloaded server instead
   of a normal response, immediately before it closes the connection.
   Distinct from ERR so clients can tell "retry later" from "your
   request is wrong". *)
let busy msg = if msg = "" then "BUSY" else "BUSY " ^ one_line msg
let pong = "PONG"

(* Multi-line framing (METRICS): a header line "OK lines=<k>" announces
   how many raw payload lines follow, so line-oriented clients know
   exactly how much to read. *)
let ok_multiline payload =
  let payload =
    let n = String.length payload in
    if n > 0 && payload.[n - 1] = '\n' then String.sub payload 0 (n - 1)
    else payload
  in
  if payload = "" then "OK lines=0"
  else
    let k = List.length (String.split_on_char '\n' payload) in
    Printf.sprintf "OK lines=%d\n%s" k payload

let extra_lines header =
  match String.split_on_char ' ' header with
  | [ "OK"; field ] -> (
    match String.index_opt field '=' with
    | Some i when String.sub field 0 i = "lines" -> (
      match
        int_of_string_opt
          (String.sub field (i + 1) (String.length field - i - 1))
      with
      | Some k when k >= 0 -> k
      | _ -> 0)
    | _ -> 0)
  | _ -> 0

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let is_ok s = s = "OK" || has_prefix ~prefix:"OK " s || s = pong
let is_err s = s = "ERR" || has_prefix ~prefix:"ERR " s
let is_busy s = s = "BUSY" || has_prefix ~prefix:"BUSY " s

let payload s =
  match String.index_opt s ' ' with
  | None -> ""
  | Some i -> String.sub s (i + 1) (String.length s - i - 1)

let stats_field response key =
  let body = if is_ok response || is_err response then payload response else response in
  String.split_on_char ' ' body
  |> List.find_map (fun pair ->
         match String.index_opt pair '=' with
         | Some i when String.sub pair 0 i = key ->
           Some (String.sub pair (i + 1) (String.length pair - i - 1))
         | _ -> None)

(* ---- binary wire frames ---------------------------------------------------- *)

module Bin = struct
  let hello = "BIN"
  let hello_ok = "OK bin"
  let max_frame = 1 lsl 24 (* 16 MiB — far above any legitimate batch *)

  type brequest =
    | Best of { model : string option; body : string }
    | Bestbatch of { model : string option; bodies : string list }

  type bresponse =
    | Bvalue of float
    | Bvalues of float list
    | Berr of string

  let op_est = 1
  let op_estbatch = 2
  let op_value = 0
  let op_values = 1
  let op_err = 2

  let model_string = function None -> "" | Some m -> m
  let model_of_string = function "" -> None | m -> Some m

  (* Every encoder emits the complete frame: a u32 big-endian payload
     length followed by the payload. *)
  let frame payload_of =
    let body = Buffer.create 64 in
    payload_of body;
    let len = Buffer.length body in
    if len > max_frame then invalid_arg "Protocol.Bin: frame too large";
    let out = Buffer.create (len + 4) in
    Buffer.add_int32_be out (Int32.of_int len);
    Buffer.add_buffer out body;
    Buffer.contents out

  let add_model buf model =
    let m = model_string model in
    if String.length m > 0xffff then invalid_arg "Protocol.Bin: model name too long";
    Buffer.add_uint16_be buf (String.length m);
    Buffer.add_string buf m

  let encode_request = function
    | Best { model; body } ->
      frame (fun buf ->
          Buffer.add_uint8 buf op_est;
          add_model buf model;
          Buffer.add_string buf body)
    | Bestbatch { model; bodies } ->
      if List.length bodies > 0xffff then
        invalid_arg "Protocol.Bin: too many batch bodies";
      frame (fun buf ->
          Buffer.add_uint8 buf op_estbatch;
          add_model buf model;
          Buffer.add_uint16_be buf (List.length bodies);
          List.iter
            (fun b ->
              Buffer.add_int32_be buf (Int32.of_int (String.length b));
              Buffer.add_string buf b)
            bodies)

  let encode_response = function
    | Bvalue v ->
      frame (fun buf ->
          Buffer.add_uint8 buf op_value;
          Buffer.add_int64_be buf (Int64.bits_of_float v))
    | Bvalues vs ->
      if List.length vs > 0xffff then
        invalid_arg "Protocol.Bin: too many batch values";
      frame (fun buf ->
          Buffer.add_uint8 buf op_values;
          Buffer.add_uint16_be buf (List.length vs);
          List.iter (fun v -> Buffer.add_int64_be buf (Int64.bits_of_float v)) vs)
    | Berr msg ->
      frame (fun buf ->
          Buffer.add_uint8 buf op_err;
          Buffer.add_string buf msg)

  (* Decoders are total: every read is bounds-checked, so truncated or
     garbage payloads come back as [Error] — never an exception.  The
     payload is the frame body, length prefix already stripped. *)

  let read_u16 b off =
    if off + 2 <= Bytes.length b then Some (Bytes.get_uint16_be b off) else None

  let read_u32 b off =
    if off + 4 <= Bytes.length b then
      Some (Int32.to_int (Bytes.get_int32_be b off) land 0xffffffff)
    else None

  let decode_request b =
    let n = Bytes.length b in
    if n < 1 then Error "bin: empty request frame"
    else
      let op = Bytes.get_uint8 b 0 in
      match read_u16 b 1 with
      | None -> Error "bin: truncated model length"
      | Some mlen ->
        if 3 + mlen > n then Error "bin: truncated model name"
        else
          let model = model_of_string (Bytes.sub_string b 3 mlen) in
          let off = 3 + mlen in
          if op = op_est then Ok (Best { model; body = Bytes.sub_string b off (n - off) })
          else if op = op_estbatch then (
            match read_u16 b off with
            | None -> Error "bin: truncated body count"
            | Some count ->
              let rec bodies acc off k =
                if k = 0 then
                  if off = n then Ok (List.rev acc)
                  else Error "bin: trailing bytes after batch bodies"
                else
                  match read_u32 b off with
                  | None -> Error "bin: truncated body length"
                  | Some blen ->
                    if blen > n - (off + 4) then Error "bin: truncated body"
                    else
                      bodies
                        (Bytes.sub_string b (off + 4) blen :: acc)
                        (off + 4 + blen) (k - 1)
              in
              match bodies [] (off + 2) count with
              | Ok bodies -> Ok (Bestbatch { model; bodies })
              | Error _ as e -> e)
          else Error (Printf.sprintf "bin: unknown request opcode %d" op)

  let decode_response b =
    let n = Bytes.length b in
    if n < 1 then Error "bin: empty response frame"
    else
      let op = Bytes.get_uint8 b 0 in
      if op = op_value then
        if n <> 9 then Error "bin: bad value frame length"
        else Ok (Bvalue (Int64.float_of_bits (Bytes.get_int64_be b 1)))
      else if op = op_values then (
        match read_u16 b 1 with
        | None -> Error "bin: truncated value count"
        | Some count ->
          if n <> 3 + (8 * count) then Error "bin: bad values frame length"
          else
            let rec values acc k =
              if k < 0 then acc
              else values (Int64.float_of_bits (Bytes.get_int64_be b (3 + (8 * k))) :: acc) (k - 1)
            in
            Ok (Bvalues (values [] (count - 1))))
      else if op = op_err then Ok (Berr (Bytes.sub_string b 1 (n - 1)))
      else Error (Printf.sprintf "bin: unknown response opcode %d" op)

  (* Channel framing.  [read_frame] distinguishes a clean EOF (no more
     frames) from an oversized/negative length announcement, which is
     unrecoverable — the stream can no longer be resynchronized. *)
  let read_frame ic =
    match really_input_string ic 4 with
    | exception End_of_file -> `Eof
    | hdr ->
      let len = Int32.to_int (String.get_int32_be hdr 0) land 0xffffffff in
      if len > max_frame then `Oversized len
      else (
        match really_input_string ic len with
        | exception End_of_file -> `Eof
        | payload -> `Frame (Bytes.of_string payload))

  let write_frame oc encoded =
    output_string oc encoded;
    flush oc
end

(* ---- zero-copy request recognition ---------------------------------------- *)

(* Slice recognizers for the allocation-free front-end.  Each fills a
   reusable scratch record with (offset, length) slices into the
   caller's buffer instead of materializing strings.  They recognize a
   strict subset of what [parse_request] / [Bin.decode_request] accept
   — exact uppercase "EST", well-formed [@model], non-empty body — and
   answer [false] for everything else, so a caller can always fall back
   to the allocating reference parsers and get identical behavior
   (including error messages) on the cold path. *)
module Slice = struct
  type t = {
    mutable model_off : int;
    mutable model_len : int;  (* 0 = default model *)
    mutable body_off : int;
    mutable body_len : int;
  }

  let create () = { model_off = 0; model_len = 0; body_off = 0; body_len = 0 }

  (* The whitespace set [String.trim] strips — the reference parser
     trims the line, the model/body split, and the body with it. *)
  let is_ws c = c = ' ' || c = '\t' || c = '\n' || c = '\r' || c = '\012'

  let est_line sl buf ~off ~len =
    let stop = off + len in
    let i = ref off in
    while !i < stop && is_ws (Bytes.unsafe_get buf !i) do incr i done;
    let i0 = !i in
    (* The reference splits the command word at ' ' only, so anything
       but "EST " here is some other (or malformed) command. *)
    if
      i0 + 4 > stop
      || Bytes.unsafe_get buf i0 <> 'E'
      || Bytes.unsafe_get buf (i0 + 1) <> 'S'
      || Bytes.unsafe_get buf (i0 + 2) <> 'T'
      || Bytes.unsafe_get buf (i0 + 3) <> ' '
    then false
    else begin
      let j = ref (i0 + 4) in
      while !j < stop && is_ws (Bytes.unsafe_get buf !j) do incr j done;
      let ok_model =
        if !j < stop && Bytes.unsafe_get buf !j = '@' then begin
          (* Model token runs to the first ' ' (reference semantics);
             a bare '@' is an error the slow path reports. *)
          let m0 = !j + 1 in
          let k = ref m0 in
          while !k < stop && Bytes.unsafe_get buf !k <> ' ' do incr k done;
          sl.model_off <- m0;
          sl.model_len <- !k - m0;
          j := !k;
          while !j < stop && is_ws (Bytes.unsafe_get buf !j) do incr j done;
          sl.model_len > 0
        end
        else begin
          sl.model_off <- 0;
          sl.model_len <- 0;
          true
        end
      in
      ok_model
      && !j < stop
      &&
      let e = ref stop in
      while !e > !j && is_ws (Bytes.unsafe_get buf (!e - 1)) do decr e done;
      sl.body_off <- !j;
      sl.body_len <- !e - !j;
      sl.body_len > 0
    end

  let bin_est sl buf ~off ~len =
    len >= 3
    && Bytes.get_uint8 buf off = Bin.op_est
    &&
    let mlen = Bytes.get_uint16_be buf (off + 1) in
    3 + mlen <= len
    &&
    begin
      sl.model_off <- off + 3;
      sl.model_len <- mlen;
      sl.body_off <- off + 3 + mlen;
      sl.body_len <- len - 3 - mlen;
      sl.body_len > 0
    end
end
