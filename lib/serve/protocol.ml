type request =
  | Ping
  | Load of { name : string; path : string }
  | Est of { model : string option; body : string }
  | Estbatch of { model : string option; bodies : string list }
  | Explain of { model : string option; body : string }
  | Explainplan of { model : string option; body : string }
  | Truth of { model : string option; truth : float; body : string }
  | Stats
  | Metrics
  | Shutdown

let split_first_word s =
  let s = String.trim s in
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i ->
    (String.sub s 0 i, String.trim (String.sub s (i + 1) (String.length s - i - 1)))

(* Split a batch body on "||" separators (no escaping: neither the query
   syntax nor canonical keys contain a pipe). *)
let split_batch s =
  let n = String.length s in
  let items = ref [] and start = ref 0 and i = ref 0 in
  while !i < n - 1 do
    if s.[!i] = '|' && s.[!i + 1] = '|' then begin
      items := String.sub s !start (!i - !start) :: !items;
      i := !i + 2;
      start := !i
    end
    else incr i
  done;
  items := String.sub s !start (n - !start) :: !items;
  List.rev_map String.trim !items

(* Shared [@model] prefix + body parsing for EST-shaped commands. *)
let parse_model_body ~cmd rest k =
  if rest = "" then Error (cmd ^ " expects a query body")
  else if rest.[0] = '@' then (
    let model, body = split_first_word rest in
    let model = String.sub model 1 (String.length model - 1) in
    if model = "" then Error (cmd ^ ": empty model name after @")
    else if body = "" then Error (cmd ^ " expects a query body after @model")
    else k (Some model) body)
  else k None rest

let parse_request line =
  let cmd, rest = split_first_word line in
  match String.uppercase_ascii cmd with
  | "" -> Error "empty request"
  | "PING" -> Ok Ping
  | "STATS" -> Ok Stats
  | "METRICS" -> Ok Metrics
  | "SHUTDOWN" -> Ok Shutdown
  | "LOAD" -> (
    match String.split_on_char ' ' rest |> List.filter (fun s -> s <> "") with
    | [ name; path ] -> Ok (Load { name; path })
    | _ -> Error "LOAD expects: LOAD <name> <path>")
  | "EST" ->
    parse_model_body ~cmd:"EST" rest (fun model body ->
        Ok (Est { model; body }))
  | "EXPLAIN" ->
    parse_model_body ~cmd:"EXPLAIN" rest (fun model body ->
        Ok (Explain { model; body }))
  | "EXPLAINPLAN" ->
    parse_model_body ~cmd:"EXPLAINPLAN" rest (fun model body ->
        Ok (Explainplan { model; body }))
  | "TRUTH" ->
    parse_model_body ~cmd:"TRUTH" rest (fun model rest ->
        let truth_word, body = split_first_word rest in
        match float_of_string_opt truth_word with
        | None ->
          Error "TRUTH expects: TRUTH [@model] <true-size> <query body>"
        | Some truth ->
          if truth < 0.0 || Float.is_nan truth then
            Error "TRUTH: true size must be a non-negative number"
          else if body = "" then Error "TRUTH expects a query body"
          else Ok (Truth { model; truth; body }))
  | "ESTBATCH" ->
    if rest = "" then Error "ESTBATCH expects one or more query bodies"
    else
      let model, batch =
        if rest.[0] = '@' then (
          let model, batch = split_first_word rest in
          (Some (String.sub model 1 (String.length model - 1)), batch))
        else (None, rest)
      in
      if model = Some "" then Error "ESTBATCH: empty model name after @"
      else if batch = "" then Error "ESTBATCH expects query bodies after @model"
      else
        let bodies = split_batch batch in
        if List.exists (fun b -> b = "") bodies then
          Error "ESTBATCH: empty query body in batch"
        else Ok (Estbatch { model; bodies })
  | other -> Error (Printf.sprintf "unknown command %S" other)

(* Split on commas at brace depth 0, so set predicates survive. *)
let split_top_commas s =
  let items = ref [] and buf = Buffer.create 16 and depth = ref 0 in
  let flush () =
    let item = String.trim (Buffer.contents buf) in
    Buffer.clear buf;
    if item <> "" then items := item :: !items
  in
  String.iter
    (fun c ->
      match c with
      | '{' ->
        incr depth;
        Buffer.add_char buf c
      | '}' ->
        decr depth;
        Buffer.add_char buf c
      | ',' when !depth = 0 -> flush ()
      | c -> Buffer.add_char buf c)
    s;
  flush ();
  List.rev !items

let split_sections body =
  let sections = String.split_on_char ';' body |> List.map split_top_commas in
  let tvars, joins, selects =
    match sections with
    | [ tvars ] -> (tvars, [], [])
    | [ tvars; joins ] -> (tvars, joins, [])
    | [ tvars; joins; selects ] -> (tvars, joins, selects)
    | _ -> failwith "EST: too many ';'-sections (expected tvars ; joins ; selects)"
  in
  if tvars = [] then failwith "EST: empty tuple-variable section";
  (tvars, joins, selects)

let one_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

let ok payload = if payload = "" then "OK" else "OK " ^ one_line payload
let err msg = "ERR " ^ one_line msg
let pong = "PONG"

(* Multi-line framing (METRICS): a header line "OK lines=<k>" announces
   how many raw payload lines follow, so line-oriented clients know
   exactly how much to read. *)
let ok_multiline payload =
  let payload =
    let n = String.length payload in
    if n > 0 && payload.[n - 1] = '\n' then String.sub payload 0 (n - 1)
    else payload
  in
  if payload = "" then "OK lines=0"
  else
    let k = List.length (String.split_on_char '\n' payload) in
    Printf.sprintf "OK lines=%d\n%s" k payload

let extra_lines header =
  match String.split_on_char ' ' header with
  | [ "OK"; field ] -> (
    match String.index_opt field '=' with
    | Some i when String.sub field 0 i = "lines" -> (
      match
        int_of_string_opt
          (String.sub field (i + 1) (String.length field - i - 1))
      with
      | Some k when k >= 0 -> k
      | _ -> 0)
    | _ -> 0)
  | _ -> 0

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let is_ok s = s = "OK" || has_prefix ~prefix:"OK " s || s = pong
let is_err s = s = "ERR" || has_prefix ~prefix:"ERR " s

let payload s =
  match String.index_opt s ' ' with
  | None -> ""
  | Some i -> String.sub s (i + 1) (String.length s - i - 1)

let stats_field response key =
  let body = if is_ok response || is_err response then payload response else response in
  String.split_on_char ' ' body
  |> List.find_map (fun pair ->
         match String.index_opt pair '=' with
         | Some i when String.sub pair 0 i = key ->
           Some (String.sub pair (i + 1) (String.length pair - i - 1))
         | _ -> None)
