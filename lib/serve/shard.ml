(* One executor shard's connection event loop.

   The listener hands accepted fds to a shard through a small
   mutex-guarded mailbox — the only synchronized structure here, and it
   is touched once per *connection*, never per request.  From then on
   the shard owns the connection exclusively: its [select] loop reads
   whatever bytes are available, slices complete protocol messages out
   of a per-connection buffer (text lines or length-prefixed binary
   frames after the BIN upgrade), and calls back into the server's
   dispatch with no locking whatsoever — the shard's caches, telemetry
   shard and arena are all domain-local.

   A self-pipe wakes the loop out of [select] when the listener
   enqueues a connection or a shutdown is requested; the short select
   timeout is belt-and-braces so a lost wakeup can only delay, never
   hang, the loop. *)

type conn = {
  fd : Unix.file_descr;
  mutable inbuf : Bytes.t;
  mutable start : int;  (* first unconsumed byte *)
  mutable len : int;  (* end of valid data *)
  mutable mode : [ `Text | `Bin ];
  mutable alive : bool;
}

type t = {
  sid : int;
  mailbox : Unix.file_descr Queue.t;
  mb_lock : Mutex.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
}

let create ~sid =
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_w;
  {
    sid;
    mailbox = Queue.create ();
    mb_lock = Mutex.create ();
    wake_r;
    wake_w;
  }

let sid t = t.sid

let wake t =
  (* A full pipe already guarantees a pending wakeup; EAGAIN is fine. *)
  try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error _ -> ()

let submit t fd =
  Mutex.lock t.mb_lock;
  Queue.push fd t.mailbox;
  Mutex.unlock t.mb_lock;
  wake t

let drain_mailbox t =
  Mutex.lock t.mb_lock;
  let fds = Queue.fold (fun acc fd -> fd :: acc) [] t.mailbox in
  Queue.clear t.mailbox;
  Mutex.unlock t.mb_lock;
  List.rev fds

let drain_wake_pipe t =
  let scratch = Bytes.create 64 in
  let rec go () =
    match Unix.read t.wake_r scratch 0 64 with
    | 64 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

let new_conn fd =
  { fd; inbuf = Bytes.create 4096; start = 0; len = 0; mode = `Text;
    alive = true }

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let write_line fd s =
  write_all fd (s ^ "\n")

(* Ensure room for one more read chunk, compacting the consumed prefix
   first and growing only when a single message spans the whole buffer. *)
let chunk = 4096

let ensure_room c =
  if c.start > 0 then begin
    Bytes.blit c.inbuf c.start c.inbuf 0 (c.len - c.start);
    c.len <- c.len - c.start;
    c.start <- 0
  end;
  if Bytes.length c.inbuf - c.len < chunk then begin
    let grown = Bytes.create (2 * Bytes.length c.inbuf) in
    Bytes.blit c.inbuf 0 grown 0 c.len;
    c.inbuf <- grown
  end

let close_conn c =
  c.alive <- false;
  (try Unix.close c.fd with Unix.Unix_error _ -> ())

(* Index of the next '\n' in the buffered data, or -1.  Top-level
   recursion: an inner [let rec] would close over [c] and allocate on
   every scan. *)
let rec find_nl_from c i =
  if i >= c.len then -1
  else if Bytes.unsafe_get c.inbuf i = '\n' then i
  else find_nl_from c (i + 1)

let find_nl c = find_nl_from c c.start

(* Frame-length read without the [Int32] box [Bytes.get_int32_be]
   would allocate — the warm binary path must not touch the heap. *)
let read_u32_be b i =
  (Bytes.get_uint16_be b i lsl 16) lor Bytes.get_uint16_be b (i + 2)

(* Process every complete message currently buffered on [c].  Returns
   [`Stop] when a handler requested server shutdown (its response has
   already been written).

   Each message is first offered to the fast handler as a slice of the
   connection buffer — [on_line_fast] / [on_frame_fast] get the fd and
   (buffer, off, len) and return [true] when they recognized, served
   and answered the request without any string ever being built.  Only
   on [false] is the line / frame payload copied out for the reference
   handlers.  The fast handlers only match [EST] requests, so the [BIN]
   hello and every other verb always reach the reference path.  Written
   as a tail recursion over constant constructors: the warm loop itself
   allocates nothing. *)
(* Top-level recursion with the handlers threaded as plain arguments: a
   [let rec go ()] closure inside [process_conn] would capture six
   values and be rebuilt on every call — the warm loop must not touch
   the heap. *)
let rec process_go c on_line_fast on_frame_fast on_line on_frame
    on_protocol_error =
  if not c.alive then `Continue
  else
    match c.mode with
    | `Text ->
      let nl = find_nl c in
      if nl < 0 then `Continue
      else begin
        let stop =
          if nl > c.start && Bytes.unsafe_get c.inbuf (nl - 1) = '\r' then
            nl - 1
          else nl
        in
        let off = c.start and len = stop - c.start in
        if on_line_fast c.fd c.inbuf ~off ~len then begin
          c.start <- nl + 1;
          process_go c on_line_fast on_frame_fast on_line on_frame
            on_protocol_error
        end
        else begin
          let line = Bytes.sub_string c.inbuf off len in
          c.start <- nl + 1;
          if String.uppercase_ascii (String.trim line) = Protocol.Bin.hello
          then begin
            (* Upgrade: acknowledge in text, switch framing.  The hello
               itself is not a counted request. *)
            write_line c.fd Protocol.Bin.hello_ok;
            c.mode <- `Bin;
            process_go c on_line_fast on_frame_fast on_line on_frame
              on_protocol_error
          end
          else begin
            let response, action = on_line line in
            write_line c.fd response;
            if action = `Stop then begin
              close_conn c;
              `Stop
            end
            else
              process_go c on_line_fast on_frame_fast on_line on_frame
                on_protocol_error
          end
        end
      end
    | `Bin ->
      if c.len - c.start < 4 then `Continue
      else begin
        let flen = read_u32_be c.inbuf c.start in
        if flen > Protocol.Bin.max_frame then begin
          (* Unrecoverable: the stream cannot be resynchronized. *)
          on_protocol_error ();
          write_all c.fd
            (Protocol.Bin.encode_response
               (Protocol.Bin.Berr
                  (Printf.sprintf "bin: frame length %d exceeds %d" flen
                     Protocol.Bin.max_frame)));
          close_conn c;
          `Continue
        end
        else if c.len - c.start - 4 < flen then `Continue
        else begin
          let off = c.start + 4 in
          if on_frame_fast c.fd c.inbuf ~off ~len:flen then begin
            c.start <- c.start + 4 + flen;
            process_go c on_line_fast on_frame_fast on_line on_frame
              on_protocol_error
          end
          else begin
            let payload = Bytes.sub c.inbuf off flen in
            c.start <- c.start + 4 + flen;
            write_all c.fd (on_frame payload);
            process_go c on_line_fast on_frame_fast on_line on_frame
              on_protocol_error
          end
        end
      end

let process_conn c ~on_line_fast ~on_frame_fast ~on_line ~on_frame
    ~on_protocol_error =
  try process_go c on_line_fast on_frame_fast on_line on_frame on_protocol_error
  with Unix.Unix_error _ | Sys_error _ ->
    close_conn c;
    `Continue

(* Read whatever is available on [c]; 0 bytes means the peer closed. *)
let read_into c =
  ensure_room c;
  match Unix.read c.fd c.inbuf c.len chunk with
  | 0 -> close_conn c
  | n -> c.len <- c.len + n
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    -> ()
  | exception Unix.Unix_error _ -> close_conn c

let run t ~stop ~request_stop ~on_line_fast ~on_frame_fast ~on_line ~on_frame
    ~on_close ~on_protocol_error () =
  let conns = ref [] in
  let reap () =
    let live, dead = List.partition (fun c -> c.alive) !conns in
    List.iter (fun _ -> on_close ()) dead;
    conns := live
  in
  while not (Atomic.get stop) do
    let fds = t.wake_r :: List.map (fun c -> c.fd) !conns in
    match Unix.select fds [] [] 0.25 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
      if List.memq t.wake_r readable then begin
        drain_wake_pipe t;
        List.iter
          (fun fd -> conns := new_conn fd :: !conns)
          (drain_mailbox t)
      end;
      List.iter
        (fun c ->
          if c.alive && List.memq c.fd readable then begin
            read_into c;
            if c.alive then
              match
                process_conn c ~on_line_fast ~on_frame_fast ~on_line ~on_frame
                  ~on_protocol_error
              with
              | `Continue -> ()
              | `Stop -> request_stop ()
          end)
        !conns;
      reap ()
  done;
  (* Shutdown: close every owned connection and anything still queued. *)
  List.iter (fun c -> if c.alive then close_conn c) !conns;
  List.iter (fun _ -> on_close ()) !conns;
  conns := [];
  List.iter
    (fun fd ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      on_close ())
    (drain_mailbox t)

let destroy t =
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_w with Unix.Unix_error _ -> ())

(* ---- loopback harness ----------------------------------------------------- *)

(* Drive one connection synchronously over an fd the caller already
   owns (a socketpair end): no mailbox, no [select], no domain.  The
   front-end benchmark and the tests use this to measure the true
   socket-read → answer-write path — fast handlers included — without
   standing up a listener. *)
module Loopback = struct
  type nonrec conn = conn

  let connect fd = new_conn fd
  let upgrade_bin c = c.mode <- `Bin
  let alive c = c.alive

  let step c ~on_line_fast ~on_frame_fast ~on_line ~on_frame =
    read_into c;
    if c.alive then
      ignore
        (process_conn c ~on_line_fast ~on_frame_fast ~on_line ~on_frame
           ~on_protocol_error:ignore)
end
