(** LRU cache of compiled plans, keyed by (model version × query
    skeleton).

    The estimation service answers streams of bindings over a small set
    of skeletons; compiling a {!Selest_plan.Plan.t} per request would
    redo the upward closure, factor construction and schedule seeding
    every time.  This cache holds one plan per hot skeleton.  The model
    version is part of the caller's key, so a hot-reload naturally
    invalidates: new version, new keys, and the old entries age out of
    the LRU.

    Thread-safe: one cache is shared by the [ESTBATCH] worker pool.
    Compilation happens under the cache mutex, so concurrent misses on
    one skeleton compile once, not once per domain. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] is an entry count (plans are small — factors are shared
    with the model's CPDs); default 256. *)

val find_or_compile :
  t -> key:string -> compile:(unit -> Selest_plan.Plan.t) ->
  Selest_plan.Plan.t * [ `Hit | `Miss ]
(** Return the cached plan for [key], or run [compile], cache and return
    it (evicting the least-recently-used entry when full). *)

val stats : t -> int * int * int
(** (hits, misses, evictions) since creation. *)

val length : t -> int

val clear : t -> unit
(** Drop every entry (hot-reload, tests).  Counters are kept. *)
