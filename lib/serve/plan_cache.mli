(** LRU cache of compiled plans, keyed by (model version × query
    skeleton).

    The estimation service answers streams of bindings over a small set
    of skeletons; compiling a {!Selest_plan.Plan.t} per request would
    redo the upward closure, factor construction and schedule seeding
    every time.  This cache holds one plan per hot skeleton.  The model
    version is part of the caller's key, so a hot-reload naturally
    invalidates: new version, new keys, and the old entries age out of
    the LRU.

    Thread-safe by default: one cache is shared by the [ESTBATCH]
    worker pool of a single-shard server, and compilation happens under
    the cache mutex so concurrent misses on one skeleton compile once,
    not once per domain.  A shard-per-domain server instead gives each
    executor domain a private cache created with [~synchronized:false],
    which elides the mutex entirely — the request hot path then probes
    and compiles without any lock. *)

type t

val create : ?capacity:int -> ?synchronized:bool -> unit -> t
(** [capacity] is an entry count (plans are small — factors are shared
    with the model's CPDs); default 256.  [synchronized] (default
    [true]) selects the mutex-guarded mode; pass [false] for a
    domain-private cache that must never be shared. *)

val synchronized : t -> bool
(** Whether this cache locks around every operation. *)

val find_or_compile :
  t -> hash:int -> key:string -> compile:(unit -> Selest_plan.Plan.t) ->
  Selest_plan.Plan.t * [ `Hit | `Miss ]
(** Return the cached plan for the key, or run [compile], cache and
    return it (evicting the least-recently-used entry when full).  The
    table indexes on [hash] (precompute it with {!Canon.Skel} — one
    buffer pass, one FNV fold); [key] is the full rendered key, stored
    beside the entry and string-compared only when a probe's hash
    matches.  A probe whose hash matches a {e different} resident key —
    a true collision — counts a miss, evicts the resident and caches
    the new plan. *)

val stats : t -> int * int * int
(** (hits, misses, evictions) since creation. *)

val collisions : t -> int
(** Probes whose hash matched a different full key (evicted and
    recompiled); 0 in any realistic workload. *)

val length : t -> int

val clear : t -> unit
(** Drop every entry (hot-reload, tests).  Counters are kept. *)
