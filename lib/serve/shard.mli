(** One executor shard's connection event loop.

    A shard-per-domain server spawns one domain per shard; each domain
    runs {!run}, which multiplexes every connection the listener has
    handed it over a [select] loop.  The listener→shard handoff is a
    small mutex-guarded mailbox plus a self-pipe wakeup — synchronized
    once per {e connection}, never per request — and from then on the
    connection is owned exclusively by the shard: message extraction,
    dispatch and the reply write all happen on the shard's domain with
    no locks.

    The loop understands both wire formats of {!Protocol}: newline-
    terminated text lines, and, after a connection sends the [BIN]
    hello, length-prefixed binary frames.  Partial reads are buffered
    per connection; a frame announcing more than
    {!Protocol.Bin.max_frame} bytes is answered with a binary error and
    the connection dropped (the stream cannot be resynchronized). *)

type t

val create : sid:int -> t
(** A shard runtime with an empty mailbox and a fresh wakeup pipe. *)

val sid : t -> int

val submit : t -> Unix.file_descr -> unit
(** Hand an accepted connection to this shard (listener side): enqueue
    the fd and wake the loop.  The shard now owns closing it. *)

val wake : t -> unit
(** Wake the loop out of [select] (used to propagate a stop request). *)

val run :
  t ->
  stop:bool Atomic.t ->
  request_stop:(unit -> unit) ->
  on_line_fast:(Unix.file_descr -> Bytes.t -> off:int -> len:int -> bool) ->
  on_frame_fast:(Unix.file_descr -> Bytes.t -> off:int -> len:int -> bool) ->
  on_line:(string -> string * [ `Continue | `Stop ]) ->
  on_frame:(bytes -> string) ->
  on_close:(unit -> unit) ->
  on_protocol_error:(unit -> unit) ->
  unit ->
  unit
(** Run the event loop until [stop] is set.

    Every complete message is first offered to the matching fast
    handler as a {e slice of the connection buffer}: [on_line_fast fd
    buf ~off ~len] (one text line, newline stripped) and
    [on_frame_fast fd buf ~off ~len] (one frame payload, length prefix
    stripped) return [true] when they recognized the request and wrote
    the complete response to [fd] themselves — the loop then consumes
    the message without ever copying it.  On [false] the message is
    copied out and handed to the reference handlers, so a fast handler
    that only recognizes warm [EST] requests leaves every other verb
    (including the [BIN] upgrade hello) byte-identical to the slow
    path.  Pass [fun _ _ ~off:_ ~len:_ -> false] to disable.

    [on_line] handles one text request and returns the response plus
    whether the server should stop ([`Stop] triggers [request_stop]
    {e after} the response is written, so a SHUTDOWN client sees its
    acknowledgement).  [on_frame] handles one binary request payload
    and returns the encoded response frame.  [on_close] fires exactly
    once per connection this shard ever owned — the listener's
    admission accounting decrements on it.  [on_protocol_error] fires
    on unrecoverable framing errors (oversized frame announcements).
    On exit every owned or still-queued connection is closed. *)

val destroy : t -> unit
(** Close the wakeup pipe (after {!run} has returned). *)

(** Synchronous single-connection harness: drive the exact
    message-extraction and dispatch path over an fd the caller owns (a
    socketpair end), without a listener, mailbox or domain.  The
    front-end benchmark measures its zero-allocation gate through
    {!Loopback.step}. *)
module Loopback : sig
  type conn

  val connect : Unix.file_descr -> conn
  (** Adopt [fd] as a text-mode connection with a fresh buffer. *)

  val upgrade_bin : conn -> unit
  (** Switch to binary framing directly (no hello exchange). *)

  val alive : conn -> bool

  val step :
    conn ->
    on_line_fast:(Unix.file_descr -> Bytes.t -> off:int -> len:int -> bool) ->
    on_frame_fast:(Unix.file_descr -> Bytes.t -> off:int -> len:int -> bool) ->
    on_line:(string -> string * [ `Continue | `Stop ]) ->
    on_frame:(bytes -> string) ->
    unit
  (** One blocking read followed by processing of every complete
      buffered message, exactly as the shard event loop would. *)
end
