open Selest_db

let log = Logs.Src.create "selest.serve" ~doc:"selectivity-estimation server"

module Log = (val Logs.src_log log : Logs.LOG)

type t = {
  db : Database.t;
  sizes : int array;
  socket : string;
  registry : Registry.t;
  cache : Lru.t;
  metrics : Metrics.t;
  pool_size : int option;
  mutable pool : Selest_util.Pool.t option;
}

let create ?(cache_bytes = 1 lsl 20) ?pool_size ~db ~socket () =
  {
    db;
    sizes = Selest_prm.Estimate.sizes_of_db db;
    socket;
    registry = Registry.create ~schema:(Database.schema db);
    cache = Lru.create ~capacity_bytes:cache_bytes;
    metrics = Metrics.create ();
    pool_size;
    pool = None;
  }

let registry t = t.registry
let metrics t = t.metrics
let cache t = t.cache
let socket_path t = t.socket

(* The domain pool is spawned on the first ESTBATCH, so servers that never
   batch never pay for idle domains. *)
let pool t =
  match t.pool with
  | Some p -> p
  | None ->
    let p = Selest_util.Pool.create ?size:t.pool_size () in
    t.pool <- Some p;
    p

let shutdown_pool t =
  match t.pool with
  | Some p ->
    Selest_util.Pool.shutdown p;
    t.pool <- None
  | None -> ()

(* ---- request handlers ------------------------------------------------------ *)

let handle_load t ~name ~path =
  match Registry.load t.registry ~name ~path with
  | entry ->
    Metrics.incr t.metrics "loads";
    Log.info (fun m -> m "loaded %s version %d from %s" name entry.Registry.version path);
    Protocol.ok
      (Printf.sprintf "loaded %s version %d bytes %d" name entry.Registry.version
         (Selest_prm.Model.size_bytes entry.Registry.model))
  | exception Selest_prm.Serialize.Error msg ->
    Metrics.incr t.metrics "load_errors";
    Protocol.err msg

let resolve_model t model =
  match model with
  | Some name -> (
    match Registry.find t.registry name with
    | Some e -> Ok (name, e)
    | None -> Error (Printf.sprintf "no model named %S (use LOAD)" name))
  | None -> (
    match Registry.default t.registry with
    | Some (name, e) -> Ok (name, e)
    | None -> Error "no model loaded (use LOAD)")

(* Parse and canonicalize one query body; errors become messages. *)
let parse_query t body =
  match
    let tvars, joins, selects = Protocol.split_sections body in
    Qparse.parse t.db ~tvars ~joins ~selects ()
  with
  | exception Failure msg -> Error msg
  | exception Not_found -> Error "unknown table, tuple variable or attribute in query"
  | exception Invalid_argument msg -> Error msg
  | q -> Ok (Canon.normalize q)

let handle_est t ~model ~body =
  match resolve_model t model with
  | Error msg ->
    Metrics.incr t.metrics "est_errors";
    Protocol.err msg
  | Ok (name, e) -> (
    match parse_query t body with
    | Error msg ->
      Metrics.incr t.metrics "est_errors";
      Protocol.err msg
    | Ok q -> (
      let key = Printf.sprintf "%s#%d|%s" name e.Registry.version (Canon.key q) in
      match Lru.find t.cache key with
      | Some estimate -> Protocol.ok (Printf.sprintf "%.17g" estimate)
      | None -> (
        match Selest_prm.Estimate.estimate e.Registry.model ~sizes:t.sizes q with
        | estimate ->
          Lru.add t.cache key estimate;
          Metrics.incr t.metrics (Printf.sprintf "infer.%s" name);
          Protocol.ok (Printf.sprintf "%.17g" estimate)
        | exception exn ->
          Metrics.incr t.metrics "est_errors";
          Protocol.err (Printexc.to_string exn))))

(* ESTBATCH: parse and cache-probe every body on the dispatcher thread,
   fan only the distinct cache misses across the domain pool, then answer
   in request order.  All-or-nothing: any parse or inference failure turns
   the whole batch into one ERR, so clients never have to pair partial
   results with queries. *)
let handle_estbatch t ~model ~bodies =
  match resolve_model t model with
  | Error msg ->
    Metrics.incr t.metrics "est_errors";
    Protocol.err msg
  | Ok (name, e) -> (
    let parsed =
      List.mapi
        (fun i body ->
          match parse_query t body with
          | Ok q ->
            Ok (Printf.sprintf "%s#%d|%s" name e.Registry.version (Canon.key q), q)
          | Error msg -> Error (Printf.sprintf "query %d: %s" (i + 1) msg))
        bodies
    in
    match
      List.find_map (function Error msg -> Some msg | Ok _ -> None) parsed
    with
    | Some msg ->
      Metrics.incr t.metrics "est_errors";
      Protocol.err msg
    | None -> (
      let keyed =
        List.map (function Ok kq -> kq | Error _ -> assert false) parsed
      in
      (* Probe the cache here; collect each distinct missing key once. *)
      let misses = Hashtbl.create 16 in
      let miss_order = ref [] in
      List.iter
        (fun (key, q) ->
          if Lru.find t.cache key = None && not (Hashtbl.mem misses key) then begin
            Hashtbl.add misses key q;
            miss_order := (key, q) :: !miss_order
          end)
        keyed;
      let miss_order = List.rev !miss_order in
      let model_ = e.Registry.model and sizes = t.sizes in
      match
        Selest_util.Pool.map (pool t)
          (fun (key, q) -> (key, Selest_prm.Estimate.estimate model_ ~sizes q))
          miss_order
      with
      | exception exn ->
        Metrics.incr t.metrics "est_errors";
        Protocol.err (Printexc.to_string exn)
      | computed ->
        List.iter
          (fun (key, v) ->
            Lru.add t.cache key v;
            Metrics.incr t.metrics (Printf.sprintf "infer.%s" name))
          computed;
        let fresh = Hashtbl.create 16 in
        List.iter (fun (key, v) -> Hashtbl.replace fresh key v) computed;
        let answers =
          List.map
            (fun (key, _) ->
              match Lru.find t.cache key with
              | Some v -> v
              | None -> Hashtbl.find fresh key)
            keyed
        in
        Protocol.ok
          (String.concat " " (List.map (Printf.sprintf "%.17g") answers))))

let handle_stats t =
  let pairs =
    Metrics.report t.metrics
    @ [
        ("cache_hits", string_of_int (Lru.hits t.cache));
        ("cache_misses", string_of_int (Lru.misses t.cache));
        ("cache_evictions", string_of_int (Lru.evictions t.cache));
        ("cache_entries", string_of_int (Lru.length t.cache));
        ("cache_bytes", string_of_int (Lru.bytes t.cache));
        ("models", string_of_int (Registry.size t.registry));
      ]
  in
  Protocol.ok (String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) pairs))

let handle_line t line =
  Metrics.incr t.metrics "requests";
  let t0 = Unix.gettimeofday () in
  let respond r = Metrics.observe t.metrics (Unix.gettimeofday () -. t0); r in
  match Protocol.parse_request line with
  | Error msg ->
    Metrics.incr t.metrics "protocol_errors";
    (respond (Protocol.err msg), `Continue)
  | Ok Protocol.Ping -> (respond Protocol.pong, `Continue)
  | Ok (Protocol.Load { name; path }) -> (respond (handle_load t ~name ~path), `Continue)
  | Ok (Protocol.Est { model; body }) ->
    Metrics.incr t.metrics "est_requests";
    (respond (handle_est t ~model ~body), `Continue)
  | Ok (Protocol.Estbatch { model; bodies }) ->
    Metrics.incr t.metrics "estbatch_requests";
    List.iter (fun _ -> Metrics.incr t.metrics "est_requests") bodies;
    (respond (handle_estbatch t ~model ~bodies), `Continue)
  | Ok Protocol.Stats -> (respond (handle_stats t), `Continue)
  | Ok Protocol.Shutdown -> (respond (Protocol.ok "bye"), `Stop)

(* ---- socket loop ----------------------------------------------------------- *)

let serve_connection t ic oc running =
  let conn_open = ref true in
  while !conn_open && !running do
    match input_line ic with
    | exception End_of_file -> conn_open := false
    | line ->
      let response, action = handle_line t line in
      output_string oc response;
      output_char oc '\n';
      flush oc;
      if action = `Stop then running := false
  done

let run t =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  if Sys.file_exists t.socket then (try Unix.unlink t.socket with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX t.socket);
  Unix.listen sock 16;
  Log.info (fun m -> m "listening on %s" t.socket);
  let running = ref true in
  while !running do
    let fd, _ = Unix.accept sock in
    let ic = Unix.in_channel_of_descr fd and oc = Unix.out_channel_of_descr fd in
    (try serve_connection t ic oc running
     with Sys_error _ | Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())
  done;
  (try Unix.close sock with Unix.Unix_error _ -> ());
  (try Unix.unlink t.socket with Unix.Unix_error _ -> ());
  shutdown_pool t;
  Log.info (fun m ->
      m "shut down after %d requests@.%a" (Metrics.get t.metrics "requests") Metrics.pp
        t.metrics)
