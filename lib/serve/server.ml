open Selest_db
module Obs = Selest_obs
module Plan = Selest_plan.Plan

let log = Logs.Src.create "selest.serve" ~doc:"selectivity-estimation server"

module Log = (val Logs.src_log log : Logs.LOG)

(* One executor shard's domain-local state.  Nothing in here is shared
   with another shard on the request path: the estimate cache and plan
   cache are private to the owning domain (the plan cache is created
   unsynchronized whenever the server has more than one shard), and the
   admission counters are single-word atomics shared only with the
   listener.  The registry and telemetry are shared but lock-free —
   epoch-pinned snapshots and per-domain DLS shards respectively — so a
   whole EST request acquires zero mutexes. *)
type sstate = {
  sid : int;
  scache : Lru.t;
  splans : Plan_cache.t;
  scratch : Squery.t;  (* reusable zero-copy parse target *)
  slice : Protocol.Slice.t;  (* reusable request-slice scratch *)
  c_req : Selest_obs.Telemetry.counter_handle;
      (* handle for "shard.<sid>.requests" — the fast path bumps by id *)
  inflight : int Atomic.t;  (* live connections owned by this shard *)
  accepted : int Atomic.t;  (* connections ever handed to this shard *)
  req_counter : string;  (* precomputed "shard.<sid>.requests" *)
}

type t = {
  db : Database.t;
  sizes : int array;
  symtab : Squery.Symtab.t;  (* interned schema symbols, shared ro *)
  socket : string;
  tcp : (string * int) option;
  max_inflight : int;  (* admission budget, per shard *)
  backlog : int;  (* listen(2) backlog for both listeners *)
  registry : Registry.t;
  shards : sstate array;
  metrics : Metrics.t;
  pool_size : int option;
  mutable pool : Selest_util.Pool.t option;
  avi : Selest_est.Estimator.t option Atomic.t;
      (* lazily-built AVI baseline: EXPLAINPLAN's fallback oracle for
         sub-queries the model cannot price *)
  (* ---- telemetry / SLO surface ---- *)
  slowlog : Obs.Slowlog.t;
  slow_quantile : float;  (* latency capture threshold quantile *)
  qerror_gate : float;  (* TRUTH q-error above this is captured *)
  slo_p99_us : float;  (* declared latency SLO: p99 target *)
  slo_qerror : float;  (* declared accuracy SLO: q-error p99 target *)
  start_ns : int;
  responses : int Atomic.t;  (* drives threshold refresh + capture rate limit *)
  slow_threshold : int Atomic.t;  (* ns; max_int until warmed up *)
  last_capture : int Atomic.t;  (* [responses] value at the last capture *)
  health_prev : Obs.Telemetry.snapshot option Atomic.t;
      (* previous HEALTH snapshot: the base of the burn window (epoch /
         delta semantics of {!Obs.Telemetry.Snapshot.delta}) *)
  stop_flag : bool Atomic.t;  (* latched by SHUTDOWN / {!shutdown} *)
  waker : (unit -> unit) Atomic.t;
      (* how {!shutdown} interrupts [run]: before [run] installs its
         stop-pipe waker this just latches [stop_flag], which the accept
         loop checks before its first select *)
}

(* Tail-sampling knobs.  The latency threshold is recomputed from the
   merged histogram every [refresh_mask + 1] responses once [slow_warmup]
   observations exist; latency captures (which replay the query under
   span collection) are limited to one per [capture_min_gap] responses so
   a latency regression can never turn the capture path into the
   workload.  q-error captures bypass the limiter — TRUTH is rare. *)
let slow_warmup = 64
let refresh_mask = 511
let capture_min_gap = 256

let create ?(cache_bytes = 1 lsl 20) ?pool_size ?(slowlog_capacity = 128)
    ?(slow_quantile = 0.99) ?(qerror_gate = 100.0) ?(slo_p99_us = 10_000.0)
    ?(slo_qerror = 100.0) ?(domains = 1) ?tcp ?(max_inflight = 1024)
    ?(backlog = 128) ~db ~socket () =
  if domains < 1 then invalid_arg "Server.create: domains must be >= 1";
  if max_inflight < 1 then invalid_arg "Server.create: max_inflight must be >= 1";
  if backlog < 1 then invalid_arg "Server.create: backlog must be >= 1";
  let metrics = Metrics.create () in
  let symtab = Squery.Symtab.of_schema (Database.schema db) in
  let shards =
    Array.init domains (fun sid ->
        let req_counter = Metrics.shard_key sid "requests" in
        {
          sid;
          scache = Lru.create ~capacity_bytes:cache_bytes;
          (* A single-shard server still fans ESTBATCH misses across the
             domain pool, whose workers share this plan cache — keep the
             mutex there.  With >1 shards the cache is domain-private
             and the request path must stay lock-free. *)
          splans = Plan_cache.create ~synchronized:(domains = 1) ();
          scratch = Squery.create symtab;
          slice = Protocol.Slice.create ();
          c_req = Metrics.counter_handle metrics req_counter;
          inflight = Atomic.make 0;
          accepted = Atomic.make 0;
          req_counter;
        })
  in
  {
    db;
    sizes = Selest_plan.Estimate.sizes_of_db db;
    symtab;
    socket;
    tcp;
    max_inflight;
    backlog;
    registry = Registry.create ~schema:(Database.schema db);
    shards;
    metrics;
    pool_size;
    pool = None;
    avi = Atomic.make None;
    slowlog = Obs.Slowlog.create ~capacity:slowlog_capacity ();
    slow_quantile;
    qerror_gate;
    slo_p99_us;
    slo_qerror;
    start_ns = Obs.Clock.now_ns ();
    responses = Atomic.make 0;
    slow_threshold = Atomic.make max_int;
    last_capture = Atomic.make (-capture_min_gap);
    health_prev = Atomic.make None;
    stop_flag = Atomic.make false;
    waker = Atomic.make (fun () -> ());
  }

let registry t = t.registry
let metrics t = t.metrics
let n_domains t = Array.length t.shards
let max_inflight t = t.max_inflight
let backlog t = t.backlog
let tcp_endpoint t = t.tcp

(* Shard 0's caches double as "the" caches for embedded single-shard use
   (and for the transport-free [handle_line] entry point, which always
   dispatches on shard 0). *)
let cache t = t.shards.(0).scache
let plan_cache t = t.shards.(0).splans

let shard_cache t i = t.shards.(i).scache
let shard_plan_cache t i = t.shards.(i).splans
let socket_path t = t.socket
let slowlog t = t.slowlog

(* Per-model accuracy tables ride the telemetry core since the
   qerrors_mutex fold-in: writes land on the calling domain's shard
   (lock-free after the slot exists), reads merge shards on demand. *)
let qerror_table t name = Metrics.qerror_shard t.metrics name
let qerror_tables t = Metrics.qerror_tables t.metrics

(* Aggregates across shards — the STATS / METRICS / HEALTH view. *)
let sum_shards t f = Array.fold_left (fun acc st -> acc + f st) 0 t.shards
let cache_hits t = sum_shards t (fun st -> Lru.hits st.scache)
let cache_misses t = sum_shards t (fun st -> Lru.misses st.scache)
let cache_evictions t = sum_shards t (fun st -> Lru.evictions st.scache)
let cache_entries t = sum_shards t (fun st -> Lru.length st.scache)
let cache_bytes t = sum_shards t (fun st -> Lru.bytes st.scache)
let cache_collisions t = sum_shards t (fun st -> Lru.collisions st.scache)
let plan_collisions t = sum_shards t (fun st -> Plan_cache.collisions st.splans)

let plan_stats t =
  Array.fold_left
    (fun (h, m, e) st ->
      let h', m', e' = Plan_cache.stats st.splans in
      (h + h', m + m', e + e'))
    (0, 0, 0) t.shards

let plan_entries t = sum_shards t (fun st -> Plan_cache.length st.splans)

(* The domain pool is spawned on the first ESTBATCH, so servers that never
   batch never pay for idle domains. *)
let pool t =
  match t.pool with
  | Some p -> p
  | None ->
    let p = Selest_util.Pool.create ?size:t.pool_size () in
    t.pool <- Some p;
    p

let shutdown_pool t =
  match t.pool with
  | Some p ->
    Selest_util.Pool.shutdown p;
    t.pool <- None
  | None -> ()

(* ---- request handlers ------------------------------------------------------ *)

let handle_load t ~name ~path =
  match Registry.load t.registry ~name ~path with
  | entry ->
    Metrics.incr t.metrics "loads";
    Log.info (fun m -> m "loaded %s version %d from %s" name entry.Registry.version path);
    Protocol.ok
      (Printf.sprintf "loaded %s version %d bytes %d" name entry.Registry.version
         (Selest_prm.Model.size_bytes entry.Registry.model))
  | exception Selest_prm.Serialize.Error msg ->
    Metrics.incr t.metrics "load_errors";
    Protocol.err msg

(* Resolve against a pinned snapshot: one atomic load, then pure reads
   on immutable data.  The (name, version, fingerprint, model) tuple the
   request sees was published together — a concurrent LOAD can only flip
   the pointer for *later* requests, never tear this one. *)
let resolve_model t model =
  let snap = Registry.Epoch.pin t.registry in
  match model with
  | Some name -> (
    match Registry.Epoch.find snap name with
    | Some e -> Ok (name, e)
    | None -> Error (Printf.sprintf "no model named %S (use LOAD)" name))
  | None -> (
    match Registry.Epoch.default snap with
    | Some (name, e) -> Ok (name, e)
    | None -> Error "no model loaded (use LOAD)")

(* Parse and canonicalize one query body into the shard's scratch query
   ({!Selest_db.Squery}): symbols are interned, predicates land in
   reusable int arrays, and the warm path never builds an intermediate
   string or list.  Acceptance agrees with the reference pipeline
   ([Qparse.parse] + [Canon.normalize]); errors become messages.  The
   two stages get their own spans so EXPLAIN can price them apart. *)
let parse_scratch st body =
  match
    Obs.Span.with_ "est.parse" (fun _ ->
        Squery.parse st.scratch
          (Bytes.unsafe_of_string body)
          ~off:0 ~len:(String.length body))
  with
  | exception Failure msg -> Error msg
  | exception Not_found -> Error "unknown table, tuple variable or attribute in query"
  | exception Invalid_argument msg -> Error msg
  | () ->
    Obs.Span.with_ "est.canon" (fun _ -> Squery.canon st.scratch);
    Ok ()

(* The estimate cache keys on a 63-bit hash: the canonical scratch hash
   folded with the model name and version (FNV-1a), so a hot-reload
   invalidates every cached estimate without touching the cache.  The
   full key never exists as a string — hash hits are verified against
   the resident entry's canonical snapshot instead. *)
let fnv_prime = 0x100000001b3

let est_hash st ~name ~version =
  let h = ref (Squery.hash st.scratch) in
  for i = 0 to String.length name - 1 do
    h := (!h lxor Char.code (String.unsafe_get name i)) * fnv_prime
  done;
  h := (!h lxor version) * fnv_prime;
  !h land max_int

(* Probe the shard cache for the scratch's current query.  Returns the
   verified resident entry or raises the preallocated [Not_found]; a
   hash hit whose full-key verification fails — a true collision — is
   recounted as a miss and surfaced in the telemetry, then treated as a
   miss (the subsequent {!Lru.add} overwrites the resident).
   Allocation-free either way. *)
let probe t st ~name ~version hash =
  let entry = Lru.find st.scache hash in
  if
    entry.Lru.version = version
    && String.equal entry.Lru.model name
    && Squery.Vec.matches entry.Lru.vec st.scratch
  then entry
  else begin
    Lru.collision st.scache;
    Metrics.frontend_collision t.metrics;
    raise Not_found
  end

(* Pre-render both wire responses when an entry is filled, so warm hits
   write stored bytes straight to the socket. *)
let make_entry ~name ~version ~vec est =
  {
    Lru.est;
    text = Protocol.ok (Printf.sprintf "%.17g" est) ^ "\n";
    bin = Protocol.Bin.encode_response (Protocol.Bin.Bvalue est);
    vec;
    model = name;
    version;
  }

(* The plan cache keys on the binding-independent half of the same
   split: model name and version plus the query's skeleton, rendered
   and hashed in one buffer pass ({!Canon.Skel}).  Hot-reloading bumps
   the version, so a stale model's plans can never be fetched again —
   on every shard, since every shard's keys carry the version. *)
let plan_for t st ~name ~(entry : Registry.entry) q =
  ignore t;
  Obs.Span.with_ "plan.fetch" (fun sp ->
      let skel = Canon.Skel.make ~name ~version:entry.Registry.version q in
      let plan, status =
        Plan_cache.find_or_compile st.splans ~hash:skel.Canon.Skel.hash
          ~key:skel.Canon.Skel.key
          ~compile:(fun () -> Plan.compile entry.Registry.model q)
      in
      if Obs.Span.live sp then
        Obs.Span.add sp "cached"
          (match status with `Hit -> "hit" | `Miss -> "miss");
      (plan, status))

(* Fold one request's kernel-counter deltas into the service metrics.
   [max_factor_entries] is a per-query high-water mark, not additive, so
   it stays in EXPLAIN rather than here. *)
let roll_hotpath t (d : Obs.Hotpath.t) =
  let bump name v = if v > 0 then Metrics.incr ~by:v t.metrics name in
  bump "ve.factor_ops" d.Obs.Hotpath.factor_ops;
  bump "ve.entries_touched" d.Obs.Hotpath.entries_touched;
  bump "ve.scratch_hits" d.Obs.Hotpath.scratch_hits;
  bump "ve.scratch_misses" d.Obs.Hotpath.scratch_misses;
  bump "ve.order_hits" d.Obs.Hotpath.order_hits;
  bump "ve.order_misses" d.Obs.Hotpath.order_misses;
  bump "plan.program_hits" d.Obs.Hotpath.program_hits;
  bump "plan.program_misses" d.Obs.Hotpath.program_misses

(* Run inference for one parsed query — fetch (or compile) the skeleton's
   plan, then execute it — measuring the hot-path work and rolling it into
   the metrics; fills the shard's estimate cache with a fully rendered
   entry on success (the scratch must still hold the query, it provides
   the entry's canonical snapshot).  Returns the resident entry. *)
let infer_measured t st ~name ~(entry : Registry.entry) ~hash q =
  match
    Obs.Hotpath.measure (fun () ->
        let plan, status = plan_for t st ~name ~entry q in
        (Plan.estimate plan ~sizes:t.sizes q, plan, status))
  with
  | (estimate, plan, status), d ->
    let le =
      make_entry ~name ~version:entry.Registry.version
        ~vec:(Squery.Vec.of_scratch st.scratch)
        estimate
    in
    Lru.add st.scache hash le;
    Metrics.incr t.metrics (Printf.sprintf "infer.%s" name);
    roll_hotpath t d;
    Ok (le, d, plan, status)
  | exception exn -> Error (Printexc.to_string exn)

(* The transport-free EST core shared by the text handler and the binary
   frame handler: pin a registry snapshot, parse into the shard scratch,
   probe the shard's cache by hash, measured inference.  Zero mutex
   acquisitions end to end: the snapshot pin is one atomic load, the
   caches are domain-local, and the telemetry writes land on the
   domain's own shard.  Bumps [est_errors] on every failure; the caller
   formats the result. *)
let est_core t st ~model ~body =
  match resolve_model t model with
  | Error msg ->
    Metrics.incr t.metrics "est_errors";
    Error msg
  | Ok (name, e) -> (
    match parse_scratch st body with
    | Error msg ->
      Metrics.incr t.metrics "est_errors";
      Error msg
    | Ok () -> (
      let version = e.Registry.version in
      let hash = est_hash st ~name ~version in
      match
        Obs.Span.with_ "est.cache" (fun _ -> probe t st ~name ~version hash)
      with
      | entry -> Ok entry.Lru.est
      | exception Not_found -> (
        match
          infer_measured t st ~name ~entry:e ~hash
            (Squery.to_query st.scratch)
        with
        | Ok (le, _, _, _) -> Ok le.Lru.est
        | Error msg ->
          Metrics.incr t.metrics "est_errors";
          Error msg)))

let handle_est t st ~model ~body =
  Obs.Span.with_ "est" (fun _ ->
      match est_core t st ~model ~body with
      | Ok estimate ->
        Obs.Span.with_ "est.respond" (fun _ ->
            Protocol.ok (Printf.sprintf "%.17g" estimate))
      | Error msg -> Protocol.err msg)

(* ESTBATCH: parse and cache-probe every body on the dispatching shard,
   fan only the distinct cache misses across the domain pool, then answer
   in request order.  All-or-nothing: any parse or inference failure turns
   the whole batch into one ERR, so clients never have to pair partial
   results with queries. *)

(* Domains the pool can actually make useful: the configured (or default)
   size clamped to the host's spare cores.  Zero on a single-core host,
   where fanning out can only lose. *)
let effective_pool_size t =
  let configured =
    match t.pool_size with
    | Some s -> s
    | None -> Selest_util.Pool.default_size ()
  in
  min configured (Domain.recommended_domain_count () - 1)

(* Below this many distinct misses, domain scheduling overhead outweighs
   the parallel inference work — stay on the dispatcher thread. *)
let batch_chunk_threshold = 8

(* Transport-free like [est_core]: answers in request order, or the
   first failure as [Error]. *)
let estbatch_core t st ~model ~bodies =
  match resolve_model t model with
  | Error msg ->
    Metrics.incr t.metrics "est_errors";
    Error msg
  | Ok (name, e) -> (
    let version = e.Registry.version in
    (* Parse, canonicalize and cache-probe every body on the dispatching
       shard.  The scratch query is shard-local and each body overwrites
       it, so a hit is verified (and a miss materialized into an owned
       [Query.t] + snapshot for the workers) before the next body is
       parsed. *)
    let parsed =
      List.mapi
        (fun i body ->
          match parse_scratch st body with
          | Error msg -> Error (Printf.sprintf "query %d: %s" (i + 1) msg)
          | Ok () -> (
            let hash = est_hash st ~name ~version in
            match probe t st ~name ~version hash with
            | entry -> Ok (hash, `Hit entry.Lru.est)
            | exception Not_found ->
              Ok
                ( hash,
                  `Miss
                    ( Squery.to_query st.scratch,
                      Squery.Vec.of_scratch st.scratch ) )))
        bodies
    in
    match
      List.find_map (function Error msg -> Some msg | Ok _ -> None) parsed
    with
    | Some msg ->
      Metrics.incr t.metrics "est_errors";
      Error msg
    | None -> (
      let keyed =
        List.map (function Ok kq -> kq | Error _ -> assert false) parsed
      in
      (* Collect each distinct missing hash once (repeats within one
         batch answer from the first computation). *)
      let misses = Hashtbl.create 16 in
      let miss_order = ref [] in
      List.iter
        (fun (hash, outcome) ->
          match outcome with
          | `Hit _ -> ()
          | `Miss (q, vec) ->
            if not (Hashtbl.mem misses hash) then begin
              Hashtbl.add misses hash ();
              miss_order := (hash, q, vec) :: !miss_order
            end)
        keyed;
      let miss_order = List.rev !miss_order in
      let sizes = t.sizes in
      let infer_one (hash, q, vec) =
        (* measure inside the worker: hot-path counters are domain-local;
           in the single-shard pool configuration the plan cache and each
           plan's schedule memo are mutex-guarded, so workers share
           compiled plans instead of recompiling *)
        let v, d =
          Obs.Hotpath.measure (fun () ->
              let plan, _ = plan_for t st ~name ~entry:e q in
              Plan.estimate plan ~sizes q)
        in
        (hash, vec, v, d)
      in
      match
        (* Fan out only when domains can help: enough distinct misses to
           amortize scheduling, spare cores to run them on, and a
           single-shard server — a sharded server's shards already are
           the parallelism, and its per-domain plan caches must not be
           shared with pool workers.  The inline path raises the first
           failure by request order, same as [Pool.map]'s
           first-exception contract. *)
        if
          Array.length t.shards = 1
          && effective_pool_size t > 1
          && List.length miss_order >= batch_chunk_threshold
        then Selest_util.Pool.map (pool t) infer_one miss_order
        else List.map infer_one miss_order
      with
      | exception exn ->
        Metrics.incr t.metrics "est_errors";
        Error (Printexc.to_string exn)
      | computed ->
        (* Cache fills stay on the dispatcher (the shard cache is not
           synchronized); answers for misses come from this batch's own
           results, immune to a concurrent eviction. *)
        let fresh = Hashtbl.create 16 in
        List.iter
          (fun (hash, vec, v, d) ->
            Lru.add st.scache hash (make_entry ~name ~version ~vec v);
            Hashtbl.replace fresh hash v;
            Metrics.incr t.metrics (Printf.sprintf "infer.%s" name);
            roll_hotpath t d)
          computed;
        Ok
          (List.map
             (fun (hash, outcome) ->
               match outcome with
               | `Hit est -> est
               | `Miss _ -> Hashtbl.find fresh hash)
             keyed)))

let handle_estbatch t st ~model ~bodies =
  match estbatch_core t st ~model ~bodies with
  | Ok answers ->
    Protocol.ok (String.concat " " (List.map (Printf.sprintf "%.17g") answers))
  | Error msg -> Protocol.err msg

(* ---- EXPLAIN ---------------------------------------------------------------

   Same request path as EST, but spans are collected and inference always
   runs (the cache is probed and its outcome reported, never allowed to
   short-circuit), so the breakdown prices a real end-to-end estimate.

   Stage times are *self* times: each span's duration minus its direct
   children's.  Self times partition the root's wall time exactly, so the
   stages sum to total_us and nothing is double-counted; plan-cache
   lookup glue reports as fetch_us, a cold skeleton's compilation as
   compile_us (zero on a plan-cache hit), and the glue inside "est"
   itself (dispatch, cache fill, metrics) as other_us. *)

let explain_stages =
  [ ("parse_us", "est.parse"); ("canon_us", "est.canon");
    ("cache_us", "est.cache"); ("fetch_us", "plan.fetch");
    ("compile_us", "plan.compile"); ("evidence_us", "ve.evidence");
    ("sched_us", "ve.plan"); ("ve_us", "ve.eliminate");
    ("respond_us", "est.respond"); ("other_us", "est") ]

(* (span name, self time) for every record: duration minus the direct
   children's durations. *)
let self_times records =
  let children_us = Hashtbl.create 16 in
  List.iter
    (fun (r : Obs.Span.record) ->
      let prev =
        Option.value ~default:0.0 (Hashtbl.find_opt children_us r.Obs.Span.parent)
      in
      Hashtbl.replace children_us r.Obs.Span.parent
        (prev +. Obs.Span.duration_us r))
    records;
  List.map
    (fun (r : Obs.Span.record) ->
      let inner =
        Option.value ~default:0.0 (Hashtbl.find_opt children_us r.Obs.Span.id)
      in
      (r.Obs.Span.name, Float.max 0.0 (Obs.Span.duration_us r -. inner)))
    records

let stage_us selfs span_name =
  List.fold_left
    (fun acc (name, us) -> if name = span_name then acc +. us else acc)
    0.0 selfs

let span_attr records span_name key =
  List.find_map
    (fun (r : Obs.Span.record) ->
      if r.Obs.Span.name = span_name then
        List.assoc_opt key r.Obs.Span.attrs
      else None)
    records

let handle_explain t st ~model ~body =
  match resolve_model t model with
  | Error msg ->
    Metrics.incr t.metrics "est_errors";
    Protocol.err msg
  | Ok (name, e) -> (
    let outcome, records =
      Obs.Span.collect (fun () ->
          Obs.Span.with_ "est" (fun _ ->
              match parse_scratch st body with
              | Error msg -> Error msg
              | Ok () -> (
                let version = e.Registry.version in
                let hash = est_hash st ~name ~version in
                let cached =
                  Obs.Span.with_ "est.cache" (fun _ ->
                      match probe t st ~name ~version hash with
                      | (_ : Lru.entry) -> true
                      | exception Not_found -> false)
                in
                let q = Squery.to_query st.scratch in
                match infer_measured t st ~name ~entry:e ~hash q with
                | Error msg -> Error msg
                | Ok (le, d, plan, plan_status) ->
                  let rendered =
                    Obs.Span.with_ "est.respond" (fun _ ->
                        Printf.sprintf "%.17g" le.Lru.est)
                  in
                  Ok (rendered, cached, d, plan, plan_status, q))))
    in
    match outcome with
    | Error msg ->
      Metrics.incr t.metrics "est_errors";
      Protocol.err msg
    | Ok (estimate, cached, d, plan, plan_status, q) ->
      let selfs = self_times records in
      let stages =
        List.map (fun (k, sp) -> (k, stage_us selfs sp)) explain_stages
      in
      let stage_sum = List.fold_left (fun acc (_, us) -> acc +. us) 0.0 stages in
      let total_us =
        List.fold_left
          (fun acc (r : Obs.Span.record) ->
            if r.Obs.Span.name = "est" then acc +. Obs.Span.duration_us r
            else acc)
          0.0 records
      in
      let buf = Buffer.create 256 in
      Buffer.add_string buf (Printf.sprintf "estimate=%s" estimate);
      Buffer.add_string buf (Printf.sprintf " total_us=%.1f" total_us);
      List.iter
        (fun (k, us) -> Buffer.add_string buf (Printf.sprintf " %s=%.1f" k us))
        stages;
      Buffer.add_string buf (Printf.sprintf " stage_sum_us=%.1f" stage_sum);
      Buffer.add_string buf
        (Printf.sprintf " cache=%s" (if cached then "hit" else "miss"));
      Buffer.add_string buf
        (Printf.sprintf " plan_cache=%s"
           (match plan_status with `Hit -> "hit" | `Miss -> "miss"));
      Buffer.add_string buf
        (Printf.sprintf " sched=%s"
           (Option.value ~default:"none" (span_attr records "ve.plan" "cached")));
      (* the real executed schedule: per-step eliminated variable and the
         planner's predicted intermediate entries (compare against the
         measured max_factor_entries below) *)
      let steps = Plan.steps plan q in
      Buffer.add_string buf
        (Printf.sprintf " plan=%s"
           (Format.asprintf "%a" Selest_bn.Ve.Schedule.pp
              {
                Selest_bn.Ve.Schedule.order =
                  List.map (fun s -> s.Selest_bn.Ve.Schedule.var) steps;
                steps;
              }));
      Buffer.add_string buf
        (Printf.sprintf " factors=%d" (List.length (Plan.factors plan)));
      List.iter
        (fun (k, v) -> Buffer.add_string buf (Printf.sprintf " %s=%d" k v))
        (Obs.Hotpath.to_pairs d);
      Protocol.ok (Buffer.contents buf))

(* ---- EXPLAINPLAN -----------------------------------------------------------

   The optimizer's view of a query: choose the C_out-minimal join tree
   under the model's sub-query estimates (priced through the same plan
   cache EST uses, so repeated EXPLAINPLANs are cheap), execute it with
   the materializing hash-join executor, and render estimated vs. actual
   rows per operator.  Sub-queries the model cannot price fall back to
   the server's lazily-built AVI baseline rather than aborting the
   enumeration. *)

let avi_fallback t =
  match Atomic.get t.avi with
  | Some e -> e.Selest_est.Estimator.estimate
  | None ->
    let e = Selest_est.Avi.build t.db in
    (* A concurrent duplicate build is harmless (same deterministic
       baseline); the first publisher wins and everyone reads it. *)
    ignore (Atomic.compare_and_set t.avi None (Some e));
    (match Atomic.get t.avi with
     | Some e -> e.Selest_est.Estimator.estimate
     | None -> e.Selest_est.Estimator.estimate)

let handle_explainplan t st ~model ~body =
  match resolve_model t model with
  | Error msg ->
    Metrics.incr t.metrics "est_errors";
    Protocol.err msg
  | Ok (name, e) -> (
    match parse_scratch st body with
    | Error msg ->
      Metrics.incr t.metrics "est_errors";
      Protocol.err msg
    | Ok () -> (
      let q = Squery.to_query st.scratch in
      let model_cost sub =
        let plan, _ = plan_for t st ~name ~entry:e sub in
        Plan.estimate plan ~sizes:t.sizes sub
      in
      let fallback = avi_fallback t in
      (* the oracle the plan was chosen by, fallback composed in — also
         what the rendering prices each operator with *)
      let price sub =
        try model_cost sub
        with Selest_est.Estimator.Unsupported _ -> fallback sub
      in
      match
        let tree =
          match q.Query.tvars with
          | [ (tv, _) ] -> Selest_opt.Jointree.Leaf tv
          | _ ->
            (Selest_opt.Optimizer.best ~fallback ~cost:model_cost q)
              .Selest_opt.Optimizer.tree
        in
        let result = Selest_opt.Hashjoin.run t.db q tree in
        let cost_est =
          Selest_opt.Optimizer.sum_intermediates ~cost:price q tree
        in
        Selest_opt.Explain.render ~est:price q result
        ^ Selest_opt.Explain.summary_line ~cost_est result
      with
      | rendered ->
        Metrics.incr t.metrics (Printf.sprintf "infer.%s" name);
        Protocol.ok_multiline rendered
      | exception exn ->
        Metrics.incr t.metrics "est_errors";
        Protocol.err (Printexc.to_string exn)))

(* ---- TRUTH -----------------------------------------------------------------

   Ground truth for one query: compute the estimate through the same
   cache-then-infer path as EST, record the q-error into the model's
   rolling histogram (on the calling domain's telemetry shard — the
   TRUTH path no longer serializes domains), and echo both. *)

(* ---- tail-sampled slow-log -------------------------------------------------- *)

(* Recompute the latency capture threshold: the configured quantile's
   upper bucket edge in the merged aggregate histogram.  Runs once per
   [refresh_mask + 1] responses, so its merge cost never shows up in a
   latency profile. *)
let refresh_slow_threshold t =
  let h = Metrics.latency_histogram t.metrics in
  if Obs.Histogram.count h >= slow_warmup then
    Atomic.set t.slow_threshold
      (max 1 (Obs.Histogram.quantile_ns h t.slow_quantile))

(* Re-execute a captured request's query under span collection.  The
   live path never collects (collection forces the generic engine and
   would eat the telemetry budget on every request), so a capture replays
   the query once — cache bypassed — to reconstruct the full
   est.parse / est.canon / plan.fetch / ve.* tree.  Returns the
   canonical query text and the span tree; the raw body and an empty
   tree when the body no longer parses. *)
let replay_spans t st ~model ~body =
  let outcome, records =
    Obs.Span.collect (fun () ->
        Obs.Span.with_ "est" (fun _ ->
            match resolve_model t model with
            | Error _ -> None
            | Ok (name, e) -> (
              match parse_scratch st body with
              | Error _ -> None
              | Ok () -> (
                let q = Squery.to_query st.scratch in
                let plan, _ = plan_for t st ~name ~entry:e q in
                match Plan.estimate plan ~sizes:t.sizes q with
                | (_ : float) -> Some (Canon.key q)
                | exception _ -> Some (Canon.key q)))))
  in
  match outcome with
  | Some canon -> (canon, records)
  | None -> (body, records)

let capture t st ~verb ~reason ?model ?body ?qerror ~lat_ns () =
  let query, spans =
    match body with
    | None -> (verb, [])
    | Some b -> replay_spans t st ~model ~body:b
  in
  Metrics.incr t.metrics "slowlog_captures";
  ignore
    (Obs.Slowlog.add t.slowlog ~verb ~reason ~query ~lat_ns
       ~threshold_ns:(Atomic.get t.slow_threshold) ?qerror ~spans ())

(* Per-response bookkeeping: per-verb latency recording, periodic
   threshold refresh, and latency-outlier capture.  Only verbs whose
   work a replay reproduces pass a body (EST / EXPLAIN / TRUTH): an
   ESTBATCH latency is N requests wide and would always cross a
   per-request threshold, and the STATS-family verbs carry no query. *)
let observe_response t st ~verb ?model ?body ~dt_ns () =
  Metrics.observe_verb_ns t.metrics ~verb dt_ns;
  let seen = Atomic.fetch_and_add t.responses 1 in
  if seen land refresh_mask = refresh_mask then refresh_slow_threshold t;
  match body with
  | None -> ()
  | Some _ ->
    if
      dt_ns >= Atomic.get t.slow_threshold
      && seen - Atomic.get t.last_capture >= capture_min_gap
    then begin
      Atomic.set t.last_capture seen;
      capture t st ~verb ~reason:Obs.Slowlog.Latency ?model ?body ~lat_ns:dt_ns
        ()
    end

let handle_truth t st ~model ~truth ~body ~t0 =
  match resolve_model t model with
  | Error msg ->
    Metrics.incr t.metrics "est_errors";
    Protocol.err msg
  | Ok (name, e) -> (
    match parse_scratch st body with
    | Error msg ->
      Metrics.incr t.metrics "est_errors";
      Protocol.err msg
    | Ok () -> (
      let version = e.Registry.version in
      let hash = est_hash st ~name ~version in
      let computed =
        match probe t st ~name ~version hash with
        | entry -> Ok entry.Lru.est
        | exception Not_found ->
          Result.map
            (fun (le, _, _, _) -> le.Lru.est)
            (infer_measured t st ~name ~entry:e ~hash
               (Squery.to_query st.scratch))
      in
      match computed with
      | Error msg ->
        Metrics.incr t.metrics "est_errors";
        Protocol.err msg
      | Ok estimate ->
        Metrics.observe_qerror t.metrics name ~est:estimate ~truth;
        let qv = Obs.Qerror.value ~est:estimate ~truth in
        (* Accuracy gate: an estimate this wrong is captured with its
           span tree regardless of how fast it was computed. *)
        if qv >= t.qerror_gate then
          capture t st ~verb:"truth" ~reason:Obs.Slowlog.Qerror ?model ~body
            ~qerror:qv
            ~lat_ns:(Obs.Clock.now_ns () - t0)
            ();
        Protocol.ok
          (Printf.sprintf "qerror=%.6g estimate=%.17g n=%d" qv estimate
             (Obs.Qerror.count (Metrics.qerror_merged t.metrics name)))))

(* ---- STATS / METRICS ------------------------------------------------------- *)

let qerror_stats_fields t =
  List.concat_map
    (fun (name, qe) ->
      let s = Obs.Qerror.summarize qe in
      let f v = Printf.sprintf "%.3g" v in
      [ (Printf.sprintf "qerr.%s.n" name, string_of_int s.Obs.Qerror.n);
        (Printf.sprintf "qerr.%s.mean" name, f s.Obs.Qerror.mean);
        (Printf.sprintf "qerr.%s.p50" name, f s.Obs.Qerror.p50);
        (Printf.sprintf "qerr.%s.p90" name, f s.Obs.Qerror.p90);
        (Printf.sprintf "qerr.%s.max" name, f s.Obs.Qerror.max_q) ])
    (qerror_tables t)

(* The merged snapshot elides counters still at zero, but the
   program-memo pair is part of STATS' contract (a plan compiled with its
   program pre-built never counts a miss), so pin both fields. *)
let with_program_counters t pairs =
  List.fold_left
    (fun acc name ->
      if List.mem_assoc name acc then acc
      else acc @ [ (name, string_of_int (Metrics.get t.metrics name)) ])
    pairs
    [ "plan.program_hits"; "plan.program_misses" ]

let handle_stats t =
  let pairs =
    with_program_counters t (Metrics.report t.metrics)
    @ [
        ("cache_hits", string_of_int (cache_hits t));
        ("cache_misses", string_of_int (cache_misses t));
        ("cache_evictions", string_of_int (cache_evictions t));
        ("cache_entries", string_of_int (cache_entries t));
        ("cache_bytes", string_of_int (cache_bytes t));
        ("cache_collisions", string_of_int (cache_collisions t));
      ]
    @ (let hits, misses, evictions = plan_stats t in
       [
         ("plan_cache_hits", string_of_int hits);
         ("plan_cache_misses", string_of_int misses);
         ("plan_cache_evictions", string_of_int evictions);
         ("plan_cache_entries", string_of_int (plan_entries t));
         ("plan_cache_collisions", string_of_int (plan_collisions t));
       ])
    @ [
        ("models", string_of_int (Registry.size t.registry));
        ("registry_epoch", string_of_int (Registry.Epoch.current_epoch t.registry));
        ("domains", string_of_int (Array.length t.shards));
      ]
    @ qerror_stats_fields t
  in
  Protocol.ok (String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) pairs))

(* ---- HEALTH ----------------------------------------------------------------- *)

(* Error-budget burn: observed violation fraction over the budget a p99
   target allows (1%).  1.0 = exactly on budget, above = burning. *)
let burn_of ~violations ~n =
  if n = 0 then 0.0 else float_of_int violations /. float_of_int n /. 0.01

let latency_violations ~slo_p99_us h =
  let n = Obs.Histogram.count h in
  (n, n - Obs.Histogram.count_le h (int_of_float (slo_p99_us *. 1e3)))

(* Observations at or under [gate], read off the cumulative q-error
   buckets (bucket-quantized like the quantiles themselves). *)
let qerror_violations ~gate qe =
  let le =
    Array.fold_left
      (fun acc (edge, cum) -> if edge <= gate then max acc cum else acc)
      0 (Obs.Qerror.buckets qe)
  in
  let n = Obs.Qerror.count qe in
  (n, n - le)

let threshold_us_string ns =
  if ns = max_int then "-" else Printf.sprintf "%.1f" (float_of_int ns /. 1e3)

(* The SLO report.  Latency quantiles and the latency burn are computed
   over the window since the previous HEALTH (epoch / delta semantics of
   {!Obs.Telemetry.Snapshot.delta}; the first HEALTH reports since
   start), so repeated probes see fresh burn rates, not a lifetime
   average that a long good run can never move.  q-error burn is
   lifetime — ground truth is too rare to window. *)
let handle_health t =
  let snap = Obs.Telemetry.snapshot (Metrics.telemetry t.metrics) in
  let window =
    match Atomic.get t.health_prev with
    | Some prev -> Obs.Telemetry.Snapshot.delta ~prev snap
    | None -> snap
  in
  Atomic.set t.health_prev (Some snap);
  let buf = Buffer.create 1024 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  let us ns = float_of_int ns /. 1e3 in
  let hq h p = us (Obs.Histogram.quantile_ns h p) in
  let lat_n, lat_viol, lat_burn, lat_p99 =
    match Obs.Telemetry.Snapshot.find_hist window Metrics.lat_key with
    | None -> (0, 0, 0.0, 0.0)
    | Some h ->
      let n, viol = latency_violations ~slo_p99_us:t.slo_p99_us h in
      (n, viol, burn_of ~violations:viol ~n, hq h 0.99)
  in
  let q_slos =
    List.map
      (fun (name, qe) ->
        let n, viol = qerror_violations ~gate:t.slo_qerror qe in
        (name, qe, n, viol, burn_of ~violations:viol ~n))
      (qerror_tables t)
  in
  let healthy =
    lat_burn <= 1.0 && List.for_all (fun (_, _, _, _, b) -> b <= 1.0) q_slos
  in
  line "status=%s uptime_s=%.1f epoch=%d shards=%d requests=%d window_requests=%d"
    (if healthy then "ok" else "degraded")
    (float_of_int (Obs.Clock.now_ns () - t.start_ns) /. 1e9)
    snap.Obs.Telemetry.epoch
    (Obs.Telemetry.n_shards (Metrics.telemetry t.metrics))
    (Obs.Telemetry.Snapshot.find_counter snap "requests")
    (Obs.Telemetry.Snapshot.find_counter window "requests");
  (* per-verb latency quantiles over the window; "all" is the aggregate *)
  let verb_prefix = Metrics.verb_key "" in
  let plen = String.length verb_prefix in
  List.iter
    (fun (name, h) ->
      let verb =
        if name = Metrics.lat_key then Some "all"
        else if String.length name > plen && String.sub name 0 plen = verb_prefix
        then Some (String.sub name plen (String.length name - plen))
        else None
      in
      match verb with
      | Some v when Obs.Histogram.count h > 0 ->
        line
          "verb=%s n=%d mean_us=%.1f p50_us=%.1f p95_us=%.1f p99_us=%.1f p999_us=%.1f max_us=%.1f"
          v (Obs.Histogram.count h)
          (Obs.Histogram.mean_ns h /. 1e3)
          (hq h 0.5) (hq h 0.95) (hq h 0.99) (hq h 0.999)
          (us (Obs.Histogram.max_ns_seen h))
      | _ -> ())
    window.Obs.Telemetry.hists;
  line
    "slo=latency target_p99_us=%.0f observed_p99_us=%.1f n=%d violations=%d burn=%.2f status=%s"
    t.slo_p99_us lat_p99 lat_n lat_viol lat_burn
    (if lat_burn <= 1.0 then "ok" else "breach");
  List.iter
    (fun (name, qe, n, viol, b) ->
      let s = Obs.Qerror.summarize qe in
      line
        "slo=qerror model=%s target_p99=%.1f observed_p99=%.3g n=%d violations=%d burn=%.2f status=%s"
        name t.slo_qerror s.Obs.Qerror.p99 n viol b
        (if b <= 1.0 then "ok" else "breach"))
    q_slos;
  let rate h m =
    let tot = h + m in
    if tot = 0 then 0.0 else float_of_int h /. float_of_int tot
  in
  line "cache=estimate hits=%d misses=%d hit_rate=%.3f entries=%d"
    (cache_hits t) (cache_misses t)
    (rate (cache_hits t) (cache_misses t))
    (cache_entries t);
  let plan_hits, plan_misses, _ = plan_stats t in
  line "cache=plan hits=%d misses=%d hit_rate=%.3f entries=%d" plan_hits
    plan_misses
    (rate plan_hits plan_misses)
    (plan_entries t);
  (* shard identity: one line per executor shard, so a hot or wedged
     shard is visible from the same probe as everything else *)
  Array.iter
    (fun st ->
      line "shard id=%d inflight=%d accepted=%d requests=%d cache_entries=%d"
        st.sid (Atomic.get st.inflight) (Atomic.get st.accepted)
        (Metrics.get t.metrics st.req_counter)
        (Lru.length st.scache))
    t.shards;
  List.iter
    (fun (name, qe) ->
      let s = Obs.Qerror.summarize qe in
      let f v = Printf.sprintf "%.3g" v in
      line "qerror model=%s n=%d mean=%s p50=%s p90=%s p99=%s max=%s" name
        s.Obs.Qerror.n (f s.Obs.Qerror.mean) (f s.Obs.Qerror.p50)
        (f s.Obs.Qerror.p90) (f s.Obs.Qerror.p99) (f s.Obs.Qerror.max_q))
    (qerror_tables t);
  line "slowlog captured=%d held=%d capacity=%d threshold_us=%s quantile=%.3f qerror_gate=%.1f"
    (Obs.Slowlog.total t.slowlog)
    (Obs.Slowlog.length t.slowlog)
    (Obs.Slowlog.capacity t.slowlog)
    (threshold_us_string (Atomic.get t.slow_threshold))
    t.slow_quantile t.qerror_gate;
  Protocol.ok_multiline (Buffer.contents buf)

(* ---- SHARDS ----------------------------------------------------------------- *)

(* The shard-per-domain introspection surface: layout first (domain
   count, admission budget, backlog, endpoints), then one line per shard
   with its live admission state and domain-local cache counters. *)
let handle_shards t =
  let buf = Buffer.create 256 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  line "domains=%d max_inflight=%d backlog=%d socket=%s tcp=%s epoch=%d"
    (Array.length t.shards) t.max_inflight t.backlog t.socket
    (match t.tcp with
    | None -> "-"
    | Some (host, port) -> Printf.sprintf "%s:%d" host port)
    (Registry.Epoch.current_epoch t.registry);
  Array.iter
    (fun st ->
      let ph, pm, _ = Plan_cache.stats st.splans in
      line
        "shard id=%d inflight=%d accepted=%d requests=%d cache_entries=%d cache_hits=%d cache_misses=%d plan_entries=%d plan_hits=%d plan_misses=%d lock_free=%b"
        st.sid (Atomic.get st.inflight) (Atomic.get st.accepted)
        (Metrics.get t.metrics st.req_counter)
        (Lru.length st.scache) (Lru.hits st.scache) (Lru.misses st.scache)
        (Plan_cache.length st.splans) ph pm
        (not (Plan_cache.synchronized st.splans)))
    t.shards;
  Protocol.ok_multiline (Buffer.contents buf)

(* ---- SLOWLOG ---------------------------------------------------------------- *)

let handle_slowlog t n =
  let n = Option.value ~default:10 n in
  let entries = Obs.Slowlog.recent ~n t.slowlog in
  let buf = Buffer.create 512 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  line "entries=%d captured=%d capacity=%d threshold_us=%s"
    (List.length entries)
    (Obs.Slowlog.total t.slowlog)
    (Obs.Slowlog.capacity t.slowlog)
    (threshold_us_string (Atomic.get t.slow_threshold));
  List.iter
    (fun (e : Obs.Slowlog.entry) ->
      line "slow seq=%d verb=%s reason=%s lat_us=%.1f threshold_us=%s qerror=%s query=%s"
        e.Obs.Slowlog.seq e.Obs.Slowlog.verb
        (Obs.Slowlog.reason_to_string e.Obs.Slowlog.reason)
        (float_of_int e.Obs.Slowlog.lat_ns /. 1e3)
        (threshold_us_string e.Obs.Slowlog.threshold_ns)
        (match e.Obs.Slowlog.qerror with
        | None -> "-"
        | Some q -> Printf.sprintf "%.6g" q)
        e.Obs.Slowlog.query;
      (* the captured tree, start-ordered, indented by nesting depth *)
      List.iter
        (fun (s : Obs.Span.record) ->
          let attrs =
            match s.Obs.Span.attrs with
            | [] -> ""
            | l ->
              " "
              ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) l)
          in
          line "%sspan %s us=%.1f%s"
            (String.make (2 + (2 * s.Obs.Span.depth)) ' ')
            s.Obs.Span.name (Obs.Span.duration_us s) attrs)
        (List.sort
           (fun (a : Obs.Span.record) b -> compare a.Obs.Span.start_ns b.Obs.Span.start_ns)
           e.Obs.Slowlog.spans))
    entries;
  Protocol.ok_multiline (Buffer.contents buf)

let prometheus_metrics t =
  let open Obs.Prometheus in
  let counter ?(help = "") ?(labels = []) name v =
    Counter { name; help; labels; value = float_of_int v }
  in
  let gauge ?(help = "") name v =
    Gauge { name; help; labels = []; value = float_of_int v }
  in
  let fgauge ?(help = "") ?(labels = []) name v =
    Gauge { name; help; labels; value = v }
  in
  (* service counters; infer.<model> folds into one labelled family and
     the program-memo pair keeps its own stable names *)
  let infers, plain =
    List.partition
      (fun (k, _) -> String.length k > 6 && String.sub k 0 6 = "infer.")
      (List.filter
         (fun (k, _) -> k <> "plan.program_hits" && k <> "plan.program_misses")
         (Metrics.counters t.metrics))
  in
  let plain_metrics =
    List.map
      (fun (k, v) -> counter ("selest_" ^ sanitize k ^ "_total") v)
      plain
  in
  let infer_metrics =
    List.map
      (fun (k, v) ->
        let model_name = String.sub k 6 (String.length k - 6) in
        counter ~help:"inference runs per model"
          ~labels:[ ("model", model_name) ] "selest_infer_total" v)
      infers
  in
  let program_metrics =
    [ counter ~help:"bytecode program-memo hits inside compiled plans"
        "selest_program_memo_hits"
        (Metrics.get t.metrics "plan.program_hits");
      counter ~help:"bytecode program-memo misses (slow-path recomputes)"
        "selest_program_memo_misses"
        (Metrics.get t.metrics "plan.program_misses") ]
  in
  let latency =
    Histogram
      {
        name = "selest_request_latency_us";
        help = "request latency in microseconds";
        labels = [];
        buckets = Metrics.histogram t.metrics;
        sum = Metrics.latency_sum_us t.metrics;
        count = Metrics.observations t.metrics;
      }
  in
  let verb_latency =
    List.map
      (fun (verb, h) ->
        Histogram
          {
            name = "selest_verb_latency_us";
            help = "per-verb request latency in microseconds";
            labels = [ ("verb", verb) ];
            buckets = Obs.Histogram.buckets_us h;
            sum = float_of_int (Obs.Histogram.sum_ns h) /. 1e3;
            count = Obs.Histogram.count h;
          })
      (Metrics.verb_histograms t.metrics)
  in
  let lat_n, lat_viol =
    latency_violations ~slo_p99_us:t.slo_p99_us
      (Metrics.latency_histogram t.metrics)
  in
  let slo_metrics =
    [ counter ~help:"tail-sampled slow-log captures"
        "selest_slowlog_captured_total"
        (Obs.Slowlog.total t.slowlog);
      gauge ~help:"slow-log entries held" "selest_slowlog_entries"
        (Obs.Slowlog.length t.slowlog);
      fgauge ~help:"latency SLO error-budget burn (lifetime)"
        "selest_slo_latency_burn"
        (burn_of ~violations:lat_viol ~n:lat_n) ]
    @ List.map
        (fun (name, qe) ->
          let n, viol = qerror_violations ~gate:t.slo_qerror qe in
          fgauge ~help:"q-error SLO error-budget burn"
            ~labels:[ ("model", name) ] "selest_slo_qerror_burn"
            (burn_of ~violations:viol ~n))
        (qerror_tables t)
  in
  let shard_metrics =
    [ gauge ~help:"executor shards (domains)" "selest_domains"
        (Array.length t.shards) ]
    @ (Array.to_list t.shards
      |> List.concat_map (fun st ->
             let sid = string_of_int st.sid in
             [ Gauge
                 {
                   name = "selest_shard_inflight";
                   help = "live connections per shard";
                   labels = [ ("shard", sid) ];
                   value = float_of_int (Atomic.get st.inflight);
                 };
               Counter
                 {
                   name = "selest_shard_accepted_total";
                   help = "connections handed to each shard";
                   labels = [ ("shard", sid) ];
                   value = float_of_int (Atomic.get st.accepted);
                 } ]))
  in
  let cache_metrics =
    [ counter ~help:"estimate cache hits" "selest_cache_hits_total"
        (cache_hits t);
      counter ~help:"estimate cache misses" "selest_cache_misses_total"
        (cache_misses t);
      counter ~help:"estimate cache evictions" "selest_cache_evictions_total"
        (cache_evictions t);
      counter
        ~help:"estimate cache hash hits whose full-key verification failed"
        "selest_cache_collisions_total" (cache_collisions t);
      gauge ~help:"estimate cache entries" "selest_cache_entries"
        (cache_entries t);
      gauge ~help:"estimate cache bytes" "selest_cache_bytes"
        (cache_bytes t);
      gauge ~help:"loaded models" "selest_models" (Registry.size t.registry);
      gauge ~help:"registry snapshot epoch (bumps on LOAD)"
        "selest_registry_epoch"
        (Registry.Epoch.current_epoch t.registry)
    ]
  in
  let plan_hits, plan_misses, plan_evictions = plan_stats t in
  let plan_metrics =
    [ counter ~help:"compiled-plan cache hits" "selest_plan_cache_hits_total"
        plan_hits;
      counter ~help:"compiled-plan cache misses"
        "selest_plan_cache_misses_total" plan_misses;
      counter ~help:"compiled-plan cache evictions"
        "selest_plan_cache_evictions_total" plan_evictions;
      counter
        ~help:"plan cache hash hits whose full-key verification failed"
        "selest_plan_cache_collisions_total" (plan_collisions t);
      gauge ~help:"compiled-plan cache entries" "selest_plan_cache_entries"
        (plan_entries t) ]
  in
  let qerror_metrics =
    List.map
      (fun (name, qe) ->
        let s = Obs.Qerror.summarize qe in
        Histogram
          {
            name = "selest_qerror";
            help = "q-error of estimates vs supplied ground truth";
            labels = [ ("model", name) ];
            buckets = Obs.Qerror.buckets qe;
            sum =
              (if s.Obs.Qerror.n = 0 then 0.0
               else s.Obs.Qerror.mean *. float_of_int s.Obs.Qerror.n);
            count = s.Obs.Qerror.n;
          })
      (qerror_tables t)
  in
  plain_metrics @ infer_metrics @ program_metrics
  @ (latency :: verb_latency)
  @ cache_metrics @ plan_metrics @ shard_metrics @ qerror_metrics
  @ slo_metrics

let handle_metrics t =
  Protocol.ok_multiline (Obs.Prometheus.render (prometheus_metrics t))

let handle_line_st t st line =
  Metrics.incr t.metrics "requests";
  Metrics.incr t.metrics st.req_counter;
  let t0 = Obs.Clock.now_ns () in
  (* The handler has already run when [finish] fires (argument order):
     it records the verb's latency and feeds the tail sampler.  Only
     verbs a replay reproduces pass [?body] — see [observe_response]. *)
  let finish ~verb ?model ?body (r, action) =
    observe_response t st ~verb ?model ?body
      ~dt_ns:(Obs.Clock.now_ns () - t0)
      ();
    (r, action)
  in
  match Protocol.parse_request line with
  | Error msg ->
    Metrics.incr t.metrics "protocol_errors";
    finish ~verb:"error" (Protocol.err msg, `Continue)
  | Ok Protocol.Ping -> finish ~verb:"ping" (Protocol.pong, `Continue)
  | Ok (Protocol.Load { name; path }) ->
    finish ~verb:"load" (handle_load t ~name ~path, `Continue)
  | Ok (Protocol.Est { model; body }) ->
    Metrics.incr t.metrics "est_requests";
    finish ~verb:"est" ?model ~body (handle_est t st ~model ~body, `Continue)
  | Ok (Protocol.Estbatch { model; bodies }) ->
    Metrics.incr t.metrics "estbatch_requests";
    List.iter (fun _ -> Metrics.incr t.metrics "est_requests") bodies;
    finish ~verb:"estbatch" (handle_estbatch t st ~model ~bodies, `Continue)
  | Ok (Protocol.Explain { model; body }) ->
    Metrics.incr t.metrics "explain_requests";
    finish ~verb:"explain" ?model ~body
      (handle_explain t st ~model ~body, `Continue)
  | Ok (Protocol.Explainplan { model; body }) ->
    Metrics.incr t.metrics "explainplan_requests";
    finish ~verb:"explainplan"
      (handle_explainplan t st ~model ~body, `Continue)
  | Ok (Protocol.Truth { model; truth; body }) ->
    Metrics.incr t.metrics "truth_requests";
    finish ~verb:"truth" ?model ~body
      (handle_truth t st ~model ~truth ~body ~t0, `Continue)
  | Ok Protocol.Stats -> finish ~verb:"stats" (handle_stats t, `Continue)
  | Ok Protocol.Metrics -> finish ~verb:"metrics" (handle_metrics t, `Continue)
  | Ok Protocol.Health -> finish ~verb:"health" (handle_health t, `Continue)
  | Ok Protocol.Shards -> finish ~verb:"shards" (handle_shards t, `Continue)
  | Ok (Protocol.Slowlog { n }) ->
    finish ~verb:"slowlog" (handle_slowlog t n, `Continue)
  | Ok Protocol.Shutdown -> finish ~verb:"shutdown" (Protocol.ok "bye", `Stop)

(* One binary frame, transport-free: decode, dispatch to the shared EST
   cores, encode.  Same request/latency/error accounting as
   [handle_line_st], minus the text formatting. *)
let handle_frame_st t st payload =
  Metrics.incr t.metrics "requests";
  Metrics.incr t.metrics st.req_counter;
  let t0 = Obs.Clock.now_ns () in
  let finish ~verb ?model ?body r =
    observe_response t st ~verb ?model ?body
      ~dt_ns:(Obs.Clock.now_ns () - t0)
      ();
    Protocol.Bin.encode_response r
  in
  match Protocol.Bin.decode_request payload with
  | Error msg ->
    Metrics.incr t.metrics "protocol_errors";
    finish ~verb:"error" (Protocol.Bin.Berr msg)
  | Ok (Protocol.Bin.Best { model; body }) -> (
    Metrics.incr t.metrics "est_requests";
    match Obs.Span.with_ "est" (fun _ -> est_core t st ~model ~body) with
    | Ok estimate -> finish ~verb:"est" ?model ~body (Protocol.Bin.Bvalue estimate)
    | Error msg -> finish ~verb:"est" ?model ~body (Protocol.Bin.Berr msg))
  | Ok (Protocol.Bin.Bestbatch { model; bodies }) -> (
    Metrics.incr t.metrics "estbatch_requests";
    List.iter (fun _ -> Metrics.incr t.metrics "est_requests") bodies;
    match estbatch_core t st ~model ~bodies with
    | Ok answers -> finish ~verb:"estbatch" (Protocol.Bin.Bvalues answers)
    | Error msg -> finish ~verb:"estbatch" (Protocol.Bin.Berr msg))

(* ---- allocation-free fast path ---------------------------------------------

   The warm EST round trip — socket read to answer write — touches the
   heap zero times.  A request is recognized as a slice of the
   connection buffer ({!Protocol.Slice}), lexed into the shard's
   reusable scratch query, canonicalized, hashed and probed against the
   shard cache; a verified hit writes the entry's pre-rendered response
   bytes straight to the socket.  Misses and inference errors are
   handled inline too (allocation is fine there — the cold half is
   gated on latency, not allocation), so once a request commits to the
   fast path the reference path never re-runs it and nothing is counted
   twice.

   The commit point is a successful scratch parse: before it the fast
   path has no observable effect, so returning [false] (unknown model,
   parse error, non-EST line) hands the request to the reference path
   with its exact error messages and accounting.  Span collection
   disables the fast path entirely ([Obs.Span.enabled]) so tracing
   always sees the instrumented path.  Tail sampling is skipped: a warm
   hit is answered far under any realistic capture threshold, and
   slow-path responses keep the threshold fresh. *)

let write_all_fd fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

(* Does the slice equal [s], byte for byte?  Allocation-free. *)
let slice_eq buf ~off ~len s =
  String.length s = len
  &&
  let rec go i =
    i = len
    || (Bytes.unsafe_get buf (off + i) = String.unsafe_get s i && go (i + 1))
  in
  go 0

(* Resolve the sliced model name against a pinned snapshot without
   allocating: the default model is the MRU head, a named model is the
   entry whose name equals the slice.  Raises [Not_found] when the
   registry is empty or the name unknown — the reference path then
   reports the error. *)
let resolve_slice snap (sl : Protocol.Slice.t) buf =
  let entries = Registry.Epoch.entries snap in
  if sl.Protocol.Slice.model_len = 0 then
    match entries with [] -> raise Not_found | hd :: _ -> hd
  else
    let rec named = function
      | [] -> raise Not_found
      | ((name, _) as hd) :: rest ->
        if
          slice_eq buf ~off:sl.Protocol.Slice.model_off
            ~len:sl.Protocol.Slice.model_len name
        then hd
        else named rest
    in
    named entries

(* Serve one recognized EST slice ([st.slice] already filled): parse →
   canon → hash → probe → write.  [bin] selects which pre-rendered
   response is written.  Returns [false] with no observable effect when
   the fast path cannot own the request, [true] once the response —
   hit, miss or inference error — is on the wire. *)
let fast_est t st fd buf ~bin =
  let sl = st.slice in
  if Obs.Span.enabled () then false
  else
    match resolve_slice (Registry.Epoch.pin t.registry) sl buf with
    | exception Not_found -> false
    | name, e -> (
      let t0 = Obs.Clock.now_ns () in
      match
        Squery.parse st.scratch buf ~off:sl.Protocol.Slice.body_off
          ~len:sl.Protocol.Slice.body_len
      with
      | exception (Failure _ | Not_found | Invalid_argument _) -> false
      | () ->
        (* Committed: from here the fast path owns the request. *)
        let t1 = Obs.Clock.now_ns () in
        Squery.canon st.scratch;
        let t2 = Obs.Clock.now_ns () in
        let version = e.Registry.version in
        let hash = est_hash st ~name ~version in
        let t3 = Obs.Clock.now_ns () in
        Metrics.fast_est_request t.metrics;
        Metrics.bump t.metrics st.c_req;
        Metrics.frontend_parse_ns t.metrics (t1 - t0);
        Metrics.frontend_canon_ns t.metrics (t2 - t1);
        Metrics.frontend_key_ns t.metrics (t3 - t2);
        (match probe t st ~name ~version hash with
        | entry -> write_all_fd fd (if bin then entry.Lru.bin else entry.Lru.text)
        | exception Not_found -> (
          match
            infer_measured t st ~name ~entry:e ~hash
              (Squery.to_query st.scratch)
          with
          | Ok (le, _, _, _) ->
            write_all_fd fd (if bin then le.Lru.bin else le.Lru.text)
          | Error msg ->
            Metrics.incr t.metrics "est_errors";
            write_all_fd fd
              (if bin then
                 Protocol.Bin.encode_response (Protocol.Bin.Berr msg)
               else Protocol.err msg ^ "\n")));
        Metrics.fast_est_latency_ns t.metrics (Obs.Clock.now_ns () - t0);
        true)

let fast_line t st fd buf ~off ~len =
  Protocol.Slice.est_line st.slice buf ~off ~len
  && fast_est t st fd buf ~bin:false

let fast_frame t st fd buf ~off ~len =
  Protocol.Slice.bin_est st.slice buf ~off ~len
  && fast_est t st fd buf ~bin:true

let fast_handlers t ~shard =
  if shard < 0 || shard >= Array.length t.shards then
    invalid_arg "Server.fast_handlers: shard out of range";
  let st = t.shards.(shard) in
  ( (fun fd buf ~off ~len -> fast_line t st fd buf ~off ~len),
    (fun fd buf ~off ~len -> fast_frame t st fd buf ~off ~len) )

(* Transport-free entry points.  [handle_line]/[handle_frame] dispatch
   on shard 0 (embedded single-shard use, tests, benches);
   [handle_line_shard] picks an explicit shard so transport-free callers
   can drive the per-shard state the way the listener would. *)
let handle_line t line = handle_line_st t t.shards.(0) line
let handle_frame t payload = handle_frame_st t t.shards.(0) payload

let handle_line_shard t ~shard line =
  if shard < 0 || shard >= Array.length t.shards then
    invalid_arg "Server.handle_line_shard: shard out of range";
  handle_line_st t t.shards.(shard) line

(* ---- listener + shard event loops ------------------------------------------ *)

let resolve_tcp host port =
  match
    Unix.getaddrinfo host (string_of_int port)
      [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM; Unix.AI_FAMILY Unix.PF_INET ]
  with
  | ai :: _ -> ai.Unix.ai_addr
  | [] -> Unix.ADDR_INET (Unix.inet_addr_of_string host, port)

(* The accept loop: select over the Unix-domain and (optional) TCP
   listening sockets plus a stop pipe, round-robin accepted fds into
   shard mailboxes, and reject with BUSY when every shard is at its
   admission budget.  Handoff synchronizes once per connection; requests
   never cross this thread again. *)
let run t =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  if Sys.file_exists t.socket then (try Unix.unlink t.socket with Unix.Unix_error _ -> ());
  let unix_sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind unix_sock (Unix.ADDR_UNIX t.socket);
  Unix.listen unix_sock t.backlog;
  let tcp_sock =
    match t.tcp with
    | None -> None
    | Some (host, port) ->
      let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt s Unix.SO_REUSEADDR true;
      Unix.bind s (resolve_tcp host port);
      Unix.listen s t.backlog;
      Some s
  in
  Log.info (fun m ->
      m "listening on %s%s (%d domain%s, max_inflight %d/shard, backlog %d)"
        t.socket
        (match t.tcp with
        | None -> ""
        | Some (h, p) -> Printf.sprintf " and tcp %s:%d" h p)
        (Array.length t.shards)
        (if Array.length t.shards = 1 then "" else "s")
        t.max_inflight t.backlog);
  let stop = t.stop_flag in
  let rts = Array.map (fun st -> Shard.create ~sid:st.sid) t.shards in
  let stop_r, stop_w = Unix.pipe () in
  Unix.set_nonblock stop_w;
  let request_stop () =
    (* Unconditional: a duplicate wake is a harmless extra pipe byte
       (EAGAIN swallowed), and guarding on an exchange would let an
       external {!shutdown} that latched the flag first skip the wake. *)
    Atomic.set stop true;
    (try ignore (Unix.write stop_w (Bytes.make 1 '!') 0 1)
     with Unix.Unix_error _ -> ());
    Array.iter Shard.wake rts
  in
  Atomic.set t.waker request_stop;
  let workers =
    Array.mapi
      (fun i rt ->
        let st = t.shards.(i) in
        Domain.spawn (fun () ->
            Shard.run rt ~stop ~request_stop
              ~on_line_fast:(fun fd buf ~off ~len ->
                fast_line t st fd buf ~off ~len)
              ~on_frame_fast:(fun fd buf ~off ~len ->
                fast_frame t st fd buf ~off ~len)
              ~on_line:(fun line -> handle_line_st t st line)
              ~on_frame:(fun payload -> handle_frame_st t st payload)
              ~on_close:(fun () ->
                ignore (Atomic.fetch_and_add st.inflight (-1)))
              ~on_protocol_error:(fun () ->
                Metrics.incr t.metrics "protocol_errors")
              ()))
      rts
  in
  let listeners = unix_sock :: Option.to_list tcp_sock in
  let nshards = Array.length t.shards in
  let next = ref 0 in
  let dispatch fd =
    (* Round-robin with a linear probe past shards at their budget, so a
       slow shard sheds to its neighbours before anyone is rejected. *)
    let rec pick k =
      if k = nshards then None
      else
        let i = (!next + k) mod nshards in
        if Atomic.get t.shards.(i).inflight < t.max_inflight then Some i
        else pick (k + 1)
    in
    match pick 0 with
    | Some i ->
      next := (i + 1) mod nshards;
      Atomic.incr t.shards.(i).inflight;
      Atomic.incr t.shards.(i).accepted;
      Shard.submit rts.(i) fd
    | None ->
      Metrics.incr t.metrics "admission_rejected";
      (try
         write_all_fd fd
           (Protocol.busy
              (Printf.sprintf "all %d shards at max_inflight=%d — retry later"
                 nshards t.max_inflight)
           ^ "\n")
       with Unix.Unix_error _ | Sys_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())
  in
  while not (Atomic.get stop) do
    match Unix.select (stop_r :: listeners) [] [] 0.5 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
      List.iter
        (fun lsock ->
          if List.memq lsock readable then
            match Unix.accept lsock with
            | exception Unix.Unix_error _ -> ()
            | fd, _ -> dispatch fd)
        listeners
  done;
  Array.iter Shard.wake rts;
  Array.iter Domain.join workers;
  Array.iter Shard.destroy rts;
  List.iter
    (fun s -> try Unix.close s with Unix.Unix_error _ -> ())
    listeners;
  (try Unix.close stop_r with Unix.Unix_error _ -> ());
  (try Unix.close stop_w with Unix.Unix_error _ -> ());
  (try Unix.unlink t.socket with Unix.Unix_error _ -> ());
  shutdown_pool t;
  (* Drain the JSONL trace sink before the final report: a SHUTDOWN must
     not strand buffered span records in a dying process. *)
  Obs.Trace_log.close ();
  Log.info (fun m ->
      m "shut down after %d requests@.%a" (Metrics.get t.metrics "requests") Metrics.pp
        t.metrics)

let shutdown t =
  (* Latch first so a [run] that has not yet installed its waker still
     observes the flag before its first select; then kick the installed
     waker (no-op pre-[run], stop-pipe write + shard wakes after). *)
  Atomic.set t.stop_flag true;
  (Atomic.get t.waker) ()
