open Selest_db

let normalize_pred = function
  | Query.Eq v -> Query.Eq v
  | Query.In_set vs -> (
    match List.sort_uniq compare vs with
    | [ v ] -> Query.Eq v
    | vs -> Query.In_set vs)
  | Query.Range (lo, hi) -> if lo = hi then Query.Eq lo else Query.Range (lo, hi)

let normalize (q : Query.t) =
  let tvars = List.sort compare q.Query.tvars in
  let joins =
    List.sort_uniq
      (fun a b ->
        compare
          (a.Query.child_tv, a.Query.fk, a.Query.parent_tv)
          (b.Query.child_tv, b.Query.fk, b.Query.parent_tv))
      q.Query.joins
  in
  let selects =
    List.map
      (fun s -> { s with Query.pred = normalize_pred s.Query.pred })
      q.Query.selects
    |> List.sort_uniq (fun a b ->
           compare
             (a.Query.sel_tv, a.Query.sel_attr, a.Query.pred)
             (b.Query.sel_tv, b.Query.sel_attr, b.Query.pred))
  in
  Query.create ~tvars ~joins ~selects ()

let pred_str = function
  | Query.Eq v -> Printf.sprintf "=%d" v
  | Query.In_set vs ->
    Printf.sprintf "in{%s}" (String.concat "," (List.map string_of_int vs))
  | Query.Range (lo, hi) -> Printf.sprintf ":%d..%d" lo hi

let key q =
  let q = normalize q in
  let tvars = List.map (fun (tv, t) -> tv ^ "=" ^ t) q.Query.tvars in
  let joins =
    List.map
      (fun j -> Printf.sprintf "%s.%s=%s" j.Query.child_tv j.Query.fk j.Query.parent_tv)
      q.Query.joins
  in
  let selects =
    List.map
      (fun s -> Printf.sprintf "%s.%s%s" s.Query.sel_tv s.Query.sel_attr (pred_str s.Query.pred))
      q.Query.selects
  in
  String.concat "|"
    [ String.concat "&" tvars; String.concat "&" joins; String.concat "&" selects ]

let skeleton_key q = Selest_plan.Plan.skeleton_key (normalize q)

(* The plan-cache key: model name and version plus the query skeleton,
   rendered into one buffer in one pass (the old path chained sprintf +
   String.concat over freshly built lists) and hashed as it will be
   probed — the cache indexes on [hash] and keeps [key] only to verify
   the rare hash collision. *)
module Skel = struct
  type t = { hash : int; key : string }

  (* The 64-bit FNV-1a offset basis 0xcbf29ce484222325 exceeds OCaml's
     63-bit literal range, so compose it from halves (wraps to the same
     native-int bit pattern). *)
  let fnv_basis = (0xcbf29ce4 lsl 32) lor 0x84222325
  let fnv_prime = 0x100000001b3

  let fnv_string h s =
    let h = ref h in
    for i = 0 to String.length s - 1 do
      h := (!h lxor Char.code (String.unsafe_get s i)) * fnv_prime
    done;
    !h

  let make ~name ~version (q : Query.t) =
    let buf = Buffer.create 96 in
    Buffer.add_string buf name;
    Buffer.add_char buf '#';
    Buffer.add_string buf (string_of_int version);
    Buffer.add_char buf '|';
    List.iteri
      (fun i (tv, tbl) ->
        if i > 0 then Buffer.add_char buf ';';
        Buffer.add_string buf tv;
        Buffer.add_char buf ':';
        Buffer.add_string buf tbl)
      q.Query.tvars;
    Buffer.add_char buf '|';
    List.iteri
      (fun i j ->
        if i > 0 then Buffer.add_char buf ';';
        Buffer.add_string buf j.Query.child_tv;
        Buffer.add_char buf '.';
        Buffer.add_string buf j.Query.fk;
        Buffer.add_char buf '=';
        Buffer.add_string buf j.Query.parent_tv)
      q.Query.joins;
    Buffer.add_char buf '|';
    (* [q] is canonical, so selects are sorted by (tv, attr, pred);
       adjacent duplicates collapse because the skeleton ignores
       predicate values. *)
    let prev = ref ("", "") in
    let first = ref true in
    List.iter
      (fun s ->
        let id = (s.Query.sel_tv, s.Query.sel_attr) in
        if !first || id <> !prev then begin
          if not !first then Buffer.add_char buf ';';
          first := false;
          prev := id;
          Buffer.add_string buf s.Query.sel_tv;
          Buffer.add_char buf '.';
          Buffer.add_string buf s.Query.sel_attr
        end)
      q.Query.selects;
    let key = Buffer.contents buf in
    { hash = fnv_string fnv_basis key land max_int; key }
end
