open Selest_db

let normalize_pred = function
  | Query.Eq v -> Query.Eq v
  | Query.In_set vs -> (
    match List.sort_uniq compare vs with
    | [ v ] -> Query.Eq v
    | vs -> Query.In_set vs)
  | Query.Range (lo, hi) -> if lo = hi then Query.Eq lo else Query.Range (lo, hi)

let normalize (q : Query.t) =
  let tvars = List.sort compare q.Query.tvars in
  let joins =
    List.sort_uniq
      (fun a b ->
        compare
          (a.Query.child_tv, a.Query.fk, a.Query.parent_tv)
          (b.Query.child_tv, b.Query.fk, b.Query.parent_tv))
      q.Query.joins
  in
  let selects =
    List.map
      (fun s -> { s with Query.pred = normalize_pred s.Query.pred })
      q.Query.selects
    |> List.sort_uniq (fun a b ->
           compare
             (a.Query.sel_tv, a.Query.sel_attr, a.Query.pred)
             (b.Query.sel_tv, b.Query.sel_attr, b.Query.pred))
  in
  Query.create ~tvars ~joins ~selects ()

let pred_str = function
  | Query.Eq v -> Printf.sprintf "=%d" v
  | Query.In_set vs ->
    Printf.sprintf "in{%s}" (String.concat "," (List.map string_of_int vs))
  | Query.Range (lo, hi) -> Printf.sprintf ":%d..%d" lo hi

let key q =
  let q = normalize q in
  let tvars = List.map (fun (tv, t) -> tv ^ "=" ^ t) q.Query.tvars in
  let joins =
    List.map
      (fun j -> Printf.sprintf "%s.%s=%s" j.Query.child_tv j.Query.fk j.Query.parent_tv)
      q.Query.joins
  in
  let selects =
    List.map
      (fun s -> Printf.sprintf "%s.%s%s" s.Query.sel_tv s.Query.sel_attr (pred_str s.Query.pred))
      q.Query.selects
  in
  String.concat "|"
    [ String.concat "&" tvars; String.concat "&" joins; String.concat "&" selects ]

let skeleton_key q = Selest_plan.Plan.skeleton_key (normalize q)
