(* Bucket i of the latency histogram covers (bound.(i-1), bound.(i)] with
   bound.(i) = 1.5^i microseconds; 64 buckets reach ~1.2e11 µs, far beyond
   any request this server could serve. *)
let n_buckets = 64

let bounds =
  Array.init n_buckets (fun i -> 1.5 ** float_of_int i)

type t = {
  counters : (string, int ref) Hashtbl.t;
  hist : int array;
  mutable lat_count : int;
  mutable lat_sum_us : float;
}

let create () =
  {
    counters = Hashtbl.create 16;
    hist = Array.make n_buckets 0;
    lat_count = 0;
    lat_sum_us = 0.0;
  }

let incr ?(by = 1) t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.add t.counters name (ref by)

let get t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let counters t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
  |> List.sort compare

let bucket_of us =
  let rec go i = if i >= n_buckets - 1 || us <= bounds.(i) then i else go (i + 1) in
  go 0

let observe t seconds =
  let us = seconds *. 1e6 in
  t.hist.(bucket_of us) <- t.hist.(bucket_of us) + 1;
  t.lat_count <- t.lat_count + 1;
  t.lat_sum_us <- t.lat_sum_us +. us

let observations t = t.lat_count

let mean_latency_us t =
  if t.lat_count = 0 then 0.0 else t.lat_sum_us /. float_of_int t.lat_count

let percentile_us t p =
  if p < 0.0 || p > 1.0 then invalid_arg "Metrics.percentile_us: p outside [0,1]";
  if t.lat_count = 0 then 0.0
  else begin
    let target = max 1 (int_of_float (ceil (p *. float_of_int t.lat_count))) in
    let seen = ref 0 and answer = ref bounds.(n_buckets - 1) in
    (try
       Array.iteri
         (fun i c ->
           seen := !seen + c;
           if !seen >= target then begin
             answer := bounds.(i);
             raise Exit
           end)
         t.hist
     with Exit -> ());
    !answer
  end

let report t =
  List.map (fun (k, v) -> (k, string_of_int v)) (counters t)
  @ [
      ("lat_count", string_of_int t.lat_count);
      ("lat_mean_us", Printf.sprintf "%.1f" (mean_latency_us t));
      ("lat_p50_us", Printf.sprintf "%.1f" (percentile_us t 0.50));
      ("lat_p95_us", Printf.sprintf "%.1f" (percentile_us t 0.95));
      ("lat_p99_us", Printf.sprintf "%.1f" (percentile_us t 0.99));
    ]

let pp ppf t =
  List.iter (fun (k, v) -> Format.fprintf ppf "%s=%s@." k v) (report t)
