module Obs = Selest_obs

(* The request path records into per-domain Telemetry shards — lock-free
   after a slot exists — and every read here merges shards on demand.
   The aggregate request-latency histogram lives under [lat_all]; each
   verb additionally gets its own histogram under "lat.<verb>". *)
let lat_all = "lat"
let verb_prefix = "lat."

(* Pre-registered telemetry handles for the allocation-free request
   front-end: the warm EST fast path bumps these by integer id — no
   string hashing, no [find_opt] boxing — while everything else keeps
   the string-keyed API.  The four [frontend.*] counters accumulate
   nanoseconds (parse / canonicalize / key-hash) and the count of
   estimate-cache hash hits whose full-key verification failed. *)
type t = {
  tel : Obs.Telemetry.t;
  h_lat : Obs.Telemetry.hist_handle;  (* the aggregate "lat" histogram *)
  h_lat_est : Obs.Telemetry.hist_handle;  (* "lat.est" *)
  c_requests : Obs.Telemetry.counter_handle;
  c_est_requests : Obs.Telemetry.counter_handle;
  c_frontend_parse : Obs.Telemetry.counter_handle;
  c_frontend_canon : Obs.Telemetry.counter_handle;
  c_frontend_key : Obs.Telemetry.counter_handle;
  c_frontend_collisions : Obs.Telemetry.counter_handle;
}

(* Layout constants kept for dashboards that re-bucket from [lat_hist]:
   the raw buckets are now the HDR layout of {!Selest_obs.Histogram} —
   [n_buckets] fixed buckets whose width grows by at most [bucket_base]
   (1 + 1/128) per bucket across the ns→s range. *)
let n_buckets = Obs.Histogram.n_buckets
let bucket_base = 1.0 +. (1.0 /. float_of_int Obs.Histogram.half)

let create () =
  let tel = Obs.Telemetry.create () in
  {
    tel;
    h_lat = Obs.Telemetry.hist_handle tel lat_all;
    h_lat_est = Obs.Telemetry.hist_handle tel (verb_prefix ^ "est");
    c_requests = Obs.Telemetry.counter_handle tel "requests";
    c_est_requests = Obs.Telemetry.counter_handle tel "est_requests";
    c_frontend_parse = Obs.Telemetry.counter_handle tel "frontend.parse_ns";
    c_frontend_canon = Obs.Telemetry.counter_handle tel "frontend.canon_ns";
    c_frontend_key = Obs.Telemetry.counter_handle tel "frontend.key_ns";
    c_frontend_collisions =
      Obs.Telemetry.counter_handle tel "frontend.collisions";
  }

let telemetry t = t.tel

let incr ?(by = 1) t name = Obs.Telemetry.incr ~by t.tel name
let get t name = Obs.Telemetry.get t.tel name

(* ---- allocation-free fast-path bumps --------------------------------------- *)

let counter_handle t name = Obs.Telemetry.counter_handle t.tel name
let bump t h = Obs.Telemetry.hincr t.tel h
let bump_by t h n = Obs.Telemetry.hincr_by t.tel h n

let fast_est_request t =
  Obs.Telemetry.hincr t.tel t.c_requests;
  Obs.Telemetry.hincr t.tel t.c_est_requests

let fast_est_latency_ns t ns =
  Obs.Telemetry.hrecord t.tel t.h_lat ns;
  Obs.Telemetry.hrecord t.tel t.h_lat_est ns

let frontend_parse_ns t ns = Obs.Telemetry.hincr_by t.tel t.c_frontend_parse ns
let frontend_canon_ns t ns = Obs.Telemetry.hincr_by t.tel t.c_frontend_canon ns
let frontend_key_ns t ns = Obs.Telemetry.hincr_by t.tel t.c_frontend_key ns
let frontend_collision t = Obs.Telemetry.hincr t.tel t.c_frontend_collisions

let counters t = (Obs.Telemetry.snapshot t.tel).Obs.Telemetry.counters

let observe_ns t ns = Obs.Telemetry.record_ns t.tel lat_all ns

let observe_verb_ns t ~verb ns =
  Obs.Telemetry.record_ns t.tel lat_all ns;
  Obs.Telemetry.record_ns t.tel (verb_prefix ^ verb) ns

let observe t seconds = observe_ns t (int_of_float (seconds *. 1e9))

(* ---- accuracy (q-error) ----------------------------------------------------
   Same sharding discipline as counters/histograms: TRUTH observations
   land in the calling domain's shard table (lock-free after the slot
   exists), reads merge shards on demand. *)

let observe_qerror t name ~est ~truth =
  Obs.Telemetry.observe_qerror t.tel name ~est ~truth

let qerror_shard t name = Obs.Telemetry.qerror_shard t.tel name
let qerror_merged t name = Obs.Telemetry.qerror_merged t.tel name
let qerror_tables t = Obs.Telemetry.qerrors_merged t.tel

(* Shard-identity counter names: "shard.<sid>.requests" etc.  Callers
   precompute these once per shard so the request path does no
   formatting. *)
let shard_key sid name = Printf.sprintf "shard.%d.%s" sid name

let agg t = Obs.Telemetry.hist_merged t.tel lat_all
let lat_key = lat_all
let verb_key verb = verb_prefix ^ verb
let latency_histogram = agg

let observations t = Obs.Histogram.count (agg t)
let mean_latency_us t = Obs.Histogram.mean_ns (agg t) /. 1e3

let percentile_us t p = float_of_int (Obs.Histogram.quantile_ns (agg t) p) /. 1e3

let histogram t = Obs.Histogram.buckets_us (agg t)
let latency_sum_us t = float_of_int (Obs.Histogram.sum_ns (agg t)) /. 1e3

(* Every verb that has recorded a latency, with its merged histogram. *)
let verb_histograms t =
  let snap = Obs.Telemetry.snapshot t.tel in
  List.filter_map
    (fun (name, h) ->
      let plen = String.length verb_prefix in
      if String.length name > plen && String.sub name 0 plen = verb_prefix then
        Some (String.sub name plen (String.length name - plen), h)
      else None)
    snap.Obs.Telemetry.hists

let report t =
  let snap = Obs.Telemetry.snapshot t.tel in
  let h =
    match Obs.Telemetry.Snapshot.find_hist snap lat_all with
    | Some h -> h
    | None -> Obs.Histogram.create ()
  in
  let q p = float_of_int (Obs.Histogram.quantile_ns h p) /. 1e3 in
  List.map (fun (k, v) -> (k, string_of_int v)) snap.Obs.Telemetry.counters
  @ [
      ("lat_count", string_of_int (Obs.Histogram.count h));
      (* exact, from the running sum — unquantized *)
      ("lat_mean_us", Printf.sprintf "%.1f" (Obs.Histogram.mean_ns h /. 1e3));
      (* upper bucket edge of the HDR layout: overstates by < 0.8% *)
      ("lat_p50_us", Printf.sprintf "%.1f" (q 0.50));
      ("lat_p95_us", Printf.sprintf "%.1f" (q 0.95));
      ("lat_p99_us", Printf.sprintf "%.1f" (q 0.99));
      ("lat_p999_us", Printf.sprintf "%.1f" (q 0.999));
      (* bucket layout + raw counts, so dashboards can re-bucket.  The
         keys predate the HDR histograms and are kept as aliases for one
         release; [lat_bucket_base] is now the per-bucket growth bound
         (1 + 1/128), not a global geometric ratio. *)
      ("lat_buckets", string_of_int n_buckets);
      ("lat_bucket_base", Printf.sprintf "%.4f" bucket_base);
      ("lat_hist", Obs.Histogram.nonzero h);
      ("lat_quantization", "percentiles=bucket-upper-edge(<0.8%) mean=exact");
    ]

let pp ppf t =
  List.iter (fun (k, v) -> Format.fprintf ppf "%s=%s@." k v) (report t)
