(* Bucket i of the latency histogram covers (bound.(i-1), bound.(i)] with
   bound.(i) = 1.5^i microseconds; 64 buckets reach ~1.2e11 µs, far beyond
   any request this server could serve. *)
let n_buckets = 64
let bucket_base = 1.5

let bounds = Array.init n_buckets (fun i -> bucket_base ** float_of_int i)

(* One mutex guards everything: counters are bumped from pool workers
   during ESTBATCH while the dispatcher reads STATS, and [report] must
   see one consistent snapshot, not counters from mid-batch and a
   histogram from after it. *)
type t = {
  mutex : Mutex.t;
  counters : (string, int ref) Hashtbl.t;
  hist : int array;
  mutable lat_count : int;
  mutable lat_sum_us : float;
}

let create () =
  {
    mutex = Mutex.create ();
    counters = Hashtbl.create 16;
    hist = Array.make n_buckets 0;
    lat_count = 0;
    lat_sum_us = 0.0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let incr ?(by = 1) t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.counters name with
      | Some r -> r := !r + by
      | None -> Hashtbl.add t.counters name (ref by))

let get t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0)

let counters_unlocked t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
  |> List.sort compare

let counters t = locked t (fun () -> counters_unlocked t)

let bucket_of us =
  let rec go i = if i >= n_buckets - 1 || us <= bounds.(i) then i else go (i + 1) in
  go 0

let observe t seconds =
  let us = seconds *. 1e6 in
  locked t (fun () ->
      t.hist.(bucket_of us) <- t.hist.(bucket_of us) + 1;
      t.lat_count <- t.lat_count + 1;
      t.lat_sum_us <- t.lat_sum_us +. us)

let observations t = locked t (fun () -> t.lat_count)

let mean_unlocked t =
  if t.lat_count = 0 then 0.0 else t.lat_sum_us /. float_of_int t.lat_count

let mean_latency_us t = locked t (fun () -> mean_unlocked t)

let percentile_unlocked t p =
  if p < 0.0 || p > 1.0 then invalid_arg "Metrics.percentile_us: p outside [0,1]";
  if t.lat_count = 0 then 0.0
  else begin
    let target = max 1 (int_of_float (ceil (p *. float_of_int t.lat_count))) in
    let seen = ref 0 and answer = ref bounds.(n_buckets - 1) in
    (try
       Array.iteri
         (fun i c ->
           seen := !seen + c;
           if !seen >= target then begin
             answer := bounds.(i);
             raise Exit
           end)
         t.hist
     with Exit -> ());
    !answer
  end

let percentile_us t p = locked t (fun () -> percentile_unlocked t p)

let histogram t =
  locked t (fun () ->
      let cum = ref 0 in
      Array.mapi
        (fun i c ->
          cum := !cum + c;
          (bounds.(i), !cum))
        t.hist)

let latency_sum_us t = locked t (fun () -> t.lat_sum_us)

let nonzero_buckets_unlocked t =
  let parts = ref [] in
  for i = n_buckets - 1 downto 0 do
    if t.hist.(i) > 0 then
      parts := Printf.sprintf "%d:%d" i t.hist.(i) :: !parts
  done;
  match !parts with [] -> "-" | ps -> String.concat "," ps

let report t =
  locked t (fun () ->
      List.map (fun (k, v) -> (k, string_of_int v)) (counters_unlocked t)
      @ [
          ("lat_count", string_of_int t.lat_count);
          (* exact, from the running sum — unquantized *)
          ("lat_mean_us", Printf.sprintf "%.1f" (mean_unlocked t));
          (* upper bucket edge: overstates by at most one bucket ratio *)
          ("lat_p50_us", Printf.sprintf "%.1f" (percentile_unlocked t 0.50));
          ("lat_p95_us", Printf.sprintf "%.1f" (percentile_unlocked t 0.95));
          ("lat_p99_us", Printf.sprintf "%.1f" (percentile_unlocked t 0.99));
          (* bucket layout + raw counts, so dashboards can re-bucket *)
          ("lat_buckets", string_of_int n_buckets);
          ("lat_bucket_base", Printf.sprintf "%.2f" bucket_base);
          ("lat_hist", nonzero_buckets_unlocked t);
          ("lat_quantization", "percentiles=bucket-upper-edge mean=exact");
        ])

let pp ppf t =
  List.iter (fun (k, v) -> Format.fprintf ppf "%s=%s@." k v) (report t)
