type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

type endpoint = Unix_socket of string | Tcp of string * int

(* Bounded exponential backoff for the startup race (socket not bound
   yet / listener's backlog momentarily full): 10ms doubling to a 640ms
   ceiling.  Total worst-case wait for the default test retry counts
   stays in seconds, while steady-state retries no longer hammer a
   server that is seconds away from binding. *)
let backoff_base = 0.01
let backoff_cap = 0.64

let backoff_delay attempt =
  Float.min backoff_cap (backoff_base *. Float.pow 2.0 (float_of_int attempt))

let resolve_tcp host port =
  match
    Unix.getaddrinfo host (string_of_int port)
      [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM; Unix.AI_FAMILY Unix.PF_INET ]
  with
  | ai :: _ -> ai.Unix.ai_addr
  | [] -> Unix.ADDR_INET (Unix.inet_addr_of_string host, port)

let connect_endpoint ?(retries = 0) endpoint =
  let domain, addr =
    match endpoint with
    | Unix_socket socket -> (Unix.PF_UNIX, Unix.ADDR_UNIX socket)
    | Tcp (host, port) -> (Unix.PF_INET, resolve_tcp host port)
  in
  let rec attempt n =
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
    | exception
        Unix.Unix_error
          ((ENOENT | ECONNREFUSED | EAGAIN | EWOULDBLOCK | EINTR), _, _)
      when n < retries ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Unix.sleepf (backoff_delay n);
      attempt (n + 1)
    | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  in
  attempt 0

let connect ?retries ~socket () = connect_endpoint ?retries (Unix_socket socket)

let connect_tcp ?retries ~host ~port () =
  connect_endpoint ?retries (Tcp (host, port))

let request t line =
  (* A server that rejects the connection (admission BUSY) writes its
     verdict and closes immediately — possibly before our request line
     lands, in which case the write fails with EPIPE.  The parting reply
     is still queued on our side of the socket, so fall through to the
     read; if there is truly nothing, [input_line] raises [End_of_file]
     as usual. *)
  (try
     output_string t.oc line;
     output_char t.oc '\n';
     flush t.oc
   with Sys_error _ | Unix.Unix_error (EPIPE, _, _) -> ());
  let header = input_line t.ic in
  match Protocol.extra_lines header with
  | 0 -> header
  | k ->
    let buf = Buffer.create 256 in
    Buffer.add_string buf header;
    for _ = 1 to k do
      Buffer.add_char buf '\n';
      Buffer.add_string buf (input_line t.ic)
    done;
    Buffer.contents buf

let upgrade t =
  output_string t.oc Protocol.Bin.hello;
  output_char t.oc '\n';
  flush t.oc;
  let resp = input_line t.ic in
  if resp <> Protocol.Bin.hello_ok then
    failwith ("binary upgrade refused: " ^ resp)

let bin_request t req =
  Protocol.Bin.write_frame t.oc (Protocol.Bin.encode_request req);
  match Protocol.Bin.read_frame t.ic with
  | `Eof -> raise End_of_file
  | `Oversized len -> failwith (Printf.sprintf "bin: oversized response frame (%d)" len)
  | `Frame payload -> (
    match Protocol.Bin.decode_response payload with
    | Ok r -> r
    | Error msg -> failwith ("bin: bad response frame: " ^ msg))

let est_bin t ?model body =
  match bin_request t (Protocol.Bin.Best { model; body }) with
  | Protocol.Bin.Bvalue v -> Ok v
  | Protocol.Bin.Berr msg -> Error msg
  | Protocol.Bin.Bvalues _ -> Error "bin: unexpected batch response to EST"

let estbatch_bin t ?model bodies =
  match bin_request t (Protocol.Bin.Bestbatch { model; bodies }) with
  | Protocol.Bin.Bvalues vs -> Ok vs
  | Protocol.Bin.Berr msg -> Error msg
  | Protocol.Bin.Bvalue _ -> Error "bin: unexpected single response to ESTBATCH"

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let with_connection ?retries ~socket f =
  let c = connect ?retries ~socket () in
  Fun.protect ~finally:(fun () -> close c) (fun () -> f c)

let with_tcp_connection ?retries ~host ~port f =
  let c = connect_tcp ?retries ~host ~port () in
  Fun.protect ~finally:(fun () -> close c) (fun () -> f c)
