type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect ?(retries = 0) ~socket () =
  let rec attempt left =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
    | exception Unix.Unix_error ((ENOENT | ECONNREFUSED), _, _) when left > 0 ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Unix.sleepf 0.05;
      attempt (left - 1)
    | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  in
  attempt retries

let request t line =
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc;
  let header = input_line t.ic in
  match Protocol.extra_lines header with
  | 0 -> header
  | k ->
    let buf = Buffer.create 256 in
    Buffer.add_string buf header;
    for _ = 1 to k do
      Buffer.add_char buf '\n';
      Buffer.add_string buf (input_line t.ic)
    done;
    Buffer.contents buf

let upgrade t =
  output_string t.oc Protocol.Bin.hello;
  output_char t.oc '\n';
  flush t.oc;
  let resp = input_line t.ic in
  if resp <> Protocol.Bin.hello_ok then
    failwith ("binary upgrade refused: " ^ resp)

let bin_request t req =
  Protocol.Bin.write_frame t.oc (Protocol.Bin.encode_request req);
  match Protocol.Bin.read_frame t.ic with
  | `Eof -> raise End_of_file
  | `Oversized len -> failwith (Printf.sprintf "bin: oversized response frame (%d)" len)
  | `Frame payload -> (
    match Protocol.Bin.decode_response payload with
    | Ok r -> r
    | Error msg -> failwith ("bin: bad response frame: " ^ msg))

let est_bin t ?model body =
  match bin_request t (Protocol.Bin.Best { model; body }) with
  | Protocol.Bin.Bvalue v -> Ok v
  | Protocol.Bin.Berr msg -> Error msg
  | Protocol.Bin.Bvalues _ -> Error "bin: unexpected batch response to EST"

let estbatch_bin t ?model bodies =
  match bin_request t (Protocol.Bin.Bestbatch { model; bodies }) with
  | Protocol.Bin.Bvalues vs -> Ok vs
  | Protocol.Bin.Berr msg -> Error msg
  | Protocol.Bin.Bvalue _ -> Error "bin: unexpected single response to ESTBATCH"

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let with_connection ?retries ~socket f =
  let c = connect ?retries ~socket () in
  Fun.protect ~finally:(fun () -> close c) (fun () -> f c)
