(** Named, versioned PRM models held by a running estimation service,
    published as immutable epoch-stamped snapshots.

    The paper's architecture learns models offline and consults them
    online; a long-lived server therefore needs a place where models
    arrive, get replaced by fresher ones learned from newer data (hot
    reload), and are looked up per request.  Every model is checked
    against the registry's schema on the way in ({!Selest_prm.Serialize}
    validates the stored fingerprint), so a request can never be answered
    by a model learned for a different database layout.

    {b Concurrency model.}  The registry holds one {e immutable}
    snapshot behind an [Atomic.t].  Readers pin the current snapshot
    with a single atomic load ({!Epoch.pin}) and then work entirely on
    immutable data — EST/ESTBATCH never take a lock, and the
    (name, version, fingerprint, model) tuple they see can never tear,
    because it was published as one value.  Writers (LOAD / register)
    serialize on an internal mutex {e off} the request path, build the
    successor snapshot, and publish it with one atomic store.  Requests
    still holding the previous snapshot finish against it; the old
    generation is reclaimed by the GC once the last pinned reference
    drops (the grace period is implicit in snapshot lifetime).

    Replacing a name bumps its version.  Versions matter beyond
    book-keeping: the server builds cache keys as
    [name#version|canonical-query], so reloading a model implicitly
    invalidates all of its cached estimates — stale entries can never be
    returned and simply age out of each shard's LRU. *)

type entry = {
  model : Selest_prm.Model.t;
  source : string;  (** file path, or ["<memory>"] for registered models *)
  version : int;  (** 1 on first load of a name, +1 on each replacement *)
  fingerprint : string;  (** schema fingerprint shared by all entries *)
}

type t

val create : schema:Selest_db.Schema.t -> t

val schema_fingerprint : t -> string
(** The fingerprint every loadable model must carry
    ({!Selest_prm.Serialize.schema_fingerprint} of the registry schema). *)

(** Epoch-published snapshot access — the lock-free read plane. *)
module Epoch : sig
  type snapshot
  (** One immutable registry generation.  Everything reachable from a
      snapshot is frozen at publication time. *)

  val pin : t -> snapshot
  (** The current generation: one [Atomic.get], no lock.  A request
      pins once and resolves names against the pinned value so its view
      cannot change mid-request. *)

  val epoch : snapshot -> int
  (** Generation number: 0 for the empty registry, +1 per publish. *)

  val current_epoch : t -> int
  (** [epoch (pin t)]. *)

  val find : snapshot -> string -> entry option
  val default : snapshot -> (string * entry) option
  val names : snapshot -> string list
  val size : snapshot -> int

  val entries : snapshot -> (string * entry) list
  (** All entries, most recently (re)loaded first. *)
end

val load : t -> name:string -> path:string -> entry
(** Load (or hot-reload) a model file under [name].  Raises
    {!Selest_prm.Serialize.Error} on an unreadable, malformed or
    schema-mismatched file; the published snapshot is unchanged in that
    case. *)

val register : t -> name:string -> Selest_prm.Model.t -> entry
(** Install an in-memory model (e.g. learned at server start-up) under
    [name], with the same versioning rules as {!load}.  Raises
    [Invalid_argument] when the model's schema fingerprint differs from
    the registry's. *)

val find : t -> string -> entry option
(** [Epoch.find (Epoch.pin t)] — fine for one-shot lookups; requests
    that touch the registry more than once should pin explicitly. *)

val default : t -> (string * entry) option
(** The most recently loaded or registered name — what an [EST] request
    without an explicit model name is answered from. *)

val names : t -> string list
(** Registered names, most recently (re)loaded first. *)

val size : t -> int
