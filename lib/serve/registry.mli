(** Named, versioned PRM models held by a running estimation service.

    The paper's architecture learns models offline and consults them
    online; a long-lived server therefore needs a place where models
    arrive, get replaced by fresher ones learned from newer data (hot
    reload), and are looked up per request.  Every model is checked
    against the registry's schema on the way in ({!Selest_prm.Serialize}
    validates the stored fingerprint), so a request can never be answered
    by a model learned for a different database layout.

    Replacing a name bumps its version.  Versions matter beyond
    book-keeping: the server builds cache keys as
    [name#version|canonical-query], so reloading a model implicitly
    invalidates all of its cached estimates — stale entries can never be
    returned and simply age out of the LRU. *)

type entry = {
  model : Selest_prm.Model.t;
  source : string;  (** file path, or ["<memory>"] for registered models *)
  version : int;  (** 1 on first load of a name, +1 on each replacement *)
  fingerprint : string;  (** schema fingerprint shared by all entries *)
}

type t

val create : schema:Selest_db.Schema.t -> t

val schema_fingerprint : t -> string
(** The fingerprint every loadable model must carry
    ({!Selest_prm.Serialize.schema_fingerprint} of the registry schema). *)

val load : t -> name:string -> path:string -> entry
(** Load (or hot-reload) a model file under [name].  Raises
    {!Selest_prm.Serialize.Error} on an unreadable, malformed or
    schema-mismatched file; the registry is unchanged in that case. *)

val register : t -> name:string -> Selest_prm.Model.t -> entry
(** Install an in-memory model (e.g. learned at server start-up) under
    [name], with the same versioning rules as {!load}.  Raises
    [Invalid_argument] when the model's schema fingerprint differs from
    the registry's. *)

val find : t -> string -> entry option

val default : t -> (string * entry) option
(** The most recently loaded or registered name — what an [EST] request
    without an explicit model name is answered from. *)

val names : t -> string list
(** Registered names, most recently (re)loaded first. *)

val size : t -> int
