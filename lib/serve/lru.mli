(** Byte-budgeted LRU cache of query estimates, indexed on the 63-bit
    canonical query hash.

    Optimizers re-cost the same predicates against many join orders, so
    a serving layer sees heavy repetition; a hit answers in one integer
    hashtable probe and hands back {e pre-rendered} responses — the
    text line and the binary value frame were formatted when the entry
    was filled, so the warm path writes bytes straight to the socket.
    Keys are the hashes the zero-copy front-end
    ({!Selest_db.Squery.hash} mixed with model name and version)
    computes without allocating; each entry carries the canonical query
    snapshot ({!Selest_db.Squery.Vec}) plus its model identity so the
    server can verify a hash hit against the live scratch — full-key
    comparison only ever runs on a hash match, never to {e build} a
    key.  A verification failure is a {!collision}: the caller recounts
    the probe as a miss and overwrites the entry on {!add}.

    Every warm operation is allocation-free: the recency list is a
    sentinel ring of direct node pointers, a miss raises the
    preallocated [Not_found], and byte accounting is plain field
    arithmetic.  Capacity is expressed in bytes under the library-wide
    storage accounting ({!Selest_util.Bytesize}): each entry is charged
    its vec snapshot, both rendered responses, the model name and one
    stored parameter.  When an insertion pushes the total over the
    budget, least-recently-used entries are evicted until it fits.

    Hit, miss, eviction and collision counts are tracked here so
    {!Metrics} can report them without wrapping every call site. *)

type entry = {
  est : float;  (** the estimate *)
  text : string;  (** full text response, trailing newline included *)
  bin : string;  (** full encoded binary value frame *)
  vec : Selest_db.Squery.Vec.t;  (** canonical query snapshot *)
  model : string;  (** model name the estimate was computed under *)
  version : int;  (** model version ditto *)
}

type t

val create : capacity_bytes:int -> t
(** Raises [Invalid_argument] on a non-positive capacity. *)

val find : t -> int -> entry
(** Look up a hash; a hit promotes the entry to most-recently-used and
    is counted, a miss counts and raises [Not_found].  Allocation-free
    either way.  The caller must verify the entry against its request
    ([Squery.Vec.matches] + model name/version) and call {!collision}
    if the verification fails. *)

val collision : t -> unit
(** Recount the last {!find} hit as a miss: the hash matched but the
    full key did not.  Also bumps the collision counter. *)

val add : t -> int -> entry -> unit
(** Insert or overwrite the entry under a hash (overwriting is how a
    collision resolves — newest query wins), promote it, then evict
    from the cold end until the byte budget holds. *)

val mem : t -> int -> bool
(** Pure query: no promotion, no counter update. *)

val length : t -> int
val bytes : t -> int
val capacity_bytes : t -> int

val hits : t -> int
val misses : t -> int
val evictions : t -> int

val collisions : t -> int
(** Hash hits whose full-key verification failed; 0 in any realistic
    workload (63-bit FNV). *)

val hashes_hot_first : t -> int list
(** Keys in recency order, most recent first (for tests and
    debugging). *)

val clear : t -> unit
(** Drops all entries; counters are preserved. *)
