(** Byte-budgeted LRU cache of query estimates.

    Optimizers re-cost the same predicates against many join orders, so a
    serving layer sees heavy repetition; a hit answers in a hash lookup
    instead of a variable-elimination pass.  Capacity is expressed in bytes
    under the library-wide storage accounting ({!Selest_util.Bytesize}):
    each entry is charged one byte per key character plus one stored
    parameter for the cached estimate.  When an insertion pushes the total
    over the budget, least-recently-used entries are evicted until it fits
    (an entry larger than the whole budget is evicted immediately).

    Hit, miss and eviction counts are tracked here so {!Metrics} can report
    them without wrapping every call site. *)

type t

val create : capacity_bytes:int -> t
(** Raises [Invalid_argument] on a non-positive capacity. *)

val find : t -> string -> float option
(** Looks up a key; a hit promotes the entry to most-recently-used and is
    counted, a miss is counted. *)

val add : t -> string -> float -> unit
(** Inserts or refreshes an entry (refreshing promotes it), then evicts
    from the cold end until the byte budget holds. *)

val mem : t -> string -> bool
(** Pure query: no promotion, no counter update. *)

val length : t -> int
val bytes : t -> int
val capacity_bytes : t -> int

val hits : t -> int
val misses : t -> int
val evictions : t -> int

val keys_hot_first : t -> string list
(** Keys in recency order, most recent first (for tests and debugging). *)

val clear : t -> unit
(** Drops all entries; counters are preserved. *)
